# Empty dependencies file for custom_trace.
# This may be replaced when dependencies are built.
