# Empty compiler generated dependencies file for predictability_report.
# This may be replaced when dependencies are built.
