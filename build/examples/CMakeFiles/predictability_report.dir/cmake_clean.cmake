file(REMOVE_RECURSE
  "CMakeFiles/predictability_report.dir/predictability_report.cpp.o"
  "CMakeFiles/predictability_report.dir/predictability_report.cpp.o.d"
  "predictability_report"
  "predictability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
