file(REMOVE_RECURSE
  "CMakeFiles/vpsim.dir/vpsim.cpp.o"
  "CMakeFiles/vpsim.dir/vpsim.cpp.o.d"
  "vpsim"
  "vpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
