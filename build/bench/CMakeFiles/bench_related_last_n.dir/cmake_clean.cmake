file(REMOVE_RECURSE
  "CMakeFiles/bench_related_last_n.dir/related_last_n.cc.o"
  "CMakeFiles/bench_related_last_n.dir/related_last_n.cc.o.d"
  "bench_related_last_n"
  "bench_related_last_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_last_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
