# Empty dependencies file for bench_related_last_n.
# This may be replaced when dependencies are built.
