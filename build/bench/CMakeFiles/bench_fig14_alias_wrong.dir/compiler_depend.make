# Empty compiler generated dependencies file for bench_fig14_alias_wrong.
# This may be replaced when dependencies are built.
