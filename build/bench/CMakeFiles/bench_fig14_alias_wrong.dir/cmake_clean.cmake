file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_alias_wrong.dir/fig14_alias_wrong.cc.o"
  "CMakeFiles/bench_fig14_alias_wrong.dir/fig14_alias_wrong.cc.o.d"
  "bench_fig14_alias_wrong"
  "bench_fig14_alias_wrong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_alias_wrong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
