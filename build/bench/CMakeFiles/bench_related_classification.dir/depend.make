# Empty dependencies file for bench_related_classification.
# This may be replaced when dependencies are built.
