file(REMOVE_RECURSE
  "CMakeFiles/bench_related_classification.dir/related_classification.cc.o"
  "CMakeFiles/bench_related_classification.dir/related_classification.cc.o.d"
  "bench_related_classification"
  "bench_related_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
