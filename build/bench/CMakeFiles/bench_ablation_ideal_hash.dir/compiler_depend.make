# Empty compiler generated dependencies file for bench_ablation_ideal_hash.
# This may be replaced when dependencies are built.
