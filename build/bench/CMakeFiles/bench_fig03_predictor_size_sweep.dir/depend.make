# Empty dependencies file for bench_fig03_predictor_size_sweep.
# This may be replaced when dependencies are built.
