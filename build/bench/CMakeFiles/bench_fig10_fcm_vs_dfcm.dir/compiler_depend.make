# Empty compiler generated dependencies file for bench_fig10_fcm_vs_dfcm.
# This may be replaced when dependencies are built.
