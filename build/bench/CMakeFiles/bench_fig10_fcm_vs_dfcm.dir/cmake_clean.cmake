file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_fcm_vs_dfcm.dir/fig10_fcm_vs_dfcm.cc.o"
  "CMakeFiles/bench_fig10_fcm_vs_dfcm.dir/fig10_fcm_vs_dfcm.cc.o.d"
  "bench_fig10_fcm_vs_dfcm"
  "bench_fig10_fcm_vs_dfcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_fcm_vs_dfcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
