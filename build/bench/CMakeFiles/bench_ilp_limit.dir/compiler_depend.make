# Empty compiler generated dependencies file for bench_ilp_limit.
# This may be replaced when dependencies are built.
