file(REMOVE_RECURSE
  "CMakeFiles/bench_ilp_limit.dir/ilp_limit.cc.o"
  "CMakeFiles/bench_ilp_limit.dir/ilp_limit.cc.o.d"
  "bench_ilp_limit"
  "bench_ilp_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilp_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
