# Empty dependencies file for bench_fig17_delayed_update.
# This may be replaced when dependencies are built.
