file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_delayed_update.dir/fig17_delayed_update.cc.o"
  "CMakeFiles/bench_fig17_delayed_update.dir/fig17_delayed_update.cc.o.d"
  "bench_fig17_delayed_update"
  "bench_fig17_delayed_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_delayed_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
