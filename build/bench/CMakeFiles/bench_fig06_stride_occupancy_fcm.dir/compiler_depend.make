# Empty compiler generated dependencies file for bench_fig06_stride_occupancy_fcm.
# This may be replaced when dependencies are built.
