file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_stride_occupancy_fcm.dir/fig06_stride_occupancy_fcm.cc.o"
  "CMakeFiles/bench_fig06_stride_occupancy_fcm.dir/fig06_stride_occupancy_fcm.cc.o.d"
  "bench_fig06_stride_occupancy_fcm"
  "bench_fig06_stride_occupancy_fcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_stride_occupancy_fcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
