file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_characterization.dir/workload_characterization.cc.o"
  "CMakeFiles/bench_workload_characterization.dir/workload_characterization.cc.o.d"
  "bench_workload_characterization"
  "bench_workload_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
