file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pareto.dir/fig11_pareto.cc.o"
  "CMakeFiles/bench_fig11_pareto.dir/fig11_pareto.cc.o.d"
  "bench_fig11_pareto"
  "bench_fig11_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
