# Empty dependencies file for bench_fig11_pareto.
# This may be replaced when dependencies are built.
