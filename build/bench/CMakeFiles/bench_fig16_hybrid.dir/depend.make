# Empty dependencies file for bench_fig16_hybrid.
# This may be replaced when dependencies are built.
