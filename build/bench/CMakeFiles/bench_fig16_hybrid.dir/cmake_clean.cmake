file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_hybrid.dir/fig16_hybrid.cc.o"
  "CMakeFiles/bench_fig16_hybrid.dir/fig16_hybrid.cc.o.d"
  "bench_fig16_hybrid"
  "bench_fig16_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
