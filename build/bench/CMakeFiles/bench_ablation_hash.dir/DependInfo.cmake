
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_hash.cc" "bench/CMakeFiles/bench_ablation_hash.dir/ablation_hash.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_hash.dir/ablation_hash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vpred_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tracegen/CMakeFiles/vpred_tracegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vpred_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vpred_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/vpred_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
