# Empty dependencies file for bench_ablation_alias_geometry.
# This may be replaced when dependencies are built.
