# Empty dependencies file for bench_sec44_stride_width.
# This may be replaced when dependencies are built.
