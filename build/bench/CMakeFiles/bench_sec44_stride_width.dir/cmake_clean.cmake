file(REMOVE_RECURSE
  "CMakeFiles/bench_sec44_stride_width.dir/sec44_stride_width.cc.o"
  "CMakeFiles/bench_sec44_stride_width.dir/sec44_stride_width.cc.o.d"
  "bench_sec44_stride_width"
  "bench_sec44_stride_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_stride_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
