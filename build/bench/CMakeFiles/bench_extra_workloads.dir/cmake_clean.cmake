file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_workloads.dir/extra_workloads.cc.o"
  "CMakeFiles/bench_extra_workloads.dir/extra_workloads.cc.o.d"
  "bench_extra_workloads"
  "bench_extra_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
