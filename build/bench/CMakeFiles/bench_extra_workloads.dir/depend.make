# Empty dependencies file for bench_extra_workloads.
# This may be replaced when dependencies are built.
