file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_confidence.dir/ablation_confidence.cc.o"
  "CMakeFiles/bench_ablation_confidence.dir/ablation_confidence.cc.o.d"
  "bench_ablation_confidence"
  "bench_ablation_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
