file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_alias_accuracy.dir/fig12_alias_accuracy.cc.o"
  "CMakeFiles/bench_fig12_alias_accuracy.dir/fig12_alias_accuracy.cc.o.d"
  "bench_fig12_alias_accuracy"
  "bench_fig12_alias_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_alias_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
