# Empty dependencies file for bench_fig12_alias_accuracy.
# This may be replaced when dependencies are built.
