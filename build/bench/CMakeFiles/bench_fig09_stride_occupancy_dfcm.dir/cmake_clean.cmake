file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_stride_occupancy_dfcm.dir/fig09_stride_occupancy_dfcm.cc.o"
  "CMakeFiles/bench_fig09_stride_occupancy_dfcm.dir/fig09_stride_occupancy_dfcm.cc.o.d"
  "bench_fig09_stride_occupancy_dfcm"
  "bench_fig09_stride_occupancy_dfcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_stride_occupancy_dfcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
