# Empty compiler generated dependencies file for bench_fig09_stride_occupancy_dfcm.
# This may be replaced when dependencies are built.
