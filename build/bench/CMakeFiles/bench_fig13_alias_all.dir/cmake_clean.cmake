file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_alias_all.dir/fig13_alias_all.cc.o"
  "CMakeFiles/bench_fig13_alias_all.dir/fig13_alias_all.cc.o.d"
  "bench_fig13_alias_all"
  "bench_fig13_alias_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_alias_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
