# Empty compiler generated dependencies file for bench_fig13_alias_all.
# This may be replaced when dependencies are built.
