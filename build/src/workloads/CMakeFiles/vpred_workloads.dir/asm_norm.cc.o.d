src/workloads/CMakeFiles/vpred_workloads.dir/asm_norm.cc.o: \
 /root/repo/src/workloads/asm_norm.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
