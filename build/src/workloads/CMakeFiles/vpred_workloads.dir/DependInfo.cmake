
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/asm_cc1.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_cc1.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_cc1.cc.o.d"
  "/root/repo/src/workloads/asm_compress.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_compress.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_compress.cc.o.d"
  "/root/repo/src/workloads/asm_go.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_go.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_go.cc.o.d"
  "/root/repo/src/workloads/asm_gzip.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_gzip.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_gzip.cc.o.d"
  "/root/repo/src/workloads/asm_ijpeg.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_ijpeg.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_ijpeg.cc.o.d"
  "/root/repo/src/workloads/asm_li.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_li.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_li.cc.o.d"
  "/root/repo/src/workloads/asm_m88ksim.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_m88ksim.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_m88ksim.cc.o.d"
  "/root/repo/src/workloads/asm_mcf.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_mcf.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_mcf.cc.o.d"
  "/root/repo/src/workloads/asm_norm.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_norm.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_norm.cc.o.d"
  "/root/repo/src/workloads/asm_perl.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_perl.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_perl.cc.o.d"
  "/root/repo/src/workloads/asm_vortex.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_vortex.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/asm_vortex.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/vpred_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/vpred_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpred_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vpred_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
