src/workloads/CMakeFiles/vpred_workloads.dir/asm_vortex.cc.o: \
 /root/repo/src/workloads/asm_vortex.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
