src/workloads/CMakeFiles/vpred_workloads.dir/asm_gzip.cc.o: \
 /root/repo/src/workloads/asm_gzip.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
