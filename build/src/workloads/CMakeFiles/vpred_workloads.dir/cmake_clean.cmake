file(REMOVE_RECURSE
  "CMakeFiles/vpred_workloads.dir/asm_cc1.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_cc1.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_compress.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_compress.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_go.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_go.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_gzip.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_gzip.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_ijpeg.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_ijpeg.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_li.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_li.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_m88ksim.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_m88ksim.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_mcf.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_mcf.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_norm.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_norm.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_perl.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_perl.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/asm_vortex.cc.o"
  "CMakeFiles/vpred_workloads.dir/asm_vortex.cc.o.d"
  "CMakeFiles/vpred_workloads.dir/workload.cc.o"
  "CMakeFiles/vpred_workloads.dir/workload.cc.o.d"
  "libvpred_workloads.a"
  "libvpred_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpred_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
