src/workloads/CMakeFiles/vpred_workloads.dir/asm_li.cc.o: \
 /root/repo/src/workloads/asm_li.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
