file(REMOVE_RECURSE
  "libvpred_workloads.a"
)
