# Empty compiler generated dependencies file for vpred_workloads.
# This may be replaced when dependencies are built.
