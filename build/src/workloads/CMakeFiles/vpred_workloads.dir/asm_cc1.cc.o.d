src/workloads/CMakeFiles/vpred_workloads.dir/asm_cc1.cc.o: \
 /root/repo/src/workloads/asm_cc1.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
