src/workloads/CMakeFiles/vpred_workloads.dir/asm_compress.cc.o: \
 /root/repo/src/workloads/asm_compress.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
