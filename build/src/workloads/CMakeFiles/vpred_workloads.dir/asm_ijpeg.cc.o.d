src/workloads/CMakeFiles/vpred_workloads.dir/asm_ijpeg.cc.o: \
 /root/repo/src/workloads/asm_ijpeg.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
