src/workloads/CMakeFiles/vpred_workloads.dir/asm_perl.cc.o: \
 /root/repo/src/workloads/asm_perl.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
