src/workloads/CMakeFiles/vpred_workloads.dir/asm_m88ksim.cc.o: \
 /root/repo/src/workloads/asm_m88ksim.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
