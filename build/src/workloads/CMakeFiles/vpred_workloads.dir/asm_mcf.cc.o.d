src/workloads/CMakeFiles/vpred_workloads.dir/asm_mcf.cc.o: \
 /root/repo/src/workloads/asm_mcf.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
