src/workloads/CMakeFiles/vpred_workloads.dir/asm_go.cc.o: \
 /root/repo/src/workloads/asm_go.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/asm_sources.hh
