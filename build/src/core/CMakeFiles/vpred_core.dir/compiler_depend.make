# Empty compiler generated dependencies file for vpred_core.
# This may be replaced when dependencies are built.
