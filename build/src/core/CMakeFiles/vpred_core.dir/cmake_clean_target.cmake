file(REMOVE_RECURSE
  "libvpred_core.a"
)
