
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alias_analysis.cc" "src/core/CMakeFiles/vpred_core.dir/alias_analysis.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/alias_analysis.cc.o.d"
  "/root/repo/src/core/assoc_dfcm_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/assoc_dfcm_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/assoc_dfcm_predictor.cc.o.d"
  "/root/repo/src/core/classifying_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/classifying_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/classifying_predictor.cc.o.d"
  "/root/repo/src/core/confidence_dfcm.cc" "src/core/CMakeFiles/vpred_core.dir/confidence_dfcm.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/confidence_dfcm.cc.o.d"
  "/root/repo/src/core/delayed_update.cc" "src/core/CMakeFiles/vpred_core.dir/delayed_update.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/delayed_update.cc.o.d"
  "/root/repo/src/core/dfcm_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/dfcm_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/dfcm_predictor.cc.o.d"
  "/root/repo/src/core/fcm_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/fcm_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/fcm_predictor.cc.o.d"
  "/root/repo/src/core/hash_function.cc" "src/core/CMakeFiles/vpred_core.dir/hash_function.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/hash_function.cc.o.d"
  "/root/repo/src/core/hybrid_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/hybrid_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/hybrid_predictor.cc.o.d"
  "/root/repo/src/core/ideal_context_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/ideal_context_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/ideal_context_predictor.cc.o.d"
  "/root/repo/src/core/last_n_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/last_n_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/last_n_predictor.cc.o.d"
  "/root/repo/src/core/last_value_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/last_value_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/last_value_predictor.cc.o.d"
  "/root/repo/src/core/predictor_factory.cc" "src/core/CMakeFiles/vpred_core.dir/predictor_factory.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/predictor_factory.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/vpred_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/stats.cc.o.d"
  "/root/repo/src/core/stride_occupancy.cc" "src/core/CMakeFiles/vpred_core.dir/stride_occupancy.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/stride_occupancy.cc.o.d"
  "/root/repo/src/core/stride_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/stride_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/stride_predictor.cc.o.d"
  "/root/repo/src/core/trace_io.cc" "src/core/CMakeFiles/vpred_core.dir/trace_io.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/trace_io.cc.o.d"
  "/root/repo/src/core/two_delta_predictor.cc" "src/core/CMakeFiles/vpred_core.dir/two_delta_predictor.cc.o" "gcc" "src/core/CMakeFiles/vpred_core.dir/two_delta_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
