
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/vpred_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/vpred_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/pareto.cc" "src/harness/CMakeFiles/vpred_harness.dir/pareto.cc.o" "gcc" "src/harness/CMakeFiles/vpred_harness.dir/pareto.cc.o.d"
  "/root/repo/src/harness/sweep.cc" "src/harness/CMakeFiles/vpred_harness.dir/sweep.cc.o" "gcc" "src/harness/CMakeFiles/vpred_harness.dir/sweep.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/harness/CMakeFiles/vpred_harness.dir/table_printer.cc.o" "gcc" "src/harness/CMakeFiles/vpred_harness.dir/table_printer.cc.o.d"
  "/root/repo/src/harness/trace_cache.cc" "src/harness/CMakeFiles/vpred_harness.dir/trace_cache.cc.o" "gcc" "src/harness/CMakeFiles/vpred_harness.dir/trace_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vpred_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vpred_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vpred_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
