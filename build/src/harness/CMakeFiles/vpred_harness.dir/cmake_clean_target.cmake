file(REMOVE_RECURSE
  "libvpred_harness.a"
)
