# Empty compiler generated dependencies file for vpred_harness.
# This may be replaced when dependencies are built.
