file(REMOVE_RECURSE
  "CMakeFiles/vpred_harness.dir/experiment.cc.o"
  "CMakeFiles/vpred_harness.dir/experiment.cc.o.d"
  "CMakeFiles/vpred_harness.dir/pareto.cc.o"
  "CMakeFiles/vpred_harness.dir/pareto.cc.o.d"
  "CMakeFiles/vpred_harness.dir/sweep.cc.o"
  "CMakeFiles/vpred_harness.dir/sweep.cc.o.d"
  "CMakeFiles/vpred_harness.dir/table_printer.cc.o"
  "CMakeFiles/vpred_harness.dir/table_printer.cc.o.d"
  "CMakeFiles/vpred_harness.dir/trace_cache.cc.o"
  "CMakeFiles/vpred_harness.dir/trace_cache.cc.o.d"
  "libvpred_harness.a"
  "libvpred_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpred_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
