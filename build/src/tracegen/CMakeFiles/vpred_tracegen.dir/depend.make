# Empty dependencies file for vpred_tracegen.
# This may be replaced when dependencies are built.
