file(REMOVE_RECURSE
  "libvpred_tracegen.a"
)
