file(REMOVE_RECURSE
  "CMakeFiles/vpred_tracegen.dir/mixer.cc.o"
  "CMakeFiles/vpred_tracegen.dir/mixer.cc.o.d"
  "CMakeFiles/vpred_tracegen.dir/pattern.cc.o"
  "CMakeFiles/vpred_tracegen.dir/pattern.cc.o.d"
  "libvpred_tracegen.a"
  "libvpred_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpred_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
