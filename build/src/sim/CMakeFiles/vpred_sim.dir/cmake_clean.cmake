file(REMOVE_RECURSE
  "CMakeFiles/vpred_sim.dir/assembler.cc.o"
  "CMakeFiles/vpred_sim.dir/assembler.cc.o.d"
  "CMakeFiles/vpred_sim.dir/dataflow.cc.o"
  "CMakeFiles/vpred_sim.dir/dataflow.cc.o.d"
  "CMakeFiles/vpred_sim.dir/isa.cc.o"
  "CMakeFiles/vpred_sim.dir/isa.cc.o.d"
  "CMakeFiles/vpred_sim.dir/machine.cc.o"
  "CMakeFiles/vpred_sim.dir/machine.cc.o.d"
  "CMakeFiles/vpred_sim.dir/tracer.cc.o"
  "CMakeFiles/vpred_sim.dir/tracer.cc.o.d"
  "libvpred_sim.a"
  "libvpred_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpred_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
