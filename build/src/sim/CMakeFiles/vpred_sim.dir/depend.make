# Empty dependencies file for vpred_sim.
# This may be replaced when dependencies are built.
