
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assembler.cc" "src/sim/CMakeFiles/vpred_sim.dir/assembler.cc.o" "gcc" "src/sim/CMakeFiles/vpred_sim.dir/assembler.cc.o.d"
  "/root/repo/src/sim/dataflow.cc" "src/sim/CMakeFiles/vpred_sim.dir/dataflow.cc.o" "gcc" "src/sim/CMakeFiles/vpred_sim.dir/dataflow.cc.o.d"
  "/root/repo/src/sim/isa.cc" "src/sim/CMakeFiles/vpred_sim.dir/isa.cc.o" "gcc" "src/sim/CMakeFiles/vpred_sim.dir/isa.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/vpred_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/vpred_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/tracer.cc" "src/sim/CMakeFiles/vpred_sim.dir/tracer.cc.o" "gcc" "src/sim/CMakeFiles/vpred_sim.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vpred_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
