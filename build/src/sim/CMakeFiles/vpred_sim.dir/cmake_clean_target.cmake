file(REMOVE_RECURSE
  "libvpred_sim.a"
)
