
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alias_analysis_test.cc" "tests/CMakeFiles/vpred_tests.dir/alias_analysis_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/alias_analysis_test.cc.o.d"
  "/root/repo/tests/assembler_edge_test.cc" "tests/CMakeFiles/vpred_tests.dir/assembler_edge_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/assembler_edge_test.cc.o.d"
  "/root/repo/tests/assembler_test.cc" "tests/CMakeFiles/vpred_tests.dir/assembler_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/assembler_test.cc.o.d"
  "/root/repo/tests/assoc_dfcm_test.cc" "tests/CMakeFiles/vpred_tests.dir/assoc_dfcm_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/assoc_dfcm_test.cc.o.d"
  "/root/repo/tests/classifying_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/classifying_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/classifying_predictor_test.cc.o.d"
  "/root/repo/tests/confidence_dfcm_test.cc" "tests/CMakeFiles/vpred_tests.dir/confidence_dfcm_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/confidence_dfcm_test.cc.o.d"
  "/root/repo/tests/dataflow_test.cc" "tests/CMakeFiles/vpred_tests.dir/dataflow_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/dataflow_test.cc.o.d"
  "/root/repo/tests/delayed_update_test.cc" "tests/CMakeFiles/vpred_tests.dir/delayed_update_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/delayed_update_test.cc.o.d"
  "/root/repo/tests/dfcm_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/dfcm_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/dfcm_predictor_test.cc.o.d"
  "/root/repo/tests/fcm_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/fcm_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/fcm_predictor_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/vpred_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/hash_function_test.cc" "tests/CMakeFiles/vpred_tests.dir/hash_function_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/hash_function_test.cc.o.d"
  "/root/repo/tests/hybrid_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/hybrid_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/hybrid_predictor_test.cc.o.d"
  "/root/repo/tests/ideal_context_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/ideal_context_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/ideal_context_predictor_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/vpred_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/interference_test.cc" "tests/CMakeFiles/vpred_tests.dir/interference_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/interference_test.cc.o.d"
  "/root/repo/tests/isa_test.cc" "tests/CMakeFiles/vpred_tests.dir/isa_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/isa_test.cc.o.d"
  "/root/repo/tests/last_n_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/last_n_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/last_n_predictor_test.cc.o.d"
  "/root/repo/tests/last_value_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/last_value_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/last_value_predictor_test.cc.o.d"
  "/root/repo/tests/machine_ops_test.cc" "tests/CMakeFiles/vpred_tests.dir/machine_ops_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/machine_ops_test.cc.o.d"
  "/root/repo/tests/machine_test.cc" "tests/CMakeFiles/vpred_tests.dir/machine_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/machine_test.cc.o.d"
  "/root/repo/tests/mixer_test.cc" "tests/CMakeFiles/vpred_tests.dir/mixer_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/mixer_test.cc.o.d"
  "/root/repo/tests/pattern_test.cc" "tests/CMakeFiles/vpred_tests.dir/pattern_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/pattern_test.cc.o.d"
  "/root/repo/tests/predictor_factory_test.cc" "tests/CMakeFiles/vpred_tests.dir/predictor_factory_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/predictor_factory_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/vpred_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/repro_regression_test.cc" "tests/CMakeFiles/vpred_tests.dir/repro_regression_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/repro_regression_test.cc.o.d"
  "/root/repo/tests/sat_counter_test.cc" "tests/CMakeFiles/vpred_tests.dir/sat_counter_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/sat_counter_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/vpred_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/stride_occupancy_test.cc" "tests/CMakeFiles/vpred_tests.dir/stride_occupancy_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/stride_occupancy_test.cc.o.d"
  "/root/repo/tests/stride_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/stride_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/stride_predictor_test.cc.o.d"
  "/root/repo/tests/trace_io_test.cc" "tests/CMakeFiles/vpred_tests.dir/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/trace_io_test.cc.o.d"
  "/root/repo/tests/tracer_test.cc" "tests/CMakeFiles/vpred_tests.dir/tracer_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/tracer_test.cc.o.d"
  "/root/repo/tests/two_delta_predictor_test.cc" "tests/CMakeFiles/vpred_tests.dir/two_delta_predictor_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/two_delta_predictor_test.cc.o.d"
  "/root/repo/tests/types_test.cc" "tests/CMakeFiles/vpred_tests.dir/types_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/types_test.cc.o.d"
  "/root/repo/tests/vm_fuzz_test.cc" "tests/CMakeFiles/vpred_tests.dir/vm_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/vm_fuzz_test.cc.o.d"
  "/root/repo/tests/workload_semantics_test.cc" "tests/CMakeFiles/vpred_tests.dir/workload_semantics_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/workload_semantics_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/vpred_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/vpred_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vpred_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tracegen/CMakeFiles/vpred_tracegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vpred_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vpred_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/vpred_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
