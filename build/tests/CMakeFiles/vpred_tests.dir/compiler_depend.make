# Empty compiler generated dependencies file for vpred_tests.
# This may be replaced when dependencies are built.
