/**
 * @file
 * Unit tests for the set-associative tagged-level-2 DFCM.
 */

#include <gtest/gtest.h>

#include "core/assoc_dfcm_predictor.hh"
#include "core/dfcm_predictor.hh"
#include "core/stats.hh"
#include "tracegen/mixer.hh"

namespace vpred
{
namespace
{

AssocDfcmConfig
smallConfig(unsigned ways = 2)
{
    AssocDfcmConfig cfg;
    cfg.l1_bits = 8;
    cfg.set_bits = 8;
    cfg.ways = ways;
    cfg.tag_bits = 6;
    return cfg;
}

TEST(AssocDfcm, PredictsStridesLikeThePlainDfcm)
{
    AssocDfcmPredictor p(smallConfig());
    PredictorStats s;
    for (int i = 0; i < 100; ++i)
        s.record(p.predictAndUpdate(1, 100 + 7 * i));
    EXPECT_GE(s.correct, 94u);
    EXPECT_GT(p.hitRate(), 0.9);
}

TEST(AssocDfcm, TagMissFallsBackToLastValue)
{
    AssocDfcmPredictor p(smallConfig());
    // Cold predictor: unknown history -> stride 0 -> last value (0).
    EXPECT_EQ(p.predict(1), 0u);
    p.update(1, 42);
    // History advanced but the new context is not in the table
    // either: prediction = last value.
    EXPECT_EQ(p.predict(1), 42u);
}

TEST(AssocDfcm, LearnsContextPatterns)
{
    AssocDfcmPredictor p(smallConfig());
    const Value pattern[] = {9, 1, 7, 7, 2};
    PredictorStats s;
    for (int lap = 0; lap < 40; ++lap)
        for (Value v : pattern)
            s.record(p.predictAndUpdate(3, v));
    EXPECT_GT(s.accuracy(), 0.9);
}

TEST(AssocDfcm, AssociativityReducesConflictDamage)
{
    // Many contexts in a tiny table: 4-way beats direct-mapped of
    // the same total capacity.
    const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 24,
             .context_instructions = 24,
             .random_instructions = 3,
             .seed = 808},
            150000);

    AssocDfcmConfig direct = smallConfig(1);
    direct.set_bits = 8;                // 256 entries
    AssocDfcmConfig assoc = smallConfig(4);
    assoc.set_bits = 6;                 // 64 sets x 4 = 256 entries

    AssocDfcmPredictor pd(direct);
    AssocDfcmPredictor pa(assoc);
    const double acc_direct = runTrace(pd, trace).accuracy();
    const double acc_assoc = runTrace(pa, trace).accuracy();
    EXPECT_GT(acc_assoc, acc_direct - 0.01);
}

TEST(AssocDfcm, StorageModel)
{
    AssocDfcmConfig cfg;
    cfg.l1_bits = 10;
    cfg.set_bits = 8;
    cfg.ways = 2;
    cfg.tag_bits = 6;
    AssocDfcmPredictor p(cfg);
    // L1: (8+6) hash + 32 last. L2: 512 ways x (32+6+1+1).
    EXPECT_EQ(p.storageBits(),
              1024u * (8 + 6 + 32) + 512u * (32 + 6 + 1 + 1));
}

TEST(AssocDfcm, Name)
{
    EXPECT_EQ(AssocDfcmPredictor(smallConfig()).name(),
              "adfcm(l1=8,sets=8,w=2,tag=6)");
}

} // namespace
} // namespace vpred
