/**
 * @file
 * Unit tests for the MiniRISC ISA metadata and disassembler.
 */

#include <gtest/gtest.h>

#include "sim/isa.hh"

#include <set>
#include <string>

namespace vpred::sim
{
namespace
{

TEST(Isa, ControlClassification)
{
    EXPECT_TRUE(isControl(Op::Beq));
    EXPECT_TRUE(isControl(Op::Bgeu));
    EXPECT_TRUE(isControl(Op::J));
    EXPECT_TRUE(isControl(Op::Jal));
    EXPECT_TRUE(isControl(Op::Jr));
    EXPECT_TRUE(isControl(Op::Jalr));
    EXPECT_TRUE(isControl(Op::Syscall));
    EXPECT_FALSE(isControl(Op::Add));
    EXPECT_FALSE(isControl(Op::Lw));
    EXPECT_FALSE(isControl(Op::Slt));
    EXPECT_FALSE(isControl(Op::Li));
}

TEST(Isa, LoadStoreClassification)
{
    EXPECT_TRUE(isLoad(Op::Lw));
    EXPECT_TRUE(isLoad(Op::Lbu));
    EXPECT_FALSE(isLoad(Op::Sw));
    EXPECT_TRUE(isStore(Op::Sb));
    EXPECT_FALSE(isStore(Op::Lb));
    EXPECT_FALSE(isStore(Op::Add));
}

TEST(Isa, WritesRegister)
{
    EXPECT_TRUE(writesRegister({Op::Add, 5, 1, 2, 0}));
    EXPECT_TRUE(writesRegister({Op::Lw, 5, 1, 0, 4}));
    EXPECT_TRUE(writesRegister({Op::Jal, 31, 0, 0, 8}));
    // rd == 0 never counts.
    EXPECT_FALSE(writesRegister({Op::Add, 0, 1, 2, 0}));
    // Stores, branches, plain jumps and syscall never write.
    EXPECT_FALSE(writesRegister({Op::Sw, 0, 1, 5, 0}));
    EXPECT_FALSE(writesRegister({Op::Beq, 5, 1, 2, 0}));
    EXPECT_FALSE(writesRegister({Op::J, 5, 0, 0, 0}));
    EXPECT_FALSE(writesRegister({Op::Syscall, 5, 0, 0, 0}));
}

TEST(Isa, OpNamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (unsigned i = 0; i < kOpCount; ++i) {
        const std::string n = opName(static_cast<Op>(i));
        EXPECT_FALSE(n.empty());
        EXPECT_NE(n, "?");
        EXPECT_TRUE(names.insert(n).second) << "duplicate: " << n;
    }
}

TEST(Isa, DisassembleFormats)
{
    EXPECT_EQ(disassemble({Op::Add, 8, 9, 10, 0}), "add r8, r9, r10");
    EXPECT_EQ(disassemble({Op::Addi, 8, 8, 0, -1}), "addi r8, r8, -1");
    EXPECT_EQ(disassemble({Op::Lw, 4, 29, 0, 8}), "lw r4, 8(r29)");
    EXPECT_EQ(disassemble({Op::Sw, 0, 29, 4, 8}), "sw r4, 8(r29)");
    EXPECT_EQ(disassemble({Op::Beq, 0, 1, 2, 7}), "beq r1, r2, #7");
    EXPECT_EQ(disassemble({Op::J, 0, 0, 0, 3}), "j #3");
    EXPECT_EQ(disassemble({Op::Jr, 0, 31, 0, 0}), "jr r31");
    EXPECT_EQ(disassemble({Op::Li, 2, 0, 0, 10}), "li r2, 10");
    EXPECT_EQ(disassemble({Op::Syscall, 0, 0, 0, 0}), "syscall");
    EXPECT_EQ(disassemble({Op::Nop, 0, 0, 0, 0}), "nop");
}

} // namespace
} // namespace vpred::sim
