/**
 * @file
 * Tests for the bench-compare throughput-regression gate: the metric
 * parser against documents shaped exactly like ResultsJsonWriter's
 * output (including one produced by the real emitter), the
 * regression rule at the 10% threshold, and the acceptance cases the
 * gate exists for — fail on a synthetic 10%+ regression, pass on an
 * identical baseline.
 */

#include "bench_compare/compare.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/results_json.hh"

namespace
{

using bench_compare::Comparison;
using bench_compare::MetricDelta;

/** A minimal BENCH document with the given metrics object body. */
std::string
doc(const std::string& metrics_body)
{
    return "{\n  \"schema_version\": 4,\n  \"experiment\": \"t\",\n"
           "  \"metrics\": {\n"
            + metrics_body + "\n  },\n  \"results\": []\n}\n";
}

const MetricDelta*
find(const Comparison& cmp, const std::string& name)
{
    for (const MetricDelta& d : cmp.deltas)
        if (d.name == name)
            return &d;
    return nullptr;
}

TEST(BenchCompareParse, ReadsEmitterShapedMetrics)
{
    std::vector<std::string> errors;
    const auto m = bench_compare::parseMetrics(
            doc("    \"a_records_per_sec\": 1.5e8,\n"
                "    \"b_speedup\": 2.25"),
            "baseline", errors);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(errors.empty());
    ASSERT_EQ(m->size(), 2u);
    EXPECT_EQ((*m)[0].first, "a_records_per_sec");
    EXPECT_DOUBLE_EQ((*m)[0].second, 1.5e8);
    EXPECT_EQ((*m)[1].first, "b_speedup");
    EXPECT_DOUBLE_EQ((*m)[1].second, 2.25);
}

TEST(BenchCompareParse, RoundTripsTheRealEmitter)
{
    vpred::harness::ResultsJsonWriter json("unit", 1.0, 1);
    json.addMetric("dfcm_l2column_multigeom_records_per_sec", 4.15e8);
    json.addMetric("dfcm_simd_speedup_vs_scalar", 1.36);
    std::vector<std::string> errors;
    const auto m = bench_compare::parseMetrics(json.toJson(), "fresh",
                                               errors);
    ASSERT_TRUE(m.has_value()) << (errors.empty() ? "" : errors[0]);
    ASSERT_EQ(m->size(), 2u);
    EXPECT_DOUBLE_EQ((*m)[0].second, 4.15e8);
    EXPECT_DOUBLE_EQ((*m)[1].second, 1.36);
}

TEST(BenchCompareParse, MissingMetricsObjectIsAnError)
{
    std::vector<std::string> errors;
    const auto m = bench_compare::parseMetrics(
            "{ \"schema_version\": 4, \"results\": [] }", "baseline",
            errors);
    EXPECT_FALSE(m.has_value());
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("baseline"), std::string::npos);
}

TEST(BenchCompareParse, NonNumericValueIsAnError)
{
    std::vector<std::string> errors;
    const auto m = bench_compare::parseMetrics(
            doc("    \"a_records_per_sec\": fast"), "fresh", errors);
    EXPECT_FALSE(m.has_value());
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("a_records_per_sec"), std::string::npos);
}

TEST(BenchCompareGate, IdenticalRunsPass)
{
    const std::string d = doc("    \"x_records_per_sec\": 3.0e8");
    const Comparison cmp = bench_compare::compare(d, d, 0.10);
    EXPECT_TRUE(cmp.errors.empty());
    EXPECT_FALSE(cmp.anyRegression());
}

TEST(BenchCompareGate, TenPercentPlusDropFails)
{
    // 3.0e8 -> 2.6e8 is a 13.3% drop: past the 10% threshold.
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 3.0e8"),
            doc("    \"x_records_per_sec\": 2.6e8"), 0.10);
    EXPECT_TRUE(cmp.errors.empty());
    EXPECT_TRUE(cmp.anyRegression());
    const MetricDelta* d = find(cmp, "x_records_per_sec");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->regressed);
    ASSERT_TRUE(d->ratio.has_value());
    EXPECT_NEAR(*d->ratio, 2.6 / 3.0, 1e-12);
}

TEST(BenchCompareGate, DropWithinThresholdPasses)
{
    // A 5% dip is measurement noise, not a regression.
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 3.0e8"),
            doc("    \"x_records_per_sec\": 2.85e8"), 0.10);
    EXPECT_FALSE(cmp.anyRegression());
}

TEST(BenchCompareGate, NonThroughputMetricsNeverFail)
{
    // Speedups and counters are informational: a halved speedup is
    // reported but does not trip the gate.
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_simd_speedup_vs_scalar\": 1.4"),
            doc("    \"x_simd_speedup_vs_scalar\": 0.7"), 0.10);
    EXPECT_FALSE(cmp.anyRegression());
}

TEST(BenchCompareGate, NewAndGoneMetricsAreReportedNotFailed)
{
    const Comparison cmp = bench_compare::compare(
            doc("    \"old_records_per_sec\": 1.0e8"),
            doc("    \"new_records_per_sec\": 2.0e8"), 0.10);
    EXPECT_FALSE(cmp.anyRegression());
    const MetricDelta* gone = find(cmp, "old_records_per_sec");
    ASSERT_NE(gone, nullptr);
    EXPECT_FALSE(gone->fresh.has_value());
    const MetricDelta* fresh = find(cmp, "new_records_per_sec");
    ASSERT_NE(fresh, nullptr);
    EXPECT_FALSE(fresh->baseline.has_value());
}

TEST(BenchCompareGate, ImprovementPasses)
{
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 3.0e8"),
            doc("    \"x_records_per_sec\": 4.0e8"), 0.10);
    EXPECT_FALSE(cmp.anyRegression());
}

TEST(BenchCompareGate, ZeroBaselineThroughputIsIncomparableAndFails)
{
    // A baseline whose records/sec is 0.0 (a bench that never ran,
    // or a truncated file) used to be skipped silently, so ANY fresh
    // run passed against it. It must fail the gate.
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 0.0"),
            doc("    \"x_records_per_sec\": 2.6e8"), 0.10);
    EXPECT_TRUE(cmp.errors.empty());
    EXPECT_FALSE(cmp.anyRegression());
    EXPECT_TRUE(cmp.anyIncomparable());
    EXPECT_TRUE(cmp.anyFailure());
    const MetricDelta* d = find(cmp, "x_records_per_sec");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->incomparable);
    EXPECT_FALSE(d->ratio.has_value());
}

TEST(BenchCompareGate, NanBaselineThroughputIsIncomparableAndFails)
{
    // strtod parses the literal "nan" — a malformed baseline reaches
    // compare() as a NaN value, not a parse error.
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": nan"),
            doc("    \"x_records_per_sec\": 2.6e8"), 0.10);
    EXPECT_TRUE(cmp.errors.empty());
    EXPECT_TRUE(cmp.anyIncomparable());
    EXPECT_TRUE(cmp.anyFailure());
}

TEST(BenchCompareGate, ZeroFreshThroughputIsIncomparableAndFails)
{
    // Symmetric rule: a fresh run reporting 0 records/sec is a
    // broken measurement, not an infinite regression.
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 3.0e8"),
            doc("    \"x_records_per_sec\": 0.0"), 0.10);
    EXPECT_TRUE(cmp.anyIncomparable());
    EXPECT_TRUE(cmp.anyFailure());
}

TEST(BenchCompareGate, CorruptBaselineWithNoFreshCounterpartStillFails)
{
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 0.0"),
            doc("    \"y_records_per_sec\": 1.0e8"), 0.10);
    EXPECT_TRUE(cmp.anyIncomparable());
}

TEST(BenchCompareGate, NonThroughputZeroOrNanNeverFails)
{
    // Informational metrics keep their report-only contract even
    // when degenerate.
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_speedup\": 0.0,\n    \"y_count\": nan"),
            doc("    \"x_speedup\": 1.0,\n    \"y_count\": 3.0"), 0.10);
    EXPECT_FALSE(cmp.anyIncomparable());
    EXPECT_FALSE(cmp.anyFailure());
}

TEST(BenchCompareGate, CleanComparisonHasNoFailure)
{
    const std::string d = doc("    \"x_records_per_sec\": 3.0e8");
    const Comparison cmp = bench_compare::compare(d, d, 0.10);
    EXPECT_FALSE(cmp.anyFailure());
}

TEST(BenchCompareLatency, ClassifierNeedsQuantileTagAndNsSuffix)
{
    // Both tag orders the benches emit are latency quantiles...
    EXPECT_TRUE(bench_compare::isLatencyQuantileMetric(
            "service_p99_ingest_to_predict_ns"));
    EXPECT_TRUE(bench_compare::isLatencyQuantileMetric(
            "drain_batch_p50_ns"));
    // ...but a bare duration is ungated, as is a quantile of a
    // non-duration counter.
    EXPECT_FALSE(bench_compare::isLatencyQuantileMetric(
            "trace_generate_ns"));
    EXPECT_FALSE(
            bench_compare::isLatencyQuantileMetric("backlog_p99_count"));
    EXPECT_FALSE(bench_compare::isLatencyQuantileMetric(
            "x_records_per_sec"));
}

TEST(BenchCompareLatency, RisePastThresholdFails)
{
    // p99 6.5ms -> 9.0ms is a 38% rise: past the 25% latency
    // threshold even though it would pass the throughput rule.
    const Comparison cmp = bench_compare::compare(
            doc("    \"service_p99_ingest_to_predict_ns\": 6.5e6"),
            doc("    \"service_p99_ingest_to_predict_ns\": 9.0e6"),
            0.10, 0.25);
    EXPECT_TRUE(cmp.errors.empty());
    EXPECT_TRUE(cmp.anyRegression());
    const MetricDelta* d =
            find(cmp, "service_p99_ingest_to_predict_ns");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->regressed);
    ASSERT_TRUE(d->ratio.has_value());
    EXPECT_NEAR(*d->ratio, 9.0 / 6.5, 1e-12);
}

TEST(BenchCompareLatency, RiseWithinThresholdPasses)
{
    const Comparison cmp = bench_compare::compare(
            doc("    \"service_p50_ingest_to_predict_ns\": 6.5e6"),
            doc("    \"service_p50_ingest_to_predict_ns\": 7.5e6"),
            0.10, 0.25);
    EXPECT_FALSE(cmp.anyFailure());
}

TEST(BenchCompareLatency, ImprovementPasses)
{
    // Latency gates the opposite direction from throughput: a 50%
    // *drop* is an improvement, not a regression.
    const Comparison cmp = bench_compare::compare(
            doc("    \"service_p99_ingest_to_predict_ns\": 6.5e6"),
            doc("    \"service_p99_ingest_to_predict_ns\": 3.2e6"),
            0.10, 0.25);
    EXPECT_FALSE(cmp.anyFailure());
}

TEST(BenchCompareLatency, AbsentFromBaselineIsComparableByAbsence)
{
    // A baseline committed before the quantile metrics existed must
    // keep passing: the new metrics are reported, never failed.
    const Comparison cmp = bench_compare::compare(
            doc("    \"service_ingest_records_per_sec\": 3.0e6"),
            doc("    \"service_ingest_records_per_sec\": 3.1e6,\n"
                "    \"service_p50_ingest_to_predict_ns\": 6.5e6,\n"
                "    \"service_p99_ingest_to_predict_ns\": 4.8e7"),
            0.10, 0.25);
    EXPECT_FALSE(cmp.anyFailure());
    const MetricDelta* d =
            find(cmp, "service_p99_ingest_to_predict_ns");
    ASSERT_NE(d, nullptr);
    EXPECT_FALSE(d->baseline.has_value());
    EXPECT_FALSE(d->regressed);
    EXPECT_FALSE(d->incomparable);
}

TEST(BenchCompareLatency, ZeroQuantileIsIncomparableAndFails)
{
    // A 0 ns quantile is a clamped or missing producer timestamp —
    // exactly the measurement bug this gate must refuse to bless.
    const Comparison cmp = bench_compare::compare(
            doc("    \"service_p50_ingest_to_predict_ns\": 6.5e6"),
            doc("    \"service_p50_ingest_to_predict_ns\": 0.0"), 0.10,
            0.25);
    EXPECT_TRUE(cmp.anyIncomparable());
    EXPECT_TRUE(cmp.anyFailure());
}

TEST(BenchCompareLatency, ThresholdIsIndependentOfThroughputs)
{
    // One doc, both kinds: a throughput well within its 10% band and
    // a quantile just past its own 25% band — only the latency fails.
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 3.0e8,\n"
                "    \"x_p99_ns\": 1.0e6"),
            doc("    \"x_records_per_sec\": 2.9e8,\n"
                "    \"x_p99_ns\": 1.3e6"),
            0.10, 0.25);
    EXPECT_TRUE(cmp.anyRegression());
    const MetricDelta* thr = find(cmp, "x_records_per_sec");
    ASSERT_NE(thr, nullptr);
    EXPECT_FALSE(thr->regressed);
    const MetricDelta* lat = find(cmp, "x_p99_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_TRUE(lat->regressed);
}

TEST(BenchCompareReport, LatencyVerdictLineCountsQuantiles)
{
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_p99_ns\": 1.0e6"),
            doc("    \"x_p99_ns\": 2.0e6"), 0.10, 0.25);
    std::ostringstream os;
    bench_compare::printReport(os, cmp, 0.10, 0.25);
    EXPECT_NE(os.str().find("REGRESSED x_p99_ns"), std::string::npos);
    EXPECT_NE(os.str().find(
                      "1 latency quantile(s) more than 25% above"),
              std::string::npos);
    EXPECT_NE(os.str().find("FAIL"), std::string::npos);
}

TEST(BenchCompareReport, MarksIncomparableAndFailsVerdict)
{
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 0.0"),
            doc("    \"x_records_per_sec\": 2.6e8"), 0.10);
    std::ostringstream os;
    bench_compare::printReport(os, cmp, 0.10);
    EXPECT_NE(os.str().find("INCOMPARABLE x_records_per_sec"),
              std::string::npos);
    EXPECT_NE(os.str().find("FAIL"), std::string::npos);
    EXPECT_NE(os.str().find("incomparable"), std::string::npos);
}

TEST(BenchCompareReport, MarksRegressionsAndVerdict)
{
    const Comparison cmp = bench_compare::compare(
            doc("    \"x_records_per_sec\": 3.0e8"),
            doc("    \"x_records_per_sec\": 2.0e8"), 0.10);
    std::ostringstream os;
    bench_compare::printReport(os, cmp, 0.10);
    EXPECT_NE(os.str().find("REGRESSED x_records_per_sec"),
              std::string::npos);
    EXPECT_NE(os.str().find("FAIL: 1"), std::string::npos);
}

/** A BENCH document with a metrics object and a scaling table shaped
 *  like the service emitter's, with the given row lines. */
std::string
scalingDoc(const std::string& rows,
           const std::string& metrics_body =
                   "    \"svc_records_per_sec\": 4.0e6")
{
    return "{\n  \"schema_version\": 8,\n  \"experiment\": \"service\","
           "\n  \"scaling\": {\n"
           "    \"columns\": [\"backend\", \"producers\", \"shards\", "
           "\"records\", \"records_per_sec\", "
           "\"p50_ingest_to_predict_ns\", \"p99_ingest_to_predict_ns\", "
           "\"hit_rate_col0\"],\n"
           "    \"rows\": [\n"
            + rows
            + "\n    ]\n  },\n  \"metrics\": {\n" + metrics_body
            + "\n  },\n  \"results\": []\n}\n";
}

TEST(BenchCompareScaling, SynthesizesGatedMetricsPerRow)
{
    std::vector<std::string> errors;
    const auto m = bench_compare::parseScalingMetrics(
            scalingDoc("      [\"avx512\", 1, 1, 4e+06, 4.0e6, 1500, "
                       "4000, 0.28],\n"
                       "      [\"scalar\", 2, 2, 4e+06, 3.5e6, 2100, "
                       "8000, 0.28]"),
            "baseline", errors);
    ASSERT_TRUE(m.has_value()) << (errors.empty() ? "" : errors[0]);
    EXPECT_TRUE(errors.empty());
    // One gated throughput per row; the latency quantiles, records
    // and hit_rate columns stay out (regime-dependent or ungated).
    ASSERT_EQ(m->size(), 2u);
    EXPECT_EQ((*m)[0].first, "scaling_avx512_p1_s1_records_per_sec");
    EXPECT_DOUBLE_EQ((*m)[0].second, 4.0e6);
    EXPECT_EQ((*m)[1].first, "scaling_scalar_p2_s2_records_per_sec");
    EXPECT_DOUBLE_EQ((*m)[1].second, 3.5e6);
    EXPECT_TRUE(bench_compare::isThroughputMetric((*m)[0].first));
}

TEST(BenchCompareScaling, DocumentWithoutTableYieldsNothing)
{
    std::vector<std::string> errors;
    const auto m = bench_compare::parseScalingMetrics(
            doc("    \"a_records_per_sec\": 1.0e8"), "fresh", errors);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(errors.empty());
    EXPECT_TRUE(m->empty());
}

TEST(BenchCompareScaling, RaggedRowIsAnError)
{
    std::vector<std::string> errors;
    const auto m = bench_compare::parseScalingMetrics(
            scalingDoc("      [\"avx512\", 1, 1, 4e+06, 4.0e6, 1500]"),
            "baseline", errors);
    EXPECT_FALSE(m.has_value());
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("baseline"), std::string::npos);
}

TEST(BenchCompareScaling, NonNumericGatedCellIsAnError)
{
    std::vector<std::string> errors;
    const auto m = bench_compare::parseScalingMetrics(
            scalingDoc("      [\"avx512\", 1, 1, 4e+06, fast, 1500, "
                       "4000, 0.28]"),
            "fresh", errors);
    EXPECT_FALSE(m.has_value());
    ASSERT_EQ(errors.size(), 1u);
}

TEST(BenchCompareScaling, RowRegressionFailsTheGate)
{
    const std::string base = scalingDoc(
            "      [\"avx512\", 1, 1, 4e+06, 4.0e6, 1500, 4000, 0.28],\n"
            "      [\"avx512\", 2, 1, 4e+06, 4.2e6, 2100, 8000, 0.28]");
    // Headline metric holds; the 2-producer row's throughput drops
    // 40% — exactly the corner-of-the-curve regression the per-row
    // gate exists to catch.
    const std::string fresh = scalingDoc(
            "      [\"avx512\", 1, 1, 4e+06, 4.0e6, 1500, 4000, 0.28],\n"
            "      [\"avx512\", 2, 1, 4e+06, 2.5e6, 2100, 8000, 0.28]");
    const Comparison cmp = bench_compare::compare(base, fresh, 0.10);
    EXPECT_TRUE(cmp.errors.empty());
    EXPECT_TRUE(cmp.anyFailure());
    const MetricDelta* d =
            find(cmp, "scaling_avx512_p2_s1_records_per_sec");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->regressed);
    const MetricDelta* ok =
            find(cmp, "scaling_avx512_p1_s1_records_per_sec");
    ASSERT_NE(ok, nullptr);
    EXPECT_FALSE(ok->regressed);
}

TEST(BenchCompareScaling, RowLatencyQuantilesStayUngated)
{
    // p99 triples; only throughput is synthesized per row, so the
    // gate stays green — a reduced-scale smoke sweep shifts tail
    // latency by regime, and gating it would fail every CI run.
    const std::string base = scalingDoc(
            "      [\"avx512\", 1, 1, 4e+06, 4.0e6, 1500, 4000, 0.28]");
    const std::string fresh = scalingDoc(
            "      [\"avx512\", 1, 1, 4e+06, 4.0e6, 1500, 12000, 0.28]");
    const Comparison cmp =
            bench_compare::compare(base, fresh, 0.10, 0.25);
    EXPECT_TRUE(cmp.errors.empty());
    EXPECT_FALSE(cmp.anyFailure());
    EXPECT_EQ(find(cmp, "scaling_avx512_p1_s1_p99_ingest_to_predict_ns"),
              nullptr);
}

TEST(BenchCompareScaling, SmokeSubsetComparesByAbsence)
{
    // Committed full grid, fresh smoke run with only one of the rows:
    // the missing row is reported, never failed; the shared row still
    // gates.
    const std::string base = scalingDoc(
            "      [\"avx512\", 1, 1, 4e+06, 4.0e6, 1500, 4000, 0.28],\n"
            "      [\"scalar\", 4, 2, 4e+06, 3.0e6, 4600, 16000, 0.28]");
    const std::string fresh = scalingDoc(
            "      [\"avx512\", 1, 1, 4e+06, 3.9e6, 1500, 4000, 0.28]");
    const Comparison cmp = bench_compare::compare(base, fresh, 0.10);
    EXPECT_TRUE(cmp.errors.empty());
    EXPECT_FALSE(cmp.anyFailure());
    const MetricDelta* gone =
            find(cmp, "scaling_scalar_p4_s2_records_per_sec");
    ASSERT_NE(gone, nullptr);
    EXPECT_FALSE(gone->fresh.has_value());
    EXPECT_FALSE(gone->regressed);
}

TEST(BenchCompareScaling, RoundTripsTheRealTableEmitter)
{
    vpred::harness::ResultsJsonWriter json("service", 1.0, 1);
    json.addMetric("svc_records_per_sec", 4.0e6);
    json.addTable("scaling",
                  {"backend", "producers", "shards", "records",
                   "records_per_sec", "p50_ingest_to_predict_ns",
                   "p99_ingest_to_predict_ns", "hit_rate_col0"},
                  {{std::string("avx2"), 2.0, 1.0, 4e6, 3.6e6, 2200.0,
                    9100.0, 0.28}});
    std::vector<std::string> errors;
    const auto m = bench_compare::parseScalingMetrics(json.toJson(),
                                                      "fresh", errors);
    ASSERT_TRUE(m.has_value()) << (errors.empty() ? "" : errors[0]);
    ASSERT_EQ(m->size(), 1u);
    EXPECT_EQ((*m)[0].first, "scaling_avx2_p2_s1_records_per_sec");
    EXPECT_DOUBLE_EQ((*m)[0].second, 3.6e6);
}

} // namespace
