/**
 * @file
 * Unit tests for the FCM predictor, including the paper's Figure 4
 * worked example (stride patterns scatter over the level-2 table).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/fcm_predictor.hh"
#include "core/stats.hh"

namespace vpred
{
namespace
{

FcmConfig
smallConfig()
{
    FcmConfig cfg;
    cfg.l1_bits = 6;
    cfg.l2_bits = 12;
    return cfg;
}

TEST(FcmPredictor, LearnsARepeatingContextPattern)
{
    FcmPredictor p(smallConfig());
    const Value pattern[] = {17, 4, 99, 4, 23};
    PredictorStats s;
    for (int lap = 0; lap < 40; ++lap) {
        for (Value v : pattern)
            s.record(p.predictAndUpdate(1, v));
    }
    // After learning, the irregular repeating pattern is predicted.
    EXPECT_GT(s.accuracy(), 0.9);
}

TEST(FcmPredictor, PredictsStridePatternsAfterOneFullPeriod)
{
    // The FCM can predict strides, but only after the pattern has
    // repeated (it memorizes each context separately).
    FcmPredictor p(smallConfig());
    int wrong_second_lap = 0;
    for (int lap = 0; lap < 2; ++lap) {
        for (int i = 0; i < 50; ++i) {
            const bool ok = p.predictAndUpdate(1, i);
            if (lap == 1 && !ok)
                ++wrong_second_lap;
        }
    }
    EXPECT_LE(wrong_second_lap, 3);
}

TEST(FcmPredictor, CannotPredictAnUnseenStrideContinuation)
{
    // First pass over a stride: every prediction of a new value
    // fails — the paper's "learning period is longer" remark.
    FcmPredictor p(smallConfig());
    PredictorStats s;
    for (int i = 1; i <= 50; ++i)
        s.record(p.predictAndUpdate(1, 100 + 3 * i));
    EXPECT_EQ(s.correct, 0u);
}

TEST(FcmPredictor, Figure4StrideOccupiesManyL2Entries)
{
    // The pattern 0 1 2 3 4 5 6 repeated: an order-3 FCM stores it
    // in as many level-2 entries as there are distinct values.
    FcmConfig cfg;
    cfg.l1_bits = 4;
    cfg.l2_bits = 12;
    cfg.hash = ShiftFoldHash::concat(12, 3);
    FcmPredictor p(cfg);

    // Warm up one lap (the cold zero-history contexts differ).
    for (int v = 0; v <= 6; ++v)
        p.update(1, v);
    std::set<std::uint64_t> entries;
    for (int lap = 0; lap < 5; ++lap) {
        for (int v = 0; v <= 6; ++v) {
            entries.insert(p.l2IndexFor(1));
            p.update(1, v);
        }
    }
    // 7 distinct contexts (one per value in the pattern).
    EXPECT_EQ(entries.size(), 7u);
}

TEST(FcmPredictor, UpdateWritesEntryPredictionWasReadFrom)
{
    FcmPredictor p(smallConfig());
    const std::uint64_t idx = p.l2IndexFor(3);
    p.update(3, 1234);
    // A different pc mapping to the same history would now read 1234.
    FcmConfig cfg = smallConfig();
    (void)cfg;
    EXPECT_EQ(p.l2IndexFor(3), ShiftFoldHash::fsR5(12).insert(idx, 1234));
}

TEST(FcmPredictor, SharedL2IsVisibleAcrossInstructions)
{
    // Identical histories from different PCs share level-2 entries
    // (the paper's l2_pc aliasing, constructive for equal patterns).
    FcmPredictor p(smallConfig());
    for (int lap = 0; lap < 30; ++lap) {
        for (Value v : {5u, 9u, 2u})
            p.predictAndUpdate(1, v);
    }
    // pc 2 has never been seen, but after its history warms up it
    // inherits pc 1's pattern knowledge.
    PredictorStats s;
    for (int lap = 0; lap < 4; ++lap) {
        for (Value v : {5u, 9u, 2u})
            s.record(p.predictAndUpdate(2, v));
    }
    EXPECT_GT(s.accuracy(), 0.5);
}

TEST(FcmPredictor, StorageModel)
{
    // L1: one hashed history (l2_bits) per entry; L2: one value.
    FcmConfig cfg;
    cfg.l1_bits = 16;
    cfg.l2_bits = 12;
    FcmPredictor p(cfg);
    EXPECT_EQ(p.storageBits(),
              (1ull << 16) * 12 + (1ull << 12) * 32);
}

TEST(FcmPredictor, OrderFollowsHash)
{
    FcmConfig cfg;
    cfg.l1_bits = 4;
    cfg.l2_bits = 20;
    EXPECT_EQ(FcmPredictor(cfg).order(), 4u);
    cfg.l2_bits = 8;
    EXPECT_EQ(FcmPredictor(cfg).order(), 2u);
}

TEST(FcmPredictor, Name)
{
    FcmConfig cfg;
    cfg.l1_bits = 16;
    cfg.l2_bits = 12;
    EXPECT_EQ(FcmPredictor(cfg).name(), "fcm(l1=16,l2=12)");
}

} // namespace
} // namespace vpred
