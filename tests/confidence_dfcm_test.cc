/**
 * @file
 * Unit tests for the confidence-estimating DFCM (the Section 4.2
 * extension: level-2 tags from a second, orthogonal hash).
 */

#include <gtest/gtest.h>

#include "core/confidence_dfcm.hh"
#include "core/dfcm_predictor.hh"
#include "core/stats.hh"
#include "tracegen/mixer.hh"

namespace vpred
{
namespace
{

ConfidenceDfcmConfig
config(ConfidenceMode mode, unsigned tag_bits = 4)
{
    ConfidenceDfcmConfig cfg;
    cfg.l1_bits = 10;
    cfg.l2_bits = 10;  // small table -> real hash aliasing
    cfg.tag_bits = tag_bits;
    cfg.mode = mode;
    return cfg;
}

ValueTrace
aliasHeavyTrace()
{
    tracegen::MixSpec spec;
    spec.stride_instructions = 30;
    spec.context_instructions = 25;
    spec.random_instructions = 4;
    spec.seed = 2718;
    return tracegen::makeMixedTrace(spec, 120000);
}

TEST(ConfidenceDfcm, UngatedMatchesPlainDfcm)
{
    const ValueTrace trace = aliasHeavyTrace();
    ConfidenceDfcm gated(config(ConfidenceMode::None));
    const GatedStats gs = gated.run(trace);

    DfcmPredictor plain({.l1_bits = 10, .l2_bits = 10});
    const PredictorStats ps = runTrace(plain, trace);

    EXPECT_EQ(gs.attempted, gs.total);
    EXPECT_EQ(gs.correct, ps.correct);
    EXPECT_DOUBLE_EQ(gs.coverage(), 1.0);
}

TEST(ConfidenceDfcm, TagGateRaisesAccuracyOfAttempted)
{
    // The paper's premise: hash aliasing causes most mispredictions,
    // and a second-hash tag detects it. Gated accuracy must beat the
    // ungated accuracy at less-than-total but substantial coverage.
    const ValueTrace trace = aliasHeavyTrace();
    const GatedStats ungated =
            ConfidenceDfcm(config(ConfidenceMode::None)).run(trace);
    const GatedStats gated =
            ConfidenceDfcm(config(ConfidenceMode::Tag)).run(trace);

    EXPECT_LT(gated.coverage(), 1.0);
    EXPECT_GT(gated.coverage(), 0.5);
    EXPECT_GT(gated.accuracy(), ungated.accuracy() + 0.05);
}

TEST(ConfidenceDfcm, MoreTagBitsMoreFiltering)
{
    const ValueTrace trace = aliasHeavyTrace();
    double prev_acc = 0.0;
    for (unsigned bits : {1u, 2u, 4u, 8u}) {
        const GatedStats s =
                ConfidenceDfcm(config(ConfidenceMode::Tag, bits))
                        .run(trace);
        // Wider tags filter at least as precisely (small tolerance
        // for hash luck).
        EXPECT_GT(s.accuracy(), prev_acc - 0.02) << bits << " bits";
        prev_acc = s.accuracy();
    }
}

TEST(ConfidenceDfcm, CounterGateAlsoFilters)
{
    const ValueTrace trace = aliasHeavyTrace();
    const GatedStats ungated =
            ConfidenceDfcm(config(ConfidenceMode::None)).run(trace);
    const GatedStats gated =
            ConfidenceDfcm(config(ConfidenceMode::Counter)).run(trace);
    EXPECT_LT(gated.coverage(), 1.0);
    EXPECT_GT(gated.accuracy(), ungated.accuracy());
}

TEST(ConfidenceDfcm, CombinedGateIsStricterThanEither)
{
    const ValueTrace trace = aliasHeavyTrace();
    const GatedStats tag =
            ConfidenceDfcm(config(ConfidenceMode::Tag)).run(trace);
    const GatedStats ctr =
            ConfidenceDfcm(config(ConfidenceMode::Counter)).run(trace);
    const GatedStats both =
            ConfidenceDfcm(config(ConfidenceMode::TagAndCounter))
                    .run(trace);
    EXPECT_LE(both.attempted, tag.attempted);
    EXPECT_LE(both.attempted, ctr.attempted);
    EXPECT_GE(both.accuracy(), std::max(tag.accuracy(), ctr.accuracy())
                      - 0.02);
}

TEST(ConfidenceDfcm, PerfectPatternStaysFullyCovered)
{
    // A pure stride at a private pc: no aliasing, the tag always
    // matches after warm-up, so the gate barely costs coverage.
    ConfidenceDfcm p(config(ConfidenceMode::Tag));
    GatedStats stats;
    for (int i = 0; i < 5000; ++i)
        p.step(1, 3 * i, stats);
    EXPECT_GT(stats.coverage(), 0.99);
    EXPECT_GT(stats.accuracy(), 0.99);
}

TEST(ConfidenceDfcm, EffectiveAccuracyNeverExceedsCoverageBound)
{
    const ValueTrace trace = aliasHeavyTrace();
    const GatedStats s =
            ConfidenceDfcm(config(ConfidenceMode::Tag)).run(trace);
    EXPECT_LE(s.effectiveAccuracy(), s.coverage());
    EXPECT_LE(s.effectiveAccuracy(), s.accuracy());
    EXPECT_EQ(s.total, trace.size());
}

TEST(ConfidenceDfcm, StorageAccountsForTagsAndCounters)
{
    ConfidenceDfcmConfig cfg;
    cfg.l1_bits = 10;
    cfg.l2_bits = 10;
    cfg.tag_bits = 4;
    cfg.counter_bits = 2;
    const ConfidenceDfcm p(cfg);
    // L1: hist + last + tag hist; L2: stride + tag + counter.
    EXPECT_EQ(p.storageBits(),
              1024u * (10 + 32 + 10) + 1024u * (32 + 4 + 2));
}

TEST(ConfidenceDfcm, Name)
{
    EXPECT_EQ(ConfidenceDfcm(config(ConfidenceMode::Tag)).name(),
              "cdfcm(l1=10,l2=10,tag=4,ctr=2,tag)");
}

} // namespace
} // namespace vpred
