/**
 * @file
 * Edge-case and negative tests for the assembler (complements
 * assembler_test.cc).
 */

#include <gtest/gtest.h>

#include "sim/assembler.hh"

namespace vpred::sim
{
namespace
{

TEST(AssemblerEdge, RejectsBareNumberAsRegister)
{
    // The silent-constant-in-register-slot trap must be an error.
    EXPECT_THROW(assemble("mul $t0, $t1, 21\n"), AsmError);
    EXPECT_THROW(assemble("add $t0, 5, $t1\n"), AsmError);
}

TEST(AssemblerEdge, RejectsBareNameAsRegister)
{
    EXPECT_THROW(assemble("add t0, $t1, $t2\n"), AsmError);
}

TEST(AssemblerEdge, AcceptsDollarNumberAndRNumber)
{
    const Program p = assemble("add $8, r9, $t2\n");
    EXPECT_EQ(p.text[0].rd, 8u);
    EXPECT_EQ(p.text[0].rs, 9u);
    EXPECT_EQ(p.text[0].rt, 10u);
}

TEST(AssemblerEdge, CharLiteralsEverywhere)
{
    const Program p = assemble("li $t0, 'A'\n"
                               "li $t1, '\\n'\n"
                               "li $t2, '\\\\'\n"
                               ".data\nc: .byte 'x', '\\0'\n");
    EXPECT_EQ(p.text[0].imm, 65);
    EXPECT_EQ(p.text[1].imm, 10);
    EXPECT_EQ(p.text[2].imm, 92);
    EXPECT_EQ(p.data[0], 'x');
    EXPECT_EQ(p.data[1], 0u);
}

TEST(AssemblerEdge, StringsWithCommasAndEscapes)
{
    const Program p =
            assemble(".data\ns: .asciiz \"a,b \\\"q\\\" ;#\"\n");
    const char* expect = "a,b \"q\" ;#";
    for (std::size_t i = 0; expect[i]; ++i)
        EXPECT_EQ(p.data[i], static_cast<std::uint8_t>(expect[i]));
}

TEST(AssemblerEdge, CommentCharactersInsideLiterals)
{
    // '#' and ';' inside string/char literals are data, not comments.
    const Program p = assemble("li $t0, '#'\n"
                               ".data\ns: .asciiz \"#;\"\n");
    EXPECT_EQ(p.text[0].imm, '#');
    EXPECT_EQ(p.data[0], '#');
    EXPECT_EQ(p.data[1], ';');
}

TEST(AssemblerEdge, AlignPadsData)
{
    const Program p = assemble(".data\n"
                               "a: .byte 1\n"
                               "   .align 3\n"
                               "b: .byte 2\n");
    EXPECT_EQ(p.symbols.at("b"), Program::kDataBase + 8);
}

TEST(AssemblerEdge, MultipleLabelsOnOneLine)
{
    const Program p = assemble("x: y: z: nop\n");
    EXPECT_EQ(p.symbols.at("x"), 0u);
    EXPECT_EQ(p.symbols.at("y"), 0u);
    EXPECT_EQ(p.symbols.at("z"), 0u);
}

TEST(AssemblerEdge, LabelOnOwnLine)
{
    const Program p = assemble("top:\n    nop\n    j top\n");
    EXPECT_EQ(p.text[1].imm, 0);
}

TEST(AssemblerEdge, NegativeAndHexExpressions)
{
    const Program p = assemble("li $t0, -0x10\n"
                               "la $t1, d-4\n"
                               ".data\nd: .word 0\n");
    EXPECT_EQ(p.text[0].imm, -16);
    EXPECT_EQ(p.text[1].imm,
              static_cast<std::int64_t>(Program::kDataBase) - 4);
}

TEST(AssemblerEdge, EmptySourceAndLabelOnly)
{
    EXPECT_TRUE(assemble("").text.empty());
    EXPECT_TRUE(assemble("\n\n# only comments\n").text.empty());
    const Program p = assemble("just_a_label:\n");
    EXPECT_EQ(p.symbols.at("just_a_label"), 0u);
}

TEST(AssemblerEdge, RejectsBadStringAndChar)
{
    EXPECT_THROW(assemble(".data\ns: .asciiz nope\n"), AsmError);
    EXPECT_THROW(assemble("li $t0, '\\q'\n"), AsmError);
    EXPECT_THROW(assemble("li $t0, 'ab'\n"), AsmError);
}

TEST(AssemblerEdge, RejectsUnknownDirective)
{
    EXPECT_THROW(assemble(".frobnicate 1\n"), AsmError);
}

TEST(AssemblerEdge, RejectsBadEqu)
{
    EXPECT_THROW(assemble(".equ ONLYNAME\n"), AsmError);
    // .equ takes numbers only (no forward label refs).
    EXPECT_THROW(assemble(".equ X, somelabel\nsomelabel: nop\n"),
                 AsmError);
}

TEST(AssemblerEdge, RejectsJumpToDataSegment)
{
    EXPECT_THROW(assemble("j d\n.data\nd: .word 0\n"), AsmError);
}

TEST(AssemblerEdge, EquUsableInSpace)
{
    const Program p = assemble(".equ N, 8\n"
                               ".data\nb: .space N\nc: .byte 1\n");
    EXPECT_EQ(p.symbols.at("c"), Program::kDataBase + 8);
}

} // namespace
} // namespace vpred::sim
