/**
 * @file
 * Unit tests for the value tracer and the paper's eligibility filter.
 */

#include <gtest/gtest.h>

#include "sim/assembler.hh"
#include "sim/tracer.hh"

namespace vpred::sim
{
namespace
{

TEST(Tracer, CollectsIntegerResultsIncludingLoads)
{
    const Program p = assemble(
            "li  $t0, 5\n"          // pc 0: eligible
            "la  $t1, d\n"          // pc 1: eligible
            "lw  $t2, 0($t1)\n"     // pc 2: eligible (load)
            "sw  $t2, 4($t1)\n"     // pc 3: store, no result
            "li  $v0, 10\n"         // pc 4: eligible
            "syscall\n"             // pc 5: control
            ".data\nd: .word 77, 0\n");
    const TraceResult r = traceProgram(p, 1000);
    ASSERT_EQ(r.trace.size(), 4u);
    EXPECT_EQ(r.trace[0], (TraceRecord{0, 5}));
    EXPECT_EQ(r.trace[1], (TraceRecord{1, Program::kDataBase}));
    EXPECT_EQ(r.trace[2], (TraceRecord{2, 77}));
    EXPECT_EQ(r.trace[3], (TraceRecord{4, 10}));
}

TEST(Tracer, ExcludesBranchesJumpsAndLinkWrites)
{
    const Program p = assemble(
            "main:   jal f\n"        // link write: excluded (control)
            "        li  $v0, 10\n"
            "        syscall\n"
            "f:      jr  $ra\n");
    const TraceResult r = traceProgram(p, 1000);
    ASSERT_EQ(r.trace.size(), 1u);
    EXPECT_EQ(r.trace[0].pc, 1u);  // only the li
}

TEST(Tracer, ExcludesWritesToRegisterZero)
{
    const Program p = assemble(
            "add $zero, $t0, $t0\n"
            "li  $v0, 10\n"
            "syscall\n");
    const TraceResult r = traceProgram(p, 1000);
    ASSERT_EQ(r.trace.size(), 1u);
}

TEST(Tracer, PcIsTheInstructionIndex)
{
    const Program p = assemble(
            "        li  $t0, 3\n"
            "loop:   addi $t0, $t0, -1\n"
            "        bnez $t0, loop\n"
            "        li  $v0, 10\n"
            "        syscall\n");
    const TraceResult r = traceProgram(p, 1000);
    // pc 1 appears three times (the loop body).
    int count = 0;
    for (const TraceRecord& rec : r.trace) {
        if (rec.pc == 1)
            ++count;
    }
    EXPECT_EQ(count, 3);
    EXPECT_EQ(r.instructions, 1u + 3 * 2 + 2);
}

TEST(Tracer, PresetsInitialRegisters)
{
    const Program p = assemble(
            "add $t0, $a0, $a1\n"
            "li  $v0, 10\n"
            "syscall\n");
    const std::pair<unsigned, std::uint32_t> init[] = {
        {reg::a0, 30}, {reg::a1, 12},
    };
    const TraceResult r = traceProgram(p, 1000, init);
    EXPECT_EQ(r.trace[0].value, 42u);
}

TEST(Tracer, CapturesProgramOutput)
{
    const Program p = assemble(
            "li $a0, 7\n"
            "li $v0, 1\n"
            "syscall\n"
            "li $v0, 10\n"
            "syscall\n");
    EXPECT_EQ(traceProgram(p, 1000).output, "7");
}

TEST(Tracer, EnforcesStepBudget)
{
    const Program p = assemble("x: j x\n");
    EXPECT_THROW(traceProgram(p, 100), VmError);
}

} // namespace
} // namespace vpred::sim
