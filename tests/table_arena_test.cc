/**
 * @file
 * Table arena contract tests: the backing-selection policy table, the
 * alignment and zeroing guarantees of both allocation paths (including
 * the huge-page mapping's 2 MiB alignment and its graceful fallback),
 * and TableBuffer's vector-like surface — growth preserving contents
 * with zeroed tails, shrink re-zeroing, assign, and move semantics.
 * These pin the behavior the sanitizer jobs rely on when REPRO_ARENA
 * =new routes every table through plain allocation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "core/table_arena.hh"

namespace
{

using namespace vpred;
namespace ta = vpred::table_arena;

TEST(TableArena, PlanBackingPolicyTable)
{
    // Zero bytes never allocates, regardless of mode.
    EXPECT_EQ(ta::planBackingFor(0, ArenaMode::Auto), ArenaBacking::None);
    EXPECT_EQ(ta::planBackingFor(0, ArenaMode::Mmap), ArenaBacking::None);
    EXPECT_EQ(ta::planBackingFor(0, ArenaMode::New), ArenaBacking::None);

    // Forced modes ignore the size threshold.
    EXPECT_EQ(ta::planBackingFor(1, ArenaMode::New), ArenaBacking::New);
    EXPECT_EQ(ta::planBackingFor(std::size_t{1} << 30, ArenaMode::New),
              ArenaBacking::New);
    EXPECT_EQ(ta::planBackingFor(1, ArenaMode::Mmap), ArenaBacking::Mmap);

    // Auto splits at the huge-page granule.
    EXPECT_EQ(ta::planBackingFor(ta::kHugeThresholdBytes - 1,
                                 ArenaMode::Auto),
              ArenaBacking::New);
    EXPECT_EQ(ta::planBackingFor(ta::kHugeThresholdBytes, ArenaMode::Auto),
              ArenaBacking::Mmap);
}

TEST(TableArena, PlainAllocationIsAlignedAndZeroed)
{
    constexpr std::size_t kBytes = 4096;
    ArenaBacking backing = ArenaBacking::Mmap;
    void* p = ta::allocateWith(kBytes, ArenaMode::New, backing);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(backing, ArenaBacking::New);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % ta::kAlignBytes, 0u);
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < kBytes; ++i)
        ASSERT_EQ(bytes[i], 0u) << "byte " << i;
    ta::deallocate(p, kBytes, backing);
}

TEST(TableArena, MappedAllocationIsHugeAlignedAndZeroed)
{
    // Forcing the mapping path for a sub-threshold size still yields
    // a granule-aligned window (or the documented fallback to New if
    // the kernel refuses — the reported backing tells which).
    constexpr std::size_t kBytes = 3 * 1024 * 1024;  // crosses a granule
    ArenaBacking backing = ArenaBacking::None;
    void* p = ta::allocateWith(kBytes, ArenaMode::Mmap, backing);
    ASSERT_NE(p, nullptr);
    if (backing == ArenaBacking::Mmap) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p)
                          % ta::kHugeThresholdBytes,
                  0u);
    } else {
        EXPECT_EQ(backing, ArenaBacking::New);  // kernel refused mmap
    }
    auto* bytes = static_cast<unsigned char*>(p);
    for (std::size_t i = 0; i < kBytes; i += 997)
        ASSERT_EQ(bytes[i], 0u) << "byte " << i;
    // The buffer must be writable through the trimmed window's edges.
    bytes[0] = 0xAB;
    bytes[kBytes - 1] = 0xCD;
    EXPECT_EQ(bytes[0], 0xAB);
    EXPECT_EQ(bytes[kBytes - 1], 0xCD);
    ta::deallocate(p, kBytes, backing);
}

TEST(TableArena, ActiveModeIsStable)
{
    // Whatever REPRO_ARENA resolved to, it is resolved exactly once.
    EXPECT_EQ(ta::activeMode(), ta::activeMode());
    ArenaBacking backing = ArenaBacking::None;
    void* p = ta::allocate(123, backing);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(backing, ta::planBacking(123));
    ta::deallocate(p, 123, backing);
}

TEST(TableBuffer, StartsEmptyAndZeroConstructs)
{
    TableBuffer<std::uint32_t> buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.backing(), ArenaBacking::None);

    TableBuffer<std::uint32_t> sized(64);
    EXPECT_EQ(sized.size(), 64u);
    EXPECT_NE(sized.backing(), ArenaBacking::None);
    for (std::uint32_t v : sized)
        ASSERT_EQ(v, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(sized.data())
                      % ta::kAlignBytes,
              0u);
}

TEST(TableBuffer, GrowthPreservesContentsAndZeroesTail)
{
    TableBuffer<std::uint32_t> buf(8);
    for (std::size_t i = 0; i < 8; ++i)
        buf[i] = static_cast<std::uint32_t>(i + 1);
    buf.resize(1000);  // forces reallocation well past capacity
    ASSERT_EQ(buf.size(), 1000u);
    for (std::size_t i = 0; i < 8; ++i)
        ASSERT_EQ(buf[i], i + 1) << "slot " << i;
    for (std::size_t i = 8; i < 1000; ++i)
        ASSERT_EQ(buf[i], 0u) << "slot " << i;
}

TEST(TableBuffer, ShrinkThenRegrowSeesPowerOnState)
{
    TableBuffer<std::uint32_t> buf(32);
    for (auto& v : buf)
        v = 0xDEADBEEF;
    buf.resize(4);
    EXPECT_EQ(buf.size(), 4u);
    buf.resize(32);  // regrow within the retained capacity
    for (std::size_t i = 0; i < 4; ++i)
        ASSERT_EQ(buf[i], 0xDEADBEEFu) << "slot " << i;
    for (std::size_t i = 4; i < 32; ++i)
        ASSERT_EQ(buf[i], 0u) << "slot " << i;
}

TEST(TableBuffer, AssignDiscardsContents)
{
    TableBuffer<std::uint64_t> buf(16);
    for (auto& v : buf)
        v = ~std::uint64_t{0};
    buf.assign(24);
    ASSERT_EQ(buf.size(), 24u);
    for (std::uint64_t v : buf)
        ASSERT_EQ(v, 0u);
}

TEST(TableBuffer, FillZeroResetsLiveSlots)
{
    TableBuffer<std::uint32_t> buf(10);
    for (auto& v : buf)
        v = 7;
    buf.fillZero();
    for (std::uint32_t v : buf)
        ASSERT_EQ(v, 0u);
}

TEST(TableBuffer, MoveTransfersOwnership)
{
    TableBuffer<std::uint32_t> a(16);
    a[3] = 99;
    const std::uint32_t* data = a.data();
    const ArenaBacking backing = a.backing();

    TableBuffer<std::uint32_t> b(std::move(a));
    EXPECT_EQ(b.data(), data);
    EXPECT_EQ(b.backing(), backing);
    EXPECT_EQ(b[3], 99u);
    EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): pinned
    EXPECT_EQ(a.backing(), ArenaBacking::None);

    TableBuffer<std::uint32_t> c(4);
    c = std::move(b);
    EXPECT_EQ(c.data(), data);
    EXPECT_EQ(c[3], 99u);
    EXPECT_TRUE(b.empty());
}

TEST(TableBuffer, SetArenaModeRehomesPreservingSizeAndContents)
{
    // Big enough that New and Auto plan different backings outside
    // sanitizer builds, so the pin actually re-homes. The regression
    // this guards: re-homing must preserve size() — an early version
    // left the buffer reporting empty, which turned every later
    // fillZero() reset into a silent no-op over stale table state.
    const std::size_t n =
            ta::kHugeThresholdBytes / sizeof(std::uint32_t) + 7;
    TableBuffer<std::uint32_t> buf(n);
    buf[0] = 11;
    buf[n - 1] = 22;
    for (ArenaMode m : {ArenaMode::New, ArenaMode::Auto,
                        ArenaMode::Mmap, ArenaMode::New}) {
        buf.setArenaMode(m);
        ASSERT_EQ(buf.size(), n);
        const ArenaBacking planned =
                ta::planBackingFor(n * sizeof(std::uint32_t), m);
        if (planned == ArenaBacking::Mmap)
            // allocateWith degrades Mmap to New if the kernel
            // refuses the mapping; both are live backings here.
            EXPECT_NE(buf.backing(), ArenaBacking::None);
        else
            EXPECT_EQ(buf.backing(), planned);
        EXPECT_EQ(buf[0], 11u);
        EXPECT_EQ(buf[n - 1], 22u);
        EXPECT_EQ(buf[n / 2], 0u);
    }
    buf.fillZero();
    EXPECT_EQ(buf[0], 0u);
    EXPECT_EQ(buf[n - 1], 0u);
}

TEST(TableBuffer, HugeBufferRoundTrip)
{
    // Big enough that Auto mode (non-sanitizer builds) takes the
    // mapping path end to end through TableBuffer.
    const std::size_t n = ta::kHugeThresholdBytes / sizeof(std::uint32_t)
                          + 13;
    TableBuffer<std::uint32_t> buf(n);
    ASSERT_EQ(buf.size(), n);
    buf[0] = 1;
    buf[n - 1] = 2;
    EXPECT_EQ(buf[0], 1u);
    EXPECT_EQ(buf[n - 1], 2u);
    for (std::size_t i = 1; i < n - 1; i += 4099)
        ASSERT_EQ(buf[i], 0u) << "slot " << i;
}

} // namespace
