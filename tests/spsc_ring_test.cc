/**
 * @file
 * Tests for the ingest fabric's SPSC ring: single-threaded semantics
 * (wraparound, batched publish, flush-on-idle, full-ring
 * backpressure) and producer/consumer stress races designed to run
 * under ThreadSanitizer — this binary carries the "concurrency"
 * CTest label. The races are the memory-order proof in executable
 * form: millions of records cross the ring with tiny capacities (so
 * indices wrap thousands of times and full/empty transitions are
 * constant), and every record must arrive exactly once, in order.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "service/spsc_ring.hh"

namespace vpred::service
{
namespace
{

Update
mk(std::uint64_t i)
{
    return {i, i * 3 + 1, i ^ 0x9e3779b97f4a7c15ull};
}

TEST(SpscRing, PublishIsBatchedAndFlushCoversTheRemainder)
{
    SpscRing ring(16, 4);
    std::vector<Update> out;

    // Three pushes sit below the publish batch: invisible until
    // flushed.
    for (std::uint64_t i = 0; i < 3; ++i)
        ASSERT_TRUE(ring.tryPush(mk(i)));
    EXPECT_EQ(ring.unpublished(), 3u);
    EXPECT_EQ(ring.occupancy(), 0u);
    EXPECT_EQ(ring.popInto(out, 100), 0u);

    // The fourth push completes the batch and auto-publishes.
    ASSERT_TRUE(ring.tryPush(mk(3)));
    EXPECT_EQ(ring.unpublished(), 0u);
    EXPECT_EQ(ring.occupancy(), 4u);

    // Two more, then the idle flush.
    ASSERT_TRUE(ring.tryPush(mk(4)));
    ASSERT_TRUE(ring.tryPush(mk(5)));
    ring.publish();
    EXPECT_EQ(ring.unpublished(), 0u);
    EXPECT_EQ(ring.popInto(out, 100), 6u);
    for (std::uint64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(out[i].stream, mk(i).stream);
        EXPECT_EQ(out[i].value, mk(i).value);
        EXPECT_EQ(out[i].tick_ns, mk(i).tick_ns);
    }

    const RingCounters c = ring.counters();
    EXPECT_EQ(c.published_records, 6u);
    EXPECT_EQ(c.publishes, 2u);  // one auto, one flush
    EXPECT_EQ(c.full_events, 0u);
}

TEST(SpscRing, FullRingRejectsPublishesAndRecovers)
{
    SpscRing ring(8, 8);  // publish batch == capacity: nothing
                          // auto-publishes before the ring fills
    std::vector<Update> out;
    for (std::uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.tryPush(mk(i)));
    // The failed push must publish the stranded batch — otherwise a
    // full ring with an unpublished head deadlocks the fabric.
    EXPECT_FALSE(ring.tryPush(mk(8)));
    EXPECT_EQ(ring.counters().full_events, 1u);
    EXPECT_EQ(ring.occupancy(), 8u);

    // Draining two slots makes the next push succeed (the producer
    // refreshes its cached tail on the full path). The consumer
    // symmetrically caches the published head, so record 8 — newer
    // than that cache — needs a second popInto pass, the same
    // until-a-pass-moves-nothing loop Shard::drain runs.
    EXPECT_EQ(ring.popInto(out, 2), 2u);
    EXPECT_TRUE(ring.tryPush(mk(8)));
    ring.publish();
    while (ring.popInto(out, 100) != 0) {
    }
    EXPECT_EQ(out.size(), 9u);
    for (std::uint64_t i = 0; i < 9; ++i)
        EXPECT_EQ(out[i].stream, i);
}

TEST(SpscRing, WrapsAroundManyTimesSingleThreaded)
{
    SpscRing ring(4, 1);
    std::vector<Update> out;
    std::uint64_t next_expected = 0;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        ASSERT_TRUE(ring.tryPush(mk(i)));
        if (i % 3 == 0) {
            out.clear();
            ring.popInto(out, 4);
            for (const Update& u : out)
                ASSERT_EQ(u.stream, next_expected++);
        }
    }
    out.clear();
    while (ring.popInto(out, 4) != 0) {
    }
    for (const Update& u : out)
        ASSERT_EQ(u.stream, next_expected++);
    EXPECT_EQ(next_expected, 10000u);
}

TEST(SpscRing, StressProducerConsumerExactlyOnceInOrder)
{
    // The TSan centerpiece: a tiny ring, a spinning producer and a
    // spinning consumer. Capacity 8 forces tens of thousands of
    // wraparounds and full-ring rejections; the consumer asserts
    // strict FIFO of the whole sequence.
    constexpr std::uint64_t kRecords = 200000;
    SpscRing ring(8, 4);

    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kRecords; ++i)
            while (!ring.tryPush(mk(i)))
                std::this_thread::yield();
        ring.publish();
    });

    std::vector<Update> out;
    std::uint64_t seen = 0;
    while (seen < kRecords) {
        out.clear();
        if (ring.popInto(out, 8) == 0) {
            std::this_thread::yield();
            continue;
        }
        for (const Update& u : out) {
            ASSERT_EQ(u.stream, seen);
            ASSERT_EQ(u.value, seen * 3 + 1);
            ++seen;
        }
    }
    producer.join();
    EXPECT_EQ(ring.occupancy(), 0u);
    EXPECT_GT(ring.counters().full_events, 0u)
            << "ring too big to exercise the full path";
    EXPECT_EQ(ring.counters().published_records, kRecords);
}

TEST(SpscRing, StressCountersReadableWhileRacing)
{
    // Third-party observers (ingestStats) read the counters while
    // both sides run; under TSan this pins that the counters are
    // race-free, not just the indices.
    constexpr std::uint64_t kRecords = 100000;
    SpscRing ring(16, 8);

    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kRecords; ++i)
            while (!ring.tryPush(mk(i)))
                std::this_thread::yield();
        ring.publish();
    });
    std::thread observer([&ring] {
        std::uint64_t last = 0;
        while (last < kRecords) {
            const RingCounters c = ring.counters();
            ASSERT_GE(c.published_records, last);
            last = c.published_records;
            ASSERT_LE(ring.occupancy(), ring.capacity());
        }
    });

    std::vector<Update> out;
    std::uint64_t seen = 0;
    while (seen < kRecords) {
        out.clear();
        seen += ring.popInto(out, 16);
        if (out.empty())
            std::this_thread::yield();
    }
    producer.join();
    observer.join();
    EXPECT_EQ(seen, kRecords);
}

} // namespace
} // namespace vpred::service
