/**
 * @file
 * Bit-identity of the gather column tier (runMgGather) against the
 * scalar reference: forcing every column through the gather path must
 * reproduce the scalar probe order exactly — over the full Figure 10
 * l2 column on all paper workloads, under mixed gather/scalar splits,
 * and on adversarial traces engineered so whole batches collide on
 * one level-2 slot (the conflict-forwarding chain at its worst).
 *
 * The gather tier only changes *which execution path* probes a
 * column; these tests are the proof that it never changes results,
 * which is also what keeps every figure CSV byte-identical with the
 * tier on or off.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cpu_features.hh"
#include "core/multi_geom.hh"
#include "core/stats.hh"
#include "harness/sweep.hh"
#include "harness/trace_cache.hh"
#include "tracegen/mixer.hh"
#include "workloads/workload.hh"

namespace
{

using namespace vpred;

std::vector<SimdBackend>
vectorBackends()
{
    std::vector<SimdBackend> out;
    for (SimdBackend b : availableSimdBackends())
        if (b != SimdBackend::Scalar)
            out.push_back(b);
    return out;
}

/** Run FCM and DFCM kernels over @p trace with the gather threshold
 *  at @p gather_min_bits on every built vector backend, expecting the
 *  scalar reference results (computed with the tier disabled). */
void
expectGatherMatchesScalar(const MultiGeomConfig& geom,
                          std::span<const TraceRecord> trace,
                          unsigned gather_min_bits)
{
    MultiGeomFcmKernel fcm(geom);
    MultiGeomDfcmKernel dfcm(geom);

    fcm.setGatherMinBits(0);
    dfcm.setGatherMinBits(0);
    const std::vector<PredictorStats> fcm_ref =
            fcm.runTrace(trace, SimdBackend::Scalar);
    const std::vector<PredictorStats> dfcm_ref =
            dfcm.runTrace(trace, SimdBackend::Scalar);

    fcm.setGatherMinBits(gather_min_bits);
    dfcm.setGatherMinBits(gather_min_bits);
    for (SimdBackend b : vectorBackends()) {
        SCOPED_TRACE(std::string("backend ") + simdBackendName(b));
        EXPECT_EQ(fcm.runTrace(trace, b), fcm_ref);
        EXPECT_EQ(dfcm.runTrace(trace, b), dfcm_ref);
    }
}

TEST(GatherColumn, PlanSplitsColumnsAtThreshold)
{
    MultiGeomConfig geom;
    geom.l1_bits = 4;
    geom.l2_bits = {4, 8, 12, 14, 16};
    MultiGeomFcmKernel kernel(geom);

    kernel.setGatherMinBits(0);
    EXPECT_EQ(kernel.gatherColumnCount(), 0u);
    kernel.setGatherMinBits(1);
    EXPECT_EQ(kernel.gatherColumnCount(), geom.l2_bits.size());
    kernel.setGatherMinBits(13);
    EXPECT_EQ(kernel.gatherColumnCount(), 2u);  // 14 and 16
    EXPECT_EQ(kernel.gatherMinBits(), 13u);
    kernel.setGatherMinBits(28);
    EXPECT_EQ(kernel.gatherColumnCount(), 0u);
}

TEST(GatherColumn, Fig10ColumnBitIdenticalOnAllPaperWorkloads)
{
    // Every column forced through the gather tier (threshold 1) on
    // the full Figure 10 geometry, reduced trace scale.
    harness::TraceCache cache(0.1);
    MultiGeomConfig geom;
    geom.l1_bits = 16;
    geom.l2_bits = harness::paperL2Bits();
    for (const std::string& name : workloads::benchmarkNames()) {
        SCOPED_TRACE("workload " + name);
        expectGatherMatchesScalar(geom, cache.getSpan(name), 1);
    }
}

TEST(GatherColumn, MixedGatherScalarSplitBitIdentical)
{
    // A threshold inside the column range: some columns gather, some
    // keep the scalar probe loop, exercising the two probe paths
    // interleaved per record.
    harness::TraceCache cache(0.05);
    MultiGeomConfig geom;
    geom.l1_bits = 12;
    geom.l2_bits = harness::paperL2Bits();
    for (const char* name : {"go", "compress"}) {
        SCOPED_TRACE(std::string("workload ") + name);
        expectGatherMatchesScalar(geom, cache.getSpan(name), 12);
    }
}

TEST(GatherColumn, SameSlotCollisionBatchesForwardCorrectly)
{
    // Adversarial case 1: one PC, constant value. Every record's
    // hashed history is identical after warm-up, so *every lane of
    // every batch* probes the same level-2 slot — each lane must see
    // the previous lane's store (which the conflict-forwarding chain
    // replays), or the correct-prediction counters diverge.
    MultiGeomConfig geom;
    geom.l1_bits = 4;
    geom.l2_bits = {1, 2, 6, 10};
    ValueTrace trace;
    for (std::uint64_t i = 0; i < 4096; ++i)
        trace.push_back({0x42, 7});
    expectGatherMatchesScalar(geom, {trace.data(), trace.size()}, 1);
}

TEST(GatherColumn, TinyTablesCollideAcrossLanes)
{
    // Adversarial case 2: 2- and 4-entry tables with varied values —
    // lanes collide in every pattern the 1- and 2-bit indices allow,
    // including partial in-batch chains (lane k forwards from lane
    // k-3, etc.), for both the FCM and the widened-DFCM compare.
    MultiGeomConfig geom;
    geom.l1_bits = 2;
    geom.value_bits = 16;
    geom.stride_bits = 9;  // narrowed strides: the widen path
    geom.l2_bits = {1, 2, 3};
    ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 3,
             .constant_instructions = 2,
             .context_instructions = 3,
             .random_instructions = 2,
             .seed = 0xC0111DE},
            8192);
    // Values above the 16-bit value mask: the fits masking must keep
    // such lanes out of the counters on the gather path too.
    for (std::uint64_t i = 0; i < 64; ++i)
        trace.push_back({i % 4, (std::uint64_t{1} << 40) + i});
    expectGatherMatchesScalar(geom, {trace.data(), trace.size()}, 1);
}

TEST(GatherColumn, TailShorterThanBatchTakesReferencePath)
{
    // Traces shorter than (and not divisible by) any batch width:
    // the tail records run the reference scalar probes; identity must
    // hold for every length including 0.
    MultiGeomConfig geom;
    geom.l1_bits = 3;
    geom.l2_bits = {4, 9};
    const ValueTrace full = tracegen::makeMixedTrace(
            {.stride_instructions = 2,
             .constant_instructions = 1,
             .context_instructions = 2,
             .random_instructions = 1,
             .seed = 77},
            64);
    for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 33u}) {
        SCOPED_TRACE("length " + std::to_string(len));
        expectGatherMatchesScalar(geom, {full.data(), len}, 1);
    }
}

TEST(GatherColumn, DispatchedRunMatchesScalarWithDefaultPlan)
{
    // Whatever REPRO_GATHER_COLUMNS resolved to for this process, the
    // dispatched path must equal the scalar reference — the tier is
    // invisible in results by construction.
    MultiGeomConfig geom;
    geom.l1_bits = 8;
    geom.l2_bits = harness::paperL2Bits();
    const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 5,
             .constant_instructions = 2,
             .context_instructions = 4,
             .random_instructions = 1,
             .seed = 11},
            4096);
    MultiGeomDfcmKernel kernel(geom);
    EXPECT_EQ(kernel.runTrace({trace.data(), trace.size()}),
              kernel.runTrace({trace.data(), trace.size()},
                              SimdBackend::Scalar));
}

} // namespace
