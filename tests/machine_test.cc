/**
 * @file
 * Unit tests for the MiniRISC interpreter.
 */

#include <gtest/gtest.h>

#include "sim/assembler.hh"
#include "sim/machine.hh"

namespace vpred::sim
{
namespace
{

/** Assemble, run to completion, and return the machine. */
Machine
runProgram(const std::string& asm_text, std::uint32_t a0 = 0)
{
    static std::vector<std::unique_ptr<Program>> keep_alive;
    keep_alive.push_back(std::make_unique<Program>(assemble(asm_text)));
    Machine m(*keep_alive.back());
    if (a0 != 0)
        m.setReg(reg::a0, a0);
    m.run(1u << 24);
    return m;
}

const char* kExit = "li $v0, 10\nsyscall\n";

TEST(Machine, ArithmeticBasics)
{
    Machine m = runProgram(
            "li  $t0, 21\n"
            "add $t1, $t0, $t0\n"   // 42
            "mul $t2, $t0, $t0\n"   // 441
            "sub $t3, $t1, $t0\n"   // 21
            "li  $t4, -7\n"
            "div $t5, $t2, $t4\n"   // -63
            "rem $t6, $t2, $t0\n"   // 0
            + std::string(kExit));
    EXPECT_EQ(m.reg(9), 42u);
    EXPECT_EQ(m.reg(10), 441u);
    EXPECT_EQ(m.reg(11), 21u);
    EXPECT_EQ(m.reg(13), static_cast<std::uint32_t>(-63));
    EXPECT_EQ(m.reg(14), 0u);
}

TEST(Machine, RegisterZeroIsHardwired)
{
    Machine m = runProgram("li $zero, 99\nli $t0, 5\n"
                           + std::string(kExit));
    EXPECT_EQ(m.reg(0), 0u);
    EXPECT_EQ(m.reg(8), 5u);
}

TEST(Machine, LogicAndShifts)
{
    Machine m = runProgram(
            "li  $t0, 0xF0F0\n"
            "li  $t1, 0x0FF0\n"
            "and $t2, $t0, $t1\n"
            "or  $t3, $t0, $t1\n"
            "xor $t4, $t0, $t1\n"
            "sll $t5, $t1, 4\n"
            "srl $t6, $t0, 4\n"
            "li  $t7, -16\n"
            "sra $t8, $t7, 2\n"
            + std::string(kExit));
    EXPECT_EQ(m.reg(10), 0x00F0u);
    EXPECT_EQ(m.reg(11), 0xFFF0u);
    EXPECT_EQ(m.reg(12), 0xFF00u);
    EXPECT_EQ(m.reg(13), 0xFF00u);
    EXPECT_EQ(m.reg(14), 0x0F0Fu);
    EXPECT_EQ(m.reg(24), static_cast<std::uint32_t>(-4));
}

TEST(Machine, SltFamily)
{
    Machine m = runProgram(
            "li   $t0, -1\n"
            "li   $t1, 1\n"
            "slt  $t2, $t0, $t1\n"   // signed: -1 < 1 -> 1
            "sltu $t3, $t0, $t1\n"   // unsigned: huge < 1 -> 0
            "slti $t4, $t1, 100\n"
            "sltiu $t5, $t1, 1\n"
            + std::string(kExit));
    EXPECT_EQ(m.reg(10), 1u);
    EXPECT_EQ(m.reg(11), 0u);
    EXPECT_EQ(m.reg(12), 1u);
    EXPECT_EQ(m.reg(13), 0u);
}

TEST(Machine, MemoryLoadStoreRoundTrip)
{
    Machine m = runProgram(
            "        la  $t0, buf\n"
            "        li  $t1, 0x12345678\n"
            "        sw  $t1, 0($t0)\n"
            "        lw  $t2, 0($t0)\n"
            "        lbu $t3, 0($t0)\n"   // little endian: 0x78
            "        lb  $t4, 3($t0)\n"   // 0x12
            "        lhu $t5, 2($t0)\n"   // 0x1234
            "        li  $t6, -2\n"
            "        sb  $t6, 4($t0)\n"
            "        lb  $t7, 4($t0)\n"   // sign-extended -2
            "        lbu $t8, 4($t0)\n"   // 0xFE
            + std::string(kExit)
            + "        .data\nbuf:    .space 16\n");
    EXPECT_EQ(m.reg(10), 0x12345678u);
    EXPECT_EQ(m.reg(11), 0x78u);
    EXPECT_EQ(m.reg(12), 0x12u);
    EXPECT_EQ(m.reg(13), 0x1234u);
    EXPECT_EQ(m.reg(15), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(m.reg(24), 0xFEu);
}

TEST(Machine, DataSegmentIsLoaded)
{
    Machine m = runProgram(
            "la $t0, tab\n"
            "lw $t1, 4($t0)\n"
            + std::string(kExit)
            + ".data\ntab: .word 11, 22, 33\n");
    EXPECT_EQ(m.reg(9), 22u);
}

TEST(Machine, BranchesAndLoops)
{
    Machine m = runProgram(
            "        li  $t0, 0\n"
            "        li  $t1, 0\n"
            "loop:   add $t1, $t1, $t0\n"
            "        addi $t0, $t0, 1\n"
            "        li  $t2, 10\n"
            "        blt $t0, $t2, loop\n"
            + std::string(kExit));
    EXPECT_EQ(m.reg(9), 45u);  // sum 0..9
}

TEST(Machine, SignedVsUnsignedBranches)
{
    Machine m = runProgram(
            "        li   $t0, -1\n"
            "        li   $t1, 1\n"
            "        li   $t2, 0\n"
            "        blt  $t0, $t1, a\n"
            "        li   $t2, 99\n"
            "a:      li   $t3, 0\n"
            "        bltu $t0, $t1, b\n"
            "        li   $t3, 7\n"
            "b:      nop\n"
            + std::string(kExit));
    EXPECT_EQ(m.reg(10), 0u);  // signed branch taken
    EXPECT_EQ(m.reg(11), 7u);  // unsigned branch not taken
}

TEST(Machine, JalAndJrImplementCalls)
{
    Machine m = runProgram(
            "main:   li  $a0, 5\n"
            "        jal double\n"
            "        move $t0, $v0\n"
            "        li  $v0, 10\n"
            "        syscall\n"
            "double: add $v0, $a0, $a0\n"
            "        jr  $ra\n");
    EXPECT_EQ(m.reg(8), 10u);
}

TEST(Machine, JumpTableViaJr)
{
    Machine m = runProgram(
            "        la  $t0, tab\n"
            "        lw  $t1, 4($t0)\n"
            "        jr  $t1\n"
            "case0:  li  $t2, 100\n"
            "        j   done\n"
            "case1:  li  $t2, 200\n"
            "        j   done\n"
            "done:   li  $v0, 10\n"
            "        syscall\n"
            "        .data\n"
            "tab:    .word case0, case1\n");
    EXPECT_EQ(m.reg(10), 200u);
}

TEST(Machine, SyscallOutput)
{
    Machine m = runProgram(
            "li $a0, -42\n"
            "li $v0, 1\n"
            "syscall\n"
            "li $a0, '!'\n"
            "li $v0, 11\n"
            "syscall\n"
            "la $a0, msg\n"
            "li $v0, 4\n"
            "syscall\n"
            + std::string(kExit)
            + ".data\nmsg: .asciiz \" ok\"\n");
    EXPECT_EQ(m.output(), "-42! ok");
}

TEST(Machine, InitialRegistersViaSetReg)
{
    Machine m = runProgram("add $t0, $a0, $a0\n" + std::string(kExit),
                           21);
    EXPECT_EQ(m.reg(8), 42u);
}

TEST(Machine, HaltsOnExitSyscall)
{
    Machine m = runProgram(std::string(kExit));
    EXPECT_TRUE(m.halted());
    EXPECT_THROW(m.step(), VmError);
}

TEST(Machine, ThrowsOnDivisionByZero)
{
    EXPECT_THROW(runProgram("li $t0, 1\ndiv $t1, $t0, $zero\n"
                            + std::string(kExit)),
                 VmError);
}

TEST(Machine, ThrowsOnMisalignedWordAccess)
{
    EXPECT_THROW(runProgram("la $t0, b\nlw $t1, 1($t0)\n"
                            + std::string(kExit)
                            + ".data\nb: .space 8\n"),
                 VmError);
}

TEST(Machine, ThrowsOnOutOfRangeAccess)
{
    EXPECT_THROW(runProgram("li $t0, 0x7FFFFFF0\nlw $t1, 0($t0)\n"
                            + std::string(kExit)),
                 VmError);
}

TEST(Machine, ThrowsOnRunawayProgram)
{
    const Program p = assemble("x: j x\n");
    Machine m(p);
    EXPECT_THROW(m.run(1000), VmError);
}

TEST(Machine, ThrowsWhenPcFallsOffText)
{
    const Program p = assemble("nop\n");
    Machine m(p);
    m.step();
    EXPECT_THROW(m.step(), VmError);
}

TEST(Machine, Int32DivisionOverflowWraps)
{
    Machine m = runProgram(
            "li  $t0, 0x80000000\n"
            "li  $t1, -1\n"
            "div $t2, $t0, $t1\n"
            "rem $t3, $t0, $t1\n"
            + std::string(kExit));
    EXPECT_EQ(m.reg(10), 0x80000000u);
    EXPECT_EQ(m.reg(11), 0u);
}

} // namespace
} // namespace vpred::sim
