/**
 * @file
 * Unit tests for the Figure 12-14 aliasing taxonomy.
 */

#include <gtest/gtest.h>

#include "core/alias_analysis.hh"
#include "core/dfcm_predictor.hh"
#include "tracegen/mixer.hh"
#include "tracegen/pattern.hh"

namespace vpred
{
namespace
{

FcmConfig
config(unsigned l1_bits = 8, unsigned l2_bits = 12)
{
    FcmConfig cfg;
    cfg.l1_bits = l1_bits;
    cfg.l2_bits = l2_bits;
    return cfg;
}

TEST(AliasAnalyzer, L1ConflictDetected)
{
    // Two PCs that collide in a tiny level-1 table: each sees
    // history elements written by the other.
    AliasAnalyzer a(config(2), /*differential=*/false);
    a.step(1, 100);
    a.step(5, 200);  // 5 & 3 == 1: same level-1 entry
    EXPECT_EQ(a.classify(1), AliasType::L1);
}

TEST(AliasAnalyzer, NoAliasOnPrivatePattern)
{
    // One instruction, large tables: after warm-up the taxonomy
    // settles into "none" (or the benign l2_pc never fires since
    // there is a single pc).
    AliasAnalyzer a(config(8, 12), false);
    for (int lap = 0; lap < 40; ++lap)
        for (Value v : {3u, 9u, 27u, 81u})
            a.step(7, v);
    EXPECT_EQ(a.classify(7), AliasType::None);
}

TEST(AliasAnalyzer, L2PcSharingDetected)
{
    // Two PCs in *different* level-1 entries producing identical
    // histories share level-2 entries: benign l2_pc aliasing.
    AliasAnalyzer a(config(8, 12), false);
    for (int lap = 0; lap < 40; ++lap) {
        for (Value v : {3u, 9u, 27u, 81u}) {
            a.step(7, v);
            a.step(8, v);
        }
    }
    // pc 7's entry was last updated by pc 8 (interleaved pattern).
    EXPECT_EQ(a.classify(7), AliasType::L2Pc);
}

TEST(AliasAnalyzer, FunctionalTablesMatchRealFcm)
{
    // The instrumented predictor must predict exactly like the plain
    // FCM on any trace.
    const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 6,
             .constant_instructions = 2,
             .context_instructions = 4,
             .random_instructions = 1,
             .seed = 7},
            20000);

    FcmPredictor fcm(config(8, 12));
    AliasAnalyzer analyzer(config(8, 12), false);
    for (const TraceRecord& rec : trace) {
        ASSERT_EQ(analyzer.predictValue(rec.pc), fcm.predict(rec.pc));
        analyzer.step(rec.pc, rec.value);
        fcm.update(rec.pc, rec.value);
    }
}

TEST(AliasAnalyzer, FunctionalTablesMatchRealDfcm)
{
    const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 8,
             .constant_instructions = 2,
             .context_instructions = 4,
             .random_instructions = 1,
             .seed = 11},
            20000);

    DfcmPredictor dfcm({.l1_bits = 8, .l2_bits = 12});
    AliasAnalyzer analyzer(config(8, 12), true);
    for (const TraceRecord& rec : trace) {
        ASSERT_EQ(analyzer.predictValue(rec.pc), dfcm.predict(rec.pc));
        analyzer.step(rec.pc, rec.value);
        dfcm.update(rec.pc, rec.value);
    }
}

TEST(AliasAnalyzer, BreakdownCountsEveryPrediction)
{
    const ValueTrace trace = tracegen::makeMixedTrace({.seed = 3},
                                                      15000);
    AliasAnalyzer a(config(8, 12), false);
    const AliasBreakdown b = a.run(trace);
    EXPECT_EQ(b.total().predictions, trace.size());

    double fraction_sum = 0.0;
    for (unsigned t = 0; t < kAliasTypeCount; ++t)
        fraction_sum += b.fractionOfPredictions(static_cast<AliasType>(t));
    EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
}

TEST(AliasAnalyzer, FractionWrongSumsToMispredictionRate)
{
    const ValueTrace trace = tracegen::makeMixedTrace({.seed = 5},
                                                      15000);
    AliasAnalyzer a(config(8, 12), true);
    const AliasBreakdown b = a.run(trace);
    double wrong_sum = 0.0;
    for (unsigned t = 0; t < kAliasTypeCount; ++t)
        wrong_sum += b.fractionWrong(static_cast<AliasType>(t));
    const PredictorStats total = b.total();
    EXPECT_NEAR(wrong_sum, 1.0 - total.accuracy(), 1e-9);
}

TEST(AliasAnalyzer, HashAliasingDominatesUnderPressure)
{
    // Small level-2 table + many instructions with distinct patterns:
    // hash conflicts must appear (the paper's dominant category).
    const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 40,
             .context_instructions = 30,
             .random_instructions = 6,
             .seed = 17},
            60000);
    AliasAnalyzer a(config(12, 8), false);
    const AliasBreakdown b = a.run(trace);
    EXPECT_GT(b.fractionOfPredictions(AliasType::Hash), 0.1);
}

TEST(AliasAnalyzer, TypeNames)
{
    EXPECT_STREQ(aliasTypeName(AliasType::L1), "l1");
    EXPECT_STREQ(aliasTypeName(AliasType::Hash), "hash");
    EXPECT_STREQ(aliasTypeName(AliasType::L2Priv), "l2_priv");
    EXPECT_STREQ(aliasTypeName(AliasType::L2Pc), "l2_pc");
    EXPECT_STREQ(aliasTypeName(AliasType::None), "none");
}

} // namespace
} // namespace vpred
