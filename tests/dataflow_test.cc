/**
 * @file
 * Unit tests for the dataflow-limit (ILP) analyzer.
 */

#include <gtest/gtest.h>

#include "core/dfcm_predictor.hh"
#include "core/stride_predictor.hh"
#include "sim/assembler.hh"
#include "sim/dataflow.hh"

namespace vpred::sim
{
namespace
{

const char* kExit = "li $v0, 10\nsyscall\n";

IlpResult
limitOf(const std::string& body, PredictionModel model,
        ValuePredictor* predictor = nullptr)
{
    const Program p = assemble(body + kExit);
    return dataflowLimit(p, model, predictor, 1u << 22);
}

TEST(Dataflow, IndependentOpsHaveShortCriticalPath)
{
    // Four independent li's: critical path is dominated by the exit
    // sequence's dependent pair (li $v0 -> syscall reads nothing,
    // but li itself completes at 1). Path length stays tiny.
    const IlpResult r = limitOf(
            "li $t0, 1\nli $t1, 2\nli $t2, 3\nli $t3, 4\n",
            PredictionModel::None);
    EXPECT_EQ(r.instructions, 6u);
    EXPECT_LE(r.critical_path, 2u);
    EXPECT_GE(r.ilp(), 3.0);
}

TEST(Dataflow, DependenceChainSerializes)
{
    // t0 -> t0 -> t0 ... : each addi waits for the previous one.
    std::string body = "li $t0, 0\n";
    for (int i = 0; i < 20; ++i)
        body += "addi $t0, $t0, 1\n";
    const IlpResult r = limitOf(body, PredictionModel::None);
    EXPECT_GE(r.critical_path, 21u);  // li + 20 chained addi
}

TEST(Dataflow, PerfectPredictionCollapsesTheChain)
{
    std::string body = "li $t0, 0\n";
    for (int i = 0; i < 20; ++i)
        body += "addi $t0, $t0, 1\n";
    const IlpResult none = limitOf(body, PredictionModel::None);
    const IlpResult perfect = limitOf(body, PredictionModel::Perfect);
    EXPECT_GT(none.critical_path, 10u);
    // Every addi's input is predicted: all complete at cycle 1.
    EXPECT_LE(perfect.critical_path, 2u);
    EXPECT_GT(perfect.ilp(), none.ilp() * 5);
    EXPECT_EQ(perfect.predicted, perfect.correct);
}

TEST(Dataflow, RealPredictorSitsBetweenNoneAndPerfect)
{
    // A loop with a predictable counter chain.
    const std::string body =
            "        li   $t0, 0\n"
            "loop:   addi $t0, $t0, 1\n"
            "        li   $t1, 500\n"
            "        blt  $t0, $t1, loop\n";
    const IlpResult none = limitOf(body, PredictionModel::None);
    StridePredictor stride(10);
    const IlpResult real = limitOf(body, PredictionModel::Real,
                                   &stride);
    const IlpResult perfect = limitOf(body, PredictionModel::Perfect);

    EXPECT_GT(real.ilp(), none.ilp());
    EXPECT_LE(real.ilp(), perfect.ilp() + 1e-9);
    EXPECT_GT(real.accuracy(), 0.9);  // counter chain is stride-easy
    EXPECT_EQ(none.predicted, 0u);
}

TEST(Dataflow, MemoryDependencesSerializeStoreLoadChains)
{
    // Pointer-chase through memory: each load depends on the
    // previous store to the same word.
    const std::string body =
            "        la   $t0, cell\n"
            "        li   $t1, 0\n"
            "        li   $t2, 0\n"
            "loop:   lw   $t1, 0($t0)\n"
            "        addi $t1, $t1, 1\n"
            "        sw   $t1, 0($t0)\n"
            "        addi $t2, $t2, 1\n"
            "        li   $t3, 100\n"
            "        blt  $t2, $t3, loop\n"
            + std::string(kExit)
            + "        .data\ncell:   .word 0\n";
    const Program p = assemble(body);
    const IlpResult with_mem =
            dataflowLimit(p, PredictionModel::None, nullptr, 1u << 22,
                          {}, true);
    const IlpResult without_mem =
            dataflowLimit(p, PredictionModel::None, nullptr, 1u << 22,
                          {}, false);
    // The store->load chain triples the path vs. registers alone.
    EXPECT_GT(with_mem.critical_path,
              without_mem.critical_path + 100);
}

TEST(Dataflow, CountsMatchTheMachine)
{
    const IlpResult r = limitOf("nop\nnop\n", PredictionModel::None);
    EXPECT_EQ(r.instructions, 4u);  // 2 nops + exit pair
}

} // namespace
} // namespace vpred::sim
