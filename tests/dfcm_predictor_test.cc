/**
 * @file
 * Unit tests for the DFCM predictor, including the paper's Figure 8
 * worked example (a stride pattern collapses to one level-2 entry)
 * and the Section 4.4 narrowed-stride behaviour.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/dfcm_predictor.hh"
#include "core/stats.hh"

namespace vpred
{
namespace
{

DfcmConfig
smallConfig()
{
    DfcmConfig cfg;
    cfg.l1_bits = 6;
    cfg.l2_bits = 12;
    return cfg;
}

TEST(DfcmPredictor, PredictsAStrideWithoutRepetition)
{
    // The paper: "the DFCM can correctly predict stride patterns,
    // even if they have not been repeated yet."
    DfcmPredictor p(smallConfig());
    PredictorStats s;
    for (int i = 0; i < 50; ++i)
        s.record(p.predictAndUpdate(1, 100 + 3 * i));
    // Only the history warm-up (about order + 1 predictions) misses
    // — no full pattern repetition is needed, unlike the FCM.
    EXPECT_GE(s.correct, 44u);
}

TEST(DfcmPredictor, Figure8StrideOccupiesOneSteadyStateEntry)
{
    // Pattern 0..6 repeating: after warm-up the constant difference
    // history maps every in-pattern access to one level-2 entry; the
    // wrap accesses touch only a handful more (Figure 8).
    DfcmPredictor p(smallConfig());
    for (int lap = 0; lap < 2; ++lap)
        for (int v = 0; v <= 6; ++v)
            p.update(1, v);

    std::map<std::uint64_t, int> entry_hits;
    for (int lap = 0; lap < 20; ++lap) {
        for (int v = 0; v <= 6; ++v) {
            ++entry_hits[p.l2IndexFor(1)];
            p.update(1, v);
        }
    }
    // Of 140 accesses, at least 60% hit one entry (in-stride), and
    // the total footprint stays tiny (order+1 wrap contexts).
    int max_hits = 0;
    for (const auto& [idx, hits] : entry_hits)
        max_hits = std::max(max_hits, hits);
    EXPECT_GE(max_hits, 80);
    EXPECT_LE(entry_hits.size(), 5u);
}

TEST(DfcmPredictor, PatternsWithEqualStrideShareEntries)
{
    // Two different instructions running different ranges with the
    // same stride map to the same level-2 entries.
    DfcmPredictor p(smallConfig());
    for (int i = 0; i < 20; ++i)
        p.update(1, 1000 + 5 * i);
    const std::uint64_t e1 = p.l2IndexFor(1);
    for (int i = 0; i < 20; ++i)
        p.update(2, 777000 + 5 * i);
    EXPECT_EQ(p.l2IndexFor(2), e1);
}

TEST(DfcmPredictor, LearnsIrregularRepeatingPatterns)
{
    // Non-stride patterns stay as predictable as with the FCM: the
    // difference history is an equivalent representation.
    DfcmPredictor p(smallConfig());
    const Value pattern[] = {0, 4, 2, 1};
    PredictorStats s;
    for (int lap = 0; lap < 50; ++lap)
        for (Value v : pattern)
            s.record(p.predictAndUpdate(9, v));
    EXPECT_GT(s.accuracy(), 0.9);
}

TEST(DfcmPredictor, PredictionIsLastValuePlusPredictedStride)
{
    DfcmPredictor p(smallConfig());
    for (int i = 0; i < 10; ++i)
        p.update(3, 10 * i);
    EXPECT_EQ(p.lastValueFor(3), 90u);
    EXPECT_EQ(p.predict(3), 100u);
}

TEST(DfcmPredictor, ConstantPatternSettlesOnOneEntry)
{
    DfcmPredictor p(smallConfig());
    // Warm up past the initial 0 -> 42 pseudo-stride contexts.
    for (unsigned i = 0; i <= p.order(); ++i)
        p.update(4, 42);
    std::set<std::uint64_t> entries;
    for (int i = 0; i < 30; ++i) {
        entries.insert(p.l2IndexFor(4));
        p.update(4, 42);
    }
    EXPECT_EQ(entries.size(), 1u);
}

TEST(DfcmPredictor, WrapAroundAtValueWidth)
{
    DfcmPredictor p(smallConfig());
    for (std::uint64_t i = 0; i < 10; ++i)
        p.update(5, (0xFFFFFFF0u + 4 * i) & 0xFFFFFFFFu);
    // Next value wraps past 2^32.
    const Value expect = (0xFFFFFFF0u + 4 * 10) & 0xFFFFFFFFu;
    EXPECT_EQ(p.predict(5), expect);
}

TEST(DfcmPredictor, NarrowedStridesStillPredictSmallSteps)
{
    DfcmConfig cfg = smallConfig();
    cfg.stride_bits = 8;
    DfcmPredictor p(cfg);
    PredictorStats s;
    for (int i = 0; i < 50; ++i)
        s.record(p.predictAndUpdate(1, 100 + 3 * i));
    EXPECT_GE(s.correct, 44u);

    // Negative small strides survive the sign extension.
    PredictorStats s2;
    for (int i = 0; i < 50; ++i)
        s2.record(p.predictAndUpdate(2, 100000 - 7 * i));
    EXPECT_GE(s2.correct, 44u);
}

TEST(DfcmPredictor, NarrowedStridesLoseLargeSteps)
{
    DfcmConfig cfg = smallConfig();
    cfg.stride_bits = 8;
    DfcmPredictor p(cfg);
    PredictorStats s;
    // Stride 100000 >> 2^7: every stored stride is truncated wrong.
    for (int i = 1; i <= 50; ++i)
        s.record(p.predictAndUpdate(1, 100000 * i));
    EXPECT_EQ(s.correct, 0u);
}

TEST(DfcmPredictor, StorageModelChargesLastValue)
{
    DfcmConfig cfg;
    cfg.l1_bits = 16;
    cfg.l2_bits = 12;
    DfcmPredictor p(cfg);
    // L1: hashed history + last value per entry; L2: one stride.
    EXPECT_EQ(p.storageBits(),
              (1ull << 16) * (12 + 32) + (1ull << 12) * 32);

    cfg.stride_bits = 16;
    EXPECT_EQ(DfcmPredictor(cfg).storageBits(),
              (1ull << 16) * (12 + 32) + (1ull << 12) * 16);
}

TEST(DfcmPredictor, Name)
{
    DfcmConfig cfg;
    cfg.l1_bits = 16;
    cfg.l2_bits = 12;
    EXPECT_EQ(DfcmPredictor(cfg).name(), "dfcm(l1=16,l2=12)");
    cfg.stride_bits = 8;
    EXPECT_EQ(DfcmPredictor(cfg).name(), "dfcm(l1=16,l2=12,sb=8)");
}

} // namespace
} // namespace vpred
