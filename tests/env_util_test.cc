/**
 * @file
 * Tests for the checked environment-variable parsing layer
 * (core/env_util.hh) and the three call sites that predate the
 * parse_util migration: REPRO_TRACE_SCALE lives in harness_test.cc;
 * REPRO_BATCH_SWEEP and REPRO_SIMD are covered here together with
 * the generic helpers. The contract under test: unset/empty selects
 * the default, a valid in-range value is used verbatim, and
 * everything else — trailing garbage, out-of-range, negative where
 * unsigned, unrecognized flag spellings — exits with status 2 after
 * one self-explanatory stderr line naming the variable.
 */

#include "core/env_util.hh"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/cpu_features.hh"
#include "harness/batch_sweep.hh"
#include "service/service_config.hh"

namespace
{

using namespace vpred;

class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char* name_;
};

TEST(EnvUtil, UnsetAndEmptySelectTheDefault)
{
    ::unsetenv("REPRO_TEST_KNOB");
    // REPRO_TEST_KNOB is this test's synthetic knob, not a real
    // configuration surface — keep it out of docs/api.md.
    EXPECT_DOUBLE_EQ(
            envDoubleOr("REPRO_TEST_KNOB",  // repro-lint: allow(api/env-doc-drift)
                        1.5, 0.0, 10.0),
            1.5);
    EXPECT_EQ(envUIntOr("REPRO_TEST_KNOB", 7, 1, 100), 7u);
    EXPECT_TRUE(envFlagOr("REPRO_TEST_KNOB", true));
    ScopedEnv empty("REPRO_TEST_KNOB", "");
    EXPECT_DOUBLE_EQ(envDoubleOr("REPRO_TEST_KNOB", 1.5, 0.0, 10.0), 1.5);
    EXPECT_FALSE(envFlagOr("REPRO_TEST_KNOB", false));
}

TEST(EnvUtil, ValidValuesParse)
{
    {
        ScopedEnv e("REPRO_TEST_KNOB", "2.25");
        EXPECT_DOUBLE_EQ(envDoubleOr("REPRO_TEST_KNOB", 1.0, 0.0, 10.0),
                         2.25);
    }
    {
        ScopedEnv e("REPRO_TEST_KNOB", "42");
        EXPECT_EQ(envUIntOr("REPRO_TEST_KNOB", 1, 1, 100), 42u);
    }
    {
        ScopedEnv e("REPRO_TEST_KNOB", "On");
        EXPECT_TRUE(envFlagOr("REPRO_TEST_KNOB", false));
    }
    {
        ScopedEnv e("REPRO_TEST_KNOB", "no");
        EXPECT_FALSE(envFlagOr("REPRO_TEST_KNOB", true));
    }
}

TEST(EnvUtilDeathTest, TrailingGarbageIsFatal)
{
    ScopedEnv e("REPRO_TEST_KNOB", "1.5x");
    EXPECT_EXIT(envDoubleOr("REPRO_TEST_KNOB", 1.0, 0.0, 10.0),
                ::testing::ExitedWithCode(2), "REPRO_TEST_KNOB");
}

TEST(EnvUtilDeathTest, OutOfRangeIsFatal)
{
    ScopedEnv e("REPRO_TEST_KNOB", "512");
    EXPECT_EXIT(envUIntOr("REPRO_TEST_KNOB", 8, 1, 256),
                ::testing::ExitedWithCode(2), "REPRO_TEST_KNOB");
}

TEST(EnvUtilDeathTest, NegativeUnsignedIsFatal)
{
    // strtoull would wrap -3 to 2^64-3; parseUInt rejects it and the
    // env layer turns the rejection into a hard exit.
    ScopedEnv e("REPRO_TEST_KNOB", "-3");
    EXPECT_EXIT(envUIntOr("REPRO_TEST_KNOB", 8, 1, 256),
                ::testing::ExitedWithCode(2), "REPRO_TEST_KNOB");
}

TEST(EnvUtilDeathTest, UnrecognizedFlagIsFatal)
{
    ScopedEnv e("REPRO_TEST_KNOB", "fales");
    EXPECT_EXIT(envFlagOr("REPRO_TEST_KNOB", true),
                ::testing::ExitedWithCode(2), "REPRO_TEST_KNOB");
}

// --- the migrated call sites ---------------------------------------

TEST(BatchSweepEnv, RecognizedSpellingsToggle)
{
    {
        ScopedEnv on("REPRO_BATCH_SWEEP", "1");
        EXPECT_TRUE(vpred::harness::batchSweepEnabled());
    }
    {
        ScopedEnv off("REPRO_BATCH_SWEEP", "off");
        EXPECT_FALSE(vpred::harness::batchSweepEnabled());
    }
    ::unsetenv("REPRO_BATCH_SWEEP");
    EXPECT_TRUE(vpred::harness::batchSweepEnabled());
}

TEST(BatchSweepEnvDeathTest, GarbageIsFatalNotSilentlyOn)
{
    // "fales" (a typo for "false") used to enable batching — the
    // exact opposite of the user's intent.
    ScopedEnv e("REPRO_BATCH_SWEEP", "fales");
    EXPECT_EXIT(vpred::harness::batchSweepEnabled(),
                ::testing::ExitedWithCode(2), "REPRO_BATCH_SWEEP");
}

TEST(ServiceEnv, ValidValuesConfigureTheService)
{
    ScopedEnv shards("REPRO_SERVICE_SHARDS", "8");
    ScopedEnv batch("REPRO_SERVICE_BATCH", "4096");
    const service::ServiceConfig cfg = service::ServiceConfig::fromEnv();
    EXPECT_EQ(cfg.shards, 8u);
    EXPECT_EQ(cfg.batch_records, 4096u);
}

TEST(ServiceEnvDeathTest, MalformedShardsIsFatal)
{
    // New REPRO_SERVICE_* knobs use checked parsing from day one —
    // no raw getenv to audit later.
    ScopedEnv e("REPRO_SERVICE_SHARDS", "8x");
    EXPECT_EXIT(service::ServiceConfig::fromEnv(),
                ::testing::ExitedWithCode(2), "REPRO_SERVICE_SHARDS");
}

TEST(ServiceEnvDeathTest, OutOfRangeBatchIsFatal)
{
    ScopedEnv e("REPRO_SERVICE_BATCH", "0");
    EXPECT_EXIT(service::ServiceConfig::fromEnv(),
                ::testing::ExitedWithCode(2), "REPRO_SERVICE_BATCH");
}

TEST(SimdEnvDeathTest, UnknownBackendNameIsFatal)
{
    // REPRO_SIMD=sse3 used to warn and silently dispatch to the best
    // backend, measuring the wrong kernel.
    ScopedEnv e("REPRO_SIMD", "sse3");
    EXPECT_EXIT(activeSimdBackend(), ::testing::ExitedWithCode(2),
                "REPRO_SIMD");
}

TEST(SimdEnv, EmptyStillSelectsBest)
{
    ScopedEnv e("REPRO_SIMD", "");
    EXPECT_EQ(activeSimdBackend(), bestSimdBackend());
}

} // namespace
