/**
 * @file
 * Unit tests for the MiniRISC assembler.
 */

#include <gtest/gtest.h>

#include "sim/assembler.hh"

namespace vpred::sim
{
namespace
{

TEST(Assembler, EncodesRegisterAluOps)
{
    const Program p = assemble("add $t0, $t1, $t2\n"
                               "sub r3, r4, r5\n");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(p.text[0], (Instr{Op::Add, 8, 9, 10, 0}));
    EXPECT_EQ(p.text[1], (Instr{Op::Sub, 3, 4, 5, 0}));
}

TEST(Assembler, EncodesImmediates)
{
    const Program p = assemble("addi $t0, $t0, -5\n"
                               "li   $v0, 0x10\n"
                               "ori  $a0, $zero, 'A'\n");
    EXPECT_EQ(p.text[0].imm, -5);
    EXPECT_EQ(p.text[1].op, Op::Li);
    EXPECT_EQ(p.text[1].imm, 16);
    EXPECT_EQ(p.text[2].imm, 'A');
}

TEST(Assembler, ShiftsSelectRegisterOrImmediateForm)
{
    const Program p = assemble("sll $t0, $t1, 3\n"
                               "sll $t0, $t1, $t2\n");
    EXPECT_EQ(p.text[0].op, Op::Slli);
    EXPECT_EQ(p.text[1].op, Op::Sllv);
}

TEST(Assembler, ResolvesForwardAndBackwardLabels)
{
    const Program p = assemble(
            "start: addi $t0, $t0, 1\n"
            "       bne  $t0, $t1, start\n"
            "       j    end\n"
            "       nop\n"
            "end:   syscall\n");
    EXPECT_EQ(p.text[1].imm, 0);  // back to instruction 0
    EXPECT_EQ(p.text[2].imm, 4);  // forward to instruction 4
}

TEST(Assembler, MemoryOperands)
{
    const Program p = assemble("lw $t0, 8($sp)\n"
                               "sw $t1, ($gp)\n"
                               "lb $t2, -4($fp)\n");
    EXPECT_EQ(p.text[0], (Instr{Op::Lw, 8, 29, 0, 8}));
    EXPECT_EQ(p.text[1].imm, 0);
    EXPECT_EQ(p.text[1].rt, 9u);
    EXPECT_EQ(p.text[2].imm, -4);
}

TEST(Assembler, DataDirectivesAndSymbols)
{
    const Program p = assemble(
            "        .data\n"
            "a:      .word 1, 2, 0x30\n"
            "b:      .byte 7\n"
            "c:      .half 0x1234\n"
            "d:      .space 3\n"
            "e:      .asciiz \"hi\\n\"\n");
    EXPECT_EQ(p.symbols.at("a"), Program::kDataBase);
    EXPECT_EQ(p.symbols.at("b"), Program::kDataBase + 12);
    EXPECT_EQ(p.symbols.at("c"), Program::kDataBase + 14);
    // .half aligns to 2 -> byte 13 is padding, value at 14.
    EXPECT_EQ(p.data[12], 7u);
    EXPECT_EQ(p.data[14], 0x34u);
    EXPECT_EQ(p.data[15], 0x12u);
    EXPECT_EQ(p.symbols.at("e"), Program::kDataBase + 19);
    EXPECT_EQ(p.data[19], 'h');
    EXPECT_EQ(p.data[20], 'i');
    EXPECT_EQ(p.data[21], '\n');
    EXPECT_EQ(p.data[22], 0u);
    // .word values little-endian.
    EXPECT_EQ(p.data[0], 1u);
    EXPECT_EQ(p.data[8], 0x30u);
}

TEST(Assembler, LaLoadsSymbolAddresses)
{
    const Program p = assemble("        la $t0, buf\n"
                               "        la $t1, buf+8\n"
                               "        .data\n"
                               "buf:    .space 16\n");
    EXPECT_EQ(p.text[0].imm,
              static_cast<std::int64_t>(Program::kDataBase));
    EXPECT_EQ(p.text[1].imm,
              static_cast<std::int64_t>(Program::kDataBase) + 8);
}

TEST(Assembler, EquConstants)
{
    const Program p = assemble(".equ SIZE, 400\n"
                               "li $t0, SIZE\n");
    EXPECT_EQ(p.text[0].imm, 400);
}

TEST(Assembler, PseudoBranches)
{
    const Program p = assemble("x: bgt  $t0, $t1, x\n"
                               "   beqz $t2, x\n"
                               "   blez $t3, x\n");
    // bgt a,b -> blt b,a
    EXPECT_EQ(p.text[0].op, Op::Blt);
    EXPECT_EQ(p.text[0].rs, 9u);
    EXPECT_EQ(p.text[0].rt, 8u);
    // beqz r -> beq r, zero
    EXPECT_EQ(p.text[1].op, Op::Beq);
    EXPECT_EQ(p.text[1].rt, 0u);
    // blez r -> bge zero, r
    EXPECT_EQ(p.text[2].op, Op::Bge);
    EXPECT_EQ(p.text[2].rs, 0u);
    EXPECT_EQ(p.text[2].rt, 11u);
}

TEST(Assembler, PseudoAluForms)
{
    const Program p = assemble("move $t0, $t1\n"
                               "neg  $t2, $t3\n"
                               "not  $t4, $t5\n"
                               "subi $t6, $t6, 7\n");
    EXPECT_EQ(p.text[0], (Instr{Op::Addi, 8, 9, 0, 0}));
    EXPECT_EQ(p.text[1], (Instr{Op::Sub, 10, 0, 11, 0}));
    EXPECT_EQ(p.text[2], (Instr{Op::Nor, 12, 13, 0, 0}));
    EXPECT_EQ(p.text[3], (Instr{Op::Addi, 14, 14, 0, -7}));
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = assemble(
            "# full comment line\n"
            "   \n"
            "add $t0, $t0, $t0   # trailing\n"
            "nop ; semicolon comment\n");
    EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, JumpTableOfCodeLabels)
{
    const Program p = assemble(
            "        j b\n"
            "a:      nop\n"
            "b:      syscall\n"
            "        .data\n"
            "tab:    .word a, b\n");
    // Code label values are byte addresses (index * 4).
    EXPECT_EQ(p.data[0], 4u);
    EXPECT_EQ(p.data[4], 8u);
}

TEST(Assembler, EntryPointIsMainIfPresent)
{
    EXPECT_EQ(assemble("nop\nmain: nop\n").entry, 1u);
    EXPECT_EQ(assemble("nop\nnop\n").entry, 0u);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop\nfrobnicate $t0\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError& e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_NE(std::string(e.what()).find("frobnicate"),
                  std::string::npos);
    }
}

TEST(Assembler, RejectsBadRegister)
{
    EXPECT_THROW(assemble("add $t0, $t1, $zz\n"), AsmError);
    EXPECT_THROW(assemble("add $t0, $t1, $32\n"), AsmError);
}

TEST(Assembler, RejectsUndefinedSymbol)
{
    EXPECT_THROW(assemble("j nowhere\n"), AsmError);
}

TEST(Assembler, RejectsDuplicateLabel)
{
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), AsmError);
}

TEST(Assembler, RejectsWrongOperandCount)
{
    EXPECT_THROW(assemble("add $t0, $t1\n"), AsmError);
    EXPECT_THROW(assemble("nop $t0\n"), AsmError);
}

TEST(Assembler, RejectsInstructionInDataSegment)
{
    EXPECT_THROW(assemble(".data\nadd $t0, $t0, $t0\n"), AsmError);
}

TEST(Assembler, RejectsMisalignedBranchTarget)
{
    EXPECT_THROW(assemble("beq $t0, $t1, 3\n"), AsmError);
}

} // namespace
} // namespace vpred::sim
