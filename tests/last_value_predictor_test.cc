/**
 * @file
 * Unit tests for the last value predictor.
 */

#include <gtest/gtest.h>

#include "core/last_value_predictor.hh"
#include "core/stats.hh"

namespace vpred
{
namespace
{

TEST(LastValuePredictor, PredictsZeroWhenCold)
{
    LastValuePredictor p(4);
    EXPECT_EQ(p.predict(0x1234), 0u);
}

TEST(LastValuePredictor, PredictsLastValue)
{
    LastValuePredictor p(4);
    p.update(7, 42);
    EXPECT_EQ(p.predict(7), 42u);
    p.update(7, 43);
    EXPECT_EQ(p.predict(7), 43u);
}

TEST(LastValuePredictor, PerfectOnConstantPattern)
{
    LastValuePredictor p(8);
    PredictorStats s;
    for (int i = 0; i < 100; ++i)
        s.record(p.predictAndUpdate(3, 1234));
    EXPECT_EQ(s.correct, 99u);  // only the cold start misses
}

TEST(LastValuePredictor, FailsOnStridePattern)
{
    LastValuePredictor p(8);
    PredictorStats s;
    for (int i = 0; i < 100; ++i)
        s.record(p.predictAndUpdate(3, 100 + 4 * i));
    EXPECT_EQ(s.correct, 0u);
}

TEST(LastValuePredictor, UntaggedTableAliases)
{
    // Two instructions whose low table_bits collide share an entry.
    LastValuePredictor p(4);
    p.update(0x10, 7);  // same low 4 bits as 0x20? no: 0x10 & 0xF = 0
    p.update(0x20, 9);  // 0x20 & 0xF = 0 -> same entry
    EXPECT_EQ(p.predict(0x10), 9u);
}

TEST(LastValuePredictor, ValuesMaskedToValueWidth)
{
    LastValuePredictor p(4, 16);
    p.update(1, 0x12345);
    EXPECT_EQ(p.predict(1), 0x2345u);
}

TEST(LastValuePredictor, StorageModel)
{
    // E entries of value_bits each.
    EXPECT_EQ(LastValuePredictor(10, 32).storageBits(), 1024u * 32u);
    EXPECT_EQ(LastValuePredictor(6, 32).storageBits(), 64u * 32u);
    EXPECT_DOUBLE_EQ(LastValuePredictor(10, 32).storageKbit(), 32.0);
}

TEST(LastValuePredictor, Name)
{
    EXPECT_EQ(LastValuePredictor(12).name(), "lvp(t=12)");
}

} // namespace
} // namespace vpred
