/**
 * @file
 * Tests for the always-on sharded prediction service: the
 * shard-count determinism contract on per-stream level-1 state, the
 * eviction -> snapshot -> restore bit-identity guarantee, the
 * spill/restore path against a single-stream reference kernel, the
 * SlotMap and LatencyHistogram building blocks, and a
 * multi-producer ingest race. Lives in its own binary labelled
 * "concurrency" so the race runs under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/trace_io.hh"
#include "service/latency_histogram.hh"
#include "service/prediction_service.hh"
#include "service/slot_map.hh"

namespace vpred::service
{
namespace
{

namespace fs = std::filesystem;

/** A small geometry with heavy eviction churn: 16 resident streams
 *  per shard against hundreds of live streams. */
ServiceConfig
tinyConfig(unsigned shards)
{
    ServiceConfig cfg;
    cfg.shards = shards;
    cfg.l1_bits = 4;
    cfg.l2_bits = {6, 10};
    return cfg;
}

/** Deterministic per-stream value sequence (stride + wobble). */
Value
valueOf(std::uint64_t stream, std::uint64_t step)
{
    const std::uint64_t stride = (mixStreamId(stream) & 0x3f) + 1;
    return (stream * 7 + step * stride + (step >> 3)) & 0xffffffffull;
}

/** Feed @p steps rounds of @p n_streams through @p service, pumping
 *  every round (single producer, so per-stream order is global
 *  order). */
void
feed(PredictionService& service, std::uint64_t n_streams,
     std::uint64_t steps)
{
    for (std::uint64_t step = 0; step < steps; ++step) {
        for (std::uint64_t s = 0; s < n_streams; ++s)
            service.ingest(s, valueOf(s, step), step);
        service.pump(step + 1);
    }
}

class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        dir_ = fs::temp_directory_path() /
               ("vpred_service_test_" + std::to_string(::getpid())
                + "_" + std::to_string(counter++));
        fs::create_directories(dir_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string str() const { return dir_.string(); }

  private:
    fs::path dir_;
};

TEST(ServiceDeterminism, StreamStateInvariantAcrossShardCounts)
{
    // The determinism contract: a stream's exported level-1 state
    // depends only on its own value sequence, so any shard count
    // produces identical per-stream state for the same ingest order.
    constexpr std::uint64_t kStreams = 300;
    constexpr std::uint64_t kSteps = 12;

    PredictionService one(tinyConfig(1));
    PredictionService four(tinyConfig(4));
    feed(one, kStreams, kSteps);
    feed(four, kStreams, kSteps);

    // The churn must actually exercise eviction and restore, or the
    // test proves nothing.
    EXPECT_GT(one.stats().evictions, 0u);
    EXPECT_GT(one.stats().restores, 0u);

    for (std::uint64_t s = 0; s < kStreams; ++s) {
        const auto a = one.streamState(s);
        const auto b = four.streamState(s);
        ASSERT_TRUE(a.has_value()) << "stream " << s;
        ASSERT_TRUE(b.has_value()) << "stream " << s;
        EXPECT_EQ(*a, *b) << "stream " << s;
    }
}

TEST(ServiceDeterminism, SpilledStateMatchesSingleStreamReference)
{
    // Stronger than cross-shard equality: each stream's state must
    // equal a dedicated one-entry kernel fed only that stream's
    // values — i.e. co-residency, slot assignment, eviction and
    // restore are all invisible to level-1 state.
    const ServiceConfig cfg = tinyConfig(2);
    constexpr std::uint64_t kStreams = 100;
    constexpr std::uint64_t kSteps = 9;
    PredictionService service(cfg);
    feed(service, kStreams, kSteps);
    ASSERT_GT(service.stats().evictions, 0u);

    MultiGeomConfig ref_cfg;
    ref_cfg.l1_bits = cfg.l1_bits;
    ref_cfg.l2_bits = cfg.l2_bits;
    for (std::uint64_t s = 0; s < kStreams; ++s) {
        MultiGeomDfcmKernel ref(ref_cfg);
        ValueTrace own;
        for (std::uint64_t step = 0; step < kSteps; ++step)
            own.push_back({Pc{0}, valueOf(s, step)});
        ref.runTrace(own);

        const auto got = service.streamState(s);
        ASSERT_TRUE(got.has_value()) << "stream " << s;
        EXPECT_TRUE(std::ranges::equal(got->hists, ref.entryHists(0)))
                << "stream " << s;
        EXPECT_EQ(got->last, ref.lastValue(0)) << "stream " << s;
    }
}

TEST(ServiceSnapshot, EvictSnapshotRestoreIsBitIdentical)
{
    TempDir tmp;
    const std::string path = tmp.str() + "/snapshot.vpt2";
    constexpr std::uint64_t kStreams = 200;
    constexpr std::uint64_t kSteps = 7;

    PredictionService a(tinyConfig(2));
    feed(a, kStreams, kSteps);
    ASSERT_GT(a.stats().evictions, 0u);
    a.snapshotTo(path);

    PredictionService b(tinyConfig(2));
    b.restoreFrom(path);
    for (std::uint64_t s = 0; s < kStreams; ++s) {
        const auto orig = a.streamState(s);
        const auto restored = b.streamState(s);
        ASSERT_TRUE(orig.has_value()) << "stream " << s;
        ASSERT_TRUE(restored.has_value()) << "stream " << s;
        EXPECT_EQ(*orig, *restored) << "stream " << s;
    }

    // The restored service must *continue* identically at level 1:
    // feed both the same tail and re-compare.
    for (std::uint64_t step = kSteps; step < kSteps + 4; ++step) {
        for (std::uint64_t s = 0; s < kStreams; ++s) {
            a.ingest(s, valueOf(s, step), step);
            b.ingest(s, valueOf(s, step), step);
        }
        a.pump(step);
        b.pump(step);
    }
    for (std::uint64_t s = 0; s < kStreams; ++s)
        EXPECT_EQ(*a.streamState(s), *b.streamState(s))
                << "stream " << s;
}

TEST(ServiceSnapshot, RestoreIntoDifferentShardCountPreservesState)
{
    TempDir tmp;
    const std::string path = tmp.str() + "/snapshot.vpt2";
    PredictionService a(tinyConfig(3));
    feed(a, 150, 6);
    a.snapshotTo(path);

    PredictionService b(tinyConfig(1));
    b.restoreFrom(path);
    for (std::uint64_t s = 0; s < 150; ++s)
        EXPECT_EQ(*a.streamState(s), *b.streamState(s))
                << "stream " << s;
}

TEST(ServiceSnapshot, RejectsMismatchedGeometry)
{
    TempDir tmp;
    const std::string path = tmp.str() + "/snapshot.vpt2";
    PredictionService a(tinyConfig(1));
    feed(a, 40, 3);
    a.snapshotTo(path);

    ServiceConfig other = tinyConfig(1);
    other.l2_bits = {6, 10, 14};  // different column count
    PredictionService b(other);
    EXPECT_THROW(b.restoreFrom(path), TraceIoError);
}

TEST(ServiceSnapshot, RejectsCorruptSnapshot)
{
    TempDir tmp;
    const std::string path = tmp.str() + "/snapshot.vpt2";
    PredictionService a(tinyConfig(1));
    feed(a, 40, 3);
    a.snapshotTo(path);

    fs::resize_file(path, fs::file_size(path) - 13);
    PredictionService b(tinyConfig(1));
    EXPECT_THROW(b.restoreFrom(path), TraceIoError);
}

TEST(ServiceIngest, ConcurrentProducersLoseNothing)
{
    // Multi-producer ingest racing a pumping consumer; run under
    // TSan via the "concurrency" CTest label. Totals must balance
    // and every stream must end with its full update count applied.
    ServiceConfig cfg = tinyConfig(2);
    cfg.l1_bits = 6;
    PredictionService service(cfg);

    constexpr unsigned kProducers = 4;
    constexpr std::uint64_t kPerProducer = 5000;
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
        producers.emplace_back([&service, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                const std::uint64_t stream =
                        p * kPerProducer + i % 97;
                service.ingest(stream, valueOf(stream, i), i);
            }
        });
    }
    std::uint64_t drained = 0;
    while (drained < kProducers * kPerProducer) {
        const std::size_t got = service.pump(1);
        drained += got;
        if (got == 0)
            std::this_thread::yield();
    }
    for (std::thread& t : producers)
        t.join();
    drained += service.pump(1);

    EXPECT_EQ(drained, kProducers * kPerProducer);
    EXPECT_EQ(service.stats().ingested, kProducers * kPerProducer);
    EXPECT_EQ(service.stats().predictions, kProducers * kPerProducer);
}

TEST(SlotMap, MatchesReferenceMapUnderChurn)
{
    SlotMap map(256);
    std::map<std::uint64_t, std::uint32_t> ref;
    std::uint64_t x = 42;
    for (int i = 0; i < 20000; ++i) {
        x = mixStreamId(x);
        const std::uint64_t key = x % 997;
        if ((x >> 32) % 3 == 0 && ref.count(key)) {
            map.erase(key);
            ref.erase(key);
        } else if (!ref.count(key)) {
            const auto slot = static_cast<std::uint32_t>(x & 0xffff);
            map.insert(key, slot);
            ref[key] = slot;
        }
        if (i % 97 == 0) {
            for (const auto& [k, v] : ref)
                ASSERT_EQ(map.find(k), std::optional(v)) << "key " << k;
            ASSERT_EQ(map.size(), ref.size());
        }
    }
}

TEST(SlotMap, GrowsPastInitialCapacity)
{
    SlotMap map(4);
    for (std::uint64_t k = 0; k < 1000; ++k)
        map.insert(k, static_cast<std::uint32_t>(k * 3));
    EXPECT_EQ(map.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        ASSERT_EQ(map.find(k),
                  std::optional(static_cast<std::uint32_t>(k * 3)));
    EXPECT_FALSE(map.find(1000).has_value());
}

TEST(LatencyHistogram, QuantilesBracketTheSamples)
{
    LatencyHistogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.record(1000);  // all samples in [512, 2048)
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_GE(h.quantileNs(0.5), 512u);
    EXPECT_LE(h.quantileNs(0.5), 2048u);
    EXPECT_GE(h.quantileNs(0.99), h.quantileNs(0.5));

    LatencyHistogram empty;
    EXPECT_EQ(empty.quantileNs(0.5), 0u);

    LatencyHistogram merged;
    merged.merge(h);
    merged.merge(h);
    EXPECT_EQ(merged.count(), 2000u);
}

} // namespace
} // namespace vpred::service
