/**
 * @file
 * Tests for the always-on sharded prediction service: the
 * shard-count determinism contract on per-stream level-1 state, the
 * eviction -> snapshot -> restore bit-identity guarantee, the
 * spill/restore path against a single-stream reference kernel, the
 * SlotMap and LatencyHistogram building blocks, and a
 * multi-producer ingest race. Lives in its own binary labelled
 * "concurrency" so the race runs under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/trace_io.hh"
#include "service/latency_histogram.hh"
#include "service/prediction_service.hh"
#include "service/slot_map.hh"

namespace vpred::service
{
namespace
{

namespace fs = std::filesystem;

/** A small geometry with heavy eviction churn: 16 resident streams
 *  per shard against hundreds of live streams. */
ServiceConfig
tinyConfig(unsigned shards)
{
    ServiceConfig cfg;
    cfg.shards = shards;
    cfg.l1_bits = 4;
    cfg.l2_bits = {6, 10};
    return cfg;
}

/** Deterministic per-stream value sequence (stride + wobble). */
Value
valueOf(std::uint64_t stream, std::uint64_t step)
{
    const std::uint64_t stride = (mixStreamId(stream) & 0x3f) + 1;
    return (stream * 7 + step * stride + (step >> 3)) & 0xffffffffull;
}

/** Push one update through @p prod, relieving ring backpressure by
 *  pumping (single-threaded tests have no drain thread, so a full
 *  ring would otherwise never empty). */
void
push(PredictionService& service, const Producer& prod,
     std::uint64_t stream, Value value, std::uint64_t tick)
{
    while (!service.tryIngest(prod, stream, value, tick))
        service.pump(tick + 1);
}

/** Feed @p steps rounds of @p n_streams through @p service, flushing
 *  and pumping every round (single producer, so per-stream order is
 *  global order). */
void
feed(PredictionService& service, std::uint64_t n_streams,
     std::uint64_t steps)
{
    Producer prod = service.registerProducer();
    for (std::uint64_t step = 0; step < steps; ++step) {
        for (std::uint64_t s = 0; s < n_streams; ++s)
            push(service, prod, s, valueOf(s, step), step);
        service.flush(prod);
        while (service.pump(step + 1) != 0) {
        }
    }
    service.unregisterProducer(prod);
}

class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        dir_ = fs::temp_directory_path() /
               ("vpred_service_test_" + std::to_string(::getpid())
                + "_" + std::to_string(counter++));
        fs::create_directories(dir_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string str() const { return dir_.string(); }

  private:
    fs::path dir_;
};

TEST(ServiceDeterminism, StreamStateInvariantAcrossShardCounts)
{
    // The determinism contract: a stream's exported level-1 state
    // depends only on its own value sequence, so any shard count
    // produces identical per-stream state for the same ingest order.
    constexpr std::uint64_t kStreams = 300;
    constexpr std::uint64_t kSteps = 12;

    PredictionService one(tinyConfig(1));
    PredictionService four(tinyConfig(4));
    feed(one, kStreams, kSteps);
    feed(four, kStreams, kSteps);

    // The churn must actually exercise eviction and restore, or the
    // test proves nothing.
    EXPECT_GT(one.stats().evictions, 0u);
    EXPECT_GT(one.stats().restores, 0u);

    for (std::uint64_t s = 0; s < kStreams; ++s) {
        const auto a = one.streamState(s);
        const auto b = four.streamState(s);
        ASSERT_TRUE(a.has_value()) << "stream " << s;
        ASSERT_TRUE(b.has_value()) << "stream " << s;
        EXPECT_EQ(*a, *b) << "stream " << s;
    }
}

TEST(ServiceDeterminism, SpilledStateMatchesSingleStreamReference)
{
    // Stronger than cross-shard equality: each stream's state must
    // equal a dedicated one-entry kernel fed only that stream's
    // values — i.e. co-residency, slot assignment, eviction and
    // restore are all invisible to level-1 state.
    const ServiceConfig cfg = tinyConfig(2);
    constexpr std::uint64_t kStreams = 100;
    constexpr std::uint64_t kSteps = 9;
    PredictionService service(cfg);
    feed(service, kStreams, kSteps);
    ASSERT_GT(service.stats().evictions, 0u);

    MultiGeomConfig ref_cfg;
    ref_cfg.l1_bits = cfg.l1_bits;
    ref_cfg.l2_bits = cfg.l2_bits;
    for (std::uint64_t s = 0; s < kStreams; ++s) {
        MultiGeomDfcmKernel ref(ref_cfg);
        ValueTrace own;
        for (std::uint64_t step = 0; step < kSteps; ++step)
            own.push_back({Pc{0}, valueOf(s, step)});
        ref.runTrace(own);

        const auto got = service.streamState(s);
        ASSERT_TRUE(got.has_value()) << "stream " << s;
        EXPECT_TRUE(std::ranges::equal(got->hists, ref.entryHists(0)))
                << "stream " << s;
        EXPECT_EQ(got->last, ref.lastValue(0)) << "stream " << s;
    }
}

TEST(ServiceSnapshot, EvictSnapshotRestoreIsBitIdentical)
{
    TempDir tmp;
    const std::string path = tmp.str() + "/snapshot.vpt2";
    constexpr std::uint64_t kStreams = 200;
    constexpr std::uint64_t kSteps = 7;

    PredictionService a(tinyConfig(2));
    feed(a, kStreams, kSteps);
    ASSERT_GT(a.stats().evictions, 0u);
    a.snapshotTo(path);

    PredictionService b(tinyConfig(2));
    b.restoreFrom(path);
    for (std::uint64_t s = 0; s < kStreams; ++s) {
        const auto orig = a.streamState(s);
        const auto restored = b.streamState(s);
        ASSERT_TRUE(orig.has_value()) << "stream " << s;
        ASSERT_TRUE(restored.has_value()) << "stream " << s;
        EXPECT_EQ(*orig, *restored) << "stream " << s;
    }

    // The restored service must *continue* identically at level 1:
    // feed both the same tail and re-compare.
    Producer pa = a.registerProducer();
    Producer pb = b.registerProducer();
    for (std::uint64_t step = kSteps; step < kSteps + 4; ++step) {
        for (std::uint64_t s = 0; s < kStreams; ++s) {
            push(a, pa, s, valueOf(s, step), step);
            push(b, pb, s, valueOf(s, step), step);
        }
        a.flush(pa);
        b.flush(pb);
        a.pump(step);
        b.pump(step);
    }
    a.unregisterProducer(pa);
    b.unregisterProducer(pb);
    for (std::uint64_t s = 0; s < kStreams; ++s)
        EXPECT_EQ(*a.streamState(s), *b.streamState(s))
                << "stream " << s;
}

TEST(ServiceSnapshot, RestoreIntoDifferentShardCountPreservesState)
{
    TempDir tmp;
    const std::string path = tmp.str() + "/snapshot.vpt2";
    PredictionService a(tinyConfig(3));
    feed(a, 150, 6);
    a.snapshotTo(path);

    PredictionService b(tinyConfig(1));
    b.restoreFrom(path);
    for (std::uint64_t s = 0; s < 150; ++s)
        EXPECT_EQ(*a.streamState(s), *b.streamState(s))
                << "stream " << s;
}

TEST(ServiceSnapshot, RejectsMismatchedGeometry)
{
    TempDir tmp;
    const std::string path = tmp.str() + "/snapshot.vpt2";
    PredictionService a(tinyConfig(1));
    feed(a, 40, 3);
    a.snapshotTo(path);

    ServiceConfig other = tinyConfig(1);
    other.l2_bits = {6, 10, 14};  // different column count
    PredictionService b(other);
    EXPECT_THROW(b.restoreFrom(path), TraceIoError);
}

TEST(ServiceSnapshot, RejectsCorruptSnapshot)
{
    TempDir tmp;
    const std::string path = tmp.str() + "/snapshot.vpt2";
    PredictionService a(tinyConfig(1));
    feed(a, 40, 3);
    a.snapshotTo(path);

    fs::resize_file(path, fs::file_size(path) - 13);
    PredictionService b(tinyConfig(1));
    EXPECT_THROW(b.restoreFrom(path), TraceIoError);
}

TEST(ServiceIngest, ConcurrentProducersLoseNothing)
{
    // Multi-producer ingest racing a pumping consumer; run under
    // TSan via the "concurrency" CTest label. Each thread registers
    // its own producer (registration itself races ingest and pump),
    // rides out backpressure with a yield loop, and unregisters —
    // which flushes its partial batches — before the final pump.
    // Totals must balance.
    ServiceConfig cfg = tinyConfig(2);
    cfg.l1_bits = 6;
    cfg.ring_capacity = 256;  // small enough to exercise ring-full
    PredictionService service(cfg);

    constexpr unsigned kProducers = 4;
    constexpr std::uint64_t kPerProducer = 5000;
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
        producers.emplace_back([&service, p] {
            Producer prod = service.registerProducer();
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                const std::uint64_t stream =
                        p * kPerProducer + i % 97;
                while (!service.tryIngest(prod, stream,
                                          valueOf(stream, i), i)) {
                    service.noteBlocked(prod, 1);
                    std::this_thread::yield();
                }
            }
            service.unregisterProducer(prod);
        });
    }
    std::uint64_t drained = 0;
    while (drained < kProducers * kPerProducer) {
        const std::size_t got = service.pump(1);
        drained += got;
        if (got == 0)
            std::this_thread::yield();
    }
    for (std::thread& t : producers)
        t.join();
    drained += service.pump(1);

    EXPECT_EQ(drained, kProducers * kPerProducer);
    EXPECT_EQ(service.stats().ingested, kProducers * kPerProducer);
    EXPECT_EQ(service.stats().predictions, kProducers * kPerProducer);
    const IngestStats ing = service.ingestStats();
    EXPECT_EQ(ing.producers_registered, kProducers);
    EXPECT_EQ(ing.producers_active, 0u);
    EXPECT_EQ(ing.published_records, kProducers * kPerProducer);
    EXPECT_EQ(ing.blocked_events, ing.blocked_ns);
}

TEST(ServiceIngest, DeterminismAcrossRingCapacityAndProducerCount)
{
    // The same contract StreamStateInvariantAcrossShardCounts pins
    // for shards, extended to the ingest fabric: per-stream level-1
    // state must not depend on ring capacity, publish batch, or how
    // streams are partitioned across producers — only on each
    // stream's own value sequence. The tiny ring forces the
    // backpressure path (push() pumps to relieve it), and three
    // producers change the cross-stream drain interleaving without
    // touching any single stream's order.
    constexpr std::uint64_t kStreams = 120;
    constexpr std::uint64_t kSteps = 10;

    PredictionService ref(tinyConfig(2));
    feed(ref, kStreams, kSteps);

    ServiceConfig cfg = tinyConfig(2);
    cfg.ring_capacity = 8;
    cfg.publish_batch = 8;
    PredictionService svc(cfg);
    std::vector<Producer> prods;
    for (int p = 0; p < 3; ++p)
        prods.push_back(svc.registerProducer());
    for (std::uint64_t step = 0; step < kSteps; ++step) {
        for (std::uint64_t s = 0; s < kStreams; ++s)
            push(svc, prods[s % 3], s, valueOf(s, step), step);
        for (const Producer& p : prods)
            svc.flush(p);
        while (svc.pump(step + 1) != 0) {
        }
    }
    EXPECT_GT(svc.ingestStats().full_events, 0u)
            << "ring too big to exercise backpressure";

    for (std::uint64_t s = 0; s < kStreams; ++s) {
        const auto a = ref.streamState(s);
        const auto b = svc.streamState(s);
        ASSERT_TRUE(a.has_value()) << "stream " << s;
        ASSERT_TRUE(b.has_value()) << "stream " << s;
        EXPECT_EQ(*a, *b) << "stream " << s;
    }
    for (Producer& p : prods)
        svc.unregisterProducer(p);
}

TEST(ServiceIngest, FlushOnIdlePublishesPartialBatches)
{
    // With publish_batch > records pushed, nothing is visible to
    // pump until flush() — and after flush everything is.
    ServiceConfig cfg = tinyConfig(1);
    cfg.publish_batch = 64;
    PredictionService service(cfg);
    Producer prod = service.registerProducer();
    for (std::uint64_t s = 0; s < 10; ++s)
        ASSERT_TRUE(service.tryIngest(prod, s, valueOf(s, 0), 0));
    EXPECT_EQ(service.pump(1), 0u) << "unpublished records drained";
    service.flush(prod);
    EXPECT_EQ(service.pump(1), 10u);
    service.unregisterProducer(prod);
}

TEST(ServiceIngest, UnregisterPublishesAndCapIsEnforced)
{
    ServiceConfig cfg = tinyConfig(1);
    cfg.publish_batch = 64;
    cfg.max_producers = 2;
    PredictionService service(cfg);

    Producer a = service.registerProducer();
    ASSERT_TRUE(service.tryIngest(a, 7, valueOf(7, 0), 0));
    service.unregisterProducer(a);  // flushes the partial batch
    EXPECT_FALSE(a.valid());
    EXPECT_EQ(service.pump(1), 1u);

    // Slots are never reused: the second registration takes the
    // second (and last) slot, the third must fail loudly.
    Producer b = service.registerProducer();
    EXPECT_TRUE(b.valid());
    EXPECT_THROW(service.registerProducer(), std::length_error);
    service.unregisterProducer(b);
}

TEST(ServiceIngest, AdaptiveQuotaGrowsHotAndShrinksPastSlo)
{
    // Grow: keep the rings hotter than the quota floor with ticks
    // equal to now (measured latency 0 stays inside the SLO), so
    // the quota must double away from the floor. Shrink: then stamp
    // ticks 1ms in the past so the per-drain p99 busts the 1us SLO
    // and the quota must halve — shrink wins over hot.
    ServiceConfig cfg = tinyConfig(1);
    cfg.l1_bits = 8;
    cfg.ring_capacity = 1024;
    cfg.sweep_quota_min = 64;
    cfg.sweep_quota_max = 512;
    cfg.drain_slo_ns = 1000;
    PredictionService service(cfg);
    Producer prod = service.registerProducer();

    for (std::uint64_t round = 0; round < 4; ++round) {
        for (std::uint64_t i = 0; i < 256; ++i)
            push(service, prod, i % 50, valueOf(i % 50, round), 1);
        service.flush(prod);
        service.pump(1);  // quota-bounded drain leaves backlog → hot
    }
    while (service.pump(1) != 0) {
    }
    EXPECT_GT(service.stats().quota_grows, 0u);
    EXPECT_GT(service.stats().max_backlog, 64u);

    for (std::uint64_t round = 0; round < 4; ++round) {
        for (std::uint64_t i = 0; i < 200; ++i)
            push(service, prod, i % 50, valueOf(i % 50, round), 0);
        service.flush(prod);
        service.pump(1'000'000);  // every record looks 1ms late
    }
    while (service.pump(1'000'000) != 0) {
    }
    EXPECT_GT(service.stats().quota_shrinks, 0u);
    service.unregisterProducer(prod);
}

TEST(SlotMap, MatchesReferenceMapUnderChurn)
{
    SlotMap map(256);
    std::map<std::uint64_t, std::uint32_t> ref;
    std::uint64_t x = 42;
    for (int i = 0; i < 20000; ++i) {
        x = mixStreamId(x);
        const std::uint64_t key = x % 997;
        if ((x >> 32) % 3 == 0 && ref.count(key)) {
            EXPECT_TRUE(map.erase(key));
            ref.erase(key);
        } else if (!ref.count(key)) {
            const auto slot = static_cast<std::uint32_t>(x & 0xffff);
            EXPECT_TRUE(map.insert(key, slot));
            ref[key] = slot;
        }
        if (i % 97 == 0) {
            for (const auto& [k, v] : ref)
                ASSERT_EQ(map.find(k), std::optional(v)) << "key " << k;
            ASSERT_EQ(map.size(), ref.size());
        }
    }
}

TEST(SlotMap, ReportsDuplicateInsertAndAbsentErase)
{
    SlotMap map(16);
    EXPECT_TRUE(map.insert(5, 1));
    EXPECT_FALSE(map.insert(5, 2));  // duplicate: table unchanged
    EXPECT_EQ(map.find(5), std::optional<std::uint32_t>(1));
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.erase(6));  // absent key reports, never probes
    EXPECT_TRUE(map.erase(5));   // forever through empty buckets
    EXPECT_FALSE(map.erase(5));
    EXPECT_EQ(map.size(), 0u);
}

TEST(SlotMap, GrowsPastInitialCapacity)
{
    SlotMap map(4);
    for (std::uint64_t k = 0; k < 1000; ++k)
        ASSERT_TRUE(map.insert(k, static_cast<std::uint32_t>(k * 3)));
    EXPECT_EQ(map.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        ASSERT_EQ(map.find(k),
                  std::optional(static_cast<std::uint32_t>(k * 3)));
    EXPECT_FALSE(map.find(1000).has_value());
}

TEST(LatencyHistogram, QuantilesBracketTheSamples)
{
    LatencyHistogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.record(1000);  // all samples in [512, 2048)
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_GE(h.quantileNs(0.5), 512u);
    EXPECT_LE(h.quantileNs(0.5), 2048u);
    EXPECT_GE(h.quantileNs(0.99), h.quantileNs(0.5));

    LatencyHistogram empty;
    EXPECT_EQ(empty.quantileNs(0.5), 0u);

    LatencyHistogram merged;
    merged.merge(h);
    merged.merge(h);
    EXPECT_EQ(merged.count(), 2000u);
}

} // namespace
} // namespace vpred::service
