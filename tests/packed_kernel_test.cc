/**
 * @file
 * Tests for the stream-packed multi-geometry kernel tier
 * (feedTracePacked): per-entry level-1 state must be bit-identical to
 * a reference kernel fed each entry's records alone — for every
 * compiled backend, any batch shape and any chunking — and packed
 * counters must be identical across backends (the canonical 16-lane
 * schedule plus the fixed intra-step phase order make them
 * backend-independent). Adversarial shapes: all records from one
 * stream, W-1 ragged tails, duplicate/aliasing stream ids
 * interleaved, empty batches and part-filled steps, and raw values
 * wider than value_mask (which may never count a hit).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/multi_geom.hh"

namespace vpred
{
namespace
{

/** Every backend the packed entry points accept: all available ones
 *  (non-gather backends take the scalar packed reference internally)
 *  plus the explicit scalar request. */
std::vector<SimdBackend>
packedBackends()
{
    std::vector<SimdBackend> backends = availableSimdBackends();
    bool has_scalar = false;
    for (SimdBackend b : backends)
        has_scalar |= b == SimdBackend::Scalar;
    if (!has_scalar)
        backends.push_back(SimdBackend::Scalar);
    return backends;
}

MultiGeomConfig
smallConfig()
{
    MultiGeomConfig cfg;
    cfg.l1_bits = 6;
    cfg.l2_bits = {6, 8, 10};
    return cfg;
}

/** A geometry that exercises the widen path (narrow stored strides)
 *  and a sub-32-bit value mask, so fits-lane handling matters. */
MultiGeomConfig
narrowConfig()
{
    MultiGeomConfig cfg;
    cfg.l1_bits = 5;
    cfg.value_bits = 20;
    cfg.stride_bits = 9;
    cfg.l2_bits = {5, 7, 9, 11, 13};
    return cfg;
}

/** Deterministic per-stream value sequence; every 5th value gets
 *  bits above any <= 32-bit value mask, so it can never be a hit. */
Value
valueOf(std::uint64_t stream, std::uint64_t step)
{
    Value v = stream * 0x9e3779b9ull + step * ((stream & 7) + 1)
            + (step >> 2);
    if ((stream + step) % 5 == 0)
        v |= Value{1} << 40;
    return v;
}

ValueTrace
roundRobinBatch(std::uint64_t streams, std::uint64_t steps)
{
    ValueTrace batch;
    for (std::uint64_t t = 0; t < steps; ++t)
        for (std::uint64_t s = 0; s < streams; ++s)
            batch.push_back({Pc{s}, valueOf(s, t)});
    return batch;
}

/** W-1 streams with ragged per-stream counts 1..15, interleaved. */
ValueTrace
raggedBatch()
{
    ValueTrace batch;
    for (std::uint64_t t = 0; t < 15; ++t)
        for (std::uint64_t s = 0; s < 15; ++s)
            if (t <= s)
                batch.push_back({Pc{s}, valueOf(s, t)});
    return batch;
}

/** Duplicate stream ids interleaved, including ids that alias to the
 *  same level-1 entry as another id (pc above the l1 mask). */
ValueTrace
duplicateBatch(unsigned l1_bits)
{
    const std::uint64_t alias = std::uint64_t{1} << l1_bits;
    const std::uint64_t ids[] = {3, 7, 3, 3 + alias, 7, 3, 11,
                                 7 + alias, 3, 7, 11 + 2 * alias, 3};
    ValueTrace batch;
    std::uint64_t t = 0;
    for (std::uint64_t id : ids)
        batch.push_back({Pc{id}, valueOf(id, t++)});
    return batch;
}

/**
 * The ground truth for any batch: group records by level-1 entry
 * (batch order within a group), feed each group alone into a fresh
 * reference kernel via the sequential scalar path, and demand the
 * packed kernel's per-entry state matches bit for bit.
 */
template <class Kernel>
void
expectMatchesPerEntryReference(const MultiGeomConfig& cfg,
                               const Kernel& packed,
                               const ValueTrace& batch,
                               const char* what)
{
    const std::uint64_t l1_mask = maskBits(cfg.l1_bits);
    std::map<std::uint64_t, ValueTrace> by_entry;
    for (const TraceRecord& rec : batch)
        by_entry[rec.pc & l1_mask].push_back(rec);

    for (const auto& [entry, own] : by_entry) {
        Kernel ref(cfg);
        ref.feedTrace(own, SimdBackend::Scalar);
        EXPECT_TRUE(std::ranges::equal(packed.entryHists(entry),
                                       ref.entryHists(entry)))
                << what << ": entry " << entry;
        if constexpr (std::is_same_v<Kernel, MultiGeomDfcmKernel>) {
            EXPECT_EQ(packed.lastValue(entry), ref.lastValue(entry))
                    << what << ": entry " << entry;
        }
    }
}

/** Run @p batch through every backend; assert per-entry state against
 *  the reference and counters against the scalar packed schedule. */
template <class Kernel>
void
expectPackedInvariants(const MultiGeomConfig& cfg,
                       const ValueTrace& batch, const char* what)
{
    Kernel scalar_kernel(cfg);
    const std::vector<PredictorStats> scalar_stats =
            scalar_kernel.feedTracePacked(batch, SimdBackend::Scalar);
    expectMatchesPerEntryReference(cfg, scalar_kernel, batch, what);

    for (SimdBackend backend : packedBackends()) {
        Kernel kernel(cfg);
        PackedFeedInfo info;
        const std::vector<PredictorStats> stats =
                kernel.feedTracePacked(batch, backend, &info);

        expectMatchesPerEntryReference(cfg, kernel, batch, what);
        ASSERT_EQ(stats.size(), scalar_stats.size());
        for (std::size_t c = 0; c < stats.size(); ++c) {
            EXPECT_EQ(stats[c].predictions, batch.size())
                    << what << ": " << simdBackendName(backend)
                    << " col " << c;
            EXPECT_EQ(stats[c].correct, scalar_stats[c].correct)
                    << what << ": " << simdBackendName(backend)
                    << " col " << c;
        }
        EXPECT_EQ(info.records, batch.size())
                << what << ": " << simdBackendName(backend);
        EXPECT_EQ(info.gather_records + info.scalar_records,
                  batch.size())
                << what << ": " << simdBackendName(backend);
        if (!batch.empty()) {
            EXPECT_GE(info.steps * 16, info.records)
                    << what << ": " << simdBackendName(backend);
        } else {
            EXPECT_EQ(info.steps, 0u);
        }
    }
}

template <class Kernel>
void
runShapes(const MultiGeomConfig& cfg)
{
    expectPackedInvariants<Kernel>(cfg, roundRobinBatch(37, 9),
                                   "round-robin");
    expectPackedInvariants<Kernel>(cfg, roundRobinBatch(1, 40),
                                   "single stream");
    expectPackedInvariants<Kernel>(cfg, roundRobinBatch(5, 1),
                                   "part-filled step");
    expectPackedInvariants<Kernel>(cfg, raggedBatch(), "ragged tails");
    expectPackedInvariants<Kernel>(cfg, duplicateBatch(cfg.l1_bits),
                                   "duplicates+aliases");
    expectPackedInvariants<Kernel>(cfg, {}, "empty batch");
}

TEST(PackedKernel, DfcmMatchesReferenceAcrossBackendsAndShapes)
{
    runShapes<MultiGeomDfcmKernel>(smallConfig());
}

TEST(PackedKernel, DfcmNarrowStrideGeometry)
{
    runShapes<MultiGeomDfcmKernel>(narrowConfig());
}

TEST(PackedKernel, FcmMatchesReferenceAcrossBackendsAndShapes)
{
    runShapes<MultiGeomFcmKernel>(smallConfig());
}

TEST(PackedKernel, ChunkingIsInvisibleToLevel1State)
{
    // Feeding the same records in any chunking — and mixing packed
    // and sequential feeds — must land on the same per-entry level-1
    // state (counters legitimately differ: the canonical interleave
    // depends on batch boundaries).
    const MultiGeomConfig cfg = smallConfig();
    const ValueTrace batch = roundRobinBatch(23, 12);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{16}, std::size_t{64}}) {
        MultiGeomDfcmKernel chunked(cfg);
        for (std::size_t at = 0; at < batch.size(); at += chunk) {
            const std::size_t len = std::min(chunk, batch.size() - at);
            chunked.feedTracePacked(
                    std::span(batch).subspan(at, len));
        }
        expectMatchesPerEntryReference(cfg, chunked, batch, "chunked");
    }

    MultiGeomDfcmKernel mixed(cfg);
    const std::size_t third = batch.size() / 3;
    mixed.feedTrace(std::span(batch).subspan(0, third));
    mixed.feedTracePacked(std::span(batch).subspan(third, third));
    mixed.feedTrace(std::span(batch).subspan(2 * third));
    expectMatchesPerEntryReference(cfg, mixed, batch, "mixed feeds");
}

TEST(PackedKernel, GatherPathRunsWhereSupported)
{
    // Where a gather backend is available, the packed feed must
    // report its records on the gather path; the explicit scalar
    // request must report the scalar path. This pins the dispatch
    // logic the service-side observability counters rely on.
    const MultiGeomConfig cfg = smallConfig();
    const ValueTrace batch = roundRobinBatch(20, 4);
    for (SimdBackend backend :
         {SimdBackend::Avx2, SimdBackend::Avx512}) {
        if (!simdBackendAvailable(backend))
            continue;
        MultiGeomDfcmKernel kernel(cfg);
        PackedFeedInfo info;
        kernel.feedTracePacked(batch, backend, &info);
        EXPECT_EQ(info.gather_records, batch.size())
                << simdBackendName(backend);
        EXPECT_EQ(info.scalar_records, 0u) << simdBackendName(backend);
    }
    MultiGeomDfcmKernel kernel(cfg);
    PackedFeedInfo info;
    kernel.feedTracePacked(batch, SimdBackend::Scalar, &info);
    EXPECT_EQ(info.scalar_records, batch.size());
    EXPECT_EQ(info.gather_records, 0u);
}

} // namespace
} // namespace vpred
