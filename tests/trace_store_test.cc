/**
 * @file
 * Tests for the persistent memory-mapped trace store and its
 * TraceCache integration: VPT2 round-trips through disk, corrupt and
 * truncated entries are rejected, keying on scale and generator
 * version never serves a stale trace, warm lookups are zero-copy
 * views into the mapping, and racing cold populations run the
 * workload VM exactly once. Lives in its own binary (labelled
 * "concurrency") so the racing tests run under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "core/trace_io.hh"
#include "harness/trace_cache.hh"
#include "harness/trace_store.hh"
#include "workloads/workload.hh"

namespace vpred::harness
{
namespace
{

namespace fs = std::filesystem;

constexpr double kScale = 0.03;

/** Self-cleaning unique store directory per test. */
class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        dir_ = fs::temp_directory_path() /
               ("vpred_store_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        fs::create_directories(dir_);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string str() const { return dir_.string(); }

  private:
    fs::path dir_;
};

bool
sameRecords(std::span<const TraceRecord> a, const ValueTrace& b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
}

TEST(TraceStore, DisabledWithoutDirectory)
{
    const TraceStore store("");
    EXPECT_FALSE(store.enabled());
    EXPECT_FALSE(store.load("norm", kScale).has_value());
}

TEST(TraceStore, RoundTripsTraceResult)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    ASSERT_TRUE(store.enabled());

    const sim::TraceResult result =
            workloads::runWorkload("norm", kScale);
    store.store("norm", kScale, result);

    const auto mapped = store.load("norm", kScale);
    ASSERT_TRUE(mapped.has_value());
    EXPECT_TRUE(sameRecords(mapped->records(), result.trace));
    EXPECT_EQ(mapped->instructions(), result.instructions);
    EXPECT_EQ(mapped->output(), result.output);
    EXPECT_EQ(mapped->meta().workload, "norm");
    EXPECT_EQ(mapped->meta().scale, kScale);
    EXPECT_EQ(mapped->meta().generator_version,
              workloads::kTraceGeneratorVersion);
}

TEST(TraceStore, MissesOnEmptyStore)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    EXPECT_FALSE(store.load("norm", kScale).has_value());
}

TEST(TraceStore, KeysOnExactScale)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    store.store("norm", kScale, workloads::runWorkload("norm", kScale));

    // A different scale is a different entry: no stale hit.
    EXPECT_FALSE(store.load("norm", 2 * kScale).has_value());
    EXPECT_NE(store.entryPath("norm", kScale),
              store.entryPath("norm", 2 * kScale));
}

TEST(TraceStore, RejectsMismatchedHeaderKey)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    const sim::TraceResult result =
            workloads::runWorkload("norm", kScale);
    store.store("norm", kScale, result);

    // A file renamed to another scale's key carries the wrong header
    // scale: load() must treat it as a miss, not serve it.
    fs::copy_file(store.entryPath("norm", kScale),
                  store.entryPath("norm", 0.06));
    EXPECT_FALSE(store.load("norm", 0.06).has_value());
}

TEST(TraceStore, RejectsStaleGeneratorVersion)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    const sim::TraceResult result =
            workloads::runWorkload("norm", kScale);

    // Hand-write an entry at the right path whose header claims a
    // different workload-generation version.
    Vpt2Meta meta;
    meta.workload = "norm";
    meta.scale = kScale;
    meta.generator_version = workloads::kTraceGeneratorVersion + 1;
    meta.instructions = result.instructions;
    meta.output = result.output;
    std::ofstream out(store.entryPath("norm", kScale),
                      std::ios::binary);
    writeTraceVpt2(out, result.trace, meta);
    out.close();

    EXPECT_FALSE(store.load("norm", kScale).has_value());
}

TEST(TraceStore, RejectsCorruptedPayload)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    store.store("norm", kScale, workloads::runWorkload("norm", kScale));
    const std::string path = store.entryPath("norm", kScale);

    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(-1, std::ios::end);
        const char flip = static_cast<char>(f.peek() ^ 0x01);
        f.put(flip);
    }

    EXPECT_THROW(TraceStore::mapFile(path), TraceIoError);
    EXPECT_FALSE(store.load("norm", kScale).has_value());
}

TEST(TraceStore, RejectsTruncatedFile)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    store.store("norm", kScale, workloads::runWorkload("norm", kScale));
    const std::string path = store.entryPath("norm", kScale);

    fs::resize_file(path, fs::file_size(path) - 17);
    EXPECT_THROW(TraceStore::mapFile(path), TraceIoError);
    EXPECT_FALSE(store.load("norm", kScale).has_value());
}

/** Open file descriptors of this process, via /proc/self/fd. */
std::size_t
openFdCount()
{
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& e :
         fs::directory_iterator("/proc/self/fd"))
        ++n;
    return n;
}

TEST(MappedTrace, SelfMoveAssignKeepsMappingIntact)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    const sim::TraceResult result =
            workloads::runWorkload("norm", kScale);
    store.store("norm", kScale, result);

    MappedTrace mt = TraceStore::mapFile(store.entryPath("norm", kScale));
    ASSERT_TRUE(mt.valid());

    // Route the self-move through a reference so the compiler cannot
    // warn it away; the mapping must survive and stay readable (a
    // double-munmap here would poison the pages).
    MappedTrace& alias = mt;
    mt = std::move(alias);
    ASSERT_TRUE(mt.valid());
    EXPECT_TRUE(sameRecords(mt.records(), result.trace));
}

TEST(MappedTrace, MoveAssignOverLiveMappingUnmapsOnce)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    const sim::TraceResult norm =
            workloads::runWorkload("norm", kScale);
    store.store("norm", kScale, norm);

    MappedTrace a = TraceStore::mapFile(store.entryPath("norm", kScale));
    MappedTrace b = TraceStore::mapFile(store.entryPath("norm", kScale));
    const void* b_map = b.mappingData();

    // a's old mapping is released exactly once; a now owns b's.
    a = std::move(b);
    EXPECT_FALSE(b.valid());       // NOLINT: moved-from probe
    EXPECT_EQ(b.mappingSize(), 0u);
    ASSERT_TRUE(a.valid());
    EXPECT_EQ(a.mappingData(), b_map);
    EXPECT_TRUE(sameRecords(a.records(), norm.trace));

    // The moved-from object is reusable: destroying it (end of
    // scope) must not touch the mapping a now owns, and it can be
    // re-assigned a fresh mapping first.
    b = TraceStore::mapFile(store.entryPath("norm", kScale));
    EXPECT_TRUE(b.valid());
    EXPECT_TRUE(sameRecords(b.records(), norm.trace));
}

TEST(MappedTrace, MoveChainThenDestructorsDoNotDoubleUnmap)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    const sim::TraceResult result =
            workloads::runWorkload("norm", kScale);
    store.store("norm", kScale, result);

    MappedTrace outer;
    {
        MappedTrace inner =
                TraceStore::mapFile(store.entryPath("norm", kScale));
        MappedTrace mid = std::move(inner);
        outer = std::move(mid);
        // inner and mid both destruct here while outer holds the
        // mapping; under ASan a double munmap or stale access fails.
    }
    ASSERT_TRUE(outer.valid());
    EXPECT_TRUE(sameRecords(outer.records(), result.trace));
}

TEST(MappedTrace, FailedMapLeaksNoFileDescriptor)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    store.store("norm", kScale, workloads::runWorkload("norm", kScale));
    const std::string path = store.entryPath("norm", kScale);
    fs::resize_file(path, fs::file_size(path) - 17);

    const std::size_t before = openFdCount();
    for (int i = 0; i < 8; ++i)
        EXPECT_THROW(TraceStore::mapFile(path), TraceIoError);
    EXPECT_EQ(openFdCount(), before);
}

TEST(MappedTrace, SuccessfulMapLeaksNoFileDescriptor)
{
    TempDir tmp;
    const TraceStore store(tmp.str());
    store.store("norm", kScale, workloads::runWorkload("norm", kScale));
    const std::string path = store.entryPath("norm", kScale);

    const std::size_t before = openFdCount();
    {
        const MappedTrace mt = TraceStore::mapFile(path);
        ASSERT_TRUE(mt.valid());
        // mmap keeps the pages alive without the fd; it must already
        // be closed while the mapping is still in use.
        EXPECT_EQ(openFdCount(), before);
    }
    EXPECT_EQ(openFdCount(), before);
}

TEST(TraceCacheStore, ColdThenWarmServesIdenticalTrace)
{
    TempDir tmp;

    TraceCache cold(kScale, tmp.str());
    const std::span<const TraceRecord> generated =
            cold.getSpan("norm");
    ASSERT_FALSE(generated.empty());
    const auto cold_stats = cold.acquisition();
    EXPECT_EQ(cold_stats.generated, 1u);
    EXPECT_EQ(cold_stats.store_misses, 1u);
    EXPECT_EQ(cold_stats.store_writes, 1u);
    EXPECT_FALSE(cold.mappingInfo("norm").mapped);

    TraceCache warm(kScale, tmp.str());
    const std::span<const TraceRecord> mapped = warm.getSpan("norm");
    const auto warm_stats = warm.acquisition();
    EXPECT_EQ(warm_stats.generated, 0u);
    EXPECT_EQ(warm_stats.store_hits, 1u);
    ASSERT_EQ(mapped.size(), generated.size());
    EXPECT_TRUE(std::equal(mapped.begin(), mapped.end(),
                           generated.begin()));
    EXPECT_EQ(warm.instructions("norm"), cold.instructions("norm"));
    EXPECT_EQ(warm.programOutput("norm"), cold.programOutput("norm"));
    // Whole-result materialization still works on mapped entries.
    EXPECT_EQ(warm.getResult("norm").trace.size(), mapped.size());
}

TEST(TraceCacheStore, WarmSpanAliasesTheMapping)
{
    TempDir tmp;
    TraceCache(kScale, tmp.str()).getSpan("norm");

    TraceCache warm(kScale, tmp.str());
    const std::span<const TraceRecord> span = warm.getSpan("norm");
    const TraceCache::MappingInfo info = warm.mappingInfo("norm");
    ASSERT_TRUE(info.mapped);

    // Zero-copy: the span's storage lies inside the mmap'd file.
    const char* base = static_cast<const char*>(info.data);
    const char* lo = reinterpret_cast<const char*>(span.data());
    EXPECT_GE(lo, base);
    EXPECT_LE(lo + span.size_bytes(), base + info.size);
}

TEST(TraceCacheStore, ScaleChangeNeverHitsStaleEntry)
{
    TempDir tmp;
    TraceCache a(kScale, tmp.str());
    a.getSpan("norm");

    TraceCache b(0.06, tmp.str());
    b.getSpan("norm");
    const auto stats = b.acquisition();
    EXPECT_EQ(stats.store_hits, 0u);
    EXPECT_EQ(stats.generated, 1u);
    EXPECT_NE(b.getSpan("norm").size(), 0u);
}

TEST(TraceCacheStore, RacingColdLookupsGenerateOnce)
{
    TempDir tmp;
    TraceCache cache(kScale, tmp.str());

    std::span<const TraceRecord> a, b;
    std::thread t1([&] { a = cache.getSpan("norm"); });
    std::thread t2([&] { b = cache.getSpan("norm"); });
    t1.join();
    t2.join();

    // The documented getResult race: both threads used to find no
    // entry and run the VM twice. Per-key once semantics mean one
    // generation, one store write, and both callers share the span.
    EXPECT_EQ(cache.acquisition().generated, 1u);
    EXPECT_EQ(cache.acquisition().store_writes, 1u);
    EXPECT_EQ(a.data(), b.data());
    EXPECT_EQ(a.size(), b.size());
}

TEST(TraceCacheStore, RacingLookupsWithoutStoreGenerateOnce)
{
    TraceCache cache(kScale, "");
    EXPECT_FALSE(cache.storeEnabled());

    std::span<const TraceRecord> a, b;
    std::thread t1([&] { a = cache.getSpan("compress"); });
    std::thread t2([&] { b = cache.getSpan("compress"); });
    t1.join();
    t2.join();

    EXPECT_EQ(cache.acquisition().generated, 1u);
    EXPECT_EQ(a.data(), b.data());
}

TEST(TraceCacheStore, PrewarmPopulatesAndReuses)
{
    TempDir tmp;
    const std::vector<std::string> names{"norm", "compress", "norm"};

    TraceCache cold(kScale, tmp.str());
    cold.prewarm(names);
    EXPECT_EQ(cold.acquisition().generated, 2u);

    TraceCache warm(kScale, tmp.str());
    warm.prewarm(names);
    EXPECT_EQ(warm.acquisition().generated, 0u);
    EXPECT_EQ(warm.acquisition().store_hits, 2u);
}

} // namespace
} // namespace vpred::harness
