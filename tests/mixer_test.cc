/**
 * @file
 * Unit tests for the trace mixer.
 */

#include <gtest/gtest.h>

#include <map>

#include "tracegen/mixer.hh"

namespace vpred::tracegen
{
namespace
{

TEST(TraceMixer, RoundRobinHonorsWeights)
{
    TraceMixer m;
    m.add(1, std::make_unique<ConstantPattern>(0), 3);
    m.add(2, std::make_unique<ConstantPattern>(0), 1);
    const ValueTrace t = m.generate(4000);

    std::map<Pc, int> counts;
    for (const TraceRecord& r : t)
        ++counts[r.pc];
    EXPECT_EQ(counts[1], 3000);
    EXPECT_EQ(counts[2], 1000);
}

TEST(TraceMixer, ExactLength)
{
    TraceMixer m;
    m.add(1, std::make_unique<ConstantPattern>(5), 7);
    EXPECT_EQ(m.generate(123).size(), 123u);
    TraceMixer m2;
    m2.add(1, std::make_unique<ConstantPattern>(5));
    EXPECT_EQ(m2.generateStochastic(77).size(), 77u);
}

TEST(TraceMixer, PatternsAdvancePerInstruction)
{
    TraceMixer m;
    m.add(1, std::make_unique<StridePattern>(0, 1));
    m.add(2, std::make_unique<StridePattern>(100, 10));
    const ValueTrace t = m.generate(6);
    // Round robin: 1, 2, 1, 2, ...
    EXPECT_EQ(t[0], (TraceRecord{1, 0}));
    EXPECT_EQ(t[1], (TraceRecord{2, 100}));
    EXPECT_EQ(t[2], (TraceRecord{1, 1}));
    EXPECT_EQ(t[3], (TraceRecord{2, 110}));
}

TEST(TraceMixer, StochasticIsSeededDeterministic)
{
    auto build = [] {
        TraceMixer m(555);
        m.add(1, std::make_unique<StridePattern>(0, 1), 2);
        m.add(2, std::make_unique<RandomPattern>(9), 1);
        return m.generateStochastic(500);
    };
    EXPECT_EQ(build(), build());
}

TEST(MakeMixedTrace, HasRequestedComposition)
{
    const MixSpec spec{.stride_instructions = 5,
                       .constant_instructions = 2,
                       .context_instructions = 3,
                       .random_instructions = 1,
                       .seed = 21};
    const ValueTrace t = makeMixedTrace(spec, 10000);
    EXPECT_EQ(t.size(), 10000u);

    std::map<Pc, int> counts;
    for (const TraceRecord& r : t)
        ++counts[r.pc];
    EXPECT_EQ(counts.size(), 11u);  // 5 + 2 + 3 + 1 instructions
}

TEST(MakeMixedTrace, DeterministicPerSeed)
{
    const MixSpec spec{.seed = 9};
    EXPECT_EQ(makeMixedTrace(spec, 2000), makeMixedTrace(spec, 2000));

    const MixSpec other{.seed = 10};
    EXPECT_NE(makeMixedTrace(spec, 2000), makeMixedTrace(other, 2000));
}

TEST(MakeMixedTrace, ValuesFitValueBits)
{
    MixSpec spec;
    spec.value_bits = 16;
    spec.seed = 31;
    for (const TraceRecord& r : makeMixedTrace(spec, 5000))
        EXPECT_LE(r.value, maskBits(16));
}

} // namespace
} // namespace vpred::tracegen
