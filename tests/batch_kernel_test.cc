/**
 * @file
 * Equivalence tests for the batched sweep kernels: the fused
 * predictAndUpdate overrides must match the composed
 * predict-then-update discipline record by record, and the
 * multi-geometry kernels must reproduce the per-config sweep
 * bit-identically — including over the full Figure 10 grid on all
 * paper workloads (at a reduced trace scale so the suite stays a
 * fast smoke test; labelled "perf" in CTest).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/multi_geom.hh"
#include "core/predictor_factory.hh"
#include "core/stats.hh"
#include "harness/batch_sweep.hh"
#include "harness/parallel_sweep.hh"
#include "harness/sweep.hh"
#include "tracegen/mixer.hh"

namespace
{

using namespace vpred;

/**
 * A mixed synthetic trace with a tail of adversarial records: raw
 * 64-bit values whose high bits exceed the 32-bit value mask (the
 * fused paths must compare the *raw* actual, like the composed
 * discipline does), aliasing PCs above the l1 mask, and zeros.
 */
ValueTrace
adversarialTrace()
{
    ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 8,
             .constant_instructions = 2,
             .context_instructions = 6,
             .random_instructions = 2,
             .seed = 7},
            8192);
    const Pc high_pc = (Pc{1} << 40) + 3;
    for (std::uint64_t i = 0; i < 64; ++i) {
        trace.push_back({i % 5, (std::uint64_t{0xdead} << 32) + i});
        trace.push_back({high_pc, i * 0x10001});
        trace.push_back({i % 3, 0});
    }
    return trace;
}

/** Configs covering every fused family plus masking edge cases. */
std::vector<PredictorConfig>
fusedFamilyConfigs()
{
    std::vector<PredictorConfig> configs;
    for (PredictorKind kind :
         {PredictorKind::Lvp, PredictorKind::Stride,
          PredictorKind::TwoDelta, PredictorKind::Fcm,
          PredictorKind::Dfcm}) {
        PredictorConfig cfg;
        cfg.kind = kind;
        cfg.l1_bits = 8;
        cfg.l2_bits = 10;
        configs.push_back(cfg);

        cfg.value_bits = 16;  // narrow value mask
        configs.push_back(cfg);
    }
    PredictorConfig narrow;  // narrowed-stride DFCM exercises widen()
    narrow.kind = PredictorKind::Dfcm;
    narrow.l1_bits = 8;
    narrow.l2_bits = 10;
    narrow.stride_bits = 8;
    configs.push_back(narrow);
    return configs;
}

TEST(FusedPredictAndUpdate, MatchesComposedDiscipline)
{
    const ValueTrace trace = adversarialTrace();
    for (const PredictorConfig& cfg : fusedFamilyConfigs()) {
        auto fused = makePredictor(cfg);
        auto composed = makePredictor(cfg);
        SCOPED_TRACE(fused->name());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const TraceRecord& rec = trace[i];
            const bool want = composed->predict(rec.pc) == rec.value;
            composed->update(rec.pc, rec.value);
            const bool got = fused->predictAndUpdate(rec.pc, rec.value);
            ASSERT_EQ(got, want) << "record " << i;
        }
    }
}

TEST(FusedPredictAndUpdate, RunTraceMatchesComposedStats)
{
    const ValueTrace trace = adversarialTrace();
    for (const PredictorConfig& cfg : fusedFamilyConfigs()) {
        auto fused = makePredictor(cfg);
        auto composed = makePredictor(cfg);
        PredictorStats want;
        for (const TraceRecord& rec : trace) {
            want.record(composed->predict(rec.pc) == rec.value);
            composed->update(rec.pc, rec.value);
        }
        EXPECT_EQ(runTrace(*fused, trace), want) << fused->name();
    }
}

/** Per-config reference for one multi-geometry column. */
std::vector<PredictorStats>
referenceColumn(PredictorKind kind, const MultiGeomConfig& geom,
                const ValueTrace& trace)
{
    std::vector<PredictorStats> stats;
    for (unsigned l2 : geom.l2_bits) {
        PredictorConfig cfg;
        cfg.kind = kind;
        cfg.l1_bits = geom.l1_bits;
        cfg.l2_bits = l2;
        cfg.value_bits = geom.value_bits;
        cfg.stride_bits = geom.stride_bits;
        cfg.hash_shift = geom.hash_shift;
        auto p = makePredictor(cfg);
        stats.push_back(runTrace(*p, trace));
    }
    return stats;
}

TEST(MultiGeomKernel, FcmMatchesPerConfig)
{
    const ValueTrace trace = adversarialTrace();
    MultiGeomConfig geom;
    geom.l1_bits = 10;
    geom.l2_bits = harness::paperL2Bits();
    MultiGeomFcmKernel kernel(geom);
    EXPECT_EQ(kernel.runTrace({trace.data(), trace.size()}),
              referenceColumn(PredictorKind::Fcm, geom, trace));
}

TEST(MultiGeomKernel, DfcmMatchesPerConfig)
{
    const ValueTrace trace = adversarialTrace();
    MultiGeomConfig geom;
    geom.l1_bits = 10;
    geom.l2_bits = harness::paperL2Bits();
    MultiGeomDfcmKernel kernel(geom);
    EXPECT_EQ(kernel.runTrace({trace.data(), trace.size()}),
              referenceColumn(PredictorKind::Dfcm, geom, trace));
}

TEST(MultiGeomKernel, NarrowGeometryMatchesPerConfig)
{
    const ValueTrace trace = adversarialTrace();
    MultiGeomConfig geom;
    geom.l1_bits = 6;
    geom.value_bits = 16;
    geom.stride_bits = 8;   // exercises widen() on every column
    geom.hash_shift = 3;    // non-default FS R-k
    geom.l2_bits = {4, 9, 13};
    MultiGeomDfcmKernel dfcm(geom);
    EXPECT_EQ(dfcm.runTrace({trace.data(), trace.size()}),
              referenceColumn(PredictorKind::Dfcm, geom, trace));
    MultiGeomFcmKernel fcm(geom);
    EXPECT_EQ(fcm.runTrace({trace.data(), trace.size()}),
              referenceColumn(PredictorKind::Fcm, geom, trace));
}

TEST(MultiGeomKernel, OrderBoundaryShortTrace)
{
    // Two records is fewer than the order-4 history of a 2^20-entry
    // level-2 table: the warm-up phase must agree too.
    const ValueTrace trace = {{1, 42}, {1, 45}};
    MultiGeomConfig geom;
    geom.l1_bits = 4;
    geom.l2_bits = {8, 20};
    MultiGeomFcmKernel fcm(geom);
    MultiGeomDfcmKernel dfcm(geom);
    ASSERT_GE(fcm.maxOrder(), 4u);
    EXPECT_EQ(fcm.runTrace({trace.data(), trace.size()}),
              referenceColumn(PredictorKind::Fcm, geom, trace));
    EXPECT_EQ(dfcm.runTrace({trace.data(), trace.size()}),
              referenceColumn(PredictorKind::Dfcm, geom, trace));
    // Repeated runs start from power-on state again.
    EXPECT_EQ(dfcm.runTrace({trace.data(), trace.size()}),
              referenceColumn(PredictorKind::Dfcm, geom, trace));
}

/** The Figure 10 grid: FCM and DFCM alternating over the l2 column. */
std::vector<PredictorConfig>
fig10Grid()
{
    std::vector<PredictorConfig> configs;
    for (unsigned l2 : harness::paperL2Bits()) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = l2;
        cfg.kind = PredictorKind::Fcm;
        configs.push_back(cfg);
        cfg.kind = PredictorKind::Dfcm;
        configs.push_back(cfg);
    }
    return configs;
}

TEST(MultiGeomKernel, ChunkedFeedMatchesSingleRun)
{
    // The service feeds batches incrementally; any chunking must end
    // in the same state and the same summed stats as one runTrace.
    const ValueTrace trace = adversarialTrace();
    const MultiGeomConfig cfg{.l1_bits = 6,
                              .value_bits = 32,
                              .stride_bits = 32,
                              .hash_shift = 5,
                              .l2_bits = {4, 8, 12}};

    MultiGeomDfcmKernel whole(cfg);
    const std::vector<PredictorStats> ref = whole.runTrace(trace);

    MultiGeomDfcmKernel chunked(cfg);
    chunked.reset();
    std::vector<std::uint64_t> correct(cfg.l2_bits.size(), 0);
    // Deliberately ragged chunk sizes, including empty ones.
    const std::size_t sizes[] = {1, 0, 7, 1024, 3, 4096, 1u << 30};
    std::span<const TraceRecord> rest(trace);
    for (const std::size_t want : sizes) {
        const std::size_t n = std::min(want, rest.size());
        const auto stats = chunked.feedTrace(rest.subspan(0, n));
        for (std::size_t c = 0; c < stats.size(); ++c)
            correct[c] += stats[c].correct;
        rest = rest.subspan(n);
    }
    ASSERT_TRUE(rest.empty());

    for (std::size_t c = 0; c < ref.size(); ++c)
        EXPECT_EQ(correct[c], ref[c].correct) << "column " << c;
    for (std::size_t e = 0; e < whole.l1Entries(); ++e) {
        ASSERT_TRUE(std::ranges::equal(whole.entryHists(e),
                                       chunked.entryHists(e)))
                << "entry " << e;
        ASSERT_EQ(whole.lastValue(e), chunked.lastValue(e))
                << "entry " << e;
    }
}

TEST(MultiGeomKernel, EntryStateExportClearRestoreRoundTrips)
{
    // Eviction support: an entry's level-1 state (history bank +
    // last value) must survive export -> clearEntry -> reinstall
    // bit-identically, and clearing must actually zero it.
    const ValueTrace trace = adversarialTrace();
    const MultiGeomConfig cfg{.l1_bits = 5,
                              .value_bits = 32,
                              .stride_bits = 32,
                              .hash_shift = 5,
                              .l2_bits = {6, 10}};
    MultiGeomDfcmKernel kernel(cfg);
    kernel.runTrace(trace);

    for (std::size_t e = 0; e < kernel.l1Entries(); ++e) {
        const std::vector<std::uint32_t> hists(
                kernel.entryHists(e).begin(), kernel.entryHists(e).end());
        const Value last = kernel.lastValue(e);

        kernel.clearEntry(e);
        EXPECT_TRUE(std::ranges::all_of(
                kernel.entryHists(e),
                [](std::uint32_t h) { return h == 0; }));
        EXPECT_EQ(kernel.lastValue(e), 0u);

        kernel.setEntryHists(e, hists);
        kernel.setLastValue(e, last);
        EXPECT_TRUE(std::ranges::equal(kernel.entryHists(e), hists));
        EXPECT_EQ(kernel.lastValue(e), last);
    }
}

TEST(MultiGeomKernel, FcmChunkedFeedMatchesSingleRun)
{
    const ValueTrace trace = adversarialTrace();
    const MultiGeomConfig cfg{.l1_bits = 6,
                              .value_bits = 32,
                              .stride_bits = 32,
                              .hash_shift = 5,
                              .l2_bits = {4, 10}};
    MultiGeomFcmKernel whole(cfg);
    const std::vector<PredictorStats> ref = whole.runTrace(trace);

    MultiGeomFcmKernel chunked(cfg);
    chunked.reset();
    std::vector<std::uint64_t> correct(cfg.l2_bits.size(), 0);
    const std::size_t half = trace.size() / 2;
    const std::span<const TraceRecord> span(trace);
    for (const auto part : {span.subspan(0, half), span.subspan(half)})
        for (std::size_t c = 0; const PredictorStats& s :
                                chunked.feedTrace(part))
            correct[c++] += s.correct;

    for (std::size_t c = 0; c < ref.size(); ++c)
        EXPECT_EQ(correct[c], ref[c].correct) << "column " << c;
    for (std::size_t e = 0; e < whole.l1Entries(); ++e)
        ASSERT_TRUE(std::ranges::equal(whole.entryHists(e),
                                       chunked.entryHists(e)));
}

TEST(BatchPlan, GroupsFig10GridIntoTwoColumns)
{
    const auto configs = fig10Grid();
    const harness::BatchPlan plan =
            harness::planBatchSweep(configs, /*enabled=*/true);
    ASSERT_EQ(plan.groups.size(), 2u);
    EXPECT_TRUE(plan.singles.empty());
    EXPECT_EQ(plan.batchedConfigs(), configs.size());
    for (const harness::BatchGroup& g : plan.groups) {
        EXPECT_EQ(g.geom.l2_bits.size(), harness::paperL2Bits().size());
        for (std::size_t j = 0; j < g.config_indices.size(); ++j) {
            const PredictorConfig& c = configs[g.config_indices[j]];
            EXPECT_EQ(c.kind, g.kind);
            EXPECT_EQ(c.l2_bits, g.geom.l2_bits[j]);
        }
    }

    const harness::BatchPlan off =
            harness::planBatchSweep(configs, /*enabled=*/false);
    EXPECT_TRUE(off.groups.empty());
    EXPECT_EQ(off.singles.size(), configs.size());
}

TEST(BatchPlan, LeavesUnbatchableConfigsAlone)
{
    std::vector<PredictorConfig> configs = fig10Grid();
    PredictorConfig delayed = configs[0];
    delayed.update_delay = 32;           // wrapped: virtual path
    configs.push_back(delayed);
    PredictorConfig stride;
    stride.kind = PredictorKind::Stride; // no multi-geometry kernel
    configs.push_back(stride);
    PredictorConfig lone = configs[1];
    lone.l1_bits = 4;                    // a one-column group
    configs.push_back(lone);
    PredictorConfig wide = configs[0];
    wide.value_bits = 64;                // wider than narrow storage
    configs.push_back(wide);

    const harness::BatchPlan plan =
            harness::planBatchSweep(configs, /*enabled=*/true);
    ASSERT_EQ(plan.groups.size(), 2u);
    EXPECT_EQ(plan.batchedConfigs(), fig10Grid().size());
    EXPECT_EQ(plan.singles.size(), 4u);
}

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* old = std::getenv(name);
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char* name_;
    std::string old_;
    bool had_old_ = false;
};

void
expectSameResults(const std::vector<harness::SuiteResult>& got,
                  const std::vector<harness::SuiteResult>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE(want[i].predictor);
        EXPECT_EQ(got[i].predictor, want[i].predictor);
        EXPECT_EQ(got[i].storage_bits, want[i].storage_bits);
        EXPECT_EQ(got[i].total, want[i].total);
        ASSERT_EQ(got[i].per_workload.size(),
                  want[i].per_workload.size());
        for (std::size_t w = 0; w < got[i].per_workload.size(); ++w) {
            EXPECT_EQ(got[i].per_workload[w].workload,
                      want[i].per_workload[w].workload);
            EXPECT_EQ(got[i].per_workload[w].stats,
                      want[i].per_workload[w].stats);
            EXPECT_EQ(got[i].per_workload[w].storage_bits,
                      want[i].per_workload[w].storage_bits);
        }
    }
}

TEST(BatchSweep, Fig10GridMatchesPerConfigOnAllPaperWorkloads)
{
    // Reduced trace scale: full equivalence coverage as a fast smoke.
    harness::TraceCache cache(0.1);
    harness::ParallelSweep sweep(cache);
    const auto configs = fig10Grid();

    std::vector<harness::SuiteResult> batched, unbatched;
    {
        ScopedEnv on("REPRO_BATCH_SWEEP", "1");
        batched = sweep.runGrid(configs);
        const harness::SweepExecution& e = sweep.lastExecution();
        EXPECT_EQ(e.path(), "multi-geometry");
        EXPECT_EQ(e.batched_cells, e.cells);
        EXPECT_LT(e.trace_walks, e.cells);
    }
    {
        ScopedEnv off("REPRO_BATCH_SWEEP", "0");
        unbatched = sweep.runGrid(configs);
        const harness::SweepExecution& e = sweep.lastExecution();
        EXPECT_EQ(e.path(), "fused");
        EXPECT_EQ(e.batched_cells, 0u);
        EXPECT_EQ(e.trace_walks, e.cells);
    }
    expectSameResults(batched, unbatched);
}

TEST(BatchSweep, ExecutionReportCoversVirtualPath)
{
    harness::TraceCache cache(0.02);
    harness::ParallelSweep sweep(cache);
    PredictorConfig delayed;
    delayed.kind = PredictorKind::Fcm;
    delayed.l1_bits = 8;
    delayed.l2_bits = 8;
    delayed.update_delay = 16;  // wrapper keeps the virtual path
    const std::vector<std::string> one_workload = {"go"};
    sweep.runGrid({delayed}, one_workload);
    const harness::SweepExecution& e = sweep.lastExecution();
    EXPECT_EQ(e.path(), "virtual");
    EXPECT_EQ(e.cells, 1u);
    EXPECT_EQ(e.virtual_cells, 1u);
    EXPECT_EQ(e.trace_walks, 1u);
    EXPECT_GT(e.wall_seconds, 0.0);
}

} // namespace
