/**
 * @file
 * Unit tests for the Figure 6/9 stride-occupancy profiler.
 */

#include <gtest/gtest.h>

#include "core/stride_occupancy.hh"

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "tracegen/mixer.hh"
#include "tracegen/pattern.hh"

namespace vpred
{
namespace
{

ValueTrace
strideTrace(std::size_t records)
{
    using namespace tracegen;
    TraceMixer mixer;
    // Several long stride patterns with different strides and bases.
    mixer.add(1, std::make_unique<StridePattern>(0, 1, 500));
    mixer.add(2, std::make_unique<StridePattern>(10000, 4, 300));
    mixer.add(3, std::make_unique<StridePattern>(777, 12, 200));
    return mixer.generate(records);
}

TEST(StrideOccupancy, CountsOnlyStridePredictableAccesses)
{
    // A pure random trace: (almost) nothing is stride-predictable.
    tracegen::TraceMixer mixer;
    mixer.add(1, std::make_unique<tracegen::RandomPattern>(99));
    const ValueTrace noise = mixer.generate(20000);

    FcmPredictor fcm({.l1_bits = 10, .l2_bits = 12});
    const OccupancyResult r = profileStrideOccupancy(fcm, noise);
    EXPECT_EQ(r.total_accesses, noise.size());
    EXPECT_LT(static_cast<double>(r.stride_accesses)
                      / static_cast<double>(r.total_accesses),
              0.01);
}

TEST(StrideOccupancy, FcmScattersStridesOverManyEntries)
{
    FcmPredictor fcm({.l1_bits = 10, .l2_bits = 12});
    const OccupancyResult r = profileStrideOccupancy(fcm,
                                                     strideTrace(60000));
    // Most accesses are stride-predictable...
    EXPECT_GT(static_cast<double>(r.stride_accesses)
                      / static_cast<double>(r.total_accesses),
              0.8);
    // ...and they land on *many* level-2 entries (the inefficiency).
    EXPECT_GT(r.entriesAccessedMoreThan(10), 300u);
}

TEST(StrideOccupancy, DfcmConcentratesStrides)
{
    FcmPredictor fcm({.l1_bits = 10, .l2_bits = 12});
    DfcmPredictor dfcm({.l1_bits = 10, .l2_bits = 12});
    const ValueTrace trace = strideTrace(60000);
    const OccupancyResult rf = profileStrideOccupancy(fcm, trace);
    const OccupancyResult rd = profileStrideOccupancy(dfcm, trace);

    // The DFCM uses far fewer entries for the same stride traffic
    // (paper: 12 vs >100 entries accessed >100 times on norm).
    EXPECT_LT(rd.entriesAccessedMoreThan(100),
              rf.entriesAccessedMoreThan(100) / 4);
    // Its hottest entry absorbs a large share of all stride traffic.
    ASSERT_FALSE(rd.sorted_counts.empty());
    EXPECT_GT(rd.sorted_counts[0], rd.stride_accesses / 4);
}

TEST(StrideOccupancy, SortedDescending)
{
    FcmPredictor fcm({.l1_bits = 8, .l2_bits = 10});
    const OccupancyResult r = profileStrideOccupancy(fcm,
                                                     strideTrace(20000));
    ASSERT_EQ(r.sorted_counts.size(), fcm.l2Entries());
    for (std::size_t i = 1; i < r.sorted_counts.size(); ++i)
        EXPECT_LE(r.sorted_counts[i], r.sorted_counts[i - 1]);
}

TEST(StrideOccupancy, EntriesAccessedMoreThanBoundaries)
{
    OccupancyResult r;
    r.sorted_counts = {500, 100, 100, 3, 0};
    EXPECT_EQ(r.entriesAccessedMoreThan(0), 4u);
    EXPECT_EQ(r.entriesAccessedMoreThan(3), 3u);
    EXPECT_EQ(r.entriesAccessedMoreThan(99), 3u);
    EXPECT_EQ(r.entriesAccessedMoreThan(100), 1u);
    EXPECT_EQ(r.entriesAccessedMoreThan(500), 0u);
}

} // namespace
} // namespace vpred
