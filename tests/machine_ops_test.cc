/**
 * @file
 * Exhaustive per-opcode semantics tests for the MiniRISC
 * interpreter (complements machine_test.cc's scenario tests).
 */

#include <gtest/gtest.h>

#include "sim/assembler.hh"
#include "sim/machine.hh"

namespace vpred::sim
{
namespace
{

/** Run a straight-line snippet that ends with exit. The exit
 *  sequence is inserted before any .data section in the snippet. */
std::array<std::uint32_t, kNumRegs>
regsAfter(const std::string& body)
{
    const std::string exit_seq = "\nli $v0, 10\nsyscall\n";
    std::string source = body;
    if (const std::size_t data = source.find(".data");
        data != std::string::npos) {
        source.insert(data, exit_seq + "\n");
    } else {
        source += exit_seq;
    }
    const Program program = assemble(source);
    Machine m(program);
    m.run(100000);
    std::array<std::uint32_t, kNumRegs> regs;
    for (unsigned r = 0; r < kNumRegs; ++r)
        regs[r] = m.reg(r);
    return regs;
}

TEST(MachineOps, Lui)
{
    const auto r = regsAfter("lui $t0, 0x1234\n"
                             "lui $t1, 0xFFFF\n");
    EXPECT_EQ(r[8], 0x12340000u);
    EXPECT_EQ(r[9], 0xFFFF0000u);
}

TEST(MachineOps, XoriAndNor)
{
    const auto r = regsAfter("li   $t0, 0xFF00\n"
                             "xori $t1, $t0, 0x0FF0\n"
                             "nor  $t2, $t0, $zero\n");
    EXPECT_EQ(r[9], 0xF0F0u);
    EXPECT_EQ(r[10], ~0xFF00u);
}

TEST(MachineOps, VariableShifts)
{
    const auto r = regsAfter("li  $t0, 0x80000000\n"
                             "li  $t1, 4\n"
                             "sll $t2, $t1, $t1\n"     // 64
                             "srl $t3, $t0, $t1\n"     // 0x08000000
                             "sra $t4, $t0, $t1\n"     // 0xF8000000
                             "li  $t5, 33\n"
                             "sll $t6, $t1, $t5\n");   // shift & 31 = 1
    EXPECT_EQ(r[10], 64u);
    EXPECT_EQ(r[11], 0x08000000u);
    EXPECT_EQ(r[12], 0xF8000000u);
    EXPECT_EQ(r[14], 8u);
}

TEST(MachineOps, UnsignedDivRem)
{
    const auto r = regsAfter("li   $t0, -4\n"      // 0xFFFFFFFC
                             "li   $t1, 3\n"
                             "divu $t2, $t0, $t1\n"
                             "remu $t3, $t0, $t1\n"
                             "div  $t4, $t0, $t1\n"
                             "rem  $t5, $t0, $t1\n");
    EXPECT_EQ(r[10], 0xFFFFFFFCu / 3);
    EXPECT_EQ(r[11], 0xFFFFFFFCu % 3);
    EXPECT_EQ(r[12], static_cast<std::uint32_t>(-1));
    EXPECT_EQ(r[13], static_cast<std::uint32_t>(-1));
}

TEST(MachineOps, MulWrapsModulo32)
{
    const auto r = regsAfter("li  $t0, 0x10001\n"
                             "mul $t1, $t0, $t0\n");
    EXPECT_EQ(r[9], 0x10001u * 0x10001u);  // wraps in uint32
}

TEST(MachineOps, SltiuWithLargeImmediate)
{
    const auto r = regsAfter("li    $t0, 5\n"
                             "sltiu $t1, $t0, -1\n");  // unsigned max
    EXPECT_EQ(r[9], 1u);
}

TEST(MachineOps, HalfwordSignedness)
{
    const auto r = regsAfter("la $t0, d\n"
                             "lh  $t1, 0($t0)\n"
                             "lhu $t2, 0($t0)\n"
                             "lh  $t3, 2($t0)\n"
                             ".data\nd: .half 0x8001, 0x7FFF\n");
    EXPECT_EQ(r[9], 0xFFFF8001u);
    EXPECT_EQ(r[10], 0x8001u);
    EXPECT_EQ(r[11], 0x7FFFu);
}

TEST(MachineOps, StoreHalfAndByteTruncate)
{
    const auto r = regsAfter("la $t0, d\n"
                             "li $t1, 0x12345678\n"
                             "sh $t1, 0($t0)\n"
                             "sb $t1, 2($t0)\n"
                             "lw $t2, 0($t0)\n"
                             ".data\nd: .word 0\n");
    EXPECT_EQ(r[10], 0x00785678u);
}

TEST(MachineOps, JalrLinksAndJumps)
{
    const Program p = assemble(
            "main:   la   $t0, callee\n"
            "        jalr $t1, $t0\n"
            "after:  li   $v0, 10\n"
            "        syscall\n"
            "callee: jr   $t1\n");
    Machine m(p);
    m.run(100);
    EXPECT_TRUE(m.halted());
    // $t1 held the return byte address (instruction 2 * 4).
    EXPECT_EQ(m.reg(9), 8u);
}

TEST(MachineOps, BgeuBleuPseudoSwap)
{
    const auto r = regsAfter(
            "        li   $t0, 0xFFFFFFFF\n"
            "        li   $t1, 1\n"
            "        li   $t2, 0\n"
            "        bgtu $t0, $t1, a\n"   // unsigned: max > 1
            "        li   $t2, 5\n"
            "a:      li   $t3, 0\n"
            "        bleu $t1, $t0, b\n"
            "        li   $t3, 5\n"
            "b:      nop\n");
    EXPECT_EQ(r[10], 0u);
    EXPECT_EQ(r[11], 0u);
}

TEST(MachineOps, GpPointsAtDataBase)
{
    const auto r = regsAfter("move $t0, $gp\n"
                             "lw   $t1, d($zero)\n"
                             ".data\nd: .word 321\n");
    EXPECT_EQ(r[8], Program::kDataBase);
    EXPECT_EQ(r[9], 321u);  // absolute-address load
}

TEST(MachineOps, StackPushPopConvention)
{
    const auto r = regsAfter("li   $t0, 77\n"
                             "subi $sp, $sp, 8\n"
                             "sw   $t0, 0($sp)\n"
                             "sw   $t0, 4($sp)\n"
                             "lw   $t1, 4($sp)\n"
                             "addi $sp, $sp, 8\n");
    EXPECT_EQ(r[9], 77u);
}

TEST(MachineOps, InstructionCountTracksExecution)
{
    const Program p = assemble("nop\nnop\nli $v0, 10\nsyscall\n");
    Machine m(p);
    m.run(100);
    EXPECT_EQ(m.instructionsExecuted(), 4u);
}

} // namespace
} // namespace vpred::sim
