/**
 * @file
 * Unit tests for trace serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/trace_io.hh"
#include "tracegen/mixer.hh"

namespace vpred
{
namespace
{

ValueTrace
sampleTrace()
{
    return tracegen::makeMixedTrace({.seed = 77}, 5000);
}

TEST(TraceIo, BinaryRoundTrip)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceBinary(ss, trace);
    EXPECT_EQ(readTraceBinary(ss), trace);
}

TEST(TraceIo, BinaryRoundTripEmpty)
{
    std::stringstream ss;
    writeTraceBinary(ss, {});
    EXPECT_TRUE(readTraceBinary(ss).empty());
}

TEST(TraceIo, BinaryPreservesFullWidthValues)
{
    const ValueTrace trace = {{0xFFFFFFFFFFFFFFFFull, 0},
                              {1, 0xFFFFFFFFFFFFFFFFull},
                              {0, 0x8000000000000000ull}};
    std::stringstream ss;
    writeTraceBinary(ss, trace);
    EXPECT_EQ(readTraceBinary(ss), trace);
}

TEST(TraceIo, BinaryRejectsBadMagic)
{
    std::stringstream ss("GARBAGE DATA");
    EXPECT_THROW(readTraceBinary(ss), TraceIoError);
}

TEST(TraceIo, BinaryRejectsTruncation)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceBinary(ss, trace);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(readTraceBinary(cut), TraceIoError);
}

TEST(TraceIo, CsvRoundTrip)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceCsv(ss, trace);
    EXPECT_EQ(readTraceCsv(ss), trace);
}

TEST(TraceIo, CsvAcceptsHeaderlessInput)
{
    std::stringstream ss("1,100\n2,200\n");
    const ValueTrace trace = readTraceCsv(ss);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0], (TraceRecord{1, 100}));
}

TEST(TraceIo, CsvRejectsMalformedLines)
{
    std::stringstream a("1 100\n");
    EXPECT_THROW(readTraceCsv(a), TraceIoError);
    std::stringstream b("pc,value\nx,7\n");
    EXPECT_THROW(readTraceCsv(b), TraceIoError);
}

TEST(TraceIo, SaveLoadByExtension)
{
    namespace fs = std::filesystem;
    const ValueTrace trace = sampleTrace();
    const fs::path dir = fs::temp_directory_path();
    const std::string bin = (dir / "vpred_test_trace.vpt").string();
    const std::string csv = (dir / "vpred_test_trace.csv").string();

    saveTrace(bin, trace);
    saveTrace(csv, trace);
    EXPECT_EQ(loadTrace(bin), trace);
    EXPECT_EQ(loadTrace(csv), trace);

    // CSV file really is text.
    std::ifstream check(csv);
    std::string header;
    std::getline(check, header);
    EXPECT_EQ(header, "pc,value");

    std::remove(bin.c_str());
    std::remove(csv.c_str());
}

TEST(TraceIo, LoadMissingFileThrows)
{
    EXPECT_THROW(loadTrace("/nonexistent/path/trace.vpt"),
                 TraceIoError);
}

} // namespace
} // namespace vpred
