/**
 * @file
 * Unit tests for trace serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/trace_io.hh"
#include "tracegen/mixer.hh"

namespace vpred
{
namespace
{

ValueTrace
sampleTrace()
{
    return tracegen::makeMixedTrace({.seed = 77}, 5000);
}

TEST(TraceIo, BinaryRoundTrip)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceBinary(ss, trace);
    EXPECT_EQ(readTraceBinary(ss), trace);
}

TEST(TraceIo, BinaryRoundTripEmpty)
{
    std::stringstream ss;
    writeTraceBinary(ss, {});
    EXPECT_TRUE(readTraceBinary(ss).empty());
}

TEST(TraceIo, BinaryPreservesFullWidthValues)
{
    const ValueTrace trace = {{0xFFFFFFFFFFFFFFFFull, 0},
                              {1, 0xFFFFFFFFFFFFFFFFull},
                              {0, 0x8000000000000000ull}};
    std::stringstream ss;
    writeTraceBinary(ss, trace);
    EXPECT_EQ(readTraceBinary(ss), trace);
}

TEST(TraceIo, BinaryRejectsBadMagic)
{
    std::stringstream ss("GARBAGE DATA");
    EXPECT_THROW(readTraceBinary(ss), TraceIoError);
}

TEST(TraceIo, BinaryRejectsTruncation)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceBinary(ss, trace);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(readTraceBinary(cut), TraceIoError);
}

TEST(TraceIo, CsvRoundTrip)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceCsv(ss, trace);
    EXPECT_EQ(readTraceCsv(ss), trace);
}

TEST(TraceIo, CsvAcceptsHeaderlessInput)
{
    std::stringstream ss("1,100\n2,200\n");
    const ValueTrace trace = readTraceCsv(ss);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0], (TraceRecord{1, 100}));
}

TEST(TraceIo, CsvRejectsMalformedLines)
{
    std::stringstream a("1 100\n");
    EXPECT_THROW(readTraceCsv(a), TraceIoError);
    std::stringstream b("pc,value\nx,7\n");
    EXPECT_THROW(readTraceCsv(b), TraceIoError);
}

TEST(TraceIo, SaveLoadByExtension)
{
    namespace fs = std::filesystem;
    const ValueTrace trace = sampleTrace();
    const fs::path dir = fs::temp_directory_path();
    const std::string bin = (dir / "vpred_test_trace.vpt").string();
    const std::string csv = (dir / "vpred_test_trace.csv").string();

    saveTrace(bin, trace);
    saveTrace(csv, trace);
    EXPECT_EQ(loadTrace(bin), trace);
    EXPECT_EQ(loadTrace(csv), trace);

    // CSV file really is text.
    std::ifstream check(csv);
    std::string header;
    std::getline(check, header);
    EXPECT_EQ(header, "pc,value");

    std::remove(bin.c_str());
    std::remove(csv.c_str());
}

TEST(TraceIo, LoadMissingFileThrows)
{
    EXPECT_THROW(loadTrace("/nonexistent/path/trace.vpt"),
                 TraceIoError);
}

TEST(TraceIo, Vpt1RejectsOversizedRecordCount)
{
    // A VPT1 header claiming more records than the stream holds must
    // fail fast instead of reserving gigabytes.
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceBinary(ss, trace);
    std::string bytes = ss.str();
    // Record count is the little-endian u64 after the 4-byte magic.
    const std::uint64_t huge = 1ull << 40;
    for (int i = 0; i < 8; ++i)
        bytes[4 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
    std::stringstream corrupt(bytes);
    EXPECT_THROW(readTraceBinary(corrupt), TraceIoError);
}

Vpt2Meta
sampleMeta()
{
    Vpt2Meta meta;
    meta.workload = "compress";
    meta.scale = 0.25;
    meta.generator_version = 7;
    meta.instructions = 123456;
    meta.output = "checksum=42\n";
    return meta;
}

TEST(TraceIo, Vpt2RoundTripWithMetadata)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceVpt2(ss, trace, sampleMeta());

    Vpt2Layout layout;
    EXPECT_EQ(readTraceVpt2(ss, &layout), trace);
    EXPECT_EQ(layout.meta.workload, "compress");
    EXPECT_EQ(layout.meta.scale, 0.25);
    EXPECT_EQ(layout.meta.generator_version, 7u);
    EXPECT_EQ(layout.meta.instructions, 123456u);
    EXPECT_EQ(layout.meta.output, "checksum=42\n");
    EXPECT_EQ(layout.record_count, trace.size());
    EXPECT_EQ(layout.records_offset % kVpt2RecordAlignment, 0u);
    EXPECT_EQ(layout.checksum,
              traceChecksum({trace.data(), trace.size()}));
}

TEST(TraceIo, Vpt2ReadableByGenericBinaryReader)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceVpt2(ss, trace, sampleMeta());
    // readTraceBinary dispatches on the magic: VPT1 and VPT2 both load.
    EXPECT_EQ(readTraceBinary(ss), trace);
}

TEST(TraceIo, Vpt2RejectsChecksumMismatch)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceVpt2(ss, trace, sampleMeta());
    std::string bytes = ss.str();
    bytes[bytes.size() - 1] ^= 0x01;  // flip one payload bit
    std::stringstream corrupt(bytes);
    EXPECT_THROW(readTraceVpt2(corrupt), TraceIoError);
}

TEST(TraceIo, Vpt2RejectsTruncation)
{
    const ValueTrace trace = sampleTrace();
    std::stringstream ss;
    writeTraceVpt2(ss, trace, sampleMeta());
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(readTraceVpt2(cut), TraceIoError);
}

} // namespace
} // namespace vpred
