// Fixture: covers CoveredPredictor so only UncoveredPredictor flags.
int
coveredPredictorTest()
{
    return 0;
}
