// Fixture: entropy calls and unordered iteration in a figure driver.
// A rand() or time() mention in a comment must NOT be flagged.
#include <cstdlib>
#include <unordered_map>

int
main()
{
    int x = rand();
    long t = time(nullptr);
    std::random_device rd;
    std::unordered_map<int, int> counts;
    counts[x] = static_cast<int>(t) + static_cast<int>(rd());
    int sum = 0;
    for (const auto& kv : counts)
        sum += kv.second;
    return sum;
}
