// Fixture: raw parsing in a driver; the second call is suppressed.
#include <cstdlib>

int
main(int argc, char** argv)
{
    const int a = std::atoi(argv[1]);
    const int b = std::atoi(argv[2]);  // repro-lint: allow(parse)
    return (argc > 2) ? a + b : 0;
}
