// Fixture: core including upward (harness) and a .cc translation unit.
#ifndef BAD_LAYERING_HH
#define BAD_LAYERING_HH

#include "harness/parallel_sweep.hh"
#include "core/helper.cc"

#endif
