// Env reads for the env-doc-drift fixture: one documented, one not.
#include <cstdlib>

int
knobs()
{
    const char* a = std::getenv("REPRO_FIX_DOCUMENTED");
    const char* b = std::getenv("REPRO_FIX_UNDOCUMENTED");
    return (a != nullptr) + (b != nullptr);
}
