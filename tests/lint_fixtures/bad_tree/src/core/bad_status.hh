// Status APIs on the hot path: repro-lint: hot-path
#pragma once

struct BadRing
{
    bool tryPush(int v);
    [[nodiscard]] bool tryPop(int& v);
    void tryReset();
};

struct BadMap
{
    [[nodiscard]] bool insert(int key);
};
