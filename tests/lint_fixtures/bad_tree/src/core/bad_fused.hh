// Fixture: fused fast path without the reference predict/update path.
#ifndef BAD_FUSED_HH
#define BAD_FUSED_HH

class BadFused
{
  public:
    bool predictAndUpdate(int pc, int value) override;
};

class GoodFused
{
  public:
    int predict(int pc) override;
    void update(int pc, int value) override;
    bool predictAndUpdate(int pc, int value) override;
};

#endif
