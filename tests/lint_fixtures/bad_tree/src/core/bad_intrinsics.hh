// Fixture: raw SIMD intrinsics outside src/core/simd.hh.
#ifndef FIXTURE_BAD_INTRINSICS_HH
#define FIXTURE_BAD_INTRINSICS_HH
#include <immintrin.h>
#include <arm_neon.h>
inline void badVectorCode(unsigned* p)
{
    _mm256_storeu_si256(nullptr, _mm256_setzero_si256());
    vld1q_u32(p);
    _mm512_storeu_si512(p, _mm512_setzero_si512());
    _mm_pause();  // repro-lint: allow(portability)
}
#endif
