// Defaulted-order atomics on a file that opted into the lock-free
// contract: repro-lint: hot-path
#pragma once
#include <atomic>

struct NotAtomic
{
    unsigned load() const { return 7; }
};

struct BadAtomics
{
    std::atomic<unsigned> head{0};
    std::atomic<unsigned> tail{0};
    NotAtomic plain;

    unsigned
    drain()
    {
        const unsigned h = head.load();
        head.store(h + 1);
        tail.fetch_add(1, std::memory_order_relaxed);
        head.store(h, std::memory_order_seq_cst);  // explicit: legal
        tail.exchange(h);  // repro-lint: allow(concurrency/implicit-seq-cst)
        return tail.load(std::memory_order_acquire) + plain.load();
    }
};
