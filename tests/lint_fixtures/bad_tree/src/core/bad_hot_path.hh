// A deliberately lock-infested file that opted into the lock-free
// contract: repro-lint: hot-path
#pragma once
#include <mutex>
#include <condition_variable>
#include <atomic>  // atomics stay legal on the hot path

struct BadHotPath
{
    std::mutex m;
    std::condition_variable cv;
    void f() { const std::lock_guard<std::mutex> g(m); }
    std::mutex cold_path_lock;  // repro-lint: allow(concurrency)
    std::atomic<int> fine{0};
};
