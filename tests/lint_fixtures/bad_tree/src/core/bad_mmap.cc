// Fixture: page-level allocation APIs outside the table arena.
#include <sys/mman.h>
#include <cstdlib>

void* badMapTable(std::size_t bytes)
{
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    madvise(p, bytes, MADV_HUGEPAGE);
    void* q = std::aligned_alloc(64, bytes);  // repro-lint: allow(portability)
    std::free(q);
    // A comment naming mmap and munmap is fine; only code uses flag.
    const char* label = "mmap-backed";  // string mention is fine too
    (void)label;
    munmap(p, bytes);
    return nullptr;
}
