// Fixture: factory registering one covered and one uncovered class.
#include <memory>

void*
makePredictor(int kind)
{
    if (kind == 0)
        return std::make_unique<CoveredPredictor>().release();
    return std::make_unique<UncoveredPredictor>().release();
}
