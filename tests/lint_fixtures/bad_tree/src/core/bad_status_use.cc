// Call sites discarding (and consuming) hot-path statuses.
#include "core/bad_status.hh"

#include <set>

int
driver(BadRing& r, BadMap& m)
{
    int v = 0;
    r.tryPop(v);
    (void) r.tryPop(v);
    if (r.tryPop(v))
        r.tryPop(v);
    const bool ok = r.tryPop(v);
    m.insert(1);
    std::set<int> s;
    s.insert(2);
    r.tryPush(3);
    return static_cast<int>(ok) + static_cast<int>(s.size());
}
