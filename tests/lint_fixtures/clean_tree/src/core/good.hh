// Fixture: a well-behaved core header.
#ifndef GOOD_HH
#define GOOD_HH

#include "core/types.hh"

class CoveredPredictor
{
  public:
    int predict(int pc);
    void update(int pc, int value);
    bool predictAndUpdate(int pc, int value) override;
};

#endif
