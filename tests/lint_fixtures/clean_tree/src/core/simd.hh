// Fixture: src/core/simd.hh is the sanctioned home of raw
// intrinsics, so this file must produce no portability findings.
#ifndef FIXTURE_SIMD_HH
#define FIXTURE_SIMD_HH
#include <emmintrin.h>
inline void fixtureStore(void* p)
{
    _mm_storeu_si128(static_cast<__m128i*>(p), _mm_setzero_si128());
}
#endif
