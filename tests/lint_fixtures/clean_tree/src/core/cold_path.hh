// A cold-path file: no "hot-path" marker, so blocking primitives are
// perfectly legal here — the concurrency rule is strictly opt-in.
#pragma once
#include <mutex>

struct ColdPathRegistry
{
    std::mutex m;
    int value = 0;
    void set(int v)
    {
        const std::lock_guard<std::mutex> g(m);
        value = v;
    }
};
