// A disciplined lock-free file: repro-lint: hot-path
#pragma once
#include <atomic>

struct CleanFabric
{
    std::atomic<unsigned> head{0};

    [[nodiscard]] bool
    tryPush(unsigned v)
    {
        const unsigned h = head.load(std::memory_order_acquire);
        head.store(h + v, std::memory_order_release);
        return true;
    }
};
