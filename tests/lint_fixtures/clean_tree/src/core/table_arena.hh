// Fixture: src/core/table_arena.hh is a sanctioned home of the
// page-level allocation APIs, so this file must produce no
// portability/raw-mmap findings.
#ifndef FIXTURE_TABLE_ARENA_HH
#define FIXTURE_TABLE_ARENA_HH
#include <sys/mman.h>
#include <cstdlib>
inline void* fixtureMapArena(std::size_t bytes)
{
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    madvise(p, bytes, MADV_HUGEPAGE);
    munmap(p, bytes);
    return std::aligned_alloc(64, bytes);
}
#endif
