// Fixture: factory whose only class is covered by a test.
#include <memory>

void*
makePredictor()
{
    return std::make_unique<CoveredPredictor>().release();
}
