// Every status consumed, every intentional drop explicit.
#include "core/fabric.hh"

#include <cstdlib>

bool
pump(CleanFabric& f)
{
    const char* knob = std::getenv("REPRO_CLEAN_KNOB");
    if (f.tryPush(1))
        return true;
    (void) f.tryPush(2);
    while (!f.tryPush(3)) {
    }
    return knob != nullptr;
}
