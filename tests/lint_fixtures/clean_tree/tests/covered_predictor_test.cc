// Fixture: covers CoveredPredictor.
int
coveredPredictorTest()
{
    return 0;
}
