// Fixture: deterministic driver — ordered container, no entropy.
#include <map>

int
main()
{
    std::map<int, int> counts;
    counts[1] = 2;
    int sum = 0;
    for (const auto& kv : counts)
        sum += kv.second;
    return sum;
}
