/**
 * @file
 * Unit tests for the two-delta stride predictor.
 */

#include <gtest/gtest.h>

#include "core/two_delta_predictor.hh"
#include "core/stats.hh"

namespace vpred
{
namespace
{

TEST(TwoDeltaPredictor, PromotesStrideOnlyWhenSeenTwice)
{
    TwoDeltaPredictor p(8);
    p.update(1, 10);   // stride 10 -> s2
    EXPECT_EQ(p.predict(1), 10u);  // s1 still 0
    p.update(1, 20);   // stride 10 == s2 -> promoted to s1
    EXPECT_EQ(p.predict(1), 30u);
}

TEST(TwoDeltaPredictor, OneOffStrideDoesNotDisturbS1)
{
    TwoDeltaPredictor p(8);
    for (int i = 0; i < 10; ++i)
        p.update(1, 5 * i);
    // One irregular jump: new stride != s2, s1 keeps the old stride.
    p.update(1, 1000);
    EXPECT_EQ(p.predict(1), 1005u);
}

TEST(TwoDeltaPredictor, LoopResetCostsOneMisprediction)
{
    TwoDeltaPredictor p(8);
    for (int i = 0; i < 8; ++i)
        p.predictAndUpdate(2, i);
    int wrong = 0;
    for (int lap = 0; lap < 4; ++lap) {
        for (int i = 0; i < 8; ++i) {
            if (!p.predictAndUpdate(2, i))
                ++wrong;
        }
    }
    EXPECT_EQ(wrong, 4);
}

TEST(TwoDeltaPredictor, PerfectOnStrideAfterWarmup)
{
    TwoDeltaPredictor p(8);
    PredictorStats s;
    for (int i = 0; i < 100; ++i)
        s.record(p.predictAndUpdate(5, 7 * i));
    EXPECT_GE(s.correct, 98u);
}

TEST(TwoDeltaPredictor, StorageModel)
{
    // last + s1 + s2, each value_bits wide.
    EXPECT_EQ(TwoDeltaPredictor(10, 32).storageBits(), 1024u * 96);
}

} // namespace
} // namespace vpred
