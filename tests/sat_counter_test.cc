/**
 * @file
 * Unit tests for the saturating counter.
 */

#include <gtest/gtest.h>

#include "core/sat_counter.hh"

namespace vpred
{
namespace
{

TEST(SatCounter, StartsAtInitialValue)
{
    EXPECT_EQ(SatCounter(3).value(), 0u);
    EXPECT_EQ(SatCounter(3, 1, 2, 5).value(), 5u);
    // Clamped to maximum.
    EXPECT_EQ(SatCounter(3, 1, 2, 99).value(), 7u);
}

TEST(SatCounter, PaperPolicyIncrementsByOne)
{
    SatCounter c(3, 1, 2);
    c.train(true);
    c.train(true);
    EXPECT_EQ(c.value(), 2u);
}

TEST(SatCounter, PaperPolicyDecrementsByTwo)
{
    SatCounter c(3, 1, 2, 7);
    c.train(false);
    EXPECT_EQ(c.value(), 5u);
    c.train(false);
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(3, 1, 2, 7);
    c.train(true);
    EXPECT_EQ(c.value(), 7u);
    EXPECT_TRUE(c.isMax());
}

TEST(SatCounter, SaturatesLowWithoutUnderflow)
{
    SatCounter c(3, 1, 2, 1);
    c.train(false);  // 1 - 2 clamps to 0
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(c.isMin());
    c.train(false);
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, MaxDependsOnWidth)
{
    EXPECT_EQ(SatCounter(1).max(), 1u);
    EXPECT_EQ(SatCounter(2).max(), 3u);
    EXPECT_EQ(SatCounter(3).max(), 7u);
    EXPECT_EQ(SatCounter(8).max(), 255u);
}

TEST(SatCounter, ResetClamps)
{
    SatCounter c(2);
    c.reset(2);
    EXPECT_EQ(c.value(), 2u);
    c.reset(100);
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, SevenCorrectRecoverAfterTwoMispredictions)
{
    // The paper's policy: climbing back to saturation after a stride
    // break takes inc/dec-ratio many correct predictions.
    SatCounter c(3, 1, 2, 7);
    c.train(false);
    c.train(false);
    EXPECT_EQ(c.value(), 3u);
    for (int i = 0; i < 4; ++i)
        c.train(true);
    EXPECT_TRUE(c.isMax());
}

} // namespace
} // namespace vpred
