/**
 * @file
 * Mechanism tests for the paper's central causal claim (Sections
 * 2.4 and 3): stride patterns crowd the FCM's level-2 table and
 * destructively interfere with context patterns; the DFCM removes
 * that interference by collapsing strides to single entries.
 *
 * These tests construct the interference directly instead of relying
 * on whole-benchmark averages.
 */

#include <gtest/gtest.h>

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/stats.hh"
#include "tracegen/mixer.hh"
#include "tracegen/pattern.hh"

namespace vpred
{
namespace
{

/** Accuracy on the context instructions only, with or without an
 *  added population of stride instructions sharing the tables. */
template <typename PredictorT>
double
contextAccuracyUnderStrides(unsigned n_strides, unsigned l2_bits,
                            std::uint64_t seed)
{
    using namespace tracegen;
    TraceMixer mixer(seed);
    Pc pc = 1000;
    // Context patterns: repeating sequences only a two-level
    // predictor can learn.
    constexpr unsigned kContexts = 6;
    Xorshift rng(seed);
    for (unsigned i = 0; i < kContexts; ++i) {
        std::vector<Value> seq(10);
        for (Value& v : seq)
            v = rng.next() & maskBits(28);
        mixer.add(pc++, std::make_unique<SequencePattern>(seq));
    }
    // The stride population under test.
    for (unsigned i = 0; i < n_strides; ++i) {
        mixer.add(pc++, std::make_unique<StridePattern>(
                rng.next() & maskBits(24), 1 + rng.nextBelow(9),
                50 + rng.nextBelow(500)));
    }
    const ValueTrace trace = mixer.generate(120000);

    PredictorT predictor({.l1_bits = 12, .l2_bits = l2_bits});
    PredictorStats context_stats;
    for (const TraceRecord& rec : trace) {
        const bool correct = predictor.predictAndUpdate(rec.pc,
                                                        rec.value);
        if (rec.pc < 1000 + kContexts)
            context_stats.record(correct);
    }
    return context_stats.accuracy();
}

TEST(Interference, StridesDegradeFcmContextAccuracy)
{
    // Adding stride instructions must hurt the FCM's accuracy on the
    // *unchanged* context instructions — the level-2 pollution.
    const double clean = contextAccuracyUnderStrides<FcmPredictor>(
            0, 10, 99);
    const double polluted = contextAccuracyUnderStrides<FcmPredictor>(
            40, 10, 99);
    EXPECT_GT(clean, 0.85);
    EXPECT_LT(polluted, clean - 0.10);
}

TEST(Interference, DfcmShieldsContextPatternsFromStrides)
{
    const double clean = contextAccuracyUnderStrides<DfcmPredictor>(
            0, 10, 99);
    const double polluted = contextAccuracyUnderStrides<DfcmPredictor>(
            40, 10, 99);
    // The DFCM loses far less: each stride occupies ~1 entry.
    EXPECT_GT(clean, 0.85);
    EXPECT_GT(polluted, clean - 0.06);
}

TEST(Interference, LargerL2DilutesFcmInterference)
{
    // The same pollution hurts less in a bigger level-2 table — the
    // reason Figure 10's FCM/DFCM gap shrinks with table size.
    const double small = contextAccuracyUnderStrides<FcmPredictor>(
            40, 8, 7);
    const double large = contextAccuracyUnderStrides<FcmPredictor>(
            40, 16, 7);
    EXPECT_GT(large, small + 0.10);
}

TEST(Interference, SameStrideInstructionsShareDfcmEntries)
{
    // Ten instructions with the same stride but disjoint ranges: in
    // the DFCM they all funnel into the same level-2 entry set.
    DfcmPredictor dfcm({.l1_bits = 10, .l2_bits = 12});
    for (int i = 0; i < 50; ++i) {
        for (Pc pc = 0; pc < 10; ++pc)
            dfcm.update(pc, 100000 * pc + 3 * i);
    }
    const std::uint64_t entry = dfcm.l2IndexFor(0);
    for (Pc pc = 1; pc < 10; ++pc)
        EXPECT_EQ(dfcm.l2IndexFor(pc), entry) << "pc " << pc;
}

TEST(Interference, DifferentStridesUseDifferentDfcmEntries)
{
    // ...but different strides do not collide by construction.
    DfcmPredictor dfcm({.l1_bits = 10, .l2_bits = 12});
    for (int i = 0; i < 50; ++i) {
        dfcm.update(1, 3 * i);
        dfcm.update(2, 7 * i);
    }
    EXPECT_NE(dfcm.l2IndexFor(1), dfcm.l2IndexFor(2));
}

} // namespace
} // namespace vpred
