/**
 * @file
 * Unit tests for the ideal-index (collision-free) context
 * predictors.
 */

#include <gtest/gtest.h>

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/ideal_context_predictor.hh"
#include "core/stats.hh"
#include "tracegen/mixer.hh"

namespace vpred
{
namespace
{

TEST(IdealContextPredictor, LearnsContextPatternsExactly)
{
    IdealContextPredictor p(8, 3, /*differential=*/false);
    const Value pattern[] = {5, 5, 9, 1, 7};
    PredictorStats s;
    for (int lap = 0; lap < 40; ++lap)
        for (Value v : pattern)
            s.record(p.predictAndUpdate(1, v));
    // After the first lap there is no aliasing of any kind: perfect.
    EXPECT_GE(s.correct, s.predictions - 8);
}

TEST(IdealContextPredictor, DifferentialFormPredictsFreshStrides)
{
    IdealContextPredictor p(8, 3, /*differential=*/true);
    PredictorStats s;
    for (int i = 0; i < 100; ++i)
        s.record(p.predictAndUpdate(1, 50 + 9 * i));
    EXPECT_GE(s.correct, 94u);
}

TEST(IdealContextPredictor, NeverWorseThanHashedAtSameOrder)
{
    // Removing hash collisions can only help on a trace with heavy
    // table pressure.
    const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 30,
             .context_instructions = 25,
             .random_instructions = 4,
             .seed = 5150},
            100000);

    FcmPredictor fcm({.l1_bits = 10, .l2_bits = 10});  // order 2
    IdealContextPredictor ideal(10, fcm.order(), false);
    EXPECT_GE(runTrace(ideal, trace).correct + 200,
              runTrace(fcm, trace).correct);

    DfcmPredictor dfcm({.l1_bits = 10, .l2_bits = 10});
    IdealContextPredictor ideal_d(10, dfcm.order(), true);
    EXPECT_GE(runTrace(ideal_d, trace).correct + 200,
              runTrace(dfcm, trace).correct);
}

TEST(IdealContextPredictor, StrideUsesOneContext)
{
    // The differential ideal predictor materializes just a couple of
    // contexts for a pure stride (constant difference history).
    IdealContextPredictor p(8, 4, true);
    for (int i = 0; i < 200; ++i)
        p.update(1, 3 * i);
    EXPECT_LE(p.contextCount(), 6u);

    // The plain form materializes one context per value (Figure 4).
    IdealContextPredictor q(8, 4, false);
    for (int i = 0; i < 200; ++i)
        q.update(1, 3 * i);
    EXPECT_GE(q.contextCount(), 190u);
}

TEST(IdealContextPredictor, Name)
{
    EXPECT_EQ(IdealContextPredictor(10, 3, false).name(),
              "ideal-fcm(l1=10,o=3)");
    EXPECT_EQ(IdealContextPredictor(10, 3, true).name(),
              "ideal-dfcm(l1=10,o=3)");
}

} // namespace
} // namespace vpred
