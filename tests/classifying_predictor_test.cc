/**
 * @file
 * Unit tests for the dynamic-classification predictor (Section 5
 * related-work baseline).
 */

#include <gtest/gtest.h>

#include "core/classifying_predictor.hh"
#include "core/dfcm_predictor.hh"
#include "core/stats.hh"
#include "tracegen/mixer.hh"
#include "tracegen/pattern.hh"
#include "workloads/workload.hh"

namespace vpred
{
namespace
{

ClassifyingConfig
smallConfig()
{
    ClassifyingConfig cfg;
    cfg.class_bits = 8;
    cfg.lvp_bits = 8;
    cfg.stride_bits = 8;
    cfg.fcm_l1_bits = 8;
    cfg.fcm_l2_bits = 10;
    return cfg;
}

TEST(ClassifyingPredictor, AssignsStrideClassToStrideData)
{
    ClassifyingPredictor p(smallConfig());
    for (unsigned i = 0; i < 40; ++i)
        p.update(1, 5 * i);
    EXPECT_EQ(p.classOf(1), ValueClass::Stride);
    // And predicts correctly afterwards.
    EXPECT_EQ(p.predict(1), 5u * 40);
}

TEST(ClassifyingPredictor, AssignsContextClassToIrregularPattern)
{
    ClassifyingPredictor p(smallConfig());
    const Value pattern[] = {11, 3, 99, 40, 7};
    for (int lap = 0; lap < 12; ++lap)  // 60 > warmup observations
        for (Value v : pattern)
            p.update(2, v);
    EXPECT_EQ(p.classOf(2), ValueClass::Context);
    PredictorStats s;
    for (int lap = 0; lap < 10; ++lap)
        for (Value v : pattern)
            s.record(p.predictAndUpdate(2, v));
    EXPECT_GT(s.accuracy(), 0.9);
}

TEST(ClassifyingPredictor, MarksNoiseUnpredictable)
{
    ClassifyingPredictor p(smallConfig());
    tracegen::RandomPattern noise(4242);
    for (int i = 0; i < 40; ++i)
        p.update(3, noise.next());
    EXPECT_EQ(p.classOf(3), ValueClass::Unpredictable);
}

TEST(ClassifyingPredictor, UnknownDuringWarmup)
{
    ClassifyingPredictor p(smallConfig());
    for (int i = 0; i < 10; ++i)
        p.update(4, i);
    EXPECT_EQ(p.classOf(4), ValueClass::Unknown);
}

TEST(ClassifyingPredictor, ReclassifiesAfterPhaseChange)
{
    ClassifyingPredictor p(smallConfig());
    for (unsigned i = 0; i < 40; ++i)
        p.update(5, 3 * i);
    ASSERT_EQ(p.classOf(5), ValueClass::Stride);
    // The instruction turns into a repeating context pattern; the
    // stride predictor keeps missing, confidence collapses, and the
    // entry re-enters warm-up.
    const Value pattern[] = {8, 1, 62, 30};
    for (int lap = 0; lap < 30; ++lap)
        for (Value v : pattern)
            p.update(5, v);
    EXPECT_NE(p.classOf(5), ValueClass::Stride);
}

TEST(ClassifyingPredictor, CensusCoversAllEntries)
{
    ClassifyingPredictor p(smallConfig());
    for (unsigned i = 0; i < 40; ++i) {
        p.update(1, 5 * i);     // stride
        p.update(2, 1234);      // constant-ish (stride 0 also fits)
    }
    const auto census = p.classCensus();
    std::uint64_t total = 0;
    for (std::uint64_t c : census)
        total += c;
    EXPECT_EQ(total, 1u << 8);
}

TEST(ClassifyingPredictor, LosesToDfcmOnRealMixedWorkloads)
{
    // The paper's Section 5 argument in executable form: hard
    // classification with fixed partitions loses to the DFCM's
    // dynamic table sharing on workloads whose instructions mix
    // pattern kinds (perl: string scanning + hashing + lookups).
    // Full-suite numbers: bench_related_classification.
    const ValueTrace trace =
            workloads::runWorkload("perl", 0.1).trace;
    ClassifyingConfig cfg;  // default partitioned tables
    ClassifyingPredictor classifier(cfg);
    DfcmPredictor dfcm({.l1_bits = 14, .l2_bits = 12});
    EXPECT_LT(runTrace(classifier, trace).accuracy() + 0.05,
              runTrace(dfcm, trace).accuracy());
}

TEST(ClassifyingPredictor, ClassNames)
{
    EXPECT_STREQ(valueClassName(ValueClass::Stride), "stride");
    EXPECT_STREQ(valueClassName(ValueClass::Unpredictable),
                 "unpredictable");
}

} // namespace
} // namespace vpred
