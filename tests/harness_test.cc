/**
 * @file
 * Unit tests for the experiment harness: runner, sweeps, Pareto
 * frontier, table printer and trace cache.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/experiment.hh"
#include "harness/pareto.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"

namespace vpred::harness
{
namespace
{

TEST(TraceCache, MemoizesRuns)
{
    TraceCache cache(0.05);
    const ValueTrace& a = cache.get("norm");
    const ValueTrace& b = cache.get("norm");
    EXPECT_EQ(&a, &b);  // same object, no re-run
    EXPECT_FALSE(a.empty());
}

TEST(TraceCache, ScaleFromEnvironment)
{
    ::setenv("REPRO_TRACE_SCALE", "0.5", 1);
    EXPECT_DOUBLE_EQ(envTraceScale(), 0.5);
    ::unsetenv("REPRO_TRACE_SCALE");
    EXPECT_DOUBLE_EQ(envTraceScale(), 1.0);
}

// Malformed or out-of-range REPRO_TRACE_SCALE values used to warn
// (or silently clamp) and run anyway at a scale the user did not
// ask for; since the checked-env migration they are fatal.
TEST(TraceCacheDeathTest, MalformedScaleIsFatal)
{
    ::setenv("REPRO_TRACE_SCALE", "nonsense", 1);
    EXPECT_EXIT(envTraceScale(), ::testing::ExitedWithCode(2),
                "REPRO_TRACE_SCALE");
    ::setenv("REPRO_TRACE_SCALE", "0.5x", 1);  // trailing garbage
    EXPECT_EXIT(envTraceScale(), ::testing::ExitedWithCode(2),
                "REPRO_TRACE_SCALE");
    ::setenv("REPRO_TRACE_SCALE", "1e9", 1);  // out of range
    EXPECT_EXIT(envTraceScale(), ::testing::ExitedWithCode(2),
                "REPRO_TRACE_SCALE");
    ::setenv("REPRO_TRACE_SCALE", "-1", 1);
    EXPECT_EXIT(envTraceScale(), ::testing::ExitedWithCode(2),
                "REPRO_TRACE_SCALE");
    ::unsetenv("REPRO_TRACE_SCALE");
}

TEST(Experiment, RunOnProducesConsistentStats)
{
    TraceCache cache(0.05);
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Dfcm;
    cfg.l1_bits = 12;
    cfg.l2_bits = 10;
    const RunResult r = runOn(cache, "norm", cfg);
    EXPECT_EQ(r.workload, "norm");
    EXPECT_EQ(r.stats.predictions, cache.get("norm").size());
    EXPECT_GT(r.accuracy(), 0.5);  // norm is stride heaven for DFCM
    EXPECT_GT(r.storage_bits, 0u);
}

TEST(Experiment, SuiteAggregationIsPredictionWeighted)
{
    TraceCache cache(0.05);
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Stride;
    cfg.l1_bits = 12;
    const SuiteResult suite =
            runSuite(cache, {"norm", "compress"}, cfg);
    ASSERT_EQ(suite.per_workload.size(), 2u);

    std::uint64_t predictions = 0, correct = 0;
    for (const RunResult& r : suite.per_workload) {
        predictions += r.stats.predictions;
        correct += r.stats.correct;
    }
    EXPECT_EQ(suite.total.predictions, predictions);
    EXPECT_EQ(suite.total.correct, correct);
    // Weighted mean == total-counter ratio by construction.
    EXPECT_DOUBLE_EQ(suite.accuracy(),
                     static_cast<double>(correct)
                             / static_cast<double>(predictions));
}

TEST(Experiment, EmptySuiteStillCarriesPredictorMetadata)
{
    // Regression: an empty workload list used to leave the predictor
    // name and storage blank, producing blank table/JSON rows.
    TraceCache cache(0.05);
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Dfcm;
    cfg.l1_bits = 12;
    cfg.l2_bits = 10;
    const SuiteResult suite = runSuite(cache, {}, cfg);
    EXPECT_FALSE(suite.predictor.empty());
    EXPECT_GT(suite.storage_bits, 0u);
    EXPECT_EQ(suite.total.predictions, 0u);
    EXPECT_TRUE(suite.per_workload.empty());
}

TEST(Sweep, PaperGrids)
{
    EXPECT_EQ(paperL2Bits().size(), 7u);
    EXPECT_EQ(paperL2Bits().front(), 8u);
    EXPECT_EQ(paperL2Bits().back(), 20u);
    EXPECT_EQ(paperFcmL1Bits().size(), 8u);
    EXPECT_EQ(paperUpdateDelays().front(), 0u);

    const auto grid = twoLevelGrid(PredictorKind::Fcm, paperFcmL1Bits(),
                                   paperL2Bits());
    EXPECT_EQ(grid.size(), 56u);
    EXPECT_EQ(grid.front().kind, PredictorKind::Fcm);
}

TEST(Pareto, KeepsOnlyDominatingPoints)
{
    const std::vector<ParetoPoint> points = {
        {100, 0.5, "a"},
        {200, 0.4, "dominated-worse-and-bigger"},
        {200, 0.7, "b"},
        {50, 0.3, "c"},
        {400, 0.7, "dominated-same-accuracy-bigger"},
        {800, 0.9, "d"},
    };
    const auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 4u);
    EXPECT_EQ(frontier[0].label, "c");
    EXPECT_EQ(frontier[1].label, "a");
    EXPECT_EQ(frontier[2].label, "b");
    EXPECT_EQ(frontier[3].label, "d");
}

TEST(Pareto, TiesOnSizeKeepBest)
{
    const auto frontier = paretoFrontier({{10, 0.2, "lo"},
                                          {10, 0.6, "hi"}});
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].label, "hi");
}

TEST(Pareto, EmptyInput)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
}

TEST(TablePrinter, AlignedOutput)
{
    TablePrinter t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TablePrinter, Formatting)
{
    EXPECT_EQ(TablePrinter::fmt(0.123456, 3), "0.123");
    EXPECT_EQ(TablePrinter::fmt(std::uint64_t{42}), "42");
}

TEST(TablePrinter, CsvRoundTrip)
{
    TablePrinter t({"x", "y"});
    t.addRow({"1", "2"});
    t.writeCsv("test_table");
    std::ifstream in("results/test_table.csv");
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
}

} // namespace
} // namespace vpred::harness
