/**
 * @file
 * Cross-validation of workload kernels against independent C++
 * reimplementations: the MiniRISC kernel and the C++ model must
 * produce the same checksum. This validates both the kernels and
 * the VM's instruction semantics end-to-end.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace vpred::workloads
{
namespace
{

std::uint32_t
lcg(std::uint32_t& x)
{
    x = x * 1103515245u + 12345u;
    return x;
}

TEST(WorkloadSemantics, NormMatchesCppModel)
{
    // Reimplementation of asm_norm.cc: init, `reps` normalization
    // passes, checksum. reps = max(1, round(6 * scale)).
    const int reps = 3;
    const double scale = reps / 6.0;

    std::vector<std::int32_t> m(200 * 100);
    for (int i = 0; i < 200; ++i)
        for (int j = 0; j < 100; ++j)
            m[i * 100 + j] = (31 * i + 17 * j) % 1000 - 500;

    for (int r = 0; r < reps; ++r) {
        for (int i = 0; i < 200; ++i) {
            std::int32_t max = std::abs(m[i * 100 + 99]);
            for (int j = 0; j < 99; ++j)
                max = std::max(max, std::abs(m[i * 100 + j]));
            if (max == 0)
                max = 1;
            for (int j = 0; j < 100; ++j)
                m[i * 100 + j] = (m[i * 100 + j] << 6) / max;
        }
    }
    std::int64_t sum = 0;
    for (std::int32_t v : m)
        sum += v;
    const auto expected = static_cast<std::int32_t>(sum);

    const sim::TraceResult result = runWorkload("norm", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, CompressMatchesCppModel)
{
    // Reimplementation of asm_compress.cc: input synthesis + LZW
    // with a 4096-entry open-addressed dictionary, 1 pass.
    const int passes = 1;
    const double scale = passes / 2.0;

    constexpr int kInsize = 32768;
    const char* motif = "abracadabrab";
    std::vector<std::uint8_t> in(kInsize);
    std::uint32_t x = 12345;
    for (int i = 0; i < kInsize; ++i) {
        lcg(x);
        std::uint8_t b = 97 + ((x >> 16) & 7);
        if ((i & 63) < 24)
            b = static_cast<std::uint8_t>(motif[(i & 63) % 12]);
        in[i] = b;
    }

    std::uint32_t checksum = 0, codes = 0;
    for (int p = 0; p < passes; ++p) {
        std::array<std::uint32_t, 4096> hkey{}, hval{};
        std::uint32_t next_code = 256, entries = 0;
        std::uint32_t w = in[0];
        for (int i = 1; i < kInsize; ++i) {
            const std::uint32_t c = in[i];
            const std::uint32_t k = (w << 8) | c;
            std::uint32_t h = (k * 0x9E3779B1u) >> 20 & 4095u;
            while (hkey[h] != 0 && hkey[h] != k)
                h = (h + 1) & 4095u;
            if (hkey[h] == k) {
                w = hval[h];
            } else {
                checksum += w;
                ++codes;
                if (entries < 3072) {
                    hkey[h] = k;
                    hval[h] = next_code++;
                    ++entries;
                }
                w = c;
            }
        }
        checksum += w;
        ++codes;
    }
    const auto expected =
            static_cast<std::int32_t>(checksum + codes);

    const sim::TraceResult result = runWorkload("compress", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, M88ksimMatchesCppModel)
{
    // Reimplementation of the byte-coded guest program interpreted
    // by asm_m88ksim.cc, 1 outer rep x 16 guest runs.
    const int reps = 1;
    const double scale = reps / 3.0;

    auto guest_run = []() -> std::uint32_t {
        std::array<std::uint32_t, 16> r{};
        std::array<std::uint32_t, 1024> mem{};
        std::uint32_t s_out = 0;
        r[1] = 0;
        r[2] = 200;
        r[4] = 0;
        do {
            r[3] = r[2];
            r[3] *= r[3];
            r[1] += r[3];
            r[4] += 1;
            mem[r[4] & 1023] = r[1];
            r[5] = mem[r[4] & 1023];
            r[1] += r[5];
            r[2] -= 1;
        } while (r[2] != 0);
        s_out += r[1];
        return s_out;
    };

    std::uint32_t checksum = 0;
    for (int rep = 0; rep < reps; ++rep)
        for (int run = 0; run < 16; ++run)
            checksum += guest_run();

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("m88ksim", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, VortexMatchesCppModel)
{
    // Reimplementation of asm_vortex.cc, 1 pass.
    const int passes = 1;
    const double scale = passes / 10.0;

    struct Rec
    {
        std::uint32_t key = 0, val = 0;
        int next = -1;
    };

    std::uint32_t checksum = 0;
    for (int pass = 1; pass <= passes; ++pass) {
        std::array<int, 512> buckets;
        buckets.fill(-1);
        std::vector<Rec> recs(4096);
        std::uint32_t x = static_cast<std::uint32_t>(pass)
                * 0x9E3779B1u;
        for (int i = 0; i < 4096; ++i) {
            lcg(x);
            const std::uint32_t key = (x >> 8) & 8191u;
            recs[i].key = key;
            recs[i].val = key ^ static_cast<std::uint32_t>(i);
            const std::uint32_t b = key & 511u;
            recs[i].next = buckets[b];
            buckets[b] = i;
        }
        std::uint32_t y = static_cast<std::uint32_t>(pass)
                * 0x85EBCA6Bu;
        for (int q = 0; q < 4096; ++q) {
            lcg(y);
            const std::uint32_t key = (y >> 8) & 8191u;
            int r = buckets[key & 511u];
            while (r >= 0 && recs[r].key != key)
                r = recs[r].next;
            if (r >= 0) {
                checksum += recs[r].val;
                ++recs[r].val;
            } else {
                checksum += 1;
            }
        }
        for (int i = 0; i < 4096; ++i)
            checksum += recs[i].val;
    }

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("vortex", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, LiMatchesCppModel)
{
    // Model of asm_li.cc, 1 outer iteration (5 reps).
    const int iters = 1;
    const double scale = iters / 28.0;

    std::uint32_t checksum = 0;
    for (int it = 1; it <= iters; ++it) {
        for (int rep = 0; rep < 5; ++rep) {
            std::uint32_t sum1 = 0, sum2 = 0, count = 0;
            for (int i = 0; i < 400; ++i) {
                const std::uint32_t v = 7u * it + rep + 3u * i;
                sum1 += v;
                const std::uint32_t mapped = v + rep;
                sum2 += mapped;
                if (mapped % 5 == 0)
                    ++count;
            }
            checksum += sum1 + sum2 + count;
        }
    }

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("li", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, IjpegMatchesCppModel)
{
    // Model of asm_ijpeg.cc, 1 pass over the 128x64 image.
    const double scale = 1.0;

    std::array<std::uint8_t, 128 * 64> image;
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 128; ++x)
            image[y * 128 + x] = static_cast<std::uint8_t>(
                    (y ^ x) + 3 * x + 5 * y);

    std::int32_t coef[8][8];
    for (int k = 0; k < 8; ++k)
        for (int n = 0; n < 8; ++n)
            coef[k][n] = (7 * k * n + 3 * k + n) % 17 - 8;
    std::int32_t quant[64];
    for (int i = 0; i < 64; ++i)
        quant[i] = 1 + i / 4;

    std::uint32_t checksum = 0;
    for (int by = 0; by < 8; ++by) {
        for (int bx = 0; bx < 16; ++bx) {
            std::int32_t blk[8][8], tmp[8][8];
            for (int r = 0; r < 8; ++r)
                for (int c = 0; c < 8; ++c)
                    blk[r][c] = image[(8 * by + r) * 128 + 8 * bx + c];
            for (int k = 0; k < 8; ++k) {
                for (int c = 0; c < 8; ++c) {
                    std::int32_t acc = 0;
                    for (int r = 0; r < 8; ++r)
                        acc += coef[k][r] * blk[r][c];
                    tmp[k][c] = acc;
                }
            }
            for (int k = 0; k < 8; ++k) {
                for (int l = 0; l < 8; ++l) {
                    std::int32_t acc = 0;
                    for (int c = 0; c < 8; ++c)
                        acc += tmp[k][c] * coef[l][c];
                    acc >>= 4;
                    checksum += static_cast<std::uint32_t>(
                            acc / quant[8 * k + l]);
                }
            }
        }
    }

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("ijpeg", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, GzipMatchesCppModel)
{
    // Model of asm_gzip.cc, 1 pass.
    const int passes = 1;
    const double scale = passes / 7.0;

    constexpr int kBufsz = 16384;
    std::array<std::uint8_t, kBufsz> buf;
    std::uint32_t x = 777777;
    for (int i = 0; i < kBufsz; ++i) {
        lcg(x);
        std::uint8_t b = static_cast<std::uint8_t>(
                97 + ((x >> 18) & 7u));
        if ((i & 127) < 48)
            b = static_cast<std::uint8_t>(103 + (i & 127) % 16);
        buf[i] = b;
    }

    std::uint32_t checksum = 0;
    for (int p = 0; p < passes; ++p) {
        std::array<std::uint32_t, 4096> heads{};
        std::uint32_t literals = 0, matches = 0;
        int pos = 0;
        while (pos < kBufsz - 4) {
            const std::uint32_t h =
                    (((static_cast<std::uint32_t>(buf[pos]) << 10)
                      + (static_cast<std::uint32_t>(buf[pos + 1])
                         << 5)
                      + buf[pos + 2])
                     * 0x9E3779B1u)
                            >> 20
                    & 4095u;
            const std::uint32_t cand = heads[h];
            heads[h] = static_cast<std::uint32_t>(pos) + 1;
            bool emitted_match = false;
            if (cand != 0) {
                const int cpos = static_cast<int>(cand) - 1;
                int len = 0;
                while (pos + len < kBufsz && len < 64
                       && buf[pos + len] == buf[cpos + len])
                    ++len;
                if (len >= 3) {
                    checksum += static_cast<std::uint32_t>(pos - cpos);
                    checksum += static_cast<std::uint32_t>(len);
                    ++matches;
                    pos += len;
                    emitted_match = true;
                }
            }
            if (!emitted_match) {
                checksum += buf[pos];
                ++literals;
                ++pos;
            }
        }
        checksum += literals + matches;
    }

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("gzip", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, GoMatchesCppModel)
{
    // Model of asm_go.cc, 1 game.
    const int games = 1;
    const double scale = games / 15.0;

    std::uint32_t checksum = 0;
    for (int g = 1; g <= games; ++g) {
        std::array<std::uint8_t, 441> board;
        board.fill(3);
        for (int y = 1; y < 20; ++y)
            for (int xx = 1; xx < 20; ++xx)
                board[y * 21 + xx] = 0;

        std::uint32_t rng = static_cast<std::uint32_t>(g)
                * 0x9E3779B1u;
        int m = 0;
        while (m < 120) {
            lcg(rng);
            const std::uint32_t pt = (rng >> 8) % 361;
            const int idx = static_cast<int>(pt / 19 + 1) * 21
                    + static_cast<int>(pt % 19 + 1);
            if (board[idx] == 0)
                board[idx] = static_cast<std::uint8_t>(1 + (m & 1));
            ++m;
            if (m % 10 != 0)
                continue;
            // Whole-board evaluation.
            for (int y = 1; y < 20; ++y) {
                for (int xx = 1; xx < 20; ++xx) {
                    const int i = y * 21 + xx;
                    const std::uint8_t c = board[i];
                    const std::uint8_t nb[4] = {
                        board[i - 21], board[i + 21], board[i - 1],
                        board[i + 1]};
                    if (c == 0) {
                        int infl = 0;
                        for (std::uint8_t n : nb) {
                            if (n == 1)
                                ++infl;
                            if (n == 2)
                                --infl;
                        }
                        checksum += static_cast<std::uint32_t>(infl);
                    } else {
                        int libs = 0;
                        for (std::uint8_t n : nb)
                            if (n == 0)
                                ++libs;
                        if (libs == 0)
                            checksum -= 5;
                        else
                            checksum += static_cast<std::uint32_t>(
                                    libs * c);
                    }
                }
            }
        }
    }

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("go", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, McfMatchesCppModel)
{
    // Model of asm_mcf.cc, 1 round.
    const int rounds = 1;
    const double scale = rounds / 24.0;

    constexpr int kArcs = 3000, kNodes = 256;
    struct Arc
    {
        std::uint32_t from, to;
        std::int32_t cost;
    };
    std::vector<Arc> arcs(kArcs);
    std::uint32_t x = 424242;
    for (int i = 0; i < kArcs; ++i) {
        lcg(x);
        arcs[i].from = (x >> 9) & 255u;
        arcs[i].to = (x >> 17) & 255u;
        arcs[i].cost = (i * 13) % 997 + 3;
    }
    std::array<std::int32_t, kNodes> pot;
    for (int n = 0; n < kNodes; ++n)
        pot[n] = 7 * n;

    std::uint32_t checksum = 0;
    for (int r = 0; r < rounds; ++r) {
        std::array<std::int32_t, kNodes> best;
        best.fill(0x7FFFFFFF);
        for (const Arc& a : arcs) {
            const std::int32_t rc = a.cost + pot[a.from] - pot[a.to];
            if (rc < best[a.to])
                best[a.to] = rc;
        }
        for (int n = 0; n < kNodes; ++n) {
            if (best[n] == 0x7FFFFFFF)
                continue;
            pot[n] -= best[n] >> 3;
            checksum += static_cast<std::uint32_t>(best[n]);
        }
    }

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("mcf", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, PerlMatchesCppModel)
{
    // Model of asm_perl.cc, 1 pass of 3 rounds.
    const int passes = 1;
    const double scale = passes / 10.0;

    std::array<std::uint8_t, 26> lettval;
    for (int c = 0; c < 26; ++c)
        lettval[c] = static_cast<std::uint8_t>((7 * c) % 9 + 1);

    struct Word
    {
        int len;
        std::array<std::uint8_t, 16> chars;
    };
    std::vector<Word> words(256);
    std::uint32_t x = 31415926;
    for (int w = 0; w < 256; ++w) {
        lcg(x);
        words[w].len = 3 + static_cast<int>((x >> 7) & 7u);
        for (int j = 0; j < words[w].len; ++j) {
            lcg(x);
            words[w].chars[j] =
                    static_cast<std::uint8_t>(97 + (x >> 11) % 26);
        }
    }
    auto hashOf = [](const Word& w) {
        std::uint32_t h = 0;
        for (int j = 0; j < w.len; ++j)
            h = h * 31 + w.chars[j];
        return h;
    };

    std::uint32_t checksum = 0;
    for (int p = 0; p < passes; ++p) {
        for (int round = 0; round < 3; ++round) {
            std::array<std::uint32_t, 512> hkey{}, hval{};
            for (const Word& w : words) {
                const std::uint32_t h = hashOf(w);
                std::uint32_t score = 0;
                for (int j = 0; j < w.len; ++j)
                    score += lettval[w.chars[j] - 97];
                if (w.len > 6)
                    score *= 2;
                checksum += score;
                std::uint32_t idx = h & 511u;
                while (hkey[idx] != 0 && hkey[idx] != h)
                    idx = (idx + 1) & 511u;
                hkey[idx] = h;
                hval[idx] = score;
            }
            std::uint32_t y = 271828182;
            for (int q = 0; q < 512; ++q) {
                lcg(y);
                const std::uint32_t t = (y >> 10) % 320;
                const std::uint32_t h =
                        t >= 256 ? (y | 1u) : hashOf(words[t]);
                std::uint32_t idx = h & 511u;
                bool hit = false;
                while (hkey[idx] != 0) {
                    if (hkey[idx] == h) {
                        checksum += hval[idx];
                        hit = true;
                        break;
                    }
                    idx = (idx + 1) & 511u;
                }
                if (!hit)
                    checksum += 1;
            }
        }
    }

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("perl", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

TEST(WorkloadSemantics, Cc1MatchesCppModel)
{
    // Model of asm_cc1.cc: replicate the generator's statement
    // stream (including the byte-length accounting that decides how
    // many statements fit) and evaluate each statement directly —
    // the recursive-descent parser must compute the same values.
    const int passes = 1;
    const double scale = passes / 12.0;

    struct Stmt
    {
        int lhs, shape;
        std::uint32_t v2, v3, n1;
    };
    std::vector<Stmt> stmts;

    auto digits = [](std::uint32_t n) {
        return n >= 100 ? 3 : n >= 10 ? 2 : 1;
    };

    std::uint32_t x = 987654321;
    std::uint32_t ptr = 0;
    const std::uint32_t limit = 12224;
    while (ptr < limit) {
        lcg(x);
        Stmt s;
        s.lhs = static_cast<int>((x >> 4) % 26);
        s.v2 = (x >> 9) % 26;
        s.v3 = (x >> 14) % 26;
        s.n1 = (x >> 16) % 999 + 1;
        s.shape = static_cast<int>((x >> 22) & 3);
        stmts.push_back(s);

        const int d = digits(s.n1);
        switch (s.shape) {
          case 0: ptr += 4 + d + 3 + 2; break;
          case 1: ptr += 4 + 3 + d + 3 + 2; break;
          case 2: ptr += 4 + d + 4 + 2; break;
          default: ptr += 4 + 3 + d + 3 + 2; break;
        }
    }

    std::array<std::uint32_t, 26> vars{};
    std::uint32_t checksum = 0;
    for (int p = 0; p < passes; ++p) {
        for (const Stmt& s : stmts) {
            std::uint32_t value = 0;
            switch (s.shape) {
              case 0: value = s.n1 + vars[s.v2]; break;
              case 1: value = vars[s.v2] * (s.n1 + vars[s.v3]); break;
              case 2: value = s.n1 * 7 + vars[s.v2]; break;
              default: value = (vars[s.v2] + s.n1) * 3; break;
            }
            vars[s.lhs] = value;
            checksum += value;
        }
    }

    const auto expected = static_cast<std::int32_t>(checksum);
    const sim::TraceResult result = runWorkload("cc1", scale);
    EXPECT_EQ(result.output, std::to_string(expected));
}

} // namespace
} // namespace vpred::workloads
