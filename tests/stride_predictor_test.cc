/**
 * @file
 * Unit tests for the confidence-guarded stride predictor.
 */

#include <gtest/gtest.h>

#include "core/stride_predictor.hh"
#include "core/stats.hh"

namespace vpred
{
namespace
{

TEST(StridePredictor, LearnsAStrideAfterTwoValues)
{
    StridePredictor p(8);
    p.update(1, 10);
    p.update(1, 14);  // stride 4 learned
    EXPECT_EQ(p.predict(1), 18u);
}

TEST(StridePredictor, PerfectOnStrideAfterWarmup)
{
    StridePredictor p(8);
    PredictorStats s;
    for (int i = 0; i < 100; ++i)
        s.record(p.predictAndUpdate(5, 1000 + 12 * i));
    EXPECT_GE(s.correct, 98u);
}

TEST(StridePredictor, ConstantPatternIsAStrideOfZero)
{
    StridePredictor p(8);
    PredictorStats s;
    for (int i = 0; i < 50; ++i)
        s.record(p.predictAndUpdate(5, 77));
    // Two cold-start misses: the unknown value, then the bogus
    // 0 -> 77 stride it induced; a zero stride from there on.
    EXPECT_EQ(s.correct, 48u);
}

TEST(StridePredictor, NegativeStrides)
{
    StridePredictor p(8);
    p.update(2, 100);
    p.update(2, 90);
    EXPECT_EQ(p.predict(2), 80u);
}

TEST(StridePredictor, LoopResetCostsOneMispredictionWhenConfident)
{
    // 0 1 2 3 4 5 6 | 0 1 2 ... : a saturated entry keeps its stride
    // across the reset, so exactly one misprediction per wrap.
    StridePredictor p(8);
    // Warm up to saturation.
    for (int i = 0; i < 20; ++i)
        p.predictAndUpdate(9, i);
    ASSERT_EQ(p.confidenceAt(9), 7u);

    int wrong = 0;
    for (int lap = 0; lap < 3; ++lap) {
        for (int i = 0; i < 7; ++i) {
            if (!p.predictAndUpdate(9, i))
                ++wrong;
        }
    }
    EXPECT_EQ(wrong, 3);  // one per reset
}

TEST(StridePredictor, StrideFrozenOnlyAtSaturation)
{
    StridePredictor p(8);
    p.update(3, 0);
    p.update(3, 5);     // stride 5, confidence low
    p.update(3, 100);   // mispredict; stride replaced (conf < max)
    EXPECT_EQ(p.predict(3), 195u);
}

TEST(StridePredictor, ConfidenceTracksOutcomes)
{
    StridePredictor p(8);
    for (int i = 0; i < 10; ++i)
        p.predictAndUpdate(4, 3 * i);
    EXPECT_EQ(p.confidenceAt(4), 7u);
    p.predictAndUpdate(4, 999);  // wrong
    EXPECT_EQ(p.confidenceAt(4), 5u);
}

TEST(StridePredictor, WrapAroundAtValueWidth)
{
    StridePredictor p(8, 32);
    p.update(6, 0xFFFFFFFE);
    p.update(6, 0xFFFFFFFF);
    EXPECT_EQ(p.predict(6), 0u);  // wraps modulo 2^32
}

TEST(StridePredictor, StorageModel)
{
    // Paper accounting: last value + stride + 3-bit counter.
    EXPECT_EQ(StridePredictor(10, 32).storageBits(),
              1024u * (32 + 32 + 3));

    StridePredictor::Config cfg;
    cfg.table_bits = 10;
    cfg.count_counter_bits = false;
    EXPECT_EQ(StridePredictor(cfg).storageBits(), 1024u * 64);
}

TEST(StridePredictor, TableAliasing)
{
    StridePredictor p(2);  // 4 entries
    p.update(0, 10);
    p.update(4, 500);  // same entry (index 0)
    p.update(0, 20);
    // Entry state was polluted by pc 4.
    EXPECT_NE(p.predict(0), 30u);
}

} // namespace
} // namespace vpred
