/**
 * @file
 * Unit tests for accuracy accounting and runTrace().
 */

#include <gtest/gtest.h>

#include "core/last_value_predictor.hh"
#include "core/stats.hh"

namespace vpred
{
namespace
{

TEST(PredictorStats, RecordAndAccuracy)
{
    PredictorStats s;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.0);  // no division by zero
    s.record(true);
    s.record(false);
    s.record(true);
    s.record(true);
    EXPECT_EQ(s.predictions, 4u);
    EXPECT_EQ(s.correct, 3u);
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.75);
}

TEST(PredictorStats, AdditionIsPredictionWeighted)
{
    PredictorStats a{.predictions = 100, .correct = 90};
    PredictorStats b{.predictions = 900, .correct = 90};
    PredictorStats sum = a;
    sum += b;
    EXPECT_EQ(sum.predictions, 1000u);
    EXPECT_EQ(sum.correct, 180u);
    // The paper's weighted mean, not the mean of means:
    EXPECT_DOUBLE_EQ(sum.accuracy(), 0.18);
    EXPECT_NE(sum.accuracy(), (a.accuracy() + b.accuracy()) / 2);
}

TEST(PredictorStats, Equality)
{
    PredictorStats a{.predictions = 5, .correct = 2};
    PredictorStats b{.predictions = 5, .correct = 2};
    EXPECT_EQ(a, b);
    b.correct = 3;
    EXPECT_NE(a, b);
}

TEST(RunTrace, CountsEveryRecordInOrder)
{
    // Constant per pc: only each pc's first occurrence misses.
    ValueTrace trace;
    for (int i = 0; i < 30; ++i)
        trace.push_back({static_cast<Pc>(i % 3), 42});
    LastValuePredictor p(4);
    const PredictorStats s = runTrace(p, trace);
    EXPECT_EQ(s.predictions, 30u);
    EXPECT_EQ(s.correct, 27u);
}

TEST(RunTrace, EmptyTrace)
{
    LastValuePredictor p(4);
    const PredictorStats s = runTrace(p, {});
    EXPECT_EQ(s.predictions, 0u);
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.0);
}

} // namespace
} // namespace vpred
