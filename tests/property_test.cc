/**
 * @file
 * Property-style parameterized tests over table geometries: the
 * paper's qualitative claims must hold for *every* configuration,
 * not just the ones plotted.
 */

#include <gtest/gtest.h>

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/predictor_factory.hh"
#include "core/stride_predictor.hh"
#include "core/stats.hh"
#include "tracegen/mixer.hh"
#include "tracegen/pattern.hh"

namespace vpred
{
namespace
{

/** Stride-rich mixed trace (the regime the DFCM is built for). */
ValueTrace
strideRichTrace(std::uint64_t seed, std::size_t records)
{
    tracegen::MixSpec spec;
    spec.stride_instructions = 24;
    spec.constant_instructions = 6;
    spec.context_instructions = 6;
    spec.random_instructions = 2;
    spec.seed = seed;
    return tracegen::makeMixedTrace(spec, records);
}

using Geometry = std::tuple<unsigned, unsigned>;  // (l1_bits, l2_bits)

class GeometrySweep : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(GeometrySweep, DfcmBeatsFcmOnStrideRichTraces)
{
    // The paper's core claim, as an invariant across geometries.
    const auto [l1, l2] = GetParam();
    const ValueTrace trace = strideRichTrace(l1 * 100 + l2, 80000);

    FcmPredictor fcm({.l1_bits = l1, .l2_bits = l2});
    DfcmPredictor dfcm({.l1_bits = l1, .l2_bits = l2});
    const double fcm_acc = runTrace(fcm, trace).accuracy();
    const double dfcm_acc = runTrace(dfcm, trace).accuracy();
    EXPECT_GT(dfcm_acc, fcm_acc)
            << "l1=" << l1 << " l2=" << l2;
}

TEST_P(GeometrySweep, PredictionsAreDeterministic)
{
    const auto [l1, l2] = GetParam();
    const ValueTrace trace = strideRichTrace(7, 20000);

    DfcmPredictor a({.l1_bits = l1, .l2_bits = l2});
    DfcmPredictor b({.l1_bits = l1, .l2_bits = l2});
    EXPECT_EQ(runTrace(a, trace), runTrace(b, trace));
}

TEST_P(GeometrySweep, PredictIsSideEffectFree)
{
    const auto [l1, l2] = GetParam();
    DfcmPredictor p({.l1_bits = l1, .l2_bits = l2});
    FcmPredictor q({.l1_bits = l1, .l2_bits = l2});
    for (int i = 0; i < 500; ++i) {
        p.update(i % 17, 3 * i);
        q.update(i % 17, 3 * i);
    }
    const Value v1 = p.predict(5);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(p.predict(5), v1);
        EXPECT_EQ(q.predict(5), q.predict(5));
    }
}

TEST_P(GeometrySweep, StorageAccountingMatchesFormulas)
{
    const auto [l1, l2] = GetParam();
    FcmPredictor fcm({.l1_bits = l1, .l2_bits = l2});
    DfcmPredictor dfcm({.l1_bits = l1, .l2_bits = l2});
    EXPECT_EQ(fcm.storageBits(),
              (1ull << l1) * l2 + (1ull << l2) * 32);
    EXPECT_EQ(dfcm.storageBits(),
              (1ull << l1) * (l2 + 32) + (1ull << l2) * 32);
    // DFCM always costs more at equal geometry (the last values).
    EXPECT_GT(dfcm.storageBits(), fcm.storageBits());
}

INSTANTIATE_TEST_SUITE_P(
        Geometries, GeometrySweep,
        ::testing::Combine(::testing::Values(6u, 8u, 10u, 12u),
                           ::testing::Values(8u, 10u, 12u, 14u)),
        [](const auto& param_info) {
            return "l1_" + std::to_string(std::get<0>(param_info.param))
                    + "_l2_"
                    + std::to_string(std::get<1>(param_info.param));
        });

class StrideWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StrideWidthSweep, NarrowStridesNeverBeatFullWidth)
{
    // Section 4.4: narrowing the stored stride can only lose
    // accuracy (it is a lossy compression of the level-2 payload).
    const unsigned bits = GetParam();
    const ValueTrace trace = strideRichTrace(99, 60000);

    DfcmPredictor full({.l1_bits = 10, .l2_bits = 12});
    DfcmPredictor narrow(
            {.l1_bits = 10, .l2_bits = 12, .stride_bits = bits});
    const double acc_full = runTrace(full, trace).accuracy();
    const double acc_narrow = runTrace(narrow, trace).accuracy();
    EXPECT_LE(acc_narrow, acc_full + 1e-9) << "stride bits " << bits;
    // Even 8-bit strides retain most of the benefit on small-stride
    // data (the paper's .05-.08 drop).
    if (bits >= 8) {
        EXPECT_GT(acc_narrow, acc_full - 0.25);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, StrideWidthSweep,
                         ::testing::Values(4u, 8u, 12u, 16u, 24u, 32u),
                         [](const auto& param_info) {
                             return "sb"
                                     + std::to_string(param_info.param);
                         });

class DelaySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DelaySweep, DelayNeverHelpsOnTightLoops)
{
    const unsigned delay = GetParam();
    ValueTrace trace;
    for (int i = 0; i < 30000; ++i)
        trace.push_back({static_cast<Pc>(i % 3),
                         static_cast<Value>(7 * i + (i % 3))});

    PredictorConfig cfg;
    cfg.kind = PredictorKind::Dfcm;
    cfg.l1_bits = 8;
    cfg.l2_bits = 10;
    auto baseline = makePredictor(cfg);
    cfg.update_delay = delay;
    auto delayed = makePredictor(cfg);

    const double acc0 = runTrace(*baseline, trace).accuracy();
    const double accd = runTrace(*delayed, trace).accuracy();
    EXPECT_LE(accd, acc0 + 1e-9) << "delay " << delay;
}

INSTANTIATE_TEST_SUITE_P(Delays, DelaySweep,
                         ::testing::Values(0u, 4u, 16u, 64u, 256u),
                         [](const auto& param_info) {
                             std::string name("d");
                             name += std::to_string(param_info.param);
                             return name;
                         });

TEST(Property, LargerL2NeverHurtsMuchOnAverage)
{
    // Growing the level-2 table monotonically reduces interference on
    // a fixed trace (allowing a tiny tolerance for hash accidents).
    const ValueTrace trace = strideRichTrace(1234, 80000);
    double prev = 0.0;
    for (unsigned l2 : {8u, 10u, 12u, 14u, 16u}) {
        FcmPredictor fcm({.l1_bits = 12, .l2_bits = l2});
        const double acc = runTrace(fcm, trace).accuracy();
        EXPECT_GT(acc, prev - 0.02) << "l2=" << l2;
        prev = acc;
    }
}

TEST(Property, FcmAndDfcmComparableOnPureContextPatterns)
{
    // Section 3: "Both forms of storing the history are equivalent"
    // for non-stride patterns — with ample tables the two predictors
    // should score nearly the same on pure repeating sequences.
    tracegen::MixSpec spec;
    spec.stride_instructions = 0;
    spec.constant_instructions = 0;
    spec.context_instructions = 12;
    spec.random_instructions = 0;
    spec.context_period = 9;
    spec.seed = 4242;
    const ValueTrace trace = tracegen::makeMixedTrace(spec, 60000);

    FcmPredictor fcm({.l1_bits = 12, .l2_bits = 16});
    DfcmPredictor dfcm({.l1_bits = 12, .l2_bits = 16});
    const double fa = runTrace(fcm, trace).accuracy();
    const double da = runTrace(dfcm, trace).accuracy();
    EXPECT_GT(fa, 0.9);
    EXPECT_NEAR(fa, da, 0.05);
}

TEST(Property, DfcmDegeneratesToStrideOnPureStrideData)
{
    // With only stride instructions, the DFCM should approach the
    // stride predictor's accuracy (every pattern collapses to a
    // constant-difference history).
    tracegen::MixSpec spec;
    spec.stride_instructions = 16;
    spec.constant_instructions = 0;
    spec.context_instructions = 0;
    spec.random_instructions = 0;
    spec.seed = 777;
    const ValueTrace trace = tracegen::makeMixedTrace(spec, 60000);

    StridePredictor stride(12);
    DfcmPredictor dfcm({.l1_bits = 12, .l2_bits = 12});
    const double sa = runTrace(stride, trace).accuracy();
    const double da = runTrace(dfcm, trace).accuracy();
    EXPECT_GT(da, sa - 0.05);
}

TEST(Property, HybridOracleIsAnUpperBoundOfComponents)
{
    const ValueTrace trace = strideRichTrace(777, 60000);
    for (unsigned l2 : {8u, 12u, 16u}) {
        PredictorConfig cfg;
        cfg.l1_bits = 10;
        cfg.l2_bits = l2;

        cfg.kind = PredictorKind::Fcm;
        auto fcm = makePredictor(cfg);
        cfg.kind = PredictorKind::Stride;
        auto stride = makePredictor(cfg);
        cfg.kind = PredictorKind::PerfectStrideFcm;
        auto hybrid = makePredictor(cfg);

        const auto sf = runTrace(*fcm, trace);
        const auto ss = runTrace(*stride, trace);
        const auto sh = runTrace(*hybrid, trace);
        EXPECT_GE(sh.correct, sf.correct) << "l2=" << l2;
        EXPECT_GE(sh.correct, ss.correct) << "l2=" << l2;
    }
}

} // namespace
} // namespace vpred
