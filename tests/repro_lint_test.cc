/**
 * @file
 * Self-tests for tools/repro-lint, driven by the deliberately broken
 * fixture trees under tests/lint_fixtures/. Each rule class is
 * demonstrated firing on bad_tree, the suppression comment is shown
 * silencing a finding, clean_tree exits with zero findings — and the
 * real repository tree is linted from ctest so a layering or
 * determinism regression fails the suite, not just tools/check.sh.
 *
 * REPRO_LINT_FIXTURE_DIR and REPRO_LINT_REPO_ROOT are injected by
 * tests/CMakeLists.txt as absolute paths.
 */

#include "repro_lint/lint.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace
{

using repro_lint::Finding;
using repro_lint::Tree;

std::filesystem::path
fixtureDir()
{
    return std::filesystem::path(REPRO_LINT_FIXTURE_DIR);
}

const std::vector<Finding>&
badTreeFindings()
{
    static const std::vector<Finding> findings = [] {
        const Tree tree = repro_lint::loadTree(fixtureDir() / "bad_tree");
        return repro_lint::runAllRules(tree);
    }();
    return findings;
}

std::vector<Finding>
findingsAt(const std::string& file, const std::string& rule)
{
    std::vector<Finding> out;
    for (const Finding& f : badTreeFindings())
        if (f.file == file && f.rule == rule)
            out.push_back(f);
    return out;
}

bool
anyFindingOnLine(const std::string& file, int line)
{
    return std::any_of(badTreeFindings().begin(), badTreeFindings().end(),
                       [&](const Finding& f) {
                           return f.file == file && f.line == line;
                       });
}

TEST(ReproLintLayering, CoreIncludingHarnessViolatesDag)
{
    const auto hits =
            findingsAt("src/core/bad_layering.hh", "layering/include-dag");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 5);
    EXPECT_NE(hits[0].message.find("harness/parallel_sweep.hh"),
              std::string::npos);
}

TEST(ReproLintLayering, IncludingCcFileIsBanned)
{
    const auto hits =
            findingsAt("src/core/bad_layering.hh", "layering/cc-include");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 6);
}

TEST(ReproLintDeterminism, EntropyCallsAreFlagged)
{
    const auto hits = findingsAt("bench/bad_determinism.cc",
                                 "determinism/banned-call");
    ASSERT_EQ(hits.size(), 3u);  // rand, time, random_device
    EXPECT_EQ(hits[0].line, 9);
    EXPECT_EQ(hits[1].line, 10);
    EXPECT_EQ(hits[2].line, 11);
}

TEST(ReproLintDeterminism, UnorderedIterationIsFlagged)
{
    const auto hits = findingsAt("bench/bad_determinism.cc",
                                 "determinism/unordered-iteration");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 15);
    EXPECT_NE(hits[0].message.find("counts"), std::string::npos);
}

TEST(ReproLintDeterminism, CommentMentionsAreNotFlagged)
{
    // Line 2 of the fixture names rand() and time() inside a comment.
    EXPECT_FALSE(anyFindingOnLine("bench/bad_determinism.cc", 2));
}

TEST(ReproLintPredictor, FactoryClassWithoutTestIsFlagged)
{
    const auto hits = findingsAt("src/core/predictor_factory.cc",
                                 "predictor/missing-test");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 9);
    EXPECT_NE(hits[0].message.find("UncoveredPredictor"),
              std::string::npos);
    // CoveredPredictor on line 8 is matched by its fixture test.
    EXPECT_FALSE(
            anyFindingOnLine("src/core/predictor_factory.cc", 8));
}

TEST(ReproLintPredictor, FusedOverrideWithoutReferencePathIsFlagged)
{
    const auto hits = findingsAt("src/core/bad_fused.hh",
                                 "predictor/fused-without-reference");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 5);
    EXPECT_NE(hits[0].message.find("BadFused"), std::string::npos);
    // GoodFused keeps predict()/update() and stays clean.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_fused.hh", 11));
}

TEST(ReproLintParse, RawAtoiIsFlagged)
{
    const auto hits = findingsAt("bench/bad_parse.cc", "parse/raw-call");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 7);
}

TEST(ReproLintParse, AllowCommentSuppressesByPrefix)
{
    // Line 8 carries "// repro-lint: allow(parse)".
    EXPECT_FALSE(anyFindingOnLine("bench/bad_parse.cc", 8));
}

TEST(ReproLintPortability, IntrinsicHeadersAndCallsAreFlagged)
{
    const auto hits = findingsAt("src/core/bad_intrinsics.hh",
                                 "portability/raw-intrinsic");
    ASSERT_EQ(hits.size(), 5u);
    EXPECT_EQ(hits[0].line, 4);  // #include <immintrin.h>
    EXPECT_NE(hits[0].message.find("immintrin.h"), std::string::npos);
    EXPECT_EQ(hits[1].line, 5);   // #include <arm_neon.h>
    EXPECT_EQ(hits[2].line, 8);   // _mm256_storeu_si256
    EXPECT_EQ(hits[3].line, 9);   // vld1q_u32
    EXPECT_EQ(hits[4].line, 10);  // _mm512_storeu_si512: a stray
                                  // AVX-512 intrinsic outside
                                  // src/core/simd.hh must fire too
    EXPECT_NE(hits[2].message.find("src/core/simd.hh"),
              std::string::npos);
}

TEST(ReproLintPortability, AllowCommentSuppressesByPrefix)
{
    // Line 11 carries "// repro-lint: allow(portability)".
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_intrinsics.hh", 11));
}

TEST(ReproLintPortability, SimdHeaderHomeIsExempt)
{
    // clean_tree carries a src/core/simd.hh full of intrinsics; the
    // CleanTree test below proves it produces no findings. Also check
    // the exemption directly at the rule level.
    const Tree tree = repro_lint::loadTree(fixtureDir() / "clean_tree");
    ASSERT_NE(tree.find("src/core/simd.hh"), nullptr);
    std::vector<Finding> out;
    repro_lint::checkPortability(tree, out);
    EXPECT_TRUE(out.empty());
}

TEST(ReproLintPortability, RawMmapApisAreFlagged)
{
    const auto hits = findingsAt("src/core/bad_mmap.cc",
                                 "portability/raw-mmap");
    ASSERT_EQ(hits.size(), 4u);
    EXPECT_EQ(hits[0].line, 2);  // #include <sys/mman.h>
    EXPECT_NE(hits[0].message.find("sys/mman.h"), std::string::npos);
    EXPECT_EQ(hits[1].line, 7);   // ::mmap — qualified call still hits
    EXPECT_EQ(hits[2].line, 9);   // madvise
    EXPECT_EQ(hits[3].line, 15);  // munmap
    EXPECT_NE(hits[1].message.find("table_arena.hh"),
              std::string::npos);
}

TEST(ReproLintPortability, RawMmapAllowCommentAndNonCodeAreExempt)
{
    // Line 10's aligned_alloc carries "repro-lint: allow(portability)";
    // line 12 names mmap/munmap in a comment, line 13 in a string
    // literal — none of them are uses.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_mmap.cc", 10));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_mmap.cc", 12));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_mmap.cc", 13));
}

TEST(ReproLintPortability, TableArenaHomeIsExemptFromRawMmap)
{
    // clean_tree carries a src/core/table_arena.hh full of mmap
    // calls; the sanctioned-home exemption must keep it clean.
    const Tree tree = repro_lint::loadTree(fixtureDir() / "clean_tree");
    ASSERT_NE(tree.find("src/core/table_arena.hh"), nullptr);
    std::vector<Finding> out;
    repro_lint::checkPortability(tree, out);
    EXPECT_TRUE(out.empty());
}

TEST(ReproLintConcurrency, LocksInHotPathFileAreFlagged)
{
    const auto hits = findingsAt("src/core/bad_hot_path.hh",
                                 "concurrency/lock-in-hot-path");
    ASSERT_EQ(hits.size(), 5u);
    EXPECT_EQ(hits[0].line, 4);  // #include <mutex>
    EXPECT_NE(hits[0].message.find("<mutex>"), std::string::npos);
    EXPECT_EQ(hits[1].line, 5);   // #include <condition_variable>
    EXPECT_EQ(hits[2].line, 10);  // std::mutex member
    EXPECT_EQ(hits[3].line, 11);  // std::condition_variable member
    EXPECT_EQ(hits[4].line, 12);  // lock_guard (one finding per line)
    EXPECT_NE(hits[2].message.find("SPSC rings"), std::string::npos)
            << hits[2].message;
    // <atomic> and std::atomic stay legal on the hot path.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_hot_path.hh", 6));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_hot_path.hh", 14));
}

TEST(ReproLintConcurrency, AllowCommentMarksTheColdPath)
{
    // Line 13 carries "// repro-lint: allow(concurrency)".
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_hot_path.hh", 13));
}

TEST(ReproLintConcurrency, FilesWithoutTheMarkerAreExempt)
{
    // clean_tree's cold_path.hh is full of mutexes but never opts
    // in; the rule must not touch it.
    const Tree tree = repro_lint::loadTree(fixtureDir() / "clean_tree");
    ASSERT_NE(tree.find("src/core/cold_path.hh"), nullptr);
    std::vector<Finding> out;
    repro_lint::checkConcurrency(tree, out);
    EXPECT_TRUE(out.empty());
}

TEST(ReproLintAtomics, DefaultedOrdersInHotPathAreFlagged)
{
    const auto hits = findingsAt("src/core/bad_atomics.hh",
                                 "concurrency/implicit-seq-cst");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].line, 20);  // head.load()
    EXPECT_EQ(hits[1].line, 21);  // head.store(h + 1)
    EXPECT_NE(hits[0].message.find("head.load"), std::string::npos);
    // Explicit relaxed (22) and seq_cst (23) orders, the allow
    // comment (24), and the non-atomic receiver plain.load() (25)
    // all stay clean.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_atomics.hh", 22));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_atomics.hh", 23));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_atomics.hh", 24));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_atomics.hh", 25));
}

TEST(ReproLintStatus, TryApiWithoutNodiscardIsFlaggedAtItsDecl)
{
    const auto hits = findingsAt("src/core/bad_status.hh",
                                 "api/missing-nodiscard");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 6);
    EXPECT_NE(hits[0].message.find("BadRing::tryPush"),
              std::string::npos);
    // tryPop already carries [[nodiscard]] (7); tryReset returns
    // void (8); neither is a finding.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_status.hh", 7));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_status.hh", 8));
}

TEST(ReproLintStatus, DiscardedStatusesAreFlaggedOnlyWhenResolved)
{
    const auto hits = findingsAt("src/core/bad_status_use.cc",
                                 "api/unconsumed-status");
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0].line, 10);  // r.tryPop(v); at statement level
    EXPECT_EQ(hits[1].line, 13);  // discarded inside an if body
    EXPECT_EQ(hits[2].line, 15);  // m.insert(1); receiver resolved
    EXPECT_NE(hits[0].message.find("BadRing::tryPop"),
              std::string::npos);
    EXPECT_NE(hits[2].message.find("BadMap::insert"),
              std::string::npos);
    // The sanctioned (void) cast (11), the consumed condition (12),
    // the assignment (14), the std::set receiver (17), and the
    // not-yet-[[nodiscard]] tryPush (18) all stay clean.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_status_use.cc", 11));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_status_use.cc", 12));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_status_use.cc", 14));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_status_use.cc", 17));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_status_use.cc", 18));
}

TEST(ReproLintEnvDoc, DriftIsFlaggedInBothDirections)
{
    const auto undoc =
            findingsAt("src/core/bad_env.cc", "api/env-doc-drift");
    ASSERT_EQ(undoc.size(), 1u);
    EXPECT_EQ(undoc[0].line, 8);
    EXPECT_NE(undoc[0].message.find("REPRO_FIX_UNDOCUMENTED"),
              std::string::npos);
    const auto ghost = findingsAt("docs/api.md", "api/env-doc-drift");
    ASSERT_EQ(ghost.size(), 1u);
    EXPECT_EQ(ghost[0].line, 4);
    EXPECT_NE(ghost[0].message.find("REPRO_FIX_GHOST"),
              std::string::npos);
    // The documented knob read on line 7 is clean in both places.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_env.cc", 7));
}

TEST(ReproLintToken, RawStringWithCustomDelimiterIsOneToken)
{
    const auto toks = repro_lint::tokenize(
            "auto s = R\"x(\"quote\" // not a comment)x\"; int y;");
    int strings = 0;
    int comments = 0;
    bool saw_y = false;
    std::string contents;
    for (const repro_lint::Token& t : toks) {
        if (t.kind == repro_lint::TokKind::String) {
            ++strings;
            contents = repro_lint::tokenContents(t);
        }
        if (t.kind == repro_lint::TokKind::Comment)
            ++comments;
        if (t.kind == repro_lint::TokKind::Identifier
            && t.spelling == "y")
            saw_y = true;
    }
    EXPECT_EQ(strings, 1);
    EXPECT_EQ(comments, 0);  // the // lives inside the raw string
    EXPECT_TRUE(saw_y);      // tokenization resumes after it
    EXPECT_EQ(contents, "\"quote\" // not a comment");
}

TEST(ReproLintToken, DigitSeparatorsAreNotCharLiterals)
{
    const auto toks =
            repro_lint::tokenize("int x = 1'000'000; char c = 'a';");
    int numbers = 0;
    int chars = 0;
    for (const repro_lint::Token& t : toks) {
        if (t.kind == repro_lint::TokKind::Number) {
            ++numbers;
            EXPECT_EQ(t.spelling, "1'000'000");
        }
        if (t.kind == repro_lint::TokKind::CharLit) {
            ++chars;
            EXPECT_EQ(repro_lint::tokenContents(t), "a");
        }
    }
    EXPECT_EQ(numbers, 1);  // one pp-number, not three char openers
    EXPECT_EQ(chars, 1);
}

TEST(ReproLintToken, LineSplicedCommentSwallowsTheContinuation)
{
    const auto toks = repro_lint::tokenize(
            "// spliced \\\nstd::mutex m;\nint z = 0;");
    bool saw_mutex = false;
    int z_line = 0;
    for (const repro_lint::Token& t : toks) {
        if (t.kind == repro_lint::TokKind::Identifier
            && t.spelling == "mutex")
            saw_mutex = true;
        if (t.kind == repro_lint::TokKind::Identifier
            && t.spelling == "z")
            z_line = t.line;
    }
    EXPECT_FALSE(saw_mutex);  // line 2 is comment continuation
    EXPECT_EQ(z_line, 3);     // raw line numbers survive the splice
}

TEST(ReproLintSarif, LogCarriesRulesAndResultLocations)
{
    const std::vector<Finding> fs{{"src/core/x.hh", 12,
                                   "api/unconsumed-status",
                                   "boom \"quoted\""}};
    const std::string sarif = repro_lint::formatSarif(fs);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"api/unconsumed-status\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"uri\": \"src/core/x.hh\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
    EXPECT_NE(sarif.find("\\\"quoted\\\""), std::string::npos);
    // Every cataloged rule is declared in the driver table.
    for (const repro_lint::RuleInfo& r : repro_lint::ruleCatalog())
        EXPECT_NE(sarif.find(std::string("\"id\": \"") + r.id + "\""),
                  std::string::npos)
                << r.id;
}

TEST(ReproLintBaseline, EntriesMatchIgnoringLineAndReportStale)
{
    std::vector<Finding> fs{
        {"a.cc", 10, "r/one", "m1"},
        {"b.cc", 20, "r/two", "m2"},
    };
    const std::vector<repro_lint::BaselineEntry> base{
        {"a.cc", "r/one", "m1"},   // matches even at a new line
        {"c.cc", "r/gone", "m3"},  // matches nothing: stale
    };
    std::vector<repro_lint::BaselineEntry> stale;
    const auto kept =
            repro_lint::applyBaseline(std::move(fs), base, &stale);
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].file, "b.cc");
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].file, "c.cc");
}

TEST(ReproLintBaseline, RoundTripsThroughAFile)
{
    const Finding f{"src/x.cc", 3, "api/env-doc-drift",
                    "msg with | pipe"};
    const std::filesystem::path p =
            std::filesystem::path(::testing::TempDir())
            / "repro_lint_baseline.txt";
    {
        std::ofstream out(p);
        out << "# comment line\n\n"
            << repro_lint::formatBaselineEntry(f) << "\n";
    }
    const auto loaded = repro_lint::loadBaseline(p);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->size(), 1u);
    // Only the first two '|' split; the message keeps its own.
    EXPECT_EQ((*loaded)[0].message, "msg with | pipe");
    std::vector<repro_lint::BaselineEntry> stale;
    const auto kept = repro_lint::applyBaseline({f}, *loaded, &stale);
    EXPECT_TRUE(kept.empty());
    EXPECT_TRUE(stale.empty());
    EXPECT_FALSE(
            repro_lint::loadBaseline(p.string() + ".missing")
                    .has_value());
}

TEST(ReproLintFormat, FindingFormatsAsFileLineRuleMessage)
{
    const Finding f{"src/core/x.hh", 12, "layering/cc-include", "boom"};
    EXPECT_EQ(repro_lint::formatFinding(f),
              "src/core/x.hh:12: [layering/cc-include] boom");
}

TEST(ReproLintSuppression, PrefixMatchesOnlyAtRuleBoundary)
{
    const Tree tree = repro_lint::loadTree(fixtureDir() / "bad_tree");
    const repro_lint::SourceFile* f = tree.find("bench/bad_parse.cc");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->allowed(8, "parse/raw-call"));
    EXPECT_FALSE(f->allowed(8, "parser/raw-call"));
    EXPECT_FALSE(f->allowed(7, "parse/raw-call"));
}

TEST(ReproLintLayerOf, MapsKnownPrefixes)
{
    EXPECT_EQ(repro_lint::layerOf("src/core/dfcm_predictor.hh"), "core");
    EXPECT_EQ(repro_lint::layerOf("src/harness/sweep.hh"), "harness");
    EXPECT_EQ(repro_lint::layerOf("bench/throughput.cc"), "bench");
    EXPECT_EQ(repro_lint::layerOf("examples/vpsim.cpp"), "examples");
    EXPECT_EQ(repro_lint::layerOf("tests/stats_test.cc"), "tests");
    EXPECT_EQ(repro_lint::layerOf("docs/analysis.md"), "");
}

TEST(ReproLintCleanTree, HasNoFindings)
{
    const Tree tree =
            repro_lint::loadTree(fixtureDir() / "clean_tree");
    EXPECT_GE(tree.files.size(), 4u);
    const std::vector<Finding> findings = repro_lint::runAllRules(tree);
    for (const Finding& f : findings)
        ADD_FAILURE() << repro_lint::formatFinding(f);
}

TEST(ReproLintRealTree, RepositoryIsClean)
{
    const Tree tree = repro_lint::loadTree(
            std::filesystem::path(REPRO_LINT_REPO_ROOT));
    // Sanity: the walk found the real sources, not an empty dir.
    ASSERT_GT(tree.files.size(), 100u);
    const std::vector<Finding> findings = repro_lint::runAllRules(tree);
    for (const Finding& f : findings)
        ADD_FAILURE() << repro_lint::formatFinding(f);
}

} // namespace
