/**
 * @file
 * Self-tests for tools/repro-lint, driven by the deliberately broken
 * fixture trees under tests/lint_fixtures/. Each rule class is
 * demonstrated firing on bad_tree, the suppression comment is shown
 * silencing a finding, clean_tree exits with zero findings — and the
 * real repository tree is linted from ctest so a layering or
 * determinism regression fails the suite, not just tools/check.sh.
 *
 * REPRO_LINT_FIXTURE_DIR and REPRO_LINT_REPO_ROOT are injected by
 * tests/CMakeLists.txt as absolute paths.
 */

#include "repro_lint/lint.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

namespace
{

using repro_lint::Finding;
using repro_lint::Tree;

std::filesystem::path
fixtureDir()
{
    return std::filesystem::path(REPRO_LINT_FIXTURE_DIR);
}

const std::vector<Finding>&
badTreeFindings()
{
    static const std::vector<Finding> findings = [] {
        const Tree tree = repro_lint::loadTree(fixtureDir() / "bad_tree");
        return repro_lint::runAllRules(tree);
    }();
    return findings;
}

std::vector<Finding>
findingsAt(const std::string& file, const std::string& rule)
{
    std::vector<Finding> out;
    for (const Finding& f : badTreeFindings())
        if (f.file == file && f.rule == rule)
            out.push_back(f);
    return out;
}

bool
anyFindingOnLine(const std::string& file, int line)
{
    return std::any_of(badTreeFindings().begin(), badTreeFindings().end(),
                       [&](const Finding& f) {
                           return f.file == file && f.line == line;
                       });
}

TEST(ReproLintLayering, CoreIncludingHarnessViolatesDag)
{
    const auto hits =
            findingsAt("src/core/bad_layering.hh", "layering/include-dag");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 5);
    EXPECT_NE(hits[0].message.find("harness/parallel_sweep.hh"),
              std::string::npos);
}

TEST(ReproLintLayering, IncludingCcFileIsBanned)
{
    const auto hits =
            findingsAt("src/core/bad_layering.hh", "layering/cc-include");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 6);
}

TEST(ReproLintDeterminism, EntropyCallsAreFlagged)
{
    const auto hits = findingsAt("bench/bad_determinism.cc",
                                 "determinism/banned-call");
    ASSERT_EQ(hits.size(), 3u);  // rand, time, random_device
    EXPECT_EQ(hits[0].line, 9);
    EXPECT_EQ(hits[1].line, 10);
    EXPECT_EQ(hits[2].line, 11);
}

TEST(ReproLintDeterminism, UnorderedIterationIsFlagged)
{
    const auto hits = findingsAt("bench/bad_determinism.cc",
                                 "determinism/unordered-iteration");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 15);
    EXPECT_NE(hits[0].message.find("counts"), std::string::npos);
}

TEST(ReproLintDeterminism, CommentMentionsAreNotFlagged)
{
    // Line 2 of the fixture names rand() and time() inside a comment.
    EXPECT_FALSE(anyFindingOnLine("bench/bad_determinism.cc", 2));
}

TEST(ReproLintPredictor, FactoryClassWithoutTestIsFlagged)
{
    const auto hits = findingsAt("src/core/predictor_factory.cc",
                                 "predictor/missing-test");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 9);
    EXPECT_NE(hits[0].message.find("UncoveredPredictor"),
              std::string::npos);
    // CoveredPredictor on line 8 is matched by its fixture test.
    EXPECT_FALSE(
            anyFindingOnLine("src/core/predictor_factory.cc", 8));
}

TEST(ReproLintPredictor, FusedOverrideWithoutReferencePathIsFlagged)
{
    const auto hits = findingsAt("src/core/bad_fused.hh",
                                 "predictor/fused-without-reference");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 5);
    EXPECT_NE(hits[0].message.find("BadFused"), std::string::npos);
    // GoodFused keeps predict()/update() and stays clean.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_fused.hh", 11));
}

TEST(ReproLintParse, RawAtoiIsFlagged)
{
    const auto hits = findingsAt("bench/bad_parse.cc", "parse/raw-call");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 7);
}

TEST(ReproLintParse, AllowCommentSuppressesByPrefix)
{
    // Line 8 carries "// repro-lint: allow(parse)".
    EXPECT_FALSE(anyFindingOnLine("bench/bad_parse.cc", 8));
}

TEST(ReproLintPortability, IntrinsicHeadersAndCallsAreFlagged)
{
    const auto hits = findingsAt("src/core/bad_intrinsics.hh",
                                 "portability/raw-intrinsic");
    ASSERT_EQ(hits.size(), 5u);
    EXPECT_EQ(hits[0].line, 4);  // #include <immintrin.h>
    EXPECT_NE(hits[0].message.find("immintrin.h"), std::string::npos);
    EXPECT_EQ(hits[1].line, 5);   // #include <arm_neon.h>
    EXPECT_EQ(hits[2].line, 8);   // _mm256_storeu_si256
    EXPECT_EQ(hits[3].line, 9);   // vld1q_u32
    EXPECT_EQ(hits[4].line, 10);  // _mm512_storeu_si512: a stray
                                  // AVX-512 intrinsic outside
                                  // src/core/simd.hh must fire too
    EXPECT_NE(hits[2].message.find("src/core/simd.hh"),
              std::string::npos);
}

TEST(ReproLintPortability, AllowCommentSuppressesByPrefix)
{
    // Line 11 carries "// repro-lint: allow(portability)".
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_intrinsics.hh", 11));
}

TEST(ReproLintPortability, SimdHeaderHomeIsExempt)
{
    // clean_tree carries a src/core/simd.hh full of intrinsics; the
    // CleanTree test below proves it produces no findings. Also check
    // the exemption directly at the rule level.
    const Tree tree = repro_lint::loadTree(fixtureDir() / "clean_tree");
    ASSERT_NE(tree.find("src/core/simd.hh"), nullptr);
    std::vector<Finding> out;
    repro_lint::checkPortability(tree, out);
    EXPECT_TRUE(out.empty());
}

TEST(ReproLintConcurrency, LocksInHotPathFileAreFlagged)
{
    const auto hits = findingsAt("src/core/bad_hot_path.hh",
                                 "concurrency/lock-in-hot-path");
    ASSERT_EQ(hits.size(), 5u);
    EXPECT_EQ(hits[0].line, 4);  // #include <mutex>
    EXPECT_NE(hits[0].message.find("<mutex>"), std::string::npos);
    EXPECT_EQ(hits[1].line, 5);   // #include <condition_variable>
    EXPECT_EQ(hits[2].line, 10);  // std::mutex member
    EXPECT_EQ(hits[3].line, 11);  // std::condition_variable member
    EXPECT_EQ(hits[4].line, 12);  // lock_guard (one finding per line)
    EXPECT_NE(hits[2].message.find("SPSC rings"), std::string::npos)
            << hits[2].message;
    // <atomic> and std::atomic stay legal on the hot path.
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_hot_path.hh", 6));
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_hot_path.hh", 14));
}

TEST(ReproLintConcurrency, AllowCommentMarksTheColdPath)
{
    // Line 13 carries "// repro-lint: allow(concurrency)".
    EXPECT_FALSE(anyFindingOnLine("src/core/bad_hot_path.hh", 13));
}

TEST(ReproLintConcurrency, FilesWithoutTheMarkerAreExempt)
{
    // clean_tree's cold_path.hh is full of mutexes but never opts
    // in; the rule must not touch it.
    const Tree tree = repro_lint::loadTree(fixtureDir() / "clean_tree");
    ASSERT_NE(tree.find("src/core/cold_path.hh"), nullptr);
    std::vector<Finding> out;
    repro_lint::checkConcurrency(tree, out);
    EXPECT_TRUE(out.empty());
}

TEST(ReproLintFormat, FindingFormatsAsFileLineRuleMessage)
{
    const Finding f{"src/core/x.hh", 12, "layering/cc-include", "boom"};
    EXPECT_EQ(repro_lint::formatFinding(f),
              "src/core/x.hh:12: [layering/cc-include] boom");
}

TEST(ReproLintSuppression, PrefixMatchesOnlyAtRuleBoundary)
{
    const Tree tree = repro_lint::loadTree(fixtureDir() / "bad_tree");
    const repro_lint::SourceFile* f = tree.find("bench/bad_parse.cc");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->allowed(8, "parse/raw-call"));
    EXPECT_FALSE(f->allowed(8, "parser/raw-call"));
    EXPECT_FALSE(f->allowed(7, "parse/raw-call"));
}

TEST(ReproLintLayerOf, MapsKnownPrefixes)
{
    EXPECT_EQ(repro_lint::layerOf("src/core/dfcm_predictor.hh"), "core");
    EXPECT_EQ(repro_lint::layerOf("src/harness/sweep.hh"), "harness");
    EXPECT_EQ(repro_lint::layerOf("bench/throughput.cc"), "bench");
    EXPECT_EQ(repro_lint::layerOf("examples/vpsim.cpp"), "examples");
    EXPECT_EQ(repro_lint::layerOf("tests/stats_test.cc"), "tests");
    EXPECT_EQ(repro_lint::layerOf("docs/analysis.md"), "");
}

TEST(ReproLintCleanTree, HasNoFindings)
{
    const Tree tree =
            repro_lint::loadTree(fixtureDir() / "clean_tree");
    EXPECT_GE(tree.files.size(), 4u);
    const std::vector<Finding> findings = repro_lint::runAllRules(tree);
    for (const Finding& f : findings)
        ADD_FAILURE() << repro_lint::formatFinding(f);
}

TEST(ReproLintRealTree, RepositoryIsClean)
{
    const Tree tree = repro_lint::loadTree(
            std::filesystem::path(REPRO_LINT_REPO_ROOT));
    // Sanity: the walk found the real sources, not an empty dir.
    ASSERT_GT(tree.files.size(), 100u);
    const std::vector<Finding> findings = repro_lint::runAllRules(tree);
    for (const Finding& f : findings)
        ADD_FAILURE() << repro_lint::formatFinding(f);
}

} // namespace
