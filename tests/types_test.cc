/**
 * @file
 * Unit tests for the fundamental helpers in core/types.hh.
 */

#include <gtest/gtest.h>

#include "core/types.hh"

namespace vpred
{
namespace
{

TEST(MaskBits, Boundaries)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xFFu);
    EXPECT_EQ(maskBits(32), 0xFFFFFFFFu);
    EXPECT_EQ(maskBits(63), 0x7FFFFFFFFFFFFFFFull);
    EXPECT_EQ(maskBits(64), ~std::uint64_t{0});
}

TEST(MaskBits, IsConstexpr)
{
    static_assert(maskBits(4) == 0xF);
    static_assert(maskBits(64) == ~std::uint64_t{0});
    SUCCEED();
}

TEST(IsPowerOfTwo, Classification)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(SignExtend, PositiveValuesUnchanged)
{
    EXPECT_EQ(signExtend(0x7F, 8), 0x7Fu);
    EXPECT_EQ(signExtend(0, 8), 0u);
    EXPECT_EQ(signExtend(0x3FFF, 16), 0x3FFFu);
}

TEST(SignExtend, NegativeValuesExtend)
{
    EXPECT_EQ(signExtend(0xFF, 8), ~std::uint64_t{0});          // -1
    EXPECT_EQ(signExtend(0x80, 8), static_cast<std::uint64_t>(-128));
    EXPECT_EQ(signExtend(0xFFFE, 16), static_cast<std::uint64_t>(-2));
}

TEST(SignExtend, IgnoresHighGarbage)
{
    // Bits above the field are masked before extension.
    EXPECT_EQ(signExtend(0xABCD00FF, 8), ~std::uint64_t{0});
    EXPECT_EQ(signExtend(0xABCD0001, 8), 1u);
}

TEST(SignExtend, FullWidthIsIdentity)
{
    EXPECT_EQ(signExtend(0xDEADBEEF, 64), 0xDEADBEEFull);
    EXPECT_EQ(signExtend(42, 0), 42u);  // degenerate: no-op
}

TEST(TraceRecord, EqualityAndVectorUse)
{
    const TraceRecord a{1, 2};
    EXPECT_EQ(a, (TraceRecord{1, 2}));
    EXPECT_NE(a, (TraceRecord{1, 3}));
    EXPECT_NE(a, (TraceRecord{2, 2}));

    ValueTrace t = {{1, 10}, {2, 20}};
    EXPECT_EQ(t, (ValueTrace{{1, 10}, {2, 20}}));
}

} // namespace
} // namespace vpred
