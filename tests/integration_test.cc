/**
 * @file
 * End-to-end integration tests: assemble -> execute -> trace ->
 * predict -> analyze, across module boundaries.
 */

#include <gtest/gtest.h>

#include "core/alias_analysis.hh"
#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/stride_occupancy.hh"
#include "harness/experiment.hh"
#include "harness/pareto.hh"
#include "sim/assembler.hh"
#include "sim/tracer.hh"
#include "workloads/workload.hh"

namespace vpred
{
namespace
{

TEST(Integration, HandwrittenLoopIsStridePredictable)
{
    // A tiny program whose value stream we can reason about exactly.
    const sim::Program p = sim::assemble(
            "        li   $t0, 0\n"
            "loop:   addi $t0, $t0, 1\n"
            "        li   $t1, 2000\n"
            "        blt  $t0, $t1, loop\n"
            "        li   $v0, 10\n"
            "        syscall\n");
    const sim::TraceResult r = sim::traceProgram(p, 100000);

    PredictorConfig cfg;
    cfg.kind = PredictorKind::Stride;
    cfg.l1_bits = 8;
    auto stride = makePredictor(cfg);
    const PredictorStats s = runTrace(*stride, r.trace);
    // Counter (stride 1) and the constant 2000 both predict nearly
    // perfectly after warm-up.
    EXPECT_GT(s.accuracy(), 0.99);
}

TEST(Integration, NormKernelShowsThePaperStoryEndToEnd)
{
    // Figure 5/6/9 in miniature: on norm, (i) stride accesses
    // dominate, (ii) the FCM spreads them over many level-2 entries,
    // (iii) the DFCM concentrates them, and (iv) DFCM accuracy wins.
    const sim::TraceResult r = workloads::runWorkload("norm", 0.2);

    FcmPredictor fcm({.l1_bits = 16, .l2_bits = 12});
    DfcmPredictor dfcm({.l1_bits = 16, .l2_bits = 12});
    const OccupancyResult of = profileStrideOccupancy(fcm, r.trace);
    const OccupancyResult od = profileStrideOccupancy(dfcm, r.trace);

    EXPECT_GT(static_cast<double>(of.stride_accesses)
                      / static_cast<double>(of.total_accesses),
              0.8);
    EXPECT_GT(of.entriesAccessedMoreThan(100), 100u);   // paper: >100
    // The DFCM concentrates stride traffic several-fold (paper: 12
    // entries vs >100; our norm matrix has more distinct strides).
    EXPECT_LT(od.entriesAccessedMoreThan(100),
              of.entriesAccessedMoreThan(100) / 2);

    FcmPredictor fcm2({.l1_bits = 16, .l2_bits = 12});
    DfcmPredictor dfcm2({.l1_bits = 16, .l2_bits = 12});
    EXPECT_GT(runTrace(dfcm2, r.trace).accuracy(),
              runTrace(fcm2, r.trace).accuracy());
}

TEST(Integration, AliasAnalysisOnARealWorkload)
{
    const sim::TraceResult r = workloads::runWorkload("li", 0.1);

    FcmConfig cfg;
    cfg.l1_bits = 12;
    cfg.l2_bits = 12;
    AliasAnalyzer fcm(cfg, false);
    AliasAnalyzer dfcm(cfg, true);
    const AliasBreakdown bf = fcm.run(r.trace);
    const AliasBreakdown bd = dfcm.run(r.trace);

    EXPECT_EQ(bf.total().predictions, r.trace.size());
    EXPECT_EQ(bd.total().predictions, r.trace.size());
    // The paper's Section 4.2 signature: the DFCM shifts weight into
    // the benign l2_pc class and reduces hash aliasing.
    EXPECT_GT(bd.fractionOfPredictions(AliasType::L2Pc),
              bf.fractionOfPredictions(AliasType::L2Pc));
    EXPECT_LT(bd.fractionWrong(AliasType::Hash),
              bf.fractionWrong(AliasType::Hash));
    // And the overall misprediction rate drops.
    EXPECT_GT(bd.total().accuracy(), bf.total().accuracy());
}

TEST(Integration, SuiteRunMatchesDirectComputation)
{
    harness::TraceCache cache(0.05);
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Dfcm;
    cfg.l1_bits = 12;
    cfg.l2_bits = 10;
    const harness::SuiteResult suite =
            harness::runSuite(cache, {"norm", "go"}, cfg);

    DfcmPredictor direct({.l1_bits = 12, .l2_bits = 10});
    PredictorStats expected = runTrace(direct, cache.get("norm"));
    DfcmPredictor direct2({.l1_bits = 12, .l2_bits = 10});
    expected += runTrace(direct2, cache.get("go"));
    EXPECT_EQ(suite.total, expected);
}

TEST(Integration, ParetoOfRealSweepIsMonotone)
{
    harness::TraceCache cache(0.05);
    std::vector<harness::ParetoPoint> points;
    for (unsigned l1 : {8u, 10u, 12u}) {
        for (unsigned l2 : {8u, 10u, 12u}) {
            PredictorConfig cfg;
            cfg.kind = PredictorKind::Dfcm;
            cfg.l1_bits = l1;
            cfg.l2_bits = l2;
            const harness::SuiteResult s =
                    harness::runSuite(cache, {"norm", "li"}, cfg);
            points.push_back({s.storageKbit(), s.accuracy(),
                              s.predictor});
        }
    }
    const auto frontier = harness::paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GT(frontier[i].size_kbit, frontier[i - 1].size_kbit);
        EXPECT_GT(frontier[i].accuracy, frontier[i - 1].accuracy);
    }
}

} // namespace
} // namespace vpred
