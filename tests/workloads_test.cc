/**
 * @file
 * Tests for the MiniRISC workload suite: every kernel assembles,
 * runs to completion, produces a pinned checksum (regression guard)
 * and a healthy eligible-prediction trace.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/assembler.hh"
#include "workloads/workload.hh"

namespace vpred::workloads
{
namespace
{

// Checksums printed by each kernel at scale 0.25, pinned as a
// regression guard for both the kernels and the VM semantics.
// (Regenerate with: examples/run_workload <name> 0.25)
const std::map<std::string, std::string> kExpectedOutput = {
    {"compress", "8746259"},
    {"cc1", "-2113846129"},
    {"go", "12877"},
    {"ijpeg", "2962062"},
    {"li", "17628800"},
    {"m88ksim", "-96"},
    {"perl", "371286"},
    {"vortex", "69840933"},
    {"norm", "-3816"},
    {"gzip", "12784090"},
    {"mcf", "-1045344"},
};

TEST(Workloads, RegistryIsComplete)
{
    EXPECT_EQ(allWorkloads().size(), 11u);
    EXPECT_EQ(benchmarkNames().size(), 8u);
    for (const std::string& name : benchmarkNames())
        EXPECT_NO_THROW(findWorkload(name));
    EXPECT_NO_THROW(findWorkload("norm"));
    EXPECT_NO_THROW(findWorkload("gzip"));
    EXPECT_NO_THROW(findWorkload("mcf"));
    EXPECT_THROW(findWorkload("does-not-exist"), std::out_of_range);
}

TEST(Workloads, AllKernelsAssemble)
{
    for (const Workload& w : allWorkloads())
        EXPECT_NO_THROW(sim::assemble(w.assembly)) << w.name;
}

class WorkloadRunTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRunTest, RunsAndMatchesPinnedChecksum)
{
    const Workload& w = findWorkload(GetParam());
    const sim::TraceResult r = runWorkload(w, 0.25);
    EXPECT_EQ(r.output, kExpectedOutput.at(w.name)) << w.name;
    EXPECT_GT(r.instructions, 100000u) << w.name;
    EXPECT_GT(r.trace.size(), 50000u) << w.name;
    // The eligibility filter keeps a sane fraction of instructions.
    EXPECT_LT(r.trace.size(), r.instructions) << w.name;
}

TEST_P(WorkloadRunTest, DeterministicAcrossRuns)
{
    const Workload& w = findWorkload(GetParam());
    const sim::TraceResult a = runWorkload(w, 0.25);
    const sim::TraceResult b = runWorkload(w, 0.25);
    EXPECT_EQ(a.trace, b.trace) << w.name;
    EXPECT_EQ(a.output, b.output) << w.name;
}

TEST_P(WorkloadRunTest, TraceValuesAre32Bit)
{
    const sim::TraceResult r = runWorkload(GetParam(), 0.1);
    for (const TraceRecord& rec : r.trace)
        ASSERT_LE(rec.value, 0xFFFFFFFFull);
}

TEST_P(WorkloadRunTest, UsesManyStaticInstructions)
{
    // Real programs touch many PCs; a degenerate kernel would not.
    const sim::TraceResult r = runWorkload(GetParam(), 0.1);
    std::set<Pc> pcs;
    for (const TraceRecord& rec : r.trace)
        pcs.insert(rec.pc);
    EXPECT_GT(pcs.size(), 25u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
        AllWorkloads, WorkloadRunTest,
        ::testing::Values("compress", "cc1", "go", "ijpeg", "li",
                          "m88ksim", "perl", "vortex", "norm", "gzip",
                          "mcf"),
        [](const auto& param_info) { return param_info.param; });

TEST(Workloads, ScaleChangesTraceLength)
{
    const sim::TraceResult small = runWorkload("go", 0.2);
    const sim::TraceResult large = runWorkload("go", 0.6);
    EXPECT_GT(large.trace.size(), small.trace.size() * 2);
}

} // namespace
} // namespace vpred::workloads
