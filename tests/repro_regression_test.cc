/**
 * @file
 * Reproduction-regression pins: the qualitative results recorded in
 * EXPERIMENTS.md, asserted at a reduced trace scale so any code
 * change that silently breaks a paper claim fails the suite.
 *
 * The pins are deliberately bands, not exact values — the exact
 * numbers belong to the bench binaries; these tests protect the
 * *shape* (who wins, roughly by how much).
 */

#include <gtest/gtest.h>

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/stride_predictor.hh"
#include "core/stats.hh"
#include "harness/experiment.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

namespace vpred
{
namespace
{

/** Shared reduced-scale cache across all pins in this file. */
harness::TraceCache&
cache()
{
    static harness::TraceCache c(0.2);
    return c;
}

double
suiteAccuracy(PredictorKind kind, unsigned l1, unsigned l2)
{
    PredictorConfig cfg;
    cfg.kind = kind;
    cfg.l1_bits = l1;
    cfg.l2_bits = l2;
    return harness::runBenchmarks(cache(), cfg).accuracy();
}

TEST(ReproRegression, Figure10SmallTableGap)
{
    // Paper: up to +33% at small level-2 tables. Pin: >= +25% at 2^10.
    const double fcm = suiteAccuracy(PredictorKind::Fcm, 16, 10);
    const double dfcm = suiteAccuracy(PredictorKind::Dfcm, 16, 10);
    EXPECT_GT(dfcm, fcm * 1.25);
}

TEST(ReproRegression, Figure10LargeTableGapShrinks)
{
    // Paper: the gap shrinks to ~8% at the largest tables. Pin: the
    // ratio at 2^18 is much smaller than at 2^10 but still > 1.
    const double small_ratio =
            suiteAccuracy(PredictorKind::Dfcm, 16, 10)
            / suiteAccuracy(PredictorKind::Fcm, 16, 10);
    const double large_ratio =
            suiteAccuracy(PredictorKind::Dfcm, 16, 18)
            / suiteAccuracy(PredictorKind::Fcm, 16, 18);
    EXPECT_GT(large_ratio, 1.0);
    EXPECT_LT(large_ratio, small_ratio - 0.1);
}

TEST(ReproRegression, Figure10DfcmWinsEveryBenchmark)
{
    for (const std::string& name : workloads::benchmarkNames()) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = 12;
        cfg.kind = PredictorKind::Fcm;
        const double fcm =
                harness::runOn(cache(), name, cfg).accuracy();
        cfg.kind = PredictorKind::Dfcm;
        const double dfcm =
                harness::runOn(cache(), name, cfg).accuracy();
        EXPECT_GT(dfcm, fcm) << name;
    }
}

TEST(ReproRegression, Figure3FcmBeatsSimplePredictorsAtLargeSizes)
{
    const double lvp = suiteAccuracy(PredictorKind::Lvp, 16, 0);
    const double stride = suiteAccuracy(PredictorKind::Stride, 16, 0);
    const double fcm = suiteAccuracy(PredictorKind::Fcm, 16, 18);
    EXPECT_GT(stride, lvp);
    EXPECT_GT(fcm, stride);
}

TEST(ReproRegression, Figure16DfcmMatchesPerfectHybridAtRealisticSizes)
{
    // Paper: DFCM outperforms the perfect STRIDE+FCM hybrid (by a
    // small margin). Pin: at worst a statistical tie with the
    // unimplementable oracle at the reduced test scale; at full
    // scale bench_fig16_hybrid shows the strict win for l2 <= 2^14.
    const double dfcm = suiteAccuracy(PredictorKind::Dfcm, 16, 12);
    const double hybrid =
            suiteAccuracy(PredictorKind::PerfectStrideFcm, 16, 12);
    EXPECT_GT(dfcm, hybrid - 0.01);
}

TEST(ReproRegression, Figure16PerfectStrideDfcmGainIsSmall)
{
    // Paper: only .02-.04 over the plain DFCM. Pin: < .06.
    const double dfcm = suiteAccuracy(PredictorKind::Dfcm, 16, 12);
    const double hybrid =
            suiteAccuracy(PredictorKind::PerfectStrideDfcm, 16, 12);
    EXPECT_GE(hybrid, dfcm);
    EXPECT_LT(hybrid - dfcm, 0.06);
}

TEST(ReproRegression, Figure17DelayHurtsBothSimilarly)
{
    PredictorConfig cfg;
    cfg.l1_bits = 16;
    cfg.l2_bits = 12;
    cfg.update_delay = 64;
    cfg.kind = PredictorKind::Fcm;
    const double fcm_delayed =
            harness::runBenchmarks(cache(), cfg).accuracy();
    cfg.kind = PredictorKind::Dfcm;
    const double dfcm_delayed =
            harness::runBenchmarks(cache(), cfg).accuracy();

    const double fcm0 = suiteAccuracy(PredictorKind::Fcm, 16, 12);
    const double dfcm0 = suiteAccuracy(PredictorKind::Dfcm, 16, 12);
    // Both suffer significantly...
    EXPECT_LT(fcm_delayed, fcm0 - 0.1);
    EXPECT_LT(dfcm_delayed, dfcm0 - 0.1);
    // ...and end up close together (paper: same overall behaviour).
    EXPECT_NEAR(fcm_delayed, dfcm_delayed, 0.05);
}

TEST(ReproRegression, Section44NarrowStrideBands)
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Dfcm;
    cfg.l1_bits = 16;
    cfg.l2_bits = 12;
    const double full = harness::runBenchmarks(cache(), cfg).accuracy();
    cfg.stride_bits = 16;
    const double w16 = harness::runBenchmarks(cache(), cfg).accuracy();
    cfg.stride_bits = 8;
    const double w8 = harness::runBenchmarks(cache(), cfg).accuracy();
    // Paper bands (.01-.03 and .05-.08) with slack for scale.
    EXPECT_GT(full - w16, 0.0);
    EXPECT_LT(full - w16, 0.06);
    EXPECT_GT(full - w8, 0.02);
    EXPECT_LT(full - w8, 0.15);
}

} // namespace
} // namespace vpred
