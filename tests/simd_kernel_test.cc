/**
 * @file
 * SIMD-vs-scalar bit-identity for the multi-geometry kernels: every
 * backend this build carries (core/cpu_features.hh) must reproduce
 * the scalar reference path exactly — over the full Figure 10 l2
 * column on all paper workloads (reduced trace scale, CTest label
 * "perf"), over randomized geometries with a fixed-seed fuzzer, and
 * under the REPRO_SIMD environment override that forces dispatch
 * down to scalar.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/cpu_features.hh"
#include "core/multi_geom.hh"
#include "core/stats.hh"
#include "harness/sweep.hh"
#include "harness/trace_cache.hh"
#include "tracegen/mixer.hh"
#include "workloads/workload.hh"

namespace
{

using namespace vpred;

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* old = std::getenv(name);
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char* name_;
    std::string old_;
    bool had_old_ = false;
};

/** Backends to test against the scalar reference: everything this
 *  build carries beyond Scalar itself. */
std::vector<SimdBackend>
vectorBackends()
{
    std::vector<SimdBackend> out;
    for (SimdBackend b : availableSimdBackends())
        if (b != SimdBackend::Scalar)
            out.push_back(b);
    return out;
}

void
expectBackendsMatchScalar(const MultiGeomConfig& geom,
                          std::span<const TraceRecord> trace)
{
    MultiGeomFcmKernel fcm(geom);
    MultiGeomDfcmKernel dfcm(geom);
    const std::vector<PredictorStats> fcm_ref =
            fcm.runTrace(trace, SimdBackend::Scalar);
    const std::vector<PredictorStats> dfcm_ref =
            dfcm.runTrace(trace, SimdBackend::Scalar);
    for (SimdBackend b : vectorBackends()) {
        SCOPED_TRACE(std::string("backend ") + simdBackendName(b));
        EXPECT_EQ(fcm.runTrace(trace, b), fcm_ref);
        EXPECT_EQ(dfcm.runTrace(trace, b), dfcm_ref);
    }
}

TEST(SimdKernel, BuildCarriesAtLeastTheScalarBackend)
{
    const std::vector<SimdBackend> all = availableSimdBackends();
    ASSERT_FALSE(all.empty());
    EXPECT_EQ(all.front(), SimdBackend::Scalar);
    // Widest last: the dispatcher's default choice.
    EXPECT_EQ(bestSimdBackend(), all.back());
    for (SimdBackend b : all)
        EXPECT_GE(simdVectorBits(b), 64u);
}

TEST(SimdKernel, Fig10ColumnBitIdenticalOnAllPaperWorkloads)
{
    // The full Figure 10 geometry (l1=16, the whole l2 column) on
    // every paper workload, at a reduced trace scale so the suite
    // stays a fast smoke test.
    harness::TraceCache cache(0.1);
    MultiGeomConfig geom;
    geom.l1_bits = 16;
    geom.l2_bits = harness::paperL2Bits();
    for (const std::string& name : workloads::benchmarkNames()) {
        SCOPED_TRACE("workload " + name);
        expectBackendsMatchScalar(geom, cache.getSpan(name));
    }
}

TEST(SimdKernel, RandomizedGeometryFuzzMatchesScalar)
{
    // Fixed seed: the fuzz cases are deterministic across runs.
    std::mt19937 rng(0xD5C3);
    const auto pick = [&rng](unsigned lo, unsigned hi) {
        return lo + static_cast<unsigned>(rng() % (hi - lo + 1));
    };
    for (int iter = 0; iter < 12; ++iter) {
        MultiGeomConfig geom;
        geom.l1_bits = pick(2, 12);
        geom.value_bits = pick(8, 32);
        geom.stride_bits = pick(1, geom.value_bits);
        geom.hash_shift = pick(1, 7);
        geom.l2_bits.resize(pick(1, 9));
        for (unsigned& l2 : geom.l2_bits)
            l2 = pick(1, 22);

        ValueTrace trace = tracegen::makeMixedTrace(
                {.stride_instructions = pick(1, 12),
                 .constant_instructions = pick(1, 6),
                 .context_instructions = pick(1, 8),
                 .random_instructions = pick(0, 3),
                 .seed = 1000 + static_cast<std::uint64_t>(iter)},
                4096);
        // Adversarial tail: raw values above the value mask, PCs
        // above the l1 mask, zeros.
        for (std::uint64_t i = 0; i < 32; ++i) {
            trace.push_back({i % 7, (std::uint64_t{0xbeef} << 32) + i});
            trace.push_back({(Pc{1} << 50) + i, i * 0x9001});
            trace.push_back({i % 3, 0});
        }

        SCOPED_TRACE("fuzz iteration " + std::to_string(iter));
        expectBackendsMatchScalar(geom, {trace.data(), trace.size()});
    }
}

TEST(SimdKernel, ReproSimdZeroForcesScalarDispatch)
{
    ScopedEnv off("REPRO_SIMD", "0");
    EXPECT_EQ(activeSimdBackend(), SimdBackend::Scalar);

    // The dispatched runTrace() must now take the scalar path and
    // still produce the reference results.
    const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 6,
             .constant_instructions = 2,
             .context_instructions = 4,
             .random_instructions = 1,
             .seed = 99},
            4096);
    MultiGeomConfig geom;
    geom.l1_bits = 8;
    geom.l2_bits = harness::paperL2Bits();
    MultiGeomDfcmKernel kernel(geom);
    EXPECT_EQ(kernel.runTrace({trace.data(), trace.size()}),
              kernel.runTrace({trace.data(), trace.size()},
                              SimdBackend::Scalar));
}

TEST(SimdKernel, ReproSimdSelectsNamedBackend)
{
    for (SimdBackend b : availableSimdBackends()) {
        ScopedEnv pin("REPRO_SIMD", simdBackendName(b));
        EXPECT_EQ(activeSimdBackend(), b)
                << "REPRO_SIMD=" << simdBackendName(b);
    }
    {
        ScopedEnv best("REPRO_SIMD", "best");
        EXPECT_EQ(activeSimdBackend(), bestSimdBackend());
    }
}

TEST(SimdKernel, ReproSimdParsesAvx512)
{
    // "avx512" is a recognized REPRO_SIMD value on every build: where
    // the backend runs it is selected, elsewhere the request degrades
    // to the scalar kernels (warning once) instead of erroring out —
    // the same contract as every other real backend name.
    EXPECT_EQ(simdVectorBits(SimdBackend::Avx512), 512u);
    EXPECT_STREQ(simdBackendName(SimdBackend::Avx512), "avx512");
    ScopedEnv pin("REPRO_SIMD", "avx512");
    if (simdBackendAvailable(SimdBackend::Avx512))
        EXPECT_EQ(activeSimdBackend(), SimdBackend::Avx512);
    else
        EXPECT_EQ(activeSimdBackend(), SimdBackend::Scalar);
}

TEST(SimdKernel, UnavailableBackendFallsBackToScalar)
{
    // Requesting a backend this build/CPU cannot run must quietly use
    // the scalar path, not crash or change results. NEON is never
    // available on x86 builds and vice versa, so one of the two is a
    // guaranteed-unavailable probe.
    const SimdBackend unavailable =
            simdBackendAvailable(SimdBackend::Neon) ? SimdBackend::Sse2
                                                    : SimdBackend::Neon;
    if (simdBackendAvailable(unavailable))
        GTEST_SKIP() << "both ISA families available?";
    const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 4,
             .constant_instructions = 2,
             .context_instructions = 2,
             .random_instructions = 1,
             .seed = 5},
            2048);
    MultiGeomConfig geom;
    geom.l1_bits = 6;
    geom.l2_bits = {8, 12};
    MultiGeomFcmKernel kernel(geom);
    EXPECT_EQ(kernel.runTrace({trace.data(), trace.size()}, unavailable),
              kernel.runTrace({trace.data(), trace.size()},
                              SimdBackend::Scalar));
}

} // namespace
