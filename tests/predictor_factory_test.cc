/**
 * @file
 * Unit tests for configuration-driven predictor construction.
 */

#include <gtest/gtest.h>

#include "core/predictor_factory.hh"
#include "core/stats.hh"

namespace vpred
{
namespace
{

TEST(PredictorFactory, BuildsEveryKind)
{
    const PredictorKind kinds[] = {
        PredictorKind::Lvp,
        PredictorKind::Stride,
        PredictorKind::TwoDelta,
        PredictorKind::Fcm,
        PredictorKind::Dfcm,
        PredictorKind::HybridStrideFcm,
        PredictorKind::HybridStrideDfcm,
        PredictorKind::PerfectStrideFcm,
        PredictorKind::PerfectStrideDfcm,
    };
    for (PredictorKind kind : kinds) {
        PredictorConfig cfg;
        cfg.kind = kind;
        cfg.l1_bits = 8;
        cfg.l2_bits = 10;
        auto p = makePredictor(cfg);
        ASSERT_NE(p, nullptr) << kindName(kind);
        // Exercise the object minimally.
        p->predictAndUpdate(1, 42);
        EXPECT_GT(p->storageBits(), 0u) << kindName(kind);
        EXPECT_FALSE(p->name().empty());
    }
}

TEST(PredictorFactory, DelayWrapsThePredictor)
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Lvp;
    cfg.l1_bits = 4;
    cfg.update_delay = 8;
    auto p = makePredictor(cfg);
    EXPECT_NE(p->name().find("delayed(8)"), std::string::npos);
    p->predictAndUpdate(1, 7);
    EXPECT_EQ(p->predict(1), 0u);  // update still queued
}

TEST(PredictorFactory, StrideBitsReachTheDfcm)
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Dfcm;
    cfg.l1_bits = 8;
    cfg.l2_bits = 10;
    cfg.stride_bits = 8;
    auto narrow = makePredictor(cfg);
    cfg.stride_bits = 32;
    auto wide = makePredictor(cfg);
    EXPECT_LT(narrow->storageBits(), wide->storageBits());
}

TEST(PredictorFactory, HashShiftOverride)
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Fcm;
    cfg.l1_bits = 8;
    cfg.l2_bits = 12;
    cfg.hash_shift = 3;  // order becomes ceil(12/3) = 4
    auto p = makePredictor(cfg);
    // Indirect check: the FS R-3 order-4 FCM needs 4 warm-up values
    // before a 4-periodic pattern becomes unambiguous; just verify it
    // still learns.
    PredictorStats s;
    for (int lap = 0; lap < 60; ++lap)
        for (Value v : {3u, 1u, 4u, 1u, 5u})
            s.record(p->predictAndUpdate(2, v));
    EXPECT_GT(s.accuracy(), 0.8);
}

TEST(PredictorFactory, KindNames)
{
    EXPECT_EQ(kindName(PredictorKind::Lvp), "lvp");
    EXPECT_EQ(kindName(PredictorKind::Dfcm), "dfcm");
    EXPECT_EQ(kindName(PredictorKind::PerfectStrideDfcm),
              "perfect-stride+dfcm");
}

} // namespace
} // namespace vpred
