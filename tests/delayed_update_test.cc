/**
 * @file
 * Unit tests for the delayed-update wrapper (Figure 17's model).
 */

#include <gtest/gtest.h>

#include "core/delayed_update.hh"
#include "core/last_value_predictor.hh"
#include "core/stats.hh"
#include "core/stride_predictor.hh"

namespace vpred
{
namespace
{

TEST(DelayedUpdate, DelayZeroMatchesImmediateUpdate)
{
    ValueTrace trace;
    for (int i = 0; i < 200; ++i)
        trace.push_back({static_cast<Pc>(i % 7),
                         static_cast<Value>(3 * i)});

    StridePredictor immediate(8);
    DelayedUpdatePredictor delayed(
            std::make_unique<StridePredictor>(8), 0);
    EXPECT_EQ(runTrace(immediate, trace), runTrace(delayed, trace));
}

TEST(DelayedUpdate, StaleHistoryWithinTheWindow)
{
    // With delay 2, the second occurrence of a pc within 2
    // predictions sees the old table state.
    DelayedUpdatePredictor p(std::make_unique<LastValuePredictor>(4), 2);
    p.predictAndUpdate(1, 100);
    // Update for (1, 100) is still queued:
    EXPECT_EQ(p.predict(1), 0u);
    p.predictAndUpdate(2, 5);
    EXPECT_EQ(p.predict(1), 0u);
    p.predictAndUpdate(3, 6);
    // Now (1, 100) has been applied (2 predictions later).
    EXPECT_EQ(p.predict(1), 100u);
}

TEST(DelayedUpdate, DrainAppliesEverything)
{
    DelayedUpdatePredictor p(std::make_unique<LastValuePredictor>(4),
                             100);
    p.predictAndUpdate(1, 7);
    p.predictAndUpdate(2, 8);
    EXPECT_EQ(p.predict(1), 0u);
    p.drain();
    EXPECT_EQ(p.predict(1), 7u);
    EXPECT_EQ(p.predict(2), 8u);
}

TEST(DelayedUpdate, HurtsTightLoopAccuracy)
{
    // A pc recurring every iteration: delay makes the stride
    // predictor work from values d iterations old.
    ValueTrace trace;
    for (int i = 0; i < 2000; ++i)
        trace.push_back({1, static_cast<Value>(i)});

    StridePredictor immediate(8);
    const double acc0 = runTrace(immediate, trace).accuracy();

    DelayedUpdatePredictor delayed(
            std::make_unique<StridePredictor>(8), 16);
    const double acc16 = runTrace(delayed, trace).accuracy();

    EXPECT_GT(acc0, 0.99);
    EXPECT_LT(acc16, acc0);
}

TEST(DelayedUpdate, StorageAndNameDelegate)
{
    DelayedUpdatePredictor p(std::make_unique<LastValuePredictor>(4),
                             16);
    EXPECT_EQ(p.storageBits(), LastValuePredictor(4).storageBits());
    EXPECT_EQ(p.name(), "delayed(16)[lvp(t=4)]");
}

} // namespace
} // namespace vpred
