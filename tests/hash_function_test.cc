/**
 * @file
 * Unit tests for foldXor and ShiftFoldHash (the FS R-5 family).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/hash_function.hh"

namespace vpred
{
namespace
{

TEST(FoldXor, IdentityWhenValueFits)
{
    EXPECT_EQ(foldXor(0x3F, 8), 0x3Fu);
    EXPECT_EQ(foldXor(0, 12), 0u);
    EXPECT_EQ(foldXor(0xABC, 12), 0xABCu);
}

TEST(FoldXor, FoldsChunksTogether)
{
    // 0x12345678 in 16-bit chunks: 0x1234 ^ 0x5678.
    EXPECT_EQ(foldXor(0x12345678u, 16), 0x1234u ^ 0x5678u);
    // 8-bit chunks: 0x12 ^ 0x34 ^ 0x56 ^ 0x78.
    EXPECT_EQ(foldXor(0x12345678u, 8),
              std::uint64_t{0x12 ^ 0x34 ^ 0x56 ^ 0x78});
}

TEST(FoldXor, FullWidthIsIdentity)
{
    EXPECT_EQ(foldXor(0xDEADBEEFCAFEF00Dull, 64), 0xDEADBEEFCAFEF00Dull);
}

TEST(FoldXor, ZeroWidthIsEmptyFold)
{
    // Regression: bits == 0 used to spin forever (value >>= 0).
    EXPECT_EQ(foldXor(0xDEADBEEFull, 0), 0u);
    EXPECT_EQ(foldXor(0, 0), 0u);
    EXPECT_EQ(foldXor(~std::uint64_t{0}, 0), 0u);
}

TEST(FoldXor, ResultAlwaysInRange)
{
    for (unsigned bits = 1; bits <= 24; ++bits) {
        for (std::uint64_t v : {0x0ull, 0x1ull, 0xFFFFFFFFull,
                                0x123456789ABCDEFull}) {
            EXPECT_LE(foldXor(v, bits), maskBits(bits))
                    << "bits=" << bits << " v=" << v;
        }
    }
}

TEST(ShiftFoldHash, FsR5OrderMatchesPaperTable)
{
    // The paper's table: L2 bits {8,10,12,14,16,18,20} ->
    // order {2,2,3,3,4,4,4}.
    const std::pair<unsigned, unsigned> expected[] = {
        {8, 2}, {10, 2}, {12, 3}, {14, 3}, {16, 4}, {18, 4}, {20, 4},
    };
    for (const auto& [bits, order] : expected) {
        EXPECT_EQ(ShiftFoldHash::fsR5(bits).order(), order)
                << "l2 bits " << bits;
        EXPECT_EQ(orderForL2Bits(bits), order);
    }
}

TEST(ShiftFoldHash, InsertStaysInRange)
{
    const ShiftFoldHash h = ShiftFoldHash::fsR5(12);
    std::uint64_t state = 0;
    for (std::uint64_t v = 0; v < 1000; ++v) {
        state = h.insert(state, v * 0x9E3779B97F4A7C15ull);
        EXPECT_LE(state, maskBits(12));
    }
}

TEST(ShiftFoldHash, HashDependsOnlyOnLastOrderValues)
{
    // Insert different prefixes, then the same `order` values: the
    // hashes must agree (old contributions fully shifted out).
    const ShiftFoldHash h = ShiftFoldHash::fsR5(12);
    const unsigned order = h.order();

    std::uint64_t a = 0, b = 0;
    a = h.insert(a, 111);
    a = h.insert(a, 222);
    b = h.insert(b, 98765);
    b = h.insert(b, 1);
    b = h.insert(b, 4242);
    for (unsigned i = 0; i < order; ++i) {
        a = h.insert(a, 1000 + i);
        b = h.insert(b, 1000 + i);
    }
    EXPECT_EQ(a, b);
}

TEST(ShiftFoldHash, OlderValuesWithinOrderStillMatter)
{
    const ShiftFoldHash h = ShiftFoldHash::fsR5(12);
    // Two histories differing only in the oldest in-window value.
    std::uint64_t a = h.insert(0, 1);
    std::uint64_t b = h.insert(0, 2);
    for (unsigned i = 1; i < h.order(); ++i) {
        a = h.insert(a, 7 * i);
        b = h.insert(b, 7 * i);
    }
    EXPECT_NE(a, b);
}

TEST(ShiftFoldHash, ConcatMatchesFigure4Example)
{
    // Order-3 concatenation over a 12-bit index: fields of 4 bits.
    const ShiftFoldHash h = ShiftFoldHash::concat(12, 3);
    EXPECT_EQ(h.order(), 3u);
    std::uint64_t s = 0;
    s = h.insert(s, 1);
    s = h.insert(s, 2);
    s = h.insert(s, 3);
    EXPECT_EQ(s, 0x123u);
}

TEST(ShiftFoldHash, TinyIndexClampsShift)
{
    const ShiftFoldHash h = ShiftFoldHash::fsR5(4);
    EXPECT_EQ(h.shift(), 4u);
    EXPECT_EQ(h.order(), 1u);
}

TEST(ShiftFoldHash, DistributesStridesAcrossTable)
{
    // A value sequence 0,1,2,...: an FCM history hash should spread
    // over many entries (this is exactly the paper's inefficiency).
    const ShiftFoldHash h = ShiftFoldHash::fsR5(12);
    std::uint64_t state = 0;
    std::set<std::uint64_t> seen;
    for (std::uint64_t v = 0; v < 4096; ++v) {
        state = h.insert(state, v);
        seen.insert(state);
    }
    EXPECT_GT(seen.size(), 1000u);
}

TEST(ShiftFoldHash, Names)
{
    EXPECT_EQ(ShiftFoldHash::fsR5(12).name(), "FS R-5(12)");
    EXPECT_EQ(ShiftFoldHash::concat(12, 3).name(), "concat-3(12)");
}

} // namespace
} // namespace vpred
