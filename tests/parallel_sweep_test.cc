/**
 * @file
 * Tests for the parallel sweep executor: thread pool semantics,
 * concurrent TraceCache use, serial/parallel result equivalence over
 * the Figure 10 grid, and the JSON results emitter.
 *
 * Built as its own binary (vpred_concurrency_tests, CTest label
 * "concurrency") so it can run under ThreadSanitizer via
 * -DREPRO_TSAN=ON.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <set>
#include <stdexcept>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/results_json.hh"
#include "harness/sweep.hh"
#include "harness/trace_cache.hh"

namespace vpred::harness
{
namespace
{

constexpr double kTestScale = 0.03;

/** The Figure 10(a) grid: (fcm, dfcm) at l1 = 2^16 per level-2 size. */
std::vector<PredictorConfig>
fig10Grid()
{
    std::vector<PredictorConfig> configs;
    for (unsigned l2 : paperL2Bits()) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = l2;
        cfg.kind = PredictorKind::Fcm;
        configs.push_back(cfg);
        cfg.kind = PredictorKind::Dfcm;
        configs.push_back(cfg);
    }
    return configs;
}

void
expectSuitesEqual(const SuiteResult& a, const SuiteResult& b)
{
    EXPECT_EQ(a.predictor, b.predictor);
    EXPECT_EQ(a.storage_bits, b.storage_bits);
    EXPECT_EQ(a.total, b.total);
    ASSERT_EQ(a.per_workload.size(), b.per_workload.size());
    for (std::size_t w = 0; w < a.per_workload.size(); ++w) {
        EXPECT_EQ(a.per_workload[w].workload, b.per_workload[w].workload);
        EXPECT_EQ(a.per_workload[w].predictor,
                  b.per_workload[w].predictor);
        EXPECT_EQ(a.per_workload[w].stats, b.per_workload[w].stats);
        EXPECT_EQ(a.per_workload[w].storage_bits,
                  b.per_workload[w].storage_bits);
    }
}

TEST(EnvJobs, ParsesAndClampsAndWarns)
{
    ::setenv("REPRO_JOBS", "4", 1);
    EXPECT_EQ(envJobs(), 4u);
    ::setenv("REPRO_JOBS", "1", 1);
    EXPECT_EQ(envJobs(), 1u);
    ::setenv("REPRO_JOBS", "100000", 1);
    EXPECT_EQ(envJobs(), 512u);  // clamped
    ::unsetenv("REPRO_JOBS");
    const unsigned hw = envJobs();
    EXPECT_GE(hw, 1u);
    ::setenv("REPRO_JOBS", "garbage", 1);
    EXPECT_EQ(envJobs(), hw);  // unparsable -> hardware default
    ::setenv("REPRO_JOBS", "0", 1);
    EXPECT_EQ(envJobs(), hw);
    ::unsetenv("REPRO_JOBS");
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(round * 7 + 1, [&](std::size_t) { ++sum; });
        EXPECT_EQ(sum.load(), round * 7 + 1);
    }
    pool.parallelFor(0, [](std::size_t) { FAIL(); });  // empty batch ok
}

TEST(ThreadPool, SingleJobRunsInlineAndInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<std::size_t> order;
    pool.parallelFor(8, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(16,
                                  [](std::size_t i) {
                                      if (i == 7)
                                          throw std::runtime_error("cell");
                                  }),
                 std::runtime_error);
    // Pool is still usable after an exceptional batch.
    std::atomic<int> sum{0};
    pool.parallelFor(4, [&](std::size_t) { ++sum; });
    EXPECT_EQ(sum.load(), 4);
}

TEST(TraceCache, ConcurrentGetsYieldOneStableEntry)
{
    TraceCache cache(kTestScale);
    ThreadPool pool(4);
    std::vector<const ValueTrace*> seen(16);
    pool.parallelFor(seen.size(), [&](std::size_t i) {
        seen[i] = &cache.get(i % 2 == 0 ? "norm" : "compress");
    });
    // All readers of one workload saw the same node.
    for (std::size_t i = 2; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], seen[i % 2]);
    EXPECT_FALSE(seen[0]->empty());
    EXPECT_FALSE(seen[1]->empty());
}

TEST(TraceCache, PrewarmMakesGetsPureLookups)
{
    TraceCache cache(kTestScale);
    cache.prewarm({"norm", "norm", "compress"});
    const ValueTrace& warm = cache.get("norm");
    EXPECT_EQ(&warm, &cache.get("norm"));
}

TEST(ParallelSweep, MatchesSerialRunSuiteOnFig10Grid)
{
    const std::vector<PredictorConfig> configs = fig10Grid();

    TraceCache serial_cache(kTestScale);
    std::vector<SuiteResult> serial;
    for (const PredictorConfig& cfg : configs)
        serial.push_back(runBenchmarks(serial_cache, cfg));

    TraceCache parallel_cache(kTestScale);
    ParallelSweep sweep(parallel_cache, 4);
    const std::vector<SuiteResult> parallel = sweep.runGrid(configs);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSuitesEqual(parallel[i], serial[i]);
}

TEST(ParallelSweep, SingleJobPathMatchesSerial)
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Dfcm;
    cfg.l1_bits = 12;
    cfg.l2_bits = 10;

    TraceCache serial_cache(kTestScale);
    const SuiteResult serial = runBenchmarks(serial_cache, cfg);

    TraceCache parallel_cache(kTestScale);
    ParallelSweep sweep(parallel_cache, 1);
    EXPECT_EQ(sweep.jobs(), 1u);
    const std::vector<SuiteResult> got = sweep.runGrid({cfg});
    ASSERT_EQ(got.size(), 1u);
    expectSuitesEqual(got[0], serial);
}

TEST(ParallelSweep, RespectsReproJobsEnv)
{
    ::setenv("REPRO_JOBS", "2", 1);
    TraceCache cache(kTestScale);
    ParallelSweep sweep(cache);
    EXPECT_EQ(sweep.jobs(), 2u);
    ::unsetenv("REPRO_JOBS");
}

TEST(ParallelSweep, CustomWorkloadSubset)
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Stride;
    cfg.l1_bits = 10;

    TraceCache cache(kTestScale);
    ParallelSweep sweep(cache, 2);
    const auto got = sweep.runGrid({cfg}, {"norm", "compress"});
    ASSERT_EQ(got.size(), 1u);
    ASSERT_EQ(got[0].per_workload.size(), 2u);
    EXPECT_EQ(got[0].per_workload[0].workload, "norm");
    EXPECT_EQ(got[0].per_workload[1].workload, "compress");
    expectSuitesEqual(got[0],
                      runSuite(cache, {"norm", "compress"}, cfg));
}

TEST(ResultsJson, SerializesSchemaFields)
{
    TraceCache cache(kTestScale);
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Dfcm;
    cfg.l1_bits = 12;
    cfg.l2_bits = 10;
    const SuiteResult suite = runSuite(cache, {"norm"}, cfg);

    ResultsJsonWriter json("unit_test", kTestScale, 3);
    json.add(cfg, suite);
    json.setWallSeconds(1.5);
    SweepExecution exec;
    exec.cells = 1;
    exec.fused_cells = 1;
    exec.trace_walks = 1;
    exec.store_enabled = true;
    exec.store_hits = 1;
    exec.acquisition_seconds = 0.25;
    exec.simd_backend = "avx2";
    exec.vector_width = 256;
    exec.gather_min_bits = 18;
    exec.gather_columns = 24;
    json.setExecution(exec);
    const std::string s = json.toJson();
    EXPECT_NE(s.find("\"schema_version\": 8"), std::string::npos);
    EXPECT_NE(s.find("\"simd_backend\": \"avx2\""), std::string::npos);
    EXPECT_NE(s.find("\"vector_width\": 256"), std::string::npos);
    EXPECT_NE(s.find("\"gather_min_bits\": 18"), std::string::npos);
    EXPECT_NE(s.find("\"gather_columns\": 24"), std::string::npos);
    EXPECT_NE(s.find("\"trace_store_enabled\": true"),
              std::string::npos);
    EXPECT_NE(s.find("\"trace_store_hits\": 1"), std::string::npos);
    EXPECT_NE(s.find("\"trace_store_misses\": 0"), std::string::npos);
    EXPECT_NE(s.find("\"trace_acquisition_ms\": 250"),
              std::string::npos);
    EXPECT_NE(s.find("\"experiment\": \"unit_test\""), std::string::npos);
    EXPECT_NE(s.find("\"trace_scale\": 0.03"), std::string::npos);
    EXPECT_NE(s.find("\"jobs\": 3"), std::string::npos);
    EXPECT_NE(s.find("\"wall_seconds\": 1.5"), std::string::npos);
    EXPECT_NE(s.find("\"kind\": \"dfcm\""), std::string::npos);
    EXPECT_NE(s.find("\"l1_bits\": 12"), std::string::npos);
    EXPECT_NE(s.find("\"l2_bits\": 10"), std::string::npos);
    EXPECT_NE(s.find("\"workload\": \"norm\""), std::string::npos);
    EXPECT_NE(s.find("\"accuracy\": "), std::string::npos);
    EXPECT_EQ(json.resultCount(), 1u);
}

TEST(ResultsJson, SerializesTables)
{
    ResultsJsonWriter json("unit_test_table", 1.0, 1);
    json.setWallSeconds(0.0);
    json.addTable("scaling", {"backend", "producers", "rate"},
                  {{"avx512", 1.0, 2.5e6}, {"scalar", 4.0, 1.25e6}});
    json.addTable("empty_table", {"only_columns"}, {});
    const std::string s = json.toJson();
    EXPECT_NE(s.find("\"scaling\": {"), std::string::npos);
    EXPECT_NE(s.find("\"columns\": [\"backend\", \"producers\","
                     " \"rate\"]"),
              std::string::npos);
    EXPECT_NE(s.find("[\"avx512\", 1, 2500000]"), std::string::npos);
    EXPECT_NE(s.find("[\"scalar\", 4, 1250000]"), std::string::npos);
    EXPECT_NE(s.find("\"empty_table\": {"), std::string::npos);
    EXPECT_NE(s.find("\"rows\": []"), std::string::npos);
}

TEST(ResultsJson, WritesBenchFile)
{
    ResultsJsonWriter json("unit_test_file", 1.0, 1);
    ASSERT_TRUE(json.write());
    std::ifstream in("results/BENCH_unit_test_file.json");
    ASSERT_TRUE(in.good());
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first, "{");
}

TEST(ResultsJson, EscapesStrings)
{
    EXPECT_EQ(ResultsJsonWriter::escape("plain"), "plain");
    EXPECT_EQ(ResultsJsonWriter::escape("a\"b\\c\nd"),
              "a\\\"b\\\\c\\nd");
}

} // namespace
} // namespace vpred::harness
