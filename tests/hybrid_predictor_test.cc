/**
 * @file
 * Unit tests for the perfect-meta and counter-meta hybrids.
 */

#include <gtest/gtest.h>

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_value_predictor.hh"
#include "core/stats.hh"
#include "core/stride_predictor.hh"

namespace vpred
{
namespace
{

std::unique_ptr<ValuePredictor>
makeStride()
{
    return std::make_unique<StridePredictor>(8);
}

std::unique_ptr<ValuePredictor>
makeFcm()
{
    FcmConfig cfg;
    cfg.l1_bits = 8;
    cfg.l2_bits = 12;
    return std::make_unique<FcmPredictor>(cfg);
}

TEST(PerfectHybrid, CorrectWhenEitherComponentIsCorrect)
{
    PerfectHybridPredictor hybrid(makeStride(), makeFcm());
    // Stride pattern: the stride side nails it, FCM lags.
    PredictorStats s;
    for (int i = 0; i < 100; ++i)
        s.record(hybrid.predictAndUpdate(1, 3 * i));
    StridePredictor alone(8);
    PredictorStats s_alone = runTrace(alone, [] {
        ValueTrace t;
        for (int i = 0; i < 100; ++i)
            t.push_back({1, static_cast<Value>(3 * i)});
        return t;
    }());
    EXPECT_GE(s.correct, s_alone.correct);
}

TEST(PerfectHybrid, AtLeastAsGoodAsEachComponentOnMixedTrace)
{
    // Interleave a stride pattern and a context pattern.
    ValueTrace trace;
    const Value ctx[] = {9, 1, 7, 7, 2};
    for (int i = 0; i < 300; ++i) {
        trace.push_back({1, static_cast<Value>(5 * i)});
        trace.push_back({2, ctx[i % 5]});
    }

    PerfectHybridPredictor hybrid(makeStride(), makeFcm());
    const PredictorStats sh = runTrace(hybrid, trace);

    StridePredictor stride(8);
    const PredictorStats ss = runTrace(stride, trace);
    FcmPredictor fcm({.l1_bits = 8, .l2_bits = 12});
    const PredictorStats sf = runTrace(fcm, trace);

    EXPECT_GE(sh.correct, ss.correct);
    EXPECT_GE(sh.correct, sf.correct);
}

TEST(PerfectHybrid, StorageIsSumOfComponents)
{
    PerfectHybridPredictor hybrid(makeStride(), makeFcm());
    EXPECT_EQ(hybrid.storageBits(),
              makeStride()->storageBits() + makeFcm()->storageBits());
}

TEST(PerfectHybrid, UpdatesBothComponents)
{
    auto stride = makeStride();
    auto* stride_raw = static_cast<StridePredictor*>(stride.get());
    PerfectHybridPredictor hybrid(std::move(stride), makeFcm());
    for (int i = 0; i < 10; ++i)
        hybrid.predictAndUpdate(1, 4 * i);
    // The stride component saw every update.
    EXPECT_EQ(stride_raw->predict(1), 40u);
}

TEST(CounterHybrid, ConvergesToTheBetterComponentPerPc)
{
    CounterHybridPredictor hybrid(
            makeStride(),
            std::make_unique<LastValuePredictor>(8),
            CounterHybridPredictor::Config{.meta_bits = 8});
    // Stride data: the chooser should settle on the stride side.
    for (int i = 0; i < 50; ++i)
        hybrid.predictAndUpdate(1, 10 * i);
    EXPECT_TRUE(hybrid.choosesFirst(1));

    // A pattern where LVP wins: values alternate A A B B A A B B, so
    // the stride side keeps mispredicting the transitions with a
    // stale stride while LVP gets every second value.
    for (int i = 0; i < 200; ++i)
        hybrid.predictAndUpdate(2, (i / 2) % 2 == 0 ? 5 : 900);
    EXPECT_FALSE(hybrid.choosesFirst(2));
    // The earlier pc is unaffected (separate chooser entries).
    EXPECT_TRUE(hybrid.choosesFirst(1));
}

TEST(CounterHybrid, WorseThanPerfectHybrid)
{
    ValueTrace trace;
    const Value ctx[] = {9, 1, 7, 7, 2};
    for (int i = 0; i < 500; ++i) {
        trace.push_back({1, static_cast<Value>(5 * i)});
        trace.push_back({2, ctx[i % 5]});
    }
    CounterHybridPredictor real(
            makeStride(), makeFcm(),
            CounterHybridPredictor::Config{.meta_bits = 8});
    PerfectHybridPredictor perfect(makeStride(), makeFcm());
    EXPECT_LE(runTrace(real, trace).correct,
              runTrace(perfect, trace).correct);
}

TEST(CounterHybrid, StorageIncludesMetaTable)
{
    CounterHybridPredictor hybrid(
            makeStride(), makeFcm(),
            CounterHybridPredictor::Config{.meta_bits = 10,
                                           .counter_bits = 2});
    EXPECT_EQ(hybrid.storageBits(),
              makeStride()->storageBits() + makeFcm()->storageBits()
                      + 1024u * 2);
}

} // namespace
} // namespace vpred
