/**
 * @file
 * Unit tests for the last-n value predictor (Burtscher/Zorn
 * baseline).
 */

#include <gtest/gtest.h>

#include "core/last_n_predictor.hh"
#include "core/last_value_predictor.hh"
#include "core/stats.hh"

namespace vpred
{
namespace
{

TEST(LastNPredictor, NOneBehavesLikeLastValue)
{
    LastNPredictor p1(8, 1);
    LastValuePredictor lvp(8);
    ValueTrace trace;
    for (int i = 0; i < 2000; ++i)
        trace.push_back({static_cast<Pc>(i % 5),
                         static_cast<Value>((i * 7) % 23)});
    EXPECT_EQ(runTrace(p1, trace), runTrace(lvp, trace));
}

TEST(LastNPredictor, DominantValueWithPeriodicOutliers)
{
    // A A A B repeated: LVP mispredicts both the outlier and the
    // return to A (2 of 4); a last-4 keeps A resident with a high
    // agreement counter and only misses the outlier itself.
    auto value = [](int i) -> Value { return i % 4 == 3 ? 900 : 7; };
    LastNPredictor p(8, 4);
    PredictorStats s;
    for (int i = 0; i < 400; ++i)
        s.record(p.predictAndUpdate(1, value(i)));
    LastValuePredictor lvp(8);
    PredictorStats sl;
    for (int i = 0; i < 400; ++i)
        sl.record(lvp.predictAndUpdate(1, value(i)));
    EXPECT_GT(s.correct, sl.correct + 80);
    EXPECT_GT(s.accuracy(), 0.70);
}

TEST(LastNPredictor, RecallsARecurringConstantThroughNoise)
{
    // Value 42 dominates with occasional outliers; a last-4 keeps 42
    // resident and re-predicts it immediately after an outlier.
    LastNPredictor p(8, 4);
    for (int i = 0; i < 50; ++i)
        p.predictAndUpdate(1, 42);
    p.predictAndUpdate(1, 999);  // outlier
    EXPECT_EQ(p.predict(1), 42u);
}

TEST(LastNPredictor, PerfectOnConstants)
{
    LastNPredictor p(8, 4);
    PredictorStats s;
    for (int i = 0; i < 100; ++i)
        s.record(p.predictAndUpdate(3, 1234));
    EXPECT_GE(s.correct, 99u);
}

TEST(LastNPredictor, StorageGrowsWithN)
{
    EXPECT_EQ(LastNPredictor(10, 1).storageBits(), 1024u * 36);
    EXPECT_EQ(LastNPredictor(10, 4).storageBits(), 1024u * 4 * 36);
}

TEST(LastNPredictor, Name)
{
    EXPECT_EQ(LastNPredictor(12, 4).name(), "last4(t=12)");
}

} // namespace
} // namespace vpred
