/**
 * @file
 * Fuzz-lite VM tests: pseudo-random but *valid* straight-line
 * programs must execute deterministically, never corrupt machine
 * invariants, and agree between two runs. Catches interpreter bugs
 * the scenario tests do not reach.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/assembler.hh"
#include "sim/machine.hh"
#include "sim/tracer.hh"
#include "tracegen/pattern.hh"

namespace vpred::sim
{
namespace
{

/** Generate a valid straight-line program: ALU soup over $t0..$t7
 *  seeded with constants, ending in a checksum print + exit. */
std::string
randomProgram(std::uint64_t seed, int length)
{
    tracegen::Xorshift rng(seed);
    std::ostringstream os;
    // Seed registers (avoid zero to keep div/rem legal).
    for (int r = 0; r < 8; ++r) {
        os << "li $t" << r << ", "
           << (1 + (rng.next() & 0xFFFF)) << "\n";
    }
    const char* ops[] = {"add", "sub", "mul", "and", "or", "xor",
                         "nor", "slt", "sltu"};
    for (int i = 0; i < length; ++i) {
        const auto kind = static_cast<unsigned>(rng.nextBelow(12));
        const auto rd = static_cast<unsigned>(rng.nextBelow(8));
        const auto rs = static_cast<unsigned>(rng.nextBelow(8));
        const auto rt = static_cast<unsigned>(rng.nextBelow(8));
        if (kind < 9) {
            os << ops[kind] << " $t" << rd << ", $t" << rs << ", $t"
               << rt << "\n";
        } else if (kind == 9) {
            os << "addi $t" << rd << ", $t" << rs << ", "
               << static_cast<int>(rng.nextBelow(1000)) - 500 << "\n";
        } else if (kind == 10) {
            os << "sll $t" << rd << ", $t" << rs << ", "
               << rng.nextBelow(31) << "\n";
        } else {
            os << "sra $t" << rd << ", $t" << rs << ", "
               << rng.nextBelow(31) << "\n";
        }
    }
    // Fold registers into a checksum and print it.
    os << "move $a0, $t0\n";
    for (int r = 1; r < 8; ++r)
        os << "xor $a0, $a0, $t" << r << "\n";
    os << "li $v0, 1\nsyscall\nli $v0, 10\nsyscall\n";
    return os.str();
}

class VmFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(VmFuzz, DeterministicAndBounded)
{
    const std::string source = randomProgram(GetParam(), 300);
    const Program program = assemble(source);

    const TraceResult a = traceProgram(program, 1u << 20);
    const TraceResult b = traceProgram(program, 1u << 20);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.output, b.output);
    // Straight-line: executes every instruction exactly once.
    EXPECT_EQ(a.instructions, program.text.size());
    // All values 32-bit.
    for (const TraceRecord& rec : a.trace)
        ASSERT_LE(rec.value, 0xFFFFFFFFull);
    // Every eligible record's pc is a real text index.
    for (const TraceRecord& rec : a.trace)
        ASSERT_LT(rec.pc, program.text.size());
}

TEST_P(VmFuzz, RegisterZeroStaysZero)
{
    const Program program = assemble(randomProgram(GetParam(), 100));
    Machine m(program);
    while (!m.halted()) {
        m.step();
        ASSERT_EQ(m.reg(0), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzz,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u,
                                           0xDEADBEEFu),
                         [](const auto& param_info) {
                             return "seed"
                                     + std::to_string(param_info.index);
                         });

} // namespace
} // namespace vpred::sim
