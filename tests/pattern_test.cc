/**
 * @file
 * Unit tests for the synthetic pattern sources.
 */

#include <gtest/gtest.h>

#include "tracegen/pattern.hh"

namespace vpred::tracegen
{
namespace
{

TEST(Xorshift, DeterministicPerSeed)
{
    Xorshift a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c;
    }
    EXPECT_NE(Xorshift(42).next(), Xorshift(43).next());
}

TEST(Xorshift, ZeroSeedIsValid)
{
    Xorshift z(0);
    EXPECT_NE(z.next(), 0u);
}

TEST(Xorshift, NextBelowInRange)
{
    Xorshift r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(13), 13u);
}

TEST(ConstantPattern, AlwaysSame)
{
    ConstantPattern p(99);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(p.next(), 99u);
}

TEST(StridePattern, ProducesArithmeticSequence)
{
    StridePattern p(100, 7);
    EXPECT_EQ(p.next(), 100u);
    EXPECT_EQ(p.next(), 107u);
    EXPECT_EQ(p.next(), 114u);
}

TEST(StridePattern, WrapsAtLength)
{
    StridePattern p(0, 1, 3);
    EXPECT_EQ(p.next(), 0u);
    EXPECT_EQ(p.next(), 1u);
    EXPECT_EQ(p.next(), 2u);
    EXPECT_EQ(p.next(), 0u);  // wrap
    EXPECT_EQ(p.next(), 1u);
}

TEST(StridePattern, ResetRestarts)
{
    StridePattern p(5, 2);
    p.next();
    p.next();
    p.reset();
    EXPECT_EQ(p.next(), 5u);
}

TEST(StridePattern, MasksToValueBits)
{
    StridePattern p(0xFFFF, 1, 0, 16);
    EXPECT_EQ(p.next(), 0xFFFFu);
    EXPECT_EQ(p.next(), 0u);  // wraps in 16 bits
}

TEST(SequencePattern, CyclesThroughValues)
{
    SequencePattern p({4, 8, 15});
    EXPECT_EQ(p.next(), 4u);
    EXPECT_EQ(p.next(), 8u);
    EXPECT_EQ(p.next(), 15u);
    EXPECT_EQ(p.next(), 4u);
}

TEST(MarkovPattern, StaysInAlphabet)
{
    MarkovPattern p({10, 20, 30, 40}, 2, 99);
    for (int i = 0; i < 500; ++i) {
        const Value v = p.next();
        EXPECT_TRUE(v == 10 || v == 20 || v == 30 || v == 40);
    }
}

TEST(MarkovPattern, DeterministicAfterReset)
{
    MarkovPattern p({1, 2, 3, 4, 5}, 3, 1234);
    std::vector<Value> first;
    for (int i = 0; i < 50; ++i)
        first.push_back(p.next());
    p.reset();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(p.next(), first[i]);
}

TEST(MarkovPattern, FanoutOneIsACycle)
{
    // With one successor per symbol the walk is eventually periodic
    // and fully deterministic.
    MarkovPattern a({7, 8, 9}, 1, 5);
    MarkovPattern b({7, 8, 9}, 1, 5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomPattern, RespectsValueBits)
{
    RandomPattern p(3, 12);
    for (int i = 0; i < 200; ++i)
        EXPECT_LE(p.next(), maskBits(12));
}

} // namespace
} // namespace vpred::tracegen
