#!/usr/bin/env bash
# tools/check.sh — the repository's full correctness gate.
#
# Runs, in order:
#   release  Release build with REPRO_WERROR=ON (warning-clean is
#            enforced, not aspirational) + the full ctest suite
#   lint     tools/repro-lint over src/ bench/ examples/ tests/
#   asan     AddressSanitizer + UndefinedBehaviorSanitizer build,
#            full ctest suite (REPRO_ARENA=new pins table memory
#            inside the sanitizer's instrumented allocator)
#   tsan     ThreadSanitizer build, ctest -L "concurrency|perf"
#            (REPRO_ARENA=new likewise)
#   service  reduced-scale prediction-service smoke run
#            (REPRO_SERVICE_SMOKE=1 REPRO_SERVICE_SCALING=1: ~10k
#            streams through bench_service_load in a scratch cwd,
#            plus the 2-point reduced scaling sweep) — exercises the
#            sharded ingest/evict/spill path and the thread-scaling
#            harness end to end and checks that BENCH_service.json
#            carries the "scaling" table
#   perf     reduced-scale bench_throughput run plus a service smoke
#            run in scratch cwds, then bench-compare against the
#            committed results/BENCH_throughput.json and
#            results/BENCH_service.json (records/s drop beyond
#            REPRO_PERF_THRESHOLD, default 25%, or a "_p50"/"_p99"
#            latency quantile rising beyond
#            REPRO_PERF_LATENCY_THRESHOLD, default 100%, fails after
#            one retry; CI runs this enforcing, and
#            REPRO_PERF_WARN_ONLY=1 reports without failing for
#            underpowered dev machines — the bench's own bit-identity
#            cross-check still hard-fails). REPRO_PERF_SCALE
#            overrides the 0.25 trace scale; see EXPERIMENTS.md for
#            the baseline-refresh workflow.
#   figures  regenerate every figure CSV in a scratch directory and
#            byte-diff it against the committed results/ copies
#
# Usage:
#   tools/check.sh              # everything
#   tools/check.sh lint figures # just the named stages
#
# Sanitizer and release configurations use separate build trees
# (build-check-*) so they never poison an incremental dev build/.
# Set REPRO_TRACE_DIR to a writable directory to let all stages share
# one persistent trace store (EXPERIMENTS.md, "Persistent trace
# store"); figure output is byte-identical either way.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc)"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(release lint asan tsan service perf figures)

# Scratch dirs registered here are removed on any exit, including a
# failed stage under `set -e` and SIGINT/SIGTERM. The guarded
# expansion keeps `set -u` happy on an empty array under bash < 4.4.
CLEANUP=()
trap 'rm -rf ${CLEANUP[@]+"${CLEANUP[@]}"}' EXIT INT TERM

note() { printf '\n==> %s\n' "$*"; }

want() {
    local s
    for s in "${STAGES[@]}"; do [ "$s" = "$1" ] && return 0; done
    return 1
}

configure_and_test() {  # <build-dir> <ctest-args...> -- <cmake-args...>
    local dir="$1"; shift
    local ctest_args=()
    while [ "$1" != "--" ]; do ctest_args+=("$1"); shift; done
    shift
    cmake -B "$ROOT/$dir" -S "$ROOT" "$@" >/dev/null
    cmake --build "$ROOT/$dir" -j "$JOBS"
    ctest --test-dir "$ROOT/$dir" --output-on-failure -j "$JOBS" \
          "${ctest_args[@]}"
}

if want release; then
    note "release: warning-clean build (REPRO_WERROR=ON) + full ctest"
    configure_and_test build-check-release -- \
        -DCMAKE_BUILD_TYPE=Release -DREPRO_WERROR=ON
fi

if want lint; then
    note "lint: repro-lint over the tree"
    # Always configure + build. An existence check here once let a
    # renamed rule TU leave a stale binary linting green; configure is
    # cheap against a warm build tree and a no-op build costs nothing.
    cmake -B "$ROOT/build-check-release" -S "$ROOT" \
          -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "$ROOT/build-check-release" -j "$JOBS" \
          --target repro-lint
    # Human findings go to stdout; a SARIF 2.1.0 log is always written
    # too. Set REPRO_LINT_SARIF to keep it (CI uploads it to code
    # scanning); by default it lands in a scratch dir and is removed.
    if [ -n "${REPRO_LINT_SARIF:-}" ]; then
        LINT_SARIF="$REPRO_LINT_SARIF"
    else
        LINT_DIR="$(mktemp -d "${TMPDIR:-/tmp}/vpred-lint.XXXXXX")"
        CLEANUP+=("$LINT_DIR")
        LINT_SARIF="$LINT_DIR/repro-lint.sarif"
    fi
    "$ROOT/build-check-release/tools/repro-lint" --root "$ROOT" \
        --format "sarif=$LINT_SARIF"
fi

# Sanitizer runs pin the table arena to operator new: mmap-backed
# tables sit outside ASan's redzones and TSan's shadow is happier
# without MADV_HUGEPAGE churn. table_arena.cc already defaults to
# `new` when it detects a sanitizer build; the explicit pin keeps
# these jobs deterministic even if that detection ever changes.
if want asan; then
    note "asan: ASan+UBSan build + full ctest (REPRO_ARENA=new)"
    ( export REPRO_ARENA=new
      configure_and_test build-check-asan -- \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DREPRO_ASAN=ON -DREPRO_UBSAN=ON )
fi

if want tsan; then
    note "tsan: TSan build + ctest -L 'concurrency|perf' (REPRO_ARENA=new)"
    ( export REPRO_ARENA=new
      configure_and_test build-check-tsan -L "concurrency|perf" -- \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DREPRO_TSAN=ON )
fi

if want service; then
    note "service: reduced-scale sharded-service smoke + scaling sweep"
    [ -x "$ROOT/build-check-release/bench/bench_service_load" ] || {
        echo "service stage needs the release stage first" >&2; exit 1; }
    SERVICE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/vpred-service.XXXXXX")"
    CLEANUP+=("$SERVICE_DIR")
    (
        cd "$SERVICE_DIR"
        REPRO_SERVICE_SMOKE=1 REPRO_SERVICE_SCALING=1 \
            "$ROOT/build-check-release/bench/bench_service_load"
    )
    [ -s "$SERVICE_DIR/results/BENCH_service.json" ] || {
        echo "service smoke did not emit BENCH_service.json" >&2; exit 1; }
    # The reduced sweep (2 points on the active backend) proves the
    # producer/thread harness works end to end; monotonicity is only
    # asserted on the full-scale committed run (EXPERIMENTS.md), not
    # on this noise-prone smoke shape.
    grep -q '"scaling"' "$SERVICE_DIR/results/BENCH_service.json" || {
        echo "service smoke JSON has no \"scaling\" table" >&2; exit 1; }
fi

if want perf; then
    note "perf: reduced-scale throughput run + bench-compare vs baseline"
    [ -x "$ROOT/build-check-release/bench/bench_throughput" ] &&
        [ -x "$ROOT/build-check-release/tools/bench-compare" ] || {
        echo "perf stage needs the release stage first" >&2; exit 1; }
    PERF_DIR="$(mktemp -d "${TMPDIR:-/tmp}/vpred-perf.XXXXXX")"
    CLEANUP+=("$PERF_DIR")
    # The scratch cwd keeps the fresh BENCH JSON away from the
    # committed baseline; the benches themselves exit non-zero if any
    # execution path loses bit-identity, which stays a hard failure
    # even under REPRO_PERF_WARN_ONLY (a failing bench aborts the
    # stage before any compare or retry).
    #
    # The compare threshold defaults to 25% — wider than the tool's
    # 10% default because shared runners and virtualized dev machines
    # show bursty host-level CPU steal — and one retry absorbs a
    # burst that spans a whole run. A real regression fails both
    # attempts. REPRO_PERF_THRESHOLD tightens or loosens the gate.
    # Latency quantiles gate the opposite direction at a 100% default
    # (REPRO_PERF_LATENCY_THRESHOLD): tails jitter far more than
    # rates, so this arm exists to catch order-of-magnitude latency
    # inflation and zero-valued (clamped-timestamp) quantiles, not to
    # litigate a noisy p99.
    perf_gate() {  # <baseline-json> <bench-binary> <env-prefix...>
        local baseline="$1" bench="$2"; shift 2
        local fresh="$PERF_DIR/results/$(basename "$baseline")"
        local attempt
        for attempt in 1 2; do
            (cd "$PERF_DIR" && env "$@" "$bench")
            if "$ROOT/build-check-release/tools/bench-compare" \
                    "$ROOT/$baseline" "$fresh" \
                    --threshold "${REPRO_PERF_THRESHOLD:-0.25}" \
                    --latency-threshold \
                    "${REPRO_PERF_LATENCY_THRESHOLD:-1.0}" \
                    ${REPRO_PERF_WARN_ONLY:+--warn-only}; then
                return 0
            fi
            echo "perf: $(basename "$bench") compare failed" \
                 "(attempt $attempt of 2)" >&2
        done
        return 1
    }
    perf_gate results/BENCH_throughput.json \
        "$ROOT/build-check-release/bench/bench_throughput" \
        REPRO_TRACE_SCALE="${REPRO_PERF_SCALE:-0.25}"
    # The service baseline is gated the same way, against a smoke run
    # (metrics the smoke shape does not produce are reported as
    # one-sided and never fail; the smoke rate sits above the
    # full-scale committed rate because the working set shrinks with
    # the stream population, mirroring the reduced-trace-scale
    # throughput run above).
    perf_gate results/BENCH_service.json \
        "$ROOT/build-check-release/bench/bench_service_load" \
        REPRO_SERVICE_SMOKE=1
fi

if want figures; then
    note "figures: regenerate CSVs in a scratch cwd, diff vs results/"
    [ -d "$ROOT/build-check-release/bench" ] || {
        echo "figures stage needs the release stage first" >&2; exit 1; }
    SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/vpred-figures.XXXXXX")"
    CLEANUP+=("$SCRATCH")
    (
        cd "$SCRATCH"
        for b in "$ROOT"/build-check-release/bench/bench_*; do
            # The load generator runs at full scale (1M streams) and
            # emits no CSV — it has its own `service` smoke stage.
            [ "$(basename "$b")" = bench_service_load ] && continue
            echo "  running $(basename "$b")"
            "$b" > /dev/null
        done
    )
    fail=0
    for csv in "$SCRATCH"/results/*.csv; do
        rel="results/$(basename "$csv")"
        if ! cmp -s "$csv" "$ROOT/$rel"; then
            echo "FIGURE DRIFT: $rel differs from the committed copy" >&2
            diff -u "$ROOT/$rel" "$csv" | head -20 >&2 || true
            fail=1
        fi
    done
    [ "$fail" -eq 0 ] && echo "all regenerated figure CSVs are" \
                              "byte-identical to results/"
    [ "$fail" -eq 0 ]
fi

note "check.sh: all requested stages passed (${STAGES[*]})"
