#include "bench_compare/compare.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>

#include "core/parse_util.hh"

namespace bench_compare
{

namespace
{

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string& s)
{
    const std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
endsWith(const std::string& name, std::string_view suffix)
{
    return name.size() >= suffix.size()
            && name.compare(name.size() - suffix.size(), suffix.size(),
                            suffix)
            == 0;
}

} // namespace

bool
isThroughputMetric(const std::string& name)
{
    return endsWith(name, "_records_per_sec");
}

bool
isLatencyQuantileMetric(const std::string& name)
{
    // The quantile tag floats ("service_p99_..._ns" and "..._p99_ns"
    // both occur) but the unit suffix anchors the classification: a
    // "_p99_count" is not a latency and must stay ungated.
    return endsWith(name, "_ns")
            && (name.find("_p50") != std::string::npos
                || name.find("_p99") != std::string::npos);
}

bool
Comparison::anyRegression() const
{
    return std::any_of(deltas.begin(), deltas.end(),
                       [](const MetricDelta& d) { return d.regressed; });
}

bool
Comparison::anyIncomparable() const
{
    return std::any_of(deltas.begin(), deltas.end(),
                       [](const MetricDelta& d) {
                           return d.incomparable;
                       });
}

bool
Comparison::anyFailure() const
{
    return !errors.empty() || anyRegression() || anyIncomparable();
}

std::optional<std::vector<std::pair<std::string, double>>>
parseMetrics(const std::string& json, const std::string& label,
             std::vector<std::string>& errors)
{
    const std::size_t key = json.find("\"metrics\"");
    if (key == std::string::npos) {
        errors.push_back(label + ": no \"metrics\" object");
        return std::nullopt;
    }
    const std::size_t open = json.find('{', key);
    const std::size_t close =
            open == std::string::npos ? open : json.find('}', open);
    if (close == std::string::npos) {
        errors.push_back(label + ": unterminated \"metrics\" object");
        return std::nullopt;
    }

    std::vector<std::pair<std::string, double>> out;
    std::size_t pos = open + 1;
    while (pos < close) {
        const std::size_t q1 = json.find('"', pos);
        if (q1 == std::string::npos || q1 >= close)
            break;  // no more pairs
        const std::size_t q2 = json.find('"', q1 + 1);
        const std::size_t colon =
                q2 == std::string::npos ? q2 : json.find(':', q2);
        if (colon == std::string::npos || colon >= close) {
            errors.push_back(label + ": malformed metric pair");
            return std::nullopt;
        }
        std::size_t vend = json.find(',', colon);
        if (vend == std::string::npos || vend > close)
            vend = close;
        const std::string name = json.substr(q1 + 1, q2 - q1 - 1);
        const std::string text =
                trim(json.substr(colon + 1, vend - colon - 1));
        const std::optional<double> v = vpred::parseDouble(text);
        if (!v) {
            errors.push_back(label + ": metric \"" + name
                             + "\" has non-numeric value '" + text + "'");
            return std::nullopt;
        }
        out.emplace_back(name, *v);
        pos = vend + 1;
    }
    return out;
}

std::optional<std::vector<std::pair<std::string, double>>>
parseScalingMetrics(const std::string& json, const std::string& label,
                    std::vector<std::string>& errors)
{
    std::vector<std::pair<std::string, double>> out;
    const std::size_t key = json.find("\"scaling\"");
    if (key == std::string::npos)
        return out;  // no sweep in this document; nothing to gate

    const auto fail = [&](const std::string& what) {
        errors.push_back(label + ": scaling table " + what);
        return std::nullopt;
    };

    // The emitter writes the "columns" array on one line and each
    // row as one bracketed line with no nested arrays, so bracket
    // scanning is exact (same contract as the metrics parser: this
    // reads ResultsJsonWriter's output, not general JSON).
    const std::size_t cols_key = json.find("\"columns\"", key);
    const std::size_t cols_open =
            cols_key == std::string::npos ? cols_key
                                          : json.find('[', cols_key);
    const std::size_t cols_close = cols_open == std::string::npos
            ? cols_open
            : json.find(']', cols_open);
    if (cols_close == std::string::npos)
        return fail("has no \"columns\" array");
    std::vector<std::string> columns;
    std::size_t pos = cols_open + 1;
    while (true) {
        const std::size_t q1 = json.find('"', pos);
        if (q1 == std::string::npos || q1 > cols_close)
            break;
        const std::size_t q2 = json.find('"', q1 + 1);
        if (q2 == std::string::npos || q2 > cols_close)
            return fail("has an unterminated column name");
        columns.push_back(json.substr(q1 + 1, q2 - q1 - 1));
        pos = q2 + 1;
    }
    const auto col_index = [&](std::string_view name) {
        for (std::size_t i = 0; i < columns.size(); ++i)
            if (columns[i] == name)
                return static_cast<std::ptrdiff_t>(i);
        return std::ptrdiff_t{-1};
    };
    const std::ptrdiff_t backend_col = col_index("backend");
    const std::ptrdiff_t producers_col = col_index("producers");
    const std::ptrdiff_t shards_col = col_index("shards");
    if (backend_col < 0 || producers_col < 0 || shards_col < 0)
        return fail("is missing a backend/producers/shards column");

    const std::size_t rows_key = json.find("\"rows\"", cols_close);
    const std::size_t rows_open =
            rows_key == std::string::npos ? rows_key
                                          : json.find('[', rows_key);
    if (rows_open == std::string::npos)
        return fail("has no \"rows\" array");
    pos = rows_open + 1;
    while (true) {
        const std::size_t next = json.find_first_of("[]", pos);
        if (next == std::string::npos)
            return fail("has an unterminated \"rows\" array");
        if (json[next] == ']')
            break;  // end of the rows array
        const std::size_t row_close = json.find(']', next);
        if (row_close == std::string::npos)
            return fail("has an unterminated row");
        // Split the row's cells at commas (cells contain no nesting;
        // backend names carry no commas).
        std::vector<std::string> cells;
        std::size_t cell_begin = next + 1;
        while (cell_begin < row_close) {
            std::size_t cell_end = json.find(',', cell_begin);
            if (cell_end == std::string::npos || cell_end > row_close)
                cell_end = row_close;
            cells.push_back(trim(
                    json.substr(cell_begin, cell_end - cell_begin)));
            cell_begin = cell_end + 1;
        }
        if (cells.size() != columns.size())
            return fail("has a row with " + std::to_string(cells.size())
                        + " cells for " + std::to_string(columns.size())
                        + " columns");
        const auto cell_number = [&](std::size_t i) {
            return vpred::parseDouble(cells[i]);
        };
        const std::string& backend_cell =
                cells[static_cast<std::size_t>(backend_col)];
        if (backend_cell.size() < 2 || backend_cell.front() != '"'
            || backend_cell.back() != '"')
            return fail("has a non-string backend cell '" + backend_cell
                        + "'");
        const auto producers =
                cell_number(static_cast<std::size_t>(producers_col));
        const auto shards =
                cell_number(static_cast<std::size_t>(shards_col));
        if (!producers || !shards)
            return fail("has a non-numeric producers/shards cell");
        const std::string stem = "scaling_"
                + backend_cell.substr(1, backend_cell.size() - 2) + "_p"
                + std::to_string(static_cast<long long>(*producers))
                + "_s"
                + std::to_string(static_cast<long long>(*shards));
        // Only the throughput column becomes a gated metric. The
        // per-row latency quantiles are deliberately left out: the
        // smoke sweep runs a far smaller stream population than the
        // committed grid, which moves tail latency by integer
        // factors while per-row throughput stays comparable — gating
        // them would fail every reduced-scale run on regime, not
        // regression.
        for (std::size_t i = 0; i < columns.size(); ++i) {
            const std::string name = stem + "_" + columns[i];
            if (!isThroughputMetric(name))
                continue;
            const auto v = cell_number(i);
            if (!v)
                return fail("has a non-numeric \"" + columns[i]
                            + "\" cell");
            out.emplace_back(name, *v);
        }
        pos = row_close + 1;
    }
    return out;
}

Comparison
compare(const std::string& baseline_json, const std::string& fresh_json,
        double threshold, double latency_threshold)
{
    Comparison cmp;
    auto base = parseMetrics(baseline_json, "baseline", cmp.errors);
    auto fresh = parseMetrics(fresh_json, "fresh", cmp.errors);
    const auto base_scaling =
            parseScalingMetrics(baseline_json, "baseline", cmp.errors);
    const auto fresh_scaling =
            parseScalingMetrics(fresh_json, "fresh", cmp.errors);
    if (!base || !fresh || !base_scaling || !fresh_scaling)
        return cmp;
    base->insert(base->end(), base_scaling->begin(),
                 base_scaling->end());
    fresh->insert(fresh->end(), fresh_scaling->begin(),
                  fresh_scaling->end());

    std::map<std::string, double> fresh_by_name(fresh->begin(),
                                                fresh->end());
    // A gated side is usable iff it is finite and strictly positive:
    // a zero rate means the bench never ran, a 0 ns quantile means
    // the producer timestamps were clamped or missing, and a NaN is
    // a malformed document that parsed as the literal "nan". Either
    // used to be skipped silently, turning a corrupted baseline into
    // a vacuous pass.
    const auto usable = [](double v) {
        return std::isfinite(v) && v > 0.0;
    };
    for (const auto& [name, bval] : *base) {
        const bool throughput = isThroughputMetric(name);
        const bool latency = isLatencyQuantileMetric(name);
        MetricDelta d;
        d.name = name;
        d.baseline = bval;
        const auto it = fresh_by_name.find(name);
        if (it != fresh_by_name.end()) {
            d.fresh = it->second;
            if ((throughput || latency)
                && (!usable(bval) || !usable(it->second))) {
                d.incomparable = true;
            } else if (usable(bval)) {
                d.ratio = it->second / bval;
            }
            if (d.ratio) {
                d.regressed = throughput
                        ? *d.ratio < 1.0 - threshold
                        : latency && *d.ratio > 1.0 + latency_threshold;
            }
            fresh_by_name.erase(it);
        } else if ((throughput || latency) && !usable(bval)) {
            // A corrupt baseline with no fresh counterpart is still a
            // corrupt baseline; refuse to bless it.
            d.incomparable = true;
        }
        cmp.deltas.push_back(std::move(d));
    }
    // Metrics only the fresh run has (new in this build): reported,
    // never a regression. This is what makes latency quantiles
    // comparable by absence — a baseline committed before the
    // quantiles existed gates nothing until it is refreshed.
    for (const auto& [name, fval] : *fresh) {
        if (fresh_by_name.count(name) == 0)
            continue;
        MetricDelta d;
        d.name = name;
        d.fresh = fval;
        cmp.deltas.push_back(std::move(d));
    }
    return cmp;
}

void
printReport(std::ostream& os, const Comparison& cmp, double threshold,
            double latency_threshold)
{
    for (const std::string& e : cmp.errors)
        os << "error: " << e << "\n";
    if (!cmp.errors.empty())
        return;

    const auto old_flags = os.flags();
    const auto old_prec = os.precision();
    os << std::fixed;
    for (const MetricDelta& d : cmp.deltas) {
        os << (d.regressed      ? "REGRESSED "
               : d.incomparable ? "INCOMPARABLE "
                                : "          ")
           << d.name << ": ";
        if (d.baseline)
            os << std::setprecision(3) << *d.baseline;
        else
            os << "(new)";
        os << " -> ";
        if (d.fresh)
            os << std::setprecision(3) << *d.fresh;
        else
            os << "(gone)";
        if (d.ratio)
            os << "  (x" << std::setprecision(3) << *d.ratio << ")";
        os << "\n";
    }
    const std::size_t thr_regressions = static_cast<std::size_t>(
            std::count_if(cmp.deltas.begin(), cmp.deltas.end(),
                          [](const MetricDelta& d) {
                              return d.regressed
                                      && isThroughputMetric(d.name);
                          }));
    const std::size_t lat_regressions = static_cast<std::size_t>(
            std::count_if(cmp.deltas.begin(), cmp.deltas.end(),
                          [](const MetricDelta& d) {
                              return d.regressed
                                      && !isThroughputMetric(d.name);
                          }));
    const std::size_t incomparable = static_cast<std::size_t>(
            std::count_if(cmp.deltas.begin(), cmp.deltas.end(),
                          [](const MetricDelta& d) {
                              return d.incomparable;
                          }));
    os << (thr_regressions + lat_regressions + incomparable == 0
                   ? "OK"
                   : "FAIL")
       << ": " << thr_regressions << " throughput metric(s) more than "
       << std::setprecision(0) << threshold * 100.0
       << "% below baseline, " << lat_regressions
       << " latency quantile(s) more than " << std::setprecision(0)
       << latency_threshold * 100.0 << "% above baseline";
    if (incomparable != 0)
        os << ", " << incomparable
           << " incomparable (zero/NaN gated metric — corrupt baseline"
              " or fresh run?)";
    os << "\n";
    os.flags(old_flags);
    os.precision(old_prec);
}

} // namespace bench_compare
