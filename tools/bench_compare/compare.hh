/**
 * @file
 * bench-compare — the throughput-regression gate behind tools/check.sh.
 *
 * Compares the "metrics" object of two BENCH JSON files (the format
 * ResultsJsonWriter emits, see src/harness/results_json.hh): a
 * committed baseline (results/BENCH_throughput.json at HEAD) and a
 * freshly measured run. Every metric whose name ends in
 * "_records_per_sec" is a throughput; a fresh value more than
 * `threshold` (default 10%) below the baseline is a regression and
 * fails the gate. Every metric whose name ends in "_ns" and carries a
 * "_p50" or "_p99" tag is a latency quantile; those regress in the
 * *opposite* direction — a fresh value more than `latency_threshold`
 * (default 25%, latency is noisier than throughput) above the
 * baseline fails the gate. A gated metric with a zero, negative or
 * NaN value on either side is *incomparable* and also fails — a
 * corrupted baseline must never make the gate vacuously pass, and a
 * 0 ns quantile is a broken timestamp, not a fast drain. Ungated
 * metrics and metrics present on only one side are reported but
 * never fail; in particular a baseline committed before a latency
 * quantile existed is comparable by absence, so adding quantiles
 * never breaks the gate against history.
 *
 * Documents carrying a "scaling" table (the service bench's
 * per-(backend, producers, shards) sweep) additionally gate each
 * sweep point: every row's records_per_sec is synthesized into a
 * metric named scaling_<backend>_p<producers>_s<shards>_records_per_sec
 * and flows through the same threshold machinery, so a throughput
 * regression in one corner of the committed scaling curve fails the
 * gate even when the headline metric holds. Rows only one side has
 * compare by absence, which keeps the reduced smoke sweep compatible
 * with a full committed grid.
 *
 * The parser handles exactly the emitter's output — a flat
 * `"metrics": { "name": number, ... }` object with one pair per line
 * and one bracketed line per table row — not general JSON. That
 * keeps the tool dependency-free and is safe because both inputs
 * come from the same emitter; anything unrecognized is a parse
 * error, not a silent skip.
 */

#ifndef DFCM_TOOLS_BENCH_COMPARE_COMPARE_HH
#define DFCM_TOOLS_BENCH_COMPARE_COMPARE_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace bench_compare
{

/** One metric present in at least one of the two files. */
struct MetricDelta
{
    std::string name;
    std::optional<double> baseline;  //!< absent: new metric
    std::optional<double> fresh;     //!< absent: metric disappeared
    /** fresh / baseline when both sides are present and positive. */
    std::optional<double> ratio;
    /** True when this gated metric moved past its threshold in the
     *  bad direction: a "_records_per_sec" throughput that fell more
     *  than `threshold` below the baseline, or a "_p50"/"_p99" "_ns"
     *  latency quantile that rose more than `latency_threshold`
     *  above it. */
    bool regressed = false;
    /**
     * True when this is a gated (throughput or latency-quantile)
     * metric that *cannot* be compared: a baseline or fresh value
     * that is zero, negative or non-finite (a NaN survives JSON
     * parsing as the literal "nan"). Such a metric used to be
     * silently skipped, so a corrupted baseline made the gate
     * vacuously pass; now it fails the gate like a regression does.
     */
    bool incomparable = false;
};

/** Is @p name a gated throughput ("_records_per_sec" suffix)? */
bool isThroughputMetric(const std::string& name);

/** Is @p name a gated latency quantile ("_ns" suffix with a "_p50"
 *  or "_p99" tag anywhere in the name)? */
bool isLatencyQuantileMetric(const std::string& name);

/** Comparison of two metric sets at one threshold. */
struct Comparison
{
    std::vector<MetricDelta> deltas;  //!< baseline order, new ones last
    std::vector<std::string> errors;  //!< parse problems; fatal

    bool anyRegression() const;
    /** Any throughput metric with a zero/negative/NaN side. */
    bool anyIncomparable() const;
    /** What the gate acts on: parse errors, regressions, or
     *  incomparable throughput metrics. */
    bool anyFailure() const;
};

/**
 * Extract the "metrics" object of one BENCH JSON document as
 * (name, value) pairs in file order. Returns std::nullopt and
 * appends to @p errors when the document has no metrics object or a
 * pair does not parse.
 */
std::optional<std::vector<std::pair<std::string, double>>>
parseMetrics(const std::string& json, const std::string& label,
             std::vector<std::string>& errors);

/**
 * Extract the "scaling" table (the service bench's per-(backend,
 * producers, shards) sweep) as synthesized gated metrics:
 *
 *     scaling_<backend>_p<producers>_s<shards>_records_per_sec
 *
 * — one per row, so each sweep point's throughput flows through the
 * same threshold machinery as a top-level metric. The per-row
 * latency quantiles stay ungated: the smoke sweep's reduced stream
 * population shifts tail latency by regime, not regression. Rows
 * present in only one file compare by absence (reported, never
 * failed), which is what lets a reduced smoke sweep (2 points) gate
 * against a committed full grid. A document without a "scaling"
 * table yields an empty list — the table is optional, unlike the
 * "metrics" object. A table that is present but malformed (missing
 * key columns, ragged rows, a non-numeric throughput cell) is an
 * error.
 */
std::optional<std::vector<std::pair<std::string, double>>>
parseScalingMetrics(const std::string& json, const std::string& label,
                    std::vector<std::string>& errors);

/** Default allowed fractional rise for latency quantiles: shared
 *  runners jitter tail latency far more than throughput, so the
 *  latency gate ships looser than the 10% throughput default. */
inline constexpr double kDefaultLatencyThreshold = 0.25;

/**
 * Compare two BENCH JSON documents. @p threshold is the allowed
 * fractional drop for throughput metrics (0.10 = 10%);
 * @p latency_threshold the allowed fractional rise for latency
 * quantiles (0.25 = 25%).
 */
Comparison compare(const std::string& baseline_json,
                   const std::string& fresh_json, double threshold,
                   double latency_threshold = kDefaultLatencyThreshold);

/** Human-readable report: one line per metric plus a verdict line. */
void printReport(std::ostream& os, const Comparison& cmp,
                 double threshold,
                 double latency_threshold = kDefaultLatencyThreshold);

} // namespace bench_compare

#endif // DFCM_TOOLS_BENCH_COMPARE_COMPARE_HH
