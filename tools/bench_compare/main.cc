/**
 * @file
 * CLI for the throughput-regression gate:
 *
 *     bench-compare <baseline.json> <fresh.json>
 *                   [--threshold <frac>] [--latency-threshold <frac>]
 *                   [--warn-only]
 *
 * Exit status: 0 when no "_records_per_sec" metric fell more than
 * the threshold (default 0.10) below the baseline, no "_p50"/"_p99"
 * "_ns" latency quantile rose more than the latency threshold
 * (default 0.25) above it, and every gated metric was comparable;
 * 1 on regression, incomparable gated metric (zero/negative/NaN on
 * either side — a corrupt baseline must not vacuously pass the gate)
 * or parse error, 2 on usage error. A baseline that predates the
 * latency quantiles simply has nothing to gate them against and
 * passes. --warn-only prints the same report but always exits 0 on a
 * clean parse — CI uses it on noisy shared runners where a
 * wall-clock dip is not worth a red build, while tools/check.sh runs
 * the hard-failing default locally.
 */

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_compare/compare.hh"
#include "core/parse_util.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: bench-compare <baseline.json> <fresh.json>"
                 " [--threshold <frac>] [--latency-threshold <frac>]"
                 " [--warn-only]\n";
    return 2;
}

std::optional<std::string>
readFile(const char* path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char** argv)
{
    const char* paths[2] = {nullptr, nullptr};
    int n_paths = 0;
    double threshold = 0.10;
    double latency_threshold = bench_compare::kDefaultLatencyThreshold;
    bool warn_only = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--warn-only") == 0) {
            warn_only = true;
        } else if (std::strcmp(argv[i], "--threshold") == 0) {
            if (i + 1 >= argc)
                return usage();
            const std::optional<double> t =
                    vpred::parseDouble(argv[++i]);
            if (!t || *t < 0.0 || *t >= 1.0) {
                std::cerr << "bench-compare: bad threshold '" << argv[i]
                          << "' (want a fraction in [0, 1))\n";
                return 2;
            }
            threshold = *t;
        } else if (std::strcmp(argv[i], "--latency-threshold") == 0) {
            // A latency rise past 100% is a legitimate bound to allow
            // (tail latency doubles under load shifts), so unlike the
            // throughput drop this fraction has no upper cap.
            if (i + 1 >= argc)
                return usage();
            const std::optional<double> t =
                    vpred::parseDouble(argv[++i]);
            if (!t || !(*t >= 0.0) || !std::isfinite(*t)) {
                std::cerr << "bench-compare: bad latency threshold '"
                          << argv[i]
                          << "' (want a non-negative fraction)\n";
                return 2;
            }
            latency_threshold = *t;
        } else if (n_paths < 2) {
            paths[n_paths++] = argv[i];
        } else {
            return usage();
        }
    }
    if (n_paths != 2)
        return usage();

    const std::optional<std::string> base = readFile(paths[0]);
    if (!base) {
        std::cerr << "bench-compare: cannot read baseline " << paths[0]
                  << "\n";
        return 1;
    }
    const std::optional<std::string> fresh = readFile(paths[1]);
    if (!fresh) {
        std::cerr << "bench-compare: cannot read fresh run " << paths[1]
                  << "\n";
        return 1;
    }

    const bench_compare::Comparison cmp = bench_compare::compare(
            *base, *fresh, threshold, latency_threshold);
    bench_compare::printReport(std::cout, cmp, threshold,
                               latency_threshold);
    if (!cmp.errors.empty())
        return 1;
    if (cmp.anyFailure())
        return warn_only ? 0 : 1;
    return 0;
}
