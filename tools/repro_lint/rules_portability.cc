/**
 * @file
 * portability/raw-intrinsic: raw SIMD intrinsics and their headers
 * are banned everywhere except src/core/simd.hh.
 *
 * The vector kernels are compiled one translation unit per
 * instruction set, each with its own -m flags (src/core/CMakeLists).
 * That scheme is safe only while intrinsics stay behind the
 * simd::Native wrappers: an _mm256_* call leaking into a TU compiled
 * without -mavx2 is a build break on one machine and an illegal
 * instruction on another, and a second home for intrinsics silently
 * forks the one place the per-backend semantics (shift masking,
 * lane-width truncation) are reasoned about. simd.hh is the single
 * sanctioned wrapper layer; everything else uses its Vec operations.
 */

#include "repro_lint/lint.hh"

#include <cctype>
#include <string>

namespace repro_lint
{

namespace
{

/** The one file allowed to touch intrinsics directly. */
constexpr const char* kSimdHome = "src/core/simd.hh";

/** Vendor intrinsic headers: x86 (SSE/AVX families and the
 *  catch-alls) and Arm NEON. */
constexpr const char* kIntrinsicHeaders[] = {
    "immintrin.h", "emmintrin.h",  "xmmintrin.h", "pmmintrin.h",
    "tmmintrin.h", "smmintrin.h",  "nmmintrin.h", "ammintrin.h",
    "wmmintrin.h", "x86intrin.h",  "x86gprintrin.h",
    "arm_neon.h",  "arm_sve.h",
};

/** Identifier prefixes that only intrinsics use: the _mm/_mm256/
 *  _mm512 x86 families and the NEON load/store/lane-op spellings the
 *  kernels would plausibly reach for. */
constexpr const char* kIntrinsicPrefixes[] = {
    "_mm",  "vld1", "vst1", "vdupq_", "veorq_", "vandq_", "vorrq_",
    "vshlq_", "vshrq_", "vaddq_", "vsubq_", "vreinterpretq_",
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

void
checkPortability(const Tree& tree, std::vector<Finding>& out)
{
    for (const SourceFile& f : tree.files) {
        if (f.rel == kSimdHome)
            continue;  // the sanctioned home of raw intrinsics

        for (std::size_t i = 0; i < f.nocomment_lines.size(); ++i) {
            const std::string& line = f.nocomment_lines[i];
            if (line.find("#include") == std::string::npos)
                continue;
            for (const char* hdr : kIntrinsicHeaders) {
                if (line.find(hdr) != std::string::npos) {
                    emitFinding(f, static_cast<int>(i) + 1,
                                "portability/raw-intrinsic",
                                std::string("intrinsic header <") + hdr
                                        + "> may only be included by "
                                        + kSimdHome
                                        + "; use the simd::Native"
                                          " wrappers",
                                out);
                }
            }
        }

        for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
            const std::string& line = f.code_lines[i];
            for (const char* prefix : kIntrinsicPrefixes) {
                std::size_t pos = 0;
                while ((pos = line.find(prefix, pos))
                       != std::string::npos) {
                    // An intrinsic use starts at an identifier
                    // boundary and continues as an identifier (so
                    // e.g. "vld1q_u32(" matches but a bare word ending
                    // in the prefix does not produce a false start).
                    const bool boundary =
                            pos == 0 || !identChar(line[pos - 1]);
                    const std::size_t end = pos + std::string(prefix).size();
                    const bool continues =
                            end < line.size() && identChar(line[end]);
                    if (boundary
                        && (continues || prefix[0] == '_')) {
                        emitFinding(
                                f, static_cast<int>(i) + 1,
                                "portability/raw-intrinsic",
                                std::string("raw intrinsic '") + prefix
                                        + "...' outside " + kSimdHome
                                        + "; per-ISA code belongs"
                                          " behind simd::Native",
                                out);
                        break;  // one finding per line per prefix
                    }
                    pos = end;
                }
            }
        }
    }
}

} // namespace repro_lint
