/**
 * @file
 * portability/raw-intrinsic: raw SIMD intrinsics and their headers
 * are banned everywhere except src/core/simd.hh.
 *
 * The vector kernels are compiled one translation unit per
 * instruction set, each with its own -m flags (src/core/CMakeLists).
 * That scheme is safe only while intrinsics stay behind the
 * simd::Native wrappers: an _mm256_* call leaking into a TU compiled
 * without -mavx2 is a build break on one machine and an illegal
 * instruction on another, and a second home for intrinsics silently
 * forks the one place the per-backend semantics (shift masking,
 * lane-width truncation) are reasoned about. simd.hh is the single
 * sanctioned wrapper layer; everything else uses its Vec operations.
 *
 * portability/raw-mmap: the page-level allocation APIs (mmap,
 * munmap, madvise, aligned_alloc and the <sys/mman.h> header) are
 * banned everywhere except the table arena (src/core/table_arena.*),
 * the trace container (src/core/trace_io.*) and the trace store
 * (src/harness/trace_store.*). The arena is the repository's single
 * home for hot-table memory — its huge-page hinting, sanitizer
 * fallback and first-touch NUMA behaviour are reasoned about in one
 * place, and a stray mmap elsewhere forks that reasoning (and on
 * sanitizer builds silently escapes redzone instrumentation). The
 * trace I/O pair predates the arena and maps read-only files, a
 * different contract the arena does not cover.
 */

#include "repro_lint/lint.hh"

#include <cctype>
#include <string>

namespace repro_lint
{

namespace
{

/** The one file allowed to touch intrinsics directly. */
constexpr const char* kSimdHome = "src/core/simd.hh";

/** Vendor intrinsic headers: x86 (SSE/AVX families and the
 *  catch-alls) and Arm NEON. */
constexpr const char* kIntrinsicHeaders[] = {
    "immintrin.h", "emmintrin.h",  "xmmintrin.h", "pmmintrin.h",
    "tmmintrin.h", "smmintrin.h",  "nmmintrin.h", "ammintrin.h",
    "wmmintrin.h", "x86intrin.h",  "x86gprintrin.h",
    "arm_neon.h",  "arm_sve.h",
};

/** Identifier prefixes that only intrinsics use: the _mm/_mm256/
 *  _mm512 x86 families and the NEON load/store/lane-op spellings the
 *  kernels would plausibly reach for. */
constexpr const char* kIntrinsicPrefixes[] = {
    "_mm",  "vld1", "vst1", "vdupq_", "veorq_", "vandq_", "vorrq_",
    "vshlq_", "vshrq_", "vaddq_", "vsubq_", "vreinterpretq_",
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** The files allowed to call page-level allocation APIs directly:
 *  the table arena (hot predictor state) and the two read-only
 *  file-mapping homes that predate it. */
constexpr const char* kMmapHomes[] = {
    "src/core/table_arena.hh", "src/core/table_arena.cc",
    "src/core/trace_io.hh",    "src/core/trace_io.cc",
    "src/harness/trace_store.hh", "src/harness/trace_store.cc",
};

/** Whole identifiers only — `mmap` inside `warm_mmap_stats` is not a
 *  use; boundary checks below enforce that. */
constexpr const char* kMmapIdents[] = {
    "mmap", "munmap", "madvise", "aligned_alloc",
};

bool
isMmapHome(const std::string& rel)
{
    for (const char* home : kMmapHomes)
        if (rel == home)
            return true;
    return false;
}

} // namespace

void
checkPortability(const Tree& tree, std::vector<Finding>& out)
{
    for (const SourceFile& f : tree.files) {
        if (f.rel == kSimdHome)
            continue;  // the sanctioned home of raw intrinsics

        for (std::size_t i = 0; i < f.nocomment_lines.size(); ++i) {
            const std::string& line = f.nocomment_lines[i];
            if (line.find("#include") == std::string::npos)
                continue;
            for (const char* hdr : kIntrinsicHeaders) {
                if (line.find(hdr) != std::string::npos) {
                    emitFinding(f, static_cast<int>(i) + 1,
                                "portability/raw-intrinsic",
                                std::string("intrinsic header <") + hdr
                                        + "> may only be included by "
                                        + kSimdHome
                                        + "; use the simd::Native"
                                          " wrappers",
                                out);
                }
            }
        }

        for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
            const std::string& line = f.code_lines[i];
            for (const char* prefix : kIntrinsicPrefixes) {
                std::size_t pos = 0;
                while ((pos = line.find(prefix, pos))
                       != std::string::npos) {
                    // An intrinsic use starts at an identifier
                    // boundary and continues as an identifier (so
                    // e.g. "vld1q_u32(" matches but a bare word ending
                    // in the prefix does not produce a false start).
                    const bool boundary =
                            pos == 0 || !identChar(line[pos - 1]);
                    const std::size_t end = pos + std::string(prefix).size();
                    const bool continues =
                            end < line.size() && identChar(line[end]);
                    if (boundary
                        && (continues || prefix[0] == '_')) {
                        emitFinding(
                                f, static_cast<int>(i) + 1,
                                "portability/raw-intrinsic",
                                std::string("raw intrinsic '") + prefix
                                        + "...' outside " + kSimdHome
                                        + "; per-ISA code belongs"
                                          " behind simd::Native",
                                out);
                        break;  // one finding per line per prefix
                    }
                    pos = end;
                }
            }
        }

        if (isMmapHome(f.rel))
            continue;  // sanctioned homes of page-level allocation

        for (std::size_t i = 0; i < f.nocomment_lines.size(); ++i) {
            const std::string& line = f.nocomment_lines[i];
            if (line.find("#include") == std::string::npos)
                continue;
            if (line.find("sys/mman.h") != std::string::npos) {
                emitFinding(f, static_cast<int>(i) + 1,
                            "portability/raw-mmap",
                            "<sys/mman.h> outside the table arena;"
                            " table memory goes through"
                            " core::TableBuffer"
                            " (src/core/table_arena.hh)",
                            out);
            }
        }

        for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
            const std::string& line = f.code_lines[i];
            for (const char* ident : kMmapIdents) {
                const std::size_t len = std::string(ident).size();
                std::size_t pos = 0;
                while ((pos = line.find(ident, pos))
                       != std::string::npos) {
                    // Whole-identifier match: boundaries on both
                    // sides, so `::mmap(` and `mmap(` hit while
                    // `warm_mmap` and `mmapped` do not.
                    const bool boundary =
                            pos == 0 || !identChar(line[pos - 1]);
                    const std::size_t end = pos + len;
                    const bool closes =
                            end >= line.size() || !identChar(line[end]);
                    if (boundary && closes) {
                        emitFinding(
                                f, static_cast<int>(i) + 1,
                                "portability/raw-mmap",
                                std::string("raw '") + ident
                                        + "' outside the table arena;"
                                          " table memory goes through"
                                          " core::TableBuffer"
                                          " (src/core/table_arena.hh)",
                                out);
                        break;  // one finding per line per identifier
                    }
                    pos = end;
                }
            }
        }
    }
}

} // namespace repro_lint
