/**
 * @file
 * repro-lint CLI. Usage:
 *
 *     repro-lint [--root DIR] [--list-rules]
 *                [--format human|sarif|sarif=PATH]
 *                [--baseline FILE] [--write-baseline FILE]
 *
 * Walks src/, bench/, examples/, and tests/ under DIR (default: the
 * current directory) and runs every rule.
 *
 * Output:
 *   --format human        findings as "file:line: [rule] message"
 *                         (the default)
 *   --format sarif        a SARIF 2.1.0 log on stdout instead
 *   --format sarif=PATH   human findings on stdout AND the SARIF log
 *                         written to PATH — what tools/check.sh uses
 *                         so the terminal stays readable while CI
 *                         uploads the machine-readable artifact
 *
 * Baseline workflow (accepting pre-existing findings so the gate can
 * turn on before the cleanup lands):
 *   --write-baseline FILE write every current finding as an accepted
 *                         "file|rule|message" entry and exit 0
 *   --baseline FILE       drop findings matched by FILE; entries that
 *                         no longer match anything are reported as
 *                         stale on stderr (fix: delete them — the
 *                         baseline only ever shrinks)
 *
 * Exit code 0 when the tree is clean after baseline suppression,
 * 1 when findings remain, 2 on usage errors.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "repro_lint/lint.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: repro-lint [--root DIR] [--list-rules]"
                 " [--format human|sarif|sarif=PATH]"
                 " [--baseline FILE] [--write-baseline FILE]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::filesystem::path root = ".";
    std::string format = "human";
    std::string sarif_path;
    std::string baseline_path;
    std::string write_baseline_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc)
                return usage();
            root = argv[++i];
        } else if (arg == "--format") {
            if (i + 1 >= argc)
                return usage();
            format = argv[++i];
            if (format.rfind("sarif=", 0) == 0) {
                sarif_path = format.substr(6);
                format = "human";
                if (sarif_path.empty())
                    return usage();
            } else if (format != "human" && format != "sarif") {
                return usage();
            }
        } else if (arg == "--baseline") {
            if (i + 1 >= argc)
                return usage();
            baseline_path = argv[++i];
        } else if (arg == "--write-baseline") {
            if (i + 1 >= argc)
                return usage();
            write_baseline_path = argv[++i];
        } else if (arg == "--list-rules") {
            for (const repro_lint::RuleInfo& r :
                 repro_lint::ruleCatalog())
                std::cout << r.id << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "repro-lint: unknown option '" << arg
                      << "'\n";
            return usage();
        }
    }

    if (!std::filesystem::is_directory(root)) {
        std::cerr << "repro-lint: '" << root.string()
                  << "' is not a directory\n";
        return 2;
    }

    const repro_lint::Tree tree = repro_lint::loadTree(root);
    if (tree.files.empty()) {
        std::cerr << "repro-lint: no source files under '"
                  << root.string()
                  << "' (expected src/, bench/, examples/, tests/)\n";
        return 2;
    }

    std::vector<repro_lint::Finding> findings =
            repro_lint::runAllRules(tree);

    if (!write_baseline_path.empty()) {
        std::ofstream out(write_baseline_path);
        if (!out.is_open()) {
            std::cerr << "repro-lint: cannot write baseline '"
                      << write_baseline_path << "'\n";
            return 2;
        }
        out << "# repro-lint baseline: accepted findings, one"
               " 'file|rule|message' per line.\n"
               "# Matching ignores line numbers; delete entries as"
               " the issues are fixed.\n";
        for (const repro_lint::Finding& f : findings)
            out << repro_lint::formatBaselineEntry(f) << "\n";
        std::cerr << "repro-lint: wrote " << findings.size()
                  << " baseline entr"
                  << (findings.size() == 1 ? "y" : "ies") << " to "
                  << write_baseline_path << "\n";
        return 0;
    }

    std::size_t suppressed = 0;
    if (!baseline_path.empty()) {
        const auto baseline = repro_lint::loadBaseline(baseline_path);
        if (!baseline.has_value()) {
            std::cerr << "repro-lint: cannot read baseline '"
                      << baseline_path << "'\n";
            return 2;
        }
        std::vector<repro_lint::BaselineEntry> stale;
        const std::size_t before = findings.size();
        findings = repro_lint::applyBaseline(std::move(findings),
                                             *baseline, &stale);
        suppressed = before - findings.size();
        for (const repro_lint::BaselineEntry& b : stale)
            std::cerr << "repro-lint: stale baseline entry (issue"
                         " fixed — delete the line): "
                      << b.file << "|" << b.rule << "|" << b.message
                      << "\n";
    }

    if (format == "sarif") {
        std::cout << repro_lint::formatSarif(findings);
    } else {
        for (const repro_lint::Finding& f : findings)
            std::cout << repro_lint::formatFinding(f) << "\n";
        if (!sarif_path.empty()) {
            std::ofstream out(sarif_path);
            if (!out.is_open()) {
                std::cerr << "repro-lint: cannot write SARIF log '"
                          << sarif_path << "'\n";
                return 2;
            }
            out << repro_lint::formatSarif(findings);
        }
    }
    std::cerr << "repro-lint: " << tree.files.size() << " files, "
              << findings.size() << " finding(s)";
    if (suppressed > 0)
        std::cerr << ", " << suppressed << " baseline-suppressed";
    std::cerr << "\n";
    return findings.empty() ? 0 : 1;
}
