/**
 * @file
 * repro-lint CLI. Usage:
 *
 *     repro-lint [--root DIR] [--list-rules]
 *
 * Walks src/, bench/, examples/, and tests/ under DIR (default: the
 * current directory), runs every rule, and prints findings as
 * "file:line: [rule] message". Exit code 0 when the tree is clean,
 * 1 when there are findings, 2 on usage errors.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "repro_lint/lint.hh"

namespace
{

constexpr const char* kRules[] = {
    "layering/include-dag",
    "layering/cc-include",
    "determinism/banned-call",
    "determinism/unordered-iteration",
    "predictor/missing-test",
    "predictor/fused-without-reference",
    "parse/raw-call",
    "portability/raw-intrinsic",
    "concurrency/lock-in-hot-path",
};

int
usage()
{
    std::cerr << "usage: repro-lint [--root DIR] [--list-rules]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::filesystem::path root = ".";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0) {
            if (i + 1 >= argc)
                return usage();
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const char* rule : kRules)
                std::cout << rule << "\n";
            return 0;
        } else if (std::strcmp(argv[i], "--help") == 0
                   || std::strcmp(argv[i], "-h") == 0) {
            usage();
            return 0;
        } else {
            std::cerr << "repro-lint: unknown option '" << argv[i]
                      << "'\n";
            return usage();
        }
    }

    if (!std::filesystem::is_directory(root)) {
        std::cerr << "repro-lint: '" << root.string()
                  << "' is not a directory\n";
        return 2;
    }

    const repro_lint::Tree tree = repro_lint::loadTree(root);
    if (tree.files.empty()) {
        std::cerr << "repro-lint: no source files under '"
                  << root.string()
                  << "' (expected src/, bench/, examples/, tests/)\n";
        return 2;
    }

    const std::vector<repro_lint::Finding> findings =
            repro_lint::runAllRules(tree);
    for (const repro_lint::Finding& f : findings)
        std::cout << repro_lint::formatFinding(f) << "\n";
    std::cerr << "repro-lint: " << tree.files.size() << " files, "
              << findings.size() << " finding(s)\n";
    return findings.empty() ? 0 : 1;
}
