/**
 * @file
 * Cross-translation-unit symbol index for repro-lint.
 *
 * One pass over every file's token stream (token.hh) collects the
 * facts the PR-9 rule families need to reason *across* files:
 *
 *   - function declarations (free and member) with their enclosing
 *     class, [[nodiscard]] attribute, and void-ness — so
 *     api/unconsumed-status can resolve a call by name + receiver
 *     type and api/missing-nodiscard can audit every try*() status
 *     API;
 *   - variable/member declarations whose type is std::atomic or a
 *     class that declares indexed methods — the receiver-resolution
 *     table that keeps "x.load()" findings to actual atomics and
 *     "m.erase(k)" findings to actual SlotMaps;
 *   - the quoted-include graph with transitive reachability, so a
 *     call site is only matched against declarations its TU can
 *     actually see;
 *   - every REPRO_* environment-variable string literal passed to an
 *     env reader (envRaw/envUIntOr/envDoubleOr/envFlagOr/getenv),
 *     feeding api/env-doc-drift.
 *
 * Everything here is heuristic — there is no preprocessor and no
 * template instantiation — but the heuristics are chosen so a miss
 * degrades to silence (no finding), never to a false positive: a
 * call is only flagged when its receiver resolves to an indexed
 * declaration reachable through the include graph.
 */

#ifndef DFCM_TOOLS_REPRO_LINT_SYMBOL_INDEX_HH
#define DFCM_TOOLS_REPRO_LINT_SYMBOL_INDEX_HH

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "repro_lint/lint.hh"

namespace repro_lint
{

/** A function (or member function) declaration. */
struct FunctionDecl
{
    std::string name;
    std::string cls;   //!< enclosing class/struct name; "" for free
    std::string file;  //!< tree-relative path of the declaration
    int line = 0;
    bool nodiscard = false;     //!< carries [[nodiscard]]
    bool returns_void = false;  //!< declared return type is void
};

/** A variable or data-member declaration with an indexed type. */
struct VarDecl
{
    std::string name;
    /** Qualified type head, template arguments stripped:
     *  "std::atomic", "SlotMap", ... */
    std::string type;
    std::string file;
    int line = 0;
};

/** One REPRO_* string literal passed to an env reader. */
struct EnvUse
{
    std::string var;  //!< e.g. "REPRO_SERVICE_SHARDS"
    std::string file;
    int line = 0;
};

struct SymbolIndex
{
    std::vector<FunctionDecl> functions;
    std::vector<VarDecl> vars;
    std::vector<EnvUse> env_uses;
    /** file -> directly included tree files (resolved rel paths). */
    std::map<std::string, std::vector<std::string>> includes;
    /** file -> include closure (reflexive: contains the file itself). */
    std::map<std::string, std::set<std::string>> reach;

    /** True when @p to is in @p from's include closure. */
    bool reachable(std::string_view from, std::string_view to) const;

    /** All indexed declarations of @p name. */
    std::vector<const FunctionDecl*>
    functionsNamed(std::string_view name) const;

    /** All indexed variables named @p name whose declaration file is
     *  reachable from @p from. */
    std::vector<const VarDecl*>
    varsNamed(std::string_view from, std::string_view name) const;
};

SymbolIndex buildSymbolIndex(const Tree& tree);

// --- token-navigation helpers shared by the index and the rules ----

/** @p f's tokens with comments and preprocessor tokens dropped — the
 *  view declaration/expression scanning runs on. Pointers alias
 *  f.tokens. */
std::vector<const Token*> significantTokens(const SourceFile& f);

/** Index of the token closing the "(" / "[" / "{" at @p open, or
 *  sig.size() when unbalanced. */
std::size_t matchForward(const std::vector<const Token*>& sig,
                         std::size_t open);

/**
 * Index one past the ">" closing the "<" at @p at, treating "<<" and
 * ">>" as two angles (template-argument skipping). Returns @p at when
 * the list does not close before a ';' or brace — i.e. when the "<"
 * was a comparison, not a template-argument list.
 */
std::size_t skipTemplateArgs(const std::vector<const Token*>& sig,
                             std::size_t at);

} // namespace repro_lint

#endif // DFCM_TOOLS_REPRO_LINT_SYMBOL_INDEX_HH
