/**
 * @file
 * The repro-lint tokenizer (see token.hh for the contract).
 *
 * Phase 1 removes backslash-newline splices into a logical text,
 * keeping a per-byte map back to raw offsets. Phase 2 scans the
 * logical text with a hand-rolled lexer; every token records the raw
 * span of its first and last logical byte, so line numbers (and the
 * scrubbed views scan.cc rebuilds) always refer to the file on disk.
 */

#include "repro_lint/token.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

namespace repro_lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
digit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

/** Encoding prefixes that may precede a string or char literal. */
bool
isEncodingPrefix(std::string_view s)
{
    return s == "u8" || s == "u" || s == "U" || s == "L";
}

/** Prefixes (encoding prefix + R) that open a raw string. */
bool
isRawPrefix(std::string_view s)
{
    return s == "R" || s == "u8R" || s == "uR" || s == "UR"
        || s == "LR";
}

/** Multi-character punctuators, longest first (maximal munch). */
constexpr std::string_view kPuncts[] = {
    "<=>", "<<=", ">>=", "...", "->*",
    "::",  "->",  ".*",  "<<",  ">>",  "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=",  "*=",  "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  "##",
};

struct Lexer
{
    const std::string& logical;       //!< splice-free text
    const std::vector<std::size_t>& raw_of;  //!< logical -> raw offset
    const std::vector<std::size_t>& line_starts;  //!< raw line starts

    std::vector<Token> out;

    // Preprocessor state: a '#' first-on-a-logical-line opens a
    // directive that runs to the next (unspliced) newline.
    bool at_line_start = true;
    bool in_pp = false;
    std::string pp_directive;
    bool pp_want_directive = false;  //!< next identifier names it

    void
    locate(std::size_t raw_offset, int& line, int& col) const
    {
        const auto it = std::upper_bound(line_starts.begin(),
                                         line_starts.end(), raw_offset);
        const std::size_t l =
                static_cast<std::size_t>(it - line_starts.begin()) - 1;
        line = static_cast<int>(l) + 1;
        col = static_cast<int>(raw_offset - line_starts[l]) + 1;
    }

    void
    emit(TokKind kind, std::size_t begin, std::size_t end)
    {
        Token t;
        t.kind = kind;
        t.spelling = logical.substr(begin, end - begin);
        t.offset = raw_of[begin];
        t.end_offset = end > begin ? raw_of[end - 1] + 1 : t.offset;
        locate(t.offset, t.line, t.col);
        t.in_pp = in_pp;
        t.pp_directive = in_pp ? pp_directive : std::string();
        out.push_back(std::move(t));
        if (kind != TokKind::Comment)
            at_line_start = false;
    }

    char
    at(std::size_t i) const
    {
        return i < logical.size() ? logical[i] : '\0';
    }

    /** End of the string literal opening at @p i (the '"'). */
    std::size_t
    scanString(std::size_t i) const
    {
        ++i;  // opening quote
        while (i < logical.size()) {
            if (logical[i] == '\\' && i + 1 < logical.size())
                i += 2;
            else if (logical[i] == '"')
                return i + 1;
            else if (logical[i] == '\n')
                return i;  // unterminated: stop at the line end
            else
                ++i;
        }
        return i;
    }

    /** End of the raw string whose '"' is at @p i. */
    std::size_t
    scanRawString(std::size_t i) const
    {
        std::size_t p = i + 1;
        while (p < logical.size() && logical[p] != '('
               && logical[p] != '\n')
            ++p;
        if (at(p) != '(')
            return p;  // malformed opener: give up at the line end
        std::string close;
        close.reserve(p - i + 2);
        close.push_back(')');
        close.append(logical, i + 1, p - (i + 1));
        close.push_back('"');
        const std::size_t end = logical.find(close, p + 1);
        return end == std::string::npos ? logical.size()
                                        : end + close.size();
    }

    /** End of the char literal opening at @p i (the '\''). */
    std::size_t
    scanChar(std::size_t i) const
    {
        ++i;
        while (i < logical.size()) {
            if (logical[i] == '\\' && i + 1 < logical.size())
                i += 2;
            else if (logical[i] == '\'')
                return i + 1;
            else if (logical[i] == '\n')
                return i;
            else
                ++i;
        }
        return i;
    }

    /** End of the pp-number starting at @p i. Digit separators join
     *  only when flanked by identifier characters; e/E/p/P may take a
     *  sign. */
    std::size_t
    scanNumber(std::size_t i) const
    {
        std::size_t p = i + 1;
        while (p < logical.size()) {
            const char c = logical[p];
            if (identChar(c) || c == '.') {
                ++p;
            } else if (c == '\'' && p + 1 < logical.size()
                       && identChar(logical[p + 1])) {
                p += 2;
            } else if ((c == '+' || c == '-')
                       && (logical[p - 1] == 'e' || logical[p - 1] == 'E'
                           || logical[p - 1] == 'p'
                           || logical[p - 1] == 'P')) {
                ++p;
            } else {
                break;
            }
        }
        return p;
    }

    void
    run()
    {
        std::size_t i = 0;
        while (i < logical.size()) {
            const char c = logical[i];
            const char next = at(i + 1);

            if (c == '\n') {
                in_pp = false;
                pp_directive.clear();
                pp_want_directive = false;
                at_line_start = true;
                ++i;
                continue;
            }
            if (c == ' ' || c == '\t' || c == '\r' || c == '\v'
                || c == '\f') {
                ++i;
                continue;
            }

            // Comments (before punctuators: '/' would munch).
            if (c == '/' && next == '/') {
                std::size_t end = logical.find('\n', i);
                if (end == std::string::npos)
                    end = logical.size();
                emit(TokKind::Comment, i, end);
                i = end;
                continue;
            }
            if (c == '/' && next == '*') {
                std::size_t end = logical.find("*/", i + 2);
                end = end == std::string::npos ? logical.size()
                                               : end + 2;
                emit(TokKind::Comment, i, end);
                i = end;
                continue;
            }

            // Preprocessor directive opener.
            if (c == '#' && at_line_start) {
                in_pp = true;
                pp_want_directive = true;
                pp_directive.clear();
                emit(TokKind::Punct, i, i + 1);
                ++i;
                continue;
            }

            // <header-name> directly inside #include.
            if (c == '<' && in_pp && pp_directive == "include") {
                std::size_t end = i + 1;
                while (end < logical.size() && logical[end] != '>'
                       && logical[end] != '\n')
                    ++end;
                if (at(end) == '>') {
                    emit(TokKind::HeaderName, i, end + 1);
                    i = end + 1;
                    continue;
                }
            }

            if (identStart(c)) {
                std::size_t end = i + 1;
                while (end < logical.size() && identChar(logical[end]))
                    ++end;
                const std::string_view ident(logical.data() + i,
                                             end - i);
                // A prefixed string/char literal swallows the ident.
                if (at(end) == '"' && isRawPrefix(ident)) {
                    const std::size_t lit = scanRawString(end);
                    emit(TokKind::String, i, lit);
                    i = lit;
                    continue;
                }
                if (at(end) == '"' && isEncodingPrefix(ident)) {
                    const std::size_t lit = scanString(end);
                    emit(TokKind::String, i, lit);
                    i = lit;
                    continue;
                }
                if (at(end) == '\'' && isEncodingPrefix(ident)) {
                    const std::size_t lit = scanChar(end);
                    emit(TokKind::CharLit, i, lit);
                    i = lit;
                    continue;
                }
                emit(TokKind::Identifier, i, end);
                if (pp_want_directive) {
                    pp_directive.assign(ident);
                    // Retag: the directive-name token itself carries
                    // the directive it names.
                    out.back().pp_directive = pp_directive;
                    pp_want_directive = false;
                }
                i = end;
                continue;
            }

            if (digit(c) || (c == '.' && digit(next))) {
                const std::size_t end = scanNumber(i);
                emit(TokKind::Number, i, end);
                i = end;
                continue;
            }

            if (c == '"') {
                const std::size_t end = scanString(i);
                emit(TokKind::String, i, end);
                i = end;
                continue;
            }
            if (c == '\'') {
                const std::size_t end = scanChar(i);
                emit(TokKind::CharLit, i, end);
                i = end;
                continue;
            }

            // Punctuators, longest match first.
            bool matched = false;
            for (const std::string_view p : kPuncts) {
                if (logical.compare(i, p.size(), p) == 0) {
                    emit(TokKind::Punct, i, i + p.size());
                    i += p.size();
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                emit(TokKind::Punct, i, i + 1);
                ++i;
            }
        }
    }
};

} // namespace

std::vector<Token>
tokenize(const std::string& raw)
{
    // Phase 1: remove line splices (backslash + newline, tolerating a
    // \r before the \n) and map every logical byte to its raw offset.
    std::string logical;
    std::vector<std::size_t> raw_of;
    logical.reserve(raw.size());
    raw_of.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '\\') {
            if (i + 1 < raw.size() && raw[i + 1] == '\n') {
                ++i;
                continue;
            }
            if (i + 2 < raw.size() && raw[i + 1] == '\r'
                && raw[i + 2] == '\n') {
                i += 2;
                continue;
            }
        }
        logical.push_back(raw[i]);
        raw_of.push_back(i);
    }

    std::vector<std::size_t> line_starts{0};
    for (std::size_t i = 0; i < raw.size(); ++i)
        if (raw[i] == '\n')
            line_starts.push_back(i + 1);

    Lexer lex{logical, raw_of, line_starts, {}, true, false, {}, false};
    lex.run();
    return std::move(lex.out);
}

std::string
tokenContents(const Token& t)
{
    const std::string& s = t.spelling;
    switch (t.kind) {
      case TokKind::HeaderName:
        return s.size() >= 2 ? s.substr(1, s.size() - 2) : s;
      case TokKind::CharLit:
      case TokKind::String: {
        std::size_t open = s.find('"');
        char close_ch = '"';
        if (t.kind == TokKind::CharLit) {
            open = s.find('\'');
            close_ch = '\'';
        }
        if (open == std::string::npos)
            return s;
        if (open >= 1 && s[open - 1] == 'R') {
            // R"delim( ... )delim"
            const std::size_t paren = s.find('(', open);
            if (paren == std::string::npos)
                return {};
            const std::string delim =
                    s.substr(open + 1, paren - (open + 1));
            const std::string close = ")" + delim + "\"";
            const std::size_t end = s.rfind(close);
            if (end == std::string::npos || end < paren + 1)
                return {};
            return s.substr(paren + 1, end - (paren + 1));
        }
        const std::size_t end = s.rfind(close_ch);
        if (end <= open)
            return {};
        return s.substr(open + 1, end - (open + 1));
      }
      default:
        return s;
    }
}

} // namespace repro_lint
