/**
 * @file
 * layering rules: the include DAG between src/ libraries, and the
 * ban on including .cc translation units anywhere.
 *
 * The DAG mirrors src/CMakeLists.txt link order:
 *
 *     core <- tracegen            (synthetic trace generators)
 *     core <- sim                 (MiniRISC assembler/VM/tracer)
 *     core, sim, tracegen <- workloads
 *     everything <- harness
 *     any layer <- bench / examples / tests (drivers)
 *
 * core staying leaf-free is what lets the predictor kernels be reused
 * by every execution path without dragging the harness (threads,
 * filesystem, mmap) into the hot loop — and what keeps the fused and
 * reference paths diffable in isolation.
 */

#include "repro_lint/lint.hh"

#include <map>
#include <set>
#include <string>

namespace repro_lint
{

namespace
{

/** First path segment of a quoted include, e.g. "harness" for
 *  "harness/parallel_sweep.hh"; empty for same-directory includes. */
std::string
includeTopDir(const std::string& path)
{
    const std::size_t slash = path.find('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

/** Quoted include target on this line, or empty. */
std::string
quotedInclude(const std::string& line)
{
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '#')
        return {};
    i = line.find_first_not_of(" \t", i + 1);
    if (i == std::string::npos || line.compare(i, 7, "include") != 0)
        return {};
    const std::size_t open = line.find('"', i + 7);
    if (open == std::string::npos)
        return {};
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos)
        return {};
    return line.substr(open + 1, close - open - 1);
}

const std::map<std::string, std::set<std::string>>&
allowedIncludes()
{
    static const std::map<std::string, std::set<std::string>> kDag = {
        {"core", {"core"}},
        {"tracegen", {"tracegen", "core"}},
        {"sim", {"sim", "core"}},
        {"workloads", {"workloads", "core", "sim", "tracegen"}},
        {"harness", {"harness", "core", "sim", "tracegen", "workloads"}},
        {"service",
         {"service", "harness", "core", "sim", "tracegen", "workloads"}},
    };
    return kDag;
}

} // namespace

void
checkLayering(const Tree& tree, std::vector<Finding>& out)
{
    const std::set<std::string> layers = {
            "core", "tracegen", "sim", "workloads", "harness", "service"};
    for (const SourceFile& f : tree.files) {
        if (f.layer.empty())
            continue;
        const auto dag = allowedIncludes().find(f.layer);
        for (std::size_t i = 0; i < f.nocomment_lines.size(); ++i) {
            const std::string inc = quotedInclude(f.nocomment_lines[i]);
            if (inc.empty())
                continue;
            const int line = static_cast<int>(i) + 1;

            if (inc.size() > 3
                && inc.compare(inc.size() - 3, 3, ".cc") == 0) {
                emitFinding(f, line, "layering/cc-include",
                            "#include \"" + inc
                                    + "\": including a .cc translation"
                                      " unit bypasses the library"
                                      " layering (link against the"
                                      " target instead)",
                            out);
            }

            if (dag == allowedIncludes().end())
                continue;  // drivers may include any layer header
            const std::string top = includeTopDir(inc);
            if (top.empty() || layers.count(top) == 0)
                continue;  // same-dir or external include
            if (dag->second.count(top) == 0) {
                emitFinding(f, line, "layering/include-dag",
                            "src/" + f.layer + " may not include \""
                                    + inc + "\" (allowed layers:"
                                    + [&] {
                                          std::string s;
                                          for (const auto& a :
                                               dag->second)
                                              s += " " + a;
                                          return s;
                                      }() + ")",
                            out);
            }
        }
    }
}

} // namespace repro_lint
