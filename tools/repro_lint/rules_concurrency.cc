/**
 * @file
 * concurrency/lock-in-hot-path: blocking synchronization primitives
 * are banned in files that declare themselves part of the service's
 * lock-free ingest fabric.
 *
 * The ingest fabric's whole performance argument is that producers
 * and the drain share nothing but two acquire/release indices per
 * SPSC ring (src/service/spsc_ring.hh): a producer never blocks, a
 * stalled consumer costs one failed push, and backpressure is an
 * explicit, accounted status instead of a queue of threads parked on
 * a mutex. One std::mutex on that path silently reintroduces the
 * convoying the fabric was built to remove — and no compiler flag or
 * test notices until the scaling curve flattens. So hot-path files
 * opt in with a "repro-lint: hot-path" marker comment, and inside
 * them every blocking primitive (mutexes, locks, condition
 * variables, and their headers) is a finding. Cold paths in the same
 * file — registration, snapshot — stay legal via the usual
 * same-line "// repro-lint: allow(concurrency)" escape, which keeps
 * each exception visible and reviewed where it stands.
 */

#include "repro_lint/lint.hh"

#include <cctype>
#include <string>

namespace repro_lint
{

namespace
{

/** Standard headers that exist only to provide blocking
 *  synchronization. (<atomic> and <thread> stay legal: the fabric is
 *  built from atomics, and the pump owns threads.) */
constexpr const char* kBlockingHeaders[] = {
    "<mutex>",
    "<shared_mutex>",
    "<condition_variable>",
    "<semaphore>",
};

/** Blocking primitives and the RAII lock types that imply them. */
constexpr const char* kBlockingTypes[] = {
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable",
    "std::condition_variable_any",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::counting_semaphore",
    "std::binary_semaphore",
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Does @p line use @p token at identifier boundaries? Longer type
 *  names sharing a prefix ("std::condition_variable_any" vs
 *  "std::condition_variable") are kept apart by the boundary check,
 *  so the table order does not matter. */
bool
usesToken(const std::string& line, const std::string& token)
{
    std::size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        const bool boundary = pos == 0 || !identChar(line[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool whole = end >= line.size() || !identChar(line[end]);
        if (boundary && whole)
            return true;
        pos = end;
    }
    return false;
}

} // namespace

void
checkConcurrency(const Tree& tree, std::vector<Finding>& out)
{
    for (const SourceFile& f : tree.files) {
        if (!f.hot_path)
            continue;

        for (std::size_t i = 0; i < f.nocomment_lines.size(); ++i) {
            const std::string& line = f.nocomment_lines[i];
            if (line.find("#include") == std::string::npos)
                continue;
            for (const char* hdr : kBlockingHeaders) {
                if (line.find(hdr) != std::string::npos) {
                    emitFinding(f, static_cast<int>(i) + 1,
                                "concurrency/lock-in-hot-path",
                                std::string("blocking header ") + hdr
                                        + " in a hot-path file; the"
                                          " ingest fabric is lock-free"
                                          " (see spsc_ring.hh)",
                                out);
                    break;  // one header finding per line
                }
            }
        }

        for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
            const std::string& line = f.code_lines[i];
            for (const char* type : kBlockingTypes) {
                if (usesToken(line, type)) {
                    emitFinding(f, static_cast<int>(i) + 1,
                                "concurrency/lock-in-hot-path",
                                std::string("blocking primitive '")
                                        + type
                                        + "' in a hot-path file; use"
                                          " the SPSC rings or mark the"
                                          " cold path with allow("
                                          "concurrency)",
                                out);
                    break;  // one finding per line
                }
            }
        }
    }
}

} // namespace repro_lint
