/**
 * @file
 * Machine-readable output for repro-lint: the rule catalog, SARIF
 * 2.1.0 serialization, and the baseline accept/suppress workflow.
 *
 * SARIF is the interchange format CI code-scanning UIs ingest; the
 * log emitted here is deliberately minimal — one run, driver
 * "repro-lint", the rule catalog as reportingDescriptors, and one
 * result per finding with a repo-relative artifact URI and a 1-based
 * startLine — which is the subset every consumer agrees on.
 *
 * The baseline file is one "file|rule|message" line per accepted
 * finding. Matching ignores the line number on purpose: unrelated
 * edits shift lines constantly, and a baseline that rots on every
 * rebase teaches people to regenerate it blindly (which silently
 * accepts new findings). Matching on the message keeps an entry
 * pinned to one specific issue — if the message changes, the issue
 * changed, and it should be re-reviewed. Entries that match nothing
 * are reported as stale so the baseline only ever shrinks toward
 * empty.
 */

#include "repro_lint/lint.hh"

#include <fstream>

namespace repro_lint
{

namespace
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr const char* kHex = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(c >> 4) & 0xF];
                out += kHex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> kCatalog = {
        {"layering/include-dag",
         "src/ layer includes must follow the dependency DAG"},
        {"layering/cc-include",
         "no file may include a .cc translation unit"},
        {"determinism/banned-call",
         "nondeterministic call in a figure/CSV-emitting driver"},
        {"determinism/unordered-iteration",
         "unordered-container iteration in a figure-emitting driver"},
        {"predictor/missing-test",
         "factory-registered predictor without a tests/<name>_test.cc"},
        {"predictor/fused-without-reference",
         "fused-path override without the reference predict()/update()"},
        {"parse/raw-call",
         "unchecked numeric parse outside src/core/parse_util.hh"},
        {"portability/raw-intrinsic",
         "SIMD intrinsic or vendor header outside src/core/simd.hh"},
        {"portability/raw-mmap",
         "mmap/munmap/madvise/aligned_alloc or <sys/mman.h> outside"
         " the table arena and trace-store homes"},
        {"concurrency/lock-in-hot-path",
         "blocking primitive in a lock-free hot-path file"},
        {"concurrency/implicit-seq-cst",
         "atomic access without an explicit std::memory_order in a"
         " hot-path file"},
        {"api/missing-nodiscard",
         "try*() status API in a hot-path file without [[nodiscard]]"},
        {"api/unconsumed-status",
         "discarded result of a [[nodiscard]] status API"},
        {"api/env-doc-drift",
         "REPRO_* knob set in code and docs/api.md out of sync"},
    };
    return kCatalog;
}

std::string
formatSarif(const std::vector<Finding>& findings)
{
    std::string out;
    out += "{\n";
    out += "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    out += "  \"version\": \"2.1.0\",\n";
    out += "  \"runs\": [\n";
    out += "    {\n";
    out += "      \"tool\": {\n";
    out += "        \"driver\": {\n";
    out += "          \"name\": \"repro-lint\",\n";
    out += "          \"informationUri\": "
           "\"docs/analysis.md\",\n";
    out += "          \"rules\": [\n";
    const std::vector<RuleInfo>& catalog = ruleCatalog();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        out += "            {\"id\": \"";
        out += jsonEscape(catalog[i].id);
        out += "\", \"shortDescription\": {\"text\": \"";
        out += jsonEscape(catalog[i].summary);
        out += "\"}}";
        out += i + 1 < catalog.size() ? ",\n" : "\n";
    }
    out += "          ]\n";
    out += "        }\n";
    out += "      },\n";
    out += "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out += "        {\n";
        out += "          \"ruleId\": \"" + jsonEscape(f.rule)
                + "\",\n";
        out += "          \"level\": \"error\",\n";
        out += "          \"message\": {\"text\": \""
                + jsonEscape(f.message) + "\"},\n";
        out += "          \"locations\": [{\"physicalLocation\": {"
               "\"artifactLocation\": {\"uri\": \""
                + jsonEscape(f.file)
                + "\"}, \"region\": {\"startLine\": "
                + std::to_string(f.line > 0 ? f.line : 1) + "}}}]\n";
        out += i + 1 < findings.size() ? "        },\n"
                                       : "        }\n";
    }
    out += "      ]\n";
    out += "    }\n";
    out += "  ]\n";
    out += "}\n";
    return out;
}

std::string
formatBaselineEntry(const Finding& f)
{
    return f.file + "|" + f.rule + "|" + f.message;
}

std::optional<std::vector<BaselineEntry>>
loadBaseline(const std::filesystem::path& path)
{
    std::ifstream in(path);
    if (!in.is_open())
        return std::nullopt;
    std::vector<BaselineEntry> entries;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t p1 = line.find('|');
        const std::size_t p2 =
                p1 == std::string::npos ? p1 : line.find('|', p1 + 1);
        if (p2 == std::string::npos)
            continue;  // malformed line: ignore, never crash the gate
        entries.push_back({line.substr(0, p1),
                           line.substr(p1 + 1, p2 - p1 - 1),
                           line.substr(p2 + 1)});
    }
    return entries;
}

std::vector<Finding>
applyBaseline(std::vector<Finding> findings,
              const std::vector<BaselineEntry>& baseline,
              std::vector<BaselineEntry>* stale)
{
    std::vector<bool> matched(baseline.size(), false);
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding& f : findings) {
        bool suppressed = false;
        for (std::size_t i = 0; i < baseline.size(); ++i) {
            const BaselineEntry& b = baseline[i];
            if (b.file == f.file && b.rule == f.rule
                && b.message == f.message) {
                matched[i] = true;
                suppressed = true;  // keep scanning: mark duplicates
            }
        }
        if (!suppressed)
            kept.push_back(std::move(f));
    }
    if (stale != nullptr)
        for (std::size_t i = 0; i < baseline.size(); ++i)
            if (!matched[i])
                stale->push_back(baseline[i]);
    return kept;
}

} // namespace repro_lint
