/**
 * @file
 * api/env-doc-drift: the REPRO_* knob surface in code and the one in
 * docs/api.md must be the same set.
 *
 * Every reproduction knob is an environment variable funneled
 * through the checked readers in src/core/env_util.hh (or a
 * deliberate std::getenv for pre-main cases), and docs/api.md is the
 * contract page a user tuning a run actually reads. The two drift in
 * both directions: a knob added under deadline pressure never gets a
 * docs entry (undiscoverable — users re-derive it from the source),
 * and a knob removed in a refactor leaves a ghost entry (users set
 * it and silently get the default). The symbol index already
 * collects every REPRO_* string literal passed to an env reader, so
 * the rule is a set comparison:
 *
 *   - a knob read in code but absent from docs/api.md is reported at
 *     its first read site (one finding per knob, not per read);
 *   - a knob documented in docs/api.md but read nowhere is reported
 *     at its line in the markdown.
 *
 * A "REPRO_FOO_*" wildcard mention in prose is ignored rather than
 * parsed as a knob — but wildcards cannot *satisfy* the
 * documentation requirement either; every knob needs its own entry.
 * Trees without a docs/api.md (e.g. minimal fixtures) skip the rule
 * entirely.
 */

#include "repro_lint/lint.hh"

#include <fstream>
#include <map>
#include <set>

#include "repro_lint/symbol_index.hh"

namespace repro_lint
{

namespace
{

constexpr const char* kKnobChars =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";

/** REPRO_* names mentioned in @p line (wildcard mentions skipped),
 *  appended to @p out with @p lineno. */
void
scanDocLine(const std::string& line, int lineno,
            std::map<std::string, int>& out)
{
    std::size_t pos = 0;
    while ((pos = line.find("REPRO_", pos)) != std::string::npos) {
        std::size_t end = pos + 6;
        while (end < line.size()
               && std::string_view(kKnobChars).find(line[end])
                       != std::string_view::npos)
            ++end;
        const std::string name = line.substr(pos, end - pos);
        const bool wildcard = end < line.size() && line[end] == '*';
        if (name.size() > 6 && !wildcard)
            out.emplace(name, lineno);  // keep the first mention
        pos = end;
    }
}

} // namespace

void
checkEnvDoc(const Tree& tree, const SymbolIndex& index,
            std::vector<Finding>& out)
{
    const std::filesystem::path doc_path =
            tree.root / "docs" / "api.md";
    std::ifstream doc(doc_path);
    if (!doc.is_open())
        return;  // no contract page in this tree — nothing to drift

    std::map<std::string, int> documented;  // knob -> first doc line
    std::string line;
    int lineno = 0;
    while (std::getline(doc, line)) {
        ++lineno;
        scanDocLine(line, lineno, documented);
    }

    std::set<std::string> used;
    std::set<std::string> reported;
    for (const EnvUse& u : index.env_uses)
        used.insert(u.var);
    for (const EnvUse& u : index.env_uses) {
        if (documented.count(u.var) > 0
            || !reported.insert(u.var).second)
            continue;  // documented, or already reported at first use
        const SourceFile* f = tree.find(u.file);
        if (f == nullptr)
            continue;
        emitFinding(*f, u.line, "api/env-doc-drift",
                    "env knob '" + u.var
                            + "' is read here but has no entry in"
                              " docs/api.md",
                    out);
    }

    for (const auto& [name, doc_line] : documented) {
        if (used.count(name) > 0)
            continue;
        out.push_back({"docs/api.md", doc_line, "api/env-doc-drift",
                       "env knob '" + name
                               + "' is documented but no env reader"
                                 " reads it; delete the entry or wire"
                                 " the knob"});
    }
}

} // namespace repro_lint
