/**
 * @file
 * parse/raw-call: bare C/C++ number parsing is banned outside
 * src/core/parse_util.hh.
 *
 * This is the rule with a scar behind it: PR 1's envTraceScale bug
 * (strtod accepting "1.5x" and the thread-pool size wrapping on
 * negative REPRO_JOBS) came from exactly these functions' failure
 * modes — no error channel (atoi), silently-ignored trailing garbage
 * (strto*, sto*), and modulo-2^64 wrapping of negative input
 * (strtoul). parse_util.hh wraps them once, with range checks and
 * trailing-garbage rejection; everything else calls parseInt /
 * parseUInt / parseDouble.
 */

#include "repro_lint/lint.hh"

#include <cctype>
#include <string>

namespace repro_lint
{

namespace
{

constexpr const char* kBannedParsers[] = {
    "atoi",    "atol",    "atoll",   "atof",    "sscanf",
    "strtol",  "strtoul", "strtoll", "strtoull",
    "strtod",  "strtof",  "strtold",
    "stoi",    "stol",    "stoll",   "stoul",   "stoull",
    "stof",    "stod",    "stold",
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

void
checkRawParse(const Tree& tree, std::vector<Finding>& out)
{
    for (const SourceFile& f : tree.files) {
        if (f.rel == "src/core/parse_util.hh")
            continue;  // the sanctioned home of the raw parsers
        for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
            const std::string& line = f.code_lines[i];
            for (const char* fn : kBannedParsers) {
                const std::string call = std::string(fn) + "(";
                std::size_t pos = 0;
                while ((pos = line.find(call, pos))
                       != std::string::npos) {
                    const bool boundary = pos == 0
                            || (!identChar(line[pos - 1])
                                && line[pos - 1] != '.');
                    if (boundary) {
                        emitFinding(
                                f, static_cast<int>(i) + 1,
                                "parse/raw-call",
                                std::string(fn)
                                        + " accepts trailing garbage /"
                                          " wraps out-of-range input;"
                                          " use core/parse_util.hh"
                                          " (parseInt / parseUInt /"
                                          " parseDouble)",
                                out);
                    }
                    pos += call.size();
                }
            }
        }
    }
}

} // namespace repro_lint
