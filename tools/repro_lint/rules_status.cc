/**
 * @file
 * api/missing-nodiscard + api/unconsumed-status: the ingest fabric's
 * backpressure statuses must be declared un-ignorable and actually
 * not ignored.
 *
 * The service's overload story is "a full ring rejects the push and
 * the caller accounts for it" — tryPush/tryIngest/tryEnqueue return
 * the accept/reject bool, and SlotMap's insert/erase report whether
 * the mutation happened. A dropped status silently turns
 * backpressure into data loss: the update vanishes, the drop counter
 * never moves, and the figures produced under load stop meaning what
 * the paper says they mean. Two rules close the loop:
 *
 *   - api/missing-nodiscard: every non-void try[A-Z]* function
 *     declared in a hot-path file must carry [[nodiscard]] (on at
 *     least one declaration), so the *compiler* also warns at every
 *     call site under -Werror;
 *   - api/unconsumed-status: a call to a [[nodiscard]]-indexed API
 *     whose result is discarded at statement level. The compiler
 *     already catches most of these; the rule additionally catches
 *     receivers the compiler cannot (pre-C++26 assert() bodies,
 *     macro-swallowed calls) and enforces the repo convention that
 *     an intentional drop is written "(void)call()" — visible and
 *     greppable — rather than suppressed.
 *
 * Resolution is deliberately conservative. Distinctive try[A-Z]*
 * names match when any include-reachable declaration is
 * [[nodiscard]]; common names (insert/erase/...) additionally
 * require the receiver variable to resolve, via the symbol index, to
 * the declaring class — so "ref.erase(k)" on a std::map never trips
 * the rule. Anything unresolvable degrades to silence.
 */

#include "repro_lint/lint.hh"

#include <map>
#include <set>
#include <string_view>
#include <utility>

#include "repro_lint/symbol_index.hh"

namespace repro_lint
{

namespace
{

/** "tryPush", "tryIngest", ... — the repo's status-API spelling. */
bool
isTryName(std::string_view s)
{
    return s.size() > 3 && s.substr(0, 3) == "try" && s[3] >= 'A'
        && s[3] <= 'Z';
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/** Index of the token opening the ")" / "]" at @p close, or kNpos. */
std::size_t
matchBackward(const std::vector<const Token*>& sig, std::size_t close)
{
    const std::string& c = sig[close]->spelling;
    std::string_view o;
    if (c == ")")
        o = "(";
    else if (c == "]")
        o = "[";
    else
        return kNpos;
    int depth = 0;
    for (std::size_t i = close + 1; i-- > 0;) {
        if (sig[i]->spelling == c)
            ++depth;
        else if (sig[i]->spelling == o && --depth == 0)
            return i;
    }
    return kNpos;
}

/**
 * First token of the receiver chain ending at the call name sig[i]:
 * "rings_[p]->tryPush" starts at "rings_", "a.b.insert" at "a".
 * Returns @p i itself for an unqualified call.
 */
std::size_t
chainStart(const std::vector<const Token*>& sig, std::size_t i)
{
    std::size_t start = i;
    while (start >= 2) {
        const std::string& p = sig[start - 1]->spelling;
        if (p != "." && p != "->")
            break;
        const std::size_t before = start - 2;
        if (sig[before]->kind == TokKind::Identifier) {
            start = before;
            continue;
        }
        if (sig[before]->spelling == ")"
            || sig[before]->spelling == "]") {
            const std::size_t open = matchBackward(sig, before);
            if (open == kNpos)
                return start;
            if (open > 0
                && sig[open - 1]->kind == TokKind::Identifier) {
                start = open - 1;
            } else {
                start = open;
            }
            continue;
        }
        break;
    }
    return start;
}

/**
 * True when the call whose name is sig[i] and whose argument list
 * closes at sig[close] is a statement-level discard: the ';' follows
 * the ')' directly and the receiver chain begins the statement. A
 * "(void)" cast in front is the sanctioned explicit discard and does
 * not count.
 */
bool
isDiscarded(const std::vector<const Token*>& sig, std::size_t i,
            std::size_t close)
{
    if (close + 1 >= sig.size() || sig[close + 1]->spelling != ";")
        return false;
    const std::size_t start = chainStart(sig, i);
    if (start == 0)
        return true;
    const std::string& p = sig[start - 1]->spelling;
    if (p == ";" || p == "{" || p == "}" || p == "else" || p == "do"
        || p == ":")
        return true;
    if (p == ")") {
        // Either "(void) expr;" — sanctioned — or the ')' closing an
        // if/for/while condition, which makes this the statement.
        const std::size_t open = matchBackward(sig, start - 1);
        const bool void_cast = open != kNpos && start - 1 == open + 2
                && sig[open + 1]->spelling == "void";
        return !void_cast;
    }
    return false;
}

} // namespace

void
checkStatusUse(const Tree& tree, const SymbolIndex& index,
               std::vector<Finding>& out)
{
    // --- api/missing-nodiscard: audit the declarations -------------
    std::map<std::pair<std::string, std::string>,
             std::vector<const FunctionDecl*>>
            groups;
    for (const FunctionDecl& d : index.functions)
        if (isTryName(d.name) && !d.returns_void)
            groups[{d.cls, d.name}].push_back(&d);

    for (const auto& [key, decls] : groups) {
        bool any_nodiscard = false;
        for (const FunctionDecl* d : decls)
            any_nodiscard = any_nodiscard || d->nodiscard;
        if (any_nodiscard)
            continue;
        const FunctionDecl* where = nullptr;
        for (const FunctionDecl* d : decls) {
            const SourceFile* f = tree.find(d->file);
            if (f == nullptr || !f->hot_path)
                continue;
            if (where == nullptr || d->file < where->file
                || (d->file == where->file && d->line < where->line))
                where = d;
        }
        if (where == nullptr)
            continue;
        const std::string qual = key.first.empty()
                ? key.second
                : key.first + "::" + key.second;
        emitFinding(*tree.find(where->file), where->line,
                    "api/missing-nodiscard",
                    "status API '" + qual
                            + "()' in a hot-path file is not"
                              " [[nodiscard]]; its accept/reject"
                              " result must be un-ignorable",
                    out);
    }

    // --- api/unconsumed-status: audit the call sites ---------------
    std::set<std::string> nodiscard_names;
    for (const FunctionDecl& d : index.functions)
        if (d.nodiscard)
            nodiscard_names.insert(d.name);

    for (const SourceFile& f : tree.files) {
        const std::vector<const Token*> sig = significantTokens(f);
        for (std::size_t i = 0; i + 1 < sig.size(); ++i) {
            if (sig[i]->kind != TokKind::Identifier
                || sig[i + 1]->spelling != "(")
                continue;
            const std::string& name = sig[i]->spelling;
            if (nodiscard_names.count(name) == 0)
                continue;

            const FunctionDecl* target = nullptr;
            if (isTryName(name)) {
                // Distinctive name: any reachable [[nodiscard]]
                // declaration claims the call.
                for (const FunctionDecl* d : index.functionsNamed(name))
                    if (d->nodiscard && index.reachable(f.rel, d->file))
                        target = target == nullptr ? d : target;
            } else {
                // Common name: the receiver must resolve to the
                // declaring class.
                if (i < 2
                    || (sig[i - 1]->spelling != "."
                        && sig[i - 1]->spelling != "->")
                    || sig[i - 2]->kind != TokKind::Identifier)
                    continue;
                std::set<std::string> recv_types;
                for (const VarDecl* v :
                     index.varsNamed(f.rel, sig[i - 2]->spelling))
                    recv_types.insert(v->type);
                for (const FunctionDecl* d : index.functionsNamed(name))
                    if (d->nodiscard && !d->cls.empty()
                        && recv_types.count(d->cls) > 0
                        && index.reachable(f.rel, d->file))
                        target = target == nullptr ? d : target;
            }
            if (target == nullptr)
                continue;

            const std::size_t close = matchForward(sig, i + 1);
            if (close >= sig.size() || !isDiscarded(sig, i, close))
                continue;

            const std::string qual = target->cls.empty()
                    ? target->name
                    : target->cls + "::" + target->name;
            emitFinding(f, sig[i]->line, "api/unconsumed-status",
                        "discarded [[nodiscard]] status from '" + qual
                                + "()'; consume the result or write"
                                  " an explicit (void) cast",
                        out);
        }
    }
}

} // namespace repro_lint
