/**
 * @file
 * File loading for repro-lint: directory walk, comment/string
 * scrubbing, and suppression-comment parsing.
 */

#include "repro_lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

namespace repro_lint
{

namespace
{

bool
lintableExtension(const std::filesystem::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h"
        || ext == ".hpp";
}

bool
hasFixtureComponent(const std::filesystem::path& p)
{
    for (const auto& part : p)
        if (part == "lint_fixtures")
            return true;
    return false;
}

/**
 * Produce the two scrubbed views of @p raw in one pass: comments
 * blanked (nocomment) and comments plus string/char literal contents
 * blanked (code). Newlines are preserved so line numbers survive.
 * Handles //, block comments, escapes, and basic R"( )" raw strings.
 */
void
scrub(const std::string& raw, std::string& nocomment, std::string& code)
{
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };

    nocomment.assign(raw.size(), ' ');
    code.assign(raw.size(), ' ');
    State state = State::Code;
    std::string raw_delim;  // delimiter of the active raw string

    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
        if (c == '\n') {
            nocomment[i] = '\n';
            code[i] = '\n';
            if (state == State::LineComment)
                state = State::Code;
            continue;
        }
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                ++i;
            } else if (c == 'R' && next == '"'
                       && (i == 0
                           || (!std::isalnum(static_cast<unsigned char>(
                                       raw[i - 1]))
                               && raw[i - 1] != '_'))) {
                // R"delim( ... )delim"
                std::size_t p = i + 2;
                while (p < raw.size() && raw[p] != '(')
                    ++p;
                raw_delim = raw.substr(i + 2, p - (i + 2));
                nocomment[i] = c;
                code[i] = c;
                state = State::RawString;
                // keep the opening R"delim( visible in nocomment
                for (std::size_t k = i + 1; k <= p && k < raw.size();
                     ++k)
                    nocomment[k] = raw[k];
                i = p;
            } else if (c == '"') {
                nocomment[i] = c;
                code[i] = c;
                state = State::String;
            } else if (c == '\'') {
                nocomment[i] = c;
                code[i] = c;
                state = State::Char;
            } else {
                nocomment[i] = c;
                code[i] = c;
            }
            break;
          case State::LineComment:
          case State::BlockComment:
            if (state == State::BlockComment && c == '*' && next == '/') {
                ++i;
                state = State::Code;
            }
            break;
          case State::String:
          case State::Char: {
            const char quote = state == State::String ? '"' : '\'';
            nocomment[i] = c;
            if (c == '\\') {
                if (next != '\0')
                    nocomment[i + 1] = next;
                ++i;
            } else if (c == quote) {
                code[i] = c;
                state = State::Code;
            }
            break;
          }
          case State::RawString: {
            const std::string close = ")" + raw_delim + "\"";
            if (raw.compare(i, close.size(), close) == 0) {
                for (std::size_t k = 0;
                     k < close.size() && i + k < raw.size(); ++k)
                    nocomment[i + k] = raw[i + k];
                code[i + close.size() - 1] = '"';
                i += close.size() - 1;
                state = State::Code;
            } else {
                nocomment[i] = c;
            }
            break;
          }
        }
    }
}

std::vector<std::string>
splitLines(const std::string& text)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream is(text);
    while (std::getline(is, line))
        lines.push_back(line);
    if (lines.empty())
        lines.emplace_back();
    return lines;
}

/** Parse "repro-lint: allow(a, b/c)" out of one raw source line. */
std::vector<std::string>
parseAllows(const std::string& raw_line)
{
    static const std::string kMarker = "repro-lint: allow(";
    std::vector<std::string> rules;
    const std::size_t at = raw_line.find(kMarker);
    if (at == std::string::npos)
        return rules;
    const std::size_t open = at + kMarker.size();
    const std::size_t close = raw_line.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::string item;
    std::istringstream is(raw_line.substr(open, close - open));
    while (std::getline(is, item, ',')) {
        const std::size_t b = item.find_first_not_of(" \t");
        const std::size_t e = item.find_last_not_of(" \t");
        if (b != std::string::npos)
            rules.push_back(item.substr(b, e - b + 1));
    }
    return rules;
}

} // namespace

bool
SourceFile::allowed(int line, std::string_view rule) const
{
    if (line < 1 || static_cast<std::size_t>(line) > allows.size())
        return false;
    for (const std::string& a : allows[static_cast<std::size_t>(line) - 1]) {
        if (rule == a)
            return true;
        if (rule.size() > a.size() && rule.substr(0, a.size()) == a
            && rule[a.size()] == '/')
            return true;
    }
    return false;
}

const SourceFile*
Tree::find(std::string_view rel) const
{
    for (const SourceFile& f : files)
        if (f.rel == rel)
            return &f;
    return nullptr;
}

std::string
layerOf(std::string_view rel)
{
    static const std::pair<std::string_view, std::string_view> kPrefixes[] = {
        {"src/core/", "core"},         {"src/tracegen/", "tracegen"},
        {"src/sim/", "sim"},           {"src/workloads/", "workloads"},
        {"src/harness/", "harness"},   {"src/service/", "service"},
        {"bench/", "bench"},           {"examples/", "examples"},
        {"tests/", "tests"},
    };
    for (const auto& [prefix, layer] : kPrefixes)
        if (rel.substr(0, prefix.size()) == prefix)
            return std::string(layer);
    return {};
}

SourceFile
loadSourceFile(const std::filesystem::path& abs, std::string rel)
{
    std::ifstream in(abs, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();

    std::string nocomment, code;
    scrub(raw, nocomment, code);

    SourceFile f;
    std::replace(rel.begin(), rel.end(), '\\', '/');
    f.rel = std::move(rel);
    f.layer = layerOf(f.rel);
    f.raw_lines = splitLines(raw);
    f.nocomment_lines = splitLines(nocomment);
    f.code_lines = splitLines(code);
    f.allows.reserve(f.raw_lines.size());
    for (const std::string& line : f.raw_lines)
        f.allows.push_back(parseAllows(line));
    return f;
}

Tree
loadTree(const std::filesystem::path& root)
{
    Tree tree;
    tree.root = root;
    for (const char* top : {"src", "bench", "examples", "tests"}) {
        const std::filesystem::path dir = root / top;
        if (!std::filesystem::is_directory(dir))
            continue;
        for (auto it = std::filesystem::recursive_directory_iterator(dir);
             it != std::filesystem::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file()
                || !lintableExtension(it->path()))
                continue;
            const std::filesystem::path relp =
                    std::filesystem::relative(it->path(), root);
            if (hasFixtureComponent(relp))
                continue;
            tree.files.push_back(
                    loadSourceFile(it->path(), relp.generic_string()));
        }
    }
    std::sort(tree.files.begin(), tree.files.end(),
              [](const SourceFile& a, const SourceFile& b) {
                  return a.rel < b.rel;
              });
    return tree;
}

void
emitFinding(const SourceFile& f, int line, std::string rule,
            std::string message, std::vector<Finding>& out)
{
    if (f.allowed(line, rule))
        return;
    out.push_back({f.rel, line, std::move(rule), std::move(message)});
}

std::vector<Finding>
runAllRules(const Tree& tree)
{
    std::vector<Finding> out;
    checkLayering(tree, out);
    checkDeterminism(tree, out);
    checkPredictorContract(tree, out);
    checkRawParse(tree, out);
    checkPortability(tree, out);
    checkConcurrency(tree, out);
    std::sort(out.begin(), out.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule, a.message)
                      < std::tie(b.file, b.line, b.rule, b.message);
              });
    return out;
}

std::string
formatFinding(const Finding& f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] "
        + f.message;
}

} // namespace repro_lint
