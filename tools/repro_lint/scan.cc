/**
 * @file
 * File loading for repro-lint: directory walk, tokenization,
 * scrubbed-view reconstruction, and suppression-comment parsing.
 *
 * The two line-oriented views the PR-4 rules match against
 * (nocomment_lines / code_lines) are rebuilt here from the token
 * stream instead of a char-by-char scrubber, so both views and every
 * token-level rule agree on what is code: raw strings with custom
 * delimiters, digit separators, encoding prefixes, and line-spliced
 * comments (a "// ... \" whose continuation line the old scrubber
 * left visible) are all scrubbed correctly now.
 */

#include "repro_lint/lint.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

#include "repro_lint/symbol_index.hh"

namespace repro_lint
{

namespace
{

bool
lintableExtension(const std::filesystem::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h"
        || ext == ".hpp";
}

bool
hasFixtureComponent(const std::filesystem::path& p)
{
    for (const auto& part : p)
        if (part == "lint_fixtures")
            return true;
    return false;
}

/** The marker a file uses to opt into the hot-path rule families. */
constexpr const char* kHotPathMarker = "repro-lint: hot-path";

/**
 * Rebuild the two scrubbed views from the token stream. Both start
 * from the raw text so byte offsets line up exactly:
 *
 *   - nocomment: raw with every Comment span blanked;
 *   - code: blank except the spans of Identifier/Number/Punct/
 *     HeaderName tokens (copied verbatim) and the first + last byte
 *     of each String/CharLit token (the delimiters, so paren/quote
 *     structure survives while literal contents never trip a rule).
 *
 * Newlines are preserved everywhere so line numbers survive.
 */
void
buildViews(const std::string& raw, const std::vector<Token>& tokens,
           std::string& nocomment, std::string& code)
{
    nocomment = raw;
    code.assign(raw.size(), ' ');
    for (std::size_t i = 0; i < raw.size(); ++i)
        if (raw[i] == '\n')
            code[i] = '\n';

    for (const Token& t : tokens) {
        const std::size_t end = std::min(t.end_offset, raw.size());
        switch (t.kind) {
          case TokKind::Comment:
            for (std::size_t i = t.offset; i < end; ++i)
                if (raw[i] != '\n')
                    nocomment[i] = ' ';
            break;
          case TokKind::String:
          case TokKind::CharLit:
            if (t.offset < end) {
                code[t.offset] = raw[t.offset];
                code[end - 1] = raw[end - 1];
            }
            break;
          default:
            for (std::size_t i = t.offset; i < end; ++i)
                code[i] = raw[i];
            break;
        }
    }
}

std::vector<std::string>
splitLines(const std::string& text)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream is(text);
    while (std::getline(is, line))
        lines.push_back(line);
    if (lines.empty())
        lines.emplace_back();
    return lines;
}

/** Parse "repro-lint: allow(a, b/c)" out of one raw source line. */
std::vector<std::string>
parseAllows(const std::string& raw_line)
{
    static const std::string kMarker = "repro-lint: allow(";
    std::vector<std::string> rules;
    const std::size_t at = raw_line.find(kMarker);
    if (at == std::string::npos)
        return rules;
    const std::size_t open = at + kMarker.size();
    const std::size_t close = raw_line.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::string item;
    std::istringstream is(raw_line.substr(open, close - open));
    while (std::getline(is, item, ',')) {
        const std::size_t b = item.find_first_not_of(" \t");
        const std::size_t e = item.find_last_not_of(" \t");
        if (b != std::string::npos)
            rules.push_back(item.substr(b, e - b + 1));
    }
    return rules;
}

} // namespace

bool
SourceFile::allowed(int line, std::string_view rule) const
{
    if (line < 1 || static_cast<std::size_t>(line) > allows.size())
        return false;
    for (const std::string& a : allows[static_cast<std::size_t>(line) - 1]) {
        if (rule == a)
            return true;
        if (rule.size() > a.size() && rule.substr(0, a.size()) == a
            && rule[a.size()] == '/')
            return true;
    }
    return false;
}

const SourceFile*
Tree::find(std::string_view rel) const
{
    for (const SourceFile& f : files)
        if (f.rel == rel)
            return &f;
    return nullptr;
}

std::string
layerOf(std::string_view rel)
{
    static const std::pair<std::string_view, std::string_view> kPrefixes[] = {
        {"src/core/", "core"},         {"src/tracegen/", "tracegen"},
        {"src/sim/", "sim"},           {"src/workloads/", "workloads"},
        {"src/harness/", "harness"},   {"src/service/", "service"},
        {"bench/", "bench"},           {"examples/", "examples"},
        {"tests/", "tests"},
    };
    for (const auto& [prefix, layer] : kPrefixes)
        if (rel.substr(0, prefix.size()) == prefix)
            return std::string(layer);
    return {};
}

SourceFile
loadSourceFile(const std::filesystem::path& abs, std::string rel)
{
    std::ifstream in(abs, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();

    SourceFile f;
    std::replace(rel.begin(), rel.end(), '\\', '/');
    f.rel = std::move(rel);
    f.layer = layerOf(f.rel);
    f.tokens = tokenize(raw);

    std::string nocomment, code;
    buildViews(raw, f.tokens, nocomment, code);
    f.raw_lines = splitLines(raw);
    f.nocomment_lines = splitLines(nocomment);
    f.code_lines = splitLines(code);

    f.allows.reserve(f.raw_lines.size());
    for (const std::string& line : f.raw_lines) {
        f.allows.push_back(parseAllows(line));
        if (line.find(kHotPathMarker) != std::string::npos)
            f.hot_path = true;
    }
    return f;
}

Tree
loadTree(const std::filesystem::path& root)
{
    Tree tree;
    tree.root = root;
    for (const char* top : {"src", "bench", "examples", "tests"}) {
        const std::filesystem::path dir = root / top;
        if (!std::filesystem::is_directory(dir))
            continue;
        for (auto it = std::filesystem::recursive_directory_iterator(dir);
             it != std::filesystem::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file()
                || !lintableExtension(it->path()))
                continue;
            const std::filesystem::path relp =
                    std::filesystem::relative(it->path(), root);
            if (hasFixtureComponent(relp))
                continue;
            tree.files.push_back(
                    loadSourceFile(it->path(), relp.generic_string()));
        }
    }
    std::sort(tree.files.begin(), tree.files.end(),
              [](const SourceFile& a, const SourceFile& b) {
                  return a.rel < b.rel;
              });
    return tree;
}

void
emitFinding(const SourceFile& f, int line, std::string rule,
            std::string message, std::vector<Finding>& out)
{
    if (f.allowed(line, rule))
        return;
    out.push_back({f.rel, line, std::move(rule), std::move(message)});
}

std::vector<Finding>
runAllRules(const Tree& tree)
{
    std::vector<Finding> out;
    checkLayering(tree, out);
    checkDeterminism(tree, out);
    checkPredictorContract(tree, out);
    checkRawParse(tree, out);
    checkPortability(tree, out);
    checkConcurrency(tree, out);

    const SymbolIndex index = buildSymbolIndex(tree);
    checkAtomicOrders(tree, index, out);
    checkStatusUse(tree, index, out);
    checkEnvDoc(tree, index, out);

    std::sort(out.begin(), out.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule, a.message)
                      < std::tie(b.file, b.line, b.rule, b.message);
              });
    return out;
}

std::string
formatFinding(const Finding& f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] "
        + f.message;
}

} // namespace repro_lint
