/**
 * @file
 * concurrency/implicit-seq-cst: every atomic access on the ingest
 * fabric's hot path must spell out its memory order.
 *
 * The SPSC rings' correctness argument (spsc_ring.hh) is a short
 * chain of acquire/release edges; its performance argument is that
 * nothing on the path pays for an order stronger than that chain
 * needs. A defaulted std::atomic operation is seq_cst — on x86 a
 * store becomes a full fence (mfence/xchg), on ARM a stronger
 * barrier — and the default is silent: the code reads exactly like
 * the relaxed version and no test can tell them apart. Worse, a
 * defaulted order hides *intent*: the next reader cannot tell a
 * deliberate seq_cst fence from a forgotten argument. So in files
 * carrying the "repro-lint: hot-path" marker, any load / store /
 * exchange / fetch_* / compare_exchange_* on a receiver that the
 * symbol index resolves to a std::atomic must pass an explicit
 * std::memory_order argument. Deliberate seq_cst is still one
 * keystroke away — write std::memory_order_seq_cst and the rule (and
 * the reader) sees a decision instead of an accident.
 *
 * Receiver resolution keeps this to real atomics: the identifier
 * before the '.'/'->'must be a variable the index declared with type
 * std::atomic in a file reachable through the include graph, so
 * "v.load()" on some unrelated type never trips the rule. Misses
 * (casts, operator overloads, aliased references) degrade to
 * silence.
 */

#include "repro_lint/lint.hh"

#include <string_view>

#include "repro_lint/symbol_index.hh"

namespace repro_lint
{

namespace
{

/** std::atomic member operations that accept a memory-order
 *  argument. (wait/notify are blocking-adjacent and already covered
 *  by lock-in-hot-path conventions.) */
bool
isOrderedOp(std::string_view s)
{
    return s == "load" || s == "store" || s == "exchange"
        || s == "fetch_add" || s == "fetch_sub" || s == "fetch_and"
        || s == "fetch_or" || s == "fetch_xor"
        || s == "compare_exchange_weak"
        || s == "compare_exchange_strong";
}

} // namespace

void
checkAtomicOrders(const Tree& tree, const SymbolIndex& index,
                  std::vector<Finding>& out)
{
    for (const SourceFile& f : tree.files) {
        if (!f.hot_path)
            continue;
        const std::vector<const Token*> sig = significantTokens(f);

        for (std::size_t i = 2; i + 1 < sig.size(); ++i) {
            if (sig[i]->kind != TokKind::Identifier
                || !isOrderedOp(sig[i]->spelling)
                || sig[i + 1]->spelling != "(")
                continue;
            const std::string& dot = sig[i - 1]->spelling;
            if (dot != "." && dot != "->")
                continue;
            if (sig[i - 2]->kind != TokKind::Identifier)
                continue;  // complex receiver: cannot prove, stay silent

            bool is_atomic = false;
            for (const VarDecl* v :
                 index.varsNamed(f.rel, sig[i - 2]->spelling))
                is_atomic = is_atomic || v->type == "std::atomic";
            if (!is_atomic)
                continue;

            const std::size_t close = matchForward(sig, i + 1);
            bool has_order = false;
            for (std::size_t a = i + 2; a < close; ++a) {
                if (sig[a]->kind == TokKind::Identifier
                    && sig[a]->spelling.rfind("memory_order", 0) == 0)
                    has_order = true;
            }
            if (has_order)
                continue;

            emitFinding(f, sig[i]->line, "concurrency/implicit-seq-cst",
                        "atomic '" + sig[i - 2]->spelling + "."
                                + sig[i]->spelling
                                + "()' defaults to seq_cst in a"
                                  " hot-path file; pass an explicit"
                                  " std::memory_order argument",
                        out);
        }
    }
}

} // namespace repro_lint
