/**
 * @file
 * Symbol-index construction (see symbol_index.hh for the contract).
 *
 * The scanners here run on significantTokens() — the comment- and
 * preprocessor-free token view — with a hand-maintained scope stack:
 * namespace / class bodies are "declaration scopes" where an
 * identifier followed by '(' is a candidate function declaration;
 * everything inside a plain '{' (function bodies, initializers,
 * lambdas, enums) is a block where nothing is indexed. Candidates
 * are then validated on both sides: the token *before* the name must
 * be declaration-shaped (not '.', '->', ',', '=', ... which would
 * make it a call or a member-initializer), and the token run *after*
 * the closing ')' must end in '{', ';', '=' or a constructor
 * init-list ':' after skipping cv/ref/noexcept/override/final and a
 * trailing return type. Misses degrade to an unindexed declaration —
 * which downstream rules treat as "cannot prove, stay silent".
 */

#include "repro_lint/symbol_index.hh"

#include <algorithm>

namespace repro_lint
{

namespace
{

/** Identifiers that look like calls at declaration scope but are not
 *  function declarations. */
bool
neverAFunction(std::string_view s)
{
    static const char* const kNames[] = {
        "if",     "while",    "for",      "switch",   "return",
        "sizeof", "alignof",  "alignas",  "decltype", "noexcept",
        "static_assert",      "assert",   "catch",    "new",
        "delete", "operator", "defined",  "throw",    "typeid",
        "requires",
    };
    for (const char* n : kNames)
        if (s == n)
            return true;
    return false;
}

bool
isAccessSpec(std::string_view s)
{
    return s == "public" || s == "private" || s == "protected";
}

struct Scope
{
    enum Kind
    {
        Ns,
        Cls,
        Block
    };
    Kind kind;
    std::string name;
};

/** File-local scanner state shared by the collection passes. */
struct FileScan
{
    const SourceFile& f;
    std::vector<const Token*> sig;

    explicit FileScan(const SourceFile& file)
        : f(file), sig(significantTokens(file))
    {
    }

    const std::string&
    sp(std::size_t i) const
    {
        static const std::string empty;
        return i < sig.size() ? sig[i]->spelling : empty;
    }

    bool
    isIdent(std::size_t i) const
    {
        return i < sig.size() && sig[i]->kind == TokKind::Identifier;
    }
};

/**
 * Validate + record the candidate function declaration whose name is
 * sig[i] (sig[i+1] is '('). @p cls is the enclosing class from the
 * scope stack; an out-of-class "Cls::name(" definition overrides it.
 */
void
tryIndexFunction(const FileScan& fs, std::size_t i, std::string cls,
                 std::vector<FunctionDecl>& out)
{
    const auto& sig = fs.sig;
    const std::string& name = sig[i]->spelling;
    if (neverAFunction(name))
        return;

    if (i > 0) {
        const std::string& p = fs.sp(i - 1);
        // Calls, member-initializers, default-argument expressions.
        if (p == "." || p == "->" || p == "," || p == "(" || p == "="
            || p == "~" || p == "!" || p == "&&" || p == "||"
            || p == "return" || p == "co_return" || p == "?")
            return;
        if (p == "::") {
            // Out-of-class definition: take the class from the
            // qualifier. Qualified *calls* only occur inside blocks,
            // which the caller already excluded.
            if (i < 2 || !fs.isIdent(i - 2))
                return;
            cls = fs.sp(i - 2);
        } else if (p == ":") {
            // "public:" is fine; a constructor init-list ':' means
            // this is a member initializer, not a declaration.
            if (i < 2 || !isAccessSpec(fs.sp(i - 2)))
                return;
        }
    }

    const std::size_t close = matchForward(sig, i + 1);
    if (close >= sig.size())
        return;

    // After the parameter list: cv/ref qualifiers, noexcept(...),
    // override/final, then a declaration terminator.
    std::size_t j = close + 1;
    while (j < sig.size()) {
        const std::string& s = fs.sp(j);
        if (s == "const" || s == "override" || s == "final"
            || s == "&" || s == "&&" || s == "volatile"
            || s == "mutable") {
            ++j;
        } else if (s == "noexcept") {
            ++j;
            if (fs.sp(j) == "(")
                j = matchForward(sig, j) + 1;
        } else if (s == "->") {
            // Trailing return type: skip to the terminator.
            ++j;
            while (j < sig.size() && fs.sp(j) != "{" && fs.sp(j) != ";"
                   && fs.sp(j) != "=") {
                if (fs.sp(j) == "<") {
                    const std::size_t k = skipTemplateArgs(sig, j);
                    j = k == j ? j + 1 : k;
                } else {
                    ++j;
                }
            }
        } else {
            break;
        }
    }
    if (j >= sig.size())
        return;
    const std::string& term = fs.sp(j);
    const bool ctor_colon = term == ":" && name == cls;
    if (term != "{" && term != ";" && term != "=" && !ctor_colon)
        return;

    // Backward over the return type + attributes to the previous
    // declaration boundary.
    bool saw_nodiscard = false;
    bool saw_void = false;
    bool saw_ptr = false;
    std::size_t b = i;
    while (b > 0) {
        const std::string& p = fs.sp(b - 1);
        if (p == ";" || p == "{" || p == "}" || p == "(" || p == ","
            || p == ")")
            break;
        if (p == ":") {
            break;  // access specifier (or unexpected) — stop either way
        }
        if (fs.isIdent(b - 1)) {
            if (p == "nodiscard")
                saw_nodiscard = true;
            else if (p == "void")
                saw_void = true;
        } else if (p == "*") {
            saw_ptr = true;
        }
        --b;
    }

    FunctionDecl d;
    d.name = name;
    d.cls = std::move(cls);
    d.file = fs.f.rel;
    d.line = sig[i]->line;
    d.nodiscard = saw_nodiscard;
    d.returns_void = (saw_void && !saw_ptr) || name == d.cls;
    out.push_back(std::move(d));
}

/** Scope-tracking walk over one file collecting function decls. */
void
collectFunctions(const FileScan& fs, std::vector<FunctionDecl>& out)
{
    const auto& sig = fs.sig;
    std::vector<Scope> scopes;

    std::size_t i = 0;
    while (i < sig.size()) {
        const Token& t = *sig[i];
        const std::string& s = t.spelling;

        if (t.kind == TokKind::Identifier) {
            if (s == "template" && fs.sp(i + 1) == "<") {
                // Never let "class T" in a parameter list open a scope.
                const std::size_t k = skipTemplateArgs(sig, i + 1);
                i = k == i + 1 ? i + 2 : k;
                continue;
            }
            if (s == "namespace") {
                std::size_t j = i + 1;
                std::string name;
                while (j < sig.size()
                       && (fs.isIdent(j) || fs.sp(j) == "::")) {
                    name += fs.sp(j);
                    ++j;
                }
                if (fs.sp(j) == "{") {
                    scopes.push_back({Scope::Ns, std::move(name)});
                    i = j + 1;
                } else {
                    i = j;  // namespace alias / using-directive tail
                }
                continue;
            }
            if (s == "enum") {
                std::size_t j = i + 1;
                while (j < sig.size() && fs.sp(j) != "{"
                       && fs.sp(j) != ";")
                    ++j;
                if (fs.sp(j) == "{")
                    scopes.push_back({Scope::Block, {}});
                i = j + 1;
                continue;
            }
            if (s == "class" || s == "struct" || s == "union") {
                // Find the class name, skipping attributes.
                std::size_t j = i + 1;
                std::string name;
                while (j < sig.size()) {
                    if (fs.sp(j) == "[") {
                        j = matchForward(sig, j) + 1;
                        continue;
                    }
                    if (fs.sp(j) == "alignas"
                        && fs.sp(j + 1) == "(") {
                        j = matchForward(sig, j + 1) + 1;
                        continue;
                    }
                    if (fs.isIdent(j) && fs.sp(j) != "final") {
                        name = fs.sp(j);
                        ++j;
                    }
                    break;
                }
                // Scan to the body '{' or a forward-decl ';', hopping
                // over template arguments and base-clause parens.
                while (j < sig.size() && fs.sp(j) != "{"
                       && fs.sp(j) != ";") {
                    if (fs.sp(j) == "<") {
                        const std::size_t k = skipTemplateArgs(sig, j);
                        j = k == j ? j + 1 : k;
                    } else if (fs.sp(j) == "(") {
                        j = matchForward(sig, j) + 1;
                    } else {
                        ++j;
                    }
                }
                if (fs.sp(j) == "{") {
                    scopes.push_back({Scope::Cls, std::move(name)});
                    i = j + 1;
                } else {
                    i = j + 1;
                }
                continue;
            }
            if (fs.sp(i + 1) == "("
                && (scopes.empty()
                    || scopes.back().kind != Scope::Block)) {
                const std::string cls =
                        (!scopes.empty()
                         && scopes.back().kind == Scope::Cls)
                        ? scopes.back().name
                        : std::string();
                tryIndexFunction(fs, i, cls, out);
            }
            ++i;
            continue;
        }

        if (s == "{") {
            scopes.push_back({Scope::Block, {}});
        } else if (s == "}") {
            if (!scopes.empty())
                scopes.pop_back();
        }
        ++i;
    }
}

/**
 * Collect variable/member declarations whose type head is in
 * @p interesting ("std::atomic" or an indexed class name). The shape
 * matched is
 *
 *     Q(::Q)* (<...>)? (&|*|const)* name  terminator
 *
 * with terminator one of ; = { ( , ) [  — covering members, locals,
 * parameters, and constructor-call initializers.
 */
void
collectVars(const FileScan& fs, const std::set<std::string>& interesting,
            std::vector<VarDecl>& out)
{
    const auto& sig = fs.sig;
    for (std::size_t i = 0; i < sig.size(); ++i) {
        if (!fs.isIdent(i))
            continue;
        // Qualified type head.
        std::size_t j = i;
        std::string head = fs.sp(i);
        std::string last = fs.sp(i);
        while (fs.sp(j + 1) == "::" && fs.isIdent(j + 2)) {
            j += 2;
            head += "::" + fs.sp(j);
            last = fs.sp(j);
        }
        if (head != "std::atomic" && interesting.count(last) == 0)
            continue;
        const std::string type =
                head == "std::atomic" ? head : last;

        std::size_t k = j + 1;
        if (fs.sp(k) == "<") {
            const std::size_t after = skipTemplateArgs(sig, k);
            if (after == k)
                continue;  // comparison, not a template-argument list
            k = after;
        }
        while (fs.sp(k) == "&" || fs.sp(k) == "*"
               || fs.sp(k) == "const")
            ++k;
        if (!fs.isIdent(k))
            continue;
        const std::string& term = fs.sp(k + 1);
        if (term != ";" && term != "=" && term != "{" && term != "("
            && term != "," && term != ")" && term != "[")
            continue;

        VarDecl v;
        v.name = fs.sp(k);
        v.type = type;
        v.file = fs.f.rel;
        v.line = sig[k]->line;
        out.push_back(std::move(v));
        i = k;
    }
}

/** Collect REPRO_* string literals inside env-reader call arguments. */
void
collectEnvUses(const FileScan& fs, std::vector<EnvUse>& out)
{
    static const char* const kReaders[] = {
        "getenv", "envRaw", "envUIntOr", "envDoubleOr", "envFlagOr",
    };
    const auto& sig = fs.sig;
    for (std::size_t i = 0; i + 1 < sig.size(); ++i) {
        if (!fs.isIdent(i) || fs.sp(i + 1) != "(")
            continue;
        bool reader = false;
        for (const char* r : kReaders)
            reader = reader || fs.sp(i) == r;
        if (!reader)
            continue;
        const std::size_t close = matchForward(sig, i + 1);
        for (std::size_t a = i + 2; a < close && a < sig.size(); ++a) {
            if (sig[a]->kind != TokKind::String)
                continue;
            const std::string var = tokenContents(*sig[a]);
            if (var.rfind("REPRO_", 0) != 0)
                continue;
            if (var.find_first_not_of(
                        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")
                != std::string::npos)
                continue;
            out.push_back({var, fs.f.rel, sig[a]->line});
        }
    }
}

/** Resolve one quoted include to a tree-relative path, or "". */
std::string
resolveInclude(const Tree& tree, const std::string& from,
               const std::string& inc)
{
    // The build adds src/ and the repo root to the include path;
    // fall back to sibling-relative for good measure.
    if (tree.find("src/" + inc) != nullptr)
        return "src/" + inc;
    if (tree.find(inc) != nullptr)
        return inc;
    const std::size_t slash = from.rfind('/');
    if (slash != std::string::npos) {
        const std::string sib = from.substr(0, slash + 1) + inc;
        if (tree.find(sib) != nullptr)
            return sib;
    }
    return {};
}

} // namespace

std::vector<const Token*>
significantTokens(const SourceFile& f)
{
    std::vector<const Token*> sig;
    sig.reserve(f.tokens.size());
    for (const Token& t : f.tokens)
        if (t.kind != TokKind::Comment && !t.in_pp)
            sig.push_back(&t);
    return sig;
}

std::size_t
matchForward(const std::vector<const Token*>& sig, std::size_t open)
{
    if (open >= sig.size())
        return sig.size();
    const std::string& o = sig[open]->spelling;
    std::string_view c;
    if (o == "(")
        c = ")";
    else if (o == "[")
        c = "]";
    else if (o == "{")
        c = "}";
    else
        return sig.size();
    int depth = 0;
    for (std::size_t i = open; i < sig.size(); ++i) {
        if (sig[i]->spelling == o)
            ++depth;
        else if (sig[i]->spelling == c && --depth == 0)
            return i;
    }
    return sig.size();
}

std::size_t
skipTemplateArgs(const std::vector<const Token*>& sig, std::size_t at)
{
    int depth = 0;
    for (std::size_t j = at; j < sig.size(); ++j) {
        const std::string& s = sig[j]->spelling;
        if (s == "<") {
            depth += 1;
        } else if (s == "<<") {
            depth += 2;
        } else if (s == ">") {
            if (--depth == 0)
                return j + 1;
        } else if (s == ">>") {
            depth -= 2;
            if (depth <= 0)
                return j + 1;
        } else if (s == ";" || s == "{" || s == "}") {
            return at;
        }
        if (depth < 0)
            return at;
    }
    return at;
}

bool
SymbolIndex::reachable(std::string_view from, std::string_view to) const
{
    if (from == to)
        return true;
    const auto it = reach.find(std::string(from));
    return it != reach.end() && it->second.count(std::string(to)) > 0;
}

std::vector<const FunctionDecl*>
SymbolIndex::functionsNamed(std::string_view name) const
{
    std::vector<const FunctionDecl*> out;
    for (const FunctionDecl& d : functions)
        if (d.name == name)
            out.push_back(&d);
    return out;
}

std::vector<const VarDecl*>
SymbolIndex::varsNamed(std::string_view from, std::string_view name) const
{
    std::vector<const VarDecl*> out;
    for (const VarDecl& v : vars)
        if (v.name == name && reachable(from, v.file))
            out.push_back(&v);
    return out;
}

SymbolIndex
buildSymbolIndex(const Tree& tree)
{
    SymbolIndex index;

    std::vector<FileScan> scans;
    scans.reserve(tree.files.size());
    for (const SourceFile& f : tree.files)
        scans.emplace_back(f);

    for (const FileScan& fs : scans)
        collectFunctions(fs, index.functions);

    std::set<std::string> interesting;
    for (const FunctionDecl& d : index.functions)
        if (!d.cls.empty())
            interesting.insert(d.cls);
    for (const FileScan& fs : scans) {
        collectVars(fs, interesting, index.vars);
        collectEnvUses(fs, index.env_uses);
    }

    // Quoted-include graph over tree files.
    for (const SourceFile& f : tree.files) {
        std::vector<std::string>& edges = index.includes[f.rel];
        for (const Token& t : f.tokens) {
            if (!t.in_pp || t.pp_directive != "include"
                || t.kind != TokKind::String)
                continue;
            const std::string target =
                    resolveInclude(tree, f.rel, tokenContents(t));
            if (!target.empty())
                edges.push_back(target);
        }
    }

    // Reflexive transitive closure (BFS per file; the tree is small).
    for (const SourceFile& f : tree.files) {
        std::set<std::string>& closed = index.reach[f.rel];
        std::vector<std::string> work{f.rel};
        closed.insert(f.rel);
        while (!work.empty()) {
            const std::string cur = std::move(work.back());
            work.pop_back();
            const auto it = index.includes.find(cur);
            if (it == index.includes.end())
                continue;
            for (const std::string& next : it->second)
                if (closed.insert(next).second)
                    work.push_back(next);
        }
    }

    return index;
}

} // namespace repro_lint
