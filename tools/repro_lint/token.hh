/**
 * @file
 * The C++ token stream repro-lint's rules read.
 *
 * PR 4's scanner matched regex-ish patterns against comment- and
 * string-scrubbed *lines*; that cannot see call targets, argument
 * lists, declaration structure, or anything that crosses a line
 * break — and it had documented blind spots (digit separators read
 * as char-literal openers, line-spliced comments leaking into the
 * code view). This tokenizer replaces the scrubber as the analysis
 * core: one pass over the raw bytes yields a vector of tokens with
 *
 *   - kind: identifier, number, string/char literal, punctuator,
 *     comment, or #include header-name;
 *   - spelling: the logical (splice-free) text;
 *   - the raw byte span [offset, end_offset) and the 1-based
 *     line/column of the first byte, so findings and the rebuilt
 *     scrubbed views stay aligned with the file on disk;
 *   - preprocessor awareness: tokens inside a directive carry
 *     in_pp plus the directive name ("include", "define", ...).
 *
 * Correctly handled where the scrubber was not: backslash-newline
 * splices (removed before tokenizing, so a spliced // comment blanks
 * its continuation lines), raw string literals with custom
 * delimiters, encoding prefixes (u8"", L'x', u8R"x(...)x"), digit
 * separators (1'000'000 is one Number token, not a char literal),
 * and pp-number exponent signs (1e+5). The tokenizer never fails:
 * unterminated literals end at the line (or file) end, and any
 * unrecognized byte becomes a one-character punctuator, so a
 * half-edited file still lints.
 */

#ifndef DFCM_TOOLS_REPRO_LINT_TOKEN_HH
#define DFCM_TOOLS_REPRO_LINT_TOKEN_HH

#include <cstddef>
#include <string>
#include <vector>

namespace repro_lint
{

enum class TokKind
{
    Identifier,  //!< identifiers and keywords (no keyword table)
    Number,      //!< pp-number: 0x1F, 1'000'000, 1e+5, 3.14f
    String,      //!< "..." with any prefix, including raw strings
    CharLit,     //!< 'x' with any prefix
    Punct,       //!< operators and punctuation, maximal munch
    Comment,     //!< // or /* */, one token per comment
    HeaderName,  //!< <...> directly after #include
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string spelling;  //!< logical text, line splices removed
    int line = 0;          //!< 1-based line of the first raw byte
    int col = 0;           //!< 1-based column of the first raw byte
    std::size_t offset = 0;      //!< raw byte offset of the first byte
    std::size_t end_offset = 0;  //!< one past the last raw byte
    bool in_pp = false;          //!< inside a preprocessor directive
    /** Directive name when in_pp ("include", "define", ...). */
    std::string pp_directive;
};

/** Tokenize @p raw. Whitespace is not represented; everything else
 *  (including comments) is. Never throws on malformed input. */
std::vector<Token> tokenize(const std::string& raw);

/** Literal contents of a String/CharLit/HeaderName token: encoding
 *  prefix, quotes and raw-string delimiters stripped, escapes NOT
 *  interpreted. Returns the spelling unchanged for other kinds. */
std::string tokenContents(const Token& t);

} // namespace repro_lint

#endif // DFCM_TOOLS_REPRO_LINT_TOKEN_HH
