/**
 * @file
 * repro-lint — the repo-specific static-analysis pass behind
 * tools/check.sh.
 *
 * The reproduction's scientific contract is bit-identical figure
 * regeneration across every execution path (serial, fused,
 * multi-geometry, mmap'd) plus a lock-free service whose scaling
 * argument lives entirely in atomics discipline. Those invariants
 * are not checked by any compiler flag: the layering DAG between
 * src/ libraries, determinism of everything that feeds a figure CSV,
 * the fused/reference parity the batch-kernel tests diff against,
 * checked parsing of every number that enters the system, explicit
 * memory orders and consumed backpressure statuses on the ingest
 * fabric, and documentation of every REPRO_* knob. This tool
 * enforces them with a self-contained C++20 analysis pass — target
 * machines have g++ but no libclang, so the pass runs on a real
 * token stream (token.hh) plus a cross-TU symbol index
 * (symbol_index.hh) rather than an AST.
 *
 * Rule catalog (see docs/analysis.md for rationale and examples):
 *   layering/include-dag          — src/ layer includes must follow
 *                                   core <- tracegen/sim <- workloads
 *                                   <- harness
 *   layering/cc-include           — nothing may include a .cc file
 *   determinism/banned-call       — rand()/time()/random_device etc.
 *                                   in figure/CSV-emitting drivers
 *   determinism/unordered-iteration — iterating an unordered
 *                                   container in a driver
 *   predictor/missing-test        — factory-registered predictor
 *                                   without a tests/<name>_test.cc
 *   predictor/fused-without-reference — predictAndUpdate/runTraceSpan
 *                                   override without the virtual
 *                                   predict()/update() reference path
 *   parse/raw-call                — bare atoi/strtol/stoi/... outside
 *                                   src/core/parse_util.hh
 *   portability/raw-intrinsic     — SIMD intrinsics (_mm*, vld1*, ...)
 *                                   or their vendor headers outside
 *                                   src/core/simd.hh
 *   portability/raw-mmap          — mmap/munmap/madvise/aligned_alloc
 *                                   or <sys/mman.h> outside the table
 *                                   arena (src/core/table_arena.*) and
 *                                   the trace-mapping homes
 *                                   (src/core/trace_io.*,
 *                                   src/harness/trace_store.*)
 *   concurrency/lock-in-hot-path  — blocking primitives (std::mutex,
 *                                   condition variables, lock RAII
 *                                   types, their headers) in a file
 *                                   carrying the "repro-lint:
 *                                   hot-path" marker
 *   concurrency/implicit-seq-cst  — a std::atomic load/store/RMW in a
 *                                   hot-path file with no explicit
 *                                   std::memory_order argument
 *                                   (implicit seq_cst = silent fence)
 *   api/missing-nodiscard         — a try*() status API declared in a
 *                                   hot-path file without
 *                                   [[nodiscard]]
 *   api/unconsumed-status         — a call to a [[nodiscard]]-indexed
 *                                   status API whose result is
 *                                   discarded (not consumed and not
 *                                   explicitly (void)-cast)
 *   api/env-doc-drift             — a REPRO_* knob read in code but
 *                                   missing from docs/api.md, or
 *                                   documented there but read nowhere
 *
 * Suppression: append "// repro-lint: allow(<rule>)" to the flagged
 * line; <rule> is a full rule id or a prefix ("parse" allows every
 * parse rule under that prefix). Findings can also be accepted into
 * a baseline file (--baseline / --write-baseline, see main.cc and
 * docs/analysis.md) — entries match on (file, rule, message) so line
 * drift never invalidates them.
 */

#ifndef DFCM_TOOLS_REPRO_LINT_LINT_HH
#define DFCM_TOOLS_REPRO_LINT_LINT_HH

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "repro_lint/token.hh"

namespace repro_lint
{

struct SymbolIndex;  // symbol_index.hh

/** One rule violation at a source location. */
struct Finding
{
    std::string file;     //!< path relative to the lint root
    int line = 0;         //!< 1-based line number
    std::string rule;     //!< rule id, e.g. "layering/include-dag"
    std::string message;  //!< human-readable explanation

    bool operator==(const Finding&) const = default;
};

/** A source file prepared for rule matching. */
struct SourceFile
{
    std::string rel;    //!< root-relative path, '/' separators
    std::string layer;  //!< "core", "sim", ... "bench", "examples",
                        //!< "tests"; empty when outside the known tree

    std::vector<std::string> raw_lines;   //!< verbatim source
    /** Comments blanked, string/char literal contents kept — the view
     *  the include scanner reads. */
    std::vector<std::string> nocomment_lines;
    /** Comments AND string/char literal contents blanked — the view
     *  every identifier-level rule reads, so banned tokens inside
     *  documentation or diagnostics never trip a rule. */
    std::vector<std::string> code_lines;
    /** The token stream (token.hh) — comments included; the scrubbed
     *  views above are rebuilt from it, so both agree on what is
     *  code and what is not. */
    std::vector<Token> tokens;
    /** Per line (1-based index into allows-1): the rule ids named by a
     *  "repro-lint: allow(...)" comment on that line. */
    std::vector<std::vector<std::string>> allows;
    /** True when the file carries the "repro-lint: hot-path" marker
     *  that opts it into the lock-free-fabric rules. */
    bool hot_path = false;

    /** True when @p rule is suppressed on @p line (exact id match or
     *  prefix at a '/' boundary). */
    bool allowed(int line, std::string_view rule) const;
};

/** The set of files a lint run analyses. */
struct Tree
{
    std::filesystem::path root;
    std::vector<SourceFile> files;  //!< sorted by rel path

    const SourceFile* find(std::string_view rel) const;
};

/** Layer name for a root-relative path; empty if not a linted layer. */
std::string layerOf(std::string_view rel);

/** Scrub and index one file. Exposed for the fixture tests. */
SourceFile loadSourceFile(const std::filesystem::path& abs,
                          std::string rel);

/**
 * Walk src/, bench/, examples/, and tests/ under @p root, loading
 * every .cc/.hh/.cpp/.h/.hpp file. Paths containing a
 * "lint_fixtures" component are skipped — those are the linter's own
 * deliberately-broken test inputs.
 */
Tree loadTree(const std::filesystem::path& root);

/** Record a finding unless an allow() comment suppresses it. */
void emitFinding(const SourceFile& f, int line, std::string rule,
                 std::string message, std::vector<Finding>& out);

void checkLayering(const Tree& tree, std::vector<Finding>& out);
void checkDeterminism(const Tree& tree, std::vector<Finding>& out);
void checkPredictorContract(const Tree& tree, std::vector<Finding>& out);
void checkRawParse(const Tree& tree, std::vector<Finding>& out);
void checkPortability(const Tree& tree, std::vector<Finding>& out);
void checkConcurrency(const Tree& tree, std::vector<Finding>& out);

// Symbol-index-backed rule families (PR 9). runAllRules builds the
// index once and threads it through; the split signatures exist so
// the fixture tests can drive one family at a time.
void checkAtomicOrders(const Tree& tree, const SymbolIndex& index,
                       std::vector<Finding>& out);
void checkStatusUse(const Tree& tree, const SymbolIndex& index,
                    std::vector<Finding>& out);
void checkEnvDoc(const Tree& tree, const SymbolIndex& index,
                 std::vector<Finding>& out);

/** All rules, findings sorted by (file, line, rule), suppressions
 *  already applied. */
std::vector<Finding> runAllRules(const Tree& tree);

/** "file:line: [rule] message" — the human output format, also what
 *  the fixture tests assert against. */
std::string formatFinding(const Finding& f);

// --- machine-readable output and the baseline workflow --------------

/** One rule id + one-line summary, for --list-rules and the SARIF
 *  tool.driver.rules table. */
struct RuleInfo
{
    const char* id;
    const char* summary;
};

const std::vector<RuleInfo>& ruleCatalog();

/** Findings as a SARIF 2.1.0 log (one run, driver "repro-lint",
 *  repo-relative artifact URIs, 1-based startLine regions). */
std::string formatSarif(const std::vector<Finding>& findings);

/** One accepted finding. Matches on (file, rule, message) — never on
 *  the line number, so unrelated edits shifting a file do not
 *  invalidate a baseline. */
struct BaselineEntry
{
    std::string file;
    std::string rule;
    std::string message;

    bool operator==(const BaselineEntry&) const = default;
};

/** Baseline-file line for @p f: "file|rule|message". */
std::string formatBaselineEntry(const Finding& f);

/** Parse a baseline file ('#' comments and blank lines skipped);
 *  nullopt when the file cannot be read. */
std::optional<std::vector<BaselineEntry>>
loadBaseline(const std::filesystem::path& path);

/**
 * Drop every finding matched by @p baseline. Entries that matched
 * nothing are appended to @p stale (when non-null) — a stale entry
 * means the underlying issue was fixed and the baseline should
 * shrink.
 */
std::vector<Finding>
applyBaseline(std::vector<Finding> findings,
              const std::vector<BaselineEntry>& baseline,
              std::vector<BaselineEntry>* stale);

} // namespace repro_lint

#endif // DFCM_TOOLS_REPRO_LINT_LINT_HH
