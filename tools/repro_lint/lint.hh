/**
 * @file
 * repro-lint — the repo-specific static-analysis pass behind
 * tools/check.sh.
 *
 * The reproduction's scientific contract is bit-identical figure
 * regeneration across every execution path (serial, fused,
 * multi-geometry, mmap'd). That contract rests on invariants no
 * compiler flag checks: the layering DAG between src/ libraries,
 * determinism of everything that feeds a figure CSV, the
 * fused/reference parity the batch-kernel tests diff against, and
 * checked parsing of every number that enters the system. This tool
 * enforces them with a self-contained C++20 text pass — target
 * machines have g++ but no libclang, so the scanner works on
 * comment- and string-scrubbed source text rather than an AST.
 *
 * Rule catalog (see docs/analysis.md for rationale and examples):
 *   layering/include-dag          — src/ layer includes must follow
 *                                   core <- tracegen/sim <- workloads
 *                                   <- harness
 *   layering/cc-include           — nothing may include a .cc file
 *   determinism/banned-call       — rand()/time()/random_device etc.
 *                                   in figure/CSV-emitting drivers
 *   determinism/unordered-iteration — iterating an unordered
 *                                   container in a driver
 *   predictor/missing-test        — factory-registered predictor
 *                                   without a tests/<name>_test.cc
 *   predictor/fused-without-reference — predictAndUpdate/runTraceSpan
 *                                   override without the virtual
 *                                   predict()/update() reference path
 *   parse/raw-call                — bare atoi/strtol/stoul/... outside
 *                                   src/core/parse_util.hh
 *   portability/raw-intrinsic     — SIMD intrinsics (_mm*, vld1*, ...)
 *                                   or their vendor headers outside
 *                                   src/core/simd.hh
 *   concurrency/lock-in-hot-path  — blocking primitives (std::mutex,
 *                                   condition variables, lock RAII
 *                                   types, their headers) in a file
 *                                   carrying the "repro-lint:
 *                                   hot-path" marker
 *
 * Suppression: append "// repro-lint: allow(<rule>)" to the flagged
 * line; <rule> is a full rule id or a prefix ("parse" allows every
 * parse rule under that prefix).
 */

#ifndef DFCM_TOOLS_REPRO_LINT_LINT_HH
#define DFCM_TOOLS_REPRO_LINT_LINT_HH

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace repro_lint
{

/** One rule violation at a source location. */
struct Finding
{
    std::string file;     //!< path relative to the lint root
    int line = 0;         //!< 1-based line number
    std::string rule;     //!< rule id, e.g. "layering/include-dag"
    std::string message;  //!< human-readable explanation

    bool operator==(const Finding&) const = default;
};

/** A source file prepared for rule matching. */
struct SourceFile
{
    std::string rel;    //!< root-relative path, '/' separators
    std::string layer;  //!< "core", "sim", ... "bench", "examples",
                        //!< "tests"; empty when outside the known tree

    std::vector<std::string> raw_lines;   //!< verbatim source
    /** Comments blanked, string/char literal contents kept — the view
     *  the include scanner reads. */
    std::vector<std::string> nocomment_lines;
    /** Comments AND string/char literal contents blanked — the view
     *  every identifier-level rule reads, so banned tokens inside
     *  documentation or diagnostics never trip a rule. */
    std::vector<std::string> code_lines;
    /** Per line (1-based index into allows-1): the rule ids named by a
     *  "repro-lint: allow(...)" comment on that line. */
    std::vector<std::vector<std::string>> allows;

    /** True when @p rule is suppressed on @p line (exact id match or
     *  prefix at a '/' boundary). */
    bool allowed(int line, std::string_view rule) const;
};

/** The set of files a lint run analyses. */
struct Tree
{
    std::filesystem::path root;
    std::vector<SourceFile> files;  //!< sorted by rel path

    const SourceFile* find(std::string_view rel) const;
};

/** Layer name for a root-relative path; empty if not a linted layer. */
std::string layerOf(std::string_view rel);

/** Scrub and index one file. Exposed for the fixture tests. */
SourceFile loadSourceFile(const std::filesystem::path& abs,
                          std::string rel);

/**
 * Walk src/, bench/, examples/, and tests/ under @p root, loading
 * every .cc/.hh/.cpp/.h/.hpp file. Paths containing a
 * "lint_fixtures" component are skipped — those are the linter's own
 * deliberately-broken test inputs.
 */
Tree loadTree(const std::filesystem::path& root);

/** Record a finding unless an allow() comment suppresses it. */
void emitFinding(const SourceFile& f, int line, std::string rule,
                 std::string message, std::vector<Finding>& out);

void checkLayering(const Tree& tree, std::vector<Finding>& out);
void checkDeterminism(const Tree& tree, std::vector<Finding>& out);
void checkPredictorContract(const Tree& tree, std::vector<Finding>& out);
void checkRawParse(const Tree& tree, std::vector<Finding>& out);
void checkPortability(const Tree& tree, std::vector<Finding>& out);
void checkConcurrency(const Tree& tree, std::vector<Finding>& out);

/** All rules, findings sorted by (file, line, rule), suppressions
 *  already applied. */
std::vector<Finding> runAllRules(const Tree& tree);

/** "file:line: [rule] message" — the one output format, also what the
 *  fixture tests assert against. */
std::string formatFinding(const Finding& f);

} // namespace repro_lint

#endif // DFCM_TOOLS_REPRO_LINT_LINT_HH
