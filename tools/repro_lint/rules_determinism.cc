/**
 * @file
 * determinism rules: the figure/CSV-emitting drivers (bench/ and
 * examples/) must be bit-reproducible run-to-run. Two failure modes
 * have to be kept out statically:
 *
 *  - wall-clock or OS entropy feeding the computation
 *    (rand, srand, random_device, time, clock, gettimeofday, getpid);
 *    the sanctioned source of randomness is the seeded
 *    tracegen::Xorshift;
 *  - iterating a std::unordered_{map,set} — the visit order is
 *    implementation- and size-dependent, so any row or aggregate
 *    computed from such a loop can differ between hosts even with
 *    identical inputs.
 */

#include "repro_lint/lint.hh"

#include <cctype>
#include <string>
#include <vector>

namespace repro_lint
{

namespace
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** True when @p token occurs at @p pos as a standalone identifier
 *  (not a member access, not part of a longer name). */
bool
tokenBoundary(const std::string& line, std::size_t pos,
              const std::string& token)
{
    if (pos > 0) {
        const char prev = line[pos - 1];
        if (identChar(prev) || prev == '.')
            return false;
        // reject foo->time(...) as a member call too
        if (prev == '>' && pos > 1 && line[pos - 2] == '-')
            return false;
    }
    const std::size_t end = pos + token.size();
    return end >= line.size() || !identChar(line[end]);
}

/** Find standalone occurrences of @p token in @p line. */
std::vector<std::size_t>
tokenHits(const std::string& line, const std::string& token)
{
    std::vector<std::size_t> hits;
    std::size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        if (tokenBoundary(line, pos, token))
            hits.push_back(pos);
        pos += 1;
    }
    return hits;
}

/** Names the banned entropy/wall-clock calls. The entry is matched as
 *  an identifier followed by '(' unless callless is set. */
struct BannedCall
{
    const char* name;
    bool callless;  //!< match without a following '(' (types)
};

constexpr BannedCall kBanned[] = {
    {"rand", false},         {"srand", false},
    {"rand_r", false},       {"drand48", false},
    {"random", false},       {"random_device", true},
    {"time", false},         {"clock", false},
    {"gettimeofday", false}, {"localtime", false},
    {"gmtime", false},       {"getpid", false},
};

/** Collect names of variables declared as unordered containers. */
std::vector<std::string>
unorderedNames(const SourceFile& f)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
        const std::string& line = f.code_lines[i];
        for (const char* kind : {"unordered_map", "unordered_set",
                                 "unordered_multimap",
                                 "unordered_multiset"}) {
            for (std::size_t pos : tokenHits(line, kind)) {
                // Skip the template argument list (may span lines).
                std::size_t li = i;
                std::size_t ci = pos + std::string(kind).size();
                int depth = 0;
                bool seen = false;
                while (li < f.code_lines.size()) {
                    const std::string& l = f.code_lines[li];
                    for (; ci < l.size(); ++ci) {
                        if (l[ci] == '<') {
                            ++depth;
                            seen = true;
                        } else if (l[ci] == '>') {
                            --depth;
                        }
                        if (seen && depth == 0)
                            break;
                    }
                    if (seen && ci < l.size())
                        break;
                    ++li;
                    ci = 0;
                }
                if (li >= f.code_lines.size())
                    continue;
                // Read the declared identifier after the '>'.
                const std::string& l = f.code_lines[li];
                std::size_t p = ci + 1;
                while (p < l.size()
                       && std::isspace(static_cast<unsigned char>(l[p])))
                    ++p;
                if (p < l.size() && l[p] == '&')
                    ++p;  // references to unordered containers count
                while (p < l.size()
                       && std::isspace(static_cast<unsigned char>(l[p])))
                    ++p;
                std::string name;
                while (p < l.size() && identChar(l[p]))
                    name += l[p++];
                if (!name.empty())
                    names.push_back(name);
            }
        }
    }
    return names;
}

} // namespace

void
checkDeterminism(const Tree& tree, std::vector<Finding>& out)
{
    for (const SourceFile& f : tree.files) {
        if (f.layer != "bench" && f.layer != "examples")
            continue;

        for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
            const std::string& line = f.code_lines[i];
            for (const BannedCall& b : kBanned) {
                for (std::size_t pos : tokenHits(line, b.name)) {
                    if (!b.callless) {
                        std::size_t p = pos + std::string(b.name).size();
                        while (p < line.size()
                               && std::isspace(static_cast<unsigned char>(
                                       line[p])))
                            ++p;
                        if (p >= line.size() || line[p] != '(')
                            continue;
                    }
                    emitFinding(
                            f, static_cast<int>(i) + 1,
                            "determinism/banned-call",
                            std::string(b.name)
                                    + " is non-deterministic; figure"
                                      " drivers must use the seeded"
                                      " tracegen::Xorshift",
                            out);
                }
            }
        }

        const std::vector<std::string> names = unorderedNames(f);
        for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
            const std::string& line = f.code_lines[i];
            if (line.find("for") == std::string::npos)
                continue;
            for (const std::string& name : names) {
                bool hit = false;
                // range-for: "for (... : name)"
                for (std::size_t pos : tokenHits(line, name)) {
                    std::size_t p = pos;
                    while (p > 0
                           && std::isspace(static_cast<unsigned char>(
                                   line[p - 1])))
                        --p;
                    if (p > 0 && line[p - 1] == ':'
                        && (p < 2 || line[p - 2] != ':'))
                        hit = true;
                }
                // iterator-for: "for (... = name.begin()"
                if (!hit
                    && !tokenHits(line, name + ".begin").empty()
                    && line.find("for") != std::string::npos)
                    hit = true;
                if (hit) {
                    emitFinding(
                            f, static_cast<int>(i) + 1,
                            "determinism/unordered-iteration",
                            "iteration order of unordered container '"
                                    + name
                                    + "' is host-dependent; use an"
                                      " ordered container or sort"
                                      " before emitting figure rows",
                            out);
                }
            }
        }
    }
}

} // namespace repro_lint
