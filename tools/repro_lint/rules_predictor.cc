/**
 * @file
 * predictor rules: the contract between the predictor factory, the
 * test suite, and the fused fast paths.
 *
 * predictor/missing-test — every class the factory can instantiate
 * (any make_unique<X> in src/core/predictor_factory.cc) must be
 * covered by a tests/<name>_test.cc whose stem matches the class name, so
 * a new predictor cannot ship without reference-semantics tests.
 *
 * predictor/fused-without-reference — PR 2's fused predictAndUpdate /
 * runTraceSpan overrides are only trustworthy because the batch-kernel
 * tests diff them against the virtual predict()/update() reference
 * path. A class that overrides a fast path but drops the reference
 * overrides would silently become unverifiable, so the pass requires
 * predict( and update( declarations in the same class body.
 */

#include "repro_lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>

namespace repro_lint
{

namespace
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** CamelCase -> snake_case ("DfcmPredictor" -> "dfcm_predictor"). */
std::string
camelToSnake(const std::string& name)
{
    std::string out;
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        if (std::isupper(static_cast<unsigned char>(c))) {
            if (i > 0
                && !std::isupper(static_cast<unsigned char>(name[i - 1])))
                out += '_';
            out += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
        } else {
            out += c;
        }
    }
    return out;
}

/** True when the test-file stem covers the class snake name: equal,
 *  or a sub-phrase aligned on '_' boundaries ("hybrid_predictor"
 *  covers "counter_hybrid_predictor"; "fcm_predictor" does NOT cover
 *  "dfcm_predictor"). */
bool
stemCovers(const std::string& stem, const std::string& snake)
{
    std::size_t pos = 0;
    while ((pos = snake.find(stem, pos)) != std::string::npos) {
        const bool start_ok = pos == 0 || snake[pos - 1] == '_';
        const std::size_t end = pos + stem.size();
        const bool end_ok = end == snake.size() || snake[end] == '_';
        if (start_ok && end_ok)
            return true;
        ++pos;
    }
    return false;
}

/** Class names instantiated via make_unique<...> in the factory,
 *  mapped to the first line each appears on. */
std::map<std::string, int>
factoryClasses(const SourceFile& factory)
{
    std::map<std::string, int> classes;
    static const std::string kTag = "make_unique<";
    for (std::size_t i = 0; i < factory.code_lines.size(); ++i) {
        const std::string& line = factory.code_lines[i];
        std::size_t pos = 0;
        while ((pos = line.find(kTag, pos)) != std::string::npos) {
            std::size_t p = pos + kTag.size();
            std::string name;
            while (p < line.size() && identChar(line[p]))
                name += line[p++];
            if (!name.empty())
                classes.emplace(name, static_cast<int>(i) + 1);
            pos = p;
        }
    }
    return classes;
}

struct ClassBlock
{
    std::string name;
    int line = 0;          //!< 1-based line of the class keyword
    std::string body;      //!< text between the braces, '\n' kept
    int body_line = 0;     //!< 1-based line where the body opens
};

/** Extract top-level class/struct bodies from the scrubbed text. */
std::vector<ClassBlock>
classBlocks(const SourceFile& f)
{
    std::string text;
    for (const std::string& l : f.code_lines) {
        text += l;
        text += '\n';
    }
    std::vector<ClassBlock> blocks;
    for (const std::string keyword : {"class", "struct"}) {
        std::size_t pos = 0;
        while ((pos = text.find(keyword, pos)) != std::string::npos) {
            const std::size_t after = pos + keyword.size();
            const bool boundary =
                    (pos == 0 || !identChar(text[pos - 1]))
                    && after < text.size() && !identChar(text[after]);
            if (!boundary) {
                pos = after;
                continue;
            }
            std::size_t p = after;
            while (p < text.size()
                   && std::isspace(static_cast<unsigned char>(text[p])))
                ++p;
            std::string name;
            while (p < text.size() && identChar(text[p]))
                name += text[p++];
            // Find the introducing '{' before any ';' (skip forward
            // declarations and `class X;`).
            std::size_t brace = std::string::npos;
            for (std::size_t q = p; q < text.size(); ++q) {
                if (text[q] == ';')
                    break;
                if (text[q] == '{') {
                    brace = q;
                    break;
                }
            }
            if (name.empty() || brace == std::string::npos) {
                pos = after;
                continue;
            }
            int depth = 0;
            std::size_t end = brace;
            for (; end < text.size(); ++end) {
                if (text[end] == '{')
                    ++depth;
                else if (text[end] == '}' && --depth == 0)
                    break;
            }
            ClassBlock b;
            b.name = name;
            b.line = static_cast<int>(
                             std::count(text.begin(),
                                        text.begin()
                                                + static_cast<std::ptrdiff_t>(
                                                        pos),
                                        '\n'))
                   + 1;
            b.body_line = static_cast<int>(
                                  std::count(text.begin(),
                                             text.begin()
                                                     + static_cast<
                                                             std::ptrdiff_t>(
                                                             brace),
                                             '\n'))
                        + 1;
            b.body = text.substr(brace + 1, end - brace - 1);
            blocks.push_back(std::move(b));
            pos = end == std::string::npos ? text.size() : end;
        }
    }
    return blocks;
}

/** True when the body declares token immediately followed by '('. */
bool
declares(const std::string& body, const std::string& token)
{
    std::size_t pos = 0;
    const std::string call = token + "(";
    while ((pos = body.find(call, pos)) != std::string::npos) {
        if (pos == 0 || !identChar(body[pos - 1]))
            return true;
        ++pos;
    }
    return false;
}

/** True when the body overrides @p fn (declaration mentioning both
 *  the function name and 'override' within the next two lines). */
bool
overrides(const std::string& body, const std::string& fn)
{
    std::size_t pos = 0;
    while ((pos = body.find(fn + "(", pos)) != std::string::npos) {
        if (pos > 0 && identChar(body[pos - 1])) {
            ++pos;
            continue;
        }
        // Look for 'override' before the end of the declaration.
        const std::size_t stop = body.find_first_of(";{", pos);
        const std::string decl = body.substr(
                pos, stop == std::string::npos ? std::string::npos
                                               : stop - pos);
        if (decl.find("override") != std::string::npos)
            return true;
        ++pos;
    }
    return false;
}

} // namespace

void
checkPredictorContract(const Tree& tree, std::vector<Finding>& out)
{
    // --- predictor/missing-test ---
    const SourceFile* factory = tree.find("src/core/predictor_factory.cc");
    if (factory != nullptr) {
        const std::map<std::string, int> classes =
                factoryClasses(*factory);
        std::set<std::string> stems;
        for (const SourceFile& f : tree.files) {
            if (f.layer != "tests")
                continue;
            const std::size_t slash = f.rel.rfind('/');
            std::string base = f.rel.substr(slash + 1);
            static const std::string kSuffix = "_test.cc";
            if (base.size() > kSuffix.size()
                && base.compare(base.size() - kSuffix.size(),
                                kSuffix.size(), kSuffix)
                        == 0)
                stems.insert(
                        base.substr(0, base.size() - kSuffix.size()));
        }
        for (const auto& [cls, line] : classes) {
            const std::string snake = camelToSnake(cls);
            bool covered = false;
            for (const std::string& stem : stems)
                if (stemCovers(stem, snake))
                    covered = true;
            if (!covered) {
                emitFinding(*factory, line, "predictor/missing-test",
                            "factory-registered predictor " + cls
                                    + " has no tests/" + snake
                                    + "_test.cc (or matching stem)",
                            out);
            }
        }
    }

    // --- predictor/fused-without-reference ---
    for (const SourceFile& f : tree.files) {
        if (f.layer != "core")
            continue;
        for (const ClassBlock& b : classBlocks(f)) {
            const bool fused = overrides(b.body, "predictAndUpdate")
                    || overrides(b.body, "runTraceSpan");
            if (!fused)
                continue;
            if (!declares(b.body, "predict")
                || !declares(b.body, "update")) {
                emitFinding(
                        f, b.line, "predictor/fused-without-reference",
                        "class " + b.name
                                + " overrides a fused fast path"
                                  " (predictAndUpdate/runTraceSpan) but"
                                  " drops the virtual"
                                  " predict()/update() reference path"
                                  " the batch-kernel tests diff"
                                  " against",
                        out);
            }
        }
    }
}

} // namespace repro_lint
