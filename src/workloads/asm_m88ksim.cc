#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * CPU-simulator-in-simulator (the "m88ksim" analogue). The host
 * program interprets a byte-coded 16-register guest CPU through a
 * jump-table dispatch loop; the guest runs a squares-and-memory
 * summation loop. Value population: the guest pc (repeating context
 * pattern), fetched opcode/operand bytes (context), dispatch-table
 * addresses, guest register values (strides and accumulators).
 *
 * $a0 = outer repetitions (16 guest runs each).
 */
const char*
m88ksimAssembly()
{
    return R"(
# m88ksim: jump-table interpreter for a byte-coded guest CPU
        .data
gregs:  .space 64               # 16 guest registers
gmem:   .space 4096             # 1024 guest memory words
        # guest opcodes: 0 halt, 1 ldi, 2 mov, 3 add, 4 sub, 5 jnz,
        #                6 out, 7 addi, 8 mul, 9 ld, 10 st
gprog:  .byte 1, 1, 0           #  0: ldi  r1, 0      s = 0
        .byte 1, 2, 200         #  3: ldi  r2, 200    i = 200
        .byte 1, 4, 0           #  6: ldi  r4, 0      addr = 0
        .byte 2, 3, 2           #  9: mov  r3, r2
        .byte 8, 3, 3           # 12: mul  r3, r3     r3 = i * i
        .byte 3, 1, 3           # 15: add  r1, r3     s += i * i
        .byte 7, 4, 1           # 18: addi r4, 1      addr++
        .byte 10, 4, 1          # 21: st   [r4], r1
        .byte 9, 5, 4           # 24: ld   r5, [r4]
        .byte 3, 1, 5           # 27: add  r1, r5     s += mem
        .byte 7, 2, 255         # 30: addi r2, -1     i--
        .byte 5, 2, 9           # 33: jnz  r2, #9
        .byte 6, 1, 0           # 36: out  r1
        .byte 0, 0, 0           # 39: halt
        .align 2
jtab:   .word op_halt, op_ldi, op_mov, op_add, op_sub, op_jnz
        .word op_out, op_addi, op_mul, op_ld, op_st
        .text
main:   move $s7, $a0           # outer repetitions
        li   $s6, 0             # checksum

outer:  li   $s5, 0             # guest run 0..15

run:    la   $t0, gregs         # clear guest registers
        li   $t1, 0
rclr:   sw   $zero, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        li   $t2, 16
        blt  $t1, $t2, rclr
        # seed guest r6 with the run number (varies the data a bit)
        la   $t0, gregs
        sw   $s5, 24($t0)
        li   $s0, 0             # guest pc

gloop:  la   $t1, gprog         # fetch
        add  $t1, $t1, $s0
        lbu  $t2, 0($t1)        # opcode
        lbu  $t3, 1($t1)        # operand a
        lbu  $t4, 2($t1)        # operand b
        li   $t5, 11
        bgeu $t2, $t5, rundone  # defensive: bad opcode halts
        sll  $t6, $t2, 2        # dispatch through the jump table
        la   $t7, jtab
        add  $t7, $t7, $t6
        lw   $t8, 0($t7)
        jr   $t8

op_halt:
        j    rundone
op_ldi: sll  $t6, $t3, 2        # regs[a] = b
        la   $t7, gregs
        add  $t7, $t7, $t6
        sw   $t4, 0($t7)
        j    gnext
op_mov: sll  $t6, $t4, 2        # regs[a] = regs[b]
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t9, 0($t7)
        sll  $t6, $t3, 2
        la   $t7, gregs
        add  $t7, $t7, $t6
        sw   $t9, 0($t7)
        j    gnext
op_add: sll  $t6, $t4, 2        # regs[a] += regs[b]
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t9, 0($t7)
        sll  $t6, $t3, 2
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t0, 0($t7)
        add  $t0, $t0, $t9
        sw   $t0, 0($t7)
        j    gnext
op_sub: sll  $t6, $t4, 2        # regs[a] -= regs[b]
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t9, 0($t7)
        sll  $t6, $t3, 2
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t0, 0($t7)
        sub  $t0, $t0, $t9
        sw   $t0, 0($t7)
        j    gnext
op_jnz: sll  $t6, $t3, 2        # if (regs[a]) pc = b
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t9, 0($t7)
        beqz $t9, gnext
        move $s0, $t4
        j    gloop
op_out: sll  $t6, $t3, 2        # checksum += regs[a]
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t9, 0($t7)
        add  $s6, $s6, $t9
        j    gnext
op_addi:
        sll  $t4, $t4, 24       # regs[a] += signext8(b)
        sra  $t4, $t4, 24
        sll  $t6, $t3, 2
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t0, 0($t7)
        add  $t0, $t0, $t4
        sw   $t0, 0($t7)
        j    gnext
op_mul: sll  $t6, $t4, 2        # regs[a] *= regs[b]
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t9, 0($t7)
        sll  $t6, $t3, 2
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t0, 0($t7)
        mul  $t0, $t0, $t9
        sw   $t0, 0($t7)
        j    gnext
op_ld:  sll  $t6, $t4, 2        # regs[a] = gmem[regs[b] & 1023]
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t9, 0($t7)
        andi $t9, $t9, 1023
        sll  $t9, $t9, 2
        la   $t7, gmem
        add  $t7, $t7, $t9
        lw   $t9, 0($t7)
        sll  $t6, $t3, 2
        la   $t7, gregs
        add  $t7, $t7, $t6
        sw   $t9, 0($t7)
        j    gnext
op_st:  sll  $t6, $t4, 2        # gmem[regs[a] & 1023] = regs[b]
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t9, 0($t7)
        sll  $t6, $t3, 2
        la   $t7, gregs
        add  $t7, $t7, $t6
        lw   $t0, 0($t7)
        andi $t0, $t0, 1023
        sll  $t0, $t0, 2
        la   $t7, gmem
        add  $t7, $t7, $t0
        sw   $t9, 0($t7)
        j    gnext

gnext:  addi $s0, $s0, 3
        j    gloop

rundone:
        addi $s5, $s5, 1
        li   $t0, 16
        blt  $s5, $t0, run
        subi $s7, $s7, 1
        bnez $s7, outer

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
