#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * The paper's Figure 5 microkernel, in an integer variant: every row
 * of a 200x100 matrix is scaled by the largest absolute value in the
 * row. The compiler-visible induction variables (i, j, row and
 * element pointers) produce the many overlapping stride patterns the
 * paper dissects in Figure 6(a); the explicit slt sequences produce
 * its "almost constant" patterns.
 *
 * $a0 = number of normalization passes over the matrix.
 */
const char*
normAssembly()
{
    return R"(
# norm: Figure 5 row-normalization kernel (integer variant)
        .data
matrix: .space 80000            # 200 x 100 words
        .text
main:   move $s7, $a0           # outer repetitions

        # ---- initialize matrix[i][j] = (31*i + 17*j) % 1000 - 500
        la   $t0, matrix
        li   $t1, 0             # i
ini_i:  li   $t2, 0             # j
ini_j:  li   $at, 31
        mul  $t3, $t1, $at
        li   $at, 17
        mul  $t4, $t2, $at
        add  $t3, $t3, $t4
        li   $t5, 1000
        rem  $t3, $t3, $t5
        subi $t3, $t3, 500
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        li   $t6, 100
        blt  $t2, $t6, ini_j
        addi $t1, $t1, 1
        li   $t6, 200
        blt  $t1, $t6, ini_i

        # ---- void norm(int matrix[200][100])
outer:  la   $s0, matrix        # &matrix[i]
        li   $s1, 0             # i
row:    lw   $s2, 396($s0)      # max = matrix[i][99]
        sra  $t1, $s2, 31       # max = |max|
        xor  $s2, $s2, $t1
        sub  $s2, $s2, $t1
        li   $s3, 0             # j
        move $t9, $s0           # &matrix[i][j]
find:   lw   $t0, 0($t9)
        sra  $t1, $t0, 31       # t2 = |matrix[i][j]|
        xor  $t2, $t0, $t1
        sub  $t2, $t2, $t1
        slt  $t3, $s2, $t2      # max < |m[i][j]| ? (near-constant)
        beqz $t3, noup
        move $s2, $t2
noup:   addi $t9, $t9, 4
        addi $s3, $s3, 1
        li   $t4, 99
        blt  $s3, $t4, find
        bnez $s2, divok         # if (max == 0) max = 1
        li   $s2, 1
divok:  li   $s3, 0             # j
        move $t9, $s0
        # scale loop unrolled x4 (cf. the paper's -funroll_loops)
scale:  lw   $t0, 0($t9)        # m[i][j] = (m[i][j] * 64) / max
        sll  $t1, $t0, 6
        div  $t1, $t1, $s2
        sw   $t1, 0($t9)
        lw   $t0, 4($t9)
        sll  $t1, $t0, 6
        div  $t1, $t1, $s2
        sw   $t1, 4($t9)
        lw   $t0, 8($t9)
        sll  $t1, $t0, 6
        div  $t1, $t1, $s2
        sw   $t1, 8($t9)
        lw   $t0, 12($t9)
        sll  $t1, $t0, 6
        div  $t1, $t1, $s2
        sw   $t1, 12($t9)
        addi $t9, $t9, 16
        addi $s3, $s3, 4
        li   $t4, 100
        blt  $s3, $t4, scale
        addi $s0, $s0, 400
        addi $s1, $s1, 1
        li   $t4, 200
        blt  $s1, $t4, row
        subi $s7, $s7, 1
        bnez $s7, outer

        # ---- checksum: sum of all elements
        la   $t0, matrix
        li   $t1, 0             # index
        li   $t2, 0             # sum
cksum:  lw   $t3, 0($t0)
        add  $t2, $t2, $t3
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        li   $t4, 20000
        blt  $t1, $t4, cksum
        move $a0, $t2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
