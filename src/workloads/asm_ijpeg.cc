#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * Blocked integer DCT kernel (the "ijpeg" analogue). A synthetic
 * 128x64 image is carved into 8x8 blocks; each block goes through a
 * separable integer transform (two 8x8 matrix products against a
 * small coefficient table) and quantization. Value population: dense
 * stride families (pixel addresses, block offsets, accumulator
 * updates), loop counters at three nesting depths, quantized
 * coefficients.
 *
 * $a0 = number of passes over the image.
 */
const char*
ijpegAssembly()
{
    return R"(
# ijpeg: 8x8 blocked separable integer transform + quantization
        .data
image:  .space 8192             # 128 x 64 bytes
coef:   .space 256              # 8x8 transform coefficients (words)
quant:  .space 256              # 64 quantization divisors (words)
blk:    .space 256              # current block (words)
tmp:    .space 256              # row-transformed block (words)
        .text
main:   move $s7, $a0           # passes
        li   $s6, 0             # checksum

        # ---- image init: pixel(x, y) = ((x ^ y) + 3x + 5y) & 255
        la   $t0, image
        li   $t1, 0             # y
imy:    li   $t2, 0             # x
imx:    xor  $t3, $t1, $t2
        li   $at, 3
        mul  $t4, $t2, $at
        add  $t3, $t3, $t4
        li   $at, 5
        mul  $t4, $t1, $at
        add  $t3, $t3, $t4
        sb   $t3, 0($t0)
        addi $t0, $t0, 1
        addi $t2, $t2, 1
        li   $t5, 128
        blt  $t2, $t5, imx
        addi $t1, $t1, 1
        li   $t5, 64
        blt  $t1, $t5, imy

        # ---- coef[k][n] = ((7 k n + 3 k + n) % 17) - 8
        la   $t0, coef
        li   $t1, 0             # k
cfk:    li   $t2, 0             # n
cfn:    mul  $t3, $t1, $t2
        li   $at, 7
        mul  $t3, $t3, $at
        li   $at, 3
        mul  $t4, $t1, $at
        add  $t3, $t3, $t4
        add  $t3, $t3, $t2
        li   $t5, 17
        rem  $t3, $t3, $t5
        subi $t3, $t3, 8
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        li   $t5, 8
        blt  $t2, $t5, cfn
        addi $t1, $t1, 1
        blt  $t1, $t5, cfk

        # ---- quant[i] = 1 + i / 4
        la   $t0, quant
        li   $t1, 0
qt:     srl  $t2, $t1, 2
        addi $t2, $t2, 1
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        li   $t3, 64
        blt  $t1, $t3, qt

        # ---- per pass: every 8x8 block
pass:   li   $s0, 0             # by
bly:    li   $s1, 0             # bx
blx:    # load block: blk[r][c] = image[(8 by + r) * 128 + 8 bx + c]
        li   $t1, 0             # r
ldr:    sll  $t2, $s0, 3
        add  $t2, $t2, $t1      # 8 by + r
        sll  $t2, $t2, 7        # * 128
        sll  $t3, $s1, 3
        add  $t2, $t2, $t3      # + 8 bx
        la   $t4, image
        add  $t4, $t4, $t2
        sll  $t5, $t1, 5        # r * 8 words
        la   $t6, blk
        add  $t6, $t6, $t5
        li   $t0, 0             # c
ldc:    lbu  $t7, 0($t4)
        sw   $t7, 0($t6)
        addi $t4, $t4, 1
        addi $t6, $t6, 4
        addi $t0, $t0, 1
        li   $t8, 8
        blt  $t0, $t8, ldc
        addi $t1, $t1, 1
        blt  $t1, $t8, ldr

        # row transform: tmp[k][c] = sum_r coef[k][r] * blk[r][c]
        li   $t1, 0             # k
rtk:    li   $t0, 0             # c
rtc:    li   $t9, 0             # acc
        li   $t2, 0             # r
rtr:    sll  $t3, $t1, 5        # coef[k][r]
        sll  $t4, $t2, 2
        add  $t3, $t3, $t4
        la   $t5, coef
        add  $t5, $t5, $t3
        lw   $t6, 0($t5)
        sll  $t3, $t2, 5        # blk[r][c]
        sll  $t4, $t0, 2
        add  $t3, $t3, $t4
        la   $t5, blk
        add  $t5, $t5, $t3
        lw   $t7, 0($t5)
        mul  $t6, $t6, $t7
        add  $t9, $t9, $t6
        addi $t2, $t2, 1
        li   $t8, 8
        blt  $t2, $t8, rtr
        sll  $t3, $t1, 5        # tmp[k][c] = acc
        sll  $t4, $t0, 2
        add  $t3, $t3, $t4
        la   $t5, tmp
        add  $t5, $t5, $t3
        sw   $t9, 0($t5)
        addi $t0, $t0, 1
        blt  $t0, $t8, rtc
        addi $t1, $t1, 1
        blt  $t1, $t8, rtk

        # column transform + quantize:
        # q = (sum_c tmp[k][c] * coef[l][c]) >> 4 / quant[8k + l]
        li   $t1, 0             # k
ctk:    li   $t0, 0             # l
ctl:    li   $t9, 0             # acc
        li   $t2, 0             # c
ctc:    sll  $t3, $t1, 5        # tmp[k][c]
        sll  $t4, $t2, 2
        add  $t3, $t3, $t4
        la   $t5, tmp
        add  $t5, $t5, $t3
        lw   $t6, 0($t5)
        sll  $t3, $t0, 5        # coef[l][c]
        sll  $t4, $t2, 2
        add  $t3, $t3, $t4
        la   $t5, coef
        add  $t5, $t5, $t3
        lw   $t7, 0($t5)
        mul  $t6, $t6, $t7
        add  $t9, $t9, $t6
        addi $t2, $t2, 1
        li   $t8, 8
        blt  $t2, $t8, ctc
        sra  $t9, $t9, 4
        sll  $t3, $t1, 3        # quant[8 k + l]
        add  $t3, $t3, $t0
        sll  $t3, $t3, 2
        la   $t5, quant
        add  $t5, $t5, $t3
        lw   $t6, 0($t5)
        div  $t9, $t9, $t6
        add  $s6, $s6, $t9      # accumulate quantized coefficient
        addi $t0, $t0, 1
        blt  $t0, $t8, ctl
        addi $t1, $t1, 1
        blt  $t1, $t8, ctk

        addi $s1, $s1, 1
        li   $t0, 16
        blt  $s1, $t0, blx
        addi $s0, $s0, 1
        li   $t0, 8
        blt  $s0, $t0, bly
        subi $s7, $s7, 1
        bnez $s7, pass

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
