#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * Board-evaluation kernel (the "go" analogue). Pseudo-random stones
 * are dropped on a bordered 19x19 board; after every ten moves the
 * whole board is evaluated: influence for empty points, liberties
 * for stones, with branchy per-point heuristics. Value population:
 * LCG move coordinates (hard), neighbor-offset address arithmetic
 * (strides), per-point scan counters, near-constant comparison
 * results.
 *
 * $a0 = number of games.
 */
const char*
goAssembly()
{
    return R"(
# go: stone placement + whole-board evaluation
        .data
board:  .space 441              # 21 x 21, border sentinel = 3
        .text
main:   move $s7, $a0           # games
        li   $s6, 0             # checksum
        li   $s5, 1             # game number

game:   # ---- board init: all border, then clear interior
        la   $t0, board
        li   $t1, 0
bset:   li   $t2, 3
        sb   $t2, 0($t0)
        addi $t0, $t0, 1
        addi $t1, $t1, 1
        li   $t3, 441
        blt  $t1, $t3, bset
        li   $t1, 1             # y
yclr:   li   $t2, 1             # x
        li   $at, 21
        mul  $t4, $t1, $at
xclr:   add  $t5, $t4, $t2
        la   $t0, board
        add  $t5, $t0, $t5
        sb   $zero, 0($t5)
        addi $t2, $t2, 1
        li   $t3, 20
        blt  $t2, $t3, xclr
        addi $t1, $t1, 1
        blt  $t1, $t3, yclr

        li   $t9, 0x9E3779B1    # per-game RNG seed
        mul  $s0, $s5, $t9      # s0 = rng state
        li   $s1, 0             # move number

move:   li   $t0, 1103515245   # x = x * a + c
        mul  $s0, $s0, $t0
        addi $s0, $s0, 12345
        srl  $t1, $s0, 8
        li   $t2, 361
        rem  $t1, $t1, $t2      # point 0..360
        li   $t3, 19
        div  $t4, $t1, $t3      # py
        rem  $t5, $t1, $t3      # px
        addi $t4, $t4, 1
        addi $t5, $t5, 1
        li   $at, 21
        mul  $t6, $t4, $at
        add  $t6, $t6, $t5
        la   $t7, board
        add  $t6, $t7, $t6
        lbu  $t8, 0($t6)        # occupied?
        bnez $t8, skip
        andi $t0, $s1, 1        # stone color 1/2
        addi $t0, $t0, 1
        sb   $t0, 0($t6)
skip:   addi $s1, $s1, 1
        li   $t0, 10
        rem  $t1, $s1, $t0      # evaluate after every 10th move
        bnez $t1, nmove

        # ---- evaluate the whole board
        li   $s2, 1             # y
evy:    li   $s3, 1             # x
evx:    li   $at, 21
        mul  $t0, $s2, $at
        add  $t0, $t0, $s3      # idx
        la   $t1, board
        add  $t1, $t1, $t0      # &board[idx]
        lbu  $t2, 0($t1)        # c = board[idx]
        lbu  $t3, -21($t1)      # north
        lbu  $t4, 21($t1)       # south
        lbu  $t5, -1($t1)       # west
        lbu  $t6, 1($t1)        # east
        bnez $t2, stone
        # empty: influence = #(neighbors==1) - #(neighbors==2)
        li   $t7, 0
        li   $t8, 1
        xor  $t9, $t3, $t8      # n == 1 ?
        sltiu $t9, $t9, 1
        add  $t7, $t7, $t9
        xor  $t9, $t4, $t8
        sltiu $t9, $t9, 1
        add  $t7, $t7, $t9
        xor  $t9, $t5, $t8
        sltiu $t9, $t9, 1
        add  $t7, $t7, $t9
        xor  $t9, $t6, $t8
        sltiu $t9, $t9, 1
        add  $t7, $t7, $t9
        li   $t8, 2
        xor  $t9, $t3, $t8
        sltiu $t9, $t9, 1
        sub  $t7, $t7, $t9
        xor  $t9, $t4, $t8
        sltiu $t9, $t9, 1
        sub  $t7, $t7, $t9
        xor  $t9, $t5, $t8
        sltiu $t9, $t9, 1
        sub  $t7, $t7, $t9
        xor  $t9, $t6, $t8
        sltiu $t9, $t9, 1
        sub  $t7, $t7, $t9
        add  $s6, $s6, $t7
        j    nextp
stone:  # stone: liberties = #(neighbors == 0)
        li   $t7, 0
        sltiu $t9, $t3, 1
        add  $t7, $t7, $t9
        sltiu $t9, $t4, 1
        add  $t7, $t7, $t9
        sltiu $t9, $t5, 1
        add  $t7, $t7, $t9
        sltiu $t9, $t6, 1
        add  $t7, $t7, $t9
        bnez $t7, alive
        subi $s6, $s6, 5        # captured-looking stone
        j    nextp
alive:  mul  $t8, $t7, $t2      # color-weighted liberties
        add  $s6, $s6, $t8
nextp:  addi $s3, $s3, 1
        li   $t0, 20
        blt  $s3, $t0, evx
        addi $s2, $s2, 1
        blt  $s2, $t0, evy

nmove:  li   $t0, 120
        blt  $s1, $t0, move

        addi $s5, $s5, 1
        subi $s7, $s7, 1
        bnez $s7, game

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
