#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * Cons-cell list kernel (the "li" analogue). A bump-allocated heap
 * of (car, cdr) cells is repeatedly used to build, sum (recursively),
 * map, reverse and scan lists. Value population: cell addresses from
 * the bump allocator (strides), pointer chasing through cdr fields
 * (context patterns), recursion return addresses and stack pointers,
 * list payloads.
 *
 * $a0 = number of outer iterations.
 */
const char*
liAssembly()
{
    return R"(
# li: cons-cell list interpreter primitives
        .equ NELEM, 400
        .data
heap:   .space 65536            # 8192 cells of (car, cdr)
        .text
main:   move $s7, $a0           # outer iterations
        li   $s6, 0             # checksum
        li   $s5, 1             # iteration number

iter:   li   $s4, 0             # rep 0..4
rep:    la   $s3, heap          # reset bump pointer (hp = $s3)

        # ---- build: list of NELEM values v = 7 iter + rep + 3 i
        li   $t8, 0             # head = nil
        li   $t7, 0             # i
bld:    li   $at, 7
        mul  $t0, $s5, $at
        add  $t0, $t0, $s4
        li   $at, 3
        mul  $t1, $t7, $at
        add  $t0, $t0, $t1      # value
        sw   $t0, 0($s3)        # car = value
        sw   $t8, 4($s3)        # cdr = previous head
        move $t8, $s3
        addi $s3, $s3, 8
        addi $t7, $t7, 1
        li   $t9, NELEM
        blt  $t7, $t9, bld
        move $s0, $t8           # l1

        # ---- recursive sum of l1
        move $a1, $s0
        jal  sumlist
        add  $s6, $s6, $v0

        # ---- map: l2 = (+ rep) over l1 (iterative, allocates)
        li   $t8, 0             # new head
        move $t6, $s0           # cursor
map:    beqz $t6, mapdone
        lw   $t0, 0($t6)        # car
        add  $t0, $t0, $s4
        sw   $t0, 0($s3)
        sw   $t8, 4($s3)
        move $t8, $s3
        addi $s3, $s3, 8
        lw   $t6, 4($t6)        # cursor = cdr
        j    map
mapdone:
        move $s1, $t8           # l2

        # ---- recursive sum of l2
        move $a1, $s1
        jal  sumlist
        add  $s6, $s6, $v0

        # ---- reverse l2 in place
        li   $t8, 0             # prev
        move $t6, $s1
rev:    beqz $t6, revdone
        lw   $t0, 4($t6)        # next
        sw   $t8, 4($t6)
        move $t8, $t6
        move $t6, $t0
        j    rev
revdone:
        move $s2, $t8           # l3

        # ---- count elements divisible by 5 in l3
        li   $t7, 0             # count
        move $t6, $s2
cnt:    beqz $t6, cntdone
        lw   $t0, 0($t6)
        li   $t1, 5
        rem  $t2, $t0, $t1
        bnez $t2, cskip
        addi $t7, $t7, 1
cskip:  lw   $t6, 4($t6)
        j    cnt
cntdone:
        add  $s6, $s6, $t7

        addi $s4, $s4, 1
        li   $t9, 5
        blt  $s4, $t9, rep
        addi $s5, $s5, 1
        subi $s7, $s7, 1
        bnez $s7, iter

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall

# ---- int sumlist(list $a1): recursive sum of car fields
sumlist:
        bnez $a1, sumrec
        li   $v0, 0
        jr   $ra
sumrec: subi $sp, $sp, 8
        sw   $ra, 0($sp)
        lw   $t0, 0($a1)        # car
        sw   $t0, 4($sp)
        lw   $a1, 4($a1)        # cdr
        jal  sumlist
        lw   $t0, 4($sp)
        add  $v0, $v0, $t0
        lw   $ra, 0($sp)
        addi $sp, $sp, 8
        jr   $ra
)";
}

} // namespace vpred::workloads
