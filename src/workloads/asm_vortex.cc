#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * Hashed object-store kernel (the "vortex" analogue). Each pass
 * bulk-inserts 4096 keyed records into 512 chained buckets, answers
 * 4096 lookups that walk the chains and mutate the found records,
 * then checksums the store with a sequential scan. Value population:
 * record addresses from the bump allocator (pure strides), chain
 * pointers (context), keys (hard), bucket indices, scan loads.
 *
 * $a0 = number of passes.
 */
const char*
vortexAssembly()
{
    return R"(
# vortex: chained-bucket object store
        .data
recs:   .space 65536            # 4096 records: key, val, next, pad
buckets: .space 2048            # 512 chain heads
        .text
main:   move $s7, $a0           # passes
        li   $s6, 0             # checksum
        li   $s5, 1             # pass number

pass:   la   $t0, buckets       # clear buckets
        li   $t1, 0
bclr:   sw   $zero, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        li   $t2, 512
        blt  $t1, $t2, bclr

        # ---- bulk insert 4096 records
        li   $t9, 0x9E3779B1
        mul  $s2, $s5, $t9      # x = per-pass seed
        li   $s0, 0             # record index
ins:    li   $t0, 1103515245
        mul  $s2, $s2, $t0
        addi $s2, $s2, 12345
        srl  $t1, $s2, 8
        andi $t1, $t1, 8191     # key
        sll  $t2, $s0, 4
        la   $t3, recs
        add  $t3, $t3, $t2      # record address (bump allocation)
        sw   $t1, 0($t3)        # rec.key
        xor  $t4, $t1, $s0
        sw   $t4, 4($t3)        # rec.val = key ^ i
        andi $t5, $t1, 511      # bucket
        sll  $t5, $t5, 2
        la   $t6, buckets
        add  $t6, $t6, $t5
        lw   $t7, 0($t6)        # rec.next = bucket head
        sw   $t7, 8($t3)
        sw   $t3, 0($t6)        # bucket head = rec
        addi $s0, $s0, 1
        li   $t8, 4096
        blt  $s0, $t8, ins

        # ---- 4096 lookups with chain walks
        li   $t9, 0x85EBCA6B
        mul  $s3, $s5, $t9      # y = query seed
        li   $s0, 0
qry:    li   $t0, 1103515245
        mul  $s3, $s3, $t0
        addi $s3, $s3, 12345
        srl  $t1, $s3, 8
        andi $t1, $t1, 8191     # probe key
        andi $t2, $t1, 511
        sll  $t2, $t2, 2
        la   $t3, buckets
        add  $t3, $t3, $t2
        lw   $t4, 0($t3)        # chain cursor
walk:   beqz $t4, qmiss
        lw   $t5, 0($t4)        # rec.key
        beq  $t5, $t1, qhit
        lw   $t4, 8($t4)        # cursor = rec.next
        j    walk
qhit:   lw   $t6, 4($t4)        # checksum += rec.val++
        add  $s6, $s6, $t6
        addi $t6, $t6, 1
        sw   $t6, 4($t4)
        j    qnext
qmiss:  addi $s6, $s6, 1
qnext:  addi $s0, $s0, 1
        li   $t8, 4096
        blt  $s0, $t8, qry

        # ---- sequential scan checksum (unrolled x4)
        la   $t0, recs
        li   $t1, 0
scan:   lw   $t2, 4($t0)
        add  $s6, $s6, $t2
        lw   $t2, 20($t0)
        add  $s6, $s6, $t2
        lw   $t2, 36($t0)
        add  $s6, $s6, $t2
        lw   $t2, 52($t0)
        add  $s6, $s6, $t2
        addi $t0, $t0, 64
        addi $t1, $t1, 4
        li   $t3, 4096
        blt  $t1, $t3, scan

        addi $s5, $s5, 1
        subi $s7, $s7, 1
        bnez $s7, pass

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
