#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * Network-flow pricing kernel (an "mcf"-flavoured extra workload,
 * not part of the paper's suite — used by the robustness bench).
 * A random bipartite arc array is repeatedly priced: reduced costs
 * from node potentials, cheapest-arc selection per node, potential
 * updates along the winner. Value population: arc-record addresses
 * (16-byte strides), node indices (context), costs and potentials
 * (slow-moving accumulators), comparison flags.
 *
 * $a0 = number of pricing rounds.
 */
const char*
mcfAssembly()
{
    return R"(
# mcf: arc pricing over a synthetic network
        .equ NARCS, 3000
        .equ NNODES, 256
        .data
arcs:   .space 48000            # NARCS records: from, to, cost (3 words)
pot:    .space 1024             # NNODES node potentials
best:   .space 1024             # per-node best reduced cost this round
        .text
main:   move $s7, $a0           # rounds
        li   $s6, 0             # checksum

        # ---- build arcs: from/to via LCG, cost = pattern
        li   $s2, 424242
        li   $s0, 0             # arc index
abld:   li   $t0, 1103515245
        mul  $s2, $s2, $t0
        addi $s2, $s2, 12345
        srl  $t1, $s2, 9
        andi $t1, $t1, 255      # from
        srl  $t2, $s2, 17
        andi $t2, $t2, 255      # to
        li   $at, 13
        mul  $t3, $s0, $at
        li   $t4, 997
        rem  $t3, $t3, $t4
        addi $t3, $t3, 3        # cost
        li   $at, 12
        mul  $t5, $s0, $at
        la   $t6, arcs
        add  $t6, $t6, $t5
        sw   $t1, 0($t6)
        sw   $t2, 4($t6)
        sw   $t3, 8($t6)
        addi $s0, $s0, 1
        li   $t7, NARCS
        blt  $s0, $t7, abld

        # ---- initialize potentials
        li   $t0, 0
pinit:  sll  $t1, $t0, 2
        la   $t2, pot
        add  $t2, $t2, $t1
        li   $at, 7
        mul  $t3, $t0, $at
        sw   $t3, 0($t2)
        addi $t0, $t0, 1
        li   $t4, NNODES
        blt  $t0, $t4, pinit

round:  # reset per-node best to a large value
        li   $t0, 0
binit:  sll  $t1, $t0, 2
        la   $t2, best
        add  $t2, $t2, $t1
        li   $t3, 0x7FFFFFFF
        sw   $t3, 0($t2)
        addi $t0, $t0, 1
        li   $t4, NNODES
        blt  $t0, $t4, binit

        # price every arc: rc = cost + pot[from] - pot[to]
        li   $s0, 0             # arc index
price:  li   $at, 12
        mul  $t0, $s0, $at
        la   $t1, arcs
        add  $t1, $t1, $t0
        lw   $t2, 0($t1)        # from
        lw   $t3, 4($t1)        # to
        lw   $t4, 8($t1)        # cost
        sll  $t5, $t2, 2
        la   $t6, pot
        add  $t6, $t6, $t5
        lw   $t7, 0($t6)        # pot[from]
        sll  $t5, $t3, 2
        la   $t6, pot
        add  $t6, $t6, $t5
        lw   $t8, 0($t6)        # pot[to]
        add  $t9, $t4, $t7
        sub  $t9, $t9, $t8      # reduced cost
        sll  $t5, $t3, 2        # best[to] = min(best[to], rc)
        la   $t6, best
        add  $t6, $t6, $t5
        lw   $t0, 0($t6)
        slt  $t1, $t9, $t0      # near-constant comparison flag
        beqz $t1, nopiv
        sw   $t9, 0($t6)
nopiv:  addi $s0, $s0, 1
        li   $t2, NARCS
        blt  $s0, $t2, price

        # update potentials from the round's best reduced costs
        li   $t0, 0
pupd:   sll  $t1, $t0, 2
        la   $t2, best
        add  $t2, $t2, $t1
        lw   $t3, 0($t2)
        li   $t4, 0x7FFFFFFF
        beq  $t3, $t4, pskip
        sra  $t5, $t3, 3        # damped step
        la   $t6, pot
        add  $t6, $t6, $t1
        lw   $t7, 0($t6)
        sub  $t7, $t7, $t5
        sw   $t7, 0($t6)
        add  $s6, $s6, $t3
pskip:  addi $t0, $t0, 1
        li   $t8, NNODES
        blt  $t0, $t8, pupd

        subi $s7, $s7, 1
        bnez $s7, round

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
