#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * LZ77 sliding-window matcher (a "gzip"-flavoured extra workload,
 * not part of the paper's suite — used by the robustness bench).
 * A 16 KiB buffer is scanned with a 3-byte hash head table and
 * greedy match extension. Value population: hash-chain heads
 * (context), match-length counters (small strides), window offsets,
 * literal bytes.
 *
 * $a0 = number of passes.
 */
const char*
gzipAssembly()
{
    return R"(
# gzip: LZ77 with a 4096-entry 3-byte-hash head table
        .equ BUFSZ, 16384
        .data
buf:    .space 16384
heads:  .space 16384            # 4096 words: last position + 1, 0 = none
        .text
main:   move $s7, $a0           # passes
        li   $s6, 0             # checksum

        # ---- synthesize input: LCG bytes with motif overlay
        la   $s0, buf
        li   $s1, 0
        li   $s2, 777777
gen:    li   $t0, 1103515245
        mul  $s2, $s2, $t0
        addi $s2, $s2, 12345
        srl  $t1, $s2, 18
        andi $t1, $t1, 7
        addi $t1, $t1, 97       # 'a'..'h'
        andi $t2, $s1, 127
        li   $t3, 48
        bge  $t2, $t3, raw      # 48 of every 128 bytes: repeated motif
        li   $t4, 16
        rem  $t5, $t2, $t4
        addi $t1, $t5, 103      # 'g'..'v' cycle
raw:    add  $t6, $s0, $s1
        sb   $t1, 0($t6)
        addi $s1, $s1, 1
        li   $t7, BUFSZ
        blt  $s1, $t7, gen

pass:   la   $t0, heads         # clear head table
        li   $t1, 0
hclr:   sw   $zero, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        li   $t2, 4096
        blt  $t1, $t2, hclr

        li   $s0, 0             # pos
        li   $s3, 0             # literals emitted
        li   $s4, 0             # matches emitted
scan:   li   $t9, BUFSZ
        subi $t9, $t9, 4        # stop margin
        bge  $s0, $t9, passend

        # h = hash of 3 bytes at pos
        la   $t0, buf
        add  $t0, $t0, $s0
        lbu  $t1, 0($t0)
        lbu  $t2, 1($t0)
        lbu  $t3, 2($t0)
        sll  $t4, $t1, 10
        sll  $t5, $t2, 5
        add  $t4, $t4, $t5
        add  $t4, $t4, $t3
        li   $t5, 0x9E3779B1
        mul  $t4, $t4, $t5
        srl  $t4, $t4, 20
        andi $t4, $t4, 4095     # h

        sll  $t5, $t4, 2        # candidate = heads[h] - 1
        la   $t6, heads
        add  $t6, $t6, $t5
        lw   $t7, 0($t6)
        addi $t8, $s0, 1        # heads[h] = pos + 1
        sw   $t8, 0($t6)
        beqz $t7, literal
        subi $t7, $t7, 1        # candidate pos

        # extend match: buf[cand + len] == buf[pos + len]
        li   $t8, 0             # len
        la   $t0, buf
mext:   add  $t1, $s0, $t8
        li   $t9, BUFSZ
        bge  $t1, $t9, mdone
        add  $t2, $t0, $t1
        lbu  $t3, 0($t2)
        add  $t1, $t7, $t8
        add  $t2, $t0, $t1
        lbu  $t4, 0($t2)
        bne  $t3, $t4, mdone
        addi $t8, $t8, 1
        li   $t9, 64            # cap match length
        blt  $t8, $t9, mext
mdone:  li   $t9, 3
        blt  $t8, $t9, literal

        # emit match (distance, length)
        sub  $t1, $s0, $t7      # distance
        add  $s6, $s6, $t1
        add  $s6, $s6, $t8
        addi $s4, $s4, 1
        add  $s0, $s0, $t8      # pos += len
        j    scan

literal:
        la   $t0, buf
        add  $t0, $t0, $s0
        lbu  $t1, 0($t0)
        add  $s6, $s6, $t1
        addi $s3, $s3, 1
        addi $s0, $s0, 1
        j    scan

passend:
        add  $s6, $s6, $s3
        add  $s6, $s6, $s4
        subi $s7, $s7, 1
        bnez $s7, pass

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
