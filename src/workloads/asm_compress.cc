#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * LZW-style compressor (the "compress" analogue). A 32 KiB input
 * buffer is synthesized once from an LCG with a periodic motif
 * overlay (so real dictionary matches occur), then compressed with a
 * hash-table dictionary. Value population: byte loads, rolling
 * dictionary codes (context patterns), hash probe indices, table
 * clear strides.
 *
 * $a0 = number of compression passes.
 */
const char*
compressAssembly()
{
    return R"(
# compress: LZW with a 4096-entry open-addressed dictionary
        .equ INSIZE, 32768
        .data
inbuf:  .space 32768
hkey:   .space 16384            # 4096 words: (w<<8)|c key, 0 = empty
hval:   .space 16384            # 4096 words: dictionary code
motif:  .asciiz "abracadabrab"
        .text
main:   move $s5, $a0           # passes
        li   $s6, 0             # checksum
        li   $s7, 0             # emitted code count

        # ---- synthesize input: skewed LCG bytes + motif overlay
        la   $s0, inbuf
        li   $s1, 0             # i
        li   $s2, 12345         # x
gen:    li   $t0, 1103515245
        mul  $s2, $s2, $t0
        addi $s2, $s2, 12345
        srl  $t1, $s2, 16
        andi $t1, $t1, 7
        addi $t1, $t1, 97       # 'a' + r
        andi $t2, $s1, 63
        li   $t3, 24
        bge  $t2, $t3, nomot    # first 24 of each 64 = motif
        li   $t4, 12
        rem  $t5, $t2, $t4
        la   $t6, motif
        add  $t6, $t6, $t5
        lbu  $t1, 0($t6)
nomot:  add  $t7, $s0, $s1
        sb   $t1, 0($t7)
        addi $s1, $s1, 1
        li   $t8, INSIZE
        blt  $s1, $t8, gen

        # ---- one LZW pass per iteration
pass:   la   $t0, hkey          # clear dictionary keys (unrolled x4)
        li   $t1, 0
clr:    sw   $zero, 0($t0)
        sw   $zero, 4($t0)
        sw   $zero, 8($t0)
        sw   $zero, 12($t0)
        addi $t0, $t0, 16
        addi $t1, $t1, 4
        li   $t2, 4096
        blt  $t1, $t2, clr
        li   $s3, 256           # next_code
        li   $s4, 0             # entries in dictionary
        la   $s0, inbuf
        lbu  $s1, 0($s0)        # w = code of first byte
        addi $s0, $s0, 1
        li   $s2, 1             # bytes consumed
byte:   lbu  $t0, 0($s0)        # c
        sll  $t1, $s1, 8
        or   $t1, $t1, $t0      # k = (w << 8) | c
        li   $t2, 0x9E3779B1    # Fibonacci hash of k
        mul  $t3, $t1, $t2
        srl  $t3, $t3, 20
        andi $t3, $t3, 4095
probe:  sll  $t4, $t3, 2
        la   $t5, hkey
        add  $t5, $t5, $t4
        lw   $t6, 0($t5)
        beq  $t6, $t1, hit
        beqz $t6, miss
        addi $t3, $t3, 1
        andi $t3, $t3, 4095
        j    probe
hit:    la   $t7, hval          # w = dict[k]
        add  $t7, $t7, $t4
        lw   $s1, 0($t7)
        j    nextb
miss:   add  $s6, $s6, $s1      # emit w into the checksum
        addi $s7, $s7, 1
        li   $t8, 3072          # capacity guard (keeps probes finite)
        bge  $s4, $t8, full
        sw   $t1, 0($t5)        # dict[k] = next_code++
        la   $t7, hval
        add  $t7, $t7, $t4
        sw   $s3, 0($t7)
        addi $s3, $s3, 1
        addi $s4, $s4, 1
full:   move $s1, $t0           # w = c
nextb:  addi $s0, $s0, 1
        addi $s2, $s2, 1
        li   $t9, INSIZE
        blt  $s2, $t9, byte
        add  $s6, $s6, $s1      # emit final w
        addi $s7, $s7, 1
        subi $s5, $s5, 1
        bnez $s5, pass

        add  $a0, $s6, $s7      # checksum + code count
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
