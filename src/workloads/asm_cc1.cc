#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * Tokenizer + recursive-descent expression compiler (the "cc1"
 * analogue). A ~12 KiB pseudo-C source buffer of assignment
 * statements in four syntactic shapes is synthesized once; each pass
 * tokenizes it and parses it with a recursive-descent
 * expr/term/factor grammar, evaluating into a 26-entry symbol table.
 * Value population: character loads and scan pointers, token codes
 * (context), parser stack traffic, evaluated expression values.
 *
 * $a0 = number of parse passes.
 */
const char*
cc1Assembly()
{
    return R"(
# cc1: tokenizer + recursive-descent parser/evaluator
        .data
src:    .space 12288
vars:   .space 104              # 26 variables
        .text
main:   move $s7, $a0           # passes
        li   $s6, 0             # checksum

        # ==== source generator ====
        # statements: v = <expr> ;  in four shapes
        la   $s0, src           # emit pointer
        li   $s2, 987654321     # x
        la   $s4, src
        li   $t0, 12224
        add  $s4, $s4, $t0      # emit limit
gstmt:  bgeu $s0, $s4, gdone
        li   $t0, 1103515245   # x = lcg(x)
        mul  $s2, $s2, $t0
        addi $s2, $s2, 12345
        srl  $t1, $s2, 4        # lhs variable
        li   $t2, 26
        rem  $t1, $t1, $t2
        addi $t1, $t1, 97
        sb   $t1, 0($s0)
        li   $t2, ' '
        sb   $t2, 1($s0)
        li   $t2, '='
        sb   $t2, 2($s0)
        li   $t3, ' '
        sb   $t3, 3($s0)
        addi $s0, $s0, 4
        srl  $t1, $s2, 9        # rhs variable  -> $s1
        li   $t2, 26
        rem  $t1, $t1, $t2
        addi $s1, $t1, 97
        srl  $t1, $s2, 14       # second rhs variable -> $s3
        li   $t2, 26
        rem  $t1, $t1, $t2
        addi $s3, $t1, 97
        srl  $t1, $s2, 16       # first number -> $s5 (1..999)
        li   $t2, 999
        rem  $t1, $t1, $t2
        addi $s5, $t1, 1
        srl  $t1, $s2, 22       # shape
        andi $t1, $t1, 3
        beqz $t1, shape0
        li   $t2, 1
        beq  $t1, $t2, shape1
        li   $t2, 2
        beq  $t1, $t2, shape2
        j    shape3

shape0: # n + v
        move $a1, $s5
        jal  emitnum
        li   $t2, '+'
        sb   $t2, 0($s0)
        li   $t3, ' '
        sb   $t3, 1($s0)
        sb   $s1, 2($s0)
        addi $s0, $s0, 3
        j    gend
shape1: # v * ( n + w )
        sb   $s1, 0($s0)
        li   $t2, '*'
        sb   $t2, 1($s0)
        li   $t2, '('
        sb   $t2, 2($s0)
        addi $s0, $s0, 3
        move $a1, $s5
        jal  emitnum
        li   $t2, '+'
        sb   $t2, 0($s0)
        sb   $s3, 1($s0)
        li   $t2, ')'
        sb   $t2, 2($s0)
        addi $s0, $s0, 3
        j    gend
shape2: # n * 7 + v
        move $a1, $s5
        jal  emitnum
        li   $t2, '*'
        sb   $t2, 0($s0)
        li   $t2, '7'
        sb   $t2, 1($s0)
        li   $t2, '+'
        sb   $t2, 2($s0)
        sb   $s1, 3($s0)
        addi $s0, $s0, 4
        j    gend
shape3: # ( v + n ) * 3
        li   $t2, '('
        sb   $t2, 0($s0)
        sb   $s1, 1($s0)
        li   $t2, '+'
        sb   $t2, 2($s0)
        addi $s0, $s0, 3
        move $a1, $s5
        jal  emitnum
        li   $t2, ')'
        sb   $t2, 0($s0)
        li   $t2, '*'
        sb   $t2, 1($s0)
        li   $t2, '3'
        sb   $t2, 2($s0)
        addi $s0, $s0, 3
gend:   li   $t2, ';'
        sb   $t2, 0($s0)
        li   $t2, '\n'
        sb   $t2, 1($s0)
        addi $s0, $s0, 2
        j    gstmt
gdone:  sb   $zero, 0($s0)      # NUL terminator

        # ==== parse passes ====
pass:   la   $s0, src           # scan pointer
        jal  nexttok
ploop:  beqz $s1, pdone
        li   $t4, 2
        bne  $s1, $t4, pskip
        move $s3, $s2           # lhs variable index
        jal  nexttok            # consume '='
        jal  nexttok
        jal  expr
        sll  $t4, $s3, 2        # vars[lhs] = value
        la   $t5, vars
        add  $t5, $t5, $t4
        sw   $v0, 0($t5)
        add  $s6, $s6, $v0
        jal  nexttok            # consume ';'
        j    ploop
pskip:  jal  nexttok
        j    ploop
pdone:  subi $s7, $s7, 1
        bnez $s7, pass

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall

# ---- emitnum: write decimal of $a1 (1..999) at $s0, advance $s0
emitnum:
        li   $t0, 100
        blt  $a1, $t0, en2
        div  $t1, $a1, $t0
        addi $t2, $t1, 48
        sb   $t2, 0($s0)
        addi $s0, $s0, 1
        mul  $t3, $t1, $t0
        sub  $a1, $a1, $t3
        li   $t0, 10
        div  $t1, $a1, $t0
        addi $t2, $t1, 48
        sb   $t2, 0($s0)
        addi $s0, $s0, 1
        mul  $t3, $t1, $t0
        sub  $a1, $a1, $t3
        j    enlast
en2:    li   $t0, 10
        blt  $a1, $t0, enlast
        div  $t1, $a1, $t0
        addi $t2, $t1, 48
        sb   $t2, 0($s0)
        addi $s0, $s0, 1
        mul  $t3, $t1, $t0
        sub  $a1, $a1, $t3
enlast: addi $t2, $a1, 48
        sb   $t2, 0($s0)
        addi $s0, $s0, 1
        jr   $ra

# ---- nexttok: scan token at $s0; type -> $s1, value -> $s2
#      types: 0 EOF, 1 number, 2 variable, else the character
#      clobbers $t0..$t3 only
nexttok:
ntskip: lbu  $t0, 0($s0)
        li   $t1, ' '
        beq  $t0, $t1, ntadv
        li   $t1, '\n'
        bne  $t0, $t1, ntcls
ntadv:  addi $s0, $s0, 1
        j    ntskip
ntcls:  beqz $t0, nteof
        li   $t1, '0'
        blt  $t0, $t1, ntchr
        li   $t1, '9'
        bgt  $t0, $t1, ntalph
        li   $t2, 10            # number
        li   $s2, 0
ntnum:  mul  $s2, $s2, $t2
        subi $t3, $t0, 48
        add  $s2, $s2, $t3
        addi $s0, $s0, 1
        lbu  $t0, 0($s0)
        li   $t1, '0'
        blt  $t0, $t1, ntnumd
        li   $t1, '9'
        ble  $t0, $t1, ntnum
ntnumd: li   $s1, 1
        jr   $ra
ntalph: li   $t1, 'a'
        blt  $t0, $t1, ntchr
        li   $t1, 'z'
        bgt  $t0, $t1, ntchr
        li   $s1, 2             # variable
        subi $s2, $t0, 97
        addi $s0, $s0, 1
        jr   $ra
ntchr:  move $s1, $t0           # operator/punctuation
        addi $s0, $s0, 1
        jr   $ra
nteof:  li   $s1, 0
        jr   $ra

# ---- expr: term (('+') term)* -> $v0
expr:   subi $sp, $sp, 8
        sw   $ra, 0($sp)
        jal  term
        sw   $v0, 4($sp)
exloop: li   $t4, '+'
        bne  $s1, $t4, exdone
        jal  nexttok
        jal  term
        lw   $t4, 4($sp)
        add  $t4, $t4, $v0
        sw   $t4, 4($sp)
        j    exloop
exdone: lw   $v0, 4($sp)
        lw   $ra, 0($sp)
        addi $sp, $sp, 8
        jr   $ra

# ---- term: factor (('*') factor)* -> $v0
term:   subi $sp, $sp, 8
        sw   $ra, 0($sp)
        jal  factor
        sw   $v0, 4($sp)
tmloop: li   $t4, '*'
        bne  $s1, $t4, tmdone
        jal  nexttok
        jal  factor
        lw   $t4, 4($sp)
        mul  $t4, $t4, $v0
        sw   $t4, 4($sp)
        j    tmloop
tmdone: lw   $v0, 4($sp)
        lw   $ra, 0($sp)
        addi $sp, $sp, 8
        jr   $ra

# ---- factor: NUM | VAR | '(' expr ')' -> $v0
factor: subi $sp, $sp, 4
        sw   $ra, 0($sp)
        li   $t4, 1
        beq  $s1, $t4, fnum
        li   $t4, 2
        beq  $s1, $t4, fvar
        li   $t4, '('
        beq  $s1, $t4, fpar
        li   $v0, 0             # error recovery
        jal  nexttok
        j    fret
fnum:   move $v1, $s2
        jal  nexttok
        move $v0, $v1
        j    fret
fvar:   sll  $t5, $s2, 2
        la   $t6, vars
        add  $t6, $t6, $t5
        lw   $v1, 0($t6)
        jal  nexttok
        move $v0, $v1
        j    fret
fpar:   jal  nexttok
        jal  expr
        jal  nexttok            # consume ')'
        j    fret
fret:   lw   $ra, 0($sp)
        addi $sp, $sp, 4
        jr   $ra
)";
}

} // namespace vpred::workloads
