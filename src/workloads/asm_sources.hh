/**
 * @file
 * Internal: assembly source text of each workload kernel.
 */

#ifndef DFCM_WORKLOADS_ASM_SOURCES_HH
#define DFCM_WORKLOADS_ASM_SOURCES_HH

namespace vpred::workloads
{

const char* normAssembly();      //!< Figure 5 row-normalization kernel
const char* compressAssembly();  //!< LZW-style compressor (compress)
const char* cc1Assembly();       //!< tokenizer + expression parser (cc1)
const char* goAssembly();        //!< board evaluation kernel (go)
const char* ijpegAssembly();     //!< blocked integer DCT kernel (ijpeg)
const char* liAssembly();        //!< cons-cell list interpreter (li)
const char* m88ksimAssembly();   //!< CPU-simulator-in-simulator (m88ksim)
const char* perlAssembly();      //!< string hash/score kernel (perl)
const char* vortexAssembly();    //!< object-store / db kernel (vortex)
const char* gzipAssembly();      //!< LZ77 matcher (extra workload)
const char* mcfAssembly();       //!< network pricing (extra workload)

} // namespace vpred::workloads

#endif // DFCM_WORKLOADS_ASM_SOURCES_HH
