#include "workloads/workload.hh"

#include <cmath>
#include <stdexcept>

#include "sim/assembler.hh"
#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

const std::vector<Workload>&
allWorkloads()
{
    // Order matches the paper's Table 1; "norm" (Figure 5) last.
    // max_steps is the dynamic-instruction guard at scale 1.0 with
    // ample headroom; it scales with the requested trace scale.
    static const std::vector<Workload> workloads = {
        {"compress", "LZW-style compressor over a synthetic text buffer",
         compressAssembly(), 2, 80u << 20},
        {"cc1", "tokenizer and recursive-descent expression compiler",
         cc1Assembly(), 12, 80u << 20},
        {"go", "board evaluation with pattern scanning and heuristics",
         goAssembly(), 15, 80u << 20},
        {"ijpeg", "blocked integer DCT over a synthetic image",
         ijpegAssembly(), 1, 80u << 20},
        {"li", "cons-cell list interpreter with recursive traversals",
         liAssembly(), 28, 80u << 20},
        {"m88ksim", "byte-coded guest CPU simulator (jump-table dispatch)",
         m88ksimAssembly(), 3, 80u << 20},
        {"perl", "string hashing, scoring and associative lookup",
         perlAssembly(), 10, 80u << 20},
        {"vortex", "hashed object store: inserts, lookups and scans",
         vortexAssembly(), 10, 80u << 20},
        {"norm", "Figure 5 row-normalization microkernel",
         normAssembly(), 6, 80u << 20},
        // Extra workloads beyond the paper's suite (robustness bench).
        {"gzip", "LZ77 sliding-window matcher with hash heads",
         gzipAssembly(), 7, 80u << 20},
        {"mcf", "network arc pricing with node potentials",
         mcfAssembly(), 24, 80u << 20},
    };
    return workloads;
}

const std::vector<std::string>&
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "compress", "cc1", "go", "ijpeg", "li", "m88ksim", "perl",
        "vortex",
    };
    return names;
}

const Workload&
findWorkload(const std::string& name)
{
    for (const Workload& w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    throw std::out_of_range("unknown workload '" + name + "'");
}

sim::TraceResult
runWorkload(const Workload& workload, double scale)
{
    const sim::Program program = sim::assemble(workload.assembly);
    const auto reps = static_cast<std::uint32_t>(
            std::max(1.0, std::round(workload.default_scale * scale)));
    const std::pair<unsigned, std::uint32_t> init[] = {
        {sim::reg::a0, reps},
    };
    const auto budget = static_cast<std::uint64_t>(
            static_cast<double>(workload.max_steps)
            * std::max(1.0, scale));
    return sim::traceProgram(program, budget, init);
}

sim::TraceResult
runWorkload(const std::string& name, double scale)
{
    return runWorkload(findWorkload(name), scale);
}

} // namespace vpred::workloads
