#include "workloads/asm_sources.hh"

namespace vpred::workloads
{

/**
 * String hashing/scoring kernel (the "perl" analogue of the paper's
 * scrabbl.pl run). A table of 256 pseudo-words is synthesized once;
 * each pass hashes and scores every word (letter-value table
 * lookups), inserts it into an open-addressed table and then answers
 * a mixed hit/miss query stream. Value population: character loads
 * (context), rolling hash accumulators, probe indices, scores.
 *
 * $a0 = number of passes (3 insert+query rounds each).
 */
const char*
perlAssembly()
{
    return R"(
# perl: word hashing, scoring and associative lookup
        .data
wordbuf: .space 4096            # 256 slots of 16: len byte + chars
lettval: .space 32              # letter values 'a'..'z'
hkey:   .space 2048             # 512-entry hash table: hash keys
hval:   .space 2048             # 512-entry hash table: scores
        .text
main:   move $s7, $a0           # passes
        li   $s6, 0             # checksum

        # ---- letter values: val(c) = (7 c) % 9 + 1
        li   $t0, 0
lv:     li   $at, 7
        mul  $t1, $t0, $at
        li   $t2, 9
        rem  $t1, $t1, $t2
        addi $t1, $t1, 1
        la   $t3, lettval
        add  $t3, $t3, $t0
        sb   $t1, 0($t3)
        addi $t0, $t0, 1
        li   $t2, 26
        blt  $t0, $t2, lv

        # ---- synthesize 256 pseudo-words, lengths 3..10
        li   $s0, 0             # word index
        li   $s2, 31415926      # x
wgen:   li   $t0, 1103515245
        mul  $s2, $s2, $t0
        addi $s2, $s2, 12345
        srl  $t1, $s2, 7
        andi $t1, $t1, 7
        addi $t1, $t1, 3        # len
        sll  $t2, $s0, 4
        la   $t3, wordbuf
        add  $t3, $t3, $t2      # slot
        sb   $t1, 0($t3)
        li   $t4, 0             # j
wch:    li   $t0, 1103515245
        mul  $s2, $s2, $t0
        addi $s2, $s2, 12345
        srl  $t5, $s2, 11
        li   $t6, 26
        rem  $t5, $t5, $t6
        addi $t5, $t5, 97
        add  $t7, $t3, $t4
        sb   $t5, 1($t7)
        addi $t4, $t4, 1
        blt  $t4, $t1, wch
        addi $s0, $s0, 1
        li   $t2, 256
        blt  $s0, $t2, wgen

        # ---- passes
pass:   li   $s5, 0             # round 0..2
round:  la   $t0, hkey          # clear table
        li   $t1, 0
hclr:   sw   $zero, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        li   $t2, 512
        blt  $t1, $t2, hclr

        # insert every word
        li   $s0, 0             # word index
ins:    sll  $t0, $s0, 4
        la   $t1, wordbuf
        add  $t1, $t1, $t0      # slot
        lbu  $t2, 0($t1)        # len
        li   $t3, 0             # h
        li   $t4, 0             # score
        li   $t5, 0             # j
hsh:    add  $t6, $t1, $t5
        lbu  $t7, 1($t6)        # c
        li   $t8, 31
        mul  $t3, $t3, $t8
        add  $t3, $t3, $t7
        subi $t8, $t7, 97
        la   $t9, lettval
        add  $t9, $t9, $t8
        lbu  $t8, 0($t9)
        add  $t4, $t4, $t8
        addi $t5, $t5, 1
        blt  $t5, $t2, hsh
        li   $t5, 6             # long-word bonus
        ble  $t2, $t5, nobon
        sll  $t4, $t4, 1
nobon:  add  $s6, $s6, $t4
        andi $t5, $t3, 511      # probe
ipr:    sll  $t6, $t5, 2
        la   $t7, hkey
        add  $t7, $t7, $t6
        lw   $t8, 0($t7)
        beqz $t8, islot
        beq  $t8, $t3, islot
        addi $t5, $t5, 1
        andi $t5, $t5, 511
        j    ipr
islot:  sw   $t3, 0($t7)
        la   $t9, hval
        add  $t9, $t9, $t6
        sw   $t4, 0($t9)
        addi $s0, $s0, 1
        li   $t0, 256
        blt  $s0, $t0, ins

        # query stream: 512 lookups, ~20% synthetic misses
        li   $s0, 0             # query number
        li   $s4, 271828182     # y
qry:    li   $t0, 1103515245
        mul  $s4, $s4, $t0
        addi $s4, $s4, 12345
        srl  $t1, $s4, 10
        li   $t2, 320
        rem  $t1, $t1, $t2      # 0..319; >= 256 = synthetic miss key
        li   $t2, 256
        blt  $t1, $t2, qword
        ori  $t3, $s4, 1        # unlikely-to-exist hash
        j    qprobe
qword:  sll  $t0, $t1, 4        # rehash the word's characters
        la   $t1, wordbuf
        add  $t1, $t1, $t0
        lbu  $t2, 0($t1)        # len
        li   $t3, 0             # h
        li   $t5, 0             # j
qh:     add  $t6, $t1, $t5
        lbu  $t7, 1($t6)
        li   $t8, 31
        mul  $t3, $t3, $t8
        add  $t3, $t3, $t7
        addi $t5, $t5, 1
        blt  $t5, $t2, qh
qprobe: andi $t5, $t3, 511
qpr:    sll  $t6, $t5, 2
        la   $t7, hkey
        add  $t7, $t7, $t6
        lw   $t8, 0($t7)
        beqz $t8, qmiss
        beq  $t8, $t3, qhit
        addi $t5, $t5, 1
        andi $t5, $t5, 511
        j    qpr
qhit:   la   $t9, hval
        add  $t9, $t9, $t6
        lw   $t8, 0($t9)
        add  $s6, $s6, $t8
        j    qnext
qmiss:  addi $s6, $s6, 1
qnext:  addi $s0, $s0, 1
        li   $t0, 512
        blt  $s0, $t0, qry

        addi $s5, $s5, 1
        li   $t0, 3
        blt  $s5, $t0, round
        subi $s7, $s7, 1
        bnez $s7, pass

        move $a0, $s6
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";
}

} // namespace vpred::workloads
