/**
 * @file
 * The SPEC-like MiniRISC workload suite (DESIGN.md Section 2).
 *
 * Each workload is a hand-written MiniRISC assembly kernel that
 * reproduces the value-pattern population of one SPECint95 benchmark
 * the paper traces (Table 1), plus the paper's norm() microkernel
 * (Figure 5). Every kernel reads its repetition count from $a0 so
 * trace length scales smoothly, prints a checksum so tests can pin
 * behaviour, and exits via syscall 10.
 */

#ifndef DFCM_WORKLOADS_WORKLOAD_HH
#define DFCM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/tracer.hh"

namespace vpred::workloads
{

/**
 * Revision of the workload suite / tracing substrate. Persistent
 * trace-store entries (harness/trace_store.hh) are keyed on this;
 * bump it whenever a change to any workload kernel, the assembler,
 * the VM semantics or the trace-eligibility filter can alter a
 * generated trace, so stale store entries miss instead of serving
 * outdated records.
 */
inline constexpr std::uint32_t kTraceGeneratorVersion = 1;

/** A registered workload kernel. */
struct Workload
{
    std::string name;          //!< short id, e.g. "li"
    std::string description;   //!< what it models (Table 1 analogue)
    const char* assembly;      //!< MiniRISC source text
    std::uint32_t default_scale; //!< $a0 value at scale 1.0
    std::uint64_t max_steps;   //!< dynamic-instruction guard at scale 1
};

/** All workloads: the eight SPEC-like kernels, in the paper's Table 1
 *  order, followed by "norm" (Figure 5) and the extra robustness
 *  kernels "gzip" and "mcf". */
const std::vector<Workload>& allWorkloads();

/** The eight SPEC-like benchmark names (excludes "norm"). */
const std::vector<std::string>& benchmarkNames();

/** Look up a workload by name. @throws std::out_of_range. */
const Workload& findWorkload(const std::string& name);

/**
 * Assemble and run a workload, returning its eligible value trace.
 *
 * @param workload The workload to run.
 * @param scale Multiplier on the kernel's default repetition count;
 *        the dynamic instruction budget scales along.
 */
sim::TraceResult runWorkload(const Workload& workload, double scale = 1.0);

/** Convenience overload by name. */
sim::TraceResult runWorkload(const std::string& name, double scale = 1.0);

} // namespace vpred::workloads

#endif // DFCM_WORKLOADS_WORKLOAD_HH
