/**
 * @file
 * The paper's standard parameter grids (Figures 3, 10, 11, 16, 17).
 */

#ifndef DFCM_HARNESS_SWEEP_HH
#define DFCM_HARNESS_SWEEP_HH

#include <vector>

#include "core/predictor_factory.hh"

namespace vpred::harness
{

/** Level-2 sizes used throughout the paper: 2^8 .. 2^20. */
const std::vector<unsigned>& paperL2Bits();

/** FCM level-1 sizes of Figure 3: 2^0, 2^4, 2^6, ..., 2^16. */
const std::vector<unsigned>& paperFcmL1Bits();

/** DFCM level-1 sizes of Figure 11(a): 2^10, 2^12, 2^14, 2^16. */
const std::vector<unsigned>& paperDfcmL1Bits();

/** LVP/stride table sizes of Figure 3: 2^6 .. 2^16. */
const std::vector<unsigned>& paperSingleTableBits();

/** Update delays of Figure 17: 0, 16, 32, 64, 128, 256, 512. */
const std::vector<unsigned>& paperUpdateDelays();

/** Full (l1, l2) grid for a two-level predictor kind. */
std::vector<PredictorConfig> twoLevelGrid(
        PredictorKind kind, const std::vector<unsigned>& l1_bits,
        const std::vector<unsigned>& l2_bits);

} // namespace vpred::harness

#endif // DFCM_HARNESS_SWEEP_HH
