#include "harness/experiment.hh"

#include "workloads/workload.hh"

namespace vpred::harness
{

RunResult
runOn(TraceCache& cache, const std::string& workload,
      const PredictorConfig& config)
{
    auto predictor = makePredictor(config);
    RunResult result;
    result.workload = workload;
    result.predictor = predictor->name();
    result.stats = runTrace(*predictor, cache.get(workload));
    result.storage_bits = predictor->storageBits();
    return result;
}

SuiteResult
runSuite(TraceCache& cache, const std::vector<std::string>& workload_names,
         const PredictorConfig& config)
{
    SuiteResult suite;
    for (const std::string& name : workload_names) {
        RunResult r = runOn(cache, name, config);
        suite.predictor = r.predictor;
        suite.storage_bits = r.storage_bits;
        suite.total += r.stats;
        suite.per_workload.push_back(std::move(r));
    }
    return suite;
}

SuiteResult
runBenchmarks(TraceCache& cache, const PredictorConfig& config)
{
    return runSuite(cache, workloads::benchmarkNames(), config);
}

} // namespace vpred::harness
