#include "harness/experiment.hh"

#include "workloads/workload.hh"

namespace vpred::harness
{

RunResult
runOn(TraceCache& cache, const std::string& workload,
      const PredictorConfig& config)
{
    auto predictor = makePredictor(config);
    RunResult result;
    result.workload = workload;
    result.predictor = predictor->name();
    result.stats = runTrace(*predictor, cache.getSpan(workload));
    result.storage_bits = predictor->storageBits();
    return result;
}

SuiteResult
aggregateSuite(const PredictorConfig& config, std::vector<RunResult> runs)
{
    SuiteResult suite;
    // Derive the metadata from the config, not the runs, so an empty
    // workload list still yields a labelled (zero-prediction) suite.
    const auto probe = makePredictor(config);
    suite.predictor = probe->name();
    suite.storage_bits = probe->storageBits();
    for (RunResult& r : runs)
        suite.total += r.stats;
    suite.per_workload = std::move(runs);
    return suite;
}

SuiteResult
runSuite(TraceCache& cache, const std::vector<std::string>& workload_names,
         const PredictorConfig& config)
{
    std::vector<RunResult> runs;
    runs.reserve(workload_names.size());
    for (const std::string& name : workload_names)
        runs.push_back(runOn(cache, name, config));
    return aggregateSuite(config, std::move(runs));
}

SuiteResult
runBenchmarks(TraceCache& cache, const PredictorConfig& config)
{
    return runSuite(cache, workloads::benchmarkNames(), config);
}

} // namespace vpred::harness
