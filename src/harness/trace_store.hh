/**
 * @file
 * Persistent, memory-mapped workload trace store.
 *
 * The in-memory TraceCache decouples trace generation from the many
 * predictor configurations of one sweep, but every *process* still
 * pays the full MiniRISC VM cost for every workload. The TraceStore
 * persists generated traces as VPT2 containers (core/trace_io.hh)
 * in a directory selected by the REPRO_TRACE_DIR environment
 * variable, so the whole figure/ablation fleet generates each trace
 * once per machine and afterwards acquires it by mmap.
 *
 * Entries are keyed on (workload name, exact trace scale,
 * workloads::kTraceGeneratorVersion): changing REPRO_TRACE_SCALE or
 * revising a workload kernel misses cleanly instead of serving a
 * stale trace. Writes go to a temp file in the same directory
 * followed by an atomic rename, so concurrent processes (or racing
 * threads) populating the same entry are safe — last rename wins,
 * and every rename installs a complete, checksummed file.
 *
 * Readers validate the header and the FNV-1a payload checksum, then
 * hand out a MappedTrace whose records() span aliases the mapping
 * directly — the 64-byte-aligned record section is exactly an array
 * of TraceRecord, so sweeps run zero-copy over the file's pages.
 */

#ifndef DFCM_HARNESS_TRACE_STORE_HH
#define DFCM_HARNESS_TRACE_STORE_HH

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <type_traits>

#include "core/trace_io.hh"
#include "core/types.hh"
#include "sim/tracer.hh"

namespace vpred::harness
{

// The mmap'd record section is reinterpreted as TraceRecord[], so
// the in-memory layout must match the serialized one exactly.
static_assert(sizeof(TraceRecord) == 16,
              "VPT2 records are 16 bytes on disk");
static_assert(alignof(TraceRecord) <= 16 && 64 % alignof(TraceRecord) == 0,
              "64-byte-aligned record sections must align TraceRecord");
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "mapped records are read without construction");
static_assert(offsetof(TraceRecord, pc) == 0
                      && offsetof(TraceRecord, value) == 8,
              "VPT2 stores pc at offset 0 and value at offset 8");

/**
 * A read-only memory mapping of one VPT2 store entry.
 *
 * Movable, non-copyable; unmaps on destruction. records() stays
 * valid exactly as long as the MappedTrace lives, so holders (the
 * TraceCache) must outlive every span they hand out.
 */
class MappedTrace
{
  public:
    MappedTrace() = default;
    ~MappedTrace();

    MappedTrace(MappedTrace&& other) noexcept;
    MappedTrace& operator=(MappedTrace&& other) noexcept;
    MappedTrace(const MappedTrace&) = delete;
    MappedTrace& operator=(const MappedTrace&) = delete;

    /** Zero-copy view of the mapped record section. */
    std::span<const TraceRecord>
    records() const
    {
        return {records_, count_};
    }

    std::uint64_t instructions() const { return meta_.instructions; }
    const std::string& output() const { return meta_.output; }
    const Vpt2Meta& meta() const { return meta_; }

    /** Mapping bounds, for tests asserting spans alias the file. */
    const void* mappingData() const { return map_; }
    std::size_t mappingSize() const { return map_size_; }

    bool valid() const { return map_ != nullptr; }

  private:
    friend class TraceStore;

    /** Release the mapping (idempotent; nulls state before munmap). */
    void unmap() noexcept;

    void* map_ = nullptr;
    std::size_t map_size_ = 0;
    const TraceRecord* records_ = nullptr;
    std::size_t count_ = 0;
    Vpt2Meta meta_;
};

/**
 * The on-disk trace store: a directory of VPT2 containers.
 *
 * All methods are const and thread-safe (the store holds no mutable
 * state; concurrent writes are serialized by atomic renames).
 * A store constructed with an empty directory is disabled: load()
 * always misses and store() is a no-op.
 */
class TraceStore
{
  public:
    /** Store directory from REPRO_TRACE_DIR ("" = disabled). */
    static std::string envDir();

    explicit TraceStore(std::string dir = envDir());

    bool enabled() const { return !dir_.empty(); }
    const std::string& dir() const { return dir_; }

    /**
     * Path of the entry for (@p workload, @p scale) at the current
     * generator version. The exact scale is encoded via its IEEE-754
     * bit pattern, so e.g. 0.1 and 0.1000001 key different entries.
     */
    std::string entryPath(const std::string& workload,
                          double scale) const;

    /**
     * Look up and map an entry. Returns nullopt on a plain miss, on
     * a key mismatch (stale scale/version/name — also a miss), or on
     * a corrupt file (validation or checksum failure; warns once per
     * file on stderr). Never throws on bad data: a broken store
     * entry degrades to regeneration.
     */
    std::optional<MappedTrace> load(const std::string& workload,
                                    double scale) const;

    /**
     * Persist @p result for (@p workload, @p scale): write a temp
     * file in the store directory, then atomically rename it over
     * the entry. Creates the directory if needed. No-op when
     * disabled. @throws TraceIoError on I/O failure.
     */
    void store(const std::string& workload, double scale,
               const sim::TraceResult& result) const;

    /**
     * Map an arbitrary VPT2 file with full validation (header,
     * geometry, checksum). @throws TraceIoError — this is the
     * strict path used by tools; load() wraps it per entry.
     */
    static MappedTrace mapFile(const std::string& path);

  private:
    std::string dir_;
};

} // namespace vpred::harness

#endif // DFCM_HARNESS_TRACE_STORE_HH
