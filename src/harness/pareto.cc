#include "harness/pareto.hh"

#include <algorithm>

namespace vpred::harness
{

std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const ParetoPoint& a, const ParetoPoint& b) {
                  if (a.size_kbit != b.size_kbit)
                      return a.size_kbit < b.size_kbit;
                  return a.accuracy > b.accuracy;
              });

    std::vector<ParetoPoint> frontier;
    double best = -1.0;
    for (const ParetoPoint& p : points) {
        if (p.accuracy > best) {
            frontier.push_back(p);
            best = p.accuracy;
        }
    }
    return frontier;
}

} // namespace vpred::harness
