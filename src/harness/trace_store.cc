#include "harness/trace_store.hh"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/env_util.hh"
#include "workloads/workload.hh"

namespace vpred::harness
{

// Mapped records are reinterpreted in place; the serialized payload
// is little-endian, so the host must be too (the stream codec in
// core/trace_io.cc stays portable either way).
static_assert(std::endian::native == std::endian::little,
              "the mmap'd trace store requires a little-endian host");

namespace
{

std::string
errnoString()
{
    return std::strerror(errno);
}

/**
 * Owns a file descriptor for the duration of a scope, so every
 * throwing path out of mapFile() structurally closes it — an fd leak
 * cannot be reintroduced by adding a new early return.
 */
class ScopedFd
{
  public:
    explicit ScopedFd(int fd) noexcept : fd_(fd) {}
    ~ScopedFd()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    ScopedFd(const ScopedFd&) = delete;
    ScopedFd& operator=(const ScopedFd&) = delete;

    int get() const noexcept { return fd_; }

  private:
    int fd_;
};

} // namespace

void
MappedTrace::unmap() noexcept
{
    // exchange() nulls the pointer before the munmap call, so even a
    // re-entrant or repeated unmap (destructor after move-assign,
    // self-move-assign) can never pass the same region twice.
    void* map = std::exchange(map_, nullptr);
    const std::size_t size = std::exchange(map_size_, 0);
    records_ = nullptr;
    count_ = 0;
    if (map != nullptr)
        ::munmap(map, size);
}

MappedTrace::~MappedTrace()
{
    unmap();
}

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      records_(std::exchange(other.records_, nullptr)),
      count_(std::exchange(other.count_, 0)),
      meta_(std::move(other.meta_))
{
}

MappedTrace&
MappedTrace::operator=(MappedTrace&& other) noexcept
{
    if (this == &other)
        return *this;  // self-move keeps the mapping intact
    unmap();
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    records_ = std::exchange(other.records_, nullptr);
    count_ = std::exchange(other.count_, 0);
    meta_ = std::move(other.meta_);
    return *this;
}

std::string
TraceStore::envDir()
{
    return envRaw("REPRO_TRACE_DIR").value_or(std::string());
}

TraceStore::TraceStore(std::string dir) : dir_(std::move(dir)) {}

std::string
TraceStore::entryPath(const std::string& workload, double scale) const
{
    // The exact scale keys the entry via its bit pattern: any change
    // to REPRO_TRACE_SCALE, however small, selects a different file.
    char scale_hex[17];
    std::snprintf(scale_hex, sizeof(scale_hex), "%016llx",
                  static_cast<unsigned long long>(
                          std::bit_cast<std::uint64_t>(scale)));
    return dir_ + "/" + workload + ".s" + scale_hex + ".g"
            + std::to_string(workloads::kTraceGeneratorVersion)
            + ".vpt2";
}

MappedTrace
TraceStore::mapFile(const std::string& path)
{
    Vpt2Layout layout;
    {
        std::ifstream in(path, std::ios::in | std::ios::binary);
        if (!in)
            throw TraceIoError("cannot open " + path);
        layout = readVpt2Header(in);
    }
    if (layout.record_count > (1ull << 33))
        throw TraceIoError("implausible record count in " + path);

    const ScopedFd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
    if (fd.get() < 0)
        throw TraceIoError("cannot open " + path + ": " + errnoString());
    struct stat st;
    if (::fstat(fd.get(), &st) != 0)
        throw TraceIoError("cannot stat " + path + ": " + errnoString());
    const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
    const std::uint64_t need = layout.records_offset
            + layout.record_count * sizeof(TraceRecord);
    if (size < need)
        throw TraceIoError("truncated VPT2 file " + path + ": have "
                           + std::to_string(size) + " bytes, header needs "
                           + std::to_string(need));

    void* map =
            ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.get(), 0);
    if (map == MAP_FAILED)
        throw TraceIoError("mmap failed for " + path + ": "
                           + errnoString());

    MappedTrace mt;
    mt.map_ = map;
    mt.map_size_ = size;
    mt.records_ = reinterpret_cast<const TraceRecord*>(
            static_cast<const char*>(map) + layout.records_offset);
    mt.count_ = layout.record_count;
    mt.meta_ = layout.meta;

    // Sequential verification pass; also warms the page cache for
    // the sweep that follows.
    if (traceChecksum(mt.records()) != layout.checksum)
        throw TraceIoError("VPT2 checksum mismatch in " + path);
    return mt;
}

std::optional<MappedTrace>
TraceStore::load(const std::string& workload, double scale) const
{
    if (!enabled())
        return std::nullopt;
    const std::string path = entryPath(workload, scale);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec)
        return std::nullopt;
    try {
        MappedTrace mt = mapFile(path);
        // The filename already encodes the key, but the header is
        // authoritative: a renamed or hand-edited file must miss.
        if (mt.meta().workload != workload
            || std::bit_cast<std::uint64_t>(mt.meta().scale)
                       != std::bit_cast<std::uint64_t>(scale)
            || mt.meta().generator_version
                       != workloads::kTraceGeneratorVersion) {
            std::cerr << "warning: trace-store entry " << path
                      << " has a stale key; regenerating\n";
            return std::nullopt;
        }
        return mt;
    } catch (const TraceIoError& e) {
        std::cerr << "warning: ignoring corrupt trace-store entry "
                  << path << ": " << e.what() << "\n";
        return std::nullopt;
    }
}

void
TraceStore::store(const std::string& workload, double scale,
                  const sim::TraceResult& result) const
{
    if (!enabled())
        return;
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        throw TraceIoError("cannot create trace-store directory " + dir_
                           + ": " + ec.message());

    const std::string path = entryPath(workload, scale);
    // Unique temp name per process and thread, so racing writers
    // never share a temp file; the rename below is atomic, so the
    // entry is always either absent or complete.
    const std::string tmp = path + ".tmp."
            + std::to_string(static_cast<long long>(::getpid())) + "."
            + std::to_string(std::hash<std::thread::id>{}(
                      std::this_thread::get_id()));
    {
        std::ofstream out(tmp, std::ios::out | std::ios::binary
                                       | std::ios::trunc);
        if (!out)
            throw TraceIoError("cannot open " + tmp + " for writing");
        Vpt2Meta meta;
        meta.workload = workload;
        meta.scale = scale;
        meta.generator_version = workloads::kTraceGeneratorVersion;
        meta.instructions = result.instructions;
        meta.output = result.output;
        writeTraceVpt2(out, result.trace, meta);
        out.flush();
        if (!out) {
            fs::remove(tmp, ec);
            throw TraceIoError("short write to " + tmp);
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        throw TraceIoError("cannot install trace-store entry " + path
                           + ": " + ec.message());
    }
}

} // namespace vpred::harness
