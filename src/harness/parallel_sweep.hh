/**
 * @file
 * Parallel sweep executor for the experiment harness.
 *
 * Every paper figure is a sweep over a (predictor-config × workload)
 * grid; the cells are independent trace-driven runs, so they
 * parallelize perfectly once the workload traces are shared safely.
 * ParallelSweep fans the grid out over a fixed thread pool — each
 * worker builds its own predictor and PredictorStats per cell and
 * only *reads* the TraceCache — and gathers the results back in
 * deterministic grid order, so parallel output is bit-identical to
 * the serial runSuite() path.
 *
 * Worker count comes from the REPRO_JOBS environment variable
 * (default: std::thread::hardware_concurrency). REPRO_JOBS=1 runs
 * every cell inline on the calling thread, spawning no workers.
 */

#ifndef DFCM_HARNESS_PARALLEL_SWEEP_HH
#define DFCM_HARNESS_PARALLEL_SWEEP_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"

namespace vpred::harness
{

/**
 * How a runGrid() call actually executed: which path evaluated each
 * (config × workload) cell, how many trace walks that took, and how
 * long it ran. Emitted into BENCH JSON files so perf numbers are
 * comparable across commits.
 */
struct SweepExecution
{
    std::uint64_t cells = 0;          //!< (config × workload) cells
    std::uint64_t batched_cells = 0;  //!< via multi-geometry kernel
    std::uint64_t fused_cells = 0;    //!< per-config, devirtualized
    std::uint64_t virtual_cells = 0;  //!< per-config, virtual loop
    std::uint64_t trace_walks = 0;    //!< walks actually performed
    unsigned jobs = 1;
    double wall_seconds = 0.0;

    // Trace acquisition during this runGrid() call (prewarm plus any
    // stragglers): persistent-store traffic and wall time spent
    // getting traces, as deltas of TraceCache::acquisition().
    bool store_enabled = false;        //!< REPRO_TRACE_DIR configured
    std::uint64_t store_hits = 0;      //!< traces mapped from disk
    std::uint64_t store_misses = 0;    //!< lookups that fell to the VM
    double acquisition_seconds = 0.0;  //!< wall time acquiring traces

    // SIMD dispatch in effect for the multi-geometry kernels during
    // this run (schema_version 4): the backend label from
    // simdBackendName() and its vector width in bits. "scalar"/64
    // when no vector backend ran (or none was built in).
    std::string simd_backend = "scalar";  //!< active kernel backend
    unsigned vector_width = 64;           //!< backend vector bits

    // Gather column tier in effect for this run (schema_version 8):
    // the REPRO_GATHER_COLUMNS threshold the kernels resolved (0 =
    // tier disabled) and how many columns across the run's geometries
    // actually took the batched vpgatherdd probe path.
    unsigned gather_min_bits = 0;        //!< resolved gather threshold
    std::uint64_t gather_columns = 0;    //!< columns on the gather path

    /** Dominant path label: "multi-geometry", "fused", "virtual",
     *  "mixed", or "empty" for a zero-cell grid. */
    std::string path() const;
};

/**
 * Worker count from REPRO_JOBS (clamped to [1, 512]). Unset, zero or
 * unparsable values select hardware_concurrency (warning once on
 * stderr when unparsable).
 */
unsigned envJobs();

/**
 * A fixed pool of worker threads executing index-ranged jobs.
 *
 * Workers are spawned once in the constructor and reused across
 * parallelFor() calls; work is distributed dynamically through an
 * atomic cursor so uneven cell costs (big vs. small tables) do not
 * leave threads idle.
 */
class ThreadPool
{
  public:
    /** @param jobs Worker count; 0 selects envJobs(). A pool of one
     *  job spawns no threads and runs work inline. */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Invoke fn(i) for every i in [0, n), blocking until all calls
     * complete. Indices are claimed dynamically; with jobs() == 1 the
     * calls run in order on the calling thread. The first exception
     * thrown by fn is rethrown here after the batch drains.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

  private:
    void workerLoop();

    unsigned jobs_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_;  //!< workers wait for a batch
    std::condition_variable done_cv_;  //!< parallelFor waits for drain
    const std::function<void(std::size_t)>* task_ = nullptr;
    std::size_t task_size_ = 0;
    std::size_t next_ = 0;             //!< next unclaimed cell index
    std::size_t pending_ = 0;          //!< cells not yet completed
    std::uint64_t generation_ = 0;     //!< batch id workers sync on
    std::exception_ptr error_;
    bool stop_ = false;
};

/**
 * Fan a (config × workload) grid out over a thread pool.
 *
 * All workloads are pre-warmed into the TraceCache first (also in
 * parallel). FCM/DFCM configs that differ only in l2_bits are routed
 * as whole columns through the single-pass multi-geometry kernels
 * (see harness/batch_sweep.hh; disable with REPRO_BATCH_SWEEP=0);
 * every remaining (config, workload) cell runs as one per-config
 * task. Results come back as one SuiteResult per config, in config
 * order, with per_workload in workload order — bit-identical to a
 * serial runSuite() loop over the same grid.
 */
class ParallelSweep
{
  public:
    /** @param jobs Worker count; 0 selects envJobs(). */
    explicit ParallelSweep(TraceCache& cache, unsigned jobs = 0);

    unsigned jobs() const { return pool_.jobs(); }

    /** Run every config over @p workload_names. */
    std::vector<SuiteResult> runGrid(
            const std::vector<PredictorConfig>& configs,
            const std::vector<std::string>& workload_names);

    /** Run every config over the paper's eight-benchmark suite. */
    std::vector<SuiteResult> runGrid(
            const std::vector<PredictorConfig>& configs);

    /** Execution report of the most recent runGrid() call. */
    const SweepExecution& lastExecution() const { return execution_; }

  private:
    TraceCache& cache_;
    ThreadPool pool_;
    SweepExecution execution_;
};

} // namespace vpred::harness

#endif // DFCM_HARNESS_PARALLEL_SWEEP_HH
