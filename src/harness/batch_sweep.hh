/**
 * @file
 * Batched sweep planning: route level-2 size columns of a config
 * grid through the single-pass multi-geometry kernels.
 *
 * A sweep grid cell is normally one full trace replay. When several
 * FCM (or DFCM) configs in a grid differ only in l2_bits — the shape
 * of every paper figure — they share their level-1 state and can be
 * evaluated together by MultiGeom{Fcm,Dfcm}Kernel in a single walk.
 * planBatchSweep() finds those column groups; everything else stays
 * on the per-config path. The plan covers each grid index exactly
 * once, so scattering results back preserves grid order and the
 * output is bit-identical to the unbatched sweep.
 *
 * Batching is on by default and can be disabled by setting
 * REPRO_BATCH_SWEEP=0 (or "off"/"false") in the environment.
 */

#ifndef DFCM_HARNESS_BATCH_SWEEP_HH
#define DFCM_HARNESS_BATCH_SWEEP_HH

#include <cstddef>
#include <span>
#include <vector>

#include "core/multi_geom.hh"
#include "core/predictor_factory.hh"

namespace vpred::harness
{

/** Multi-geometry batching toggle from REPRO_BATCH_SWEEP
 *  (default on; 0/off/false/no disables, 1/on/true/yes enables;
 *  anything else is fatal — see core/env_util.hh). */
bool batchSweepEnabled();

/** True iff @p config can be evaluated by a multi-geometry kernel
 *  (plain FCM/DFCM with immediate update). */
bool batchableConfig(const PredictorConfig& config);

/**
 * One multi-geometry group: grid configs sharing everything but
 * l2_bits. geom.l2_bits[j] belongs to grid index config_indices[j].
 */
struct BatchGroup
{
    PredictorKind kind = PredictorKind::Dfcm;
    MultiGeomConfig geom;
    std::vector<std::size_t> config_indices;
};

/** Partition of a config grid into kernel groups and per-config
 *  leftovers; together they cover every grid index exactly once. */
struct BatchPlan
{
    std::vector<BatchGroup> groups;
    std::vector<std::size_t> singles;

    /** Grid configs evaluated through a multi-geometry kernel. */
    std::size_t
    batchedConfigs() const
    {
        std::size_t n = 0;
        for (const BatchGroup& g : groups)
            n += g.config_indices.size();
        return n;
    }
};

/**
 * Group @p configs into multi-geometry columns. A group needs at
 * least two members (a lone config gains nothing from the kernel);
 * with @p enabled false everything lands in singles.
 */
BatchPlan planBatchSweep(const std::vector<PredictorConfig>& configs,
                         bool enabled = batchSweepEnabled());

/** Evaluate one group over one trace view (an owned ValueTrace
 *  converts implicitly; memory-mapped spans run with no copy):
 *  per-column stats, column order, bit-identical to running each
 *  config's predictor alone. */
std::vector<PredictorStats>
runBatchGroup(const BatchGroup& group,
              std::span<const TraceRecord> trace);

} // namespace vpred::harness

#endif // DFCM_HARNESS_BATCH_SWEEP_HH
