/**
 * @file
 * Aligned console tables and CSV output for the benchmark harness.
 *
 * Every bench binary prints the paper's rows/series through this
 * class and mirrors them into results/<experiment>.csv.
 */

#ifndef DFCM_HARNESS_TABLE_PRINTER_HH
#define DFCM_HARNESS_TABLE_PRINTER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vpred::harness
{

/** A simple column-aligned table with CSV export. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> columns);

    /** Append a row; must have as many cells as there are columns. */
    void addRow(std::vector<std::string> cells);

    /** Cell formatting helpers. */
    static std::string fmt(double v, int precision = 4);
    static std::string fmt(std::uint64_t v);

    /** Print as an aligned table. */
    void print(std::ostream& os) const;

    /**
     * Write as CSV to results/<name>.csv (the directory is created
     * if needed); best effort — failures are reported on stderr but
     * never fatal, so benches still print to the console.
     */
    void writeCsv(const std::string& name) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vpred::harness

#endif // DFCM_HARNESS_TABLE_PRINTER_HH
