#include "harness/table_printer.hh"

#include <cassert>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace vpred::harness
{

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
    assert(!columns_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == columns_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::fmt(std::uint64_t v)
{
    return std::to_string(v);
}

void
TablePrinter::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto line = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::setw(static_cast<int>(widths[c])) << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };
    line(columns_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto& row : rows_)
        line(row);
}

void
TablePrinter::writeCsv(const std::string& name) const
{
    namespace fs = std::filesystem;
    try {
        fs::create_directories("results");
        std::ofstream out("results/" + name + ".csv");
        if (!out) {
            std::cerr << "warning: cannot write results/" << name
                      << ".csv\n";
            return;
        }
        auto csvLine = [&](const std::vector<std::string>& cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                out << cells[c] << (c + 1 == cells.size() ? "\n" : ",");
        };
        csvLine(columns_);
        for (const auto& row : rows_)
            csvLine(row);
    } catch (const std::exception& e) {
        std::cerr << "warning: CSV write failed: " << e.what() << "\n";
    }
}

} // namespace vpred::harness
