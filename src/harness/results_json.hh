/**
 * @file
 * Machine-readable results emission for the benchmark harness.
 *
 * The CSV mirrors in results/ are per-table; this writer captures a
 * whole experiment — every (config, suite-result) pair plus the run
 * metadata (trace scale, worker count, wall time) — as one JSON file
 * named results/BENCH_<experiment>.json, so the accuracy/throughput
 * trajectory can be tracked across commits by diffing or ingesting
 * the files. Schema (schema_version 8; "execution", "metrics" and
 * addSection() objects appear only when set). Version 3 added the
 * trace-store fields to "execution": whether a persistent
 * REPRO_TRACE_DIR store was configured, how many traces it served
 * (hits) vs. regenerated (misses), and the wall time spent acquiring
 * traces. Version 4 added the SIMD dispatch fields: which
 * multi-geometry kernel backend ran ("scalar", "sse2", "avx2",
 * "neon") and its vector width in bits. Version 5 added named
 * top-level sections of numeric pairs via addSection() — e.g. the
 * prediction service's "service" object in BENCH_service.json.
 * Version 6 adds "avx512" to the possible simd_backend labels (512
 * vector_width) and, in BENCH_service.json, the stream-packing
 * observability sections "packing" and "drain_batches". Version 7
 * adds named top-level *tables* via addTable() — columns plus rows
 * of mixed string/number cells — used by BENCH_service.json's
 * "scaling" grid (one row per {backend, producers, shards} sweep
 * point), and the ingest-fabric sections "ingest_fabric" and
 * "producer_blocked". Version 8 adds the gather-tier fields to
 * "execution": the active gather threshold ("gather_min_bits", 0
 * when the tier is disabled) and how many level-2 columns the sweep
 * actually ran through the gather path ("gather_columns"):
 *
 *     "scaling": {
 *       "columns": ["backend", "producers", "shards",
 *                   "records_per_sec", "p99_ingest_to_predict_ns"],
 *       "rows": [ ["avx512", 1, 1, 3.2e6, 1.1e7], ... ]
 *     },
 *
 *     {
 *       "schema_version": 8,
 *       "experiment": "fig10_fcm_vs_dfcm",
 *       "trace_scale": 1.0,
 *       "jobs": 8,
 *       "wall_seconds": 2.417,
 *       "execution": { "path": "multi-geometry", "cells": 112,
 *         "batched_cells": 112, "fused_cells": 0, "virtual_cells": 0,
 *         "trace_walks": 16, "sweep_wall_seconds": 1.208,
 *         "trace_store_enabled": true, "trace_store_hits": 8,
 *         "trace_store_misses": 0, "trace_acquisition_ms": 42.7,
 *         "simd_backend": "avx2", "vector_width": 256,
 *         "gather_min_bits": 18, "gather_columns": 24 },
 *       "metrics": { "dfcm_multigeom_records_per_sec": 1.2e8 },
 *       "results": [
 *         { "predictor": "dfcm(l1=16,l2=12)", "kind": "dfcm",
 *           "l1_bits": 16, "l2_bits": 12, "storage_kbit": 1568.0,
 *           "accuracy": 0.7251, "predictions": 18349056,
 *           "correct": 13304929,
 *           "per_workload": [
 *             { "workload": "go", "accuracy": 0.61,
 *               "predictions": 2293632, "correct": 1399115 }, ... ] },
 *         ...
 *       ]
 *     }
 *
 * Doubles are printed with enough digits to round-trip, so the files
 * are byte-stable across runs of a deterministic experiment.
 */

#ifndef DFCM_HARNESS_RESULTS_JSON_HH
#define DFCM_HARNESS_RESULTS_JSON_HH

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel_sweep.hh"

namespace vpred::harness
{

/** One table cell for ResultsJsonWriter::addTable — either a string
 *  (emitted escaped and quoted) or a number (round-trippable). */
class JsonValue
{
  public:
    JsonValue(double v) : num_(v) {}
    JsonValue(std::string s) : text_(std::move(s)), is_text_(true) {}
    JsonValue(const char* s) : text_(s), is_text_(true) {}

    bool isText() const { return is_text_; }
    const std::string& text() const { return text_; }
    double number() const { return num_; }

  private:
    std::string text_;
    double num_ = 0.0;
    bool is_text_ = false;
};

/** Accumulates sweep results and writes results/BENCH_<name>.json. */
class ResultsJsonWriter
{
  public:
    /**
     * @param experiment File stem, e.g. "fig10_fcm_vs_dfcm".
     * @param trace_scale The TraceCache scale the results were run at.
     * @param jobs Worker threads used (1 = serial).
     */
    ResultsJsonWriter(std::string experiment, double trace_scale,
                      unsigned jobs);

    /** Append one configuration's suite result. */
    void add(const PredictorConfig& config, const SuiteResult& suite);

    /** Append every (config, suite) pair of a runGrid() call. */
    void addGrid(const std::vector<PredictorConfig>& configs,
                 const std::vector<SuiteResult>& suites);

    /**
     * Record how the sweep executed (path, trace walks, wall time) —
     * emitted as an "execution" object so BENCH files are comparable
     * across PRs. Typically ParallelSweep::lastExecution().
     */
    void setExecution(const SweepExecution& e) { execution_ = e; }

    /**
     * Record a named scalar metric (e.g. a records/sec throughput);
     * emitted under "metrics" in insertion order.
     */
    void
    addMetric(const std::string& name, double value)
    {
        metrics_.emplace_back(name, value);
    }

    /**
     * Record a named top-level object of numeric key/value pairs
     * (schema_version 5) — e.g. the prediction service's "service"
     * section. Sections are emitted before "metrics" in insertion
     * order; values follow the same round-trippable number format.
     * The name must not collide with a fixed schema key.
     */
    void
    addSection(const std::string& name,
               std::vector<std::pair<std::string, double>> kvs)
    {
        sections_.emplace_back(name, std::move(kvs));
    }

    /**
     * Record a named top-level table (schema_version 7): an object
     * with a "columns" array of names and a "rows" array of
     * equal-length cell arrays, each cell a string or a number —
     * e.g. the service bench's "scaling" grid. Tables are emitted
     * after sections, before "metrics", in insertion order.
     */
    void
    addTable(const std::string& name, std::vector<std::string> columns,
             std::vector<std::vector<JsonValue>> rows)
    {
        tables_.push_back({name, std::move(columns), std::move(rows)});
    }

    /** Serialize to a JSON string ("wall_seconds" = time since
     *  construction, or the setWallSeconds() override). */
    std::string toJson() const;

    /**
     * Write results/BENCH_<experiment>.json (creating results/ if
     * needed). Best effort like TablePrinter::writeCsv — failures
     * warn on stderr and return false, never throw.
     */
    bool write() const;

    /** Override the measured wall time (for reproducible tests). */
    void setWallSeconds(double s) { wall_seconds_override_ = s; }

    std::size_t resultCount() const { return entries_.size(); }

    /** Minimal JSON string escaping (quotes, backslashes, control
     *  characters). */
    static std::string escape(const std::string& s);

  private:
    struct Entry
    {
        PredictorConfig config;
        SuiteResult suite;
    };

    std::string experiment_;
    double trace_scale_;
    unsigned jobs_;
    std::chrono::steady_clock::time_point start_;
    double wall_seconds_override_ = -1.0;
    std::optional<SweepExecution> execution_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<
            std::string, std::vector<std::pair<std::string, double>>>>
            sections_;
    struct Table
    {
        std::string name;
        std::vector<std::string> columns;
        std::vector<std::vector<JsonValue>> rows;
    };
    std::vector<Table> tables_;
    std::vector<Entry> entries_;
};

} // namespace vpred::harness

#endif // DFCM_HARNESS_RESULTS_JSON_HH
