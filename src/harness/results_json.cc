#include "harness/results_json.hh"

#include <array>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace vpred::harness
{
namespace
{

// Shortest representation that round-trips, so deterministic
// experiments produce byte-identical files.
std::string
jsonNumber(double v)
{
    std::array<char, 32> buf;
    const auto [ptr, ec] =
            std::to_chars(buf.data(), buf.data() + buf.size(), v);
    if (ec != std::errc{})
        return "0";
    return std::string(buf.data(), ptr);
}

} // namespace

ResultsJsonWriter::ResultsJsonWriter(std::string experiment,
                                     double trace_scale, unsigned jobs)
    : experiment_(std::move(experiment)),
      trace_scale_(trace_scale),
      jobs_(jobs),
      start_(std::chrono::steady_clock::now())
{
}

void
ResultsJsonWriter::add(const PredictorConfig& config,
                       const SuiteResult& suite)
{
    entries_.push_back({config, suite});
}

void
ResultsJsonWriter::addGrid(const std::vector<PredictorConfig>& configs,
                           const std::vector<SuiteResult>& suites)
{
    for (std::size_t i = 0; i < configs.size() && i < suites.size(); ++i)
        add(configs[i], suites[i]);
}

std::string
ResultsJsonWriter::escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
ResultsJsonWriter::toJson() const
{
    double wall = wall_seconds_override_;
    if (wall < 0.0) {
        wall = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
    }

    std::ostringstream os;
    os << "{\n"
       << "  \"schema_version\": 8,\n"
       << "  \"experiment\": \"" << escape(experiment_) << "\",\n"
       << "  \"trace_scale\": " << jsonNumber(trace_scale_) << ",\n"
       << "  \"jobs\": " << jobs_ << ",\n"
       << "  \"wall_seconds\": " << jsonNumber(wall) << ",\n";
    if (execution_) {
        os << "  \"execution\": { \"path\": \""
           << escape(execution_->path()) << "\", \"cells\": "
           << execution_->cells << ", \"batched_cells\": "
           << execution_->batched_cells << ", \"fused_cells\": "
           << execution_->fused_cells << ", \"virtual_cells\": "
           << execution_->virtual_cells << ", \"trace_walks\": "
           << execution_->trace_walks << ", \"sweep_wall_seconds\": "
           << jsonNumber(execution_->wall_seconds)
           << ", \"trace_store_enabled\": "
           << (execution_->store_enabled ? "true" : "false")
           << ", \"trace_store_hits\": " << execution_->store_hits
           << ", \"trace_store_misses\": " << execution_->store_misses
           << ", \"trace_acquisition_ms\": "
           << jsonNumber(execution_->acquisition_seconds * 1000.0)
           << ", \"simd_backend\": \""
           << escape(execution_->simd_backend)
           << "\", \"vector_width\": " << execution_->vector_width
           << ", \"gather_min_bits\": " << execution_->gather_min_bits
           << ", \"gather_columns\": " << execution_->gather_columns
           << " },\n";
    }
    for (const auto& [name, kvs] : sections_) {
        os << "  \"" << escape(name) << "\": {";
        for (std::size_t i = 0; i < kvs.size(); ++i) {
            os << (i == 0 ? "\n" : ",\n") << "    \""
               << escape(kvs[i].first)
               << "\": " << jsonNumber(kvs[i].second);
        }
        os << "\n  },\n";
    }
    for (const Table& t : tables_) {
        os << "  \"" << escape(t.name) << "\": {\n"
           << "    \"columns\": [";
        for (std::size_t i = 0; i < t.columns.size(); ++i)
            os << (i == 0 ? "" : ", ") << "\"" << escape(t.columns[i])
               << "\"";
        os << "],\n    \"rows\": [";
        for (std::size_t r = 0; r < t.rows.size(); ++r) {
            os << (r == 0 ? "\n" : ",\n") << "      [";
            for (std::size_t c = 0; c < t.rows[r].size(); ++c) {
                const JsonValue& v = t.rows[r][c];
                os << (c == 0 ? "" : ", ");
                if (v.isText())
                    os << "\"" << escape(v.text()) << "\"";
                else
                    os << jsonNumber(v.number());
            }
            os << "]";
        }
        os << (t.rows.empty() ? "]" : "\n    ]") << "\n  },\n";
    }
    if (!metrics_.empty()) {
        os << "  \"metrics\": {";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            os << (i == 0 ? "\n" : ",\n") << "    \""
               << escape(metrics_[i].first)
               << "\": " << jsonNumber(metrics_[i].second);
        }
        os << "\n  },\n";
    }
    os << "  \"results\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry& e = entries_[i];
        os << (i == 0 ? "\n" : ",\n")
           << "    {\n"
           << "      \"predictor\": \"" << escape(e.suite.predictor)
           << "\",\n"
           << "      \"kind\": \"" << escape(kindName(e.config.kind))
           << "\",\n"
           << "      \"l1_bits\": " << e.config.l1_bits << ",\n"
           << "      \"l2_bits\": " << e.config.l2_bits << ",\n"
           << "      \"storage_kbit\": " << jsonNumber(e.suite.storageKbit())
           << ",\n"
           << "      \"accuracy\": " << jsonNumber(e.suite.accuracy())
           << ",\n"
           << "      \"predictions\": " << e.suite.total.predictions
           << ",\n"
           << "      \"correct\": " << e.suite.total.correct << ",\n"
           << "      \"per_workload\": [";
        for (std::size_t w = 0; w < e.suite.per_workload.size(); ++w) {
            const RunResult& r = e.suite.per_workload[w];
            os << (w == 0 ? "\n" : ",\n")
               << "        { \"workload\": \"" << escape(r.workload)
               << "\", \"accuracy\": " << jsonNumber(r.accuracy())
               << ", \"predictions\": " << r.stats.predictions
               << ", \"correct\": " << r.stats.correct << " }";
        }
        os << (e.suite.per_workload.empty() ? "]" : "\n      ]") << "\n"
           << "    }";
    }
    os << (entries_.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

bool
ResultsJsonWriter::write() const
{
    namespace fs = std::filesystem;
    const std::string path = "results/BENCH_" + experiment_ + ".json";
    try {
        fs::create_directories("results");
        std::ofstream out(path);
        if (!out) {
            std::cerr << "warning: cannot write " << path << "\n";
            return false;
        }
        out << toJson();
        return static_cast<bool>(out);
    } catch (const std::exception& e) {
        std::cerr << "warning: JSON write failed for " << path << ": "
                  << e.what() << "\n";
        return false;
    }
}

} // namespace vpred::harness
