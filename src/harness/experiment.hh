/**
 * @file
 * Experiment driver: run predictor configurations over the benchmark
 * suite and aggregate accuracy the way the paper does.
 */

#ifndef DFCM_HARNESS_EXPERIMENT_HH
#define DFCM_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/predictor_factory.hh"
#include "core/stats.hh"
#include "harness/trace_cache.hh"

namespace vpred::harness
{

/** Result of one (workload, predictor-config) run. */
struct RunResult
{
    std::string workload;
    std::string predictor;
    PredictorStats stats;
    std::uint64_t storage_bits = 0;

    double accuracy() const { return stats.accuracy(); }
    double
    storageKbit() const
    {
        return static_cast<double>(storage_bits) / 1024.0;
    }
};

/** Aggregate of one predictor configuration over a benchmark suite. */
struct SuiteResult
{
    std::string predictor;
    std::uint64_t storage_bits = 0;
    PredictorStats total;                 //!< paper's weighted mean
    std::vector<RunResult> per_workload;

    double accuracy() const { return total.accuracy(); }
    double
    storageKbit() const
    {
        return static_cast<double>(storage_bits) / 1024.0;
    }
};

/** Run one configuration over one cached workload trace. */
RunResult runOn(TraceCache& cache, const std::string& workload,
                const PredictorConfig& config);

/**
 * Aggregate per-workload results (already in workload order) into a
 * SuiteResult. The predictor name and storage are derived from
 * @p config, so they are filled in even for an empty run list.
 */
SuiteResult aggregateSuite(const PredictorConfig& config,
                           std::vector<RunResult> runs);

/**
 * Run one configuration over a set of workloads and aggregate.
 * Summing the per-workload counters reproduces the paper's
 * "arithmetic mean weighted by the number of predicted
 * instructions".
 */
SuiteResult runSuite(TraceCache& cache,
                     const std::vector<std::string>& workload_names,
                     const PredictorConfig& config);

/** Shorthand: the paper's eight-benchmark suite. */
SuiteResult runBenchmarks(TraceCache& cache,
                          const PredictorConfig& config);

} // namespace vpred::harness

#endif // DFCM_HARNESS_EXPERIMENT_HH
