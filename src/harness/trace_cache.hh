/**
 * @file
 * Workload trace caching for the experiment harness.
 *
 * The paper regenerates traces on the fly for every predictor
 * configuration; we run each MiniRISC workload once and keep the
 * trace in memory across the (many) predictor configurations of a
 * sweep. When REPRO_TRACE_DIR is set, the cache is additionally
 * backed by the persistent memory-mapped TraceStore, so each trace
 * is generated once per *machine* and afterwards acquired by mmap —
 * getSpan() then aliases the mapped file with no copy at all.
 *
 * The trace scale can be adjusted globally through the
 * REPRO_TRACE_SCALE environment variable (default 1.0) to trade
 * experiment fidelity for runtime; the store keys entries on the
 * exact scale, so changing it never serves a stale trace.
 */

#ifndef DFCM_HARNESS_TRACE_CACHE_HH
#define DFCM_HARNESS_TRACE_CACHE_HH

#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/types.hh"
#include "harness/trace_store.hh"
#include "sim/tracer.hh"

namespace vpred::harness
{

/** Scale factor from REPRO_TRACE_SCALE (default 1.0, accepted range
 *  [0.01, 100]). Malformed or out-of-range values are fatal: one
 *  line on stderr, exit status 2 (core/env_util.hh). */
double envTraceScale();

/**
 * Lazily-built, memoized workload traces, optionally backed by the
 * persistent TraceStore.
 *
 * Safe for concurrent use: each workload entry is populated exactly
 * once under per-key std::call_once semantics, so racing first
 * lookups of the same workload block on one acquisition instead of
 * running the VM twice, and the returned references/spans stay valid
 * for the cache's lifetime (std::map nodes are stable). The VM runs
 * outside the cache-wide lock, so misses on different workloads
 * still proceed in parallel.
 */
class TraceCache
{
  public:
    /** How trace acquisition went so far — store hit/miss counters
     *  and wall time split by path, for BENCH JSON and tools. */
    struct AcquisitionStats
    {
        std::uint64_t generated = 0;     //!< traces produced by the VM
        std::uint64_t store_hits = 0;    //!< traces mapped from disk
        std::uint64_t store_misses = 0;  //!< store lookups that missed
        std::uint64_t store_writes = 0;  //!< entries written back
        double generate_seconds = 0.0;   //!< wall time in the VM
        double load_seconds = 0.0;       //!< wall time mapping/verifying
        bool store_enabled = false;

        double
        seconds() const
        {
            return generate_seconds + load_seconds;
        }
    };

    /** Where an entry's records live (for tests and tools). */
    struct MappingInfo
    {
        bool mapped = false;          //!< true: records alias the store
        const void* data = nullptr;   //!< mapping base (mapped only)
        std::size_t size = 0;         //!< mapping length in bytes
    };

    /**
     * @param scale Trace scale; NaN or <= 0 selects envTraceScale().
     * @param store_dir Trace-store directory; defaults to
     *        REPRO_TRACE_DIR, empty disables the store.
     */
    explicit TraceCache(double scale = 0.0,
                        std::string store_dir = TraceStore::envDir());

    /** Trace of @p workload_name, acquiring it on first use. For
     *  store-mapped entries this materializes an owned copy once;
     *  sweep paths should prefer getSpan(). */
    const ValueTrace& get(const std::string& workload_name);

    /** Full trace result (instruction counts, program output). */
    const sim::TraceResult& getResult(const std::string& workload_name);

    /**
     * Zero-copy view of @p workload_name's records: directly into
     * the store mapping when the entry was mmap'd, into the owned
     * vector otherwise. Valid for the cache's lifetime.
     */
    std::span<const TraceRecord> getSpan(const std::string& workload_name);

    /** Dynamic instruction count of the traced run (no copy). */
    std::uint64_t instructions(const std::string& workload_name);

    /** Program console output of the traced run (no copy). */
    const std::string& programOutput(const std::string& workload_name);

    /**
     * Acquire every named workload that is not yet cached. Misses
     * are dispatched in parallel onto a thread pool (REPRO_JOBS
     * workers) — cold trace generation is the serial bottleneck of
     * every driver otherwise. Duplicate names are acquired once.
     */
    void prewarm(const std::vector<std::string>& workload_names);

    double scale() const { return scale_; }

    /** True iff a persistent store directory is configured. */
    bool storeEnabled() const { return store_.enabled(); }

    const TraceStore& store() const { return store_; }

    /** Snapshot of the acquisition counters (thread-safe). */
    AcquisitionStats acquisition() const;

    /** How @p workload_name's entry is backed; acquires on first
     *  use like every other lookup. */
    MappingInfo mappingInfo(const std::string& workload_name);

  private:
    struct Entry
    {
        std::once_flag once;             //!< guards populate()
        std::once_flag materialize_once; //!< guards owned-copy build
        std::optional<MappedTrace> mapped;
        std::optional<sim::TraceResult> owned;
        std::span<const TraceRecord> span;
    };

    Entry& acquire(const std::string& workload_name);
    void populate(Entry& entry, const std::string& workload_name);
    const sim::TraceResult& materialized(Entry& entry);

    double scale_;
    TraceStore store_;
    mutable std::mutex mutex_;
    std::map<std::string, Entry> cache_;
    AcquisitionStats stats_;
};

} // namespace vpred::harness

#endif // DFCM_HARNESS_TRACE_CACHE_HH
