/**
 * @file
 * Workload trace caching for the experiment harness.
 *
 * The paper regenerates traces on the fly for every predictor
 * configuration; we run each MiniRISC workload once and keep the
 * trace in memory across the (many) predictor configurations of a
 * sweep. The trace scale can be adjusted globally through the
 * REPRO_TRACE_SCALE environment variable (default 1.0) to trade
 * experiment fidelity for runtime.
 */

#ifndef DFCM_HARNESS_TRACE_CACHE_HH
#define DFCM_HARNESS_TRACE_CACHE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hh"
#include "sim/tracer.hh"

namespace vpred::harness
{

/** Scale factor from REPRO_TRACE_SCALE (default 1.0, clamped to
 *  [0.01, 100]). Unparsable values warn once on stderr and fall back
 *  to 1.0. */
double envTraceScale();

/**
 * Lazily-built, memoized workload traces.
 *
 * Safe for concurrent use: lookups and insertions are guarded by a
 * mutex, and because std::map nodes are stable the returned
 * references stay valid while other threads insert. The VM runs
 * *outside* the lock, so racing first lookups of the same workload
 * may duplicate (deterministic) work; parallel sweeps avoid this by
 * calling prewarm() up front so the hot path is pure lookup.
 */
class TraceCache
{
  public:
    /** @param scale Trace scale; NaN or <= 0 selects envTraceScale(). */
    explicit TraceCache(double scale = 0.0);

    /** Trace of @p workload_name, running the VM on first use. */
    const ValueTrace& get(const std::string& workload_name);

    /** Full trace result (instruction counts, program output). */
    const sim::TraceResult& getResult(const std::string& workload_name);

    /** Run every named workload that is not yet cached. */
    void prewarm(const std::vector<std::string>& workload_names);

    double scale() const { return scale_; }

  private:
    double scale_;
    mutable std::mutex mutex_;
    std::map<std::string, sim::TraceResult> cache_;
};

} // namespace vpred::harness

#endif // DFCM_HARNESS_TRACE_CACHE_HH
