#include "harness/batch_sweep.hh"

#include <map>
#include <tuple>

#include "core/env_util.hh"

namespace vpred::harness
{

bool
batchSweepEnabled()
{
    // Anything but a recognized boolean is fatal: REPRO_BATCH_SWEEP
    // used to treat every unrecognized string ("fales", "OFF ") as
    // "on", silently running the path the user tried to disable.
    return envFlagOr("REPRO_BATCH_SWEEP", true);
}

bool
batchableConfig(const PredictorConfig& config)
{
    // value_bits <= 32 mirrors the kernels' narrow level-2 storage.
    return (config.kind == PredictorKind::Fcm ||
            config.kind == PredictorKind::Dfcm) &&
           config.update_delay == 0 && config.value_bits <= 32;
}

BatchPlan
planBatchSweep(const std::vector<PredictorConfig>& configs, bool enabled)
{
    BatchPlan plan;
    if (!enabled) {
        plan.singles.resize(configs.size());
        for (std::size_t i = 0; i < configs.size(); ++i)
            plan.singles[i] = i;
        return plan;
    }

    // Group by everything but l2_bits, preserving first-appearance
    // order so the plan (and therefore any scheduling) is
    // deterministic. stride_bits only matters for the DFCM.
    using Key = std::tuple<PredictorKind, unsigned, unsigned, unsigned,
                           unsigned>;
    std::map<Key, std::size_t> group_of;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const PredictorConfig& c = configs[i];
        if (!batchableConfig(c)) {
            plan.singles.push_back(i);
            continue;
        }
        const unsigned stride = c.kind == PredictorKind::Dfcm
            ? c.stride_bits : 0;
        const Key key{c.kind, c.l1_bits, c.value_bits, stride,
                      c.hash_shift};
        auto [it, inserted] =
                group_of.try_emplace(key, plan.groups.size());
        if (inserted) {
            BatchGroup g;
            g.kind = c.kind;
            g.geom.l1_bits = c.l1_bits;
            g.geom.value_bits = c.value_bits;
            g.geom.stride_bits = c.stride_bits;
            g.geom.hash_shift = c.hash_shift;
            plan.groups.push_back(std::move(g));
        }
        BatchGroup& g = plan.groups[it->second];
        g.geom.l2_bits.push_back(c.l2_bits);
        g.config_indices.push_back(i);
    }

    // A single-column group would just be the per-config walk with
    // extra bookkeeping; demote it.
    std::vector<BatchGroup> kept;
    for (BatchGroup& g : plan.groups) {
        if (g.config_indices.size() >= 2)
            kept.push_back(std::move(g));
        else
            plan.singles.push_back(g.config_indices.front());
    }
    plan.groups = std::move(kept);
    return plan;
}

std::vector<PredictorStats>
runBatchGroup(const BatchGroup& group, std::span<const TraceRecord> trace)
{
    if (group.kind == PredictorKind::Fcm) {
        MultiGeomFcmKernel kernel(group.geom);
        return kernel.runTrace(trace);
    }
    MultiGeomDfcmKernel kernel(group.geom);
    return kernel.runTrace(trace);
}

} // namespace vpred::harness
