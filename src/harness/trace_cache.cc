#include "harness/trace_cache.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "workloads/workload.hh"

namespace vpred::harness
{

double
envTraceScale()
{
    const char* env = std::getenv("REPRO_TRACE_SCALE");
    if (env == nullptr)
        return 1.0;
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0') {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::cerr << "warning: REPRO_TRACE_SCALE='" << env
                      << "' is not a number; using 1.0\n";
        }
        return 1.0;
    }
    if (v <= 0.0)
        return 1.0;
    return std::clamp(v, 0.01, 100.0);
}

TraceCache::TraceCache(double scale)
    : scale_(scale > 0.0 ? scale : envTraceScale())
{
}

const sim::TraceResult&
TraceCache::getResult(const std::string& workload_name)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(workload_name);
        if (it != cache_.end())
            return it->second;
    }
    // Miss: run the VM without holding the lock so concurrent lookups
    // of *other* workloads proceed. Racing misses on the same name
    // compute the same (deterministic) result; try_emplace keeps the
    // first and discards the rest.
    sim::TraceResult result = workloads::runWorkload(workload_name, scale_);
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.try_emplace(workload_name, std::move(result))
            .first->second;
}

const ValueTrace&
TraceCache::get(const std::string& workload_name)
{
    return getResult(workload_name).trace;
}

void
TraceCache::prewarm(const std::vector<std::string>& workload_names)
{
    for (const std::string& name : workload_names)
        getResult(name);
}

} // namespace vpred::harness
