#include "harness/trace_cache.hh"

#include <algorithm>
#include <cstdlib>

#include "workloads/workload.hh"

namespace vpred::harness
{

double
envTraceScale()
{
    const char* env = std::getenv("REPRO_TRACE_SCALE");
    if (env == nullptr)
        return 1.0;
    const double v = std::atof(env);
    if (v <= 0.0)
        return 1.0;
    return std::clamp(v, 0.01, 100.0);
}

TraceCache::TraceCache(double scale)
    : scale_(scale > 0.0 ? scale : envTraceScale())
{
}

const sim::TraceResult&
TraceCache::getResult(const std::string& workload_name)
{
    auto it = cache_.find(workload_name);
    if (it == cache_.end()) {
        it = cache_.emplace(workload_name,
                            workloads::runWorkload(workload_name, scale_))
                .first;
    }
    return it->second;
}

const ValueTrace&
TraceCache::get(const std::string& workload_name)
{
    return getResult(workload_name).trace;
}

} // namespace vpred::harness
