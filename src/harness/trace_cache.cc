#include "harness/trace_cache.hh"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <set>

#include "core/env_util.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/workload.hh"

namespace vpred::harness
{

double
envTraceScale()
{
    // Malformed or out-of-range values are fatal (exit 2): a scale
    // that silently fell back to 1.0 used to produce full-size runs
    // the user believed were scaled down.
    return envDoubleOr("REPRO_TRACE_SCALE", 1.0, 0.01, 100.0);
}

TraceCache::TraceCache(double scale, std::string store_dir)
    : scale_(scale > 0.0 ? scale : envTraceScale()),
      store_(std::move(store_dir))
{
    stats_.store_enabled = store_.enabled();
}

TraceCache::Entry&
TraceCache::acquire(const std::string& workload_name)
{
    Entry* entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry = &cache_[workload_name];
    }
    // Per-key once semantics: concurrent first lookups of the same
    // workload block here while exactly one of them acquires the
    // trace — the VM never runs twice for one key, and the slow work
    // happens outside the cache-wide lock so other keys proceed.
    std::call_once(entry->once, [&] { populate(*entry, workload_name); });
    return *entry;
}

void
TraceCache::populate(Entry& entry, const std::string& workload_name)
{
    using clock = std::chrono::steady_clock;

    if (store_.enabled()) {
        const auto t0 = clock::now();
        if (auto mapped = store_.load(workload_name, scale_)) {
            entry.mapped = std::move(mapped);
            entry.span = entry.mapped->records();
            const double dt =
                    std::chrono::duration<double>(clock::now() - t0)
                            .count();
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.store_hits;
            stats_.load_seconds += dt;
            return;
        }
    }

    const auto t0 = clock::now();
    sim::TraceResult result = workloads::runWorkload(workload_name, scale_);
    const double dt =
            std::chrono::duration<double>(clock::now() - t0).count();

    bool wrote = false;
    if (store_.enabled()) {
        try {
            store_.store(workload_name, scale_, result);
            wrote = true;
        } catch (const TraceIoError& e) {
            std::cerr << "warning: cannot persist trace for '"
                      << workload_name << "': " << e.what() << "\n";
        }
    }

    entry.owned = std::move(result);
    entry.span = {entry.owned->trace.data(), entry.owned->trace.size()};

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.generated;
    stats_.generate_seconds += dt;
    if (store_.enabled()) {
        ++stats_.store_misses;
        if (wrote)
            ++stats_.store_writes;
    }
}

const sim::TraceResult&
TraceCache::materialized(Entry& entry)
{
    // Mapped entries carry no owned vector; build it at most once,
    // on demand (consumers needing whole-TraceResult semantics are
    // rare — sweeps go through getSpan). Generated entries already
    // own their result and the lambda is a no-op.
    std::call_once(entry.materialize_once, [&] {
        if (entry.owned)
            return;
        sim::TraceResult result;
        result.trace.assign(entry.span.begin(), entry.span.end());
        result.instructions = entry.mapped->instructions();
        result.output = entry.mapped->output();
        entry.owned = std::move(result);
    });
    return *entry.owned;
}

const sim::TraceResult&
TraceCache::getResult(const std::string& workload_name)
{
    return materialized(acquire(workload_name));
}

const ValueTrace&
TraceCache::get(const std::string& workload_name)
{
    return getResult(workload_name).trace;
}

std::span<const TraceRecord>
TraceCache::getSpan(const std::string& workload_name)
{
    return acquire(workload_name).span;
}

std::uint64_t
TraceCache::instructions(const std::string& workload_name)
{
    Entry& entry = acquire(workload_name);
    // `mapped` is immutable after populate(), so this read is safe
    // even while another thread materializes an owned copy.
    return entry.mapped ? entry.mapped->instructions()
                        : entry.owned->instructions;
}

const std::string&
TraceCache::programOutput(const std::string& workload_name)
{
    Entry& entry = acquire(workload_name);
    return entry.mapped ? entry.mapped->output() : entry.owned->output;
}

void
TraceCache::prewarm(const std::vector<std::string>& workload_names)
{
    const std::set<std::string> unique(workload_names.begin(),
                                       workload_names.end());
    std::vector<std::string> names(unique.begin(), unique.end());
    if (names.empty())
        return;
    const unsigned jobs =
            std::min<unsigned>(envJobs(),
                               static_cast<unsigned>(names.size()));
    if (jobs <= 1) {
        for (const std::string& name : names)
            acquire(name);
        return;
    }
    // Cold acquisition goes wide: every missing workload VM run (or
    // store mapping) is an independent task. Entries already cached
    // return immediately, and per-key call_once keeps racing names
    // deduplicated.
    ThreadPool pool(jobs);
    pool.parallelFor(names.size(),
                     [&](std::size_t i) { acquire(names[i]); });
}

TraceCache::AcquisitionStats
TraceCache::acquisition() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

TraceCache::MappingInfo
TraceCache::mappingInfo(const std::string& workload_name)
{
    Entry& entry = acquire(workload_name);
    if (!entry.mapped)
        return {};
    return {true, entry.mapped->mappingData(),
            entry.mapped->mappingSize()};
}

} // namespace vpred::harness
