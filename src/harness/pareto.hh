/**
 * @file
 * Pareto-frontier construction for (size, accuracy) points, as used
 * in the paper's Figure 11(b): keep only configurations with higher
 * accuracy than every configuration of the same or smaller size.
 */

#ifndef DFCM_HARNESS_PARETO_HH
#define DFCM_HARNESS_PARETO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vpred::harness
{

/** One candidate predictor configuration. */
struct ParetoPoint
{
    double size_kbit = 0.0;
    double accuracy = 0.0;
    std::string label;

    bool operator==(const ParetoPoint&) const = default;
};

/**
 * Return the Pareto-optimal subset of @p points, sorted by size
 * ascending (accuracy strictly increasing along the frontier).
 */
std::vector<ParetoPoint> paretoFrontier(std::vector<ParetoPoint> points);

} // namespace vpred::harness

#endif // DFCM_HARNESS_PARETO_HH
