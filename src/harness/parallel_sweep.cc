#include "harness/parallel_sweep.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>

#include "workloads/workload.hh"

namespace vpred::harness
{

unsigned
envJobs()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const char* env = std::getenv("REPRO_JOBS");
    if (env == nullptr)
        return hw;
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::cerr << "warning: REPRO_JOBS='" << env
                      << "' is not a number; using " << hw << "\n";
        }
        return hw;
    }
    if (v == 0)
        return hw;
    return static_cast<unsigned>(std::min(v, 512ul));
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : envJobs())
{
    if (jobs_ > 1) {
        workers_.reserve(jobs_);
        for (unsigned i = 0; i < jobs_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [&] {
            return stop_ ||
                   (task_ != nullptr && generation_ != seen_generation);
        });
        if (stop_)
            return;
        seen_generation = generation_;
        // Claim cells under the lock: a cell is a whole trace run, so
        // contention is negligible, and stale claims against a
        // superseded batch become impossible.
        while (task_ != nullptr && generation_ == seen_generation &&
               next_ < task_size_) {
            const std::size_t i = next_++;
            const std::function<void(std::size_t)>* task = task_;
            lock.unlock();
            std::exception_ptr err;
            try {
                (*task)(i);
            } catch (...) {
                err = std::current_exception();
            }
            lock.lock();
            if (err && !error_)
                error_ = err;
            if (--pending_ == 0)
                done_cv_.notify_one();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        // jobs == 1: deterministic inline execution, no threads.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    task_ = &fn;
    task_size_ = n;
    next_ = 0;
    pending_ = n;
    error_ = nullptr;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
    task_size_ = 0;
    if (error_)
        std::rethrow_exception(error_);
}

ParallelSweep::ParallelSweep(TraceCache& cache, unsigned jobs)
    : cache_(cache), pool_(jobs)
{
}

std::vector<SuiteResult>
ParallelSweep::runGrid(const std::vector<PredictorConfig>& configs,
                       const std::vector<std::string>& workload_names)
{
    // Pre-warm the trace cache (in parallel — trace generation is the
    // serial bottleneck otherwise) so sweep cells only ever *read* it.
    const std::set<std::string> unique(workload_names.begin(),
                                       workload_names.end());
    const std::vector<std::string> warm(unique.begin(), unique.end());
    pool_.parallelFor(warm.size(),
                      [&](std::size_t i) { cache_.getResult(warm[i]); });

    // One task per (config, workload) cell; results land at fixed
    // indices so gathering preserves the serial grid order.
    const std::size_t n_workloads = workload_names.size();
    std::vector<RunResult> cells(configs.size() * n_workloads);
    pool_.parallelFor(cells.size(), [&](std::size_t i) {
        cells[i] = runOn(cache_, workload_names[i % n_workloads],
                         configs[i / n_workloads]);
    });

    std::vector<SuiteResult> suites;
    suites.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::vector<RunResult> runs(
                std::make_move_iterator(cells.begin() + c * n_workloads),
                std::make_move_iterator(cells.begin() +
                                        (c + 1) * n_workloads));
        suites.push_back(aggregateSuite(configs[c], std::move(runs)));
    }
    return suites;
}

std::vector<SuiteResult>
ParallelSweep::runGrid(const std::vector<PredictorConfig>& configs)
{
    return runGrid(configs, workloads::benchmarkNames());
}

} // namespace vpred::harness
