#include "harness/parallel_sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <set>

#include "core/cpu_features.hh"
#include "core/parse_util.hh"
#include "harness/batch_sweep.hh"
#include "workloads/workload.hh"

namespace vpred::harness
{

std::string
SweepExecution::path() const
{
    if (cells == 0)
        return "empty";
    if (batched_cells == cells)
        return "multi-geometry";
    if (fused_cells == cells)
        return "fused";
    if (virtual_cells == cells)
        return "virtual";
    return "mixed";
}

unsigned
envJobs()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const char* env = std::getenv("REPRO_JOBS");
    if (env == nullptr)
        return hw;
    const std::optional<unsigned long long> v = parseUInt(env);
    if (!v) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::cerr << "warning: REPRO_JOBS='" << env
                      << "' is not a number; using " << hw << "\n";
        }
        return hw;
    }
    if (*v == 0)
        return hw;
    return static_cast<unsigned>(std::min(*v, 512ull));
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : envJobs())
{
    if (jobs_ > 1) {
        workers_.reserve(jobs_);
        for (unsigned i = 0; i < jobs_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [&] {
            return stop_ ||
                   (task_ != nullptr && generation_ != seen_generation);
        });
        if (stop_)
            return;
        seen_generation = generation_;
        // Claim cells under the lock: a cell is a whole trace run, so
        // contention is negligible, and stale claims against a
        // superseded batch become impossible.
        while (task_ != nullptr && generation_ == seen_generation &&
               next_ < task_size_) {
            const std::size_t i = next_++;
            const std::function<void(std::size_t)>* task = task_;
            lock.unlock();
            std::exception_ptr err;
            try {
                (*task)(i);
            } catch (...) {
                err = std::current_exception();
            }
            lock.lock();
            if (err && !error_)
                error_ = err;
            if (--pending_ == 0)
                done_cv_.notify_one();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        // jobs == 1: deterministic inline execution, no threads.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    task_ = &fn;
    task_size_ = n;
    next_ = 0;
    pending_ = n;
    error_ = nullptr;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
    task_size_ = 0;
    if (error_)
        std::rethrow_exception(error_);
}

ParallelSweep::ParallelSweep(TraceCache& cache, unsigned jobs)
    : cache_(cache), pool_(jobs)
{
}

namespace
{

/** True iff the per-config path for @p c runs through a fused
 *  runTraceSpan override rather than the generic virtual loop. */
bool
fusedConfig(const PredictorConfig& c)
{
    if (c.update_delay > 0)
        return false;
    switch (c.kind) {
      case PredictorKind::Lvp:
      case PredictorKind::Stride:
      case PredictorKind::TwoDelta:
      case PredictorKind::Fcm:
      case PredictorKind::Dfcm:
        return true;
      default:
        return false;
    }
}

} // namespace

std::vector<SuiteResult>
ParallelSweep::runGrid(const std::vector<PredictorConfig>& configs,
                       const std::vector<std::string>& workload_names)
{
    const auto start = std::chrono::steady_clock::now();
    const TraceCache::AcquisitionStats acq_before = cache_.acquisition();

    // Pre-warm the trace cache (in parallel — trace generation is the
    // serial bottleneck otherwise) so sweep cells only ever *read* it.
    // getSpan() keeps store-mapped traces zero-copy: the sweep runs
    // straight over the mmap'd records.
    const std::set<std::string> unique(workload_names.begin(),
                                       workload_names.end());
    const std::vector<std::string> warm(unique.begin(), unique.end());
    pool_.parallelFor(warm.size(),
                      [&](std::size_t i) { cache_.getSpan(warm[i]); });

    // Route l2_bits columns through the multi-geometry kernels and
    // the rest through the per-config path. Results land at fixed
    // indices, so gathering preserves the serial grid order and the
    // output is bit-identical whichever way a cell executed.
    const BatchPlan plan = planBatchSweep(configs);
    const std::size_t n_workloads = workload_names.size();
    std::vector<RunResult> cells(configs.size() * n_workloads);

    // Probe name/storage for batched configs up front (runOn derives
    // them from its live predictor; the kernel has no single one).
    struct ColumnMeta
    {
        std::string name;
        std::uint64_t storage_bits = 0;
    };
    std::vector<ColumnMeta> meta(configs.size());
    for (const BatchGroup& g : plan.groups) {
        for (std::size_t i : g.config_indices) {
            const auto probe = makePredictor(configs[i]);
            meta[i] = {probe->name(), probe->storageBits()};
        }
    }

    // One task per (group × workload) walk plus one per leftover
    // (config × workload) cell; dynamic claiming absorbs the uneven
    // costs (a group walk covers a whole column of cells).
    const std::size_t n_units = plan.groups.size() + plan.singles.size();
    pool_.parallelFor(n_units * n_workloads, [&](std::size_t t) {
        const std::size_t unit = t / n_workloads;
        const std::size_t w = t % n_workloads;
        if (unit < plan.groups.size()) {
            const BatchGroup& g = plan.groups[unit];
            const std::vector<PredictorStats> stats =
                    runBatchGroup(g, cache_.getSpan(workload_names[w]));
            for (std::size_t j = 0; j < g.config_indices.size(); ++j) {
                const std::size_t i = g.config_indices[j];
                RunResult& r = cells[i * n_workloads + w];
                r.workload = workload_names[w];
                r.predictor = meta[i].name;
                r.storage_bits = meta[i].storage_bits;
                r.stats = stats[j];
            }
        } else {
            const std::size_t i =
                    plan.singles[unit - plan.groups.size()];
            cells[i * n_workloads + w] =
                    runOn(cache_, workload_names[w], configs[i]);
        }
    });

    std::vector<SuiteResult> suites;
    suites.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::vector<RunResult> runs(
                std::make_move_iterator(cells.begin() + c * n_workloads),
                std::make_move_iterator(cells.begin() +
                                        (c + 1) * n_workloads));
        suites.push_back(aggregateSuite(configs[c], std::move(runs)));
    }

    execution_ = SweepExecution{};
    execution_.cells = cells.size();
    execution_.batched_cells = plan.batchedConfigs() * n_workloads;
    for (std::size_t i : plan.singles) {
        (fusedConfig(configs[i]) ? execution_.fused_cells
                                 : execution_.virtual_cells) +=
                n_workloads;
    }
    execution_.trace_walks = n_units * n_workloads;
    execution_.jobs = pool_.jobs();
    execution_.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                    .count();

    // Trace-acquisition deltas over this call: how many traces came
    // from the persistent store vs. the VM, and the wall time spent
    // acquiring them (usually all inside the prewarm above).
    const TraceCache::AcquisitionStats acq_after = cache_.acquisition();
    execution_.store_enabled = acq_after.store_enabled;
    execution_.store_hits = acq_after.store_hits - acq_before.store_hits;
    execution_.store_misses =
            acq_after.store_misses - acq_before.store_misses;
    execution_.acquisition_seconds =
            acq_after.seconds() - acq_before.seconds();

    // Record the SIMD backend the multi-geometry kernels dispatched
    // to (scalar when no rows batched — the per-config paths never
    // vectorize).
    const SimdBackend backend = execution_.batched_cells > 0
            ? activeSimdBackend()
            : SimdBackend::Scalar;
    execution_.simd_backend = simdBackendName(backend);
    execution_.vector_width = simdVectorBits(backend);
    return suites;
}

std::vector<SuiteResult>
ParallelSweep::runGrid(const std::vector<PredictorConfig>& configs)
{
    return runGrid(configs, workloads::benchmarkNames());
}

} // namespace vpred::harness
