#include "harness/sweep.hh"

namespace vpred::harness
{

const std::vector<unsigned>&
paperL2Bits()
{
    static const std::vector<unsigned> bits = {8, 10, 12, 14, 16, 18, 20};
    return bits;
}

const std::vector<unsigned>&
paperFcmL1Bits()
{
    static const std::vector<unsigned> bits = {0, 4, 6, 8, 10, 12, 14, 16};
    return bits;
}

const std::vector<unsigned>&
paperDfcmL1Bits()
{
    static const std::vector<unsigned> bits = {10, 12, 14, 16};
    return bits;
}

const std::vector<unsigned>&
paperSingleTableBits()
{
    static const std::vector<unsigned> bits = {6, 8, 10, 12, 14, 16};
    return bits;
}

const std::vector<unsigned>&
paperUpdateDelays()
{
    static const std::vector<unsigned> delays = {0, 16, 32, 64, 128, 256,
                                                 512};
    return delays;
}

std::vector<PredictorConfig>
twoLevelGrid(PredictorKind kind, const std::vector<unsigned>& l1_bits,
             const std::vector<unsigned>& l2_bits)
{
    std::vector<PredictorConfig> grid;
    grid.reserve(l1_bits.size() * l2_bits.size());
    for (unsigned l1 : l1_bits) {
        for (unsigned l2 : l2_bits) {
            PredictorConfig cfg;
            cfg.kind = kind;
            cfg.l1_bits = l1;
            cfg.l2_bits = l2;
            grid.push_back(cfg);
        }
    }
    return grid;
}

} // namespace vpred::harness
