/**
 * @file
 * MiniRISC instruction set.
 *
 * MiniRISC is a 32-bit MIPS-like ISA used as this reproduction's
 * substitute for SimpleScalar's MIPS (DESIGN.md Section 2). It is a
 * Harvard-style *decoded* representation: programs are vectors of
 * Instr structs, not encoded words, because the experiments only
 * need architecturally-correct value streams, never binary images.
 *
 * Conventions:
 *  - 32 general registers, r0 hard-wired to zero;
 *  - pc is an instruction index; register-held code addresses are
 *    byte addresses (index * 4), so jump tables work naturally;
 *  - data lives at byte addresses >= Program::kDataBase, which keeps
 *    code and data address ranges disjoint.
 */

#ifndef DFCM_SIM_ISA_HH
#define DFCM_SIM_ISA_HH

#include <cstdint>
#include <string>

namespace vpred::sim
{

/** MiniRISC opcodes (decoded form). */
enum class Op : std::uint8_t
{
    // ALU, register-register
    Add, Sub, Mul, Div, Divu, Rem, Remu,
    And, Or, Xor, Nor,
    Sllv, Srlv, Srav,
    Slt, Sltu,
    // ALU, register-immediate
    Addi, Andi, Ori, Xori, Slti, Sltiu,
    Slli, Srli, Srai,
    Lui,
    Li,      //!< rd = imm (assembler pseudo li/la, full 32-bit)
    // memory
    Lw, Lh, Lhu, Lb, Lbu,
    Sw, Sh, Sb,
    // control
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    J, Jal, Jr, Jalr,
    Syscall,
    Nop,
};

/** Total number of opcodes. */
constexpr unsigned kOpCount = static_cast<unsigned>(Op::Nop) + 1;

/** One decoded MiniRISC instruction. */
struct Instr
{
    Op op = Op::Nop;
    std::uint8_t rd = 0;  //!< destination register
    std::uint8_t rs = 0;  //!< first source register
    std::uint8_t rt = 0;  //!< second source register
    /**
     * Immediate: ALU immediate operand, memory offset, or branch /
     * jump target (an instruction index for Beq..Jal).
     */
    std::int64_t imm = 0;

    bool operator==(const Instr&) const = default;
};

/** Mnemonic of an opcode ("addi", "lw", ...). */
const char* opName(Op op);

/** True for branch and jump opcodes (and syscall), which the paper
 *  excludes from value prediction. */
bool isControl(Op op);

/** True for load opcodes (predicted, per the paper). */
bool isLoad(Op op);

/** True for store opcodes (no register result). */
bool isStore(Op op);

/** True iff the instruction writes an integer register. */
bool writesRegister(const Instr& instr);

/**
 * Collect the architectural registers the instruction *reads* into
 * @p out (at most 2). r0 is never reported (it is constant).
 *
 * @return The number of source registers written to @p out.
 */
unsigned instrSources(const Instr& instr, std::uint8_t out[2]);

/** Render an instruction for diagnostics, e.g. "addi r8, r8, 1". */
std::string disassemble(const Instr& instr);

/** Number of general registers. */
constexpr unsigned kNumRegs = 32;

/** Conventional register numbers (MIPS O32 names). */
namespace reg
{
constexpr unsigned zero = 0;
constexpr unsigned at = 1;
constexpr unsigned v0 = 2;
constexpr unsigned v1 = 3;
constexpr unsigned a0 = 4;
constexpr unsigned a1 = 5;
constexpr unsigned a2 = 6;
constexpr unsigned a3 = 7;
constexpr unsigned t0 = 8;   // t0..t7 = 8..15
constexpr unsigned s0 = 16;  // s0..s7 = 16..23
constexpr unsigned t8 = 24;
constexpr unsigned t9 = 25;
constexpr unsigned k0 = 26;
constexpr unsigned k1 = 27;
constexpr unsigned gp = 28;
constexpr unsigned sp = 29;
constexpr unsigned fp = 30;
constexpr unsigned ra = 31;
} // namespace reg

/** Syscall service numbers (in $v0 at the syscall). */
namespace sys
{
constexpr std::uint32_t printInt = 1;   //!< print $a0 as signed int
constexpr std::uint32_t printStr = 4;   //!< print NUL-terminated @$a0
constexpr std::uint32_t exit = 10;      //!< halt the machine
constexpr std::uint32_t printChar = 11; //!< print $a0 as a character
constexpr std::uint32_t printHex = 34;  //!< print $a0 as 0x%08x
} // namespace sys

} // namespace vpred::sim

#endif // DFCM_SIM_ISA_HH
