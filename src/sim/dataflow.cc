#include "sim/dataflow.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <unordered_map>

#include "sim/tracer.hh"

namespace vpred::sim
{

IlpResult
dataflowLimit(const Program& program, PredictionModel model,
              ValuePredictor* predictor, std::uint64_t max_steps,
              std::span<const std::pair<unsigned, std::uint32_t>> init_regs,
              bool memory_deps)
{
    assert(model != PredictionModel::Real || predictor != nullptr);

    Machine::Config cfg;
    if (max_steps != 0)
        cfg.max_steps = max_steps;
    Machine machine(program, cfg);
    for (const auto& [r, v] : init_regs)
        machine.setReg(r, v);

    // Completion time of the last writer of each register / word.
    std::array<std::uint64_t, kNumRegs> reg_ready{};
    std::unordered_map<std::uint32_t, std::uint64_t> mem_ready;

    IlpResult result;
    while (!machine.halted()) {
        if (machine.instructionsExecuted() >= cfg.max_steps)
            throw VmError("dataflow step budget exhausted");

        const Instr& instr = program.text[machine.pc()];
        std::uint8_t srcs[2];
        const unsigned n_srcs = instrSources(instr, srcs);

        const StepInfo info = machine.step();
        ++result.instructions;

        std::uint64_t start = 0;
        for (unsigned i = 0; i < n_srcs; ++i)
            start = std::max(start, reg_ready[srcs[i]]);
        if (memory_deps && isLoad(info.op)) {
            const auto it = mem_ready.find(info.mem_addr & ~3u);
            if (it != mem_ready.end())
                start = std::max(start, it->second);
        }
        const std::uint64_t complete = start + 1;
        result.critical_path = std::max(result.critical_path, complete);

        if (memory_deps && isStore(info.op))
            mem_ready[info.mem_addr & ~3u] = complete;

        if (info.wrote_reg) {
            bool value_known_early = false;
            if (isPredicted(info)) {
                switch (model) {
                  case PredictionModel::None:
                    break;
                  case PredictionModel::Perfect:
                    ++result.predicted;
                    ++result.correct;
                    value_known_early = true;
                    break;
                  case PredictionModel::Real: {
                    ++result.predicted;
                    const bool ok = predictor->predictAndUpdate(
                            info.pc, info.value);
                    if (ok) {
                        ++result.correct;
                        value_known_early = true;
                    }
                    break;
                  }
                }
            }
            // A correctly-predicted value is available to consumers
            // immediately; otherwise at the producer's completion.
            reg_ready[info.rd] = value_known_early ? 0 : complete;
        }
    }
    return result;
}

} // namespace vpred::sim
