#include "sim/isa.hh"

#include <sstream>

namespace vpred::sim
{

const char*
opName(Op op)
{
    switch (op) {
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Divu: return "divu";
      case Op::Rem: return "rem";
      case Op::Remu: return "remu";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Nor: return "nor";
      case Op::Sllv: return "sllv";
      case Op::Srlv: return "srlv";
      case Op::Srav: return "srav";
      case Op::Slt: return "slt";
      case Op::Sltu: return "sltu";
      case Op::Addi: return "addi";
      case Op::Andi: return "andi";
      case Op::Ori: return "ori";
      case Op::Xori: return "xori";
      case Op::Slti: return "slti";
      case Op::Sltiu: return "sltiu";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Srai: return "srai";
      case Op::Lui: return "lui";
      case Op::Li: return "li";
      case Op::Lw: return "lw";
      case Op::Lh: return "lh";
      case Op::Lhu: return "lhu";
      case Op::Lb: return "lb";
      case Op::Lbu: return "lbu";
      case Op::Sw: return "sw";
      case Op::Sh: return "sh";
      case Op::Sb: return "sb";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Bltu: return "bltu";
      case Op::Bgeu: return "bgeu";
      case Op::J: return "j";
      case Op::Jal: return "jal";
      case Op::Jr: return "jr";
      case Op::Jalr: return "jalr";
      case Op::Syscall: return "syscall";
      case Op::Nop: return "nop";
    }
    return "?";
}

bool
isControl(Op op)
{
    switch (op) {
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
      case Op::J: case Op::Jal: case Op::Jr: case Op::Jalr:
      case Op::Syscall:
        return true;
      default:
        return false;
    }
}

bool
isLoad(Op op)
{
    switch (op) {
      case Op::Lw: case Op::Lh: case Op::Lhu: case Op::Lb: case Op::Lbu:
        return true;
      default:
        return false;
    }
}

bool
isStore(Op op)
{
    return op == Op::Sw || op == Op::Sh || op == Op::Sb;
}

bool
writesRegister(const Instr& instr)
{
    if (instr.rd == 0)
        return false;
    switch (instr.op) {
      case Op::Sw: case Op::Sh: case Op::Sb:
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
      case Op::J: case Op::Jr:
      case Op::Syscall: case Op::Nop:
        return false;
      // Jal/Jalr write the link register; they are register writes
      // but remain excluded from value prediction via isControl().
      default:
        return true;
    }
}

unsigned
instrSources(const Instr& instr, std::uint8_t out[2])
{
    bool reads_rs = false, reads_rt = false;
    switch (instr.op) {
      // rs and rt
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Divu: case Op::Rem: case Op::Remu:
      case Op::And: case Op::Or: case Op::Xor: case Op::Nor:
      case Op::Sllv: case Op::Srlv: case Op::Srav:
      case Op::Slt: case Op::Sltu:
      case Op::Sw: case Op::Sh: case Op::Sb:
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
        reads_rs = reads_rt = true;
        break;
      // rs only
      case Op::Addi: case Op::Andi: case Op::Ori: case Op::Xori:
      case Op::Slti: case Op::Sltiu:
      case Op::Slli: case Op::Srli: case Op::Srai:
      case Op::Lw: case Op::Lh: case Op::Lhu: case Op::Lb: case Op::Lbu:
      case Op::Jr: case Op::Jalr:
        reads_rs = true;
        break;
      // no register sources
      case Op::Lui: case Op::Li: case Op::J: case Op::Jal:
      case Op::Syscall: case Op::Nop:
        break;
    }
    unsigned n = 0;
    if (reads_rs && instr.rs != 0)
        out[n++] = instr.rs;
    if (reads_rt && instr.rt != 0 && (!reads_rs || instr.rt != instr.rs))
        out[n++] = instr.rt;
    return n;
}

std::string
disassemble(const Instr& in)
{
    std::ostringstream os;
    os << opName(in.op);
    auto r = [](unsigned n) {
        // Built via append rather than "r" + temporary to sidestep
        // GCC 12's -Wrestrict false positive (PR 105651).
        std::string name("r");
        name += std::to_string(n);
        return name;
    };
    switch (in.op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Divu: case Op::Rem: case Op::Remu:
      case Op::And: case Op::Or: case Op::Xor: case Op::Nor:
      case Op::Sllv: case Op::Srlv: case Op::Srav:
      case Op::Slt: case Op::Sltu:
        os << " " << r(in.rd) << ", " << r(in.rs) << ", " << r(in.rt);
        break;
      case Op::Addi: case Op::Andi: case Op::Ori: case Op::Xori:
      case Op::Slti: case Op::Sltiu:
      case Op::Slli: case Op::Srli: case Op::Srai:
        os << " " << r(in.rd) << ", " << r(in.rs) << ", " << in.imm;
        break;
      case Op::Lui: case Op::Li:
        os << " " << r(in.rd) << ", " << in.imm;
        break;
      case Op::Lw: case Op::Lh: case Op::Lhu: case Op::Lb: case Op::Lbu:
        os << " " << r(in.rd) << ", " << in.imm << "(" << r(in.rs) << ")";
        break;
      case Op::Sw: case Op::Sh: case Op::Sb:
        os << " " << r(in.rt) << ", " << in.imm << "(" << r(in.rs) << ")";
        break;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
        os << " " << r(in.rs) << ", " << r(in.rt) << ", #" << in.imm;
        break;
      case Op::J: case Op::Jal:
        os << " #" << in.imm;
        break;
      case Op::Jr:
        os << " " << r(in.rs);
        break;
      case Op::Jalr:
        os << " " << r(in.rd) << ", " << r(in.rs);
        break;
      case Op::Syscall: case Op::Nop:
        break;
    }
    return os.str();
}

} // namespace vpred::sim
