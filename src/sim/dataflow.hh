/**
 * @file
 * Dataflow-limit (ILP) analysis with value prediction.
 *
 * The paper's introduction motivates value prediction as the only
 * way past the "upper bound on achievable IPC [...] imposed by true
 * register dependencies" (following Lipasti [10] and Gonzalez [8]).
 * This analyzer makes that motivation measurable on our traces: it
 * computes the dataflow-limit ILP of a program — unbounded
 * resources, perfect control prediction, unit-latency operations —
 * with and without a value predictor.
 *
 * Model: every dynamic instruction completes one cycle after its
 * last input becomes available. Inputs are source registers (the
 * producer's completion time), and for loads the last store to the
 * accessed word. A correctly-predicted result is available at time
 * 0 (the prediction is made at fetch), so correct predictions cut
 * true-dependence chains; mispredicted results are available at the
 * producer's completion time, as without prediction. Prediction
 * eligibility follows the paper's rules (sim/tracer.hh).
 *
 *   ILP = instructions / critical-path length.
 */

#ifndef DFCM_SIM_DATAFLOW_HH
#define DFCM_SIM_DATAFLOW_HH

#include <cstdint>
#include <span>
#include <utility>

#include "core/value_predictor.hh"
#include "sim/machine.hh"

namespace vpred::sim
{

/** What supplies predicted values to the dataflow analysis. */
enum class PredictionModel
{
    None,     //!< no value prediction: the true dataflow limit
    Real,     //!< a ValuePredictor trained on the fly
    Perfect,  //!< every eligible value predicted correctly
};

/** Result of a dataflow-limit run. */
struct IlpResult
{
    std::uint64_t instructions = 0;   //!< dynamic instructions
    std::uint64_t critical_path = 0;  //!< longest dependence chain
    std::uint64_t predicted = 0;      //!< eligible predictions made
    std::uint64_t correct = 0;        //!< ... that were correct

    /** Dataflow-limit instructions per cycle. */
    double
    ilp() const
    {
        return critical_path == 0
            ? 0.0
            : static_cast<double>(instructions)
                    / static_cast<double>(critical_path);
    }

    /** Accuracy of the supplied predictor on this run. */
    double
    accuracy() const
    {
        return predicted == 0
            ? 0.0
            : static_cast<double>(correct) / static_cast<double>(predicted);
    }
};

/**
 * Run @p program to completion and compute its dataflow-limit ILP.
 *
 * @param program The assembled program.
 * @param model Prediction model (None / Real / Perfect).
 * @param predictor The predictor for PredictionModel::Real (ignored
 *        otherwise; may be null for None/Perfect).
 * @param max_steps Dynamic-instruction budget.
 * @param init_regs Registers preset before the run.
 * @param memory_deps Honor store-to-load dependences (word
 *        granularity). The register-only limit is an upper bound.
 */
IlpResult dataflowLimit(
        const Program& program, PredictionModel model,
        ValuePredictor* predictor, std::uint64_t max_steps,
        std::span<const std::pair<unsigned, std::uint32_t>> init_regs = {},
        bool memory_deps = true);

} // namespace vpred::sim

#endif // DFCM_SIM_DATAFLOW_HH
