/**
 * @file
 * An assembled MiniRISC program image.
 */

#ifndef DFCM_SIM_PROGRAM_HH
#define DFCM_SIM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/isa.hh"

namespace vpred::sim
{

/**
 * The output of the assembler: decoded text, an initialized data
 * segment and the symbol table.
 */
struct Program
{
    /** Base byte address of the data segment. Code byte addresses
     *  (instruction index * 4) stay below this. */
    static constexpr std::uint32_t kDataBase = 0x10000;

    /** Decoded instructions; pc is an index into this vector. */
    std::vector<Instr> text;

    /** Initial data segment contents, loaded at kDataBase. */
    std::vector<std::uint8_t> data;

    /**
     * Symbol values: text labels map to byte addresses
     * (index * 4), data labels to absolute byte addresses
     * (kDataBase + offset).
     */
    std::unordered_map<std::string, std::uint32_t> symbols;

    /** Entry point (instruction index); "main" if defined, else 0. */
    std::uint32_t entry = 0;

    /** Look up a symbol; throws std::out_of_range if absent. */
    std::uint32_t
    symbol(const std::string& name) const
    {
        return symbols.at(name);
    }
};

} // namespace vpred::sim

#endif // DFCM_SIM_PROGRAM_HH
