#include "sim/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/parse_util.hh"

namespace vpred::sim
{

namespace
{

/** One source statement after lexical splitting. */
struct Statement
{
    int line = 0;
    std::vector<std::string> labels;
    std::string mnemonic;            // lower-cased; empty if label-only
    std::vector<std::string> operands;
    std::string raw_operands;        // original operand text (.asciiz)
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_'
        || c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_'
        || c == '.';
}

std::string
toLower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
trim(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Strip a trailing comment, honoring string and char literals. */
std::string
stripComment(const std::string& line)
{
    bool in_str = false, in_chr = false, esc = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (esc) {
            esc = false;
            continue;
        }
        if (c == '\\' && (in_str || in_chr)) {
            esc = true;
            continue;
        }
        if (c == '"' && !in_chr)
            in_str = !in_str;
        else if (c == '\'' && !in_str)
            in_chr = !in_chr;
        else if ((c == '#' || c == ';') && !in_str && !in_chr)
            return line.substr(0, i);
    }
    return line;
}

/** Split an operand list on top-level commas (not inside quotes). */
std::vector<std::string>
splitOperands(const std::string& text)
{
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false, in_chr = false, esc = false;
    for (char c : text) {
        if (esc) {
            cur += c;
            esc = false;
            continue;
        }
        if (c == '\\' && (in_str || in_chr)) {
            cur += c;
            esc = true;
            continue;
        }
        if (c == '"' && !in_chr)
            in_str = !in_str;
        else if (c == '\'' && !in_str)
            in_chr = !in_chr;
        if (c == ',' && !in_str && !in_chr) {
            out.push_back(trim(cur));
            cur.clear();
            continue;
        }
        cur += c;
    }
    cur = trim(cur);
    if (!cur.empty() || !out.empty())
        out.push_back(cur);
    return out;
}

/** Decode one character-literal body (between the quotes). */
char
decodeEscape(const std::string& body, int line)
{
    if (body.size() == 1)
        return body[0];
    if (body.size() == 2 && body[0] == '\\') {
        switch (body[1]) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
        }
    }
    throw AsmError(line, "bad character literal '" + body + "'");
}

std::string
decodeString(const std::string& tok, int line)
{
    if (tok.size() < 2 || tok.front() != '"' || tok.back() != '"')
        throw AsmError(line, "expected string literal, got '" + tok + "'");
    std::string out;
    for (std::size_t i = 1; i + 1 < tok.size(); ++i) {
        char c = tok[i];
        if (c == '\\') {
            if (i + 2 >= tok.size())
                throw AsmError(line, "dangling escape in string");
            out += decodeEscape(tok.substr(i, 2), line);
            ++i;
        } else {
            out += c;
        }
    }
    return out;
}

const std::unordered_map<std::string, unsigned> kRegNames = {
    {"zero", 0}, {"at", 1}, {"v0", 2}, {"v1", 3},
    {"a0", 4}, {"a1", 5}, {"a2", 6}, {"a3", 7},
    {"t0", 8}, {"t1", 9}, {"t2", 10}, {"t3", 11},
    {"t4", 12}, {"t5", 13}, {"t6", 14}, {"t7", 15},
    {"s0", 16}, {"s1", 17}, {"s2", 18}, {"s3", 19},
    {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
    {"t8", 24}, {"t9", 25}, {"k0", 26}, {"k1", 27},
    {"gp", 28}, {"sp", 29}, {"fp", 30}, {"s8", 30}, {"ra", 31},
};

/** The assembler proper: two passes over pre-split statements. */
class Assembler
{
  public:
    explicit Assembler(std::string_view source) { lex(source); }

    Program
    run()
    {
        passOne();
        passTwo();
        if (auto it = prog_.symbols.find("main");
            it != prog_.symbols.end()) {
            prog_.entry = it->second / 4;
        }
        return std::move(prog_);
    }

  private:
    // ---- lexical pass ----
    void
    lex(std::string_view source)
    {
        int line_no = 0;
        std::size_t pos = 0;
        while (pos <= source.size()) {
            const std::size_t nl = source.find('\n', pos);
            std::string line(source.substr(
                    pos, nl == std::string_view::npos ? std::string_view::npos
                                                      : nl - pos));
            pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
            ++line_no;

            line = stripComment(line);
            Statement st;
            st.line = line_no;

            // Peel off leading labels ("name:").
            std::string rest = trim(line);
            while (true) {
                std::size_t i = 0;
                while (i < rest.size() && isIdentChar(rest[i]))
                    ++i;
                if (i > 0 && i < rest.size() && rest[i] == ':'
                    && isIdentStart(rest[0])) {
                    st.labels.push_back(rest.substr(0, i));
                    rest = trim(rest.substr(i + 1));
                } else {
                    break;
                }
            }
            if (!rest.empty()) {
                std::size_t i = 0;
                while (i < rest.size()
                       && !std::isspace(static_cast<unsigned char>(rest[i])))
                    ++i;
                st.mnemonic = toLower(rest.substr(0, i));
                st.raw_operands = trim(rest.substr(i));
                st.operands = splitOperands(st.raw_operands);
            }
            if (!st.labels.empty() || !st.mnemonic.empty())
                statements_.push_back(std::move(st));
        }
    }

    // ---- pass 1: addresses and symbols ----
    void
    defineSymbol(const std::string& name, std::uint32_t value, int line)
    {
        if (!prog_.symbols.emplace(name, value).second)
            throw AsmError(line, "duplicate label '" + name + "'");
    }

    void
    passOne()
    {
        bool in_text = true;
        std::uint32_t text_index = 0;
        std::uint32_t data_off = 0;

        for (const Statement& st : statements_) {
            // Auto-aligning data directives align before the label on
            // the same line is bound, so labels point at the datum.
            if (!in_text) {
                if (st.mnemonic == ".word")
                    data_off = alignUp(data_off, 4);
                else if (st.mnemonic == ".half")
                    data_off = alignUp(data_off, 2);
            }
            for (const std::string& lab : st.labels) {
                defineSymbol(lab,
                             in_text ? text_index * 4
                                     : Program::kDataBase + data_off,
                             st.line);
            }
            if (st.mnemonic.empty())
                continue;

            if (st.mnemonic[0] == '.') {
                handleDirectiveSize(st, in_text, data_off);
                continue;
            }
            if (!in_text)
                throw AsmError(st.line, "instruction in .data segment");
            ++text_index;
        }
        prog_.data.assign(data_off, 0);
    }

    static std::uint32_t
    alignUp(std::uint32_t v, std::uint32_t a)
    {
        return (v + a - 1) & ~(a - 1);
    }

    void
    handleDirectiveSize(const Statement& st, bool& in_text,
                        std::uint32_t& data_off)
    {
        const std::string& d = st.mnemonic;
        if (d == ".text") {
            in_text = true;
        } else if (d == ".data") {
            in_text = false;
        } else if (d == ".globl" || d == ".global") {
            // accepted and ignored
        } else if (d == ".equ") {
            if (st.operands.size() != 2)
                throw AsmError(st.line, ".equ needs name, value");
            defineSymbol(st.operands[0],
                         static_cast<std::uint32_t>(
                                 parseNumber(st.operands[1], st.line)),
                         st.line);
        } else if (d == ".word") {
            // Already aligned by the caller.
            data_off += 4 * static_cast<std::uint32_t>(st.operands.size());
        } else if (d == ".half") {
            data_off += 2 * static_cast<std::uint32_t>(st.operands.size());
        } else if (d == ".byte") {
            data_off += static_cast<std::uint32_t>(st.operands.size());
        } else if (d == ".space") {
            if (st.operands.size() != 1)
                throw AsmError(st.line, ".space needs a size");
            // parseExpr so .equ constants work as sizes (labels
            // defined later do not — sizes must be known here).
            data_off += static_cast<std::uint32_t>(
                    parseExpr(st.operands[0], st.line));
        } else if (d == ".align") {
            if (st.operands.size() != 1)
                throw AsmError(st.line, ".align needs an exponent");
            const auto n = parseNumber(st.operands[0], st.line);
            data_off = alignUp(data_off, 1u << n);
        } else if (d == ".asciiz") {
            data_off += static_cast<std::uint32_t>(
                    decodeString(trim(st.raw_operands), st.line).size() + 1);
        } else {
            throw AsmError(st.line, "unknown directive '" + d + "'");
        }
        if (d == ".word" || d == ".half") {
            // Alignment affects where the *label* should have pointed;
            // forbid a label directly before a misaligned .word to keep
            // pass-1 label values exact.
        }
    }

    // ---- pass 2: code and data emission ----
    void
    passTwo()
    {
        bool in_text = true;
        std::uint32_t data_off = 0;

        for (const Statement& st : statements_) {
            if (st.mnemonic.empty())
                continue;
            if (st.mnemonic[0] == '.') {
                emitDirective(st, in_text, data_off);
                continue;
            }
            prog_.text.push_back(encode(st));
        }
    }

    void
    putByte(std::uint32_t off, std::uint8_t b)
    {
        prog_.data.at(off) = b;
    }

    void
    emitDirective(const Statement& st, bool& in_text,
                  std::uint32_t& data_off)
    {
        const std::string& d = st.mnemonic;
        if (d == ".text") {
            in_text = true;
        } else if (d == ".data") {
            in_text = false;
        } else if (d == ".globl" || d == ".global" || d == ".equ") {
            // no emission
        } else if (d == ".word") {
            data_off = alignUp(data_off, 4);
            for (const std::string& op : st.operands) {
                const std::uint32_t v = static_cast<std::uint32_t>(
                        parseExpr(op, st.line));
                for (int i = 0; i < 4; ++i)
                    putByte(data_off++,
                            static_cast<std::uint8_t>(v >> (8 * i)));
            }
        } else if (d == ".half") {
            data_off = alignUp(data_off, 2);
            for (const std::string& op : st.operands) {
                const std::uint32_t v = static_cast<std::uint32_t>(
                        parseExpr(op, st.line));
                for (int i = 0; i < 2; ++i)
                    putByte(data_off++,
                            static_cast<std::uint8_t>(v >> (8 * i)));
            }
        } else if (d == ".byte") {
            for (const std::string& op : st.operands) {
                putByte(data_off++, static_cast<std::uint8_t>(
                                parseExpr(op, st.line)));
            }
        } else if (d == ".space") {
            data_off += static_cast<std::uint32_t>(
                    parseExpr(st.operands[0], st.line));
        } else if (d == ".align") {
            data_off = alignUp(data_off,
                               1u << parseNumber(st.operands[0], st.line));
        } else if (d == ".asciiz") {
            const std::string s =
                    decodeString(trim(st.raw_operands), st.line);
            for (char c : s)
                putByte(data_off++, static_cast<std::uint8_t>(c));
            putByte(data_off++, 0);
        }
    }

    // ---- operand parsing ----
    static std::int64_t
    parseNumber(const std::string& tok, int line)
    {
        const std::string t = trim(tok);
        if (t.empty())
            throw AsmError(line, "expected number");
        if (t.front() == '\'') {
            if (t.size() < 3 || t.back() != '\'')
                throw AsmError(line, "bad character literal " + t);
            return decodeEscape(t.substr(1, t.size() - 2), line);
        }
        // Base 0: the operand syntax accepts decimal, 0x hex, and
        // 0-prefixed octal, exactly as strtoll auto-detects them.
        const std::optional<long long> v =
                parseInt(t, std::numeric_limits<long long>::min(),
                         std::numeric_limits<long long>::max(), 0);
        if (!v)
            throw AsmError(line, "bad number '" + t + "'");
        return *v;
    }

    std::int64_t
    parseExpr(const std::string& tok, int line) const
    {
        const std::string t = trim(tok);
        if (t.empty())
            throw AsmError(line, "expected expression");
        if (std::isdigit(static_cast<unsigned char>(t[0])) || t[0] == '-'
            || t[0] == '+' || t[0] == '\'') {
            return parseNumber(t, line);
        }
        if (!isIdentStart(t[0]))
            throw AsmError(line, "bad expression '" + t + "'");
        std::size_t i = 0;
        while (i < t.size() && isIdentChar(t[i]))
            ++i;
        const std::string name = t.substr(0, i);
        const auto it = prog_.symbols.find(name);
        if (it == prog_.symbols.end())
            throw AsmError(line, "undefined symbol '" + name + "'");
        std::int64_t value = it->second;
        const std::string rest = trim(t.substr(i));
        if (!rest.empty()) {
            if (rest[0] != '+' && rest[0] != '-')
                throw AsmError(line, "bad expression '" + t + "'");
            const std::int64_t off = parseNumber(rest.substr(1), line);
            value += rest[0] == '+' ? off : -off;
        }
        return value;
    }

    /**
     * Registers must be written "$name", "$N" or "rN". Bare numbers
     * and bare names are rejected so that a constant in a register
     * slot (e.g. "mul $t0, $t1, 21") is a loud error instead of a
     * silent reference to r21.
     */
    static unsigned
    parseReg(const std::string& tok, int line)
    {
        std::string t = toLower(trim(tok));
        if (t.empty())
            throw AsmError(line, "expected register");
        bool prefixed = false;
        if (t[0] == '$') {
            t = t.substr(1);
            prefixed = true;
            if (auto it = kRegNames.find(t); it != kRegNames.end())
                return it->second;
        } else if (t[0] == 'r' && t.size() > 1
                   && std::isdigit(static_cast<unsigned char>(t[1]))) {
            t = t.substr(1);
            prefixed = true;
        }
        if (prefixed && !t.empty()
            && std::isdigit(static_cast<unsigned char>(t[0]))) {
            const std::optional<unsigned long long> n =
                    parseUInt(t, kNumRegs - 1);
            if (n)
                return static_cast<unsigned>(*n);
        }
        throw AsmError(line, "bad register '" + tok + "'");
    }

    /** Parse "expr($reg)", "($reg)" or "expr" memory operands. */
    void
    parseMem(const std::string& tok, int line, unsigned& base,
             std::int64_t& offset) const
    {
        const std::string t = trim(tok);
        const std::size_t open = t.find('(');
        if (open == std::string::npos) {
            base = 0;
            offset = parseExpr(t, line);
            return;
        }
        if (t.back() != ')')
            throw AsmError(line, "bad memory operand '" + tok + "'");
        const std::string off = trim(t.substr(0, open));
        base = parseReg(t.substr(open + 1, t.size() - open - 2), line);
        offset = off.empty() ? 0 : parseExpr(off, line);
    }

    std::int64_t
    branchTarget(const std::string& tok, int line) const
    {
        const std::int64_t addr = parseExpr(tok, line);
        if (addr % 4 != 0)
            throw AsmError(line, "branch target not instruction-aligned");
        if (addr < 0
            || addr >= static_cast<std::int64_t>(Program::kDataBase))
            throw AsmError(line, "branch target outside text segment");
        return addr / 4;
    }

    // ---- instruction encoding ----
    void
    expect(const Statement& st, std::size_t n) const
    {
        if (st.operands.size() != n) {
            throw AsmError(st.line, st.mnemonic + " expects "
                           + std::to_string(n) + " operands");
        }
    }

    Instr
    encode(const Statement& st) const
    {
        const std::string& m = st.mnemonic;
        const int line = st.line;
        Instr in;

        auto r3 = [&](Op op) {
            expect(st, 3);
            in.op = op;
            in.rd = static_cast<std::uint8_t>(parseReg(st.operands[0], line));
            in.rs = static_cast<std::uint8_t>(parseReg(st.operands[1], line));
            in.rt = static_cast<std::uint8_t>(parseReg(st.operands[2], line));
            return in;
        };
        auto ri = [&](Op op) {
            expect(st, 3);
            in.op = op;
            in.rd = static_cast<std::uint8_t>(parseReg(st.operands[0], line));
            in.rs = static_cast<std::uint8_t>(parseReg(st.operands[1], line));
            in.imm = parseExpr(st.operands[2], line);
            return in;
        };
        auto load = [&](Op op) {
            expect(st, 2);
            in.op = op;
            in.rd = static_cast<std::uint8_t>(parseReg(st.operands[0], line));
            unsigned base;
            std::int64_t off;
            parseMem(st.operands[1], line, base, off);
            in.rs = static_cast<std::uint8_t>(base);
            in.imm = off;
            return in;
        };
        auto store = [&](Op op) {
            expect(st, 2);
            in.op = op;
            in.rt = static_cast<std::uint8_t>(parseReg(st.operands[0], line));
            unsigned base;
            std::int64_t off;
            parseMem(st.operands[1], line, base, off);
            in.rs = static_cast<std::uint8_t>(base);
            in.imm = off;
            return in;
        };
        auto branch = [&](Op op, bool swap = false) {
            expect(st, 3);
            in.op = op;
            const unsigned a = parseReg(st.operands[0], line);
            const unsigned b = parseReg(st.operands[1], line);
            in.rs = static_cast<std::uint8_t>(swap ? b : a);
            in.rt = static_cast<std::uint8_t>(swap ? a : b);
            in.imm = branchTarget(st.operands[2], line);
            return in;
        };
        auto branchZero = [&](Op op, bool operand_first) {
            expect(st, 2);
            in.op = op;
            const unsigned r = parseReg(st.operands[0], line);
            in.rs = static_cast<std::uint8_t>(operand_first ? r : 0);
            in.rt = static_cast<std::uint8_t>(operand_first ? 0 : r);
            in.imm = branchTarget(st.operands[1], line);
            return in;
        };

        // register-register ALU
        if (m == "add") return r3(Op::Add);
        if (m == "sub") return r3(Op::Sub);
        if (m == "mul") return r3(Op::Mul);
        if (m == "div") return r3(Op::Div);
        if (m == "divu") return r3(Op::Divu);
        if (m == "rem") return r3(Op::Rem);
        if (m == "remu") return r3(Op::Remu);
        if (m == "and") return r3(Op::And);
        if (m == "or") return r3(Op::Or);
        if (m == "xor") return r3(Op::Xor);
        if (m == "nor") return r3(Op::Nor);
        if (m == "slt") return r3(Op::Slt);
        if (m == "sltu") return r3(Op::Sltu);

        // shifts: register or immediate third operand
        if (m == "sll" || m == "srl" || m == "sra") {
            expect(st, 3);
            const std::string& third = st.operands[2];
            const bool is_reg = !third.empty()
                && (third[0] == '$'
                    || (third[0] == 'r'
                        && third.size() > 1
                        && std::isdigit(static_cast<unsigned char>(
                                third[1]))));
            if (is_reg) {
                return r3(m == "sll" ? Op::Sllv
                          : m == "srl" ? Op::Srlv : Op::Srav);
            }
            return ri(m == "sll" ? Op::Slli
                      : m == "srl" ? Op::Srli : Op::Srai);
        }

        // immediate ALU
        if (m == "addi" || m == "addiu") return ri(Op::Addi);
        if (m == "andi") return ri(Op::Andi);
        if (m == "ori") return ri(Op::Ori);
        if (m == "xori") return ri(Op::Xori);
        if (m == "slti") return ri(Op::Slti);
        if (m == "sltiu") return ri(Op::Sltiu);
        if (m == "subi") {
            Instr i = ri(Op::Addi);
            i.imm = -i.imm;
            return i;
        }
        if (m == "lui") {
            expect(st, 2);
            in.op = Op::Lui;
            in.rd = static_cast<std::uint8_t>(parseReg(st.operands[0],
                                                       line));
            in.imm = parseExpr(st.operands[1], line);
            return in;
        }
        if (m == "li" || m == "la") {
            expect(st, 2);
            in.op = Op::Li;
            in.rd = static_cast<std::uint8_t>(parseReg(st.operands[0],
                                                       line));
            in.imm = parseExpr(st.operands[1], line);
            return in;
        }
        if (m == "move") {
            expect(st, 2);
            in.op = Op::Addi;
            in.rd = static_cast<std::uint8_t>(parseReg(st.operands[0],
                                                       line));
            in.rs = static_cast<std::uint8_t>(parseReg(st.operands[1],
                                                       line));
            in.imm = 0;
            return in;
        }
        if (m == "neg") {
            expect(st, 2);
            in.op = Op::Sub;
            in.rd = static_cast<std::uint8_t>(parseReg(st.operands[0],
                                                       line));
            in.rs = 0;
            in.rt = static_cast<std::uint8_t>(parseReg(st.operands[1],
                                                       line));
            return in;
        }
        if (m == "not") {
            expect(st, 2);
            in.op = Op::Nor;
            in.rd = static_cast<std::uint8_t>(parseReg(st.operands[0],
                                                       line));
            in.rs = static_cast<std::uint8_t>(parseReg(st.operands[1],
                                                       line));
            in.rt = 0;
            return in;
        }

        // memory
        if (m == "lw") return load(Op::Lw);
        if (m == "lh") return load(Op::Lh);
        if (m == "lhu") return load(Op::Lhu);
        if (m == "lb") return load(Op::Lb);
        if (m == "lbu") return load(Op::Lbu);
        if (m == "sw") return store(Op::Sw);
        if (m == "sh") return store(Op::Sh);
        if (m == "sb") return store(Op::Sb);

        // branches
        if (m == "beq") return branch(Op::Beq);
        if (m == "bne") return branch(Op::Bne);
        if (m == "blt") return branch(Op::Blt);
        if (m == "bge") return branch(Op::Bge);
        if (m == "bltu") return branch(Op::Bltu);
        if (m == "bgeu") return branch(Op::Bgeu);
        if (m == "bgt") return branch(Op::Blt, /*swap=*/true);
        if (m == "ble") return branch(Op::Bge, /*swap=*/true);
        if (m == "bgtu") return branch(Op::Bltu, /*swap=*/true);
        if (m == "bleu") return branch(Op::Bgeu, /*swap=*/true);
        if (m == "beqz") return branchZero(Op::Beq, true);
        if (m == "bnez") return branchZero(Op::Bne, true);
        if (m == "bltz") return branchZero(Op::Blt, true);
        if (m == "bgez") return branchZero(Op::Bge, true);
        if (m == "bgtz") return branchZero(Op::Blt, false);
        if (m == "blez") return branchZero(Op::Bge, false);

        // jumps
        if (m == "j" || m == "b") {
            expect(st, 1);
            in.op = Op::J;
            in.imm = branchTarget(st.operands[0], line);
            return in;
        }
        if (m == "jal") {
            expect(st, 1);
            in.op = Op::Jal;
            in.rd = reg::ra;
            in.imm = branchTarget(st.operands[0], line);
            return in;
        }
        if (m == "jr") {
            expect(st, 1);
            in.op = Op::Jr;
            in.rs = static_cast<std::uint8_t>(parseReg(st.operands[0],
                                                       line));
            return in;
        }
        if (m == "jalr") {
            in.op = Op::Jalr;
            if (st.operands.size() == 1) {
                in.rd = reg::ra;
                in.rs = static_cast<std::uint8_t>(
                        parseReg(st.operands[0], line));
            } else {
                expect(st, 2);
                in.rd = static_cast<std::uint8_t>(
                        parseReg(st.operands[0], line));
                in.rs = static_cast<std::uint8_t>(
                        parseReg(st.operands[1], line));
            }
            return in;
        }

        if (m == "syscall") {
            expect(st, 0);
            in.op = Op::Syscall;
            return in;
        }
        if (m == "nop") {
            expect(st, 0);
            in.op = Op::Nop;
            return in;
        }

        throw AsmError(line, "unknown mnemonic '" + m + "'");
    }

    std::vector<Statement> statements_;
    Program prog_;
};

} // namespace

Program
assemble(std::string_view source)
{
    return Assembler(source).run();
}

} // namespace vpred::sim
