/**
 * @file
 * Value-trace extraction with the paper's prediction-eligibility
 * filter.
 *
 * Section 4 of the paper: "Only integer instructions that produce an
 * integer register value are predicted, including load instructions.
 * [...] value prediction was not performed for branch and jump
 * instructions." MiniRISC has no two-result instructions, so the
 * multiply/divide one-result rule is satisfied trivially.
 */

#ifndef DFCM_SIM_TRACER_HH
#define DFCM_SIM_TRACER_HH

#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "core/types.hh"
#include "sim/machine.hh"

namespace vpred::sim
{

/** A traced workload run. */
struct TraceResult
{
    ValueTrace trace;                 //!< eligible (pc, value) records
    std::uint64_t instructions = 0;   //!< total dynamic instructions
    std::string output;               //!< program console output
};

/** True iff @p info is an eligible prediction per the paper's rules. */
inline bool
isPredicted(const StepInfo& info)
{
    return info.wrote_reg && !isControl(info.op);
}

/**
 * Run @p program to completion, collecting the eligible value trace.
 *
 * @param program The assembled program.
 * @param max_steps Dynamic instruction budget (VmError beyond it).
 * @param init_regs Registers to preset before the run (e.g. the
 *        workload scale factor in $a0).
 * @param config Machine configuration.
 */
TraceResult traceProgram(
        const Program& program, std::uint64_t max_steps,
        std::span<const std::pair<unsigned, std::uint32_t>> init_regs = {},
        const Machine::Config& config = {});

} // namespace vpred::sim

#endif // DFCM_SIM_TRACER_HH
