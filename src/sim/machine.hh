/**
 * @file
 * MiniRISC functional interpreter.
 */

#ifndef DFCM_SIM_MACHINE_HH
#define DFCM_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/program.hh"

namespace vpred::sim
{

/** Runtime error raised by the interpreter (bad address, division by
 *  zero, runaway program, ...). */
class VmError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** What a single executed instruction did, as seen by the tracer. */
struct StepInfo
{
    std::uint32_t pc = 0;       //!< instruction index before execution
    Op op = Op::Nop;
    bool wrote_reg = false;     //!< wrote a non-zero integer register
    std::uint8_t rd = 0;        //!< destination register if wrote_reg
    std::uint32_t value = 0;    //!< value written if wrote_reg
    bool halted = false;        //!< program exited on this step
    /** Effective byte address of a load/store (query isLoad/isStore
     *  on op); used by the dataflow-limit analyzer. */
    std::uint32_t mem_addr = 0;
};

/**
 * A MiniRISC machine: registers, flat little-endian memory and a
 * program. Execution is purely functional (no timing); the machine
 * exists to produce architecturally-correct value streams.
 */
class Machine
{
  public:
    struct Config
    {
        std::size_t memory_size = 8u << 20;  //!< bytes, data+stack
        std::uint64_t max_steps = 1ull << 32; //!< runaway guard
    };

    explicit Machine(const Program& program);
    Machine(const Program& program, const Config& config);

    /** Execute one instruction. @throws VmError */
    StepInfo step();

    /**
     * Run until exit or @p max_steps instructions (0 = the config
     * limit). @return the number of instructions executed.
     * @throws VmError including when the step budget is exhausted
     * before the program exits.
     */
    std::uint64_t run(std::uint64_t max_steps = 0);

    bool halted() const { return halted_; }

    std::uint32_t reg(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, std::uint32_t v);

    std::uint32_t pc() const { return pc_; }

    /** Everything the program printed via syscalls. */
    const std::string& output() const { return output_; }

    std::uint64_t instructionsExecuted() const { return executed_; }

    /** Direct memory access for tests and harnesses. */
    std::uint32_t loadWord(std::uint32_t addr) const;
    void storeWord(std::uint32_t addr, std::uint32_t value);

  private:
    std::uint8_t loadByte(std::uint32_t addr) const;
    std::uint16_t loadHalf(std::uint32_t addr) const;
    void storeByte(std::uint32_t addr, std::uint8_t value);
    void storeHalf(std::uint32_t addr, std::uint16_t value);
    void checkAddr(std::uint32_t addr, std::uint32_t size) const;
    void doSyscall(StepInfo& info);

    const Program& prog_;
    Config cfg_;
    std::array<std::uint32_t, kNumRegs> regs_{};
    std::uint32_t pc_;
    bool halted_ = false;
    std::uint64_t executed_ = 0;
    std::vector<std::uint8_t> mem_;
    std::string output_;
};

} // namespace vpred::sim

#endif // DFCM_SIM_MACHINE_HH
