/**
 * @file
 * Two-pass assembler for MiniRISC assembly text.
 *
 * Supported syntax (MIPS-flavored):
 *
 *     # comment                ; also a comment
 *             .text
 *     main:   li   $t0, 100
 *     loop:   addi $t0, $t0, -1
 *             sw   $t0, 4($sp)
 *             bnez $t0, loop
 *             li   $v0, 10
 *             syscall
 *             .data
 *     arr:    .word 1, 2, 3, arr
 *     buf:    .space 400
 *     msg:    .asciiz "hello\n"
 *
 * Registers: $zero/$at/$v0../$ra, $0..$31 or r0..r31. Immediates:
 * decimal, 0x hex, 'c' character literals, and label±offset
 * expressions. Pseudo-instructions (each expands to exactly one
 * MiniRISC instruction): li, la, move, neg, not, b, beqz, bnez,
 * bltz, bgez, blez, bgtz, bgt, ble, bgtu, bleu, subi.
 */

#ifndef DFCM_SIM_ASSEMBLER_HH
#define DFCM_SIM_ASSEMBLER_HH

#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/program.hh"

namespace vpred::sim
{

/** Assembly error with 1-based source line information. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(int line, const std::string& message)
        : std::runtime_error("asm line " + std::to_string(line) + ": "
                             + message),
          line_(line)
    {}

    int line() const { return line_; }

  private:
    int line_;
};

/**
 * Assemble MiniRISC source text into a Program.
 *
 * @throws AsmError on any syntax or semantic error.
 */
Program assemble(std::string_view source);

} // namespace vpred::sim

#endif // DFCM_SIM_ASSEMBLER_HH
