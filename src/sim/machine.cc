#include "sim/machine.hh"

#include <cstring>
#include <sstream>

namespace vpred::sim
{

Machine::Machine(const Program& program) : Machine(program, Config{}) {}

Machine::Machine(const Program& program, const Config& config)
    : prog_(program), cfg_(config), pc_(program.entry),
      mem_(config.memory_size, 0)
{
    if (Program::kDataBase + prog_.data.size() > mem_.size())
        throw VmError("data segment does not fit in memory");
    // Guard the empty segment: vector::data() may be null then, and
    // memcpy's pointer arguments are declared nonnull even for n==0.
    if (!prog_.data.empty())
        std::memcpy(mem_.data() + Program::kDataBase, prog_.data.data(),
                    prog_.data.size());
    // Stack grows down from the top of memory; leave a red zone.
    regs_[reg::sp] = static_cast<std::uint32_t>(mem_.size() - 16);
    regs_[reg::gp] = Program::kDataBase;
}

void
Machine::setReg(unsigned r, std::uint32_t v)
{
    if (r == 0 || r >= kNumRegs)
        throw VmError("setReg: bad register");
    regs_[r] = v;
}

void
Machine::checkAddr(std::uint32_t addr, std::uint32_t size) const
{
    if (addr % size != 0) {
        std::ostringstream os;
        os << "misaligned access of size " << size << " at 0x" << std::hex
           << addr << " (pc " << std::dec << pc_ << ")";
        throw VmError(os.str());
    }
    if (addr + size > mem_.size() || addr + size < addr) {
        std::ostringstream os;
        os << "out-of-range access at 0x" << std::hex << addr << " (pc "
           << std::dec << pc_ << ")";
        throw VmError(os.str());
    }
}

std::uint8_t
Machine::loadByte(std::uint32_t addr) const
{
    checkAddr(addr, 1);
    return mem_[addr];
}

std::uint16_t
Machine::loadHalf(std::uint32_t addr) const
{
    checkAddr(addr, 2);
    return static_cast<std::uint16_t>(mem_[addr]
                                      | (mem_[addr + 1] << 8));
}

std::uint32_t
Machine::loadWord(std::uint32_t addr) const
{
    checkAddr(addr, 4);
    return static_cast<std::uint32_t>(mem_[addr])
        | (static_cast<std::uint32_t>(mem_[addr + 1]) << 8)
        | (static_cast<std::uint32_t>(mem_[addr + 2]) << 16)
        | (static_cast<std::uint32_t>(mem_[addr + 3]) << 24);
}

void
Machine::storeByte(std::uint32_t addr, std::uint8_t value)
{
    checkAddr(addr, 1);
    mem_[addr] = value;
}

void
Machine::storeHalf(std::uint32_t addr, std::uint16_t value)
{
    checkAddr(addr, 2);
    mem_[addr] = static_cast<std::uint8_t>(value);
    mem_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
}

void
Machine::storeWord(std::uint32_t addr, std::uint32_t value)
{
    checkAddr(addr, 4);
    mem_[addr] = static_cast<std::uint8_t>(value);
    mem_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    mem_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
    mem_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
}

void
Machine::doSyscall(StepInfo& info)
{
    switch (regs_[reg::v0]) {
      case sys::printInt:
        output_ += std::to_string(
                static_cast<std::int32_t>(regs_[reg::a0]));
        break;
      case sys::printStr: {
        std::uint32_t addr = regs_[reg::a0];
        while (true) {
            const std::uint8_t c = loadByte(addr++);
            if (c == 0)
                break;
            output_ += static_cast<char>(c);
        }
        break;
      }
      case sys::exit:
        halted_ = true;
        info.halted = true;
        break;
      case sys::printChar:
        output_ += static_cast<char>(regs_[reg::a0]);
        break;
      case sys::printHex: {
        std::ostringstream os;
        os << "0x" << std::hex << regs_[reg::a0];
        output_ += os.str();
        break;
      }
      default:
        throw VmError("unknown syscall "
                      + std::to_string(regs_[reg::v0]));
    }
}

StepInfo
Machine::step()
{
    if (halted_)
        throw VmError("step() on a halted machine");
    if (pc_ >= prog_.text.size()) {
        throw VmError("pc out of text segment: "
                      + std::to_string(pc_));
    }

    const Instr& in = prog_.text[pc_];
    StepInfo info;
    info.pc = pc_;
    info.op = in.op;

    const std::uint32_t rs = regs_[in.rs];
    const std::uint32_t rt = regs_[in.rt];
    const auto srs = static_cast<std::int32_t>(rs);
    const auto srt = static_cast<std::int32_t>(rt);
    const auto imm = static_cast<std::uint32_t>(in.imm);
    const auto simm = static_cast<std::int32_t>(in.imm);

    std::uint32_t next_pc = pc_ + 1;
    std::uint32_t result = 0;
    bool writes = true;

    switch (in.op) {
      case Op::Add: result = rs + rt; break;
      case Op::Sub: result = rs - rt; break;
      case Op::Mul: result = rs * rt; break;
      case Op::Div:
        if (rt == 0)
            throw VmError("division by zero at pc "
                          + std::to_string(pc_));
        // INT_MIN / -1 overflows in C++; the hardware wraps.
        result = (rs == 0x80000000u && rt == 0xFFFFFFFFu)
            ? 0x80000000u
            : static_cast<std::uint32_t>(srs / srt);
        break;
      case Op::Divu:
        if (rt == 0)
            throw VmError("division by zero at pc "
                          + std::to_string(pc_));
        result = rs / rt;
        break;
      case Op::Rem:
        if (rt == 0)
            throw VmError("division by zero at pc "
                          + std::to_string(pc_));
        result = (rs == 0x80000000u && rt == 0xFFFFFFFFu)
            ? 0 : static_cast<std::uint32_t>(srs % srt);
        break;
      case Op::Remu:
        if (rt == 0)
            throw VmError("division by zero at pc "
                          + std::to_string(pc_));
        result = rs % rt;
        break;
      case Op::And: result = rs & rt; break;
      case Op::Or: result = rs | rt; break;
      case Op::Xor: result = rs ^ rt; break;
      case Op::Nor: result = ~(rs | rt); break;
      case Op::Sllv: result = rs << (rt & 31); break;
      case Op::Srlv: result = rs >> (rt & 31); break;
      case Op::Srav:
        result = static_cast<std::uint32_t>(srs >> (rt & 31));
        break;
      case Op::Slt: result = srs < srt ? 1 : 0; break;
      case Op::Sltu: result = rs < rt ? 1 : 0; break;

      case Op::Addi: result = rs + imm; break;
      case Op::Andi: result = rs & imm; break;
      case Op::Ori: result = rs | imm; break;
      case Op::Xori: result = rs ^ imm; break;
      case Op::Slti: result = srs < simm ? 1 : 0; break;
      case Op::Sltiu: result = rs < imm ? 1 : 0; break;
      case Op::Slli: result = rs << (imm & 31); break;
      case Op::Srli: result = rs >> (imm & 31); break;
      case Op::Srai:
        result = static_cast<std::uint32_t>(srs >> (imm & 31));
        break;
      case Op::Lui: result = imm << 16; break;
      case Op::Li: result = imm; break;

      case Op::Lw:
        info.mem_addr = rs + imm;
        result = loadWord(rs + imm);
        break;
      case Op::Lh:
        info.mem_addr = rs + imm;
        result = static_cast<std::uint32_t>(static_cast<std::int32_t>(
                static_cast<std::int16_t>(loadHalf(rs + imm))));
        break;
      case Op::Lhu:
        info.mem_addr = rs + imm;
        result = loadHalf(rs + imm);
        break;
      case Op::Lb:
        info.mem_addr = rs + imm;
        result = static_cast<std::uint32_t>(static_cast<std::int32_t>(
                static_cast<std::int8_t>(loadByte(rs + imm))));
        break;
      case Op::Lbu:
        info.mem_addr = rs + imm;
        result = loadByte(rs + imm);
        break;

      case Op::Sw:
        info.mem_addr = rs + imm;
        storeWord(rs + imm, rt);
        writes = false;
        break;
      case Op::Sh:
        info.mem_addr = rs + imm;
        storeHalf(rs + imm, static_cast<std::uint16_t>(rt));
        writes = false;
        break;
      case Op::Sb:
        info.mem_addr = rs + imm;
        storeByte(rs + imm, static_cast<std::uint8_t>(rt));
        writes = false;
        break;

      case Op::Beq:
        if (rs == rt) next_pc = imm;
        writes = false;
        break;
      case Op::Bne:
        if (rs != rt) next_pc = imm;
        writes = false;
        break;
      case Op::Blt:
        if (srs < srt) next_pc = imm;
        writes = false;
        break;
      case Op::Bge:
        if (srs >= srt) next_pc = imm;
        writes = false;
        break;
      case Op::Bltu:
        if (rs < rt) next_pc = imm;
        writes = false;
        break;
      case Op::Bgeu:
        if (rs >= rt) next_pc = imm;
        writes = false;
        break;

      case Op::J:
        next_pc = imm;
        writes = false;
        break;
      case Op::Jal:
        result = (pc_ + 1) * 4;  // link: byte return address
        next_pc = imm;
        break;
      case Op::Jr:
        if (rs % 4 != 0)
            throw VmError("jr to unaligned address");
        next_pc = rs / 4;
        writes = false;
        break;
      case Op::Jalr:
        result = (pc_ + 1) * 4;
        if (rs % 4 != 0)
            throw VmError("jalr to unaligned address");
        next_pc = rs / 4;
        break;

      case Op::Syscall:
        doSyscall(info);
        writes = false;
        break;
      case Op::Nop:
        writes = false;
        break;
    }

    if (writes && in.rd != 0) {
        regs_[in.rd] = result;
        info.wrote_reg = true;
        info.rd = in.rd;
        info.value = result;
    }

    pc_ = next_pc;
    ++executed_;
    return info;
}

std::uint64_t
Machine::run(std::uint64_t max_steps)
{
    const std::uint64_t limit = max_steps == 0 ? cfg_.max_steps
                                               : max_steps;
    std::uint64_t steps = 0;
    while (!halted_) {
        if (steps >= limit) {
            throw VmError("step budget exhausted after "
                          + std::to_string(steps) + " instructions");
        }
        step();
        ++steps;
    }
    return steps;
}

} // namespace vpred::sim
