#include "sim/tracer.hh"

namespace vpred::sim
{

TraceResult
traceProgram(const Program& program, std::uint64_t max_steps,
             std::span<const std::pair<unsigned, std::uint32_t>> init_regs,
             const Machine::Config& config)
{
    Machine::Config cfg = config;
    if (max_steps != 0)
        cfg.max_steps = max_steps;
    Machine machine(program, cfg);
    for (const auto& [r, v] : init_regs)
        machine.setReg(r, v);

    TraceResult result;
    result.trace.reserve(4096);
    while (!machine.halted()) {
        if (machine.instructionsExecuted() >= cfg.max_steps) {
            throw VmError("trace step budget exhausted");
        }
        const StepInfo info = machine.step();
        if (isPredicted(info))
            result.trace.push_back({info.pc, info.value});
    }
    result.instructions = machine.instructionsExecuted();
    result.output = machine.output();
    return result;
}

} // namespace vpred::sim
