#include "core/hybrid_predictor.hh"

#include <cassert>
#include <sstream>

namespace vpred
{

PerfectHybridPredictor::PerfectHybridPredictor(
        std::unique_ptr<ValuePredictor> first,
        std::unique_ptr<ValuePredictor> second)
    : first_(std::move(first)), second_(std::move(second))
{
    assert(first_ && second_);
}

Value
PerfectHybridPredictor::predict(Pc pc) const
{
    return first_->predict(pc);
}

void
PerfectHybridPredictor::update(Pc pc, Value actual)
{
    first_->update(pc, actual);
    second_->update(pc, actual);
}

bool
PerfectHybridPredictor::predictAndUpdate(Pc pc, Value actual)
{
    const bool first_correct = first_->predict(pc) == actual;
    const bool second_correct = second_->predict(pc) == actual;
    update(pc, actual);
    return first_correct || second_correct;
}

std::uint64_t
PerfectHybridPredictor::storageBits() const
{
    // The perfect oracle needs no meta table; the paper charges the
    // hybrid only for its components.
    return first_->storageBits() + second_->storageBits();
}

std::string
PerfectHybridPredictor::name() const
{
    std::ostringstream os;
    os << "perfect[" << first_->name() << "+" << second_->name() << "]";
    return os.str();
}

CounterHybridPredictor::CounterHybridPredictor(
        std::unique_ptr<ValuePredictor> first,
        std::unique_ptr<ValuePredictor> second, const Config& config)
    : first_(std::move(first)), second_(std::move(second)), cfg_(config),
      meta_mask_(maskBits(config.meta_bits)),
      counter_max_((1u << config.counter_bits) - 1),
      counter_init_((counter_max_ + 1) / 2),
      meta_(std::size_t{1} << config.meta_bits, counter_init_)
{
    assert(first_ && second_);
    assert(config.meta_bits <= 28);
    assert(config.counter_bits >= 1 && config.counter_bits <= 8);
}

bool
CounterHybridPredictor::choosesFirst(Pc pc) const
{
    return meta_[pc & meta_mask_] >= counter_init_;
}

Value
CounterHybridPredictor::predict(Pc pc) const
{
    return choosesFirst(pc) ? first_->predict(pc) : second_->predict(pc);
}

void
CounterHybridPredictor::update(Pc pc, Value actual)
{
    // Train the chooser toward the component that was correct before
    // updating the components themselves.
    const bool first_correct = first_->predict(pc) == actual;
    const bool second_correct = second_->predict(pc) == actual;
    unsigned& ctr = meta_[pc & meta_mask_];
    if (first_correct && !second_correct && ctr < counter_max_)
        ++ctr;
    else if (second_correct && !first_correct && ctr > 0)
        --ctr;

    first_->update(pc, actual);
    second_->update(pc, actual);
}

bool
CounterHybridPredictor::predictAndUpdate(Pc pc, Value actual)
{
    const bool correct = predict(pc) == actual;
    update(pc, actual);
    return correct;
}

std::uint64_t
CounterHybridPredictor::storageBits() const
{
    return first_->storageBits() + second_->storageBits()
        + std::uint64_t{meta_.size()} * cfg_.counter_bits;
}

std::string
CounterHybridPredictor::name() const
{
    std::ostringstream os;
    os << "hybrid[" << first_->name() << "+" << second_->name() << "]";
    return os.str();
}

} // namespace vpred
