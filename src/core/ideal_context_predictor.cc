#include "core/ideal_context_predictor.hh"

#include <cassert>
#include <sstream>

namespace vpred
{

IdealContextPredictor::IdealContextPredictor(unsigned l1_bits,
                                             unsigned order,
                                             bool differential,
                                             unsigned value_bits)
    : l1_bits_(l1_bits), order_(order), differential_(differential),
      value_bits_(value_bits), l1_mask_(maskBits(l1_bits)),
      value_mask_(maskBits(value_bits)),
      l1_(std::size_t{1} << l1_bits)
{
    assert(l1_bits <= 24);
    assert(order >= 1 && order <= 16);
    for (L1Entry& e : l1_)
        e.history.assign(order_, 0);
}

std::string
IdealContextPredictor::keyOf(const std::vector<Value>& history) const
{
    std::string key;
    key.reserve(history.size() * 8);
    for (Value v : history) {
        for (int i = 0; i < 8; ++i)
            key.push_back(static_cast<char>(v >> (8 * i)));
    }
    return key;
}

Value
IdealContextPredictor::predict(Pc pc) const
{
    const L1Entry& e = l1_[pc & l1_mask_];
    const auto it = l2_.find(keyOf(e.history));
    const Value stored = it == l2_.end() ? 0 : it->second;
    if (differential_)
        return (e.last + stored) & value_mask_;
    return stored;
}

void
IdealContextPredictor::update(Pc pc, Value actual)
{
    actual &= value_mask_;
    L1Entry& e = l1_[pc & l1_mask_];
    const Value stored = differential_
        ? ((actual - e.last) & value_mask_) : actual;

    l2_[keyOf(e.history)] = stored;
    e.history.erase(e.history.begin());
    e.history.push_back(stored);
    e.last = actual;
}

std::uint64_t
IdealContextPredictor::storageBits() const
{
    // Reference only: current materialized size (unbounded model).
    const std::uint64_t l1_entry =
            std::uint64_t{order_} * value_bits_
            + (differential_ ? value_bits_ : 0);
    return l1_.size() * l1_entry
        + l2_.size() * std::uint64_t{value_bits_};
}

std::string
IdealContextPredictor::name() const
{
    std::ostringstream os;
    os << (differential_ ? "ideal-dfcm" : "ideal-fcm") << "(l1="
       << l1_bits_ << ",o=" << order_ << ")";
    return os.str();
}

} // namespace vpred
