/**
 * @file
 * Dynamic-classification value predictor, modelled on the related
 * work the paper discusses in Section 5 (Rychlik et al.; Lee, Wang
 * and Yew): each static instruction is observed for a warm-up
 * window, then assigned to exactly one of several class-specific
 * predictors (constant / stride / context) or marked unpredictable.
 *
 * The paper's criticism, which this implementation lets you measure
 * (bench_related_classification): the classification introduces a
 * *fixed partitioning* of the table resources and a hard
 * assignment, while the DFCM shares one level-2 table dynamically —
 * constants use one entry, each distinct stride one entry, and the
 * rest is available to context patterns.
 */

#ifndef DFCM_CORE_CLASSIFYING_PREDICTOR_HH
#define DFCM_CORE_CLASSIFYING_PREDICTOR_HH

#include <vector>

#include "core/fcm_predictor.hh"
#include "core/last_value_predictor.hh"
#include "core/stride_predictor.hh"
#include "core/value_predictor.hh"

namespace vpred
{

/** The classes an instruction can be assigned to. */
enum class ValueClass : std::uint8_t
{
    Unknown = 0,    //!< still warming up
    Constant,       //!< served by the last value predictor
    Stride,         //!< served by the stride predictor
    Context,        //!< served by the FCM
    Unpredictable,  //!< no predictor assigned
};

/** Display name ("constant", "stride", ...). */
const char* valueClassName(ValueClass cls);

/** Configuration of the classifying predictor. */
struct ClassifyingConfig
{
    unsigned class_bits = 16;   //!< log2(#classifier entries)
    unsigned lvp_bits = 14;     //!< constant-class table
    unsigned stride_bits = 14;  //!< stride-class table
    unsigned fcm_l1_bits = 14;  //!< context-class level-1 table
    unsigned fcm_l2_bits = 12;  //!< context-class level-2 table
    unsigned value_bits = 32;
    unsigned warmup = 32;       //!< observations before assignment
    /** Minimum fraction (in 1/32ths) of warm-up hits a class needs;
     *  below it the instruction is declared unpredictable. */
    unsigned min_score_32nds = 16;
};

/**
 * Hard-classifying hybrid: warm-up scoring, one-predictor
 * assignment, confidence-based reclassification.
 */
class ClassifyingPredictor : public ValuePredictor
{
  public:
    explicit ClassifyingPredictor(const ClassifyingConfig& config);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /** Current class of the instruction at @p pc. */
    ValueClass classOf(Pc pc) const;

    /** Number of classifier entries currently in each class
     *  (diagnostics for the related-work bench). */
    std::vector<std::uint64_t> classCensus() const;

  private:
    struct ClassEntry
    {
        ValueClass cls = ValueClass::Unknown;
        std::uint8_t seen = 0;        //!< warm-up observations
        std::uint8_t score_const = 0; //!< warm-up hits per class
        std::uint8_t score_stride = 0;
        std::uint8_t score_context = 0;
        std::uint8_t confidence = 0;  //!< post-assignment confidence
    };

    void assign(ClassEntry& e);

    ClassifyingConfig cfg_;
    std::uint64_t class_mask_;
    std::uint64_t value_mask_;
    LastValuePredictor lvp_;
    StridePredictor stride_;
    FcmPredictor fcm_;
    std::vector<ClassEntry> classes_;
};

} // namespace vpred

#endif // DFCM_CORE_CLASSIFYING_PREDICTOR_HH
