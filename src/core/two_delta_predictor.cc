#include "core/two_delta_predictor.hh"

#include <cassert>
#include <sstream>

#include "core/trace_kernel.hh"

namespace vpred
{

TwoDeltaPredictor::TwoDeltaPredictor(unsigned table_bits,
                                     unsigned value_bits)
    : table_bits_(table_bits), value_bits_(value_bits),
      index_mask_(maskBits(table_bits)), value_mask_(maskBits(value_bits)),
      table_(std::size_t{1} << table_bits)
{
    assert(table_bits <= 28);
    assert(value_bits >= 1 && value_bits <= 64);
}

Value
TwoDeltaPredictor::predict(Pc pc) const
{
    const Entry& e = table_[index(pc)];
    return (e.last + e.s1) & value_mask_;
}

void
TwoDeltaPredictor::update(Pc pc, Value actual)
{
    Entry& e = table_[index(pc)];
    actual &= value_mask_;

    const Value new_stride = (actual - e.last) & value_mask_;
    if (new_stride == e.s2)
        e.s1 = new_stride;
    e.s2 = new_stride;
    e.last = actual;
}

bool
TwoDeltaPredictor::predictAndUpdate(Pc pc, Value actual)
{
    // Fused predict + update: one table lookup instead of two.
    Entry& e = table_[index(pc)];
    const bool correct = ((e.last + e.s1) & value_mask_) == actual;

    actual &= value_mask_;
    const Value new_stride = (actual - e.last) & value_mask_;
    if (new_stride == e.s2)
        e.s1 = new_stride;
    e.s2 = new_stride;
    e.last = actual;
    return correct;
}

PredictorStats
TwoDeltaPredictor::runTraceSpan(std::span<const TraceRecord> trace)
{
    PredictorStats stats;
    runTraceKernel(*this, trace, stats);
    return stats;
}

std::uint64_t
TwoDeltaPredictor::storageBits() const
{
    return std::uint64_t{table_.size()} * (3ull * value_bits_);
}

std::string
TwoDeltaPredictor::name() const
{
    std::ostringstream os;
    os << "2delta(t=" << table_bits_ << ")";
    return os.str();
}

} // namespace vpred
