#include "core/confidence_dfcm.hh"

#include <cassert>
#include <sstream>

namespace vpred
{

const char*
confidenceModeName(ConfidenceMode mode)
{
    switch (mode) {
      case ConfidenceMode::None: return "none";
      case ConfidenceMode::Tag: return "tag";
      case ConfidenceMode::Counter: return "counter";
      case ConfidenceMode::TagAndCounter: return "tag+counter";
    }
    return "?";
}

ConfidenceDfcm::ConfidenceDfcm(const ConfidenceDfcmConfig& config)
    : cfg_(config), hash_(ShiftFoldHash::fsR5(config.l2_bits)),
      // The orthogonal hash: same window (shift) as the main hash so
      // both see exactly the same history, but a different per-value
      // mixing (scramble()) so collisions are independent.
      tag_hash_(ShiftFoldHash::fsR5(config.l2_bits)),
      l1_mask_(maskBits(config.l1_bits)),
      value_mask_(maskBits(config.value_bits)),
      counter_max_(config.counter_bits == 0
                           ? 0 : (1u << config.counter_bits) - 1),
      l1_(std::size_t{1} << config.l1_bits),
      l2_(std::size_t{1} << config.l2_bits)
{
    assert(config.l1_bits <= 28);
    assert(config.l2_bits >= 1 && config.l2_bits <= 28);
    assert(config.tag_bits <= 16);
    assert(config.counter_bits <= 8);
    assert(config.counter_threshold <= counter_max_
           || config.counter_bits == 0);
}

std::uint32_t
ConfidenceDfcm::tagOf(std::uint64_t tag_hist) const
{
    if (cfg_.tag_bits == 0)
        return 0;
    return static_cast<std::uint32_t>(foldXor(tag_hist, cfg_.tag_bits));
}

ConfidenceDfcm::Prediction
ConfidenceDfcm::predict(Pc pc) const
{
    const L1Entry& e1 = l1_[pc & l1_mask_];
    const L2Entry& e2 = l2_[e1.hist];

    Prediction p;
    p.value = (e1.last + e2.stride) & value_mask_;
    p.tag_match = cfg_.tag_bits == 0 || e2.tag == tagOf(e1.tag_hist);
    p.counter_ok = cfg_.counter_bits == 0
        || e2.counter >= cfg_.counter_threshold;
    switch (cfg_.mode) {
      case ConfidenceMode::None:
        p.confident = true;
        break;
      case ConfidenceMode::Tag:
        p.confident = p.tag_match;
        break;
      case ConfidenceMode::Counter:
        p.confident = p.counter_ok;
        break;
      case ConfidenceMode::TagAndCounter:
        p.confident = p.tag_match && p.counter_ok;
        break;
    }
    return p;
}

void
ConfidenceDfcm::update(Pc pc, Value actual)
{
    actual &= value_mask_;
    L1Entry& e1 = l1_[pc & l1_mask_];
    L2Entry& e2 = l2_[e1.hist];

    const Value stride = (actual - e1.last) & value_mask_;

    // Train the entry's confidence counter on whether *it* would
    // have predicted correctly, regardless of the gate.
    if (cfg_.counter_bits > 0) {
        const bool entry_correct =
                ((e1.last + e2.stride) & value_mask_) == actual;
        if (entry_correct) {
            if (e2.counter < counter_max_)
                ++e2.counter;
        } else {
            e2.counter = e2.counter < 2 ? 0 : e2.counter - 2;
        }
    }

    e2.stride = stride;
    e2.tag = tagOf(e1.tag_hist);
    e1.hist = hash_.insert(e1.hist, stride);
    e1.tag_hist = tag_hash_.insert(e1.tag_hist, scramble(stride));
    e1.last = actual;
}

void
ConfidenceDfcm::step(Pc pc, Value actual, GatedStats& stats)
{
    const Prediction p = predict(pc);
    ++stats.total;
    if (p.confident) {
        ++stats.attempted;
        if (p.value == (actual & value_mask_))
            ++stats.correct;
    }
    update(pc, actual);
}

GatedStats
ConfidenceDfcm::run(std::span<const TraceRecord> trace)
{
    GatedStats stats;
    for (const TraceRecord& rec : trace)
        step(rec.pc, rec.value, stats);
    return stats;
}

std::uint64_t
ConfidenceDfcm::storageBits() const
{
    // DFCM storage plus the second hash register per level-1 entry
    // and tag + counter per level-2 entry.
    const std::uint64_t l1_entry = cfg_.l2_bits + cfg_.value_bits
        + (cfg_.tag_bits > 0 ? cfg_.l2_bits : 0);
    const std::uint64_t l2_entry = cfg_.value_bits + cfg_.tag_bits
        + cfg_.counter_bits;
    return l1_.size() * l1_entry + l2_.size() * l2_entry;
}

std::string
ConfidenceDfcm::name() const
{
    std::ostringstream os;
    os << "cdfcm(l1=" << cfg_.l1_bits << ",l2=" << cfg_.l2_bits
       << ",tag=" << cfg_.tag_bits << ",ctr=" << cfg_.counter_bits
       << "," << confidenceModeName(cfg_.mode) << ")";
    return os.str();
}

} // namespace vpred
