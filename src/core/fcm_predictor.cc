#include "core/fcm_predictor.hh"

#include <cassert>
#include <sstream>

#include "core/trace_kernel.hh"

namespace vpred
{

FcmPredictor::FcmPredictor(const FcmConfig& config)
    : cfg_(config), hash_(config.resolvedHash()),
      l1_mask_(maskBits(config.l1_bits)),
      value_mask_(maskBits(config.value_bits)),
      l1_(std::size_t{1} << config.l1_bits, 0),
      l2_(std::size_t{1} << config.l2_bits, 0)
{
    assert(config.l1_bits <= 28);
    assert(config.l2_bits >= 1 && config.l2_bits <= 28);
    assert(hash_.indexBits() == config.l2_bits);
}

Value
FcmPredictor::predict(Pc pc) const
{
    return l2_[l1_[l1Index(pc)]];
}

void
FcmPredictor::update(Pc pc, Value actual)
{
    actual &= value_mask_;
    std::uint64_t& hist = l1_[l1Index(pc)];
    // The correct value lands in the entry the prediction was read
    // from; then the history is advanced with the new value.
    l2_[hist] = actual;
    hist = hash_.insert(hist, actual);
}

bool
FcmPredictor::predictAndUpdate(Pc pc, Value actual)
{
    // Fused predict + update: the default composition computes the
    // level-1 index and loads the hashed history twice per record;
    // here both happen once, and the level-2 entry is touched through
    // one reference (the update writes the same slot the prediction
    // was read from, since the history advances only afterwards).
    std::uint64_t& hist = l1_[l1Index(pc)];
    Value& slot = l2_[hist];
    const bool correct = slot == actual;
    actual &= value_mask_;
    slot = actual;
    hist = hash_.insert(hist, actual);
    return correct;
}

PredictorStats
FcmPredictor::runTraceSpan(std::span<const TraceRecord> trace)
{
    PredictorStats stats;
    runTraceKernel(*this, trace, stats);
    return stats;
}

std::uint64_t
FcmPredictor::storageBits() const
{
    // Level 1 holds one hashed history (l2_bits wide) per entry;
    // level 2 holds one value per entry.
    return std::uint64_t{l1_.size()} * cfg_.l2_bits
        + std::uint64_t{l2_.size()} * cfg_.value_bits;
}

std::string
FcmPredictor::name() const
{
    std::ostringstream os;
    os << "fcm(l1=" << cfg_.l1_bits << ",l2=" << cfg_.l2_bits << ")";
    return os.str();
}

} // namespace vpred
