/**
 * @file
 * Configuration-driven construction of value predictors.
 *
 * Benchmarks and examples describe the predictor they want as a
 * PredictorConfig value; the factory turns it into a live predictor.
 * This keeps every experiment's parameters in one declarative spot.
 */

#ifndef DFCM_CORE_PREDICTOR_FACTORY_HH
#define DFCM_CORE_PREDICTOR_FACTORY_HH

#include <memory>
#include <string>

#include "core/value_predictor.hh"

namespace vpred
{

/** Kinds of predictor the factory can build. */
enum class PredictorKind
{
    Lvp,            //!< last value predictor
    Stride,         //!< confidence-guarded stride predictor
    TwoDelta,       //!< two-delta stride predictor
    Fcm,            //!< finite context method
    Dfcm,           //!< differential finite context method
    HybridStrideFcm,        //!< counter-meta stride+FCM hybrid
    HybridStrideDfcm,       //!< counter-meta stride+DFCM hybrid
    PerfectStrideFcm,       //!< oracle-meta stride+FCM (Figure 16)
    PerfectStrideDfcm,      //!< oracle-meta stride+DFCM (Figure 16)
};

/** Declarative description of a predictor instance. */
struct PredictorConfig
{
    PredictorKind kind = PredictorKind::Dfcm;
    /** log2(#entries): single table (LVP/stride/two-delta) or the
     *  level-1 table (FCM/DFCM). For hybrids, also the stride
     *  component's table size, as in Figure 16. */
    unsigned l1_bits = 16;
    /** log2(#level-2 entries); ignored by single-level predictors. */
    unsigned l2_bits = 12;
    unsigned value_bits = 32;
    /** Stored-stride width for DFCM (Section 4.4). */
    unsigned stride_bits = 32;
    /** Delay updates by this many predictions (Figure 17). */
    unsigned update_delay = 0;
    /** Override the FS R-k shift for FCM/DFCM hashes (5 = paper). */
    unsigned hash_shift = 5;
};

/** Build a predictor from its declarative description. */
std::unique_ptr<ValuePredictor> makePredictor(const PredictorConfig& config);

/** Short name for a PredictorKind, e.g. "dfcm". */
std::string kindName(PredictorKind kind);

} // namespace vpred

#endif // DFCM_CORE_PREDICTOR_FACTORY_HH
