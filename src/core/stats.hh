/**
 * @file
 * Prediction-accuracy accounting.
 */

#ifndef DFCM_CORE_STATS_HH
#define DFCM_CORE_STATS_HH

#include <cstdint>
#include <span>

#include "core/types.hh"

namespace vpred
{

class ValuePredictor;

/**
 * Counts of predictions and correct predictions.
 *
 * Summing PredictorStats over several benchmarks and then taking
 * accuracy() yields exactly the paper's "arithmetic mean over all
 * SPECint benchmarks, weighted by the number of predicted
 * instructions".
 */
struct PredictorStats
{
    std::uint64_t predictions = 0;
    std::uint64_t correct = 0;

    /** Record one prediction outcome. */
    void
    record(bool was_correct)
    {
        ++predictions;
        if (was_correct)
            ++correct;
    }

    /** Fraction of correct predictions (0 when nothing predicted). */
    double
    accuracy() const
    {
        return predictions == 0
            ? 0.0
            : static_cast<double>(correct)
                    / static_cast<double>(predictions);
    }

    PredictorStats&
    operator+=(const PredictorStats& o)
    {
        predictions += o.predictions;
        correct += o.correct;
        return *this;
    }

    bool operator==(const PredictorStats&) const = default;
};

/**
 * Run a predictor over a complete trace in the paper's
 * predict-then-update discipline. Accepts any contiguous record
 * view — an owned ValueTrace converts implicitly, and memory-mapped
 * store spans run with no copy.
 */
PredictorStats runTrace(ValuePredictor& predictor,
                        std::span<const TraceRecord> trace);

} // namespace vpred

#endif // DFCM_CORE_STATS_HH
