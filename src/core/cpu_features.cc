#include "core/cpu_features.hh"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "core/env_util.hh"

namespace vpred
{

namespace
{

/**
 * Whether the running CPU can execute AVX2. Only meaningful when the
 * AVX2 translation unit was compiled in (REPRO_SIMD_HAS_AVX2); the
 * compiler builtin performs the CPUID probe once per process.
 */
bool
cpuHasAvx2()
{
#if defined(REPRO_SIMD_HAS_AVX2) && (defined(__x86_64__) || defined(__i386__))
    static const bool has = __builtin_cpu_supports("avx2") > 0;
    return has;
#else
    return false;
#endif
}

/**
 * Whether the running CPU can execute the AVX-512 TU: F (32-bit
 * gather/scatter, mask compare, variable shifts) plus CD (vpconflictd,
 * the gather column tier's in-batch duplicate detector). CD has
 * shipped alongside F on every AVX-512 implementation, so requiring
 * both costs no real hardware. The TU is only compiled when the AVX2
 * TU is too (see core/CMakeLists.txt), so AVX-512 availability implies
 * AVX2 availability both at build time and — architecturally — at run
 * time.
 */
bool
cpuHasAvx512()
{
#if defined(REPRO_SIMD_HAS_AVX512) \
        && (defined(__x86_64__) || defined(__i386__))
    static const bool has = __builtin_cpu_supports("avx512f") > 0
            && __builtin_cpu_supports("avx512cd") > 0;
    return has;
#else
    return false;
#endif
}

std::vector<SimdBackend>
probeBackends()
{
    std::vector<SimdBackend> backends = {SimdBackend::Scalar};
#if defined(REPRO_SIMD_HAS_SSE2)
    // SSE2 is architecturally guaranteed on x86-64; no probe needed.
    backends.push_back(SimdBackend::Sse2);
#endif
#if defined(REPRO_SIMD_HAS_NEON)
    // Advanced SIMD is architecturally guaranteed on AArch64.
    backends.push_back(SimdBackend::Neon);
#endif
    if (cpuHasAvx2())
        backends.push_back(SimdBackend::Avx2);
    if (cpuHasAvx512())
        backends.push_back(SimdBackend::Avx512);
    return backends;
}

/** One-time stderr warning keyed on the offending REPRO_SIMD value. */
void
warnOnce(const std::string& message)
{
    static std::once_flag flag;
    std::call_once(flag, [&] {
        std::cerr << "warning: " << message << "\n";
    });
}

std::string
toLower(const char* s)
{
    std::string out;
    for (; *s != '\0'; ++s)
        out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(*s)));
    return out;
}

} // namespace

const char*
simdBackendName(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Scalar: return "scalar";
      case SimdBackend::Sse2: return "sse2";
      case SimdBackend::Avx2: return "avx2";
      case SimdBackend::Neon: return "neon";
      case SimdBackend::Avx512: return "avx512";
    }
    return "unknown";
}

unsigned
simdVectorBits(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Scalar: return 64;
      case SimdBackend::Sse2: return 128;
      case SimdBackend::Avx2: return 256;
      case SimdBackend::Neon: return 128;
      case SimdBackend::Avx512: return 512;
    }
    return 0;
}

const std::vector<SimdBackend>&
availableSimdBackends()
{
    static const std::vector<SimdBackend> backends = probeBackends();
    return backends;
}

bool
simdBackendAvailable(SimdBackend backend)
{
    for (SimdBackend b : availableSimdBackends())
        if (b == backend)
            return true;
    return false;
}

SimdBackend
bestSimdBackend()
{
    return availableSimdBackends().back();
}

SimdBackend
activeSimdBackend()
{
    const std::optional<std::string> env = envRaw("REPRO_SIMD");
    if (!env)
        return bestSimdBackend();
    const std::string v = toLower(env->c_str());
    if (v == "1" || v == "on" || v == "best" || v == "true")
        return bestSimdBackend();
    if (v == "0" || v == "off" || v == "false" || v == "scalar")
        return SimdBackend::Scalar;

    SimdBackend requested = SimdBackend::Scalar;
    if (v == "sse2") {
        requested = SimdBackend::Sse2;
    } else if (v == "avx2") {
        requested = SimdBackend::Avx2;
    } else if (v == "avx512") {
        requested = SimdBackend::Avx512;
    } else if (v == "neon") {
        requested = SimdBackend::Neon;
    } else {
        // A name that is not a backend at all is a misconfiguration,
        // not a preference — it used to silently select "best", so a
        // typo like REPRO_SIMD=sse3 measured the wrong kernel.
        envUsageError("REPRO_SIMD", *env,
                      "one of scalar/sse2/avx2/avx512/neon/best/0/1/"
                      "on/off");
    }
    // A real backend name that this build or CPU cannot run is an
    // environmental condition, not a typo: warn and degrade to the
    // scalar reference kernels, which are always available.
    if (simdBackendAvailable(requested))
        return requested;
    warnOnce("REPRO_SIMD=" + v
             + " is not compiled in or not supported by this CPU;"
               " falling back to the scalar kernels");
    return SimdBackend::Scalar;
}

} // namespace vpred
