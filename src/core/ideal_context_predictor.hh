/**
 * @file
 * Ideal-index context predictors: FCM/DFCM variants whose level-2
 * "table" is an unbounded, collision-free map from the *exact*
 * history to the stored value.
 *
 * The paper closes its aliasing analysis with: "the hashing function
 * remains responsible for the majority of the mispredictions (59%),
 * there is still plenty of room for improvement." These predictors
 * measure that headroom: they remove hash aliasing (and capacity
 * aliasing) entirely while keeping the two-level prediction
 * principle, bounding what any better hash could achieve at a given
 * order. They are analysis devices, not hardware proposals — their
 * storage is unbounded, so storageBits() reports the *current* model
 * size for reference only.
 */

#ifndef DFCM_CORE_IDEAL_CONTEXT_PREDICTOR_HH
#define DFCM_CORE_IDEAL_CONTEXT_PREDICTOR_HH

#include <unordered_map>
#include <vector>

#include "core/value_predictor.hh"

namespace vpred
{

/**
 * Order-k context predictor with exact (collision-free) context
 * lookup, in plain (FCM) or differential (DFCM) form.
 *
 * The level-1 table is still finite and untagged (indexed by the
 * instruction's low bits) so level-1 behaviour matches the real
 * predictors; only the level-2 indexing is idealized.
 */
class IdealContextPredictor : public ValuePredictor
{
  public:
    /**
     * @param l1_bits log2(#level-1 entries).
     * @param order History length (values or differences).
     * @param differential False = FCM form, true = DFCM form.
     * @param value_bits Predicted value width.
     */
    IdealContextPredictor(unsigned l1_bits, unsigned order,
                          bool differential, unsigned value_bits = 32);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /** Number of distinct contexts materialized so far. */
    std::size_t contextCount() const { return l2_.size(); }

    unsigned order() const { return order_; }

  private:
    struct L1Entry
    {
        Value last = 0;
        std::vector<Value> history;  //!< oldest..newest, size = order
    };

    /** Collision-free key of a history (exact concatenation via
     *  string of bytes). */
    std::string keyOf(const std::vector<Value>& history) const;

    unsigned l1_bits_;
    unsigned order_;
    bool differential_;
    unsigned value_bits_;
    std::uint64_t l1_mask_;
    std::uint64_t value_mask_;
    std::vector<L1Entry> l1_;
    std::unordered_map<std::string, Value> l2_;
};

} // namespace vpred

#endif // DFCM_CORE_IDEAL_CONTEXT_PREDICTOR_HH
