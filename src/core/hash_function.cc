#include "core/hash_function.hh"

#include <cassert>
#include <sstream>

namespace vpred
{

ShiftFoldHash::ShiftFoldHash(unsigned index_bits, unsigned shift,
                             unsigned fold_bits)
    : index_bits_(index_bits), shift_(shift), fold_bits_(fold_bits),
      order_((index_bits + shift - 1) / shift), mask_(maskBits(index_bits))
{
    assert(index_bits >= 1 && index_bits <= 32);
    assert(shift >= 1 && shift <= index_bits);
    assert(fold_bits >= 1 && fold_bits <= 64);
}

ShiftFoldHash
ShiftFoldHash::fsR5(unsigned index_bits)
{
    // For tiny tables the shift cannot exceed the index width.
    const unsigned shift = index_bits < 5 ? index_bits : 5;
    return ShiftFoldHash(index_bits, shift, index_bits);
}

ShiftFoldHash
ShiftFoldHash::fsRk(unsigned index_bits, unsigned k)
{
    const unsigned shift = k > index_bits ? index_bits : k;
    return ShiftFoldHash(index_bits, shift, index_bits);
}

ShiftFoldHash
ShiftFoldHash::concat(unsigned index_bits, unsigned order)
{
    assert(order >= 1 && index_bits % order == 0);
    const unsigned field = index_bits / order;
    return ShiftFoldHash(index_bits, field, field);
}

std::string
ShiftFoldHash::name() const
{
    std::ostringstream os;
    if (fold_bits_ == index_bits_) {
        os << "FS R-" << shift_ << "(" << index_bits_ << ")";
    } else if (fold_bits_ == shift_) {
        os << "concat-" << order_ << "(" << index_bits_ << ")";
    } else {
        os << "shiftfold(n=" << index_bits_ << ",s=" << shift_
           << ",f=" << fold_bits_ << ")";
    }
    return os.str();
}

} // namespace vpred
