/**
 * @file
 * SSE2 instantiation of the column-parallel multi-geometry kernel.
 * SSE2 is the x86-64 architectural baseline, so this translation
 * unit needs no extra -m flags; the REPRO_SIMD_TU_SSE2 define pins
 * core/simd.hh to the 128-bit backend even when the whole build is
 * tuned wider (REPRO_NATIVE).
 */

#define REPRO_SIMD_TU_SSE2 1

#include "core/multi_geom_simd_impl.hh"

namespace vpred::detail
{

static_assert(simd::Native::kBackend == SimdBackend::Sse2,
              "simd.hh resolved the wrong backend for this TU");

void
runMgColumnsSse2(const MgSimdView& view,
                 std::span<const TraceRecord> trace)
{
    runMgColumnsAll<simd::Native>(view, trace);
}

} // namespace vpred::detail
