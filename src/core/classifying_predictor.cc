#include "core/classifying_predictor.hh"

#include <cassert>
#include <sstream>

namespace vpred
{

const char*
valueClassName(ValueClass cls)
{
    switch (cls) {
      case ValueClass::Unknown: return "unknown";
      case ValueClass::Constant: return "constant";
      case ValueClass::Stride: return "stride";
      case ValueClass::Context: return "context";
      case ValueClass::Unpredictable: return "unpredictable";
    }
    return "?";
}

ClassifyingPredictor::ClassifyingPredictor(const ClassifyingConfig& config)
    : cfg_(config), class_mask_(maskBits(config.class_bits)),
      value_mask_(maskBits(config.value_bits)),
      lvp_(config.lvp_bits, config.value_bits),
      stride_(config.stride_bits, config.value_bits),
      fcm_(FcmConfig{.l1_bits = config.fcm_l1_bits,
                     .l2_bits = config.fcm_l2_bits,
                     .value_bits = config.value_bits,
                     .hash = {}}),
      classes_(std::size_t{1} << config.class_bits)
{
    assert(config.class_bits <= 28);
    assert(config.warmup >= 4 && config.warmup <= 255);
    assert(config.min_score_32nds <= 32);
}

ValueClass
ClassifyingPredictor::classOf(Pc pc) const
{
    return classes_[pc & class_mask_].cls;
}

Value
ClassifyingPredictor::predict(Pc pc) const
{
    switch (classOf(pc)) {
      case ValueClass::Constant:
        return lvp_.predict(pc);
      case ValueClass::Stride:
        return stride_.predict(pc);
      case ValueClass::Context:
        return fcm_.predict(pc);
      case ValueClass::Unknown:
      case ValueClass::Unpredictable:
        // No predictor assigned: no meaningful prediction. Returning
        // a sentinel keeps the ValuePredictor contract; accuracy
        // accounting sees it as a miss (unless the value really is 0).
        return 0;
    }
    return 0;
}

void
ClassifyingPredictor::assign(ClassEntry& e)
{
    const unsigned need =
            cfg_.warmup * cfg_.min_score_32nds / 32;
    // Priority on ties: stride beats constant beats context, since
    // cheaper predictors are preferable at equal accuracy; constants
    // are also perfectly predicted by the stride predictor, so the
    // dedicated constant class only wins clear cases.
    std::uint8_t best = e.score_const;
    ValueClass cls = ValueClass::Constant;
    if (e.score_stride >= best) {
        best = e.score_stride;
        cls = ValueClass::Stride;
    }
    if (e.score_context > best) {
        best = e.score_context;
        cls = ValueClass::Context;
    }
    e.cls = best >= need ? cls : ValueClass::Unpredictable;
    e.confidence = 8;
}

void
ClassifyingPredictor::update(Pc pc, Value actual)
{
    actual &= value_mask_;
    ClassEntry& e = classes_[pc & class_mask_];

    switch (e.cls) {
      case ValueClass::Unknown:
        // Warm-up: score every class predictor and train them all.
        if (lvp_.predict(pc) == actual)
            ++e.score_const;
        if (stride_.predict(pc) == actual)
            ++e.score_stride;
        if (fcm_.predict(pc) == actual)
            ++e.score_context;
        lvp_.update(pc, actual);
        stride_.update(pc, actual);
        fcm_.update(pc, actual);
        if (++e.seen >= cfg_.warmup)
            assign(e);
        break;

      case ValueClass::Constant:
      case ValueClass::Stride:
      case ValueClass::Context: {
        // Assigned: only the owning predictor is consulted and
        // trained (the resource-partitioning property).
        ValuePredictor& owner =
                e.cls == ValueClass::Constant
                        ? static_cast<ValuePredictor&>(lvp_)
                        : e.cls == ValueClass::Stride
                                ? static_cast<ValuePredictor&>(stride_)
                                : static_cast<ValuePredictor&>(fcm_);
        const bool correct = owner.predict(pc) == actual;
        owner.update(pc, actual);
        if (correct) {
            if (e.confidence < 15)
                ++e.confidence;
        } else if (e.confidence-- <= 1) {
            // Assignment went stale: reclassify from scratch.
            e = ClassEntry{};
        }
        break;
      }

      case ValueClass::Unpredictable:
        // Periodically give the instruction another chance; a phase
        // change may have made it predictable.
        if (++e.seen == 0)
            e = ClassEntry{};
        break;
    }
}

std::uint64_t
ClassifyingPredictor::storageBits() const
{
    // Classifier entry: 3-bit class + 8-bit seen + 3 x 6-bit scores
    // + 4-bit confidence = 33 bits.
    return lvp_.storageBits() + stride_.storageBits()
        + fcm_.storageBits() + classes_.size() * 33ull;
}

std::string
ClassifyingPredictor::name() const
{
    std::ostringstream os;
    os << "classify(lvp=" << cfg_.lvp_bits << ",stride="
       << cfg_.stride_bits << ",fcm=" << cfg_.fcm_l1_bits << "/"
       << cfg_.fcm_l2_bits << ")";
    return os.str();
}

std::vector<std::uint64_t>
ClassifyingPredictor::classCensus() const
{
    std::vector<std::uint64_t> census(5, 0);
    for (const ClassEntry& e : classes_)
        ++census[static_cast<unsigned>(e.cls)];
    return census;
}

} // namespace vpred
