/**
 * @file
 * Stride-occupancy profiling of the level-2 table (Section 2.4 /
 * Figures 6 and 9 of the paper).
 *
 * The paper's measurement: a value is "part of a stride pattern" if
 * a side stride predictor predicts it correctly. Every time the
 * two-level predictor is accessed for such a value, the counter of
 * the level-2 entry it reads is incremented. Sorting the counters in
 * descending order visualizes how many level-2 entries stride
 * patterns crowd into.
 */

#ifndef DFCM_CORE_STRIDE_OCCUPANCY_HH
#define DFCM_CORE_STRIDE_OCCUPANCY_HH

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hh"

namespace vpred
{

class FcmPredictor;
class DfcmPredictor;

/** Outcome of a stride-occupancy profiling run. */
struct OccupancyResult
{
    /** Per-level-2-entry stride-access counts, descending. */
    std::vector<std::uint64_t> sorted_counts;
    /** Total accesses flagged as part of a stride pattern. */
    std::uint64_t stride_accesses = 0;
    /** Total trace records processed. */
    std::uint64_t total_accesses = 0;

    /** Number of level-2 entries accessed more than @p k times by
     *  stride-pattern values (the summary statistic quoted in the
     *  paper: ">100 entries more than 100 times" etc.). */
    std::uint64_t entriesAccessedMoreThan(std::uint64_t k) const;
};

/**
 * Profile which level-2 entries an FCM touches for stride-pattern
 * values.
 *
 * @param predictor The predictor under observation; it is trained
 *        on the trace as a side effect.
 * @param trace The value trace view (ValueTrace converts
 *        implicitly).
 * @param side_stride_bits log2(#entries) of the side stride
 *        predictor used as the stride-pattern detector (the paper
 *        uses 64K entries).
 */
OccupancyResult profileStrideOccupancy(FcmPredictor& predictor,
                                       std::span<const TraceRecord> trace,
                                       unsigned side_stride_bits = 16);

/** DFCM overload of profileStrideOccupancy(). */
OccupancyResult profileStrideOccupancy(DfcmPredictor& predictor,
                                       std::span<const TraceRecord> trace,
                                       unsigned side_stride_bits = 16);

} // namespace vpred

#endif // DFCM_CORE_STRIDE_OCCUPANCY_HH
