#include "core/alias_analysis.hh"

#include <cassert>

namespace vpred
{

const char*
aliasTypeName(AliasType type)
{
    switch (type) {
      case AliasType::L1: return "l1";
      case AliasType::Hash: return "hash";
      case AliasType::L2Priv: return "l2_priv";
      case AliasType::L2Pc: return "l2_pc";
      case AliasType::None: return "none";
    }
    return "?";
}

PredictorStats
AliasBreakdown::total() const
{
    PredictorStats t;
    for (const PredictorStats& s : per_type)
        t += s;
    return t;
}

double
AliasBreakdown::fractionOfPredictions(AliasType t) const
{
    const PredictorStats all = total();
    if (all.predictions == 0)
        return 0.0;
    return static_cast<double>((*this)[t].predictions)
        / static_cast<double>(all.predictions);
}

double
AliasBreakdown::fractionWrong(AliasType t) const
{
    const PredictorStats all = total();
    if (all.predictions == 0)
        return 0.0;
    const PredictorStats& s = (*this)[t];
    return static_cast<double>(s.predictions - s.correct)
        / static_cast<double>(all.predictions);
}

AliasBreakdown&
AliasBreakdown::operator+=(const AliasBreakdown& o)
{
    for (std::size_t i = 0; i < kAliasTypeCount; ++i)
        per_type[i] += o.per_type[i];
    return *this;
}

AliasAnalyzer::AliasAnalyzer(const FcmConfig& config, bool differential)
    : cfg_(config), differential_(differential),
      hash_(config.resolvedHash()), order_(hash_.order()),
      l1_mask_(maskBits(config.l1_bits)),
      value_mask_(maskBits(config.value_bits)),
      l1_(std::size_t{1} << config.l1_bits),
      l2_(std::size_t{1} << config.l2_bits, 0),
      l2_shadow_(std::size_t{1} << config.l2_bits)
{
    assert(config.l1_bits <= 24 && config.l2_bits <= 24);
    for (L1Shadow& s : l1_) {
        s.history.assign(order_, 0);
        s.writers.assign(order_, kNoPc);
    }
    for (L2Shadow& s : l2_shadow_) {
        s.history.assign(order_, 0);
        s.writer = kNoPc;
    }
}

std::uint64_t
AliasAnalyzer::hashOf(const std::vector<Value>& history) const
{
    // The incremental FS R-k hash is an exact function of the last
    // `order` values (older contributions are fully shifted out), so
    // re-hashing the shadow history reproduces the functional
    // predictor's level-1 hash register.
    std::uint64_t h = 0;
    for (Value v : history)
        h = hash_.insert(h, v);
    return h;
}

std::uint64_t
AliasAnalyzer::privKey(std::size_t l1_idx, std::uint64_t l2_idx) const
{
    return (static_cast<std::uint64_t>(l1_idx) << cfg_.l2_bits) | l2_idx;
}

AliasType
AliasAnalyzer::classify(Pc pc) const
{
    const std::size_t l1_idx = pc & l1_mask_;
    const L1Shadow& s1 = l1_[l1_idx];
    const std::uint64_t l2_idx = hashOf(s1.history);

    // 1. Level-1 conflict: some history element was produced by a
    //    different static instruction (or never produced at all).
    for (Pc w : s1.writers) {
        if (w != pc)
            return AliasType::L1;
    }

    // 2. Hash conflict: the history recorded at the last update of
    //    this level-2 entry differs from the current one.
    const L2Shadow& s2 = l2_shadow_[l2_idx];
    if (s2.history != s1.history)
        return AliasType::Hash;

    // 3. Private-table divergence: would a per-level-1-entry level-2
    //    table predict differently? Private tables start out zeroed
    //    like the global one.
    const auto it = private_l2_.find(privKey(l1_idx, l2_idx));
    const Value priv = it == private_l2_.end() ? 0 : it->second;
    if (priv != l2_[l2_idx])
        return AliasType::L2Priv;

    // 4. Same history and content but last written by another
    //    instruction: neutral/constructive sharing.
    if (s2.writer != pc)
        return AliasType::L2Pc;

    return AliasType::None;
}

Value
AliasAnalyzer::predictValue(Pc pc) const
{
    const L1Shadow& s1 = l1_[pc & l1_mask_];
    const std::uint64_t l2_idx = hashOf(s1.history);
    if (differential_)
        return (s1.last + l2_[l2_idx]) & value_mask_;
    return l2_[l2_idx];
}

void
AliasAnalyzer::step(Pc pc, Value actual)
{
    actual &= value_mask_;

    const AliasType type = classify(pc);
    const bool correct = predictValue(pc) == actual;
    breakdown_.per_type[static_cast<unsigned>(type)].record(correct);

    // --- update, mirroring Fcm/DfcmPredictor::update ---
    const std::size_t l1_idx = pc & l1_mask_;
    L1Shadow& s1 = l1_[l1_idx];
    const std::uint64_t l2_idx = hashOf(s1.history);

    const Value stored = differential_
        ? ((actual - s1.last) & value_mask_) : actual;

    l2_[l2_idx] = stored;
    l2_shadow_[l2_idx].history = s1.history;
    l2_shadow_[l2_idx].writer = pc;
    private_l2_[privKey(l1_idx, l2_idx)] = stored;

    // Advance the (difference) history and writer shadow.
    s1.history.erase(s1.history.begin());
    s1.history.push_back(stored);
    s1.writers.erase(s1.writers.begin());
    s1.writers.push_back(pc);
    s1.last = actual;
}

AliasBreakdown
AliasAnalyzer::run(std::span<const TraceRecord> trace)
{
    for (const TraceRecord& rec : trace)
        step(rec.pc, rec.value);
    return breakdown_;
}

} // namespace vpred
