/**
 * @file
 * Value-trace serialization.
 *
 * The paper generates traces on the fly; for a library, persistent
 * traces are useful to decouple (slow, one-off) workload execution
 * from (repeated) predictor sweeps, and to import traces from other
 * simulators. Three formats:
 *
 *  - binary "VPT1": magic, record count, then (pc, value) pairs as
 *    little-endian u64 — compact and exact;
 *  - binary "VPT2": a self-describing container for the persistent
 *    trace store (harness/trace_store.hh) — a 64-byte header with
 *    format/generator versions, the workload name, the trace scale,
 *    the record count and an FNV-1a checksum; the record section is
 *    64-byte-aligned so readers can mmap it and hand kernels a
 *    zero-copy std::span<const TraceRecord>;
 *  - CSV with a "pc,value" header — for interop and eyeballing.
 *
 * readTraceBinary()/loadTrace() accept both binary formats, so VPT2
 * store entries remain readable by every VPT1-era tool path.
 *
 * VPT2 on-disk layout (all integers little-endian):
 *
 *     offset  size  field
 *          0     4  magic "VPT2"
 *          4     4  u32 format version (kVpt2FormatVersion)
 *          8     4  u32 generator version (workload-suite revision)
 *         12     4  u32 workload-name length N
 *         16     4  u32 program-output length M
 *         20     4  u32 reserved (zero)
 *         24     8  u64 trace scale (IEEE-754 double bit pattern)
 *         32     8  u64 record count
 *         40     8  u64 dynamic instruction count
 *         48     8  u64 checksum (FNV-1a over pc,value words)
 *         56     8  u64 record-section offset (64-byte aligned)
 *         64     N  workload name (no terminator)
 *       64+N     M  program output
 *              pad  zero bytes up to the record-section offset
 *     records_offset  16*count  TraceRecord payload (pc, value u64 LE)
 */

#ifndef DFCM_CORE_TRACE_IO_HH
#define DFCM_CORE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>

#include "core/types.hh"

namespace vpred
{

/** Error raised on malformed trace files. */
class TraceIoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** VPT2 container format revision. */
inline constexpr std::uint32_t kVpt2FormatVersion = 1;

/** Fixed VPT2 header size in bytes. */
inline constexpr std::size_t kVpt2HeaderSize = 64;

/** Alignment of the VPT2 record section (cache-line sized, a
 *  multiple of sizeof(TraceRecord), so mmap'd spans are aligned). */
inline constexpr std::size_t kVpt2RecordAlignment = 64;

/** Provenance metadata carried by a VPT2 container. */
struct Vpt2Meta
{
    std::string workload;                //!< source workload name
    double scale = 1.0;                  //!< trace scale it ran at
    std::uint32_t generator_version = 0; //!< workload-suite revision
    std::uint64_t instructions = 0;      //!< dynamic instructions
    std::string output;                  //!< program console output
};

/** Parsed VPT2 header: metadata plus the record-section geometry
 *  needed to read (or mmap) the payload. */
struct Vpt2Layout
{
    Vpt2Meta meta;
    std::uint64_t record_count = 0;
    std::uint64_t records_offset = 0;  //!< from the start of the file
    std::uint64_t checksum = 0;        //!< expected payload checksum
};

/**
 * Order-sensitive FNV-1a checksum over a record span, folding the
 * pc and value words of each record. Endianness-independent, and
 * equal to the checksum of the serialized little-endian payload.
 */
std::uint64_t traceChecksum(std::span<const TraceRecord> records);

/** Write @p trace in the binary VPT1 format. */
void writeTraceBinary(std::ostream& os, const ValueTrace& trace);

/**
 * Read a binary trace, accepting both VPT1 and VPT2 containers
 * (VPT2 metadata is validated — including the checksum — and then
 * discarded). @throws TraceIoError
 */
ValueTrace readTraceBinary(std::istream& is);

/** Write @p trace as a VPT2 container with @p meta. */
void writeTraceVpt2(std::ostream& os, const ValueTrace& trace,
                    const Vpt2Meta& meta);

/**
 * Parse and validate a VPT2 header (magic, format version, sane
 * lengths), leaving @p is positioned just after the variable-length
 * metadata. Does not touch the record section, so callers may mmap
 * it instead of streaming. @throws TraceIoError
 */
Vpt2Layout readVpt2Header(std::istream& is);

/** Read a whole VPT2 container, verifying the payload checksum.
 *  @throws TraceIoError */
ValueTrace readTraceVpt2(std::istream& is, Vpt2Layout* layout = nullptr);

/** Write @p trace as "pc,value" CSV (decimal). */
void writeTraceCsv(std::ostream& os, const ValueTrace& trace);

/** Read a "pc,value" CSV trace (header optional).
 *  @throws TraceIoError */
ValueTrace readTraceCsv(std::istream& is);

/** Convenience: write to a path, selecting the format from the
 *  extension (".csv" = CSV, anything else = binary VPT1). */
void saveTrace(const std::string& path, const ValueTrace& trace);

/** Convenience: read from a path, selecting the format from the
 *  extension (binary paths accept VPT1 and VPT2). @throws TraceIoError */
ValueTrace loadTrace(const std::string& path);

} // namespace vpred

#endif // DFCM_CORE_TRACE_IO_HH
