/**
 * @file
 * Value-trace serialization.
 *
 * The paper generates traces on the fly; for a library, persistent
 * traces are useful to decouple (slow, one-off) workload execution
 * from (repeated) predictor sweeps, and to import traces from other
 * simulators. Two formats:
 *
 *  - binary "VPT1": magic, record count, then (pc, value) pairs as
 *    little-endian u64 — compact and exact;
 *  - CSV with a "pc,value" header — for interop and eyeballing.
 */

#ifndef DFCM_CORE_TRACE_IO_HH
#define DFCM_CORE_TRACE_IO_HH

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/types.hh"

namespace vpred
{

/** Error raised on malformed trace files. */
class TraceIoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Write @p trace in the binary VPT1 format. */
void writeTraceBinary(std::ostream& os, const ValueTrace& trace);

/** Read a binary VPT1 trace. @throws TraceIoError */
ValueTrace readTraceBinary(std::istream& is);

/** Write @p trace as "pc,value" CSV (decimal). */
void writeTraceCsv(std::ostream& os, const ValueTrace& trace);

/** Read a "pc,value" CSV trace (header optional).
 *  @throws TraceIoError */
ValueTrace readTraceCsv(std::istream& is);

/** Convenience: write to a path, selecting the format from the
 *  extension (".csv" = CSV, anything else = binary). */
void saveTrace(const std::string& path, const ValueTrace& trace);

/** Convenience: read from a path, selecting the format from the
 *  extension. @throws TraceIoError */
ValueTrace loadTrace(const std::string& path);

} // namespace vpred

#endif // DFCM_CORE_TRACE_IO_HH
