#include "core/assoc_dfcm_predictor.hh"

#include <cassert>
#include <sstream>

namespace vpred
{

AssocDfcmPredictor::AssocDfcmPredictor(const AssocDfcmConfig& config)
    : cfg_(config),
      hash_(ShiftFoldHash::fsR5(config.set_bits + config.tag_bits)),
      l1_mask_(maskBits(config.l1_bits)),
      value_mask_(maskBits(config.value_bits)),
      l1_(std::size_t{1} << config.l1_bits),
      l2_((std::size_t{1} << config.set_bits) * config.ways)
{
    assert(config.l1_bits <= 28);
    assert(config.set_bits >= 1 && config.set_bits <= 24);
    assert(config.ways >= 1 && config.ways <= 8);
    assert(config.tag_bits >= 1 && config.tag_bits <= 16);
}

std::uint64_t
AssocDfcmPredictor::setOf(std::uint64_t hist) const
{
    return hist & maskBits(cfg_.set_bits);
}

std::uint32_t
AssocDfcmPredictor::tagOf(std::uint64_t hist) const
{
    return static_cast<std::uint32_t>(hist >> cfg_.set_bits)
        & static_cast<std::uint32_t>(maskBits(cfg_.tag_bits));
}

int
AssocDfcmPredictor::findWay(std::uint64_t set, std::uint32_t tag) const
{
    const std::size_t base = set * cfg_.ways;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        const Way& way = l2_[base + w];
        if (way.valid && way.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

Value
AssocDfcmPredictor::predict(Pc pc) const
{
    const L1Entry& e = l1_[pc & l1_mask_];
    const std::uint64_t set = setOf(e.hist);
    const int w = findWay(set, tagOf(e.hist));
    ++lookups_;
    // On a tag miss the history is unknown to the table: predict a
    // zero stride (last value) rather than a stranger's stride.
    Value stride = 0;
    if (w >= 0) {
        ++hits_;
        stride = l2_[set * cfg_.ways + w].stride;
    }
    return (e.last + stride) & value_mask_;
}

void
AssocDfcmPredictor::update(Pc pc, Value actual)
{
    actual &= value_mask_;
    L1Entry& e = l1_[pc & l1_mask_];
    const std::uint64_t set = setOf(e.hist);
    const std::uint32_t tag = tagOf(e.hist);
    const std::size_t base = set * cfg_.ways;

    const Value stride = (actual - e.last) & value_mask_;

    int w = findWay(set, tag);
    if (w < 0) {
        // Allocate the LRU way.
        w = 0;
        for (unsigned i = 1; i < cfg_.ways; ++i) {
            if (!l2_[base + i].valid) {
                w = static_cast<int>(i);
                break;
            }
            if (l2_[base + i].lru < l2_[base + w].lru)
                w = static_cast<int>(i);
        }
        l2_[base + w].valid = true;
        l2_[base + w].tag = tag;
    }
    l2_[base + w].stride = stride;

    // LRU update: demote the others, promote the touched way.
    for (unsigned i = 0; i < cfg_.ways; ++i) {
        Way& way = l2_[base + i];
        if (static_cast<int>(i) == w)
            way.lru = static_cast<std::uint8_t>(cfg_.ways - 1);
        else if (way.lru > 0)
            --way.lru;
    }

    e.hist = hash_.insert(e.hist, stride);
    e.last = actual;
}

std::uint64_t
AssocDfcmPredictor::storageBits() const
{
    // L1: wide hash register + last value. L2: per way a stride, a
    // tag, a valid bit and ceil(log2(ways)) LRU bits.
    unsigned lru_bits = 0;
    for (unsigned w = 1; w < cfg_.ways; w <<= 1)
        ++lru_bits;
    const std::uint64_t l1_entry =
            cfg_.set_bits + cfg_.tag_bits + cfg_.value_bits;
    const std::uint64_t way_bits =
            cfg_.value_bits + cfg_.tag_bits + 1 + lru_bits;
    return l1_.size() * l1_entry + l2_.size() * way_bits;
}

std::string
AssocDfcmPredictor::name() const
{
    std::ostringstream os;
    os << "adfcm(l1=" << cfg_.l1_bits << ",sets=" << cfg_.set_bits
       << ",w=" << cfg_.ways << ",tag=" << cfg_.tag_bits << ")";
    return os.str();
}

double
AssocDfcmPredictor::hitRate() const
{
    return lookups_ == 0
        ? 0.0 : static_cast<double>(hits_) / static_cast<double>(lookups_);
}

} // namespace vpred
