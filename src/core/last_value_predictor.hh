/**
 * @file
 * Last value predictor (Lipasti), Figure 1(a) of the paper.
 */

#ifndef DFCM_CORE_LAST_VALUE_PREDICTOR_HH
#define DFCM_CORE_LAST_VALUE_PREDICTOR_HH

#include <vector>

#include "core/value_predictor.hh"

namespace vpred
{

/**
 * Predicts that an instruction produces the same value as the last
 * time it executed. The table is direct-mapped on the low bits of
 * the instruction identifier and untagged, exactly as in the paper.
 */
class LastValuePredictor : public ValuePredictor
{
  public:
    /**
     * @param table_bits log2 of the number of table entries.
     * @param value_bits Width of the predicted values (storage
     *        accounting and wrap-around arithmetic).
     */
    explicit LastValuePredictor(unsigned table_bits,
                                unsigned value_bits = 32);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    bool predictAndUpdate(Pc pc, Value actual) override;
    PredictorStats runTraceSpan(std::span<const TraceRecord>) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /** Number of table entries. */
    std::size_t entries() const { return table_.size(); }

  private:
    std::size_t index(Pc pc) const { return pc & index_mask_; }

    unsigned table_bits_;
    unsigned value_bits_;
    std::uint64_t index_mask_;
    std::uint64_t value_mask_;
    std::vector<Value> table_;
};

} // namespace vpred

#endif // DFCM_CORE_LAST_VALUE_PREDICTOR_HH
