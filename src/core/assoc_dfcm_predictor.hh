/**
 * @file
 * Set-associative tagged-level-2 DFCM — a design-space extension.
 *
 * The paper's level-2 table is direct-mapped and untagged, and its
 * aliasing analysis (Section 4.2) shows hash conflicts cause the
 * majority of remaining DFCM mispredictions. The classic structural
 * fix is associativity with partial tags: split the history hash
 * into a set index and a tag, search the ways for a tag match, and
 * fall back to a plain last-value prediction (stride 0) on a miss
 * instead of consuming a colliding stranger's stride.
 *
 * bench_ablation_assoc compares this organization against the
 * direct-mapped DFCM at equal storage.
 */

#ifndef DFCM_CORE_ASSOC_DFCM_PREDICTOR_HH
#define DFCM_CORE_ASSOC_DFCM_PREDICTOR_HH

#include <vector>

#include "core/hash_function.hh"
#include "core/value_predictor.hh"

namespace vpred
{

/** Geometry of the set-associative DFCM. */
struct AssocDfcmConfig
{
    unsigned l1_bits = 16;    //!< log2(#level-1 entries)
    unsigned set_bits = 10;   //!< log2(#level-2 sets)
    unsigned ways = 2;        //!< level-2 associativity (1..8)
    unsigned tag_bits = 6;    //!< partial tag width per entry
    unsigned value_bits = 32;
};

/**
 * DFCM with a set-associative, partially-tagged level-2 table and
 * LRU replacement.
 */
class AssocDfcmPredictor : public ValuePredictor
{
  public:
    explicit AssocDfcmPredictor(const AssocDfcmConfig& config);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /** Fraction of lookups that found a tag match so far. */
    double hitRate() const;

    const AssocDfcmConfig& config() const { return cfg_; }

  private:
    struct L1Entry
    {
        Value last = 0;
        std::uint64_t hist = 0;  //!< wide hash: set index + tag
    };

    struct Way
    {
        std::uint32_t tag = 0;
        bool valid = false;
        std::uint8_t lru = 0;    //!< higher = more recently used
        Value stride = 0;
    };

    std::uint64_t setOf(std::uint64_t hist) const;
    std::uint32_t tagOf(std::uint64_t hist) const;

    /** Way holding the tag, or -1. */
    int findWay(std::uint64_t set, std::uint32_t tag) const;

    AssocDfcmConfig cfg_;
    ShiftFoldHash hash_;        //!< produces set_bits + tag_bits
    std::uint64_t l1_mask_;
    std::uint64_t value_mask_;
    std::vector<L1Entry> l1_;
    std::vector<Way> l2_;       //!< sets * ways, way-major per set
    mutable std::uint64_t lookups_ = 0;
    mutable std::uint64_t hits_ = 0;
};

} // namespace vpred

#endif // DFCM_CORE_ASSOC_DFCM_PREDICTOR_HH
