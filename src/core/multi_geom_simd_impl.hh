/**
 * @file
 * The column-parallel multi-geometry kernel template, shared by every
 * SIMD backend translation unit. Include only from
 * multi_geom_simd_<backend>.cc — each of those TUs instantiates the
 * template over its own simd::Native (a distinct type per backend
 * thanks to the inline namespaces in core/simd.hh, so the
 * instantiations never alias across TUs).
 *
 * Per record the kernel does what the scalar reference in
 * core/multi_geom.cc does, in the same observable order, but with the
 * per-column work rearranged for the vector unit:
 *
 *   1. scalar: level-1 lookup (entry index, last value, new stride),
 *      shared by all columns;
 *   2. scalar per column: level-2 probe against the raw 64-bit
 *      actual, then the store of the masked value / narrowed stride —
 *      the tables are separately sized so the lanes have no common
 *      gather base, and keeping the probe scalar keeps the expression
 *      textually identical to the per-config predictAndUpdate;
 *   3. vector: advance all padded_n hashed histories at once —
 *      h' = ((h << shift) ^ (fold(v) & fold_mask)) & index_mask with
 *      per-lane constants, the fold unrolled to the shared worst-case
 *      chunk count;
 *   4. prefetch: the next record's level-1 bank line and the level-2
 *      slots its (now final) hashes will probe.
 *
 * Why 32-bit lanes reproduce the 64-bit scalar hash exactly: the
 * inserted value is masked to value_bits <= 32 bits, so the fold's
 * running value always fits a lane and dies to zero after its own
 * column's ceil(value_bits / fold_bits) chunks — running every lane
 * for the shared worst case only XORs zeros into the early-finishing
 * columns. The only intermediate that can exceed 32 bits in the
 * reference is h << shift (h < 2^28, shift <= 28); its bits >= 32
 * are discarded by the <= 28-bit index mask, which is exactly what
 * the truncating lane shift discards.
 */

#ifndef DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH
#define DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH

#include "core/multi_geom_simd.hh"
#include "core/simd.hh"

namespace vpred::detail
{

template <class Ops, bool kDfcm, bool kWiden>
inline void
runMgColumns(const MgSimdView& v, std::span<const TraceRecord> trace)
{
    using Vec = typename Ops::Vec;
    const std::size_t n = v.n;
    const std::size_t pn = v.padded_n;
    const std::size_t size = trace.size();

    // The record walk, parameterized over how the bank's hashed
    // histories advance. Everything else — the scalar level-1 work,
    // the per-column probes in per-config order, the prefetches — is
    // identical for both advance strategies below.
    const auto walk = [&](auto&& advance) {
        for (std::size_t i = 0; i < size; ++i) {
            const TraceRecord& rec = trace[i];
            const std::size_t idx = rec.pc & v.l1_mask;
            std::uint32_t* bank = v.hists + idx * pn;

            // Start pulling the next record's history bank now so its
            // level-1 latency hides under this record's table probes.
            std::size_t nidx = idx;
            if (i + 1 < size) {
                nidx = trace[i + 1].pc & v.l1_mask;
                simd::prefetchRead(v.hists + nidx * pn);
            }

            const Value masked = rec.value & v.value_mask;
            Value last = 0;
            Value inserted = masked;
            if constexpr (kDfcm) {
                last = v.last[idx];
                inserted = (masked - last) & v.value_mask;
            }

            // Scalar per-column probe/update, the per-config rule
            // verbatim: compare against the raw actual, store the
            // masked value (FCM) or the narrowed stride (DFCM).
            for (std::size_t c = 0; c < n; ++c) {
                std::uint32_t* slot = v.l2[c] + bank[c];
                if constexpr (kDfcm) {
                    Value stored = Value{*slot};
                    if constexpr (kWiden)
                        stored = signExtend(stored, v.stride_bits)
                                & v.value_mask;
                    v.correct[c] +=
                            ((last + stored) & v.value_mask)
                            == rec.value;
                    *slot = static_cast<std::uint32_t>(inserted
                                                       & v.stride_mask);
                } else {
                    v.correct[c] += Value{*slot} == rec.value;
                    *slot = static_cast<std::uint32_t>(masked);
                }
            }

            // Vector history advance over the whole padded bank. The
            // probes above already consumed the pre-update hashes, so
            // the new ones can be written in place.
            advance(bank,
                    Ops::broadcast(static_cast<std::uint32_t>(inserted)));

            if constexpr (kDfcm)
                v.last[idx] = masked;

            // The next record's hashes are final now (even when it
            // maps to the bank just updated): prefetch the level-2
            // slots it will probe — but only for the columns whose
            // tables are too big to stay cache-resident (the view's
            // precomputed list).
            if (i + 1 < size) {
                const std::uint32_t* nbank = v.hists + nidx * pn;
                for (std::size_t j = 0; j < v.n_prefetch; ++j) {
                    const std::uint32_t c = v.prefetch_cols[j];
                    simd::prefetchRead(v.l2[c] + nbank[c]);
                }
            }
        }
    };

    if (pn == Ops::kLanes) {
        // One vector covers the whole bank (the paper's 7-column
        // fig-10 sweep on a 256-bit backend): hoist the per-lane
        // FS R-k parameter vectors out of the record loop. The
        // compiler cannot do this itself — the in-place history
        // stores may alias the parameter arrays as far as it knows.
        const Vec sh = Ops::loadu(v.shifts);
        const Vec fb = Ops::loadu(v.fold_bits);
        const Vec fm = Ops::loadu(v.fold_masks);
        const Vec im = Ops::loadu(v.index_masks);
        walk([&](std::uint32_t* bank, Vec vin) {
            Vec f = Ops::broadcast(0);
            Vec t = vin;
            for (unsigned k = 0; k < v.chunks; ++k) {
                f = Ops::bxor(f, t);
                t = Ops::shr(t, fb);
            }
            const Vec nh = Ops::band(
                    Ops::bxor(Ops::shl(Ops::loadu(bank), sh),
                              Ops::band(f, fm)),
                    im);
            Ops::storeu(bank, nh);
        });
        return;
    }

    walk([&](std::uint32_t* bank, Vec vin) {
        for (std::size_t b = 0; b < pn; b += Ops::kLanes) {
            const Vec fb = Ops::loadu(v.fold_bits + b);
            Vec f = Ops::broadcast(0);
            Vec t = vin;
            for (unsigned k = 0; k < v.chunks; ++k) {
                f = Ops::bxor(f, t);
                t = Ops::shr(t, fb);
            }
            const Vec nh = Ops::band(
                    Ops::bxor(Ops::shl(Ops::loadu(bank + b),
                                       Ops::loadu(v.shifts + b)),
                              Ops::band(f, Ops::loadu(v.fold_masks + b))),
                    Ops::loadu(v.index_masks + b));
            Ops::storeu(bank + b, nh);
        }
    });
}

/** Route the runtime FCM/DFCM and stride-width flags to the right
 *  compile-time instantiation. */
template <class Ops>
inline void
runMgColumnsAll(const MgSimdView& v, std::span<const TraceRecord> trace)
{
    if (v.dfcm) {
        if (v.widen)
            runMgColumns<Ops, true, true>(v, trace);
        else
            runMgColumns<Ops, true, false>(v, trace);
    } else {
        runMgColumns<Ops, false, false>(v, trace);
    }
}

} // namespace vpred::detail

#endif // DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH
