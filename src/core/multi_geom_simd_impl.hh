/**
 * @file
 * The column-parallel multi-geometry kernel template, shared by every
 * SIMD backend translation unit. Include only from
 * multi_geom_simd_<backend>.cc — each of those TUs instantiates the
 * template over its own simd::Native (a distinct type per backend
 * thanks to the inline namespaces in core/simd.hh, so the
 * instantiations never alias across TUs).
 *
 * Per record the kernel does what the scalar reference in
 * core/multi_geom.cc does, in the same observable order, but with the
 * per-column work rearranged for the vector unit:
 *
 *   1. scalar: level-1 lookup (entry index, last value, new stride),
 *      shared by all columns;
 *   2. scalar per column: level-2 probe against the raw 64-bit
 *      actual, then the store of the masked value / narrowed stride —
 *      the tables are separately sized so the lanes have no common
 *      gather base, and keeping the probe scalar keeps the expression
 *      textually identical to the per-config predictAndUpdate;
 *   3. vector: advance all padded_n hashed histories at once —
 *      h' = ((h << shift) ^ (fold(v) & fold_mask)) & index_mask with
 *      per-lane constants, the fold unrolled to the shared worst-case
 *      chunk count;
 *   4. prefetch: the next record's level-1 bank line and the level-2
 *      slots its (now final) hashes will probe.
 *
 * Why 32-bit lanes reproduce the 64-bit scalar hash exactly: the
 * inserted value is masked to value_bits <= 32 bits, so the fold's
 * running value always fits a lane and dies to zero after its own
 * column's ceil(value_bits / fold_bits) chunks — running every lane
 * for the shared worst case only XORs zeros into the early-finishing
 * columns. The only intermediate that can exceed 32 bits in the
 * reference is h << shift (h < 2^28, shift <= 28); its bits >= 32
 * are discarded by the <= 28-bit index mask, which is exactly what
 * the truncating lane shift discards.
 */

#ifndef DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH
#define DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH

#include <bit>

#include "core/multi_geom_simd.hh"
#include "core/simd.hh"

namespace vpred::detail
{

template <class Ops, bool kDfcm, bool kWiden>
inline void
runMgColumns(const MgSimdView& v, std::span<const TraceRecord> trace)
{
    using Vec = typename Ops::Vec;
    const std::size_t n = v.n;
    const std::size_t pn = v.padded_n;
    const std::size_t size = trace.size();

    // The record walk, parameterized over how the bank's hashed
    // histories advance. Everything else — the scalar level-1 work,
    // the per-column probes in per-config order, the prefetches — is
    // identical for both advance strategies below.
    const auto walk = [&](auto&& advance) {
        for (std::size_t i = 0; i < size; ++i) {
            const TraceRecord& rec = trace[i];
            const std::size_t idx = rec.pc & v.l1_mask;
            std::uint32_t* bank = v.hists + idx * pn;

            // Start pulling the next record's history bank now so its
            // level-1 latency hides under this record's table probes.
            std::size_t nidx = idx;
            if (i + 1 < size) {
                nidx = trace[i + 1].pc & v.l1_mask;
                simd::prefetchRead(v.hists + nidx * pn);
            }

            const Value masked = rec.value & v.value_mask;
            Value last = 0;
            Value inserted = masked;
            if constexpr (kDfcm) {
                last = v.last[idx];
                inserted = (masked - last) & v.value_mask;
            }

            // Scalar per-column probe/update, the per-config rule
            // verbatim: compare against the raw actual, store the
            // masked value (FCM) or the narrowed stride (DFCM).
            for (std::size_t c = 0; c < n; ++c) {
                std::uint32_t* slot = v.l2[c] + bank[c];
                if constexpr (kDfcm) {
                    Value stored = Value{*slot};
                    if constexpr (kWiden)
                        stored = signExtend(stored, v.stride_bits)
                                & v.value_mask;
                    v.correct[c] +=
                            ((last + stored) & v.value_mask)
                            == rec.value;
                    *slot = static_cast<std::uint32_t>(inserted
                                                       & v.stride_mask);
                } else {
                    v.correct[c] += Value{*slot} == rec.value;
                    *slot = static_cast<std::uint32_t>(masked);
                }
            }

            // Vector history advance over the whole padded bank. The
            // probes above already consumed the pre-update hashes, so
            // the new ones can be written in place.
            advance(bank,
                    Ops::broadcast(static_cast<std::uint32_t>(inserted)));

            if constexpr (kDfcm)
                v.last[idx] = masked;

            // The next record's hashes are final now (even when it
            // maps to the bank just updated): prefetch the level-2
            // slots it will probe — but only for the columns whose
            // tables are too big to stay cache-resident (the view's
            // precomputed list).
            if (i + 1 < size) {
                const std::uint32_t* nbank = v.hists + nidx * pn;
                for (std::size_t j = 0; j < v.n_prefetch; ++j) {
                    const std::uint32_t c = v.prefetch_cols[j];
                    simd::prefetchRead(v.l2[c] + nbank[c]);
                }
            }
        }
    };

    if (pn == Ops::kLanes) {
        // One vector covers the whole bank (the paper's 7-column
        // fig-10 sweep on a 256-bit backend): hoist the per-lane
        // FS R-k parameter vectors out of the record loop. The
        // compiler cannot do this itself — the in-place history
        // stores may alias the parameter arrays as far as it knows.
        const Vec sh = Ops::loadu(v.shifts);
        const Vec fb = Ops::loadu(v.fold_bits);
        const Vec fm = Ops::loadu(v.fold_masks);
        const Vec im = Ops::loadu(v.index_masks);
        walk([&](std::uint32_t* bank, Vec vin) {
            Vec f = Ops::broadcast(0);
            Vec t = vin;
            for (unsigned k = 0; k < v.chunks; ++k) {
                f = Ops::bxor(f, t);
                t = Ops::shr(t, fb);
            }
            const Vec nh = Ops::band(
                    Ops::bxor(Ops::shl(Ops::loadu(bank), sh),
                              Ops::band(f, fm)),
                    im);
            Ops::storeu(bank, nh);
        });
        return;
    }

    walk([&](std::uint32_t* bank, Vec vin) {
        for (std::size_t b = 0; b < pn; b += Ops::kLanes) {
            const Vec fb = Ops::loadu(v.fold_bits + b);
            Vec f = Ops::broadcast(0);
            Vec t = vin;
            for (unsigned k = 0; k < v.chunks; ++k) {
                f = Ops::bxor(f, t);
                t = Ops::shr(t, fb);
            }
            const Vec nh = Ops::band(
                    Ops::bxor(Ops::shl(Ops::loadu(bank + b),
                                       Ops::loadu(v.shifts + b)),
                              Ops::band(f, Ops::loadu(v.fold_masks + b))),
                    Ops::loadu(v.index_masks + b));
            Ops::storeu(bank + b, nh);
        }
    });
}

/** Route the runtime FCM/DFCM and stride-width flags to the right
 *  compile-time instantiation. */
template <class Ops>
inline void
runMgColumnsAll(const MgSimdView& v, std::span<const TraceRecord> trace)
{
    if (v.dfcm) {
        if (v.widen)
            runMgColumns<Ops, true, true>(v, trace);
        else
            runMgColumns<Ops, true, false>(v, trace);
    } else {
        runMgColumns<Ops, false, false>(v, trace);
    }
}

/**
 * The stream-packed kernel: execute a canonical 16-lane schedule
 * (MgPackedView) in which every lane of a step carries one record
 * from a distinct level-1 entry. Unlike the column kernel above —
 * which walks *one* stream and vectorizes across geometry columns —
 * this tier vectorizes across independent streams, which finally
 * gives the level-2 probes a common gather base: all lanes of a
 * column probe the same shard-owned table.
 *
 * Per (step, column) the observable order is fixed by contract:
 *
 *   1. gather the 16 pre-update hashes from the history bank;
 *   2. gather the 16 level-2 slots and compare against the lane
 *      values (prediction counters via mask popcount — a lane only
 *      counts when its raw 64-bit value fits value_mask, which the
 *      packer precomputed into step_fits);
 *   3. scatter the stored values back in ascending lane order
 *      (duplicate level-2 indices: highest lane wins, matching
 *      vpscatterdd);
 *   4. scatter the advanced hashes (lane entries are distinct within
 *      a step, so these never collide).
 *
 * A backend narrower than 16 lanes (AVX2) runs each phase over all
 * sub-vectors before the next phase, preserving the same order. The
 * u32 widening argument for DFCM strides: (lastv + signextend32(st))
 * & value_mask equals the 64-bit reference expression truncated to
 * value_bits <= 32 bits, because both addends agree with the
 * reference modulo 2^32.
 */
template <class Ops, bool kDfcm, bool kWiden>
inline void
runMgPacked(const MgPackedView& v)
{
    using Vec = typename Ops::Vec;
    constexpr unsigned kW = simd::kPackLanes;
    static_assert(kW % Ops::kLanes == 0 && Ops::kLanes <= kW,
                  "pack width must be a whole number of vectors");
    constexpr unsigned kSub = kW / Ops::kLanes;
    constexpr std::uint32_t kSubMask =
            static_cast<std::uint32_t>((1ull << Ops::kLanes) - 1);

    const std::size_t n = v.n;
    const Vec vmask = Ops::broadcast(v.value_mask);
    const Vec smask = Ops::broadcast(v.stride_mask);
    const Vec pnv =
            Ops::broadcast(static_cast<std::uint32_t>(v.padded_n));
    [[maybe_unused]] Vec wbit = Ops::broadcast(0);
    if constexpr (kDfcm && kWiden)
        wbit = Ops::broadcast(1u << (v.stride_bits - 1));

    for (std::size_t s = 0; s < v.steps; ++s) {
        const std::uint32_t* entries = v.lane_entry + s * kW;
        const std::uint32_t* values = v.lane_value + s * kW;
        const std::uint32_t active = v.step_active[s];
        const std::uint32_t fits = v.step_fits[s];

        Vec val[kSub];
        Vec ebase[kSub];
        [[maybe_unused]] Vec lastv[kSub];
        Vec ins[kSub];
        for (unsigned q = 0; q < kSub; ++q) {
            val[q] = Ops::loadu(values + q * Ops::kLanes);
            ebase[q] = Ops::mul(Ops::loadu(entries + q * Ops::kLanes),
                                pnv);
        }
        if constexpr (kDfcm) {
            // last[] is u64 per entry; a scalar gather into a lane
            // buffer keeps the vector core 32-bit. Inactive lanes
            // read entry 0 — harmless, masked out below.
            alignas(64) std::uint32_t lastbuf[kW];
            for (unsigned l = 0; l < kW; ++l)
                lastbuf[l] = static_cast<std::uint32_t>(
                        v.last[entries[l]]);
            for (unsigned q = 0; q < kSub; ++q) {
                lastv[q] = Ops::loadu(lastbuf + q * Ops::kLanes);
                ins[q] = Ops::band(Ops::sub(val[q], lastv[q]), vmask);
            }
        } else {
            for (unsigned q = 0; q < kSub; ++q)
                ins[q] = val[q];
        }

        for (std::size_t c = 0; c < n; ++c) {
            const Vec cv = Ops::broadcast(static_cast<std::uint32_t>(c));
            Vec hidx[kSub];
            Vec h[kSub];
            Vec slot[kSub];
            for (unsigned q = 0; q < kSub; ++q) {
                hidx[q] = Ops::add(ebase[q], cv);
                h[q] = Ops::gather32(v.hists, hidx[q]);
            }
            for (unsigned q = 0; q < kSub; ++q)
                slot[q] = Ops::gather32(v.l2[c], h[q]);

            std::uint32_t eq = 0;
            for (unsigned q = 0; q < kSub; ++q) {
                Vec pred;
                if constexpr (kDfcm) {
                    Vec st = slot[q];
                    if constexpr (kWiden)
                        st = Ops::sub(Ops::bxor(st, wbit), wbit);
                    pred = Ops::band(Ops::add(lastv[q], st), vmask);
                } else {
                    pred = slot[q];
                }
                eq |= Ops::cmpeqMask(pred, val[q]) << (q * Ops::kLanes);
            }
            v.correct[c] += static_cast<unsigned>(
                    std::popcount(eq & fits));

            for (unsigned q = 0; q < kSub; ++q) {
                const Vec stv = kDfcm ? Ops::band(ins[q], smask)
                                      : val[q];
                Ops::scatter32(v.l2[c], h[q], stv,
                               (active >> (q * Ops::kLanes)) & kSubMask);
            }

            const Vec shv = Ops::broadcast(v.shifts[c]);
            const Vec fbv = Ops::broadcast(v.fold_bits[c]);
            const Vec fmv = Ops::broadcast(v.fold_masks[c]);
            const Vec imv = Ops::broadcast(v.index_masks[c]);
            for (unsigned q = 0; q < kSub; ++q) {
                Vec f = Ops::broadcast(0);
                Vec t = ins[q];
                for (unsigned k = 0; k < v.chunks; ++k) {
                    f = Ops::bxor(f, t);
                    t = Ops::shr(t, fbv);
                }
                const Vec nh = Ops::band(
                        Ops::bxor(Ops::shl(h[q], shv),
                                  Ops::band(f, fmv)),
                        imv);
                Ops::scatter32(v.hists, hidx[q], nh,
                               (active >> (q * Ops::kLanes)) & kSubMask);
            }
        }

        if constexpr (kDfcm) {
            for (unsigned l = 0; l < kW; ++l)
                if (active & (1u << l))
                    v.last[entries[l]] = values[l];
        }
    }
}

/** Route the runtime FCM/DFCM and stride-width flags to the right
 *  compile-time packed instantiation. */
template <class Ops>
inline void
runMgPackedAll(const MgPackedView& v)
{
    if (v.dfcm) {
        if (v.widen)
            runMgPacked<Ops, true, true>(v);
        else
            runMgPacked<Ops, true, false>(v);
    } else {
        runMgPacked<Ops, false, false>(v);
    }
}

} // namespace vpred::detail

#endif // DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH
