/**
 * @file
 * The column-parallel multi-geometry kernel template, shared by every
 * SIMD backend translation unit. Include only from
 * multi_geom_simd_<backend>.cc — each of those TUs instantiates the
 * template over its own simd::Native (a distinct type per backend
 * thanks to the inline namespaces in core/simd.hh, so the
 * instantiations never alias across TUs).
 *
 * Per record the kernel does what the scalar reference in
 * core/multi_geom.cc does, in the same observable order, but with the
 * per-column work rearranged for the vector unit:
 *
 *   1. scalar: level-1 lookup (entry index, last value, new stride),
 *      shared by all columns;
 *   2. scalar per column: level-2 probe against the raw 64-bit
 *      actual, then the store of the masked value / narrowed stride —
 *      the tables are separately sized so the lanes have no common
 *      gather base, and keeping the probe scalar keeps the expression
 *      textually identical to the per-config predictAndUpdate;
 *   3. vector: advance all padded_n hashed histories at once —
 *      h' = ((h << shift) ^ (fold(v) & fold_mask)) & index_mask with
 *      per-lane constants, the fold unrolled to the shared worst-case
 *      chunk count;
 *   4. prefetch: the next record's level-1 bank line and the level-2
 *      slots its (now final) hashes will probe.
 *
 * Why 32-bit lanes reproduce the 64-bit scalar hash exactly: the
 * inserted value is masked to value_bits <= 32 bits, so the fold's
 * running value always fits a lane and dies to zero after its own
 * column's ceil(value_bits / fold_bits) chunks — running every lane
 * for the shared worst case only XORs zeros into the early-finishing
 * columns. The only intermediate that can exceed 32 bits in the
 * reference is h << shift (h < 2^28, shift <= 28); its bits >= 32
 * are discarded by the <= 28-bit index mask, which is exactly what
 * the truncating lane shift discards.
 */

#ifndef DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH
#define DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH

#include <bit>
#include <vector>

#include "core/multi_geom_simd.hh"
#include "core/simd.hh"

namespace vpred::detail
{

template <class Ops, bool kDfcm, bool kWiden>
inline void
runMgColumns(const MgSimdView& v, std::span<const TraceRecord> trace)
{
    using Vec = typename Ops::Vec;
    const std::size_t n = v.n;
    const std::size_t pn = v.padded_n;
    const std::size_t size = trace.size();

    // The record walk, parameterized over how the bank's hashed
    // histories advance. Everything else — the scalar level-1 work,
    // the per-column probes in per-config order, the prefetches — is
    // identical for both advance strategies below.
    const auto walk = [&](auto&& advance) {
        for (std::size_t i = 0; i < size; ++i) {
            const TraceRecord& rec = trace[i];
            const std::size_t idx = rec.pc & v.l1_mask;
            std::uint32_t* bank = v.hists + idx * pn;

            // Start pulling the next record's history bank now so its
            // level-1 latency hides under this record's table probes.
            std::size_t nidx = idx;
            if (i + 1 < size) {
                nidx = trace[i + 1].pc & v.l1_mask;
                simd::prefetchRead(v.hists + nidx * pn);
            }

            const Value masked = rec.value & v.value_mask;
            Value last = 0;
            Value inserted = masked;
            if constexpr (kDfcm) {
                last = v.last[idx];
                inserted = (masked - last) & v.value_mask;
            }

            // Scalar per-column probe/update, the per-config rule
            // verbatim: compare against the raw actual, store the
            // masked value (FCM) or the narrowed stride (DFCM).
            for (std::size_t c = 0; c < n; ++c) {
                std::uint32_t* slot = v.l2[c] + bank[c];
                if constexpr (kDfcm) {
                    Value stored = Value{*slot};
                    if constexpr (kWiden)
                        stored = signExtend(stored, v.stride_bits)
                                & v.value_mask;
                    v.correct[c] +=
                            ((last + stored) & v.value_mask)
                            == rec.value;
                    *slot = static_cast<std::uint32_t>(inserted
                                                       & v.stride_mask);
                } else {
                    v.correct[c] += Value{*slot} == rec.value;
                    *slot = static_cast<std::uint32_t>(masked);
                }
            }

            // Vector history advance over the whole padded bank. The
            // probes above already consumed the pre-update hashes, so
            // the new ones can be written in place.
            advance(bank,
                    Ops::broadcast(static_cast<std::uint32_t>(inserted)));

            if constexpr (kDfcm)
                v.last[idx] = masked;

            // The next record's hashes are final now (even when it
            // maps to the bank just updated): prefetch the level-2
            // slots it will probe — but only for the columns whose
            // tables are too big to stay cache-resident (the view's
            // precomputed list).
            if (i + 1 < size) {
                const std::uint32_t* nbank = v.hists + nidx * pn;
                for (std::size_t j = 0; j < v.n_prefetch; ++j) {
                    const std::uint32_t c = v.prefetch_cols[j];
                    simd::prefetchRead(v.l2[c] + nbank[c]);
                }
            }
        }
    };

    if (pn == Ops::kLanes) {
        // One vector covers the whole bank (the paper's 7-column
        // fig-10 sweep on a 256-bit backend): hoist the per-lane
        // FS R-k parameter vectors out of the record loop. The
        // compiler cannot do this itself — the in-place history
        // stores may alias the parameter arrays as far as it knows.
        const Vec sh = Ops::loadu(v.shifts);
        const Vec fb = Ops::loadu(v.fold_bits);
        const Vec fm = Ops::loadu(v.fold_masks);
        const Vec im = Ops::loadu(v.index_masks);
        walk([&](std::uint32_t* bank, Vec vin) {
            Vec f = Ops::broadcast(0);
            Vec t = vin;
            for (unsigned k = 0; k < v.chunks; ++k) {
                f = Ops::bxor(f, t);
                t = Ops::shr(t, fb);
            }
            const Vec nh = Ops::band(
                    Ops::bxor(Ops::shl(Ops::loadu(bank), sh),
                              Ops::band(f, fm)),
                    im);
            Ops::storeu(bank, nh);
        });
        return;
    }

    walk([&](std::uint32_t* bank, Vec vin) {
        for (std::size_t b = 0; b < pn; b += Ops::kLanes) {
            const Vec fb = Ops::loadu(v.fold_bits + b);
            Vec f = Ops::broadcast(0);
            Vec t = vin;
            for (unsigned k = 0; k < v.chunks; ++k) {
                f = Ops::bxor(f, t);
                t = Ops::shr(t, fb);
            }
            const Vec nh = Ops::band(
                    Ops::bxor(Ops::shl(Ops::loadu(bank + b),
                                       Ops::loadu(v.shifts + b)),
                              Ops::band(f, Ops::loadu(v.fold_masks + b))),
                    Ops::loadu(v.index_masks + b));
            Ops::storeu(bank + b, nh);
        }
    });
}

/** Route the runtime FCM/DFCM and stride-width flags to the right
 *  compile-time instantiation. */
template <class Ops>
inline void
runMgColumnsAll(const MgSimdView& v, std::span<const TraceRecord> trace)
{
    if (v.dfcm) {
        if (v.widen)
            runMgColumns<Ops, true, true>(v, trace);
        else
            runMgColumns<Ops, true, false>(v, trace);
    } else {
        runMgColumns<Ops, false, false>(v, trace);
    }
}

/**
 * The gather column tier: the column kernel above with the scalar
 * per-record probe loop replaced — for the *big* level-2 columns the
 * plan selected (MgSimdView::gather_cols) — by batched vector
 * gather/scatter probes over W = Ops::kLanes consecutive records.
 *
 * Why: at l2_bits >= ~20 a column is megabytes of near-uniformly
 * probed memory, so each scalar probe is a dependent cache+TLB miss
 * the out-of-order window can only partially hide. Batching W
 * post-update hashes per column and issuing one vpgatherdd lets the
 * memory system service W misses in flight, and the capture-time
 * prefetch starts the lines even earlier.
 *
 * Execution order per full W-record batch:
 *
 *   Phase A, per record r in batch order — exactly the column
 *   kernel's per-record work except the gather columns' probes:
 *     - scalar level-1 lookup (+ next-record bank prefetch);
 *     - scalar probe/update for every *scalar* column, the
 *       per-config rule verbatim;
 *     - for every *gather* column: capture the pre-update hash
 *       h[c][r] into the staging area and prefetch the slot;
 *     - vector history advance of the whole padded bank (ColOps —
 *       8-lane even under AVX-512, matching the bank padding),
 *       DFCM last-value update.
 *
 *   Phase B, per gather column c — the W deferred probes:
 *     - gather the W slots of l2[c] at the staged hashes;
 *     - conflict forwarding: record r's scalar probe would read
 *       *after* records 0..r-1 stored, so a lane whose hash equals an
 *       earlier lane's must see that lane's store, not memory. For
 *       s = 1..W-1 ascending, rotate the hash vector up by s and
 *       compare: a match at shift s is lane r's *nearest* earlier
 *       equal — i.e. the last store before its read — and the store
 *       values (column-independent: the masked value or masked
 *       stride of record r-s) rotate identically into place. First
 *       match wins; resolved lanes drop out of the mask.
 *     - masked compare + popcount into correct[c] (a lane counts only
 *       when its raw 64-bit value fits value_mask, as everywhere);
 *     - scatter the W stores (highest lane wins on duplicate
 *       indices = the scalar loop's last-store-wins).
 *
 * Bit-identity to the scalar column kernel: columns never read each
 * other's tables and histories never read any table, so deferring a
 * column's probes past other columns' work is unobservable; within a
 * column the forwarding replays the exact read-after-write chain and
 * the scatter replays the final memory state; and the per-column
 * counters are sums, indifferent to evaluation order. The trailing
 * size % W records run with every column probed scalar (phase A with
 * gather columns treated as scalar), which is the reference path
 * itself. Asserted in tests/gather_column_test.cc, including
 * adversarial same-slot collision batches.
 */
template <class Ops, class ColOps, bool kDfcm, bool kWiden>
inline void
runMgGather(const MgSimdView& v, std::span<const TraceRecord> trace)
{
    using Vec = typename Ops::Vec;
    using CVec = typename ColOps::Vec;
    constexpr unsigned kW = Ops::kLanes;
    constexpr std::uint32_t kFull =
            static_cast<std::uint32_t>((1ull << kW) - 1);

    const std::size_t pn = v.padded_n;
    const std::size_t ng = v.n_gather;
    const std::size_t ns = v.n_scalar;
    const std::size_t size = trace.size();

    // Staged pre-update hashes, column-major: hstage[g * kW + r].
    std::vector<std::uint32_t> hstage(ng * kW);
    alignas(64) std::uint32_t val32[kW];
    alignas(64) std::uint32_t stv32[kW];
    alignas(64) std::uint32_t lastv32[kW];

    const Vec vmaskv =
            Ops::broadcast(static_cast<std::uint32_t>(v.value_mask));
    [[maybe_unused]] Vec wbit = Ops::broadcast(0);
    if constexpr (kDfcm && kWiden)
        wbit = Ops::broadcast(1u << (v.stride_bits - 1));

    // One scalar probe/update, the per-config rule verbatim (shared
    // by the scalar columns of every batch and by the whole tail).
    const auto scalarProbe = [&](std::uint32_t c, std::uint32_t h,
                                 const TraceRecord& rec, Value last,
                                 Value masked, Value inserted) {
        std::uint32_t* slot = v.l2[c] + h;
        if constexpr (kDfcm) {
            Value stored = Value{*slot};
            if constexpr (kWiden)
                stored = signExtend(stored, v.stride_bits)
                        & v.value_mask;
            v.correct[c] +=
                    ((last + stored) & v.value_mask) == rec.value;
            *slot = static_cast<std::uint32_t>(inserted
                                               & v.stride_mask);
        } else {
            (void)last;
            v.correct[c] += Value{*slot} == rec.value;
            *slot = static_cast<std::uint32_t>(masked);
        }
    };

    // The batch walk, parameterized over the bank advance (hoisted
    // constants when one ColOps vector covers the bank, as in the
    // column kernel).
    const auto run = [&](auto&& advance) {
        std::size_t i = 0;
        while (i < size) {
            const bool full = size - i >= kW;
            const unsigned w =
                    full ? kW : static_cast<unsigned>(size - i);
            std::uint32_t fits = 0;

            for (unsigned r = 0; r < w; ++r) {
                const TraceRecord& rec = trace[i + r];
                const std::size_t idx = rec.pc & v.l1_mask;
                std::uint32_t* bank = v.hists + idx * pn;

                std::size_t nidx = idx;
                if (i + r + 1 < size) {
                    nidx = trace[i + r + 1].pc & v.l1_mask;
                    simd::prefetchRead(v.hists + nidx * pn);
                }

                const Value masked = rec.value & v.value_mask;
                Value last = 0;
                Value inserted = masked;
                if constexpr (kDfcm) {
                    last = v.last[idx];
                    inserted = (masked - last) & v.value_mask;
                }
                val32[r] = static_cast<std::uint32_t>(masked);
                lastv32[r] = static_cast<std::uint32_t>(last);
                stv32[r] = static_cast<std::uint32_t>(
                        kDfcm ? inserted & v.stride_mask : masked);
                if ((rec.value & ~v.value_mask) == 0)
                    fits |= 1u << r;

                for (std::size_t j = 0; j < ns; ++j) {
                    const std::uint32_t c = v.scalar_cols[j];
                    scalarProbe(c, bank[c], rec, last, masked,
                                inserted);
                }

                if (full) {
                    // Prefetch even though the prefetch_cols pass
                    // already touched this line one record earlier:
                    // under full load-fill-buffer pressure prefetch
                    // hints get dropped, and the second touch
                    // measurably raises the landing rate on the
                    // DRAM-bound shapes this tier exists for.
                    for (std::size_t g = 0; g < ng; ++g) {
                        const std::uint32_t c = v.gather_cols[g];
                        const std::uint32_t h = bank[c];
                        hstage[g * kW + r] = h;
                        simd::prefetchRead(v.l2[c] + h);
                    }
                } else {
                    // Tail: too few records to fill a batch — the
                    // gather columns take the reference scalar path.
                    for (std::size_t g = 0; g < ng; ++g) {
                        const std::uint32_t c = v.gather_cols[g];
                        scalarProbe(c, bank[c], rec, last, masked,
                                    inserted);
                    }
                }

                advance(bank,
                        static_cast<std::uint32_t>(inserted));
                if constexpr (kDfcm)
                    v.last[idx] = masked;

                if (i + r + 1 < size) {
                    const std::uint32_t* nbank = v.hists + nidx * pn;
                    for (std::size_t j = 0; j < v.n_prefetch; ++j) {
                        const std::uint32_t c = v.prefetch_cols[j];
                        simd::prefetchRead(v.l2[c] + nbank[c]);
                    }
                }
            }

            if (full) {
                const Vec val = Ops::loadu(val32);
                const Vec stv = Ops::loadu(stv32);
                [[maybe_unused]] Vec lastv = Ops::broadcast(0);
                if constexpr (kDfcm)
                    lastv = Ops::loadu(lastv32);

                for (std::size_t g = 0; g < ng; ++g) {
                    const std::uint32_t c = v.gather_cols[g];
                    const Vec h = Ops::loadu(hstage.data() + g * kW);
                    Vec slot = Ops::gather32(v.l2[c], h);

                    // Only lanes with an earlier duplicate ever need
                    // forwarding; with none (the overwhelmingly common
                    // batch) the loop body never runs.
                    std::uint32_t unresolved = Ops::conflictMask(h);
                    for (unsigned s = 1; s < kW && unresolved; ++s) {
                        const std::uint32_t m =
                                Ops::cmpeqMask(h, Ops::rotateUp(h, s))
                                & (kFull << s) & unresolved;
                        if (m) {
                            slot = Ops::blendMask(
                                    slot, Ops::rotateUp(stv, s), m);
                            unresolved &= ~m;
                        }
                    }

                    Vec pred;
                    if constexpr (kDfcm) {
                        Vec st = slot;
                        if constexpr (kWiden)
                            st = Ops::sub(Ops::bxor(st, wbit), wbit);
                        pred = Ops::band(Ops::add(lastv, st), vmaskv);
                    } else {
                        pred = slot;
                    }
                    v.correct[c] += static_cast<unsigned>(
                            std::popcount(Ops::cmpeqMask(pred, val)
                                          & fits));

                    Ops::scatter32(v.l2[c], h, stv, kFull);
                }
            }

            i += w;
        }
    };

    if (pn == ColOps::kLanes) {
        const CVec sh = ColOps::loadu(v.shifts);
        const CVec fb = ColOps::loadu(v.fold_bits);
        const CVec fm = ColOps::loadu(v.fold_masks);
        const CVec im = ColOps::loadu(v.index_masks);
        run([&](std::uint32_t* bank, std::uint32_t ins) {
            CVec f = ColOps::broadcast(0);
            CVec t = ColOps::broadcast(ins);
            for (unsigned k = 0; k < v.chunks; ++k) {
                f = ColOps::bxor(f, t);
                t = ColOps::shr(t, fb);
            }
            const CVec nh = ColOps::band(
                    ColOps::bxor(ColOps::shl(ColOps::loadu(bank), sh),
                                 ColOps::band(f, fm)),
                    im);
            ColOps::storeu(bank, nh);
        });
        return;
    }

    run([&](std::uint32_t* bank, std::uint32_t ins) {
        const CVec vin = ColOps::broadcast(ins);
        for (std::size_t b = 0; b < pn; b += ColOps::kLanes) {
            const CVec fb = ColOps::loadu(v.fold_bits + b);
            CVec f = ColOps::broadcast(0);
            CVec t = vin;
            for (unsigned k = 0; k < v.chunks; ++k) {
                f = ColOps::bxor(f, t);
                t = ColOps::shr(t, fb);
            }
            const CVec nh = ColOps::band(
                    ColOps::bxor(
                            ColOps::shl(ColOps::loadu(bank + b),
                                        ColOps::loadu(v.shifts + b)),
                            ColOps::band(f,
                                         ColOps::loadu(v.fold_masks
                                                       + b))),
                    ColOps::loadu(v.index_masks + b));
            ColOps::storeu(bank + b, nh);
        }
    });
}

/** Route the runtime FCM/DFCM and stride-width flags to the right
 *  compile-time gather instantiation. */
template <class Ops, class ColOps>
inline void
runMgGatherAll(const MgSimdView& v, std::span<const TraceRecord> trace)
{
    if (v.dfcm) {
        if (v.widen)
            runMgGather<Ops, ColOps, true, true>(v, trace);
        else
            runMgGather<Ops, ColOps, true, false>(v, trace);
    } else {
        runMgGather<Ops, ColOps, false, false>(v, trace);
    }
}

/**
 * The stream-packed kernel: execute a canonical 16-lane schedule
 * (MgPackedView) in which every lane of a step carries one record
 * from a distinct level-1 entry. Unlike the column kernel above —
 * which walks *one* stream and vectorizes across geometry columns —
 * this tier vectorizes across independent streams, which finally
 * gives the level-2 probes a common gather base: all lanes of a
 * column probe the same shard-owned table.
 *
 * Per (step, column) the observable order is fixed by contract:
 *
 *   1. gather the 16 pre-update hashes from the history bank;
 *   2. gather the 16 level-2 slots and compare against the lane
 *      values (prediction counters via mask popcount — a lane only
 *      counts when its raw 64-bit value fits value_mask, which the
 *      packer precomputed into step_fits);
 *   3. scatter the stored values back in ascending lane order
 *      (duplicate level-2 indices: highest lane wins, matching
 *      vpscatterdd);
 *   4. scatter the advanced hashes (lane entries are distinct within
 *      a step, so these never collide).
 *
 * A backend narrower than 16 lanes (AVX2) runs each phase over all
 * sub-vectors before the next phase, preserving the same order. The
 * u32 widening argument for DFCM strides: (lastv + signextend32(st))
 * & value_mask equals the 64-bit reference expression truncated to
 * value_bits <= 32 bits, because both addends agree with the
 * reference modulo 2^32.
 */
template <class Ops, bool kDfcm, bool kWiden>
inline void
runMgPacked(const MgPackedView& v)
{
    using Vec = typename Ops::Vec;
    constexpr unsigned kW = simd::kPackLanes;
    static_assert(kW % Ops::kLanes == 0 && Ops::kLanes <= kW,
                  "pack width must be a whole number of vectors");
    constexpr unsigned kSub = kW / Ops::kLanes;
    constexpr std::uint32_t kSubMask =
            static_cast<std::uint32_t>((1ull << Ops::kLanes) - 1);

    const std::size_t n = v.n;
    const Vec vmask = Ops::broadcast(v.value_mask);
    const Vec smask = Ops::broadcast(v.stride_mask);
    const Vec pnv =
            Ops::broadcast(static_cast<std::uint32_t>(v.padded_n));
    [[maybe_unused]] Vec wbit = Ops::broadcast(0);
    if constexpr (kDfcm && kWiden)
        wbit = Ops::broadcast(1u << (v.stride_bits - 1));

    for (std::size_t s = 0; s < v.steps; ++s) {
        const std::uint32_t* entries = v.lane_entry + s * kW;
        const std::uint32_t* values = v.lane_value + s * kW;
        const std::uint32_t active = v.step_active[s];
        const std::uint32_t fits = v.step_fits[s];

        Vec val[kSub];
        Vec ebase[kSub];
        [[maybe_unused]] Vec lastv[kSub];
        Vec ins[kSub];
        for (unsigned q = 0; q < kSub; ++q) {
            val[q] = Ops::loadu(values + q * Ops::kLanes);
            ebase[q] = Ops::mul(Ops::loadu(entries + q * Ops::kLanes),
                                pnv);
        }
        if constexpr (kDfcm) {
            // last[] is u64 per entry; a scalar gather into a lane
            // buffer keeps the vector core 32-bit. Inactive lanes
            // read entry 0 — harmless, masked out below.
            alignas(64) std::uint32_t lastbuf[kW];
            for (unsigned l = 0; l < kW; ++l)
                lastbuf[l] = static_cast<std::uint32_t>(
                        v.last[entries[l]]);
            for (unsigned q = 0; q < kSub; ++q) {
                lastv[q] = Ops::loadu(lastbuf + q * Ops::kLanes);
                ins[q] = Ops::band(Ops::sub(val[q], lastv[q]), vmask);
            }
        } else {
            for (unsigned q = 0; q < kSub; ++q)
                ins[q] = val[q];
        }

        for (std::size_t c = 0; c < n; ++c) {
            const Vec cv = Ops::broadcast(static_cast<std::uint32_t>(c));
            Vec hidx[kSub];
            Vec h[kSub];
            Vec slot[kSub];
            for (unsigned q = 0; q < kSub; ++q) {
                hidx[q] = Ops::add(ebase[q], cv);
                h[q] = Ops::gather32(v.hists, hidx[q]);
            }
            for (unsigned q = 0; q < kSub; ++q)
                slot[q] = Ops::gather32(v.l2[c], h[q]);

            std::uint32_t eq = 0;
            for (unsigned q = 0; q < kSub; ++q) {
                Vec pred;
                if constexpr (kDfcm) {
                    Vec st = slot[q];
                    if constexpr (kWiden)
                        st = Ops::sub(Ops::bxor(st, wbit), wbit);
                    pred = Ops::band(Ops::add(lastv[q], st), vmask);
                } else {
                    pred = slot[q];
                }
                eq |= Ops::cmpeqMask(pred, val[q]) << (q * Ops::kLanes);
            }
            v.correct[c] += static_cast<unsigned>(
                    std::popcount(eq & fits));

            for (unsigned q = 0; q < kSub; ++q) {
                const Vec stv = kDfcm ? Ops::band(ins[q], smask)
                                      : val[q];
                Ops::scatter32(v.l2[c], h[q], stv,
                               (active >> (q * Ops::kLanes)) & kSubMask);
            }

            const Vec shv = Ops::broadcast(v.shifts[c]);
            const Vec fbv = Ops::broadcast(v.fold_bits[c]);
            const Vec fmv = Ops::broadcast(v.fold_masks[c]);
            const Vec imv = Ops::broadcast(v.index_masks[c]);
            for (unsigned q = 0; q < kSub; ++q) {
                Vec f = Ops::broadcast(0);
                Vec t = ins[q];
                for (unsigned k = 0; k < v.chunks; ++k) {
                    f = Ops::bxor(f, t);
                    t = Ops::shr(t, fbv);
                }
                const Vec nh = Ops::band(
                        Ops::bxor(Ops::shl(h[q], shv),
                                  Ops::band(f, fmv)),
                        imv);
                Ops::scatter32(v.hists, hidx[q], nh,
                               (active >> (q * Ops::kLanes)) & kSubMask);
            }
        }

        if constexpr (kDfcm) {
            for (unsigned l = 0; l < kW; ++l)
                if (active & (1u << l))
                    v.last[entries[l]] = values[l];
        }
    }
}

/** Route the runtime FCM/DFCM and stride-width flags to the right
 *  compile-time packed instantiation. */
template <class Ops>
inline void
runMgPackedAll(const MgPackedView& v)
{
    if (v.dfcm) {
        if (v.widen)
            runMgPacked<Ops, true, true>(v);
        else
            runMgPacked<Ops, true, false>(v);
    } else {
        runMgPacked<Ops, false, false>(v);
    }
}

} // namespace vpred::detail

#endif // DFCM_CORE_MULTI_GEOM_SIMD_IMPL_HH
