#include "core/multi_geom.hh"

#include <algorithm>
#include <cassert>

#include "core/env_util.hh"
#include "core/multi_geom_simd.hh"
#include "core/simd.hh"

namespace vpred
{

namespace
{

/**
 * Per-column state flattened for the scalar hot loop: the raw
 * level-2 table pointer plus the hash parameters, with the fold
 * chunk count precomputed so the fold runs a *fixed* number of
 * iterations per column (the generic foldXor loops while bits
 * remain, a data-dependent trip count the branch predictor keeps
 * missing).
 */
struct HotColumn
{
    std::uint32_t* l2;
    std::uint64_t index_mask;
    std::uint64_t fold_mask;
    unsigned shift;
    unsigned fold_bits;
    unsigned chunks;
};

/**
 * ShiftFoldHash::insert with the fold unrolled to @c chunks fixed
 * iterations. Identical result: XOR-ing the shifted copies first and
 * masking once is foldXor's mask-each-chunk because AND distributes
 * over XOR, and @c chunks covers every non-zero chunk of a value
 * narrower than chunks * fold_bits.
 */
inline std::uint64_t
hashInsert(const HotColumn& col, std::uint64_t h, std::uint64_t v)
{
    std::uint64_t f = 0;
    for (unsigned i = 0; i < col.chunks; ++i) {
        f ^= v;
        v >>= col.fold_bits;
    }
    return ((h << col.shift) ^ (f & col.fold_mask)) & col.index_mask;
}

std::vector<HotColumn>
hotColumns(std::vector<MultiGeomKernelBase::Column>& cols,
           unsigned value_bits)
{
    std::vector<HotColumn> hot;
    hot.reserve(cols.size());
    for (auto& col : cols) {
        const unsigned fold_bits = col.hash.foldBits();
        hot.push_back(
            {col.l2.data(), maskBits(col.hash.indexBits()),
             maskBits(std::min(fold_bits, 64u)), col.hash.shift(),
             fold_bits,
             // Chunks needed to cover a value_bits-wide value.
             (value_bits + fold_bits - 1) / fold_bits});
    }
    return hot;
}

/** The vector entry point for @p backend, or nullptr for the scalar
 *  reference path (also the fallback for backends this binary does
 *  not carry or this CPU cannot run). */
using MgKernelFn = void (*)(const detail::MgSimdView&,
                            std::span<const TraceRecord>);

MgKernelFn
backendKernel(SimdBackend backend)
{
    if (!simdBackendAvailable(backend))
        return nullptr;
    switch (backend) {
#if defined(REPRO_SIMD_HAS_SSE2)
      case SimdBackend::Sse2:
        return &detail::runMgColumnsSse2;
#endif
#if defined(REPRO_SIMD_HAS_AVX2)
      case SimdBackend::Avx2:
        return &detail::runMgColumnsAvx2;
      // The column tier keeps 8-lane bank padding (kMaxSimdLanes), so
      // AVX-512 dispatch reuses the AVX2 column kernel; AVX-512's win
      // is the 16-lane stream-packed tier (backendPackedKernel).
      case SimdBackend::Avx512:
        return &detail::runMgColumnsAvx2;
#endif
#if defined(REPRO_SIMD_HAS_NEON)
      case SimdBackend::Neon:
        return &detail::runMgColumnsNeon;
#endif
      default:
        return nullptr;
    }
}

std::vector<PredictorStats>
gatherStats(std::span<const TraceRecord> trace,
            const std::vector<std::uint64_t>& correct)
{
    std::vector<PredictorStats> stats(correct.size());
    for (std::size_t c = 0; c < correct.size(); ++c)
        stats[c] = PredictorStats{trace.size(), correct[c]};
    return stats;
}

/**
 * Scalar reference for the stream-packed tier: replay the canonical
 * 16-lane schedule with plain loops, phase for phase in the order the
 * vector kernels are contracted to (multi_geom_simd_impl.hh,
 * runMgPacked) — per (step, column) all lanes read before any lane
 * writes, level-2 stores land in ascending lane order, then the
 * history advances. Because the schedule fixes the interleave and
 * this function fixes the intra-step order, its counters are
 * bit-identical to every vector backend's; it is both the fallback
 * for non-gather backends and the oracle the packed tests pin the
 * backends against.
 */
void
runMgPackedScalar(const detail::MgPackedView& v)
{
    constexpr unsigned kW = simd::kPackLanes;
    const std::size_t n = v.n;
    const std::size_t pn = v.padded_n;
    const std::uint32_t vmask = v.value_mask;

    for (std::size_t s = 0; s < v.steps; ++s) {
        const std::uint32_t* entries = v.lane_entry + s * kW;
        const std::uint32_t* values = v.lane_value + s * kW;
        const std::uint32_t active = v.step_active[s];
        const std::uint32_t fits = v.step_fits[s];

        std::uint32_t lastv[kW];
        std::uint32_t ins[kW];
        for (unsigned l = 0; l < kW; ++l) {
            if (v.dfcm) {
                lastv[l] = static_cast<std::uint32_t>(
                        v.last[entries[l]]);
                ins[l] = (values[l] - lastv[l]) & vmask;
            } else {
                lastv[l] = 0;
                ins[l] = values[l];
            }
        }

        for (std::size_t c = 0; c < n; ++c) {
            std::uint32_t* l2c = v.l2[c];
            std::uint32_t h[kW];
            std::uint32_t slot[kW];
            for (unsigned l = 0; l < kW; ++l) {
                h[l] = v.hists[entries[l] * pn + c];
                slot[l] = l2c[h[l]];
            }
            for (unsigned l = 0; l < kW; ++l) {
                if (!(fits & (1u << l)))
                    continue;
                std::uint32_t pred = slot[l];
                if (v.dfcm) {
                    std::uint32_t st = slot[l];
                    if (v.widen) {
                        const std::uint32_t m =
                                1u << (v.stride_bits - 1);
                        st = (st ^ m) - m;
                    }
                    pred = (lastv[l] + st) & vmask;
                }
                v.correct[c] += pred == values[l];
            }
            for (unsigned l = 0; l < kW; ++l)
                if (active & (1u << l))
                    l2c[h[l]] = v.dfcm ? (ins[l] & v.stride_mask)
                                       : values[l];
            const std::uint32_t sh = v.shifts[c];
            const std::uint32_t fb = v.fold_bits[c];
            const std::uint32_t fm = v.fold_masks[c];
            const std::uint32_t im = v.index_masks[c];
            for (unsigned l = 0; l < kW; ++l) {
                if (!(active & (1u << l)))
                    continue;
                std::uint32_t f = 0;
                std::uint32_t t = ins[l];
                for (unsigned k = 0; k < v.chunks; ++k) {
                    f ^= t;
                    t >>= fb;
                }
                v.hists[entries[l] * pn + c] =
                        ((h[l] << sh) ^ (f & fm)) & im;
            }
        }

        if (v.dfcm)
            for (unsigned l = 0; l < kW; ++l)
                if (active & (1u << l))
                    v.last[entries[l]] = values[l];
    }
}

/**
 * The gather *column* tier's entry point for @p backend, or nullptr
 * when the backend has no gather surface (the dispatcher then keeps
 * the plain column kernel). Unlike the column tier, AVX-512 gets its
 * own 16-record instantiation here — wide gathers are this tier's
 * whole point — falling back to the 8-record AVX2 one in builds
 * without the AVX-512 TU.
 */
MgKernelFn
backendGatherKernel(SimdBackend backend)
{
    if (!simdBackendAvailable(backend))
        return nullptr;
    switch (backend) {
#if defined(REPRO_SIMD_HAS_AVX2)
      case SimdBackend::Avx2:
        return &detail::runMgGatherAvx2;
      case SimdBackend::Avx512:
#if defined(REPRO_SIMD_HAS_AVX512)
        return &detail::runMgGatherAvx512;
#else
        return &detail::runMgGatherAvx2;
#endif
#endif
      default:
        return nullptr;
    }
}

/**
 * The gather tier's default size threshold: columns with l2_bits >=
 * this probe through runMgGather (overridable via
 * REPRO_GATHER_COLUMNS; 0 disables the tier). 2^18 u32 slots = 1 MiB
 * is where the measured crossover sits on the reference machine: the
 * table decisively exceeds per-core L2, most probes miss to L3 or
 * DRAM, and batching W misses per vpgatherdd beats the scalar
 * dependent-load chain (docs/perf.md has the numbers); below it the
 * probes mostly hit cache and batch staging is pure overhead.
 */
constexpr unsigned kDefaultGatherMinBits = 18;

/** The gather-capable packed entry point for @p backend, or nullptr
 *  for the scalar packed reference (the fallback for non-gather
 *  backends and for builds/CPUs without one). */
using MgPackedFn = void (*)(const detail::MgPackedView&);

MgPackedFn
backendPackedKernel(SimdBackend backend)
{
    if (!simdBackendAvailable(backend))
        return nullptr;
    switch (backend) {
#if defined(REPRO_SIMD_HAS_AVX2)
      case SimdBackend::Avx2:
        return &detail::runMgPackedAvx2;
#endif
#if defined(REPRO_SIMD_HAS_AVX512)
      case SimdBackend::Avx512:
        return &detail::runMgPackedAvx512;
#endif
      default:
        return nullptr;
    }
}

} // namespace

MultiGeomKernelBase::MultiGeomKernelBase(const MultiGeomConfig& config)
    : cfg_(config), l1_mask_(maskBits(config.l1_bits)),
      value_mask_(maskBits(config.value_bits)), max_order_(0)
{
    assert(!config.l2_bits.empty());
    assert(config.l1_bits <= 28);
    assert(config.value_bits >= 1 && config.value_bits <= 32);
    cols_.reserve(config.l2_bits.size());
    for (unsigned l2 : config.l2_bits) {
        assert(l2 >= 1 && l2 <= 28);
        Column col{ShiftFoldHash::fsRk(l2, config.hash_shift), {}};
        col.l2.resize(std::size_t{1} << l2);
        max_order_ = std::max(max_order_, col.hash.order());
        cols_.push_back(std::move(col));
    }

    // One layout for every execution path: the history bank is
    // padded to whole vectors, the FS R-k parameters are laid out as
    // one u32 per lane, and the padding lanes get inert values
    // (shift 0, fold_bits 1, masks 0) so they compute bounded
    // garbage that nothing ever probes.
    const std::size_t n = cols_.size();
    padded_n_ = (n + simd::kMaxSimdLanes - 1) / simd::kMaxSimdLanes
            * simd::kMaxSimdLanes;
    hists_.resize(l1Entries() * padded_n_);
    col_shifts_.assign(padded_n_, 0);
    col_fold_bits_.assign(padded_n_, 1);
    col_fold_masks_.assign(padded_n_, 0);
    col_index_masks_.assign(padded_n_, 0);
    l2_ptrs_.resize(n);
    max_chunks_ = 1;
    // Software prefetch is only issued for columns whose level-2
    // table cannot stay cache-resident: small tables are all hits
    // after warm-up and prefetching them just burns issue slots.
    // 256 KiB (64 K u32 slots, l2_bits >= 16) is comfortably past
    // typical per-core L2 capacity once the history bank and the
    // other columns claim their share.
    constexpr std::size_t kPrefetchMinL2Bytes = std::size_t{256} * 1024;
    for (std::size_t c = 0; c < n; ++c) {
        const ShiftFoldHash& hash = cols_[c].hash;
        col_shifts_[c] = hash.shift();
        col_fold_bits_[c] = hash.foldBits();
        col_fold_masks_[c] = static_cast<std::uint32_t>(
                maskBits(std::min(hash.foldBits(), 32u)));
        col_index_masks_[c] = static_cast<std::uint32_t>(
                maskBits(hash.indexBits()));
        l2_ptrs_[c] = cols_[c].l2.data();
        if (cols_[c].l2.size() * sizeof(std::uint32_t)
            >= kPrefetchMinL2Bytes)
            prefetch_cols_.push_back(static_cast<std::uint32_t>(c));
        const unsigned chunks =
                (cfg_.value_bits + hash.foldBits() - 1) / hash.foldBits();
        max_chunks_ = std::max(max_chunks_, chunks);
    }

    // The packed vector kernels compute history-bank gather indices
    // (entry * padded_n + c) in signed 32-bit lanes; geometries too
    // big for that take the scalar packed reference instead.
    packed_simd_ok_ =
            static_cast<std::uint64_t>(l1Entries()) * padded_n_
            < (std::uint64_t{1} << 31);

    gather_min_bits_ = static_cast<unsigned>(envUIntOr(
            "REPRO_GATHER_COLUMNS", kDefaultGatherMinBits, 0, 32));
    planGatherColumns();
}

void
MultiGeomKernelBase::planGatherColumns()
{
    gather_cols_.clear();
    scalar_cols_.clear();
    for (std::size_t c = 0; c < cols_.size(); ++c) {
        const bool gather = gather_min_bits_ != 0
                && cols_[c].hash.indexBits() >= gather_min_bits_;
        (gather ? gather_cols_ : scalar_cols_)
                .push_back(static_cast<std::uint32_t>(c));
    }
}

void
MultiGeomKernelBase::setGatherMinBits(unsigned bits)
{
    gather_min_bits_ = bits;
    planGatherColumns();
}

void
MultiGeomKernelBase::setArenaMode(ArenaMode mode)
{
    hists_.setArenaMode(mode);
    for (std::size_t c = 0; c < cols_.size(); ++c) {
        cols_[c].l2.setArenaMode(mode);
        l2_ptrs_[c] = cols_[c].l2.data();  // re-homing moved the table
    }
}

void
MultiGeomKernelBase::resetState()
{
    hists_.fillZero();
    for (Column& col : cols_)
        col.l2.fillZero();
}

void
MultiGeomKernelBase::setEntryHists(std::size_t entry,
                                   std::span<const std::uint32_t> hists)
{
    assert(hists.size() == padded_n_);
    std::copy(hists.begin(), hists.end(),
              hists_.begin()
                      + static_cast<std::ptrdiff_t>(entry * padded_n_));
}

void
MultiGeomKernelBase::clearEntryHists(std::size_t entry)
{
    const auto base = hists_.begin()
            + static_cast<std::ptrdiff_t>(entry * padded_n_);
    std::fill(base, base + static_cast<std::ptrdiff_t>(padded_n_), 0);
}

detail::MgSimdView
MultiGeomKernelBase::makeView(std::uint64_t* correct)
{
    detail::MgSimdView view;
    view.hists = hists_.data();
    view.n = cols_.size();
    view.padded_n = padded_n_;
    view.l1_mask = l1_mask_;
    view.value_mask = value_mask_;
    view.stride_mask = value_mask_;
    view.stride_bits = cfg_.value_bits;
    view.chunks = max_chunks_;
    view.l2 = l2_ptrs_.data();
    view.shifts = col_shifts_.data();
    view.fold_bits = col_fold_bits_.data();
    view.fold_masks = col_fold_masks_.data();
    view.index_masks = col_index_masks_.data();
    view.correct = correct;
    view.last = nullptr;
    view.dfcm = false;
    view.widen = false;
    view.prefetch_cols = prefetch_cols_.data();
    view.n_prefetch = prefetch_cols_.size();
    view.gather_cols = gather_cols_.data();
    view.n_gather = gather_cols_.size();
    view.scalar_cols = scalar_cols_.data();
    view.n_scalar = scalar_cols_.size();
    return view;
}

std::size_t
MultiGeomKernelBase::packTrace(std::span<const TraceRecord> trace)
{
    constexpr unsigned kW = simd::kPackLanes;

    if (pack_stamp_.empty()) {
        pack_stamp_.assign(l1Entries(), 0);
        pack_gid_.resize(l1Entries());
    }
    if (++pack_epoch_ == 0) {
        // Epoch wrap: stale stamps could collide, so clear them once
        // every 2^32 calls.
        std::fill(pack_stamp_.begin(), pack_stamp_.end(), 0);
        pack_epoch_ = 1;
    }

    // Pass 1: assign group ids in first-appearance order and count
    // each group's records.
    pk_group_entry_.clear();
    pk_group_count_.clear();
    for (const TraceRecord& rec : trace) {
        const auto e = static_cast<std::uint32_t>(rec.pc & l1_mask_);
        if (pack_stamp_[e] != pack_epoch_) {
            pack_stamp_[e] = pack_epoch_;
            pack_gid_[e] =
                    static_cast<std::uint32_t>(pk_group_entry_.size());
            pk_group_entry_.push_back(e);
            pk_group_count_.push_back(0);
        }
        ++pk_group_count_[pack_gid_[e]];
    }
    const std::size_t groups = pk_group_entry_.size();

    // Pass 2: distribute (masked value, fits) into the grouped area,
    // preserving each group's trace order.
    pk_group_off_.resize(groups);
    pk_group_cursor_.resize(groups);
    std::uint32_t off = 0;
    for (std::size_t g = 0; g < groups; ++g) {
        pk_group_off_[g] = off;
        pk_group_cursor_[g] = off;
        off += pk_group_count_[g];
    }
    pk_values_.resize(trace.size());
    pk_fits_.resize(trace.size());
    for (const TraceRecord& rec : trace) {
        const std::uint32_t g =
                pack_gid_[static_cast<std::uint32_t>(rec.pc & l1_mask_)];
        const std::uint32_t pos = pk_group_cursor_[g]++;
        pk_values_[pos] =
                static_cast<std::uint32_t>(rec.value & value_mask_);
        pk_fits_[pos] = (rec.value & ~value_mask_) == 0;
    }

    // Pass 3: emit waves. Wave j holds the j-th record of every group
    // that still has one, cut into 16-lane steps; the last step of a
    // wave is padded with inactive lanes (entry/value 0) rather than
    // borrowing from the next wave, which would re-admit an entry
    // into a step that already carries it.
    pk_lane_entry_.clear();
    pk_lane_value_.clear();
    pk_step_active_.clear();
    pk_step_fits_.clear();
    pk_lane_entry_.reserve(trace.size() + kW);
    pk_lane_value_.reserve(trace.size() + kW);

    pk_alive_.resize(groups);
    for (std::size_t g = 0; g < groups; ++g)
        pk_alive_[g] = static_cast<std::uint32_t>(g);

    std::size_t steps = 0;
    unsigned lane = 0;
    std::uint16_t active = 0;
    std::uint16_t fits = 0;
    const auto closeStep = [&] {
        if (lane == 0)
            return;
        for (; lane < kW; ++lane) {
            pk_lane_entry_.push_back(0);
            pk_lane_value_.push_back(0);
        }
        pk_step_active_.push_back(active);
        pk_step_fits_.push_back(fits);
        ++steps;
        lane = 0;
        active = 0;
        fits = 0;
    };
    for (std::uint32_t wave = 0; !pk_alive_.empty(); ++wave) {
        for (const std::uint32_t g : pk_alive_) {
            const std::uint32_t pos = pk_group_off_[g] + wave;
            pk_lane_entry_.push_back(pk_group_entry_[g]);
            pk_lane_value_.push_back(pk_values_[pos]);
            active |= static_cast<std::uint16_t>(1u << lane);
            if (pk_fits_[pos])
                fits |= static_cast<std::uint16_t>(1u << lane);
            if (++lane == kW)
                closeStep();
        }
        closeStep();
        std::erase_if(pk_alive_, [&](std::uint32_t g) {
            return pk_group_count_[g] <= wave + 1;
        });
    }
    return steps;
}

detail::MgPackedView
MultiGeomKernelBase::makePackedView(std::uint64_t* correct,
                                    std::size_t steps)
{
    detail::MgPackedView view;
    view.hists = hists_.data();
    view.n = cols_.size();
    view.padded_n = padded_n_;
    view.value_mask = static_cast<std::uint32_t>(value_mask_);
    view.stride_mask = static_cast<std::uint32_t>(value_mask_);
    view.stride_bits = cfg_.value_bits;
    view.chunks = max_chunks_;
    view.l2 = l2_ptrs_.data();
    view.shifts = col_shifts_.data();
    view.fold_bits = col_fold_bits_.data();
    view.fold_masks = col_fold_masks_.data();
    view.index_masks = col_index_masks_.data();
    view.correct = correct;
    view.last = nullptr;
    view.dfcm = false;
    view.widen = false;
    view.lane_entry = pk_lane_entry_.data();
    view.lane_value = pk_lane_value_.data();
    view.step_active = pk_step_active_.data();
    view.step_fits = pk_step_fits_.data();
    view.steps = steps;
    return view;
}

MultiGeomFcmKernel::MultiGeomFcmKernel(const MultiGeomConfig& config)
    : MultiGeomKernelBase(config)
{
}

std::vector<PredictorStats>
MultiGeomFcmKernel::runTrace(std::span<const TraceRecord> trace)
{
    return runTrace(trace, activeSimdBackend());
}

std::vector<PredictorStats>
MultiGeomFcmKernel::runTrace(std::span<const TraceRecord> trace,
                             SimdBackend backend)
{
    reset();
    return feedTrace(trace, backend);
}

std::vector<PredictorStats>
MultiGeomFcmKernel::feedTrace(std::span<const TraceRecord> trace)
{
    return feedTrace(trace, activeSimdBackend());
}

std::vector<PredictorStats>
MultiGeomFcmKernel::feedTrace(std::span<const TraceRecord> trace,
                              SimdBackend backend)
{
    const std::size_t n = cols_.size();
    std::vector<std::uint64_t> correct(n, 0);

    if (MgKernelFn kernel = backendKernel(backend)) {
        // Plan says some columns are big enough for batched gather
        // probes and the backend has a gather surface: take the
        // gather tier (bit-identical, so this never changes results).
        if (!gather_cols_.empty())
            if (const MgKernelFn g = backendGatherKernel(backend))
                kernel = g;
        const detail::MgSimdView view = makeView(correct.data());
        kernel(view, trace);
        return gatherStats(trace, correct);
    }

    // Scalar reference path.
    const std::size_t pn = padded_n_;
    const std::vector<HotColumn> hot = hotColumns(cols_, cfg_.value_bits);
    for (const TraceRecord& rec : trace) {
        std::uint32_t* hists = &hists_[(rec.pc & l1_mask_) * pn];
        const Value masked = rec.value & value_mask_;

        // Per column: FcmPredictor::predictAndUpdate verbatim — check
        // the level-2 slot against the raw actual, store the masked
        // actual, advance this column's hashed history with it.
        for (std::size_t c = 0; c < n; ++c) {
            const HotColumn& col = hot[c];
            const std::uint32_t h = hists[c];
            std::uint32_t& slot = col.l2[h];
            correct[c] += Value{slot} == rec.value;
            slot = static_cast<std::uint32_t>(masked);
            hists[c] =
                static_cast<std::uint32_t>(hashInsert(col, h, masked));
        }
    }
    return gatherStats(trace, correct);
}

std::vector<PredictorStats>
MultiGeomFcmKernel::feedTracePacked(std::span<const TraceRecord> trace)
{
    return feedTracePacked(trace, activeSimdBackend());
}

std::vector<PredictorStats>
MultiGeomFcmKernel::feedTracePacked(std::span<const TraceRecord> trace,
                                    SimdBackend backend,
                                    PackedFeedInfo* info)
{
    std::vector<std::uint64_t> correct(cols_.size(), 0);
    if (info)
        *info = PackedFeedInfo{};
    if (!trace.empty()) {
        const std::size_t steps = packTrace(trace);
        const detail::MgPackedView view =
                makePackedView(correct.data(), steps);
        const MgPackedFn kernel =
                packed_simd_ok_ ? backendPackedKernel(backend) : nullptr;
        if (kernel)
            kernel(view);
        else
            runMgPackedScalar(view);
        if (info) {
            info->steps = steps;
            info->records = trace.size();
            (kernel ? info->gather_records : info->scalar_records) =
                    trace.size();
        }
    }
    return gatherStats(trace, correct);
}

MultiGeomDfcmKernel::MultiGeomDfcmKernel(const MultiGeomConfig& config)
    : MultiGeomKernelBase(config),
      stride_mask_(maskBits(config.stride_bits)),
      last_(l1Entries(), 0)
{
    assert(config.stride_bits >= 1
           && config.stride_bits <= config.value_bits);
}

std::vector<PredictorStats>
MultiGeomDfcmKernel::runTrace(std::span<const TraceRecord> trace)
{
    return runTrace(trace, activeSimdBackend());
}

std::vector<PredictorStats>
MultiGeomDfcmKernel::runTrace(std::span<const TraceRecord> trace,
                              SimdBackend backend)
{
    reset();
    return feedTrace(trace, backend);
}

void
MultiGeomDfcmKernel::reset()
{
    resetState();
    std::fill(last_.begin(), last_.end(), 0);
}

void
MultiGeomDfcmKernel::clearEntry(std::size_t entry)
{
    clearEntryHists(entry);
    last_[entry] = 0;
}

std::vector<PredictorStats>
MultiGeomDfcmKernel::feedTrace(std::span<const TraceRecord> trace)
{
    return feedTrace(trace, activeSimdBackend());
}

std::vector<PredictorStats>
MultiGeomDfcmKernel::feedTrace(std::span<const TraceRecord> trace,
                               SimdBackend backend)
{
    const std::size_t n = cols_.size();
    std::vector<std::uint64_t> correct(n, 0);

    if (MgKernelFn kernel = backendKernel(backend)) {
        if (!gather_cols_.empty())
            if (const MgKernelFn g = backendGatherKernel(backend))
                kernel = g;
        detail::MgSimdView view = makeView(correct.data());
        view.stride_mask = stride_mask_;
        view.stride_bits = cfg_.stride_bits;
        view.last = last_.data();
        view.dfcm = true;
        view.widen = cfg_.stride_bits != cfg_.value_bits;
        kernel(view, trace);
        return gatherStats(trace, correct);
    }

    // Scalar reference path.
    const std::size_t pn = padded_n_;
    const std::vector<HotColumn> hot = hotColumns(cols_, cfg_.value_bits);

    const auto walk = [&](auto widen_fn) {
        for (const TraceRecord& rec : trace) {
            const std::size_t idx = rec.pc & l1_mask_;
            std::uint32_t* hists = &hists_[idx * pn];
            const Value last = last_[idx];
            const Value masked = rec.value & value_mask_;
            // The new stride is geometry-independent: full-width
            // arithmetic, shared by every column (each narrows on
            // store).
            const Value stride = (masked - last) & value_mask_;

            // Per column: DfcmPredictor::predictAndUpdate verbatim.
            for (std::size_t c = 0; c < n; ++c) {
                const HotColumn& col = hot[c];
                const std::uint32_t h = hists[c];
                std::uint32_t& slot = col.l2[h];
                correct[c] += ((last + widen_fn(slot)) & value_mask_)
                    == rec.value;
                slot = static_cast<std::uint32_t>(stride & stride_mask_);
                hists[c] = static_cast<std::uint32_t>(
                        hashInsert(col, h, stride));
            }

            last_[idx] = masked;
        }
    };
    // Full-width strides (the common geometry) make widen() the
    // identity: stored strides are already masked to value_bits.
    if (cfg_.stride_bits == cfg_.value_bits)
        walk([](std::uint32_t stored) { return Value{stored}; });
    else
        walk([this](std::uint32_t stored) { return widen(stored); });

    return gatherStats(trace, correct);
}

std::vector<PredictorStats>
MultiGeomDfcmKernel::feedTracePacked(std::span<const TraceRecord> trace)
{
    return feedTracePacked(trace, activeSimdBackend());
}

std::vector<PredictorStats>
MultiGeomDfcmKernel::feedTracePacked(std::span<const TraceRecord> trace,
                                     SimdBackend backend,
                                     PackedFeedInfo* info)
{
    std::vector<std::uint64_t> correct(cols_.size(), 0);
    if (info)
        *info = PackedFeedInfo{};
    if (!trace.empty()) {
        const std::size_t steps = packTrace(trace);
        detail::MgPackedView view =
                makePackedView(correct.data(), steps);
        view.stride_mask = static_cast<std::uint32_t>(stride_mask_);
        view.stride_bits = cfg_.stride_bits;
        view.last = last_.data();
        view.dfcm = true;
        view.widen = cfg_.stride_bits != cfg_.value_bits;
        const MgPackedFn kernel =
                packed_simd_ok_ ? backendPackedKernel(backend) : nullptr;
        if (kernel)
            kernel(view);
        else
            runMgPackedScalar(view);
        if (info) {
            info->steps = steps;
            info->records = trace.size();
            (kernel ? info->gather_records : info->scalar_records) =
                    trace.size();
        }
    }
    return gatherStats(trace, correct);
}

} // namespace vpred
