#include "core/multi_geom.hh"

#include <algorithm>
#include <cassert>

namespace vpred
{

namespace
{

/**
 * Per-column state flattened for the hot loop: the raw level-2 table
 * pointer plus the hash parameters, with the fold chunk count
 * precomputed so the fold runs a *fixed* number of iterations per
 * column (the generic foldXor loops while bits remain, a
 * data-dependent trip count the branch predictor keeps missing).
 */
struct HotColumn
{
    std::uint32_t* l2;
    std::uint64_t index_mask;
    std::uint64_t fold_mask;
    unsigned shift;
    unsigned fold_bits;
    unsigned chunks;
};

/**
 * ShiftFoldHash::insert with the fold unrolled to @c chunks fixed
 * iterations. Identical result: XOR-ing the shifted copies first and
 * masking once is foldXor's mask-each-chunk because AND distributes
 * over XOR, and @c chunks covers every non-zero chunk of a value
 * narrower than chunks * fold_bits.
 */
inline std::uint64_t
hashInsert(const HotColumn& col, std::uint64_t h, std::uint64_t v)
{
    std::uint64_t f = 0;
    for (unsigned i = 0; i < col.chunks; ++i) {
        f ^= v;
        v >>= col.fold_bits;
    }
    return ((h << col.shift) ^ (f & col.fold_mask)) & col.index_mask;
}

std::vector<HotColumn>
hotColumns(std::vector<MultiGeomKernelBase::Column>& cols,
           unsigned value_bits)
{
    std::vector<HotColumn> hot;
    hot.reserve(cols.size());
    for (auto& col : cols) {
        const unsigned fold_bits = col.hash.foldBits();
        hot.push_back(
            {col.l2.data(), maskBits(col.hash.indexBits()),
             maskBits(std::min(fold_bits, 64u)), col.hash.shift(),
             fold_bits,
             // Chunks needed to cover a value_bits-wide value.
             (value_bits + fold_bits - 1) / fold_bits});
    }
    return hot;
}

} // namespace

MultiGeomKernelBase::MultiGeomKernelBase(const MultiGeomConfig& config)
    : cfg_(config), l1_mask_(maskBits(config.l1_bits)),
      value_mask_(maskBits(config.value_bits)), max_order_(0)
{
    assert(!config.l2_bits.empty());
    assert(config.l1_bits <= 28);
    assert(config.value_bits >= 1 && config.value_bits <= 32);
    cols_.reserve(config.l2_bits.size());
    for (unsigned l2 : config.l2_bits) {
        assert(l2 >= 1 && l2 <= 28);
        Column col{ShiftFoldHash::fsRk(l2, config.hash_shift), {}};
        col.l2.resize(std::size_t{1} << l2, 0);
        max_order_ = std::max(max_order_, col.hash.order());
        cols_.push_back(std::move(col));
    }
    hists_.resize(l1Entries() * cols_.size(), 0);
}

void
MultiGeomKernelBase::resetState()
{
    std::fill(hists_.begin(), hists_.end(), 0);
    for (Column& col : cols_)
        std::fill(col.l2.begin(), col.l2.end(), 0);
}

MultiGeomFcmKernel::MultiGeomFcmKernel(const MultiGeomConfig& config)
    : MultiGeomKernelBase(config)
{
}

std::vector<PredictorStats>
MultiGeomFcmKernel::runTrace(std::span<const TraceRecord> trace)
{
    resetState();
    const std::size_t n = cols_.size();
    const std::vector<HotColumn> hot = hotColumns(cols_, cfg_.value_bits);
    std::vector<std::uint64_t> correct(n, 0);
    for (const TraceRecord& rec : trace) {
        std::uint32_t* hists = &hists_[(rec.pc & l1_mask_) * n];
        const Value masked = rec.value & value_mask_;

        // Per column: FcmPredictor::predictAndUpdate verbatim — check
        // the level-2 slot against the raw actual, store the masked
        // actual, advance this column's hashed history with it.
        for (std::size_t c = 0; c < n; ++c) {
            const HotColumn& col = hot[c];
            const std::uint32_t h = hists[c];
            std::uint32_t& slot = col.l2[h];
            correct[c] += Value{slot} == rec.value;
            slot = static_cast<std::uint32_t>(masked);
            hists[c] =
                static_cast<std::uint32_t>(hashInsert(col, h, masked));
        }
    }

    std::vector<PredictorStats> stats(n);
    for (std::size_t c = 0; c < n; ++c)
        stats[c] = PredictorStats{trace.size(), correct[c]};
    return stats;
}

MultiGeomDfcmKernel::MultiGeomDfcmKernel(const MultiGeomConfig& config)
    : MultiGeomKernelBase(config),
      stride_mask_(maskBits(config.stride_bits)),
      last_(l1Entries(), 0)
{
    assert(config.stride_bits >= 1
           && config.stride_bits <= config.value_bits);
}

std::vector<PredictorStats>
MultiGeomDfcmKernel::runTrace(std::span<const TraceRecord> trace)
{
    resetState();
    std::fill(last_.begin(), last_.end(), 0);
    const std::size_t n = cols_.size();
    const std::vector<HotColumn> hot = hotColumns(cols_, cfg_.value_bits);
    std::vector<std::uint64_t> correct(n, 0);

    const auto walk = [&](auto widen_fn) {
        for (const TraceRecord& rec : trace) {
            const std::size_t idx = rec.pc & l1_mask_;
            std::uint32_t* hists = &hists_[idx * n];
            const Value last = last_[idx];
            const Value masked = rec.value & value_mask_;
            // The new stride is geometry-independent: full-width
            // arithmetic, shared by every column (each narrows on
            // store).
            const Value stride = (masked - last) & value_mask_;

            // Per column: DfcmPredictor::predictAndUpdate verbatim.
            for (std::size_t c = 0; c < n; ++c) {
                const HotColumn& col = hot[c];
                const std::uint32_t h = hists[c];
                std::uint32_t& slot = col.l2[h];
                correct[c] += ((last + widen_fn(slot)) & value_mask_)
                    == rec.value;
                slot = static_cast<std::uint32_t>(stride & stride_mask_);
                hists[c] = static_cast<std::uint32_t>(
                        hashInsert(col, h, stride));
            }

            last_[idx] = masked;
        }
    };
    // Full-width strides (the common geometry) make widen() the
    // identity: stored strides are already masked to value_bits.
    if (cfg_.stride_bits == cfg_.value_bits)
        walk([](std::uint32_t stored) { return Value{stored}; });
    else
        walk([this](std::uint32_t stored) { return widen(stored); });

    std::vector<PredictorStats> stats(n);
    for (std::size_t c = 0; c < n; ++c)
        stats[c] = PredictorStats{trace.size(), correct[c]};
    return stats;
}

} // namespace vpred
