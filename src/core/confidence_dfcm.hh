/**
 * @file
 * Confidence-estimating DFCM — the extension the paper sketches in
 * Section 4.2: "the design of a confidence estimator for a (D)FCM
 * predictor should include tagging the level-2 table with some
 * information to track hash-aliasing [...] Some bits of a second
 * hashing function, orthogonal to the main one, seems to be a good
 * choice for the tag."
 *
 * This predictor extends the DFCM with two confidence sources:
 *
 *  - a per-level-2-entry *tag* holding bits of a second history hash
 *    (same window as the main hash, decorrelated by multiplying each
 *    inserted difference with a large odd constant before folding).
 *    A tag mismatch at prediction time means the entry was last
 *    written under a different history — precisely the paper's
 *    "hash" aliasing class — so the prediction is untrusted;
 *  - an optional per-entry saturating counter trained on the
 *    entry's prediction outcomes (the classic confidence scheme the
 *    tag is meant to improve on).
 *
 * Because gating predictions changes the metric (coverage vs.
 * accuracy-of-attempted), this class reports GatedStats rather than
 * implementing the plain ValuePredictor interface.
 */

#ifndef DFCM_CORE_CONFIDENCE_DFCM_HH
#define DFCM_CORE_CONFIDENCE_DFCM_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/hash_function.hh"
#include "core/types.hh"

namespace vpred
{

/** Which confidence sources gate a prediction. */
enum class ConfidenceMode
{
    None,           //!< predict always (plain DFCM behaviour)
    Tag,            //!< predict only on tag match
    Counter,        //!< predict only at counter threshold
    TagAndCounter,  //!< both conditions required
};

/** Name of a ConfidenceMode ("tag", "counter", ...). */
const char* confidenceModeName(ConfidenceMode mode);

/** Outcome accounting for a gated predictor. */
struct GatedStats
{
    std::uint64_t total = 0;      //!< eligible instructions seen
    std::uint64_t attempted = 0;  //!< predictions actually made
    std::uint64_t correct = 0;    //!< correct attempted predictions

    /** Fraction of instructions the predictor dared to predict. */
    double
    coverage() const
    {
        return total == 0
            ? 0.0
            : static_cast<double>(attempted) / static_cast<double>(total);
    }

    /** Accuracy among attempted predictions. */
    double
    accuracy() const
    {
        return attempted == 0
            ? 0.0
            : static_cast<double>(correct) / static_cast<double>(attempted);
    }

    /** Accuracy counting skipped predictions as wrong (comparable to
     *  an ungated predictor's accuracy). */
    double
    effectiveAccuracy() const
    {
        return total == 0
            ? 0.0
            : static_cast<double>(correct) / static_cast<double>(total);
    }
};

/** Configuration of the confidence-estimating DFCM. */
struct ConfidenceDfcmConfig
{
    unsigned l1_bits = 16;
    unsigned l2_bits = 12;
    unsigned value_bits = 32;
    /** Tag width in bits (0 disables the tag machinery). */
    unsigned tag_bits = 4;
    /** Confidence counter width (0 disables counters). */
    unsigned counter_bits = 2;
    /** Counter value required to predict in Counter modes. */
    unsigned counter_threshold = 2;
    ConfidenceMode mode = ConfidenceMode::Tag;
};

/**
 * DFCM with hash-alias-tracking tags and per-entry confidence
 * counters.
 */
class ConfidenceDfcm
{
  public:
    /** A gated prediction. */
    struct Prediction
    {
        Value value = 0;     //!< predicted value (always computed)
        bool confident = false;  //!< whether the gate would predict
        bool tag_match = false;
        bool counter_ok = false;
    };

    explicit ConfidenceDfcm(const ConfidenceDfcmConfig& config);

    /** Inspect the prediction and its confidence for @p pc. */
    Prediction predict(Pc pc) const;

    /** Train tables (and the entry's confidence counter) with the
     *  actual outcome. */
    void update(Pc pc, Value actual);

    /** One gated trace step; updates @p stats. */
    void step(Pc pc, Value actual, GatedStats& stats);

    /** Run a whole trace view under the configured gate. */
    GatedStats run(std::span<const TraceRecord> trace);

    std::uint64_t storageBits() const;
    std::string name() const;

    const ConfidenceDfcmConfig& config() const { return cfg_; }

  private:
    struct L1Entry
    {
        Value last = 0;
        std::uint64_t hist = 0;      //!< main hash (level-2 index)
        std::uint64_t tag_hist = 0;  //!< orthogonal hash register
    };

    struct L2Entry
    {
        Value stride = 0;
        std::uint32_t tag = 0;
        std::uint32_t counter = 0;
    };

    /** Decorrelate a difference before it enters the tag hash. */
    static std::uint64_t
    scramble(std::uint64_t v)
    {
        return (v * 0x9E3779B1ull) & 0xFFFFFFFFull;
    }

    std::uint32_t tagOf(std::uint64_t tag_hist) const;

    ConfidenceDfcmConfig cfg_;
    ShiftFoldHash hash_;
    ShiftFoldHash tag_hash_;
    std::uint64_t l1_mask_;
    std::uint64_t value_mask_;
    unsigned counter_max_;
    std::vector<L1Entry> l1_;
    std::vector<L2Entry> l2_;
};

} // namespace vpred

#endif // DFCM_CORE_CONFIDENCE_DFCM_HH
