/**
 * @file
 * Confidence-guarded stride predictor, Section 2.2 of the paper.
 *
 * The paper's flavor: a single stride per entry plus a saturating
 * confidence counter; the stride is only replaced while the counter
 * is below its maximum. This achieves the two-delta method's
 * "one misprediction per loop reset" property with one stride field.
 */

#ifndef DFCM_CORE_STRIDE_PREDICTOR_HH
#define DFCM_CORE_STRIDE_PREDICTOR_HH

#include <vector>

#include "core/sat_counter.hh"
#include "core/value_predictor.hh"

namespace vpred
{

/**
 * Stride predictor with saturating-counter stride protection.
 *
 * Per entry: last value, stride, confidence counter (3 bits by
 * default, +1 on correct, -2 on wrong, as specified in Section 4 of
 * the paper). On update, the stride-replacement decision uses the
 * counter value *before* this update's training step, so a single
 * misprediction at a fully-confident entry (e.g. a loop-control
 * reset) does not destroy a well-established stride.
 */
class StridePredictor : public ValuePredictor
{
  public:
    /** Confidence policy knobs (paper defaults). */
    struct Config
    {
        unsigned table_bits = 16;   //!< log2(#entries)
        unsigned value_bits = 32;   //!< predicted value width
        unsigned counter_bits = 3;  //!< confidence counter width
        unsigned counter_inc = 1;   //!< step on correct prediction
        unsigned counter_dec = 2;   //!< step on wrong prediction
        /**
         * Whether the counter is charged to this predictor's storage.
         * The paper argues the counter "is usually already present to
         * track the confidence, so no additional storage is needed";
         * we charge it by default and expose the knob for sensitivity
         * checks.
         */
        bool count_counter_bits = true;
    };

    explicit StridePredictor(const Config& config);

    /** Convenience constructor with paper-default policy. */
    explicit StridePredictor(unsigned table_bits, unsigned value_bits = 32);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    bool predictAndUpdate(Pc pc, Value actual) override;
    PredictorStats runTraceSpan(std::span<const TraceRecord>) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    std::size_t entries() const { return table_.size(); }

    /** Confidence counter value of the entry @p pc maps to
     *  (inspection hook for tests and instrumentation). */
    unsigned confidenceAt(Pc pc) const;

  private:
    struct Entry
    {
        Value last = 0;
        Value stride = 0;       // modulo 2^value_bits
        unsigned confidence = 0;
    };

    std::size_t index(Pc pc) const { return pc & index_mask_; }

    Config cfg_;
    std::uint64_t index_mask_;
    std::uint64_t value_mask_;
    unsigned counter_max_;
    std::vector<Entry> table_;
};

} // namespace vpred

#endif // DFCM_CORE_STRIDE_PREDICTOR_HH
