#include "core/dfcm_predictor.hh"

#include <cassert>
#include <sstream>

#include "core/trace_kernel.hh"

namespace vpred
{

DfcmPredictor::DfcmPredictor(const DfcmConfig& config)
    : cfg_(config), hash_(config.resolvedHash()),
      l1_mask_(maskBits(config.l1_bits)),
      value_mask_(maskBits(config.value_bits)),
      stride_mask_(maskBits(config.stride_bits)),
      l1_(std::size_t{1} << config.l1_bits),
      l2_(std::size_t{1} << config.l2_bits, 0)
{
    assert(config.l1_bits <= 28);
    assert(config.l2_bits >= 1 && config.l2_bits <= 28);
    assert(config.stride_bits >= 1
           && config.stride_bits <= config.value_bits);
    assert(hash_.indexBits() == config.l2_bits);
}

Value
DfcmPredictor::predict(Pc pc) const
{
    const L1Entry& e = l1_[l1Index(pc)];
    return (e.last + widen(l2_[e.hist])) & value_mask_;
}

void
DfcmPredictor::update(Pc pc, Value actual)
{
    actual &= value_mask_;
    L1Entry& e = l1_[l1Index(pc)];

    // New difference (modulo the value width); store it in the entry
    // the prediction was read from, then advance the difference
    // history and the last value.
    const Value stride = (actual - e.last) & value_mask_;
    l2_[e.hist] = stride & stride_mask_;
    e.hist = hash_.insert(e.hist, stride);
    e.last = actual;
}

bool
DfcmPredictor::predictAndUpdate(Pc pc, Value actual)
{
    // Fused predict + update: one level-1 lookup and one level-2
    // slot reference per record (prediction and update hit the same
    // slot because the history advances only after the write).
    L1Entry& e = l1_[l1Index(pc)];
    Value& slot = l2_[e.hist];
    const bool correct = ((e.last + widen(slot)) & value_mask_) == actual;

    actual &= value_mask_;
    const Value stride = (actual - e.last) & value_mask_;
    slot = stride & stride_mask_;
    e.hist = hash_.insert(e.hist, stride);
    e.last = actual;
    return correct;
}

PredictorStats
DfcmPredictor::runTraceSpan(std::span<const TraceRecord> trace)
{
    PredictorStats stats;
    runTraceKernel(*this, trace, stats);
    return stats;
}

std::uint64_t
DfcmPredictor::storageBits() const
{
    // Level 1 stores the hashed history *and* the last value — the
    // extra storage the paper charges the DFCM for. Level 2 stores
    // one (possibly narrowed) stride per entry.
    return std::uint64_t{l1_.size()} * (cfg_.l2_bits + cfg_.value_bits)
        + std::uint64_t{l2_.size()} * cfg_.stride_bits;
}

std::string
DfcmPredictor::name() const
{
    std::ostringstream os;
    os << "dfcm(l1=" << cfg_.l1_bits << ",l2=" << cfg_.l2_bits;
    if (cfg_.stride_bits != cfg_.value_bits)
        os << ",sb=" << cfg_.stride_bits;
    os << ")";
    return os.str();
}

} // namespace vpred
