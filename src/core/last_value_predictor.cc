#include "core/last_value_predictor.hh"

#include <cassert>
#include <sstream>

#include "core/trace_kernel.hh"

namespace vpred
{

LastValuePredictor::LastValuePredictor(unsigned table_bits,
                                       unsigned value_bits)
    : table_bits_(table_bits), value_bits_(value_bits),
      index_mask_(maskBits(table_bits)), value_mask_(maskBits(value_bits)),
      table_(std::size_t{1} << table_bits, 0)
{
    assert(table_bits <= 28);
    assert(value_bits >= 1 && value_bits <= 64);
}

Value
LastValuePredictor::predict(Pc pc) const
{
    return table_[index(pc)];
}

void
LastValuePredictor::update(Pc pc, Value actual)
{
    table_[index(pc)] = actual & value_mask_;
}

bool
LastValuePredictor::predictAndUpdate(Pc pc, Value actual)
{
    // Fused predict + update: one table lookup instead of two. The
    // correctness check compares the raw actual (as the default
    // predict-then-update composition does); only the stored value is
    // masked.
    Value& slot = table_[index(pc)];
    const bool correct = slot == actual;
    slot = actual & value_mask_;
    return correct;
}

PredictorStats
LastValuePredictor::runTraceSpan(std::span<const TraceRecord> trace)
{
    PredictorStats stats;
    runTraceKernel(*this, trace, stats);
    return stats;
}

std::uint64_t
LastValuePredictor::storageBits() const
{
    return std::uint64_t{table_.size()} * value_bits_;
}

std::string
LastValuePredictor::name() const
{
    std::ostringstream os;
    os << "lvp(t=" << table_bits_ << ")";
    return os.str();
}

} // namespace vpred
