#include "core/trace_io.hh"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string_view>

#include "core/parse_util.hh"

namespace vpred
{

namespace
{

constexpr char kMagicV1[4] = {'V', 'P', 'T', '1'};
constexpr char kMagicV2[4] = {'V', 'P', 'T', '2'};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
putU32(std::ostream& os, std::uint32_t v)
{
    std::array<char, 4> buf;
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf.data(), buf.size());
}

void
putU64(std::ostream& os, std::uint64_t v)
{
    std::array<char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf.data(), buf.size());
}

std::uint32_t
getU32(std::istream& is)
{
    std::array<char, 4> buf;
    is.read(buf.data(), buf.size());
    if (!is)
        throw TraceIoError("truncated trace file");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(buf[i]))
                << (8 * i);
    return v;
}

std::uint64_t
getU64(std::istream& is)
{
    std::array<char, 8> buf;
    is.read(buf.data(), buf.size());
    if (!is)
        throw TraceIoError("truncated trace file");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[i]))
                << (8 * i);
    return v;
}

/**
 * Bytes left in @p is from the current position, or nullopt when the
 * stream is not seekable. Used to reject corrupt record counts
 * before any allocation is attempted.
 */
std::optional<std::uint64_t>
remainingBytes(std::istream& is)
{
    const std::istream::pos_type pos = is.tellg();
    if (pos == std::istream::pos_type(-1))
        return std::nullopt;
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(pos);
    if (end == std::istream::pos_type(-1) || !is)
        return std::nullopt;
    return static_cast<std::uint64_t>(end - pos);
}

/** Validate @p count records of @p record_size bytes against the
 *  remaining stream length (when knowable) and the absolute cap. */
void
checkRecordCount(std::istream& is, std::uint64_t count,
                 std::uint64_t record_size)
{
    // Defensive cap: a count beyond a few billion records is a
    // corrupt header, not a real trace.
    if (count > (1ull << 33))
        throw TraceIoError("implausible record count");
    if (const auto remaining = remainingBytes(is)) {
        if (count > *remaining / record_size)
            throw TraceIoError(
                    "record count exceeds file size: header claims "
                    + std::to_string(count) + " records but only "
                    + std::to_string(*remaining / record_size)
                    + " fit in the remaining bytes");
    }
}

ValueTrace
readRecords(std::istream& is, std::uint64_t count)
{
    ValueTrace trace;
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t pc = getU64(is);
        const std::uint64_t value = getU64(is);
        trace.push_back({pc, value});
    }
    return trace;
}

} // namespace

std::uint64_t
traceChecksum(std::span<const TraceRecord> records)
{
    std::uint64_t h = kFnvOffset;
    for (const TraceRecord& rec : records) {
        h ^= rec.pc;
        h *= kFnvPrime;
        h ^= rec.value;
        h *= kFnvPrime;
    }
    return h;
}

void
writeTraceBinary(std::ostream& os, const ValueTrace& trace)
{
    os.write(kMagicV1, sizeof(kMagicV1));
    putU64(os, trace.size());
    for (const TraceRecord& rec : trace) {
        putU64(os, rec.pc);
        putU64(os, rec.value);
    }
}

void
writeTraceVpt2(std::ostream& os, const ValueTrace& trace,
               const Vpt2Meta& meta)
{
    if (meta.workload.size() > std::numeric_limits<std::uint32_t>::max()
        || meta.output.size() > std::numeric_limits<std::uint32_t>::max())
        throw TraceIoError("VPT2 metadata too large");

    const std::uint64_t meta_end =
            kVpt2HeaderSize + meta.workload.size() + meta.output.size();
    const std::uint64_t records_offset =
            (meta_end + kVpt2RecordAlignment - 1)
            / kVpt2RecordAlignment * kVpt2RecordAlignment;

    os.write(kMagicV2, sizeof(kMagicV2));
    putU32(os, kVpt2FormatVersion);
    putU32(os, meta.generator_version);
    putU32(os, static_cast<std::uint32_t>(meta.workload.size()));
    putU32(os, static_cast<std::uint32_t>(meta.output.size()));
    putU32(os, 0);  // reserved
    putU64(os, std::bit_cast<std::uint64_t>(meta.scale));
    putU64(os, trace.size());
    putU64(os, meta.instructions);
    putU64(os, traceChecksum({trace.data(), trace.size()}));
    putU64(os, records_offset);
    os.write(meta.workload.data(),
             static_cast<std::streamsize>(meta.workload.size()));
    os.write(meta.output.data(),
             static_cast<std::streamsize>(meta.output.size()));
    for (std::uint64_t i = meta_end; i < records_offset; ++i)
        os.put('\0');

    if constexpr (std::endian::native == std::endian::little) {
        // TraceRecord is two little-endian u64s in memory (layout
        // pinned by the static_asserts in harness/trace_store.hh);
        // one bulk write is the serialized payload.
        os.write(reinterpret_cast<const char*>(trace.data()),
                 static_cast<std::streamsize>(trace.size()
                                              * sizeof(TraceRecord)));
    } else {
        for (const TraceRecord& rec : trace) {
            putU64(os, rec.pc);
            putU64(os, rec.value);
        }
    }
}

namespace
{

/** Parse a VPT2 header whose 4-byte magic has already been consumed. */
Vpt2Layout
readVpt2HeaderAfterMagic(std::istream& is)
{
    const std::uint32_t format_version = getU32(is);
    if (format_version != kVpt2FormatVersion)
        throw TraceIoError("unsupported VPT2 format version "
                           + std::to_string(format_version));

    Vpt2Layout layout;
    layout.meta.generator_version = getU32(is);
    const std::uint32_t name_len = getU32(is);
    const std::uint32_t output_len = getU32(is);
    getU32(is);  // reserved
    layout.meta.scale = std::bit_cast<double>(getU64(is));
    layout.record_count = getU64(is);
    layout.meta.instructions = getU64(is);
    layout.checksum = getU64(is);
    layout.records_offset = getU64(is);

    const std::uint64_t meta_end =
            kVpt2HeaderSize + std::uint64_t{name_len} + output_len;
    if (layout.records_offset < meta_end
        || layout.records_offset % kVpt2RecordAlignment != 0
        || layout.records_offset
                   > meta_end + kVpt2RecordAlignment)
        throw TraceIoError("corrupt VPT2 record-section offset");
    if (name_len > (1u << 20) || output_len > (1u << 28))
        throw TraceIoError("implausible VPT2 metadata length");

    layout.meta.workload.resize(name_len);
    is.read(layout.meta.workload.data(), name_len);
    layout.meta.output.resize(output_len);
    is.read(layout.meta.output.data(), output_len);
    if (!is)
        throw TraceIoError("truncated VPT2 metadata");
    return layout;
}

/** Read the padding and record section following a parsed header. */
ValueTrace
readVpt2RecordsAfterHeader(std::istream& is, const Vpt2Layout& layout)
{
    // Skip padding up to the record section.
    const std::uint64_t meta_end = kVpt2HeaderSize
            + layout.meta.workload.size() + layout.meta.output.size();
    for (std::uint64_t i = meta_end; i < layout.records_offset; ++i)
        if (is.get() == std::istream::traits_type::eof())
            throw TraceIoError("truncated VPT2 padding");
    checkRecordCount(is, layout.record_count, sizeof(TraceRecord));
    ValueTrace trace = readRecords(is, layout.record_count);
    if (traceChecksum({trace.data(), trace.size()}) != layout.checksum)
        throw TraceIoError("VPT2 checksum mismatch");
    return trace;
}

} // namespace

Vpt2Layout
readVpt2Header(std::istream& is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0)
        throw TraceIoError("not a VPT2 trace file");
    return readVpt2HeaderAfterMagic(is);
}

ValueTrace
readTraceVpt2(std::istream& is, Vpt2Layout* layout_out)
{
    const Vpt2Layout layout = readVpt2Header(is);
    ValueTrace trace = readVpt2RecordsAfterHeader(is, layout);
    if (layout_out != nullptr)
        *layout_out = layout;
    return trace;
}

ValueTrace
readTraceBinary(std::istream& is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is)
        throw TraceIoError("not a VPT1/VPT2 trace file");
    if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
        const Vpt2Layout layout = readVpt2HeaderAfterMagic(is);
        return readVpt2RecordsAfterHeader(is, layout);
    }
    if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0)
        throw TraceIoError("not a VPT1/VPT2 trace file");
    const std::uint64_t count = getU64(is);
    checkRecordCount(is, count, 16);
    return readRecords(is, count);
}

void
writeTraceCsv(std::ostream& os, const ValueTrace& trace)
{
    os << "pc,value\n";
    for (const TraceRecord& rec : trace)
        os << rec.pc << "," << rec.value << "\n";
}

ValueTrace
readTraceCsv(std::istream& is)
{
    ValueTrace trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line_no == 1 && line.rfind("pc", 0) == 0)
            continue;  // header
        const std::size_t comma = line.find(',');
        if (comma == std::string::npos) {
            throw TraceIoError("line " + std::to_string(line_no)
                               + ": expected pc,value");
        }
        const std::string_view sv(line);
        const std::optional<unsigned long long> pc =
                parseUInt(sv.substr(0, comma));
        const std::optional<unsigned long long> value =
                parseUInt(sv.substr(comma + 1));
        if (!pc || !value) {
            throw TraceIoError("line " + std::to_string(line_no)
                               + ": bad number");
        }
        trace.push_back({*pc, *value});
    }
    return trace;
}

void
saveTrace(const std::string& path, const ValueTrace& trace)
{
    const bool csv = path.size() > 4
        && path.compare(path.size() - 4, 4, ".csv") == 0;
    std::ofstream out(path, csv ? std::ios::out
                                : std::ios::out | std::ios::binary);
    if (!out)
        throw TraceIoError("cannot open " + path + " for writing");
    if (csv)
        writeTraceCsv(out, trace);
    else
        writeTraceBinary(out, trace);
}

ValueTrace
loadTrace(const std::string& path)
{
    const bool csv = path.size() > 4
        && path.compare(path.size() - 4, 4, ".csv") == 0;
    std::ifstream in(path, csv ? std::ios::in
                               : std::ios::in | std::ios::binary);
    if (!in)
        throw TraceIoError("cannot open " + path);
    return csv ? readTraceCsv(in) : readTraceBinary(in);
}

} // namespace vpred
