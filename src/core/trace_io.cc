#include "core/trace_io.hh"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

namespace vpred
{

namespace
{

constexpr char kMagic[4] = {'V', 'P', 'T', '1'};

void
putU64(std::ostream& os, std::uint64_t v)
{
    std::array<char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf.data(), buf.size());
}

std::uint64_t
getU64(std::istream& is)
{
    std::array<char, 8> buf;
    is.read(buf.data(), buf.size());
    if (!is)
        throw TraceIoError("truncated trace file");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[i]))
                << (8 * i);
    return v;
}

} // namespace

void
writeTraceBinary(std::ostream& os, const ValueTrace& trace)
{
    os.write(kMagic, sizeof(kMagic));
    putU64(os, trace.size());
    for (const TraceRecord& rec : trace) {
        putU64(os, rec.pc);
        putU64(os, rec.value);
    }
}

ValueTrace
readTraceBinary(std::istream& is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw TraceIoError("not a VPT1 trace file");
    const std::uint64_t count = getU64(is);
    // Defensive cap: a count beyond a few billion records is a
    // corrupt header, not a real trace.
    if (count > (1ull << 33))
        throw TraceIoError("implausible record count");
    ValueTrace trace;
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t pc = getU64(is);
        const std::uint64_t value = getU64(is);
        trace.push_back({pc, value});
    }
    return trace;
}

void
writeTraceCsv(std::ostream& os, const ValueTrace& trace)
{
    os << "pc,value\n";
    for (const TraceRecord& rec : trace)
        os << rec.pc << "," << rec.value << "\n";
}

ValueTrace
readTraceCsv(std::istream& is)
{
    ValueTrace trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line_no == 1 && line.rfind("pc", 0) == 0)
            continue;  // header
        const std::size_t comma = line.find(',');
        if (comma == std::string::npos) {
            throw TraceIoError("line " + std::to_string(line_no)
                               + ": expected pc,value");
        }
        try {
            const std::uint64_t pc = std::stoull(line.substr(0, comma));
            const std::uint64_t value =
                    std::stoull(line.substr(comma + 1));
            trace.push_back({pc, value});
        } catch (const std::exception&) {
            throw TraceIoError("line " + std::to_string(line_no)
                               + ": bad number");
        }
    }
    return trace;
}

void
saveTrace(const std::string& path, const ValueTrace& trace)
{
    const bool csv = path.size() > 4
        && path.compare(path.size() - 4, 4, ".csv") == 0;
    std::ofstream out(path, csv ? std::ios::out
                                : std::ios::out | std::ios::binary);
    if (!out)
        throw TraceIoError("cannot open " + path + " for writing");
    if (csv)
        writeTraceCsv(out, trace);
    else
        writeTraceBinary(out, trace);
}

ValueTrace
loadTrace(const std::string& path)
{
    const bool csv = path.size() > 4
        && path.compare(path.size() - 4, 4, ".csv") == 0;
    std::ifstream in(path, csv ? std::ios::in
                               : std::ios::in | std::ios::binary);
    if (!in)
        throw TraceIoError("cannot open " + path);
    return csv ? readTraceCsv(in) : readTraceBinary(in);
}

} // namespace vpred
