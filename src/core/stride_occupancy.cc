#include "core/stride_occupancy.hh"

#include <algorithm>

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/stride_predictor.hh"

namespace vpred
{

std::uint64_t
OccupancyResult::entriesAccessedMoreThan(std::uint64_t k) const
{
    // sorted_counts is descending: find the first entry <= k.
    auto it = std::lower_bound(sorted_counts.begin(), sorted_counts.end(),
                               k, [](std::uint64_t c, std::uint64_t key) {
                                   return c > key;
                               });
    return static_cast<std::uint64_t>(it - sorted_counts.begin());
}

namespace
{

template <typename PredictorT>
OccupancyResult
profileImpl(PredictorT& predictor, std::span<const TraceRecord> trace,
            unsigned side_stride_bits)
{
    StridePredictor detector(side_stride_bits,
                             predictor.config().value_bits);
    std::vector<std::uint64_t> counts(predictor.l2Entries(), 0);

    OccupancyResult result;
    result.total_accesses = trace.size();
    for (const TraceRecord& rec : trace) {
        const bool is_stride = detector.predict(rec.pc) == rec.value;
        if (is_stride) {
            ++counts[predictor.l2IndexFor(rec.pc)];
            ++result.stride_accesses;
        }
        detector.update(rec.pc, rec.value);
        predictor.update(rec.pc, rec.value);
    }

    std::sort(counts.begin(), counts.end(), std::greater<>());
    result.sorted_counts = std::move(counts);
    return result;
}

} // namespace

OccupancyResult
profileStrideOccupancy(FcmPredictor& predictor,
                       std::span<const TraceRecord> trace,
                       unsigned side_stride_bits)
{
    return profileImpl(predictor, trace, side_stride_bits);
}

OccupancyResult
profileStrideOccupancy(DfcmPredictor& predictor,
                       std::span<const TraceRecord> trace,
                       unsigned side_stride_bits)
{
    return profileImpl(predictor, trace, side_stride_bits);
}

} // namespace vpred
