/**
 * @file
 * NEON (Advanced SIMD) instantiation of the column-parallel
 * multi-geometry kernel. Advanced SIMD is architecturally guaranteed
 * on AArch64, so this translation unit needs no extra flags and no
 * runtime probe; vshlq_u32's signed per-lane counts provide both
 * variable shift directions.
 */

#define REPRO_SIMD_TU_NEON 1

#include "core/multi_geom_simd_impl.hh"

namespace vpred::detail
{

static_assert(simd::Native::kBackend == SimdBackend::Neon,
              "simd.hh resolved the wrong backend for this TU");

void
runMgColumnsNeon(const MgSimdView& view,
                 std::span<const TraceRecord> trace)
{
    runMgColumnsAll<simd::Native>(view, trace);
}

} // namespace vpred::detail
