/**
 * @file
 * Multi-geometry FCM/DFCM kernels: evaluate one level-1 geometry
 * against an entire column of level-2 sizes in a single trace walk.
 *
 * Every paper sweep (Figures 3, 10, 11) varies l2_bits while holding
 * the level-1 geometry fixed, yet the per-config path replays the
 * full trace once per (l1, l2) cell. The key observation is that the
 * level-1 *inputs* are independent of the level-2 geometry: which
 * entry a PC maps to, the last value and the new stride (DFCM) are
 * the same for every l2_bits — only the FS R-k hashed history (the
 * level-2 index) depends on the index width.
 *
 * These kernels therefore walk the trace once, compute the shared
 * per-record inputs once (level-1 index, masked value, stride), and
 * keep a *bank* of incrementally-maintained hashed histories per
 * level-1 entry — one per level-2 column — each advanced with its
 * own column's ShiftFoldHash and used to probe/update that column's
 * level-2 table. The whole l2_bits column is evaluated in one walk:
 * O(|rows| * |trace|) trace traffic instead of O(|grid| * |trace|).
 *
 * Bit-identical equivalence to the per-config predictors holds by
 * construction: for each column c the kernel applies *exactly* the
 * per-config update rule — h_c' = insert_c(h_c, v) with the same
 * initial state (0), the same inserted value (masked value for FCM,
 * full-width stride for DFCM) and the same level-2 read/write
 * ordering as the fused predictAndUpdate — so every column's state
 * sequence is the per-config predictor's state sequence. Nothing is
 * approximated and no warm-up special case exists. (An earlier
 * design kept the *unfolded* order-k value ring and re-folded it
 * per column per record; that is equivalent too — a value's
 * contribution is fully shifted out after `order` insertions since
 * shift * order >= index_bits — but costs O(order) hash insertions
 * per column per record where the per-config path pays O(1), making
 * it slower than the path it replaces. The incremental bank pays the
 * same O(1) per column and only amortizes the shared work.)
 * Asserted against runSuite over the full Figure 10 grid in
 * tests/batch_kernel_test.cc.
 *
 * The per-record column loop exists in two shapes: the scalar
 * reference implementation in multi_geom.cc, and column-parallel
 * vector kernels (one translation unit per instruction set, see
 * core/simd.hh and multi_geom_simd.hh) that advance all history
 * lanes of a record in one vector op and software-prefetch the next
 * record's level-1 bank and level-2 slots. runTrace() dispatches to
 * the widest backend the build and the running CPU support
 * (core/cpu_features.hh; override with REPRO_SIMD); every backend is
 * bit-identical to the scalar path, so dispatch never changes
 * results — tests/simd_kernel_test.cc asserts this per backend over
 * the full Figure 10 grid.
 */

#ifndef DFCM_CORE_MULTI_GEOM_HH
#define DFCM_CORE_MULTI_GEOM_HH

#include <cstdint>
#include <span>
#include <vector>

#include "core/cpu_features.hh"
#include "core/hash_function.hh"
#include "core/stats.hh"
#include "core/table_arena.hh"
#include "core/types.hh"

namespace vpred
{

namespace detail
{
struct MgSimdView;
struct MgPackedView;
}

/**
 * Observability counters for one feedTracePacked() call: how many
 * 16-lane steps the canonical packing produced, how many records rode
 * in them (mean lane occupancy = records / (steps * 16)), and which
 * execution path ran them — a gather-capable vector backend or the
 * scalar packed reference. The service aggregates these into the
 * BENCH_service.json "packing" section.
 */
struct PackedFeedInfo
{
    std::uint64_t steps = 0;    //!< 16-lane steps executed
    std::uint64_t records = 0;  //!< records scheduled (active lanes)
    std::uint64_t gather_records = 0;  //!< ran on a gather backend
    std::uint64_t scalar_records = 0;  //!< ran on the scalar reference
};

/**
 * One level-1 row of a sweep grid: the shared geometry plus the
 * level-2 size column to evaluate in a single pass.
 */
struct MultiGeomConfig
{
    unsigned l1_bits = 16;     //!< log2(#level-1 entries), shared
    unsigned value_bits = 32;  //!< value width, shared (at most 32)
    /** Stored-stride width (DFCM only, Section 4.4), shared. */
    unsigned stride_bits = 32;
    /** FS R-k hash shift (5 = the paper's FS R-5), shared. */
    unsigned hash_shift = 5;
    /** One level-2 column per entry: log2(#level-2 entries). */
    std::vector<unsigned> l2_bits;
};

/**
 * Common machinery of the two kernels: the per-column level-2 banks
 * and the per-entry bank of hashed histories.
 */
class MultiGeomKernelBase
{
  public:
    std::size_t columns() const { return cols_.size(); }
    std::size_t l1Entries() const
    {
        return std::size_t{1} << cfg_.l1_bits;
    }
    const MultiGeomConfig& config() const { return cfg_; }

    /** Deepest history order across the columns. */
    unsigned maxOrder() const { return max_order_; }

    /**
     * One level-2 column: its FS R-k instance and its table. Slots
     * are stored narrow (32 bits): stored values/strides are always
     * masked to value_bits <= 32 (asserted in the constructor), and
     * halving the table footprint is a large part of the kernel's
     * cache-level win over the per-config path.
     */
    struct Column
    {
        ShiftFoldHash hash;
        /** Arena-backed (64-byte aligned, huge-page hinted when big
         *  enough): the level-2 tables are the kernel's dominant
         *  working set and the arena's raison d'être. */
        TableBuffer<std::uint32_t> l2;
    };

    /** Bank stride: columns() rounded up to a whole vector, so every
     *  backend processes a record's bank as full vectors. */
    std::size_t paddedColumns() const { return padded_n_; }

    /**
     * Zero-copy view of one level-1 entry's hashed-history bank:
     * paddedColumns() lanes (padding lanes carry dead state and are
     * exported/imported verbatim). The span is the kernel's
     * relocatable per-entry level-1 state — the prediction service
     * snapshots it on eviction and reinstalls it on restore; the
     * shared level-2 tables are deliberately *not* part of it.
     */
    std::span<const std::uint32_t>
    entryHists(std::size_t entry) const
    {
        return {&hists_[entry * padded_n_], padded_n_};
    }

    /** Install a bank previously obtained from entryHists(). @p hists
     *  must hold exactly paddedColumns() lanes. */
    void setEntryHists(std::size_t entry,
                       std::span<const std::uint32_t> hists);

    /**
     * Re-plan which columns the gather tier probes: columns with
     * l2_bits >= @p bits batch their level-2 probes through the
     * vector gather path (on gather-capable backends); 0 disables the
     * tier. Construction seeds this from REPRO_GATHER_COLUMNS (see
     * docs/api.md); this setter is the programmatic override the
     * bench and the bit-identity tests use. Selection never changes
     * results — the gather path is bit-identical to the scalar probe
     * order — only which execution path runs.
     */
    void setGatherMinBits(unsigned bits);

    /** The active gather threshold (0 = tier disabled). */
    unsigned gatherMinBits() const { return gather_min_bits_; }

    /** How many columns the current plan probes via gather. */
    std::size_t gatherColumnCount() const { return gather_cols_.size(); }

    /**
     * Re-home every hot table (level-2 columns and the history bank)
     * under an explicit arena mode, preserving contents. The big-L2
     * benchmark uses this to time the plain-page std::vector
     * -equivalent baseline and the huge-page arena path head-to-head
     * in one process; results are unaffected — only where the bytes
     * live changes.
     */
    void setArenaMode(ArenaMode mode);

  protected:
    /** Zero one entry's history bank (power-on state). */
    void clearEntryHists(std::size_t entry);

    explicit MultiGeomKernelBase(const MultiGeomConfig& config);

    /** Reset all level-1 and level-2 state to power-on zeros. */
    void resetState();

    /**
     * Flatten this kernel's state for a vector backend. @p correct
     * must point at columns() zeroed counters and outlive the view.
     * The DFCM kernel fills in last/dfcm/widen after the fact.
     */
    detail::MgSimdView makeView(std::uint64_t* correct);

    /**
     * Build the canonical stream-packed schedule for @p trace into
     * the kernel-owned scratch arrays, returning the step count.
     *
     * Records are grouped by level-1 entry in first-appearance order;
     * wave j takes the j-th record of every group that still has one,
     * and each wave is cut into 16-lane steps (a step never spans
     * waves, so its lane entries are pairwise distinct — the packed
     * kernels' no-collision precondition for the history scatter).
     * Each group's records keep their trace order across waves, which
     * is what makes per-stream level-1 state independent of batching.
     * The schedule is a pure function of the (entry, value) sequence,
     * so packed counters are deterministic for a given batch order.
     */
    std::size_t packTrace(std::span<const TraceRecord> trace);

    /** Flatten kernel state + the schedule packTrace() just built.
     *  Same contract as makeView; @p steps is packTrace()'s result. */
    detail::MgPackedView makePackedView(std::uint64_t* correct,
                                        std::size_t steps);

    MultiGeomConfig cfg_;
    std::uint64_t l1_mask_;
    std::uint64_t value_mask_;
    unsigned max_order_;
    std::vector<Column> cols_;
    /**
     * Hashed histories, paddedColumns() per level-1 entry
     * (entry-major, so one record's bank is contiguous; the padding
     * lanes are dead state only the vector path writes). 32 bits
     * suffice: level-2 indices are at most 28 bits wide. Arena-backed:
     * at big level-1 geometries the bank rivals the tables.
     */
    TableBuffer<std::uint32_t> hists_;
    std::size_t padded_n_;
    /** Shared worst-case fold chunk count across the columns. */
    unsigned max_chunks_;
    // Per-lane FS R-k parameters as structure-of-arrays (padded_n_
    // entries, padding lanes inert) plus the level-2 base pointers —
    // the vector kernels' constant inputs.
    std::vector<std::uint32_t> col_shifts_;
    std::vector<std::uint32_t> col_fold_bits_;
    std::vector<std::uint32_t> col_fold_masks_;
    std::vector<std::uint32_t> col_index_masks_;
    std::vector<std::uint32_t*> l2_ptrs_;
    /** Columns whose level-2 table is big enough that software
     *  prefetch pays for itself (see kPrefetchMinL2Bytes). */
    std::vector<std::uint32_t> prefetch_cols_;

    /** Split the plan computes from gather_min_bits_: columns probed
     *  through the vector gather tier vs the scalar probe loop
     *  (disjoint, together covering every real column). */
    std::vector<std::uint32_t> gather_cols_;
    std::vector<std::uint32_t> scalar_cols_;
    unsigned gather_min_bits_ = 0;

    /** Recompute gather_cols_/scalar_cols_ from gather_min_bits_. */
    void planGatherColumns();

    /** Whether every history-bank gather index fits a signed 32-bit
     *  lane (l1Entries * padded_n bounded); when false the packed
     *  entry points always use the scalar reference. */
    bool packed_simd_ok_;

    // packTrace() scratch, reused across calls. The per-entry stamp
    // pair gives O(batch) grouping without clearing l1Entries() words
    // per call (allocated lazily on the first packed feed).
    std::vector<std::uint32_t> pack_stamp_;  //!< epoch per l1 entry
    std::vector<std::uint32_t> pack_gid_;    //!< group id per l1 entry
    std::uint32_t pack_epoch_ = 0;
    std::vector<std::uint32_t> pk_group_entry_;   //!< group -> entry
    std::vector<std::uint32_t> pk_group_count_;   //!< records in group
    std::vector<std::uint32_t> pk_group_off_;     //!< grouped-area base
    std::vector<std::uint32_t> pk_group_cursor_;  //!< distribution aid
    std::vector<std::uint32_t> pk_values_;  //!< grouped masked values
    std::vector<std::uint8_t> pk_fits_;     //!< grouped fits flags
    std::vector<std::uint32_t> pk_alive_;   //!< groups still emitting
    // The emitted schedule (steps x kPackLanes lane arrays + masks).
    std::vector<std::uint32_t> pk_lane_entry_;
    std::vector<std::uint32_t> pk_lane_value_;
    std::vector<std::uint16_t> pk_step_active_;
    std::vector<std::uint16_t> pk_step_fits_;
};

/**
 * FCM over one level-1 geometry and many level-2 sizes at once.
 * Each column's history is advanced with the shared masked value
 * through its own FS R-k instance.
 */
class MultiGeomFcmKernel : public MultiGeomKernelBase
{
  public:
    /** @param config stride_bits is ignored (FCM stores values). */
    explicit MultiGeomFcmKernel(const MultiGeomConfig& config);

    /**
     * Evaluate the whole column over @p trace from power-on state,
     * returning one PredictorStats per l2_bits entry (column order).
     * State is reset on entry, so repeated calls are independent.
     * Dispatches to activeSimdBackend(); results are bit-identical
     * regardless of the backend chosen.
     */
    std::vector<PredictorStats> runTrace(std::span<const TraceRecord> trace);

    /** As above, but on a specific backend (for tests and the
     *  throughput bench). Backends that are not available fall back
     *  to the scalar reference path. */
    std::vector<PredictorStats> runTrace(std::span<const TraceRecord> trace,
                                         SimdBackend backend);

    /**
     * Advance the kernel over @p trace *without* resetting state:
     * the incremental entry point for long-lived use (the prediction
     * service feeds batches as they arrive). Returned stats cover
     * only the fed span. runTrace(t) == reset() + feedTrace(t), and
     * feeding a trace in any chunking yields the same final state
     * and the same summed stats as one call.
     */
    std::vector<PredictorStats>
    feedTrace(std::span<const TraceRecord> trace);

    /** As above on a specific backend. */
    std::vector<PredictorStats>
    feedTrace(std::span<const TraceRecord> trace, SimdBackend backend);

    /**
     * Incremental feed through the *stream-packed* tier: records from
     * distinct level-1 entries execute side by side in 16-lane steps
     * (see packTrace), with gather/scatter level-2 probes on capable
     * backends. Each entry's own records stay in trace order, so
     * per-entry level-1 state is bit-identical to feedTrace() for any
     * batching; the returned counters follow the canonical packed
     * interleave instead of trace order, and are identical across
     * every backend (including the scalar packed reference).
     */
    std::vector<PredictorStats>
    feedTracePacked(std::span<const TraceRecord> trace);

    /** As above on a specific backend, optionally reporting packing
     *  observability (@p info is overwritten, not accumulated). */
    std::vector<PredictorStats>
    feedTracePacked(std::span<const TraceRecord> trace,
                    SimdBackend backend, PackedFeedInfo* info = nullptr);

    /** Reset all state to power-on zeros. */
    void reset() { resetState(); }

    /** Return one entry to power-on state (service eviction). */
    void clearEntry(std::size_t entry) { clearEntryHists(entry); }
};

/**
 * DFCM over one level-1 geometry and many level-2 sizes at once.
 * The last value and the new stride are geometry-independent and
 * shared; each column's history is advanced with the full-width
 * stride through its own FS R-k instance.
 */
class MultiGeomDfcmKernel : public MultiGeomKernelBase
{
  public:
    explicit MultiGeomDfcmKernel(const MultiGeomConfig& config);

    /** See MultiGeomFcmKernel::runTrace. */
    std::vector<PredictorStats> runTrace(std::span<const TraceRecord> trace);

    /** See MultiGeomFcmKernel::runTrace(trace, backend). */
    std::vector<PredictorStats> runTrace(std::span<const TraceRecord> trace,
                                         SimdBackend backend);

    /** See MultiGeomFcmKernel::feedTrace — incremental, no reset. */
    std::vector<PredictorStats>
    feedTrace(std::span<const TraceRecord> trace);

    /** As above on a specific backend. */
    std::vector<PredictorStats>
    feedTrace(std::span<const TraceRecord> trace, SimdBackend backend);

    /** See MultiGeomFcmKernel::feedTracePacked. */
    std::vector<PredictorStats>
    feedTracePacked(std::span<const TraceRecord> trace);

    /** As above on a specific backend, optionally reporting packing
     *  observability (@p info is overwritten, not accumulated). */
    std::vector<PredictorStats>
    feedTracePacked(std::span<const TraceRecord> trace,
                    SimdBackend backend, PackedFeedInfo* info = nullptr);

    /** Reset all state (histories, level-2 tables, last values). */
    void reset();

    /** Return one entry to power-on state (service eviction): zero
     *  its history bank and its last value. */
    void clearEntry(std::size_t entry);

    /** One entry's last value — with entryHists() this is the whole
     *  relocatable per-entry level-1 state of a DFCM. */
    Value lastValue(std::size_t entry) const { return last_[entry]; }
    void setLastValue(std::size_t entry, Value v) { last_[entry] = v; }

  private:
    /** Stored (possibly narrowed) stride -> full-width stride. */
    Value
    widen(Value stored) const
    {
        return signExtend(stored, cfg_.stride_bits) & value_mask_;
    }

    std::uint64_t stride_mask_;
    std::vector<Value> last_;  //!< last value per level-1 entry
};

} // namespace vpred

#endif // DFCM_CORE_MULTI_GEOM_HH
