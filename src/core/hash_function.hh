/**
 * @file
 * History hashing for two-level context predictors.
 *
 * Sazeides and Smith ("Implementations of Context Based Value
 * Predictors", TR ECE97-8) study hash functions that compress an
 * order-k value history into a level-2 table index. The paper uses
 * their FS R-5 function: each value is folded (XOR of n-bit chunks)
 * into n bits, shifted left by 5 * age bit positions and the shifted
 * values are XORed together into the index.
 *
 * Because the shift discards bits beyond the index width, the hash
 * can be maintained *incrementally*: only the hashed history needs to
 * be stored in the level-1 table, never the raw values. A value's
 * contribution is fully shifted out after ceil(n / shift) insertions,
 * which is exactly why the paper sets order = ceil(n / 5).
 */

#ifndef DFCM_CORE_HASH_FUNCTION_HH
#define DFCM_CORE_HASH_FUNCTION_HH

#include <cstdint>
#include <string>

#include "core/types.hh"

namespace vpred
{

/**
 * Fold a 64-bit value into @p bits bits by XOR-ing consecutive
 * @p bits -wide chunks together.
 *
 * @param value The value to fold.
 * @param bits Result width, 0..64; a zero-width fold is empty and
 *        yields 0 (without the guard the chunk loop below would shift
 *        by 0 forever).
 */
constexpr std::uint64_t
foldXor(std::uint64_t value, unsigned bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 64)
        return value;
    std::uint64_t r = 0;
    while (value != 0) {
        r ^= value & maskBits(bits);
        value >>= bits;
    }
    return r;
}

/**
 * An incrementally-updatable shift-and-fold history hash.
 *
 * On each insertion the previous hash is shifted left by @c shift
 * bits, the new value is folded into @c foldBits bits and XORed in,
 * and the result is truncated to @c indexBits bits:
 *
 *     h' = ((h << shift) ^ fold(v, foldBits)) & mask(indexBits)
 *
 * Two members of this family matter for the paper:
 *
 *  - FS R-5 (the paper's choice): foldBits == indexBits, shift == 5.
 *  - Concatenation (the Figure 4 walk-through): foldBits == shift ==
 *    indexBits / order, so per-value fields do not overlap.
 *
 * The effective order (number of values influencing the hash) is
 * ceil(indexBits / shift).
 */
class ShiftFoldHash
{
  public:
    /**
     * @param index_bits Width of the produced level-2 index (1..32).
     * @param shift Left shift applied per insertion (1..index_bits).
     * @param fold_bits Width each value is folded into (1..64).
     */
    ShiftFoldHash(unsigned index_bits, unsigned shift, unsigned fold_bits);

    /** The paper's FS R-5 function for a 2^index_bits entry table. */
    static ShiftFoldHash fsR5(unsigned index_bits);

    /** FS R-k: fold to the index width, shift by @p k per value. */
    static ShiftFoldHash fsRk(unsigned index_bits, unsigned k);

    /**
     * Non-overlapping concatenation of @p order folded values, as
     * assumed in the paper's Figure 4 example. @p index_bits must be
     * divisible by @p order.
     */
    static ShiftFoldHash concat(unsigned index_bits, unsigned order);

    /** Insert @p value into hash state @p hash, returning the new
     *  hash (which is also the level-2 index). */
    std::uint64_t
    insert(std::uint64_t hash, std::uint64_t value) const
    {
        return ((hash << shift_) ^ foldXor(value, fold_bits_)) & mask_;
    }

    /** Number of most-recent values that influence the hash. */
    unsigned order() const { return order_; }

    /** Width of the produced index in bits. */
    unsigned indexBits() const { return index_bits_; }

    /** Per-insertion shift distance. */
    unsigned shift() const { return shift_; }

    /** Per-value fold width. */
    unsigned foldBits() const { return fold_bits_; }

    /** Human-readable description, e.g. "FS R-5(12)". */
    std::string name() const;

    bool operator==(const ShiftFoldHash&) const = default;

  private:
    unsigned index_bits_;
    unsigned shift_;
    unsigned fold_bits_;
    unsigned order_;
    std::uint64_t mask_;
};

/**
 * The level-2 index width to history order relation the paper uses
 * for FS R-5: order = ceil(index_bits / 5).
 */
constexpr unsigned
orderForL2Bits(unsigned index_bits, unsigned shift = 5)
{
    return (index_bits + shift - 1) / shift;
}

} // namespace vpred

#endif // DFCM_CORE_HASH_FUNCTION_HH
