/**
 * @file
 * Checked string-to-number parsing shared by every CLI, environment
 * variable, and text-format reader in the tree.
 *
 * The C library parsers (atoi, strtol, strtoul, strtod) fail in ways
 * that have already bitten this repo twice: they silently accept
 * trailing garbage ("1.5x" parses as 1.5), atoi has no error channel
 * at all, and the unsigned variants wrap negative input around to
 * huge values (REPRO_JOBS=-3 used to ask for 2^64-3 workers). Every
 * call site outside this header goes through parseInt / parseUInt /
 * parseDouble instead; repro-lint rule parse/raw-call enforces that.
 *
 * All three reject empty input, leading whitespace, and trailing
 * garbage, and return std::nullopt instead of a half-parsed value.
 * The raw C parsers below are the one sanctioned use in the tree.
 */

#ifndef DFCM_CORE_PARSE_UTIL_HH
#define DFCM_CORE_PARSE_UTIL_HH

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

namespace vpred
{

/**
 * Parse a signed integer in [@p min_value, @p max_value].
 *
 * @p base follows strtoll: 10 for decimal, 0 auto-detects 0x/0
 * prefixes (the assembler's operand syntax). Returns std::nullopt on
 * empty input, leading whitespace, trailing garbage, or a value
 * outside the requested range.
 */
inline std::optional<long long>
parseInt(std::string_view text,
         long long min_value = std::numeric_limits<long long>::min(),
         long long max_value = std::numeric_limits<long long>::max(),
         int base = 10)
{
    if (text.empty() || std::isspace(static_cast<unsigned char>(text[0])))
        return std::nullopt;
    const std::string buf(text);  // strtoll needs NUL termination
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(buf.c_str(), &end, base);
    if (end == buf.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    if (v < min_value || v > max_value)
        return std::nullopt;
    return v;
}

/**
 * Parse an unsigned integer in [0, @p max_value].
 *
 * Unlike strtoul, a leading '-' is rejected instead of wrapping
 * modulo 2^64.
 */
inline std::optional<unsigned long long>
parseUInt(std::string_view text,
          unsigned long long max_value =
                  std::numeric_limits<unsigned long long>::max(),
          int base = 10)
{
    if (text.empty() || std::isspace(static_cast<unsigned char>(text[0]))
        || text[0] == '-')
        return std::nullopt;
    const std::string buf(text);
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(buf.c_str(), &end, base);
    if (end == buf.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    if (v > max_value)
        return std::nullopt;
    return v;
}

/**
 * Parse a finite double. Rejects empty input, leading whitespace,
 * trailing garbage ("1.5x"), and out-of-range magnitudes.
 */
inline std::optional<double>
parseDouble(std::string_view text)
{
    if (text.empty() || std::isspace(static_cast<unsigned char>(text[0])))
        return std::nullopt;
    const std::string buf(text);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return v;
}

} // namespace vpred

#endif // DFCM_CORE_PARSE_UTIL_HH
