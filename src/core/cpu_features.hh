/**
 * @file
 * Runtime SIMD capability detection and backend selection for the
 * multi-geometry sweep kernels.
 *
 * The kernels in core/multi_geom.cc have one scalar reference
 * implementation plus vector implementations compiled per instruction
 * set (see core/simd.hh and the multi_geom_simd_*.cc translation
 * units). Which vector units exist is a *build* question (did CMake
 * add the AVX2 TU?) and a *machine* question (does this CPU execute
 * AVX2?); this header answers both once at startup and exposes the
 * answer to the kernels, the harness (BENCH JSON "execution"
 * reporting) and the tests.
 *
 * Selection order for the active backend:
 *
 *   1. the REPRO_SIMD environment variable, when set:
 *        "0" / "off" / "false" / "scalar"  -> scalar reference path
 *        "1" / "on" / "best" / ""          -> best available backend
 *        "sse2" / "avx2" / "avx512" /      -> that backend; falls back
 *        "neon"                               to scalar (with a
 *                                             one-time stderr warning)
 *                                             when it is not compiled
 *                                             in or not supported by
 *                                             the CPU
 *   2. otherwise the widest backend that is both compiled in and
 *      supported by the running CPU.
 *
 * Every backend is bit-identical to the scalar path (asserted in
 * tests/simd_kernel_test.cc), so the selection never changes figure
 * output — only throughput.
 */

#ifndef DFCM_CORE_CPU_FEATURES_HH
#define DFCM_CORE_CPU_FEATURES_HH

#include <string>
#include <vector>

namespace vpred
{

/** A vector implementation of the multi-geometry kernels. */
enum class SimdBackend
{
    Scalar,  //!< reference implementation, always available
    Sse2,    //!< x86-64 baseline, 128-bit lanes
    Avx2,    //!< x86-64 with AVX2, 256-bit lanes
    Neon,    //!< AArch64 baseline, 128-bit lanes
    Avx512,  //!< x86-64 with AVX-512F, 512-bit lanes (packed tier)
};

/** Short lowercase name: "scalar", "sse2", "avx2", "avx512",
 *  "neon". */
const char* simdBackendName(SimdBackend backend);

/** Integer vector width in bits (64 for scalar: one u32 pair of
 *  work per "vector" is how the reference loop retires state). */
unsigned simdVectorBits(SimdBackend backend);

/**
 * Backends that are compiled into this binary *and* supported by the
 * running CPU, widest last. Always contains SimdBackend::Scalar.
 * The CPU probe runs once (cached); the result never changes during
 * a process lifetime.
 */
const std::vector<SimdBackend>& availableSimdBackends();

/** True iff @p backend is in availableSimdBackends(). */
bool simdBackendAvailable(SimdBackend backend);

/** The widest available backend (the default dispatch target). */
SimdBackend bestSimdBackend();

/**
 * The backend the kernels should use *now*: bestSimdBackend()
 * filtered through the REPRO_SIMD environment variable (see the file
 * comment for the accepted values). The environment is consulted on
 * every call so tests can toggle REPRO_SIMD between runs; the
 * hardware probe behind it is cached.
 */
SimdBackend activeSimdBackend();

} // namespace vpred

#endif // DFCM_CORE_CPU_FEATURES_HH
