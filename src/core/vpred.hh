/**
 * @file
 * Umbrella header: the complete public API of the value-prediction
 * library. Include this to get every predictor, the instrumentation
 * and the trace utilities in one line; fine-grained headers remain
 * available for faster builds.
 */

#ifndef DFCM_CORE_VPRED_HH
#define DFCM_CORE_VPRED_HH

#include "core/alias_analysis.hh"
#include "core/classifying_predictor.hh"
#include "core/confidence_dfcm.hh"
#include "core/delayed_update.hh"
#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/hash_function.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_n_predictor.hh"
#include "core/last_value_predictor.hh"
#include "core/predictor_factory.hh"
#include "core/sat_counter.hh"
#include "core/stats.hh"
#include "core/stride_occupancy.hh"
#include "core/stride_predictor.hh"
#include "core/trace_io.hh"
#include "core/types.hh"
#include "core/value_predictor.hh"

#endif // DFCM_CORE_VPRED_HH
