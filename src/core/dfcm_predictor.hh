/**
 * @file
 * Differential finite context method (DFCM) predictor — the paper's
 * contribution (Section 3 / Figure 7).
 */

#ifndef DFCM_CORE_DFCM_PREDICTOR_HH
#define DFCM_CORE_DFCM_PREDICTOR_HH

#include <optional>
#include <vector>

#include "core/hash_function.hh"
#include "core/value_predictor.hh"

namespace vpred
{

/** Geometry, hashing and stride-width of a DFCM predictor. */
struct DfcmConfig
{
    unsigned l1_bits = 16;    //!< log2(#level-1 entries)
    unsigned l2_bits = 12;    //!< log2(#level-2 entries)
    unsigned value_bits = 32;
    /**
     * Width of the stride stored in each level-2 entry (Section 4.4).
     * Strides narrower than value_bits are truncated on store and
     * sign-extended on use. Defaults to full width.
     */
    unsigned stride_bits = 32;
    /** History hash; FS R-5 over the stride history when unset. */
    std::optional<ShiftFoldHash> hash;

    ShiftFoldHash
    resolvedHash() const
    {
        return hash ? *hash : ShiftFoldHash::fsR5(l2_bits);
    }
};

/**
 * The DFCM predictor.
 *
 * The level-1 table stores, per instruction, the last value and a
 * hashed history of the *differences* between recent values. The
 * level-2 table, indexed by the hashed difference history (the last
 * value deliberately does not participate in the index), stores the
 * next difference. The prediction is last value + predicted
 * difference.
 *
 * Stride patterns therefore collapse to a single level-2 entry
 * (their difference history is constant), which is the paper's key
 * table-usage-efficiency argument.
 */
class DfcmPredictor : public ValuePredictor
{
  public:
    explicit DfcmPredictor(const DfcmConfig& config);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    bool predictAndUpdate(Pc pc, Value actual) override;
    PredictorStats runTraceSpan(std::span<const TraceRecord>) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /** Level-2 index the next predict(pc) would use (instrumentation
     *  hook, see FcmPredictor::l2IndexFor). */
    std::uint64_t l2IndexFor(Pc pc) const { return l1_[l1Index(pc)].hist; }

    /** Last value currently stored for @p pc 's level-1 entry. */
    Value lastValueFor(Pc pc) const { return l1_[l1Index(pc)].last; }

    std::size_t l1Index(Pc pc) const { return pc & l1_mask_; }
    unsigned order() const { return hash_.order(); }

    const DfcmConfig& config() const { return cfg_; }
    std::size_t l1Entries() const { return l1_.size(); }
    std::size_t l2Entries() const { return l2_.size(); }

  private:
    struct L1Entry
    {
        Value last = 0;
        std::uint64_t hist = 0;
    };

    /** Stored (possibly narrowed) stride -> full-width stride. */
    Value
    widen(Value stored) const
    {
        return signExtend(stored, cfg_.stride_bits) & value_mask_;
    }

    DfcmConfig cfg_;
    ShiftFoldHash hash_;
    std::uint64_t l1_mask_;
    std::uint64_t value_mask_;
    std::uint64_t stride_mask_;
    std::vector<L1Entry> l1_;
    std::vector<Value> l2_;  //!< next stride per history, narrowed
};

} // namespace vpred

#endif // DFCM_CORE_DFCM_PREDICTOR_HH
