/**
 * @file
 * AVX2 instantiation of the column-parallel multi-geometry kernel:
 * 8 level-2 columns advance per vector op, and the per-lane variable
 * shifts (vpsllvd/vpsrlvd) map the FS R-k parameter vectors straight
 * onto hardware. Compiled with -mavx2 by src/core/CMakeLists.txt and
 * only ever *called* after the runtime CPUID probe in
 * core/cpu_features.cc says the machine executes AVX2.
 */

#define REPRO_SIMD_TU_AVX2 1

#include "core/multi_geom_simd_impl.hh"

namespace vpred::detail
{

static_assert(simd::Native::kBackend == SimdBackend::Avx2,
              "simd.hh resolved the wrong backend for this TU");

void
runMgColumnsAvx2(const MgSimdView& view,
                 std::span<const TraceRecord> trace)
{
    runMgColumnsAll<simd::Native>(view, trace);
}

void
runMgPackedAvx2(const MgPackedView& view)
{
    // Each 16-lane step runs as two 256-bit half-vectors; vpgatherdd
    // covers the level-2 probes, and the (scatterless) lane-order
    // store loop in simd.hh preserves the canonical duplicate-index
    // tie-break.
    runMgPackedAll<simd::Native>(view);
}

void
runMgGatherAvx2(const MgSimdView& view,
                std::span<const TraceRecord> trace)
{
    // Gather column tier: 8-record batches per big level-2 column
    // (NativeCol == Native here — the 8-lane bank padding is the
    // native width).
    runMgGatherAll<simd::Native, simd::NativeCol>(view, trace);
}

} // namespace vpred::detail
