/**
 * @file
 * Table arena allocation backends. This translation unit (with
 * trace_io and the harness trace store) is the only sanctioned
 * caller of the raw page-level APIs — the portability/raw-mmap
 * lint rule enforces that confinement.
 */

#include "core/table_arena.hh"

#include "core/env_util.hh"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include <sys/mman.h>

namespace vpred
{
namespace table_arena
{
namespace
{

/** Sanitizer builds default to plain new so redzones/instrumentation
 *  cover every table byte; a raw mapping would hide them. */
constexpr bool
sanitizerBuild()
{
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    return true;
#else
    return false;
#endif
#else
    return false;
#endif
}

ArenaMode
resolveMode()
{
    const auto raw = envRaw("REPRO_ARENA");
    if (!raw)
        return sanitizerBuild() ? ArenaMode::New : ArenaMode::Auto;
    if (*raw == "auto")
        return sanitizerBuild() ? ArenaMode::New : ArenaMode::Auto;
    if (*raw == "mmap")
        return ArenaMode::Mmap;
    if (*raw == "new")
        return ArenaMode::New;
    envUsageError("REPRO_ARENA", raw->c_str(), "one of auto|mmap|new");
}

/** Map @p bytes rounded up to the huge-page granule, aligned to it,
 *  and hint THP. Returns nullptr when the kernel refuses the mapping
 *  (the caller falls back to plain allocation); a refused madvise is
 *  tolerated — the mapping still works on base pages. */
void*
mapHuge(std::size_t bytes)
{
    const std::size_t granule = kHugeThresholdBytes;
    const std::size_t len = (bytes + granule - 1) & ~(granule - 1);
    // Over-allocate by one granule so a granule-aligned window always
    // fits, then trim the misaligned head and tail back to the kernel.
    void* raw = ::mmap(nullptr, len + granule, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED)
        return nullptr;
    auto base = reinterpret_cast<std::uintptr_t>(raw);
    const std::uintptr_t aligned = (base + granule - 1) & ~(granule - 1);
    const std::size_t head = aligned - base;
    if (head != 0)
        ::munmap(raw, head);
    const std::size_t tail = granule - head;
    if (tail != 0)
        ::munmap(reinterpret_cast<void*>(aligned + len), tail);
    void* p = reinterpret_cast<void*>(aligned);
    // Best-effort: THP disabled or an old kernel leaves base pages,
    // which is the documented graceful-degradation path.
    (void)::madvise(p, len, MADV_HUGEPAGE);
    return p;
}

void*
allocPlain(std::size_t bytes)
{
    void* p = ::operator new(bytes, std::align_val_t{kAlignBytes});
    std::memset(p, 0, bytes);
    return p;
}

} // namespace

ArenaMode
activeMode()
{
    static const ArenaMode mode = resolveMode();
    return mode;
}

ArenaBacking
planBackingFor(std::size_t bytes, ArenaMode mode)
{
    if (bytes == 0)
        return ArenaBacking::None;
    switch (mode) {
    case ArenaMode::New:
        return ArenaBacking::New;
    case ArenaMode::Mmap:
        return ArenaBacking::Mmap;
    case ArenaMode::Auto:
        break;
    }
    return bytes >= kHugeThresholdBytes ? ArenaBacking::Mmap
                                        : ArenaBacking::New;
}

ArenaBacking
planBacking(std::size_t bytes)
{
    return planBackingFor(bytes, activeMode());
}

void*
allocateWith(std::size_t bytes, ArenaMode mode, ArenaBacking& backing)
{
    backing = planBackingFor(bytes, mode);
    if (backing == ArenaBacking::None)
        return nullptr;
    if (backing == ArenaBacking::Mmap) {
        if (void* p = mapHuge(bytes))
            return p;
        backing = ArenaBacking::New;  // kernel refused; degrade
    }
    return allocPlain(bytes);
}

void*
allocate(std::size_t bytes, ArenaBacking& backing)
{
    return allocateWith(bytes, activeMode(), backing);
}

void
deallocate(void* p, std::size_t bytes, ArenaBacking backing)
{
    if (p == nullptr)
        return;
    if (backing == ArenaBacking::Mmap) {
        const std::size_t granule = kHugeThresholdBytes;
        const std::size_t len = (bytes + granule - 1) & ~(granule - 1);
        ::munmap(p, len);
        return;
    }
    ::operator delete(p, std::align_val_t{kAlignBytes});
}

} // namespace table_arena
} // namespace vpred
