/**
 * @file
 * Devirtualized hot loop for trace-driven predictor evaluation.
 *
 * runTrace() historically paid two virtual calls (predict + update)
 * per trace record, and the default ValuePredictor::predictAndUpdate
 * makes two-level predictors compute the level-1 index and load the
 * level-1 entry twice. runTraceKernel closes both gaps: it is
 * instantiated on the *concrete* predictor type, so the explicitly
 * qualified predictAndUpdate call is resolved statically and inlines
 * the predictor's fused implementation into the loop body.
 *
 * Predictor families opt in by overriding runTraceSpan() with a
 * one-line dispatch into this kernel (see e.g. DfcmPredictor).
 * Wrapper predictors (delayed update, hybrids, instrumentation) keep
 * the generic virtual path, which remains behavior-identical.
 */

#ifndef DFCM_CORE_TRACE_KERNEL_HH
#define DFCM_CORE_TRACE_KERNEL_HH

#include <span>

#include "core/stats.hh"
#include "core/types.hh"

namespace vpred
{

/**
 * Run @p predictor over @p trace in the paper's predict-then-update
 * discipline, accumulating into @p stats.
 *
 * @tparam P The concrete predictor type; the qualified call below
 *         devirtualizes predictAndUpdate so the per-record work
 *         inlines into this loop.
 */
template <class P>
void
runTraceKernel(P& predictor, std::span<const TraceRecord> trace,
               PredictorStats& stats)
{
    for (const TraceRecord& rec : trace)
        stats.record(predictor.P::predictAndUpdate(rec.pc, rec.value));
}

} // namespace vpred

#endif // DFCM_CORE_TRACE_KERNEL_HH
