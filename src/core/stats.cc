#include "core/stats.hh"

#include "core/value_predictor.hh"

namespace vpred
{

PredictorStats
runTrace(ValuePredictor& predictor, const ValueTrace& trace)
{
    PredictorStats stats;
    for (const TraceRecord& rec : trace)
        stats.record(predictor.predictAndUpdate(rec.pc, rec.value));
    return stats;
}

} // namespace vpred
