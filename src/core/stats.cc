#include "core/stats.hh"

#include "core/value_predictor.hh"

namespace vpred
{

PredictorStats
runTrace(ValuePredictor& predictor, std::span<const TraceRecord> trace)
{
    // One virtual call per *trace*: concrete predictors override
    // runTraceSpan with the devirtualized kernel, wrappers fall back
    // to the generic per-record virtual loop.
    return predictor.runTraceSpan(trace);
}

} // namespace vpred
