#include "core/stats.hh"

#include "core/value_predictor.hh"

namespace vpred
{

PredictorStats
runTrace(ValuePredictor& predictor, const ValueTrace& trace)
{
    // One virtual call per *trace*: concrete predictors override
    // runTraceSpan with the devirtualized kernel, wrappers fall back
    // to the generic per-record virtual loop.
    return predictor.runTraceSpan({trace.data(), trace.size()});
}

} // namespace vpred
