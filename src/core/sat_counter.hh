/**
 * @file
 * Saturating confidence counter.
 *
 * The paper's stride predictor uses a 3-bit counter that is increased
 * by 1 on a correct prediction and decreased by 2 on a wrong one
 * (Section 4, "The confidence counter in the stride predictor...").
 */

#ifndef DFCM_CORE_SAT_COUNTER_HH
#define DFCM_CORE_SAT_COUNTER_HH

#include <cassert>
#include <cstdint>

namespace vpred
{

/**
 * An unsigned saturating counter of configurable width.
 *
 * The counter saturates at 0 below and at 2^bits - 1 above. The
 * increment/decrement step sizes are fixed at construction so a
 * counter object fully captures a confidence policy.
 */
class SatCounter
{
  public:
    /**
     * @param bits Counter width in bits (1..16).
     * @param inc Step added on a correct prediction.
     * @param dec Step subtracted on a wrong prediction.
     * @param initial Initial counter value (clamped to the maximum).
     */
    explicit SatCounter(unsigned bits = 3, unsigned inc = 1,
                        unsigned dec = 2, unsigned initial = 0)
        : max_((1u << bits) - 1), inc_(inc), dec_(dec),
          value_(initial > max_ ? max_ : initial)
    {
        assert(bits >= 1 && bits <= 16);
    }

    /** Current counter value. */
    unsigned value() const { return value_; }

    /** Maximum (saturated) counter value. */
    unsigned max() const { return max_; }

    /** True iff the counter is at its maximum. */
    bool isMax() const { return value_ == max_; }

    /** True iff the counter is at zero. */
    bool isMin() const { return value_ == 0; }

    /** Apply the configured step for a correct (@c true) or wrong
     *  (@c false) prediction. */
    void
    train(bool correct)
    {
        if (correct)
            value_ = (value_ + inc_ > max_) ? max_ : value_ + inc_;
        else
            value_ = (value_ < dec_) ? 0 : value_ - dec_;
    }

    /** Reset to a given value (clamped). */
    void reset(unsigned v = 0) { value_ = v > max_ ? max_ : v; }

  private:
    unsigned max_;
    unsigned inc_;
    unsigned dec_;
    unsigned value_;
};

} // namespace vpred

#endif // DFCM_CORE_SAT_COUNTER_HH
