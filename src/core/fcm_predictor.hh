/**
 * @file
 * Finite context method (FCM) predictor, Section 2.3 / Figure 2 of
 * the paper.
 */

#ifndef DFCM_CORE_FCM_PREDICTOR_HH
#define DFCM_CORE_FCM_PREDICTOR_HH

#include <optional>
#include <vector>

#include "core/hash_function.hh"
#include "core/value_predictor.hh"

namespace vpred
{

/** Geometry and hashing of a two-level context predictor. */
struct FcmConfig
{
    unsigned l1_bits = 16;   //!< log2(#level-1 entries)
    unsigned l2_bits = 12;   //!< log2(#level-2 entries)
    unsigned value_bits = 32;
    /**
     * History hash; when unset, the paper's FS R-5 with
     * order = ceil(l2_bits / 5) is used.
     */
    std::optional<ShiftFoldHash> hash;

    /** Resolve the hash (explicit or the FS R-5 default). */
    ShiftFoldHash
    resolvedHash() const
    {
        return hash ? *hash : ShiftFoldHash::fsR5(l2_bits);
    }
};

/**
 * Order-k two-level FCM.
 *
 * The level-1 table, indexed by the low bits of the instruction
 * identifier, stores the hashed history of recent values (only the
 * hash is stored; the FS R-5 hash is updated incrementally). The
 * hashed history indexes the level-2 table, which stores the value
 * most likely to follow that history.
 */
class FcmPredictor : public ValuePredictor
{
  public:
    explicit FcmPredictor(const FcmConfig& config);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    bool predictAndUpdate(Pc pc, Value actual) override;
    PredictorStats runTraceSpan(std::span<const TraceRecord>) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /**
     * Level-2 index the next predict(pc) would use. Exposed for the
     * stride-occupancy profiler (Figures 6 and 9) and the aliasing
     * instrumentation.
     */
    std::uint64_t l2IndexFor(Pc pc) const { return l1_[l1Index(pc)]; }

    /** Level-1 index for @p pc. */
    std::size_t l1Index(Pc pc) const { return pc & l1_mask_; }

    /** History order implied by the hash function. */
    unsigned order() const { return hash_.order(); }

    const FcmConfig& config() const { return cfg_; }
    std::size_t l1Entries() const { return l1_.size(); }
    std::size_t l2Entries() const { return l2_.size(); }

  private:
    FcmConfig cfg_;
    ShiftFoldHash hash_;
    std::uint64_t l1_mask_;
    std::uint64_t value_mask_;
    std::vector<std::uint64_t> l1_;  //!< hashed history per entry
    std::vector<Value> l2_;          //!< next value per history
};

} // namespace vpred

#endif // DFCM_CORE_FCM_PREDICTOR_HH
