#include "core/last_n_predictor.hh"

#include <cassert>
#include <sstream>

namespace vpred
{

LastNPredictor::LastNPredictor(unsigned table_bits, unsigned n,
                               unsigned value_bits)
    : table_bits_(table_bits), n_(n), value_bits_(value_bits),
      index_mask_(maskBits(table_bits)), value_mask_(maskBits(value_bits)),
      table_(std::size_t{1} << table_bits)
{
    assert(table_bits <= 28);
    assert(n >= 1 && n <= 8);
    for (Entry& e : table_) {
        e.values.assign(n_, 0);
        e.hits.assign(n_, 0);
    }
}

std::size_t
LastNPredictor::chooseSlot(const Entry& e) const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < n_; ++i) {
        if (e.hits[i] > e.hits[best])
            best = i;
    }
    return best;
}

Value
LastNPredictor::predict(Pc pc) const
{
    const Entry& e = table_[pc & index_mask_];
    return e.values[chooseSlot(e)];
}

void
LastNPredictor::update(Pc pc, Value actual)
{
    actual &= value_mask_;
    Entry& e = table_[pc & index_mask_];

    // Train agreement counters: slots holding the actual value are
    // reinforced, the others decay.
    bool present = false;
    for (std::size_t i = 0; i < n_; ++i) {
        if (e.values[i] == actual) {
            present = true;
            if (e.hits[i] < kHitMax)
                ++e.hits[i];
        } else if (e.hits[i] > 0) {
            --e.hits[i];
        }
    }

    if (!present) {
        // Insert MRU-first: shift values and counters down.
        for (std::size_t i = n_ - 1; i > 0; --i) {
            e.values[i] = e.values[i - 1];
            e.hits[i] = e.hits[i - 1];
        }
        e.values[0] = actual;
        e.hits[0] = 1;
    }
}

std::uint64_t
LastNPredictor::storageBits() const
{
    // n values + n 4-bit counters per entry.
    return std::uint64_t{table_.size()} * n_ * (value_bits_ + 4);
}

std::string
LastNPredictor::name() const
{
    std::ostringstream os;
    os << "last" << n_ << "(t=" << table_bits_ << ")";
    return os.str();
}

} // namespace vpred
