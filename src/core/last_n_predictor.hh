/**
 * @file
 * Last-n value predictor (Burtscher and Zorn, "Exploring Last n
 * Value Prediction", PACT 1999 — the paper's reference [2]).
 * Included as an additional related-work baseline.
 */

#ifndef DFCM_CORE_LAST_N_PREDICTOR_HH
#define DFCM_CORE_LAST_N_PREDICTOR_HH

#include <vector>

#include "core/value_predictor.hh"

namespace vpred
{

/**
 * Keeps the last n distinct-slot values per instruction and predicts
 * with the slot that has been most accurate recently.
 *
 * Per entry: n value slots (most recent first) and an n-way set of
 * small saturating "agreement" counters. On update, every slot that
 * matched the actual value gets its counter bumped; the predicted
 * slot is the one with the highest counter (ties broken toward the
 * most recent value, which makes n=1 degenerate exactly to the last
 * value predictor). The new value is inserted MRU-first unless it
 * already sits in a slot.
 */
class LastNPredictor : public ValuePredictor
{
  public:
    /**
     * @param table_bits log2(#entries).
     * @param n Number of values kept per entry (1..8).
     * @param value_bits Predicted value width.
     */
    LastNPredictor(unsigned table_bits, unsigned n,
                   unsigned value_bits = 32);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    unsigned n() const { return n_; }

  private:
    struct Entry
    {
        std::vector<Value> values;      //!< MRU first
        std::vector<std::uint8_t> hits; //!< agreement counters
    };

    std::size_t chooseSlot(const Entry& e) const;

    unsigned table_bits_;
    unsigned n_;
    unsigned value_bits_;
    std::uint64_t index_mask_;
    std::uint64_t value_mask_;
    std::vector<Entry> table_;

    static constexpr std::uint8_t kHitMax = 15;
};

} // namespace vpred

#endif // DFCM_CORE_LAST_N_PREDICTOR_HH
